// Command-line scenario runner: build-your-own experiment without writing
// C++.  Runs the restricted topology (Figure 1) with configurable receiver
// count, bottleneck capacity, gateway type, ECN, and duration, then prints
// the per-flow report and the essential-fairness audit.
//
//   $ ./scenario_cli --receivers 9 --share 150 --gateway red --duration 300
//   $ ./scenario_cli --receivers 4 --tcp-per-branch 2 --seed 7
//   $ ./scenario_cli --help
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "model/formulas.hpp"
#include "topo/flat_tree.hpp"

using namespace rlacast;

namespace {

struct CliOptions {
  int receivers = 6;
  int tcp_per_branch = 1;
  double share_pps = 100.0;  // per-flow fair share at each branch bottleneck
  topo::GatewayType gateway = topo::GatewayType::kDropTail;
  bool ecn = false;
  double duration = 300.0;
  double warmup = 60.0;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --receivers N       multicast receivers / branches (default 6)\n"
      "  --tcp-per-branch N  competing TCPs per branch (default 1)\n"
      "  --share PPS         per-flow fair share at each bottleneck "
      "(default 100)\n"
      "  --gateway TYPE      droptail | red (default droptail)\n"
      "  --ecn               ECN marking + ECN endpoints (implies red)\n"
      "  --duration S        simulated seconds (default 300)\n"
      "  --warmup S          statistics discarded before S (default 60)\n"
      "  --seed N            master seed (default 1)\n",
      argv0);
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (a == "--receivers")
      o.receivers = std::atoi(value());
    else if (a == "--tcp-per-branch")
      o.tcp_per_branch = std::atoi(value());
    else if (a == "--share")
      o.share_pps = std::atof(value());
    else if (a == "--gateway")
      o.gateway = std::strcmp(value(), "red") == 0
                      ? topo::GatewayType::kRed
                      : topo::GatewayType::kDropTail;
    else if (a == "--ecn")
      o.ecn = true;
    else if (a == "--duration")
      o.duration = std::atof(value());
    else if (a == "--warmup")
      o.warmup = std::atof(value());
    else if (a == "--seed")
      o.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (a == "--help" || a == "-h")
      usage(argv[0], 0);
    else
      usage(argv[0], 2);
  }
  if (o.receivers < 1 || o.tcp_per_branch < 0 || o.share_pps <= 0 ||
      o.duration <= o.warmup)
    usage(argv[0], 2);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);

  topo::FlatTreeConfig cfg;
  cfg.branches.assign(
      static_cast<std::size_t>(o.receivers),
      topo::FlatBranch{o.share_pps * (o.tcp_per_branch + 1),
                       o.tcp_per_branch});
  cfg.gateway = o.ecn ? topo::GatewayType::kRed : o.gateway;
  cfg.red.ecn = o.ecn;
  cfg.rla.ecn = o.ecn;
  cfg.tcp.ecn = o.ecn;
  cfg.duration = o.duration;
  cfg.warmup = o.warmup;
  cfg.seed = o.seed;

  std::printf("running: %d receivers, %d TCP/branch, share %.0f pkt/s, "
              "%s%s, %.0f s (warmup %.0f), seed %llu\n\n",
              o.receivers, o.tcp_per_branch, o.share_pps,
              cfg.gateway == topo::GatewayType::kRed ? "RED" : "drop-tail",
              o.ecn ? "+ECN" : "", o.duration, o.warmup,
              static_cast<unsigned long long>(o.seed));

  const auto res = topo::run_flat_tree(cfg);

  std::printf("RLA multicast : %7.1f pkt/s  cwnd %5.1f  rtt %.3f s  "
              "%llu signals -> %llu cuts (%llu forced, %llu timeouts)\n",
              res.rla.throughput_pps, res.rla.avg_cwnd, res.rla.avg_rtt,
              static_cast<unsigned long long>(res.rla.cong_signals),
              static_cast<unsigned long long>(res.rla.window_cuts),
              static_cast<unsigned long long>(res.rla.forced_cuts),
              static_cast<unsigned long long>(res.rla.timeouts));
  for (std::size_t i = 0; i < res.tcps.size(); ++i)
    std::printf("TCP %-2zu (br %d) : %7.1f pkt/s  cwnd %5.1f  rtt %.3f s\n",
                i + 1, res.tcp_branch[i], res.tcps[i].throughput_pps,
                res.tcps[i].avg_cwnd, res.tcps[i].avg_rtt);

  if (!res.tcps.empty()) {
    const double wtcp = res.worst_tcp().throughput_pps;
    const auto bounds = cfg.gateway == topo::GatewayType::kRed
                            ? model::theorem1_red_bounds(o.receivers)
                            : model::theorem2_droptail_bounds(o.receivers);
    const double ratio = wtcp > 0 ? res.rla.throughput_pps / wtcp : 0.0;
    std::printf("\nessential fairness: RLA/WTCP = %.2f, proven bounds "
                "(%.2f, %.2f) -> %s\n",
                ratio, bounds.lo, bounds.hi,
                bounds.contains(ratio) ? "within" : "OUTSIDE");
  }
  std::printf("troubled receivers at end: %d / %d\n", res.num_troubled_final,
              o.receivers);
  return 0;
}
