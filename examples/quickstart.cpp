// Quickstart: the smallest end-to-end use of the library's public API.
//
// Builds a three-receiver multicast tree by hand (simulator, network, links,
// queues), attaches one RLA session plus one competing TCP connection per
// receiver, runs 120 simulated seconds, and prints the bandwidth shares.
//
//   $ ./quickstart
//
// Expected outcome: the RLA session and each TCP connection settle around
// the same order of bandwidth on their shared 200 pkt/s bottlenecks —
// essential fairness in action.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

using namespace rlacast;

int main() {
  // 1. A simulator holds the clock, the event queue, and the master seed.
  sim::Simulator sim(/*master_seed=*/42);
  net::Network net(sim);

  // 2. Topology: sender S -> gateway G -> three bottleneck branches.
  const auto s = net.add_node();
  const auto g = net.add_node();
  std::vector<net::NodeId> receivers;

  net::LinkConfig fast;                   // S-G trunk: 100 Mbit/s, 5 ms
  fast.bandwidth_bps = 100e6;
  fast.delay = sim::milliseconds(5);
  net.connect(s, g, fast);

  net::LinkConfig bottleneck;             // branches: 1.6 Mbit/s = 200 pkt/s
  bottleneck.bandwidth_bps = 200 * 8000.0;
  bottleneck.delay = sim::milliseconds(20);
  bottleneck.buffer_pkts = 20;            // drop-tail, 20-packet buffer
  for (int i = 0; i < 3; ++i) {
    const auto r = net.add_node();
    net.connect(g, r, bottleneck);
    receivers.push_back(r);
  }
  net.build_routes();  // fills unicast routing tables (BFS)

  // 3. The multicast session: one RLA sender, one receiver per leaf.
  const net::GroupId group = 1;
  rla::RlaParams rla_params;  // paper defaults: eta=20, pthresh=1/n, ...
  rla::RlaSender mcast(net, s, /*port=*/1, group, /*flow=*/100, rla_params);
  std::vector<std::unique_ptr<rla::RlaReceiver>> mcast_rcvrs;
  for (const auto r : receivers) {
    net.join_group(group, s, r);                       // graft the tree
    const int id = mcast.add_receiver(r, /*port=*/1);  // sender-side state
    mcast_rcvrs.push_back(std::make_unique<rla::RlaReceiver>(
        net, r, /*port=*/1, group, s, /*sender_port=*/1, id));
  }

  // 4. Background TCP: one SACK connection from S to each receiver.
  std::vector<std::unique_ptr<tcp::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcp_receivers;
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    const net::PortId port = 10 + static_cast<net::PortId>(i);
    tcp_receivers.push_back(
        std::make_unique<tcp::TcpReceiver>(net, receivers[i], port));
    tcp_senders.push_back(std::make_unique<tcp::TcpSender>(
        net, s, port, receivers[i], port, static_cast<net::FlowId>(i)));
  }

  // 5. Start everything (small jitter avoids artificial synchronization),
  //    discard a 30 s warm-up, measure until t = 120 s.
  mcast.start_at(0.0);
  for (std::size_t i = 0; i < tcp_senders.size(); ++i)
    tcp_senders[i]->start_at(0.2 * static_cast<double>(i + 1));

  sim.at(30.0, [&] {
    mcast.measurement().begin_measurement(sim.now());
    for (auto& t : tcp_senders) t->measurement().begin_measurement(sim.now());
  });
  sim.run_until(120.0);

  // 6. Report.
  std::printf("after %.0f simulated seconds (measured over last %.0f s):\n\n",
              sim.now(), sim.now() - 30.0);
  std::printf("  RLA multicast : %6.1f pkt/s  (avg window %.1f, %llu window "
              "cuts from %llu signals)\n",
              mcast.measurement().throughput_pps(sim.now()),
              mcast.measurement().avg_cwnd(sim.now()),
              static_cast<unsigned long long>(mcast.measurement().window_cuts()),
              static_cast<unsigned long long>(
                  mcast.measurement().congestion_signals()));
  for (std::size_t i = 0; i < tcp_senders.size(); ++i)
    std::printf("  TCP %zu         : %6.1f pkt/s  (avg window %.1f)\n", i + 1,
                tcp_senders[i]->measurement().throughput_pps(sim.now()),
                tcp_senders[i]->measurement().avg_cwnd(sim.now()));
  std::printf("\neach branch carries 200 pkt/s shared by the multicast and "
              "one TCP;\nessential fairness keeps both near 100 pkt/s.\n");
  return 0;
}
