// Example: reliable software-update push to a fleet.
//
// Exercises the RLA's reliability machinery rather than just its congestion
// control: a fixed-size payload (25,000 packets = 25 MB) is multicast to a
// fleet behind lossy branches, and we track when every receiver holds the
// complete image.  Two policies are compared:
//   * rexmit_thresh = 0 — every repair goes by multicast (good when losses
//     are correlated: one repair heals everyone);
//   * rexmit_thresh = 3 — repairs go unicast unless more than three
//     receivers miss the packet (good when losses are independent: no
//     duplicate traffic on clean branches).
// Also demonstrates the §4.3 slow-receiver drop option on a crippled branch.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"

using namespace rlacast;

namespace {

struct FleetRun {
  double complete_time;    // when the payload reached every receiver
  std::uint64_t mcast_rexmits;
  std::uint64_t ucast_rexmits;
  bool straggler_dropped;
};

FleetRun push_update(int rexmit_thresh, bool drop_straggler,
                     double straggler_pps, std::uint64_t seed) {
  constexpr net::SeqNum kPayloadPkts = 25'000;
  sim::Simulator sim(seed);
  net::Network net(sim);
  const auto s = net.add_node();
  const auto g = net.add_node();
  net::LinkConfig trunk;
  trunk.bandwidth_bps = 100e6;
  trunk.delay = sim::milliseconds(5);
  net.connect(s, g, trunk);

  std::vector<net::NodeId> fleet;
  for (int i = 0; i < 6; ++i) {
    const auto r = net.add_node();
    net::LinkConfig leg;
    // Five healthy branches near 500 pkt/s — slightly staggered so their
    // queues do not act as clones (losses stay independent per branch,
    // which is what makes the rexmit_thresh policy interesting) — plus one
    // straggler.
    const double pps = i == 5 ? straggler_pps : 480.0 + 10.0 * i;
    leg.bandwidth_bps = pps * 8000.0;
    leg.buffer_pkts = 20;
    leg.delay = sim::milliseconds(20);
    net.connect(g, r, leg);
    fleet.push_back(r);
  }
  net.build_routes();

  rla::RlaParams params;
  params.rexmit_thresh = rexmit_thresh;
  params.enable_slow_receiver_drop = drop_straggler;
  params.slow_drop_fraction = 0.8;
  params.slow_drop_min_signals = 50;
  rla::RlaSender sender(net, s, 1, /*group=*/1, /*flow=*/7, params);
  std::vector<std::unique_ptr<rla::RlaReceiver>> rcvrs;
  for (const auto r : fleet) {
    net.join_group(1, s, r);
    const int id = sender.add_receiver(r, 1);
    rcvrs.push_back(std::make_unique<rla::RlaReceiver>(net, r, 1, 1, s, 1, id));
  }
  sender.start_at(0.0);

  // Poll for completion: every receiver (except a dropped straggler) holds
  // packets [0, kPayloadPkts).
  FleetRun out{-1.0, 0, 0, false};
  std::function<void()> poll = [&] {
    bool done = sender.max_reach_all() >= kPayloadPkts;
    if (done && out.complete_time < 0) {
      out.complete_time = sim.now();
      return;
    }
    sim.after(0.5, poll);
  };
  sim.after(0.5, poll);
  sim.run_until(600.0);

  out.mcast_rexmits = sender.multicast_rexmits();
  out.ucast_rexmits = sender.unicast_rexmits();
  out.straggler_dropped = sender.receiver_dropped(5);
  return out;
}

void report(const char* label, const FleetRun& r) {
  if (r.complete_time >= 0)
    std::printf("  %-34s done in %6.1f s   repairs: %llu multicast, %llu "
                "unicast%s\n",
                label, r.complete_time,
                static_cast<unsigned long long>(r.mcast_rexmits),
                static_cast<unsigned long long>(r.ucast_rexmits),
                r.straggler_dropped ? "   [straggler dropped]" : "");
  else
    std::printf("  %-34s NOT complete within 600 s (straggler-bound)%s\n",
                label, r.straggler_dropped ? "   [straggler dropped]" : "");
}

}  // namespace

int main() {
  std::printf("pushing a 25,000-packet image to 6 receivers "
              "(5 healthy branches at 500 pkt/s)\n\n");

  std::printf("healthy fleet (branches staggered 480-520 pkt/s):\n");
  report("multicast repairs (thresh=0):",
         push_update(0, false, 500.0, 11));
  report("mostly-unicast repairs (thresh=3):",
         push_update(3, false, 500.0, 11));

  std::printf("\nfleet with one crippled branch (40 pkt/s straggler):\n");
  report("wait for the straggler:", push_update(0, false, 40.0, 12));
  report("slow-receiver drop enabled:", push_update(0, true, 40.0, 12));

  std::printf("\nthe session is paced by its slowest member unless the\n"
              "operator opts into dropping it (§4.3), after which the\n"
              "remaining fleet completes at the healthy branches' pace.\n");
  return 0;
}
