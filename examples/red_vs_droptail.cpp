// Example: how much does router cooperation buy?
//
// The paper proves looser fairness bounds for drop-tail gateways
// (Theorem II: 1/4 .. 2n) than for RED (Theorem I: 1/3 .. sqrt(3n)) and
// §5.1 observes that measured fairness with RED is "closer to absolute".
// This example quantifies that on one topology: the same 9-receiver tree is
// run with both gateway types and several seeds, and the spread of the
// per-branch RLA/TCP throughput ratios is compared.
#include <cstdio>
#include <vector>

#include "model/formulas.hpp"
#include "stats/summary.hpp"
#include "topo/flat_tree.hpp"

using namespace rlacast;

namespace {

stats::Summary fairness_ratios(topo::GatewayType gw) {
  stats::Summary ratios;
  for (std::uint64_t seed : {1, 2, 3}) {
    topo::FlatTreeConfig cfg;
    cfg.branches.assign(9, topo::FlatBranch{200.0, 1});
    cfg.gateway = gw;
    cfg.duration = 260.0;
    cfg.warmup = 60.0;
    cfg.seed = seed;
    const auto res = topo::run_flat_tree(cfg);
    ratios.add(res.rla.throughput_pps / res.worst_tcp().throughput_pps);
  }
  return ratios;
}

}  // namespace

int main() {
  std::printf("RLA vs worst TCP throughput ratio, 9 equally congested "
              "branches,\nthree seeds each:\n\n");
  const auto dt = fairness_ratios(topo::GatewayType::kDropTail);
  const auto red = fairness_ratios(topo::GatewayType::kRed);

  const auto b_dt = model::theorem2_droptail_bounds(9);
  const auto b_red = model::theorem1_red_bounds(9);
  std::printf("  %-10s ratio mean %.2f  range [%.2f, %.2f]   proven bounds "
              "(%.2f, %.2f)\n",
              "drop-tail", dt.mean(), dt.min(), dt.max(), b_dt.lo, b_dt.hi);
  std::printf("  %-10s ratio mean %.2f  range [%.2f, %.2f]   proven bounds "
              "(%.2f, %.2f)\n",
              "RED", red.mean(), red.min(), red.max(), b_red.lo, b_red.hi);

  std::printf("\nabsolute fairness would be ratio 1.0; RED should sit closer\n"
              "to it and vary less across seeds, because every flow through\n"
              "a RED gateway sees the same loss probability while drop-tail\n"
              "loss depends on packet arrival phase.\n");
  return 0;
}
