// Example: a live stream with audience churn.
//
// A long-running RLA session (a lecture, a market-data feed) whose audience
// changes while it runs: two receivers from the start, a third joining at
// t = 60 s (resuming mid-stream — it is not owed the first hour), and one
// of the originals leaving at t = 120 s.  Shows that
//   * joins are seamless: the newcomer starts receiving at its join point
//     and the session's pace is unaffected;
//   * leaves release the window immediately when the departing member was
//     the pacing (slowest) branch.
#include <cstdio>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_session.hpp"
#include "sim/simulator.hpp"

using namespace rlacast;

int main() {
  sim::Simulator sim(21);
  net::Network net(sim);
  const auto s = net.add_node();
  const auto hub = net.add_node();
  net::LinkConfig trunk;
  trunk.bandwidth_bps = 100e6;
  trunk.delay = sim::milliseconds(5);
  net.connect(s, hub, trunk);

  // Three audience branches: A healthy, B slow (it will leave), C healthy
  // (it will join late).
  std::vector<net::NodeId> audience;
  const double branch_pps[3] = {400.0, 120.0, 400.0};
  for (int i = 0; i < 3; ++i) {
    const auto r = net.add_node();
    net::LinkConfig leg;
    leg.bandwidth_bps = branch_pps[i] * 8000.0;
    leg.buffer_pkts = 20;
    leg.delay = sim::milliseconds(30);
    net.connect(hub, r, leg);
    audience.push_back(r);
  }
  net.build_routes();

  rla::RlaParams params;
  params.max_cwnd = 512;
  rla::RlaSession session(net, s, /*group=*/1, params);
  const int a = session.add_receiver(audience[0]);
  const int b = session.add_receiver(audience[1]);
  session.start_at(0.0);

  auto rate_between = [&](net::SeqNum from, double seconds) {
    return static_cast<double>(session.sender().max_reach_all() - from) /
           seconds;
  };

  std::printf("live stream: A (400 pkt/s branch) and B (120 pkt/s branch) "
              "from t=0\n\n");

  sim.run_until(60.0);
  const auto reach60 = session.sender().max_reach_all();
  std::printf("t= 60 s  delivered-to-all %6lld pkts  (pace set by B)\n",
              static_cast<long long>(reach60));

  // C joins mid-stream.
  const int c = session.add_receiver(audience[2]);
  sim.run_until(120.0);
  const auto reach120 = session.sender().max_reach_all();
  std::printf("t=120 s  C joined at t=60; rate since: %5.1f pkt/s; C holds "
              "packets from %lld up\n",
              rate_between(reach60, 60.0),
              static_cast<long long>(
                  session.receiver(c).buffer().cum_ack() -
                  session.receiver(c).data_packets_received()));

  // B leaves; the pacing constraint disappears.
  session.remove_receiver(b);
  sim.run_until(180.0);
  std::printf("t=180 s  B left at t=120;  rate since: %5.1f pkt/s "
              "(released to the healthy branches' pace)\n",
              rate_between(reach120, 60.0));

  std::printf("\nfinal: A received %llu pkts, B received %llu (stopped), "
              "C received %llu since joining\n",
              static_cast<unsigned long long>(
                  session.receiver(a).data_packets_received()),
              static_cast<unsigned long long>(
                  session.receiver(b).data_packets_received()),
              static_cast<unsigned long long>(
                  session.receiver(c).data_packets_received()));
  return 0;
}
