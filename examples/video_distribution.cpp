// Example: live-lecture video distribution to a mixed audience.
//
// The scenario the paper's §5.3 generalization targets: one source feeding
// receivers at very different distances — campus receivers ~10 ms away and
// remote receivers ~210 ms away — each sharing its branch with background
// TCP.  The original RLA (pthresh = 1/n) over-listens to the near, fast-
// feedback receivers; the generalized RLA weighs congestion signals by
// (srtt_i / srtt_max)^2 so the distant receivers do not starve the session.
//
// This example runs both variants on the same network and prints the
// comparison.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

using namespace rlacast;

namespace {

struct RunResult {
  double mcast_pps;
  double worst_tcp_pps;
  double near_srtt;
  double far_srtt;
};

RunResult run(double rtt_exponent, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim);
  const auto s = net.add_node();
  const auto g = net.add_node();
  net::LinkConfig trunk;
  trunk.bandwidth_bps = 100e6;
  trunk.delay = sim::milliseconds(2);
  net.connect(s, g, trunk);

  // Four campus receivers (5 ms legs) and four remote ones (105 ms legs),
  // every branch constrained to 200 pkt/s and carrying one TCP.
  std::vector<net::NodeId> rcvr_nodes;
  for (int i = 0; i < 8; ++i) {
    const auto r = net.add_node();
    net::LinkConfig leg;
    leg.bandwidth_bps = 200 * 8000.0;
    leg.buffer_pkts = 20;
    leg.delay = i < 4 ? sim::milliseconds(5) : sim::milliseconds(105);
    net.connect(g, r, leg);
    rcvr_nodes.push_back(r);
  }
  net.build_routes();

  rla::RlaParams params;
  params.rtt_exponent = rtt_exponent;
  params.max_send_overhead = 8000.0 / (200 * 8000.0);
  rla::RlaSender mcast(net, s, 1, /*group=*/1, /*flow=*/99, params);
  std::vector<std::unique_ptr<rla::RlaReceiver>> mrcvrs;
  for (const auto r : rcvr_nodes) {
    net.join_group(1, s, r);
    const int id = mcast.add_receiver(r, 1);
    mrcvrs.push_back(
        std::make_unique<rla::RlaReceiver>(net, r, 1, 1, s, 1, id));
  }

  std::vector<std::unique_ptr<tcp::TcpSender>> tcps;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcprs;
  tcp::TcpParams tparams;
  tparams.max_send_overhead = params.max_send_overhead;
  for (std::size_t i = 0; i < rcvr_nodes.size(); ++i) {
    const net::PortId port = 10 + static_cast<net::PortId>(i);
    tcprs.push_back(
        std::make_unique<tcp::TcpReceiver>(net, rcvr_nodes[i], port));
    tcps.push_back(std::make_unique<tcp::TcpSender>(
        net, s, port, rcvr_nodes[i], port, static_cast<net::FlowId>(i),
        tparams));
  }

  auto starts = sim.rng_stream("starts");
  mcast.start_at(starts.uniform(0.0, 1.0));
  for (auto& t : tcps) t->start_at(starts.uniform(0.0, 1.0));
  sim.at(60.0, [&] {
    mcast.measurement().begin_measurement(sim.now());
    for (auto& t : tcps) t->measurement().begin_measurement(sim.now());
  });
  sim.run_until(360.0);

  RunResult res;
  res.mcast_pps = mcast.measurement().throughput_pps(sim.now());
  res.worst_tcp_pps = 1e18;
  for (auto& t : tcps)
    res.worst_tcp_pps =
        std::min(res.worst_tcp_pps, t->measurement().throughput_pps(sim.now()));
  res.near_srtt = mcast.srtt_of(0);
  res.far_srtt = mcast.srtt_of(7);
  return res;
}

}  // namespace

int main() {
  std::printf("video distribution to 4 near (10 ms RTT) + 4 far (210 ms RTT)"
              " receivers,\neach branch 200 pkt/s with 1 background TCP\n\n");
  const RunResult original = run(/*rtt_exponent=*/0.0, 7);
  const RunResult generalized = run(/*rtt_exponent=*/2.0, 7);

  std::printf("sender-estimated RTTs: near %.0f ms, far %.0f ms\n\n",
              original.near_srtt * 1e3, original.far_srtt * 1e3);
  std::printf("%-28s %14s %14s\n", "", "mcast pkt/s", "worst TCP pkt/s");
  std::printf("%-28s %14.1f %14.1f\n", "original RLA (pthresh=1/n)",
              original.mcast_pps, original.worst_tcp_pps);
  std::printf("%-28s %14.1f %14.1f\n",
              "generalized RLA (f(x)=x^2)", generalized.mcast_pps,
              generalized.worst_tcp_pps);
  std::printf("\nthe generalized variant discounts congestion signals from\n"
              "short-RTT receivers, lifting the multicast share toward its\n"
              "fair level without starving the TCP background.\n");
  return 0;
}
