// RLA multicast sender — the paper's primary contribution (§3.3).
//
// A window-based multicast congestion controller that stays TCP-like in its
// window dynamics but *randomizes* which congestion signals it obeys:
//
//   1. Loss detection  — per-receiver SACK scoreboards; packet P is lost for
//      receiver i once a packet >= 3 above P is SACKed by i, or on timeout.
//   2. Congestion detection — losses from receiver i within
//      2*srtt_i of the congestion-period start are grouped into ONE signal
//      (one signal per buffer period, mirroring TCP's one cut per window).
//   3. Window adjustment on a signal from receiver i:
//        - skip if i is not a troubled receiver (rare loss);
//        - forced-cut  if no cut happened within the last 2*awnd*srtt_i;
//        - otherwise randomized-cut: halve with probability pthresh.
//   4. Window growth — cwnd += 1/cwnd per packet newly ACKed by ALL
//      receivers (slow start: cwnd += 1 while cwnd < ssthresh).
//   5. Window bounds — trailing edge follows max_reach_all; leading edge
//      never beyond min_last_ack + receiver buffer.
//   6. Troubled census — see cc::TroubledCensus (η = 20).
//
// pthresh = f(srtt_i/srtt_max) / num_trouble_rcvr with f(x) = x^k; k = 0 is
// the original equal-RTT RLA (pthresh = 1/n), k = 2 the generalized RLA of
// §5.3 for heterogeneous round-trip times.
//
// The window arithmetic lives in cc::Window, the §3.3 cut rules in
// cc::RlaPolicy, the per-receiver {scoreboard, RTT estimator} bundle in
// cc::PeerState (the same bundle the TCP sender holds once), and the signal
// grouping in cc::SignalGrouper — so "TCP-like window dynamics" is enforced
// by construction, not by parallel implementations.
//
// Retransmissions go by multicast when more than rexmit_thresh receivers
// miss the packet, else by unicast to each requester.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cc/peer_state.hpp"
#include "cc/rla_policy.hpp"
#include "cc/rto_manager.hpp"
#include "cc/signal_grouper.hpp"
#include "cc/troubled_census.hpp"
#include "cc/window.hpp"
#include "net/agent.hpp"
#include "net/network.hpp"
#include "replay/snapshot.hpp"
#include "rla/rla_params.hpp"
#include "sim/simulator.hpp"
#include "stats/flow_measurement.hpp"

namespace rlacast::rla {

class RlaSender final : public net::Agent, public replay::Snapshotable {
 public:
  RlaSender(net::Network& network, net::NodeId node, net::PortId port,
            net::GroupId group, net::FlowId flow, RlaParams params = {});

  ~RlaSender() override;

  /// Registers a receiver endpoint (must match an RlaReceiver's node/port
  /// and id). May be called before start_at() or mid-session (late join):
  /// a late joiner's state begins at the current send frontier, so it owes
  /// nothing for data sent before it arrived. Returns the receiver index.
  int add_receiver(net::NodeId node, net::PortId port);

  /// Gracefully removes receiver `idx` from the session (leave): its ACKs
  /// are ignored from now on and the window no longer waits for it. The
  /// multicast tree itself is pruned by the caller if desired (delivery to
  /// a departed subscriber is harmless).
  void remove_receiver(int idx);

  /// Starts the session at absolute simulation time `when`.
  void start_at(sim::SimTime when);

  void on_receive(const net::Packet& p) override;

  // --- observability ---------------------------------------------------------
  double cwnd() const { return win_.cwnd(); }
  double awnd() const { return awnd_; }
  double ssthresh() const { return win_.ssthresh(); }
  net::SeqNum min_last_ack() const;
  net::SeqNum max_reach_all() const { return max_reach_all_; }
  net::SeqNum next_seq() const { return next_seq_; }
  int num_trouble_rcvr() const { return census_.num_troubled(); }
  const cc::TroubledCensus& census() const { return census_; }
  double pthresh_for(int rcvr) const;
  std::size_t receiver_count() const { return rcvrs_.size(); }
  std::uint64_t signals_from(int rcvr) const { return census_.signals(rcvr); }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t multicast_rexmits() const { return mcast_rexmits_; }
  std::uint64_t unicast_rexmits() const { return ucast_rexmits_; }
  bool receiver_dropped(int rcvr) const { return census_.excluded(rcvr); }
  /// Receivers excluded by the silent-receiver (crash) protection.
  std::uint64_t silent_drops() const { return silent_drops_; }
  /// Receivers still participating (not left, not dropped, not silent).
  int active_receivers() const;
  double srtt_of(int rcvr) const {
    return rcvrs_[static_cast<std::size_t>(rcvr)]->peer.rtt.srtt();
  }
  stats::FlowMeasurement& measurement() { return meas_; }
  const stats::FlowMeasurement& measurement() const { return meas_; }
  const RlaParams& params() const { return params_; }

  /// Checkpoint state: sequence frontiers, window edges, rexmit totals and
  /// the RNG cursors of the listening / pacing streams. Sub-components
  /// (window, census, per-receiver RTT estimators) attach separately under
  /// "rla-<flow>/..." ids.
  replay::Snapshot snapshot_state() const override;

 private:
  struct ReceiverState {
    net::NodeId node;
    net::PortId port;
    /// The same {scoreboard, RTT estimator} bundle TcpSender holds once.
    cc::PeerState peer;
    /// §3.3 rule-2 congestion-period grouping (time mode).
    cc::SignalGrouper grouper;
    sim::SimTime last_ack_at = 0.0;  // liveness: silent-receiver drop

    explicit ReceiverState(const cc::RttEstimatorParams& rp) : peer(rp) {}
  };

  /// Bookkeeping for every packet at or above max_reach_all.
  struct SendInfo {
    sim::SimTime first_sent = 0.0;
    bool ever_rexmitted = false;
    sim::SimTime last_rexmit = -1e18;
    /// Bit i set once receiver i has acknowledged the packet (cumulatively
    /// or selectively). The per-packet RLA RTT — time until the LAST
    /// receiver's ACK, the quantity eq. (5) bounds — is sampled the moment
    /// coverage completes, so head-of-line repairs of *other* packets do
    /// not inflate it. Bounds the session to 64 receivers (paper scale: 36).
    std::uint64_t acked_mask = 0;
    bool rtt_sampled = false;
  };

  void on_ack(const net::Packet& ack, ReceiverState& r, int idx);
  void mark_covered(const net::Packet& ack, int idx);
  void mark_one(net::SeqNum seq, SendInfo& info, std::uint64_t bit);
  std::uint64_t active_mask() const;
  void handle_congestion_signal(ReceiverState& r, int idx);
  void advance_reach_all();
  void maybe_retransmit(net::SeqNum seq, int requester_idx, bool urgent);
  void send_new_data(int budget);
  void send_data_packet(net::SeqNum seq, bool rexmit, net::NodeId unicast_to,
                        net::PortId unicast_port);
  void on_timeout();
  void drop_silent_receivers();
  void restart_timeout_timer();
  void maybe_drop_slowest(int idx);
  double max_srtt() const;
  net::SeqNum first_missing(const ReceiverState& r) const;

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::FlowId flow_;
  RlaParams params_;

  net::SendPacer pacer_;
  sim::Rng listen_rng_;  // the π draws of the random listening decision
  cc::RtoManager rto_;

  std::vector<std::unique_ptr<ReceiverState>> rcvrs_;
  cc::TroubledCensus census_;
  cc::RlaPolicy policy_;  // borrows census_ and listen_rng_: declare after
  cc::Window win_;

  double awnd_;
  sim::SimTime last_window_cut_ = -1e18;
  net::SeqNum next_seq_ = 0;
  net::SeqNum max_reach_all_ = 0;
  net::SeqNum timeout_blocking_ = -1;  // stall point at the last timeout
  bool started_ = false;

  std::map<net::SeqNum, SendInfo> send_info_;

  mutable std::vector<double> srtt_scratch_;  // robust max_srtt workspace

  std::uint64_t acks_received_ = 0;
  std::uint64_t mcast_rexmits_ = 0;
  std::uint64_t ucast_rexmits_ = 0;
  std::uint64_t silent_drops_ = 0;

  stats::FlowMeasurement meas_;
};

}  // namespace rlacast::rla
