// RLA multicast sender — the paper's primary contribution (§3.3).
//
// A window-based multicast congestion controller that stays TCP-like in its
// window dynamics but *randomizes* which congestion signals it obeys:
//
//   1. Loss detection  — per-receiver SACK scoreboards; packet P is lost for
//      receiver i once a packet >= 3 above P is SACKed by i, or on timeout.
//   2. Congestion detection — losses from receiver i within
//      2*srtt_i of the congestion-period start are grouped into ONE signal
//      (one signal per buffer period, mirroring TCP's one cut per window).
//   3. Window adjustment on a signal from receiver i:
//        - skip if i is not a troubled receiver (rare loss);
//        - forced-cut  if no cut happened within the last 2*awnd*srtt_i;
//        - otherwise randomized-cut: halve with probability pthresh.
//   4. Window growth — cwnd += 1/cwnd per packet newly ACKed by ALL
//      receivers (slow start: cwnd += 1 while cwnd < ssthresh).
//   5. Window bounds — trailing edge follows max_reach_all; leading edge
//      never beyond min_last_ack + receiver buffer.
//   6. Troubled census — see cc::TroubledCensus (η = 20).
//
// pthresh = f(srtt_i/srtt_max) / num_trouble_rcvr with f(x) = x^k; k = 0 is
// the original equal-RTT RLA (pthresh = 1/n), k = 2 the generalized RLA of
// §5.3 for heterogeneous round-trip times.
//
// The window arithmetic lives in cc::Window, the §3.3 cut rules in
// cc::RlaPolicy, the signal grouping in cc::SignalGrouper, and the
// per-receiver state in rla::ReceiverTable — flat parallel arrays plus
// lazily materialized SACK scoreboards, so a receiver only costs scoreboard
// memory while it is actually losing packets and the all-healthy ACK path
// is allocation-free (see DESIGN.md "Memory model").  Aggregates the paper
// consults per signal (srtt_max, num_trouble_rcvr) come from the census's
// cached SoA mirrors instead of O(N) rescans.
//
// Retransmissions go by multicast when more than rexmit_thresh receivers
// miss the packet, else by unicast to each requester.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cc/rla_policy.hpp"
#include "cc/rto_manager.hpp"
#include "cc/troubled_census.hpp"
#include "cc/window.hpp"
#include "net/agent.hpp"
#include "net/network.hpp"
#include "replay/snapshot.hpp"
#include "rla/receiver_table.hpp"
#include "rla/rla_params.hpp"
#include "sim/simulator.hpp"
#include "stats/flow_measurement.hpp"

namespace rlacast::rla {

class RlaSender final : public net::Agent, public replay::Snapshotable {
 public:
  RlaSender(net::Network& network, net::NodeId node, net::PortId port,
            net::GroupId group, net::FlowId flow, RlaParams params = {});

  ~RlaSender() override;

  /// Capacity hint ahead of a bulk add_receiver() loop: reserves the
  /// receiver table and census arrays so the dense per-member rows carry no
  /// push_back growth overshoot (the scale benches report capacity bytes).
  void reserve_receivers(std::size_t n) {
    table_.reserve(n);
    census_.reserve(n);
  }

  /// Registers a receiver endpoint (must match an RlaReceiver's node/port
  /// and id). May be called before start_at() or mid-session (late join):
  /// a late joiner's state begins at the current send frontier, so it owes
  /// nothing for data sent before it arrived. Returns the receiver index.
  int add_receiver(net::NodeId node, net::PortId port);

  /// Gracefully removes receiver `idx` from the session (leave): its ACKs
  /// are ignored from now on and the window no longer waits for it. The
  /// multicast tree itself is pruned by the caller if desired (delivery to
  /// a departed subscriber is harmless).
  void remove_receiver(int idx);

  /// Starts the session at absolute simulation time `when`.
  void start_at(sim::SimTime when);

  /// Assigns receiver `idx` to topology subtree `subtree` for the
  /// structural-degradation detector (SubtreeDegradeParams).  The topology
  /// builder knows which receivers share a partitionable uplink; the sender
  /// only needs the grouping.  No-op unless params().degrade.enabled, so
  /// wiring it up unconditionally keeps default runs byte-identical.
  void set_subtree(int idx, int subtree);

  void on_receive(const net::Packet& p) override;

  // --- observability ---------------------------------------------------------
  double cwnd() const { return win_.cwnd(); }
  double awnd() const { return awnd_; }
  double ssthresh() const { return win_.ssthresh(); }
  net::SeqNum min_last_ack() const;
  net::SeqNum max_reach_all() const { return max_reach_all_; }
  net::SeqNum next_seq() const { return next_seq_; }
  int num_trouble_rcvr() const { return census_.num_troubled(); }
  const cc::TroubledCensus& census() const { return census_; }
  double pthresh_for(int rcvr) const;
  std::size_t receiver_count() const { return table_.size(); }
  std::uint64_t signals_from(int rcvr) const { return census_.signals(rcvr); }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t multicast_rexmits() const { return mcast_rexmits_; }
  std::uint64_t unicast_rexmits() const { return ucast_rexmits_; }
  bool receiver_dropped(int rcvr) const { return census_.excluded(rcvr); }
  /// Receivers excluded by the silent-receiver (crash) protection.
  std::uint64_t silent_drops() const { return silent_drops_; }
  /// Receivers still participating (not left, not dropped, not silent).
  int active_receivers() const { return census_.active_count(); }
  double srtt_of(int rcvr) const { return table_.rtt(rcvr).srtt(); }
  /// Receivers currently carrying a materialized scoreboard (the rest are
  /// in the compact all-healthy representation).
  std::size_t materialized_scoreboards() const {
    return table_.materialized_count();
  }
  /// Frontier-watchdog force-quarantines issued so far.
  std::uint64_t watchdog_quarantines() const { return watchdog_quarantines_; }
  /// Structural-degradation episodes: every excision (with its heal /
  /// re-admission outcome filled in once it happens).
  const std::vector<SubtreeEvent>& subtree_events() const { return events_; }
  std::uint64_t subtree_excisions() const { return subtree_excisions_; }
  std::uint64_t subtree_readmissions() const { return subtree_readmissions_; }
  /// Catch-up retransmissions multicast by re-admission ramps (disjoint
  /// from multicast_rexmits(), which counts loss-repair traffic).
  std::uint64_t ramp_rexmits() const { return ramp_rexmits_; }
  /// Resident bytes of the sender's per-receiver machinery: receiver table
  /// (SoA arrays + materialized boards), census, and per-packet send info.
  std::size_t state_bytes() const;
  /// What the same session state would cost in the historical one-
  /// scoreboard-per-receiver layout — the denominator of the scale bench's
  /// memory-ratio headline.
  std::size_t baseline_state_bytes() const;
  stats::FlowMeasurement& measurement() { return meas_; }
  const stats::FlowMeasurement& measurement() const { return meas_; }
  const RlaParams& params() const { return params_; }

  /// Checkpoint state: sequence frontiers, window edges, rexmit totals and
  /// the RNG cursors of the listening / pacing streams. Sub-components
  /// (window, census, per-receiver RTT estimators) attach separately under
  /// "rla-<flow>/..." ids.
  replay::Snapshot snapshot_state() const override;

 private:
  /// Bookkeeping for every packet at or above max_reach_all.
  struct SendInfo {
    sim::SimTime first_sent = 0.0;
    bool ever_rexmitted = false;
    sim::SimTime last_rexmit = -1e18;
    /// Set when the packet was retransmitted to EVERYBODY (multicast repair
    /// or timeout).  Compact receivers don't carry per-packet rexmit flags;
    /// materialization replays this onto the fresh scoreboard so Karn's
    /// rule and the repair rate-limit see the same marks the historical
    /// per-receiver boards held.
    bool rexmitted_for_all = false;
    /// Bit i set once receiver i has acknowledged the packet (cumulatively
    /// or selectively). The per-packet RLA RTT — time until the LAST
    /// receiver's ACK, the quantity eq. (5) bounds — is sampled the moment
    /// coverage completes, so head-of-line repairs of *other* packets do
    /// not inflate it. Bounds the session to 64 receivers (paper scale: 36).
    std::uint64_t acked_mask = 0;
    bool rtt_sampled = false;
  };

  void on_ack(const net::Packet& ack, int idx);
  void mark_covered(const net::Packet& ack, int idx);
  void mark_one(net::SeqNum seq, SendInfo& info, std::uint64_t bit);
  std::uint64_t active_mask() const;
  void handle_congestion_signal(int idx);
  void advance_reach_all();
  void maybe_retransmit(net::SeqNum seq, int requester_idx, bool urgent);
  void send_new_data(int budget);
  void send_data_packet(net::SeqNum seq, bool rexmit, net::NodeId unicast_to,
                        net::PortId unicast_port);
  void on_timeout();
  void drop_silent_receivers();
  // Structural degradation (SubtreeDegradeParams); all no-ops when off.
  struct Subtree {
    enum class Phase { kHealthy, kExcised, kRamping };
    Phase phase = Phase::kHealthy;
    std::vector<int> members;
    sim::SimTime excised_at = 0.0;
    net::SeqNum reach_at_excise = 0;
    sim::SimTime healed_at = -1.0;
    std::size_t event_index = 0;      // row in events_ for the open episode
    net::SeqNum ramp_next = 0;        // catch-up resend cursor
    int ramp_burst = 0;
    std::map<int, net::SeqNum> heard; // healed member -> last seen cum
  };
  void check_subtrees();
  void excise_subtree(int sid, Subtree& st, sim::SimTime silence);
  void note_heal_ack(const net::Packet& ack, int idx);
  void ramp_tick();
  void graduate_subtree(Subtree& st);
  void restart_timeout_timer();
  void maybe_drop_slowest(int idx);
  void check_frontier_watchdog();
  void rejoin_receivers(const std::vector<int>& rejoined);
  /// Receiver idx's scoreboard, materializing it (with the global repair
  /// flags replayed) if it is still compact.
  cc::Scoreboard& ensure_board(int idx);
  /// on_retransmit with the compact semantics of the historical board:
  /// no-op for seqs below the receiver's cumulative point, materializes
  /// otherwise.
  void sb_on_retransmit(int idx, net::SeqNum seq);

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::FlowId flow_;
  RlaParams params_;

  net::SendPacer pacer_;
  sim::Rng listen_rng_;  // the π draws of the random listening decision
  cc::RtoManager rto_;

  ReceiverTable table_;
  cc::TroubledCensus census_;
  cc::RlaPolicy policy_;  // borrows census_ and listen_rng_: declare after
  cc::Window win_;

  double awnd_;
  sim::SimTime last_window_cut_ = -1e18;
  net::SeqNum next_seq_ = 0;
  net::SeqNum max_reach_all_ = 0;
  net::SeqNum timeout_blocking_ = -1;  // stall point at the last timeout
  bool started_ = false;

  std::map<net::SeqNum, SendInfo> send_info_;

  // Frontier watchdog (see FrontierWatchdogParams).
  sim::SimTime last_frontier_progress_ = 0.0;
  std::uint64_t acks_since_progress_ = 0;
  std::uint64_t watchdog_quarantines_ = 0;

  std::uint64_t acks_received_ = 0;
  std::uint64_t mcast_rexmits_ = 0;
  std::uint64_t ucast_rexmits_ = 0;
  std::uint64_t silent_drops_ = 0;

  // Structural degradation state (empty / never allocated when off).
  std::vector<int> subtree_of_;           // receiver idx -> subtree, -1 none
  std::vector<std::uint8_t> excised_;     // receiver idx -> excised flag
  std::map<int, Subtree> subtrees_;
  std::vector<SubtreeEvent> events_;
  std::unique_ptr<sim::Timer> degrade_timer_;  // detection poll
  std::unique_ptr<sim::Timer> ramp_timer_;     // re-admission ramp
  std::uint64_t subtree_excisions_ = 0;
  std::uint64_t subtree_readmissions_ = 0;
  std::uint64_t ramp_rexmits_ = 0;

  stats::FlowMeasurement meas_;
};

}  // namespace rlacast::rla
