// SoA receiver table of the RLA sender, with lazily materialized SACK
// scoreboards.
//
// The historical sender held one heap-allocated {Scoreboard, RttEstimator}
// bundle per receiver; at paper scale (27) that is fine, at the ROADMAP's
// 10^4..10^6 members the scoreboard maps dominate sender memory and every
// per-ACK aggregate (min una, max rto, max pipe, reach-all frontier) cost an
// O(N) walk.  This table keeps the per-receiver fields in parallel arrays
// and represents the common all-healthy receiver *compactly*: just its
// cumulative point.  A receiver in compact state has, by construction,
//
//     high == sender frontier,  nothing SACKed / lost / retransmitted,
//     pipe == frontier - una,   first_missing == una,
//
// so every scoreboard query is answered in O(1) without a map.  A real
// cc::Scoreboard is materialized from a pool only when an ACK proves the
// receiver diverged (a SACK block above its cumulative point), and is
// reclaimed as soon as it is clean() again — a receiver is only expensive
// WHILE it is losing packets.  Multicast repairs sent to everyone are
// recorded once in the sender's per-packet SendInfo (rexmitted_for_all) and
// replayed onto a board at materialization time, which keeps compact
// receivers out of the repair loops entirely.
//
// Aggregates are cached with holder/count schemes keyed on the census
// membership version, making the hot ACK path allocation-free and O(1)
// amortized (plus O(materialized) for the boards that do exist):
//   * min una over compact active members — count-at-min, rescan only when
//     the last holder advances or the membership/compact set changes;
//   * max rto over active members — holder cache, invalidated only when the
//     holder's own timer shrinks.
//
// RTT estimators live in a deque so their addresses stay stable for the
// replay observer's per-receiver attach.
//
// Slim mode (the kSampled census): the per-receiver {RttEstimator,
// SignalGrouper} pair — ~112 bytes, by far the largest remaining
// per-receiver cost — moves into pooled slots allocated on first use, and
// the dense row shrinks to a 4-byte slot index.  A slot is created for
// reservoir-tracked members (the sender mirrors the census reservoir),
// signallers (grouper access allocates), and materialized receivers; every
// other member shares one fallback estimator that absorbs all of their RTT
// samples, so rtt(i) of an untracked member reports the population estimate.
// Slots are never freed.  With reservoir >= N every member is tracked from
// its first ACK and the fallback is never consulted, so slim mode is
// bit-identical to the dense table — the equivalence the scale property
// tests pin.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cc/rtt_estimator.hpp"
#include "cc/scoreboard.hpp"
#include "cc/signal_grouper.hpp"
#include "cc/troubled_census.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rlacast::rla {

class ReceiverTable {
 public:
  explicit ReceiverTable(const cc::RttEstimatorParams& rtt_params,
                         bool slim = false)
      : rtt_params_(rtt_params), slim_(slim), fallback_rtt_(rtt_params) {}

  /// True when the table keeps per-receiver RTT/grouper state in sparse
  /// pooled slots (the kSampled census sender) instead of dense arrays.
  bool slim() const { return slim_; }
  /// True when `i` has its own RTT estimator (always, in the dense layout).
  bool tracked(int i) const { return !slim_ || est_slot_[idx(i)] >= 0; }
  /// Allocates `i`'s tracked slot (slim layout; no-op when dense).  The new
  /// estimator is seeded from the shared fallback, so a member promoted
  /// mid-run starts at the population estimate rather than cold.
  void ensure_tracked(int i) {
    if (slim_) (void)ensure_slot(i);
  }
  /// Tracked slots in use (slim; == size() when dense).
  std::size_t tracked_count() const {
    return slim_ ? tracked_ids_.size() : node_.size();
  }

  /// Reserves the dense per-receiver arrays for `n` members.  Purely a
  /// capacity hint (no behavioral change), but state_bytes() reports
  /// capacity, and at n = 10^4 the push_back growth overshoot would
  /// otherwise inflate the dense rows by ~60%.
  void reserve(std::size_t n);

  /// Appends a receiver whose sequence space starts at `frontier` (late
  /// join) with its liveness clock at `now`. Returns the dense index.
  int add(net::NodeId node, net::PortId port, net::SeqNum frontier,
          sim::SimTime now);

  std::size_t size() const { return node_.size(); }
  net::SeqNum frontier() const { return frontier_; }

  net::NodeId node(int i) const { return node_[idx(i)]; }
  net::PortId port(int i) const { return port_[idx(i)]; }
  sim::SimTime last_ack_at(int i) const { return last_ack_at_[idx(i)]; }
  void note_ack(int i, sim::SimTime now) { last_ack_at_[idx(i)] = now; }
  cc::RttEstimator& rtt(int i) {
    if (!slim_) return rtt_[idx(i)];
    const std::int32_t s = est_slot_[idx(i)];
    return s >= 0 ? tracked_[static_cast<std::size_t>(s)].rtt : fallback_rtt_;
  }
  const cc::RttEstimator& rtt(int i) const {
    if (!slim_) return rtt_[idx(i)];
    const std::int32_t s = est_slot_[idx(i)];
    return s >= 0 ? tracked_[static_cast<std::size_t>(s)].rtt : fallback_rtt_;
  }
  /// The receiver's signal grouper. Slim layout: allocates `i`'s tracked
  /// slot — a receiver whose grouper is consulted is signalling, which is
  /// exactly the set worth individual state.
  cc::SignalGrouper& grouper(int i) {
    if (!slim_) return grouper_[idx(i)];
    return ensure_slot(i).grouper;
  }

  // --- RTT mutations (routed here to keep the max-rto cache coherent) ------
  void rtt_add_sample(int i, sim::SimTime sample) {
    rtt(i).add_sample(sample);
    note_rto(i);
  }
  void rtt_reset_backoff(int i) {
    rtt(i).reset_backoff();
    note_rto(i);
  }
  /// Timer backoff for every active member (timeout collapse); O(N), rare.
  void rtt_back_off_all(const cc::TroubledCensus& census);

  // --- scoreboard facade ---------------------------------------------------
  bool materialized(int i) const { return sb_slot_[idx(i)] >= 0; }
  /// The receiver's materialized board (precondition: materialized(i)).
  cc::Scoreboard& board(int i) { return *pool_[slot(i)]; }
  const cc::Scoreboard& board(int i) const { return *pool_[slot(i)]; }
  /// Ids of currently materialized receivers, in no particular order.
  const std::vector<int>& materialized_ids() const { return materialized_; }

  net::SeqNum una(int i) const { return una_[idx(i)]; }
  net::SeqNum high(int i) const {
    return materialized(i) ? board(i).high() : frontier_;
  }
  net::SeqNum first_missing(int i) const;
  std::int64_t pipe(int i) const {
    return materialized(i) ? board(i).pipe() : frontier_ - una_[idx(i)];
  }
  bool is_sacked(int i, net::SeqNum seq) const {
    return materialized(i) && board(i).is_sacked(seq);
  }
  bool is_lost(int i, net::SeqNum seq) const {
    return materialized(i) && board(i).is_lost(seq);
  }
  bool was_retransmitted(int i, net::SeqNum seq) const {
    return materialized(i) && board(i).was_retransmitted(seq);
  }
  net::SeqNum next_to_retransmit(int i) const {
    return materialized(i) ? board(i).next_to_retransmit() : net::kNoSeq;
  }
  std::int64_t lost_count(int i) const {
    return materialized(i) ? board(i).lost_count() : 0;
  }

  /// Cumulative-point advance; returns the number newly acknowledged.
  std::int64_t advance(int i, net::SeqNum new_una);

  /// SACK loss detection; 0 for a compact receiver (nothing is SACKed).
  int detect_losses(int i, int dupthresh) {
    return materialized(i) ? board(i).detect_losses(dupthresh) : 0;
  }

  /// True iff any active receiver is missing `seq` (outstanding for it and
  /// not SACKed) — the always-multicast repair path needs only this bit,
  /// not the full requester list, and it falls out of the compact-min cache
  /// in O(materialized).
  bool any_missing(const cc::TroubledCensus& census, net::SeqNum seq) const;

  /// Would these SACK blocks change a compact receiver's state?  True iff
  /// any block intersects its outstanding window [una, frontier) — the
  /// materialization trigger.
  bool sack_effective(int i, const net::SackBlock* blocks, int n) const;

  /// Materializes receiver `i`'s board from the compact invariant: all of
  /// [una, frontier) outstanding, nothing marked.  The caller (the sender)
  /// replays its global rexmitted_for_all repair flags onto the fresh board
  /// before using it.
  cc::Scoreboard& materialize(int i);

  /// Returns `i` to the compact representation when its board is clean().
  void reclaim_if_clean(int i);

  /// New-data transmission at the frontier: extends every materialized
  /// non-excluded board (compact members track the frontier implicitly).
  void on_send(net::SeqNum seq, const cc::TroubledCensus& census);

  /// Rejoin/restart: back to compact with the sequence space at `next_seq`.
  void reset(int i, net::SeqNum next_seq);

  // --- aggregates over the active membership -------------------------------
  /// Smallest cumulative point over active receivers; `fallback` if none.
  net::SeqNum min_una(const cc::TroubledCensus& census,
                      net::SeqNum fallback) const;
  /// Smallest first_missing over active receivers (the reach-all frontier
  /// candidate); `fallback` if none.
  net::SeqNum min_first_missing(const cc::TroubledCensus& census,
                                net::SeqNum fallback) const;
  /// Largest pipe over active receivers.
  std::int64_t max_pipe(const cc::TroubledCensus& census) const;
  /// Largest retransmission timeout over active receivers.
  sim::SimTime max_rto(const cc::TroubledCensus& census) const;

  std::size_t materialized_count() const { return materialized_.size(); }
  std::size_t pool_size() const { return pool_.size(); }

  /// Resident bytes of the table: SoA arrays, estimators, and the
  /// materialized boards (per-packet map nodes included).
  std::size_t state_bytes() const;

 private:
  /// Pooled per-receiver wide state of the slim layout.
  struct TrackedState {
    explicit TrackedState(const cc::RttEstimatorParams& p) : rtt(p) {}
    cc::RttEstimator rtt;
    cc::SignalGrouper grouper;
  };
  /// note_rto holder id standing for the shared fallback estimator.
  static constexpr int kFallbackHolder = -2;

  static std::size_t idx(int i) { return static_cast<std::size_t>(i); }
  std::size_t slot(int i) const {
    return static_cast<std::size_t>(sb_slot_[idx(i)]);
  }
  TrackedState& ensure_slot(int i);
  void note_rto(int i);
  /// (found, min, count-at-min) over compact active members, cached.
  void refresh_compact_min(const cc::TroubledCensus& census) const;
  void compact_insert(int i);

  cc::RttEstimatorParams rtt_params_;
  net::SeqNum frontier_ = 0;

  // Parallel per-receiver arrays.
  std::vector<net::NodeId> node_;
  std::vector<net::PortId> port_;
  std::vector<net::SeqNum> una_;  // authoritative mirror, compact or not
  std::vector<sim::SimTime> last_ack_at_;
  std::vector<int> sb_slot_;  // pool slot; -1 = compact
  std::deque<cc::RttEstimator> rtt_;  // stable addresses (replay observer)
  std::vector<cc::SignalGrouper> grouper_;

  // Slim layout: slot index per receiver + pooled tracked state + the
  // shared estimator absorbing every untracked member's RTT samples.
  bool slim_ = false;
  std::vector<std::int32_t> est_slot_;  // -1 = untracked (slim only)
  std::deque<TrackedState> tracked_;    // stable addresses
  std::vector<int> tracked_ids_;        // receiver id per tracked_ slot
  cc::RttEstimator fallback_rtt_;

  // Scoreboard pool.
  std::vector<std::unique_ptr<cc::Scoreboard>> pool_;
  std::vector<int> free_slots_;
  std::vector<int> materialized_;  // receiver ids with a board

  // min-una-over-compact-active cache (count-at-min scheme).
  mutable bool cmin_valid_ = false;
  mutable bool cmin_any_ = false;   // any compact active member exists
  mutable net::SeqNum cmin_ = 0;
  mutable std::int64_t cmin_count_ = 0;
  mutable std::uint64_t cmin_membership_ = ~0ULL;

  // max-rto-over-active cache (holder scheme).
  mutable bool rto_valid_ = false;
  mutable double rto_cache_ = 0.0;
  mutable int rto_holder_ = -1;
  mutable std::uint64_t rto_membership_ = ~0ULL;
};

}  // namespace rlacast::rla
