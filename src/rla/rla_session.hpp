// RlaSession: one-call setup of a complete RLA multicast session.
//
// Bundles what examples and scenario harnesses otherwise wire by hand:
// the sender agent, one receiver agent per endpoint, the group grafts, and
// consistent port assignment.  The sender and receivers remain fully
// accessible for inspection.
//
//   rla::RlaSession session(net, sender_node, group, params);
//   session.add_receiver(node_a);
//   session.add_receiver(node_b);
//   session.start_at(0.0);
//   ...
//   session.sender().measurement().throughput_pps(now);
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"

namespace rlacast::rla {

class RlaSession {
 public:
  /// Ports are derived from the group id so several sessions can share
  /// nodes: sender at 9000+group on its node, receivers at 9000+group on
  /// theirs.
  RlaSession(net::Network& network, net::NodeId sender_node,
             net::GroupId group, RlaParams params = {},
             RlaReceiverOptions receiver_options = {})
      : network_(network),
        sender_node_(sender_node),
        group_(group),
        port_(9000 + group),
        receiver_options_(receiver_options),
        sender_(std::make_unique<RlaSender>(network, sender_node, port_,
                                            group, /*flow=*/9000 + group,
                                            params)) {}

  /// Joins `node` to the session; returns the receiver index.
  int add_receiver(net::NodeId node) {
    network_.join_group(group_, sender_node_, node);
    const int idx = sender_->add_receiver(node, port_);
    RlaReceiverOptions opts = receiver_options_;
    // Joining an in-progress session: resume at the first packet seen.
    if (sender_->next_seq() > 0) opts.resume_at_first_packet = true;
    receivers_.push_back(std::make_unique<RlaReceiver>(
        network_, node, port_, group_, sender_node_, port_, idx, opts));
    return idx;
  }

  /// Removes receiver `idx` from the session (leave): the sender stops
  /// waiting for it. The receiver agent stays attached (quiescent).
  void remove_receiver(int idx) { sender_->remove_receiver(idx); }

  void start_at(sim::SimTime when) { sender_->start_at(when); }

  RlaSender& sender() { return *sender_; }
  const RlaSender& sender() const { return *sender_; }
  RlaReceiver& receiver(int idx) { return *receivers_[std::size_t(idx)]; }
  std::size_t receiver_count() const { return receivers_.size(); }
  net::GroupId group() const { return group_; }

 private:
  net::Network& network_;
  net::NodeId sender_node_;
  net::GroupId group_;
  net::PortId port_;
  RlaReceiverOptions receiver_options_;
  std::unique_ptr<RlaSender> sender_;
  std::vector<std::unique_ptr<RlaReceiver>> receivers_;
};

}  // namespace rlacast::rla
