// Aggregated RLA receiver: g co-located session members behind one leaf.
//
// The large-topology builder (topo/big_tree) collapses a subtree of `g`
// real receivers into a single simulation node so that simulator memory
// does not mask the quantity under test — SENDER memory per receiver.
// Everything below the group's access link is identical for its members
// (same loss pattern, same delay), so one reassembly buffer suffices; what
// must NOT be collapsed is the feedback volume: the sender still hears one
// ACK per member per delivered data packet, each carrying that member's
// receiver id, exactly as if the g receivers ran separately.  The group's
// ACK pacer draws a Uniform(0, max_ack_overhead) processing delay per ACK,
// which doubles as the per-host jitter that keeps the synchronized
// multicast delivery from arriving at shared reverse queues as one burst.
//
// Unicast repairs addressed to the shared (node, port) satisfy the common
// buffer and are acknowledged by every member, mirroring the fact that a
// repair reaching the group's subtree reaches all of it.
#pragma once

#include <cstdint>
#include <vector>

#include "net/agent.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "tcp/reassembly.hpp"

namespace rlacast::rla {

struct GroupReceiverOptions {
  std::int32_t ack_bytes = net::kAckPacketBytes;
  /// Random per-ACK processing time, Uniform(0, max); see the header note.
  sim::SimTime max_ack_overhead = 0.0;
  /// Urgent-repair request (the paper's receiver-triggered immediate
  /// unicast retransmission) after this many consecutive data arrivals
  /// with an unchanged cumulative point and data above it; 0 disables.
  /// One member's ACK carries the flag per trigger — a single unicast
  /// repair refills the shared buffer for the whole group.
  int urgent_after_stuck_acks = 8;
};

class GroupReceiver final : public net::Agent {
 public:
  using Options = GroupReceiverOptions;

  /// `member_ids` are the session receiver indices this leaf answers for
  /// (one sender-side census entry each, registered by the caller through
  /// RlaSender::add_receiver with this node/port).
  GroupReceiver(net::Network& network, net::NodeId node, net::PortId port,
                net::GroupId group, net::NodeId sender_node,
                net::PortId sender_port, std::vector<int> member_ids,
                Options options = {});

  void on_receive(const net::Packet& p) override;

  std::size_t member_count() const { return members_.size(); }
  const tcp::ReassemblyBuffer& buffer() const { return buf_; }
  std::uint64_t data_packets_received() const { return received_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  std::uint64_t urgent_requests_sent() const { return urgent_requests_; }

 private:
  net::Network& network_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::NodeId sender_node_;
  net::PortId sender_port_;
  std::vector<int> members_;
  Options options_;

  net::SendPacer ack_pacer_;
  tcp::ReassemblyBuffer buf_;
  std::uint64_t received_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t urgent_requests_ = 0;
  net::SeqNum stuck_cum_ = -1;
  int stuck_acks_ = 0;
};

}  // namespace rlacast::rla
