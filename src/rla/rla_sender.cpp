#include "rla/rla_sender.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace rlacast::rla {

RlaSender::RlaSender(net::Network& network, net::NodeId node, net::PortId port,
                     net::GroupId group, net::FlowId flow, RlaParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      group_(group),
      flow_(flow),
      params_(params),
      pacer_(sim_, network,
             sim_.rng_stream("rla-overhead-" + std::to_string(flow)),
             params.max_send_overhead),
      listen_rng_(sim_.rng_stream("rla-listen-" + std::to_string(flow))),
      rto_(sim_, [this] { on_timeout(); }),
      table_(params.rtt,
             /*slim=*/params.census.mode == cc::CensusMode::kSampled),
      census_(params.eta, params.signal_interval_gain),
      policy_(cc::RlaPolicyParams{.forced_cut_factor = params.forced_cut_factor,
                                  .rtt_exponent = params.rtt_exponent,
                                  .fairness_weight = params.fairness_weight,
                                  .fixed_pthresh = params.fixed_pthresh},
              census_, listen_rng_),
      win_(cc::WindowParams{.initial_cwnd = params.initial_cwnd,
                            .initial_ssthresh = params.initial_ssthresh,
                            .max_cwnd = params.max_cwnd,
                            .fairness_weight = params.fairness_weight}),
      awnd_(params.initial_cwnd) {
  census_.set_defense(params_.defense);
  census_.configure_sampling(params_.census);
  network_.attach(node_, port_, this);
  meas_.note_cwnd(0.0, win_.cwnd());
  if (replay::RunObserver* obs = sim_.observer()) {
    const std::string id = "rla-" + std::to_string(flow_);
    obs->attach(id, this);
    obs->attach(id + "/window", &win_);
    obs->attach(id + "/census", &census_);
  }
}

RlaSender::~RlaSender() {
  if (replay::RunObserver* obs = sim_.observer()) {
    obs->detach(this);
    obs->detach(&win_);
    obs->detach(&census_);
    if (!table_.slim())
      for (std::size_t i = 0; i < table_.size(); ++i)
        obs->detach(&table_.rtt(static_cast<int>(i)));
  }
}

replay::Snapshot RlaSender::snapshot_state() const {
  replay::Snapshot s;
  s.put("next_seq", next_seq_);
  s.put("max_reach_all", max_reach_all_);
  s.put("awnd", awnd_);
  s.put("last_window_cut", last_window_cut_);
  s.put("acks_received", acks_received_);
  s.put("mcast_rexmits", mcast_rexmits_);
  s.put("ucast_rexmits", ucast_rexmits_);
  s.put("silent_drops", silent_drops_);
  s.put("receivers", table_.size());
  s.put("listen_rng_draws", listen_rng_.draw_count());
  s.put("materialized", table_.materialized_count());
  s.put("watchdog_quarantines", watchdog_quarantines_);
  s.put("subtree_excisions", subtree_excisions_);
  s.put("subtree_readmissions", subtree_readmissions_);
  return s;
}

int RlaSender::add_receiver(net::NodeId node, net::PortId port) {
  // Late join: the newcomer's sequence space starts at the send frontier —
  // it is not owed data transmitted before it existed, and it must not drag
  // max_reach_all below the already-acknowledged prefix. (Beyond 64
  // receivers, per-packet RTT coverage masks saturate and mark_covered
  // skips the extra indices; everything else scales.)
  const int idx = table_.add(node, port, next_seq_, sim_.now());
  const int census_idx = census_.add_receiver();
  (void)census_idx;
  assert(idx == census_idx && "table and census indices must stay aligned");
  // Slim table: reservoir members get their own estimator up front so the
  // census reads their real srtt, not the shared fallback's.
  if (table_.slim() && census_.sampled_tracked(idx)) table_.ensure_tracked(idx);
  // Seed the census srtt mirror with the estimator's pre-sample value so
  // srtt_max over never-heard-from receivers matches the historical scan.
  census_.note_srtt(idx, table_.rtt(idx).srtt());
  // Per-receiver estimator snapshots only exist in the dense layout; the
  // sampled sender would otherwise attach N observers it refuses to pay
  // memory for (the skip is mode-keyed, so record and replay agree).
  if (!table_.slim())
    if (replay::RunObserver* obs = sim_.observer())
      obs->attach(
          "rla-" + std::to_string(flow_) + "/rtt-" + std::to_string(idx),
          &table_.rtt(idx));
  return idx;
}

void RlaSender::remove_receiver(int idx) {
  if (idx < 0 || static_cast<std::size_t>(idx) >= table_.size()) return;
  if (census_.excluded(idx)) return;
  census_.exclude(idx);
  census_.recompute(sim_.now());
  // The departed receiver may have been the slowest: recompute the frontier
  // and resume sending if its absence opened the window.
  advance_reach_all();
  send_new_data(params_.max_burst);
}

void RlaSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    last_frontier_progress_ = sim_.now();
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    send_new_data(params_.max_burst);
  });
}

net::SeqNum RlaSender::min_last_ack() const {
  return table_.min_una(census_, next_seq_);
}

double RlaSender::pthresh_for(int rcvr) const {
  return policy_.pthresh(srtt_of(rcvr), census_.srtt_max());
}

std::size_t RlaSender::state_bytes() const {
  return sizeof(*this) + table_.state_bytes() + census_.state_bytes() +
         send_info_.size() *
             (sizeof(net::SeqNum) + sizeof(SendInfo) + 4 * sizeof(void*));
}

std::size_t RlaSender::baseline_state_bytes() const {
  // The pre-table layout: one heap ReceiverState per receiver — scoreboard,
  // RTT estimator, signal grouper, endpoint/liveness fields — with a map
  // node per outstanding packet in EVERY receiver's scoreboard (a healthy
  // receiver tracked the full window too).
  const std::size_t per_node =
      sizeof(net::SeqNum) + 3 * sizeof(bool) + 4 * sizeof(void*);
  std::size_t b = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const int idx = static_cast<int>(i);
    b += sizeof(void*);  // rcvrs_ vector slot
    b += sizeof(cc::Scoreboard) + sizeof(cc::RttEstimator) +
         sizeof(cc::SignalGrouper) + sizeof(net::NodeId) +
         sizeof(net::PortId) + sizeof(sim::SimTime);
    b += static_cast<std::size_t>(
             std::max<net::SeqNum>(0, table_.high(idx) - table_.una(idx))) *
         per_node;
  }
  b += send_info_.size() *
       (sizeof(net::SeqNum) + sizeof(SendInfo) + 4 * sizeof(void*));
  return b;
}

void RlaSender::rejoin_receivers(const std::vector<int>& rejoined) {
  // Served quarantines rejoin as late joiners: scoreboard state thawed at
  // the send frontier, liveness clock restarted.
  for (const int r : rejoined) {
    table_.reset(r, next_seq_);
    table_.note_ack(r, sim_.now());
  }
}

void RlaSender::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kAck) return;
  const int idx = p.receiver_id;
  if (idx < 0 || static_cast<std::size_t>(idx) >= table_.size()) return;
  // Quarantine/probation clock. Polled before the excluded() gate so the
  // quarantined member's own ACKs can drive its release.
  if (params_.defense.enabled || params_.frontier_watchdog.enabled)
    rejoin_receivers(census_.advance_states(sim_.now()));
  // Structural heal detection, also ahead of the excluded() gate: an ACK
  // from an excised subtree member is the only signal that its partition
  // healed.  The member stays excluded until its subtree's re-admission
  // ramp graduates.
  if (static_cast<std::size_t>(idx) < excised_.size() &&
      excised_[static_cast<std::size_t>(idx)] != 0)
    note_heal_ack(p, idx);
  // A stale ACK from a departed/dropped receiver (in flight at leave time,
  // or a crashed receiver coming back) must not touch frozen scoreboard or
  // census state.
  if (census_.excluded(idx)) return;
  ++acks_received_;
  table_.note_ack(idx, sim_.now());
  on_ack(p, idx);
}

cc::Scoreboard& RlaSender::ensure_board(int idx) {
  if (table_.materialized(idx)) return table_.board(idx);
  cc::Scoreboard& sb = table_.materialize(idx);
  // Replay the repairs that were multicast to everybody while this receiver
  // was compact; per-receiver (unicast) repairs always materialized the
  // target at repair time, so the global flags are the complete set.
  for (auto it = send_info_.lower_bound(sb.una()); it != send_info_.end();
       ++it)
    if (it->second.rexmitted_for_all) sb.on_retransmit(it->first);
  return sb;
}

void RlaSender::sb_on_retransmit(int idx, net::SeqNum seq) {
  if (!table_.materialized(idx) && seq < table_.una(idx))
    return;  // below the cumulative point: the historical board forgot it
  ensure_board(idx).on_retransmit(seq);
}

void RlaSender::on_ack(const net::Packet& ack, int idx) {
  if (census_.excluded(idx)) return;

  // Per-receiver RTT estimate (Karn: skip samples off retransmitted seqs —
  // a multicast retransmission poisons the echo for every receiver, so the
  // global ever_rexmitted flag is the correct guard).
  if (ack.seq != net::kNoSeq && ack.ts_echo > 0.0) {
    const auto it = send_info_.find(ack.seq);
    const bool clean = it == send_info_.end() || !it->second.ever_rexmitted;
    if (clean && !table_.was_retransmitted(idx, ack.seq)) {
      // A reservoir rebuild can admit a member after its add; promote it on
      // its next RTT sample so the census mirrors its own estimate.
      if (table_.slim() && !table_.tracked(idx) && census_.sampled_tracked(idx))
        table_.ensure_tracked(idx);
      table_.rtt_add_sample(idx, sim_.now() - ack.ts_echo);
      census_.note_srtt(idx, table_.rtt(idx).srtt());
    }
  }

  if (table_.advance(idx, ack.ack) > 0) table_.rtt_reset_backoff(idx);
  if (table_.materialized(idx)) {
    table_.board(idx).apply_sack(ack.sack.data(), ack.n_sack);
  } else if (ack.n_sack > 0 &&
             table_.sack_effective(idx, ack.sack.data(), ack.n_sack)) {
    // First evidence this receiver diverged from the healthy prefix: give
    // it a real scoreboard.
    ensure_board(idx).apply_sack(ack.sack.data(), ack.n_sack);
  }
  // Cum-withholding guard (see FrontierWatchdogParams::max_sack_lead): a
  // receiver SACKing far ahead of its frozen cumulative point starves
  // advance() of pruning while evading the frontier-stall check.  Its board
  // is the largest sender-side structure an adversary can grow, so the
  // bound is enforced on the hot ACK path, where the lead is O(1) to read.
  {
    const FrontierWatchdogParams& wd = params_.frontier_watchdog;
    if (wd.enabled && wd.max_sack_lead > 0 && table_.materialized(idx) &&
        table_.first_missing(idx) - table_.una(idx) > wd.max_sack_lead) {
      census_.force_quarantine(idx, sim_.now());
      ++watchdog_quarantines_;
      census_.recompute(sim_.now());
      advance_reach_all();
      send_new_data(params_.max_burst);
      return;
    }
  }
  mark_covered(ack, idx);
  const int new_losses = table_.detect_losses(idx, params_.dupthresh);

  // Rule 2: a new congestion period only starts beyond 2*srtt_i of the last
  // one; losses inside the window are grouped into the same signal. An ECN
  // echo is a congestion indication of equal rank — it enters the same
  // grouping, so a mark plus losses in one buffer period stay one signal.
  if (new_losses > 0 || (params_.ecn && ack.ece)) {
    const double srtt = table_.rtt(idx).srtt();
    if (table_.grouper(idx).try_open_period(sim_.now(),
                                            params_.grouping_rtts * srtt))
      handle_congestion_signal(idx);
  }

  // A lost *retransmission* would otherwise only be recoverable by the full
  // timeout: re-arm the head-of-line hole for repair once the previous
  // repair has clearly failed (no ACK within this receiver's RTO of it).
  if (!census_.excluded(idx)) {
    const net::SeqNum hol = table_.first_missing(idx);
    if (hol < table_.high(idx) && table_.is_lost(idx, hol) &&
        table_.was_retransmitted(idx, hol)) {
      const auto it = send_info_.find(hol);
      if (it != send_info_.end() &&
          sim_.now() - it->second.last_rexmit > table_.rtt(idx).rto())
        table_.board(idx).clear_retransmitted(hol);
    }
  }

  // Retransmission handling is independent of the listening decision: every
  // newly detected hole is repaired. (The signal handler above may have
  // excluded this receiver via the slow-drop option — then its holes are
  // nobody's problem anymore.)
  net::SeqNum s;
  while (!census_.excluded(idx) &&
         (s = table_.next_to_retransmit(idx)) != net::kNoSeq)
    maybe_retransmit(s, idx, ack.urgent_rexmit_request);

  // New data is clocked by reach-all advances (inside advance_reach_all),
  // mirroring TCP's cumulative-ACK clocking: one send trigger per packet
  // acknowledged by all, so the multicast sender's arrival pattern at the
  // bottleneck stays as bursty as its TCP competitors' (§3.1 requires the
  // senders to "send packets in a fashion similar to the TCP senders" for
  // the equal-congestion-frequency argument to hold). A SACK-only ACK that
  // shrank some pipe still triggers a conservation send below, or recovery
  // could stall the session.
  ++acks_since_progress_;
  advance_reach_all();
  if (table_.lost_count(idx) > 0) send_new_data(params_.max_burst);
  check_frontier_watchdog();
  // Recovery over: hand the board back to the pool and go compact again.
  table_.reclaim_if_clean(idx);
}

void RlaSender::handle_congestion_signal(int idx) {
  meas_.note_congestion_signal();
  census_.on_signal(idx, sim_.now());
  census_.recompute(sim_.now());
  maybe_drop_slowest(idx);

  // The §3.3 cut rules — troubled-census consult, forced-cut guard,
  // randomized listening — live in cc::RlaPolicy.
  cc::SignalContext ctx;
  ctx.now = sim_.now();
  ctx.receiver = idx;
  ctx.srtt = table_.rtt(idx).srtt();
  ctx.srtt_max = census_.srtt_max();
  ctx.awnd = awnd_;
  ctx.last_cut = last_window_cut_;
  const cc::CutAction action = policy_.on_signal(ctx);
  if (cc::apply_cut_action(win_, policy_, action)) {
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    last_window_cut_ = sim_.now();
    meas_.note_window_cut();
    if (action == cc::CutAction::kForcedHalve) meas_.note_forced_cut();
  }
}

std::uint64_t RlaSender::active_mask() const {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < table_.size() && i < 64; ++i)
    if (!census_.excluded(static_cast<int>(i))) m |= 1ULL << i;
  return m;
}

void RlaSender::mark_one(net::SeqNum seq, SendInfo& info, std::uint64_t bit) {
  if (info.rtt_sampled) return;
  info.acked_mask |= bit;
  const std::uint64_t need = active_mask();
  if ((info.acked_mask & need) == need) {
    info.rtt_sampled = true;
    if (!info.ever_rexmitted)
      meas_.note_rtt(sim_.now(), sim_.now() - info.first_sent);
  }
  (void)seq;
}

void RlaSender::mark_covered(const net::Packet& ack, int idx) {
  if (idx >= 64) return;  // RTT sampling supports the paper-scale sessions
  const std::uint64_t bit = 1ULL << idx;
  // Cumulative region: send_info_ only holds seqs >= max_reach_all_, so the
  // walk below touches the not-yet-reached window prefix only.
  for (auto it = send_info_.begin();
       it != send_info_.end() && it->first < ack.ack; ++it)
    mark_one(it->first, it->second, bit);
  for (int b = 0; b < ack.n_sack; ++b) {
    auto it = send_info_.lower_bound(ack.sack[static_cast<std::size_t>(b)].lo);
    for (; it != send_info_.end() &&
           it->first < ack.sack[static_cast<std::size_t>(b)].hi;
         ++it)
      mark_one(it->first, it->second, bit);
  }
}

void RlaSender::advance_reach_all() {
  const net::SeqNum reach = table_.min_first_missing(census_, next_seq_);
  if (reach <= max_reach_all_) return;

  const std::int64_t m = reach - max_reach_all_;
  // Rule 4: growth is driven by packets acknowledged by ALL receivers.
  win_.grow(m);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
  awnd_ += params_.awnd_gain * (win_.cwnd() - awnd_);
  meas_.note_acked(m);

  // RTT sampling happens in mark_one() the instant the last receiver's ACK
  // covers a packet; here the bookkeeping below the new reach point is
  // simply discarded.
  send_info_.erase(send_info_.begin(), send_info_.lower_bound(reach));
  max_reach_all_ = reach;
  last_frontier_progress_ = sim_.now();
  acks_since_progress_ = 0;
  restart_timeout_timer();
  send_new_data(params_.max_burst);
}

void RlaSender::check_frontier_watchdog() {
  const FrontierWatchdogParams& wd = params_.frontier_watchdog;
  if (!wd.enabled || !started_) return;
  if (next_seq_ <= max_reach_all_) return;  // frontier caught up: no stall
  if (acks_since_progress_ < wd.min_acks) return;
  const sim::SimTime stall = sim_.now() - last_frontier_progress_;
  const sim::SimTime bound = std::max(
      wd.stall_rtos * std::max(table_.max_rto(census_), params_.rtt.min_rto),
      wd.min_stall);
  if (stall < bound) return;
  // The frontier is pinned while ACKs keep flowing.  Blame receivers only
  // once the blocking packet has actually been repaired at least once — an
  // unrepaired hole is the retransmit path's business, not a liveness hole.
  const auto it = send_info_.find(max_reach_all_);
  if (it == send_info_.end() || !it->second.ever_rexmitted) return;

  std::vector<int> pinners;
  int active = 0;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const int idx = static_cast<int>(i);
    if (census_.excluded(idx)) continue;
    ++active;
    if (table_.first_missing(idx) <= max_reach_all_) pinners.push_back(idx);
  }
  // Everyone is pinned: a genuine shared loss, owned by the timeout path.
  if (pinners.empty() || static_cast<int>(pinners.size()) >= active) return;

  for (const int idx : pinners) {
    census_.force_quarantine(idx, sim_.now());
    ++watchdog_quarantines_;
  }
  census_.recompute(sim_.now());
  last_frontier_progress_ = sim_.now();
  acks_since_progress_ = 0;
  // The survivors define a new frontier; resume into the opened window.
  advance_reach_all();
  send_new_data(params_.max_burst);
}

void RlaSender::maybe_retransmit(net::SeqNum seq, int requester_idx,
                                 bool urgent) {
  auto& info = send_info_[seq];
  // Rate-limit repairs of the same packet: one per max-srtt unless urgent.
  const double guard = std::max(census_.srtt_max(), 1e-3);
  if (!urgent && sim_.now() - info.last_rexmit < guard) {
    // Mark per-receiver so next_to_retransmit() makes progress; the packet
    // is already on its way (or will be re-repaired after the guard).
    sb_on_retransmit(requester_idx, seq);
    return;
  }

  // The paper's simulations multicast every repair (rexmit_thresh = 0): the
  // missing-receiver list is then only an emptiness test, answered by the
  // compact-min cache without touching the healthy membership.
  if (params_.rexmit_thresh == 0 && !urgent) {
    if (!table_.any_missing(census_, seq)) {
      // Nobody (still in the session) is missing it; mark the requester's
      // scoreboard so its retransmit scan makes progress.
      sb_on_retransmit(requester_idx, seq);
      return;
    }
    info.last_rexmit = sim_.now();
    info.ever_rexmitted = true;
    info.rexmitted_for_all = true;
    // The repair deserves a full RTO before the stall is declared a timeout.
    restart_timeout_timer();
    // Multicast repair. Compact receivers inherit the mark lazily via
    // rexmitted_for_all; excluded receivers' boards stay frozen.
    for (const int i : table_.materialized_ids())
      if (!census_.excluded(i)) table_.board(i).on_retransmit(seq);
    send_data_packet(seq, /*rexmit=*/true, net::kNoNode, 0);
    ++mcast_rexmits_;
    return;
  }

  // Count receivers currently missing the packet (ascending order: the
  // unicast branch sends a repair per requester in index order).
  std::vector<int> missing;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const int idx = static_cast<int>(i);
    if (census_.excluded(idx)) continue;
    if (seq >= table_.una(idx) && seq < table_.high(idx) &&
        !table_.is_sacked(idx, seq))
      missing.push_back(idx);
  }
  if (missing.empty()) {
    sb_on_retransmit(requester_idx, seq);
    return;
  }

  info.last_rexmit = sim_.now();
  info.ever_rexmitted = true;
  restart_timeout_timer();

  if (static_cast<int>(missing.size()) > params_.rexmit_thresh && !urgent) {
    info.rexmitted_for_all = true;
    for (const int i : table_.materialized_ids())
      if (!census_.excluded(i)) table_.board(i).on_retransmit(seq);
    send_data_packet(seq, /*rexmit=*/true, net::kNoNode, 0);
    ++mcast_rexmits_;
  } else {
    // Unicast repair to each requester (or just the urgent one).
    for (const int i : missing) {
      sb_on_retransmit(i, seq);
      send_data_packet(seq, /*rexmit=*/true, table_.node(i), table_.port(i));
      ++ucast_rexmits_;
    }
  }
}

void RlaSender::send_new_data(int budget) {
  if (!started_ || table_.size() == 0) return;
  if (census_.active_count() == 0) return;  // nobody left to send to
  // Conservation of packets on the most loaded branch: new data may go out
  // while every receiver's pipe (outstanding, not SACKed, not known-lost-
  // unrepaired) has room under cwnd. This is the fast-recovery behaviour
  // the paper's implementation notes describe — a repair in flight must not
  // leave the sender idle when later packets are already SACKed.
  // Rule 5's buffer bound still applies: never beyond min_last_ack + B.
  const net::SeqNum by_buffer = min_last_ack() + params_.receiver_buffer;
  std::int64_t max_pipe = table_.max_pipe(census_);
  const auto cwnd = static_cast<std::int64_t>(win_.cwnd());
  // Quantized release: wait until a burst's worth of slots is free, then
  // send back-to-back. The quantum is capped at half the window so small
  // windows (session start, post-timeout) still flow.
  const std::int64_t quantum = std::min<std::int64_t>(
      params_.send_quantum, std::max<std::int64_t>(1, cwnd / 2));
  if (cwnd - max_pipe < quantum) return;
  while (budget-- > 0 && next_seq_ < by_buffer && max_pipe < cwnd) {
    // Increment first: the retransmission timer armed inside
    // send_data_packet must see the packet as outstanding, or the very
    // first packet of a session races the timer and a startup loss would
    // deadlock the connection.
    const net::SeqNum seq = next_seq_++;
    send_data_packet(seq, /*rexmit=*/false, net::kNoNode, 0);
    ++max_pipe;
  }
}

void RlaSender::send_data_packet(net::SeqNum seq, bool rexmit,
                                 net::NodeId unicast_to,
                                 net::PortId unicast_port) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.src_port = port_;
  p.size_bytes = params_.packet_bytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.is_rexmit = rexmit;
  p.ect = params_.ecn;
  if (unicast_to == net::kNoNode) {
    p.group = group_;
  } else {
    p.dst = unicast_to;
    p.dst_port = unicast_port;
  }

  if (!rexmit) {
    // Compact receivers track the frontier implicitly; materialized boards
    // of excluded receivers stay frozen (they must not keep accumulating
    // outstanding-packet state for the rest of the session).
    table_.on_send(seq, census_);
    send_info_[seq] = SendInfo{sim_.now(), false, -1e18};
  }

  pacer_.send(p);
  if (!rto_.armed()) restart_timeout_timer();
}

void RlaSender::restart_timeout_timer() {
  if (next_seq_ <= max_reach_all_) {
    rto_.cancel();
    return;
  }
  rto_.restart(std::max(table_.max_rto(census_), params_.rtt.min_rto));
}

void RlaSender::on_timeout() {
  if (next_seq_ <= max_reach_all_) return;

  // A crashed receiver shows up here first: its ACKs stopped, so the reach-
  // all frontier froze and the timer fired. Drop everyone silent beyond the
  // liveness bound; if that alone unfreezes the window there was no real
  // loss and the survivors need no cut.
  drop_silent_receivers();
  if (next_seq_ <= max_reach_all_) return;
  if (census_.active_count() == 0) {
    // Everyone is gone: there is nobody to repair for. Stop the timer
    // instead of multicasting retransmissions into the void forever.
    rto_.cancel();
    return;
  }

  meas_.note_timeout();
  meas_.note_congestion_signal();

  // First expiry for a given stalled packet is treated like a tail-loss
  // probe: halve the window and repair. Only a *repeated* timeout on the
  // same packet collapses the window to one and backs the timers off,
  // TCP-style. (The paper's analysis assumes timeouts are rare; this keeps
  // them from dominating when a retransmission is itself lost.)
  const bool repeated = max_reach_all_ == timeout_blocking_;
  timeout_blocking_ = max_reach_all_;
  const cc::CutAction action = policy_.on_timeout(repeated);
  cc::apply_cut_action(win_, policy_, action);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
  if (action == cc::CutAction::kCollapse) table_.rtt_back_off_all(census_);
  last_window_cut_ = sim_.now();
  meas_.note_window_cut();

  const net::SeqNum blocking = max_reach_all_;
  auto& info = send_info_[blocking];
  info.last_rexmit = sim_.now();
  info.ever_rexmitted = true;
  info.rexmitted_for_all = true;
  for (const int i : table_.materialized_ids())
    if (!census_.excluded(i)) table_.board(i).on_retransmit(blocking);
  send_data_packet(blocking, /*rexmit=*/true, net::kNoNode, 0);
  ++mcast_rexmits_;

  restart_timeout_timer();
}

void RlaSender::drop_silent_receivers() {
  if (params_.silent_drop_after <= 0.0) return;
  bool dropped = false;
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const int idx = static_cast<int>(i);
    if (census_.excluded(idx)) continue;
    if (sim_.now() - table_.last_ack_at(idx) > params_.silent_drop_after) {
      census_.exclude(idx);
      ++silent_drops_;
      dropped = true;
    }
  }
  if (!dropped) return;
  census_.recompute(sim_.now());
  // The silent receiver was pinning the frontier: recompute it over the
  // survivors and resume sending into the room that opened.
  advance_reach_all();
  send_new_data(params_.max_burst);
}

void RlaSender::set_subtree(int idx, int subtree) {
  if (!params_.degrade.enabled || subtree < 0) return;
  if (idx < 0 || static_cast<std::size_t>(idx) >= table_.size()) return;
  if (subtree_of_.size() < table_.size()) {
    subtree_of_.resize(table_.size(), -1);
    excised_.resize(table_.size(), 0);
  }
  subtree_of_[static_cast<std::size_t>(idx)] = subtree;
  subtrees_[subtree].members.push_back(idx);
  if (!degrade_timer_) {
    degrade_timer_ =
        std::make_unique<sim::Timer>(sim_, [this] { check_subtrees(); });
    degrade_timer_->schedule(params_.degrade.check_period);
  }
}

void RlaSender::check_subtrees() {
  degrade_timer_->schedule(params_.degrade.check_period);
  if (!started_) return;
  const SubtreeDegradeParams& dp = params_.degrade;
  const sim::SimTime now = sim_.now();
  for (auto& [sid, st] : subtrees_) {
    if (st.phase != Subtree::Phase::kHealthy) continue;
    // Whole-subtree silence: the NEWEST ACK over the live members is stale.
    sim::SimTime last = -1.0;
    bool any_active = false;
    for (const int m : st.members) {
      if (census_.excluded(m)) continue;
      any_active = true;
      last = std::max(last, table_.last_ack_at(m));
    }
    if (!any_active || now - last < dp.silence_after) continue;
    // The structural signature's other half: somebody OUTSIDE the subtree
    // was heard from recently.  All-quiet is a sender-side stall (or the
    // pre-start idle), not a partition — that shape belongs to the timeout
    // path and the per-receiver ladders.
    bool outside_alive = false;
    for (std::size_t i = 0; i < table_.size() && !outside_alive; ++i) {
      const int idx = static_cast<int>(i);
      if (census_.excluded(idx)) continue;
      if (i < subtree_of_.size() && subtree_of_[i] == sid) continue;
      if (now - table_.last_ack_at(idx) <= dp.silence_after)
        outside_alive = true;
    }
    if (!outside_alive) continue;
    excise_subtree(sid, st, now - last);
  }
}

void RlaSender::excise_subtree(int sid, Subtree& st, sim::SimTime silence) {
  st.phase = Subtree::Phase::kExcised;
  st.excised_at = sim_.now();
  st.reach_at_excise = max_reach_all_;
  st.healed_at = -1.0;
  st.heard.clear();
  SubtreeEvent ev;
  ev.subtree = sid;
  ev.excised_at = st.excised_at;
  ev.time_to_excise = silence;
  for (const int m : st.members) {
    if (census_.excluded(m)) continue;
    census_.exclude(m);
    excised_[static_cast<std::size_t>(m)] = 1;
    ++ev.members_excised;
  }
  st.event_index = events_.size();
  events_.push_back(ev);
  ++subtree_excisions_;
  census_.recompute(sim_.now());
  // ONE event for the whole subtree: census, reach-all frontier and the
  // RTO loop shrink to the survivors here, instead of k separate
  // silent-receiver detections each dragging its own timeout.
  advance_reach_all();
  restart_timeout_timer();
  send_new_data(params_.max_burst);
}

void RlaSender::note_heal_ack(const net::Packet& ack, int idx) {
  const int sid = subtree_of_[static_cast<std::size_t>(idx)];
  if (sid < 0) return;
  const auto it = subtrees_.find(sid);
  if (it == subtrees_.end()) return;
  Subtree& st = it->second;
  if (st.phase == Subtree::Phase::kHealthy) return;
  // Stale ACKs (in flight when the partition began, or echoes of
  // pre-partition data) don't prove anything; only an echo of a
  // post-excision send shows the path works end to end again.
  if (ack.ts_echo <= st.excised_at) return;
  const net::SeqNum cum = std::max<net::SeqNum>(0, ack.ack);
  if (st.phase == Subtree::Phase::kExcised) {
    bool was_ramping = false;
    for (const auto& [s2, st2] : subtrees_)
      if (st2.phase == Subtree::Phase::kRamping) {
        was_ramping = true;
        break;
      }
    st.phase = Subtree::Phase::kRamping;
    st.healed_at = sim_.now();
    st.ramp_next = cum;
    st.ramp_burst = std::max(1, params_.degrade.ramp_initial_burst);
    events_[st.event_index].healed_at = st.healed_at;
    if (!ramp_timer_)
      ramp_timer_ = std::make_unique<sim::Timer>(sim_, [this] { ramp_tick(); });
    if (!was_ramping) ramp_timer_->schedule(params_.degrade.ramp_tick);
  } else if (cum < st.ramp_next) {
    // A later healer is further behind: back the catch-up cursor down.
    st.ramp_next = cum;
  }
  net::SeqNum& heard = st.heard[idx];
  heard = std::max(heard, cum);
}

void RlaSender::ramp_tick() {
  const SubtreeDegradeParams& dp = params_.degrade;
  for (auto& [sid, st] : subtrees_) {
    (void)sid;
    if (st.phase != Subtree::Phase::kRamping) continue;
    // Slow-start-shaped catch-up: one doubling burst of multicast resends
    // per tick, capped, so the rejoiners' missed data flows without
    // flooding the survivors' bottleneck all at once.
    int budget = st.ramp_burst;
    while (budget-- > 0 && st.ramp_next < next_seq_) {
      send_data_packet(st.ramp_next++, /*rexmit=*/true, net::kNoNode, 0);
      ++ramp_rexmits_;
    }
    st.ramp_burst = std::min(st.ramp_burst * 2, std::max(1, dp.ramp_max_burst));
    // Graduate once the slowest heard rejoiner is within handover range of
    // the send frontier — or once the whole missed backlog has been resent
    // (ramp_next caught the frontier).  The second arm matters on a shared
    // bottleneck: there the frontier advances at the same bottleneck-limited
    // pace as the rejoiners' catch-up, the gap never closes, and an
    // exact-gap predicate would ramp forever.  Handover with a residual gap
    // is safe — once readmitted, the window is clocked off the rejoiners'
    // ACKs, so the frontier holds until the ordinary repair path closes it.
    net::SeqNum min_cum = next_seq_;
    for (const auto& [m, c] : st.heard) {
      (void)m;
      min_cum = std::min(min_cum, c);
    }
    if (st.ramp_next >= next_seq_ ||
        next_seq_ - min_cum <= dp.handover_packets)
      graduate_subtree(st);
  }
  bool any_ramping = false;
  for (const auto& [sid2, st2] : subtrees_)
    if (st2.phase == Subtree::Phase::kRamping) {
      any_ramping = true;
      break;
    }
  if (any_ramping) ramp_timer_->schedule(dp.ramp_tick);
}

void RlaSender::graduate_subtree(Subtree& st) {
  const sim::SimTime now = sim_.now();
  SubtreeEvent& ev = events_[st.event_index];
  for (const auto& [m, cum] : st.heard) {
    if (!census_.excluded(m)) continue;
    census_.readmit(m);
    excised_[static_cast<std::size_t>(m)] = 0;
    // Thaw like a late joiner, but at the rejoiner's own cumulative point:
    // the handover gap is the ordinary repair path's to close.
    table_.reset(m, cum);
    table_.note_ack(m, now);
    census_.note_srtt(m, table_.rtt(m).srtt());
    ++ev.members_readmitted;
  }
  // Members never heard from post-heal stay excluded — they crashed (or
  // churned away) rather than being partitioned.
  st.heard.clear();
  st.phase = Subtree::Phase::kHealthy;
  ev.readmitted_at = now;
  ev.time_to_readmit = now - st.healed_at;
  ev.survivor_goodput_pps =
      static_cast<double>(max_reach_all_ - st.reach_at_excise) /
      std::max(1e-9, now - st.excised_at);
  ++subtree_readmissions_;
  census_.recompute(now);
  // The rejoiners' cumulative points sit below the frontier; the monotone
  // guard in advance_reach_all keeps it from regressing, and it resumes
  // once they close the handover gap through the repair path.
  advance_reach_all();
  restart_timeout_timer();
  send_new_data(params_.max_burst);
}

void RlaSender::maybe_drop_slowest(int idx) {
  if (!params_.enable_slow_receiver_drop) return;
  if (census_.total_signals() < params_.slow_drop_min_signals) return;
  const double share =
      static_cast<double>(census_.signals(idx)) /
      static_cast<double>(census_.total_signals());
  if (share > params_.slow_drop_fraction) {
    census_.exclude(idx);
    census_.recompute(sim_.now());
    advance_reach_all();
  }
}

}  // namespace rlacast::rla
