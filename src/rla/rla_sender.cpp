#include "rla/rla_sender.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace rlacast::rla {

RlaSender::RlaSender(net::Network& network, net::NodeId node, net::PortId port,
                     net::GroupId group, net::FlowId flow, RlaParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      group_(group),
      flow_(flow),
      params_(params),
      pacer_(sim_, network,
             sim_.rng_stream("rla-overhead-" + std::to_string(flow)),
             params.max_send_overhead),
      listen_rng_(sim_.rng_stream("rla-listen-" + std::to_string(flow))),
      rto_(sim_, [this] { on_timeout(); }),
      census_(params.eta, params.signal_interval_gain),
      policy_(cc::RlaPolicyParams{.forced_cut_factor = params.forced_cut_factor,
                                  .rtt_exponent = params.rtt_exponent,
                                  .fairness_weight = params.fairness_weight,
                                  .fixed_pthresh = params.fixed_pthresh},
              census_, listen_rng_),
      win_(cc::WindowParams{.initial_cwnd = params.initial_cwnd,
                            .initial_ssthresh = params.initial_ssthresh,
                            .max_cwnd = params.max_cwnd,
                            .fairness_weight = params.fairness_weight}),
      awnd_(params.initial_cwnd) {
  census_.set_defense(params_.defense);
  network_.attach(node_, port_, this);
  meas_.note_cwnd(0.0, win_.cwnd());
  if (replay::RunObserver* obs = sim_.observer()) {
    const std::string id = "rla-" + std::to_string(flow_);
    obs->attach(id, this);
    obs->attach(id + "/window", &win_);
    obs->attach(id + "/census", &census_);
  }
}

RlaSender::~RlaSender() {
  if (replay::RunObserver* obs = sim_.observer()) {
    obs->detach(this);
    obs->detach(&win_);
    obs->detach(&census_);
    for (const auto& r : rcvrs_) obs->detach(&r->peer.rtt);
  }
}

replay::Snapshot RlaSender::snapshot_state() const {
  replay::Snapshot s;
  s.put("next_seq", next_seq_);
  s.put("max_reach_all", max_reach_all_);
  s.put("awnd", awnd_);
  s.put("last_window_cut", last_window_cut_);
  s.put("acks_received", acks_received_);
  s.put("mcast_rexmits", mcast_rexmits_);
  s.put("ucast_rexmits", ucast_rexmits_);
  s.put("silent_drops", silent_drops_);
  s.put("receivers", rcvrs_.size());
  s.put("listen_rng_draws", listen_rng_.draw_count());
  return s;
}

int RlaSender::add_receiver(net::NodeId node, net::PortId port) {
  rcvrs_.push_back(std::make_unique<ReceiverState>(params_.rtt));
  rcvrs_.back()->node = node;
  rcvrs_.back()->port = port;
  const int idx = census_.add_receiver();
  if (replay::RunObserver* obs = sim_.observer())
    obs->attach("rla-" + std::to_string(flow_) + "/rtt-" +
                    std::to_string(idx),
                &rcvrs_.back()->peer.rtt);
  // Late join: the newcomer's sequence space starts at the send frontier —
  // it is not owed data transmitted before it existed, and it must not drag
  // max_reach_all below the already-acknowledged prefix. (Beyond 64
  // receivers, per-packet RTT coverage masks saturate and mark_covered
  // skips the extra indices; everything else scales.)
  rcvrs_.back()->peer.sb.reset(next_seq_);
  rcvrs_.back()->last_ack_at = sim_.now();  // liveness clock starts at join
  return idx;
}

int RlaSender::active_receivers() const {
  int n = 0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i)
    if (!census_.excluded(static_cast<int>(i))) ++n;
  return n;
}

void RlaSender::remove_receiver(int idx) {
  if (idx < 0 || static_cast<std::size_t>(idx) >= rcvrs_.size()) return;
  if (census_.excluded(idx)) return;
  census_.exclude(idx);
  census_.recompute(sim_.now());
  // The departed receiver may have been the slowest: recompute the frontier
  // and resume sending if its absence opened the window.
  advance_reach_all();
  send_new_data(params_.max_burst);
}

void RlaSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    send_new_data(params_.max_burst);
  });
}

net::SeqNum RlaSender::min_last_ack() const {
  net::SeqNum m = next_seq_;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    if (census_.excluded(static_cast<int>(i))) continue;
    m = std::min(m, rcvrs_[i]->peer.sb.una());
  }
  return m;
}

double RlaSender::max_srtt() const {
  // Hardened path: an srtt-inflating receiver drives pthresh toward 1 for
  // everyone else (their srtt_i/srtt_max ratio collapses), so reported
  // srtts are median/MAD-clamped before the max is taken.
  if (params_.defense.enabled && params_.defense.srtt_clamp_mads > 0.0) {
    srtt_scratch_.clear();
    for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
      if (census_.excluded(static_cast<int>(i))) continue;
      srtt_scratch_.push_back(rcvrs_[i]->peer.rtt.srtt());
    }
    return cc::robust_clamped_max(srtt_scratch_,
                                  params_.defense.srtt_clamp_mads);
  }
  double m = 0.0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    if (census_.excluded(static_cast<int>(i))) continue;
    m = std::max(m, rcvrs_[i]->peer.rtt.srtt());
  }
  return m;
}

double RlaSender::pthresh_for(int rcvr) const {
  return policy_.pthresh(srtt_of(rcvr), max_srtt());
}

void RlaSender::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kAck) return;
  const int idx = p.receiver_id;
  if (idx < 0 || static_cast<std::size_t>(idx) >= rcvrs_.size()) return;
  // Quarantine/probation clock: served quarantines rejoin as late joiners
  // (scoreboard thawed at the send frontier, liveness clock restarted).
  // Polled before the excluded() gate so the quarantined member's own ACKs
  // can drive its release.
  if (params_.defense.enabled) {
    for (const int r : census_.advance_states(sim_.now())) {
      rcvrs_[static_cast<std::size_t>(r)]->peer.sb.reset(next_seq_);
      rcvrs_[static_cast<std::size_t>(r)]->last_ack_at = sim_.now();
    }
  }
  // A stale ACK from a departed/dropped receiver (in flight at leave time,
  // or a crashed receiver coming back) must not touch frozen scoreboard or
  // census state.
  if (census_.excluded(idx)) return;
  ++acks_received_;
  rcvrs_[static_cast<std::size_t>(idx)]->last_ack_at = sim_.now();
  on_ack(p, *rcvrs_[static_cast<std::size_t>(idx)], idx);
}

void RlaSender::on_ack(const net::Packet& ack, ReceiverState& r, int idx) {
  if (census_.excluded(idx)) return;

  // Per-receiver RTT estimate (Karn: skip samples off retransmitted seqs —
  // a multicast retransmission poisons the echo for every receiver, so the
  // global ever_rexmitted flag is the correct guard).
  if (ack.seq != net::kNoSeq && ack.ts_echo > 0.0) {
    const auto it = send_info_.find(ack.seq);
    const bool clean = it == send_info_.end() || !it->second.ever_rexmitted;
    if (clean && !r.peer.sb.was_retransmitted(ack.seq))
      r.peer.rtt.add_sample(sim_.now() - ack.ts_echo);
  }

  if (r.peer.sb.advance(ack.ack) > 0) r.peer.rtt.reset_backoff();
  r.peer.sb.apply_sack(ack.sack.data(), ack.n_sack);
  mark_covered(ack, idx);
  const int new_losses = r.peer.sb.detect_losses(params_.dupthresh);

  // Rule 2: a new congestion period only starts beyond 2*srtt_i of the last
  // one; losses inside the window are grouped into the same signal. An ECN
  // echo is a congestion indication of equal rank — it enters the same
  // grouping, so a mark plus losses in one buffer period stay one signal.
  if (new_losses > 0 || (params_.ecn && ack.ece)) {
    const double srtt = r.peer.rtt.srtt();
    if (r.grouper.try_open_period(sim_.now(), params_.grouping_rtts * srtt))
      handle_congestion_signal(r, idx);
  }

  // A lost *retransmission* would otherwise only be recoverable by the full
  // timeout: re-arm the head-of-line hole for repair once the previous
  // repair has clearly failed (no ACK within this receiver's RTO of it).
  if (!census_.excluded(idx)) {
    const net::SeqNum hol = first_missing(r);
    if (hol < r.peer.sb.high() && r.peer.sb.is_lost(hol) &&
        r.peer.sb.was_retransmitted(hol)) {
      const auto it = send_info_.find(hol);
      if (it != send_info_.end() &&
          sim_.now() - it->second.last_rexmit > r.peer.rtt.rto())
        r.peer.sb.clear_retransmitted(hol);
    }
  }

  // Retransmission handling is independent of the listening decision: every
  // newly detected hole is repaired. (The signal handler above may have
  // excluded this receiver via the slow-drop option — then its holes are
  // nobody's problem anymore.)
  net::SeqNum s;
  while (!census_.excluded(idx) &&
         (s = r.peer.sb.next_to_retransmit()) != net::kNoSeq)
    maybe_retransmit(s, idx, ack.urgent_rexmit_request);

  // New data is clocked by reach-all advances (inside advance_reach_all),
  // mirroring TCP's cumulative-ACK clocking: one send trigger per packet
  // acknowledged by all, so the multicast sender's arrival pattern at the
  // bottleneck stays as bursty as its TCP competitors' (§3.1 requires the
  // senders to "send packets in a fashion similar to the TCP senders" for
  // the equal-congestion-frequency argument to hold). A SACK-only ACK that
  // shrank some pipe still triggers a conservation send below, or recovery
  // could stall the session.
  advance_reach_all();
  if (r.peer.sb.lost_count() > 0) send_new_data(params_.max_burst);
}

void RlaSender::handle_congestion_signal(ReceiverState& r, int idx) {
  meas_.note_congestion_signal();
  census_.on_signal(idx, sim_.now());
  census_.recompute(sim_.now());
  maybe_drop_slowest(idx);

  // The §3.3 cut rules — troubled-census consult, forced-cut guard,
  // randomized listening — live in cc::RlaPolicy.
  cc::SignalContext ctx;
  ctx.now = sim_.now();
  ctx.receiver = idx;
  ctx.srtt = r.peer.rtt.srtt();
  ctx.srtt_max = max_srtt();
  ctx.awnd = awnd_;
  ctx.last_cut = last_window_cut_;
  const cc::CutAction action = policy_.on_signal(ctx);
  if (cc::apply_cut_action(win_, policy_, action)) {
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    last_window_cut_ = sim_.now();
    meas_.note_window_cut();
    if (action == cc::CutAction::kForcedHalve) meas_.note_forced_cut();
  }
}

std::uint64_t RlaSender::active_mask() const {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < rcvrs_.size() && i < 64; ++i)
    if (!census_.excluded(static_cast<int>(i))) m |= 1ULL << i;
  return m;
}

void RlaSender::mark_one(net::SeqNum seq, SendInfo& info, std::uint64_t bit) {
  if (info.rtt_sampled) return;
  info.acked_mask |= bit;
  const std::uint64_t need = active_mask();
  if ((info.acked_mask & need) == need) {
    info.rtt_sampled = true;
    if (!info.ever_rexmitted)
      meas_.note_rtt(sim_.now(), sim_.now() - info.first_sent);
  }
  (void)seq;
}

void RlaSender::mark_covered(const net::Packet& ack, int idx) {
  if (idx >= 64) return;  // RTT sampling supports the paper-scale sessions
  const std::uint64_t bit = 1ULL << idx;
  // Cumulative region: send_info_ only holds seqs >= max_reach_all_, so the
  // walk below touches the not-yet-reached window prefix only.
  for (auto it = send_info_.begin();
       it != send_info_.end() && it->first < ack.ack; ++it)
    mark_one(it->first, it->second, bit);
  for (int b = 0; b < ack.n_sack; ++b) {
    auto it = send_info_.lower_bound(ack.sack[static_cast<std::size_t>(b)].lo);
    for (; it != send_info_.end() &&
           it->first < ack.sack[static_cast<std::size_t>(b)].hi;
         ++it)
      mark_one(it->first, it->second, bit);
  }
}

net::SeqNum RlaSender::first_missing(const ReceiverState& r) const {
  net::SeqNum s = r.peer.sb.una();
  while (s < r.peer.sb.high() && r.peer.sb.is_sacked(s)) ++s;
  return s;
}

void RlaSender::advance_reach_all() {
  net::SeqNum reach = next_seq_;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    if (census_.excluded(static_cast<int>(i))) continue;
    reach = std::min(reach, first_missing(*rcvrs_[i]));
  }
  if (reach <= max_reach_all_) return;

  const std::int64_t m = reach - max_reach_all_;
  // Rule 4: growth is driven by packets acknowledged by ALL receivers.
  win_.grow(m);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
  awnd_ += params_.awnd_gain * (win_.cwnd() - awnd_);
  meas_.note_acked(m);

  // RTT sampling happens in mark_one() the instant the last receiver's ACK
  // covers a packet; here the bookkeeping below the new reach point is
  // simply discarded.
  send_info_.erase(send_info_.begin(), send_info_.lower_bound(reach));
  max_reach_all_ = reach;
  restart_timeout_timer();
  send_new_data(params_.max_burst);
}

void RlaSender::maybe_retransmit(net::SeqNum seq, int requester_idx,
                                 bool urgent) {
  auto& info = send_info_[seq];
  // Rate-limit repairs of the same packet: one per max-srtt unless urgent.
  const double guard = std::max(max_srtt(), 1e-3);
  if (!urgent && sim_.now() - info.last_rexmit < guard) {
    // Mark per-receiver so next_to_retransmit() makes progress; the packet
    // is already on its way (or will be re-repaired after the guard).
    rcvrs_[static_cast<std::size_t>(requester_idx)]->peer.sb.on_retransmit(
        seq);
    return;
  }

  // Count receivers currently missing the packet.
  std::vector<int> missing;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    if (census_.excluded(static_cast<int>(i))) continue;
    const auto& sb = rcvrs_[i]->peer.sb;
    if (seq >= sb.una() && seq < sb.high() && !sb.is_sacked(seq))
      missing.push_back(static_cast<int>(i));
  }
  if (missing.empty()) {
    // Nobody (still in the session) is missing it; mark the requester's
    // scoreboard so its retransmit scan makes progress.
    rcvrs_[static_cast<std::size_t>(requester_idx)]->peer.sb.on_retransmit(
        seq);
    return;
  }

  info.last_rexmit = sim_.now();
  info.ever_rexmitted = true;
  // The repair deserves a full RTO before the stall is declared a timeout.
  restart_timeout_timer();

  if (static_cast<int>(missing.size()) > params_.rexmit_thresh && !urgent) {
    // Multicast repair. Excluded receivers' scoreboards stay frozen.
    for (std::size_t i = 0; i < rcvrs_.size(); ++i)
      if (!census_.excluded(static_cast<int>(i)))
        rcvrs_[i]->peer.sb.on_retransmit(seq);
    send_data_packet(seq, /*rexmit=*/true, net::kNoNode, 0);
    ++mcast_rexmits_;
  } else {
    // Unicast repair to each requester (or just the urgent one).
    for (int i : missing) {
      auto& r = *rcvrs_[static_cast<std::size_t>(i)];
      r.peer.sb.on_retransmit(seq);
      send_data_packet(seq, /*rexmit=*/true, r.node, r.port);
      ++ucast_rexmits_;
    }
  }
}

void RlaSender::send_new_data(int budget) {
  if (!started_ || rcvrs_.empty()) return;
  if (active_receivers() == 0) return;  // nobody left to send to
  // Conservation of packets on the most loaded branch: new data may go out
  // while every receiver's pipe (outstanding, not SACKed, not known-lost-
  // unrepaired) has room under cwnd. This is the fast-recovery behaviour
  // the paper's implementation notes describe — a repair in flight must not
  // leave the sender idle when later packets are already SACKed.
  // Rule 5's buffer bound still applies: never beyond min_last_ack + B.
  const net::SeqNum by_buffer = min_last_ack() + params_.receiver_buffer;
  std::int64_t max_pipe = 0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i)
    if (!census_.excluded(static_cast<int>(i)))
      max_pipe = std::max(max_pipe, rcvrs_[i]->peer.sb.pipe());
  const auto cwnd = static_cast<std::int64_t>(win_.cwnd());
  // Quantized release: wait until a burst's worth of slots is free, then
  // send back-to-back. The quantum is capped at half the window so small
  // windows (session start, post-timeout) still flow.
  const std::int64_t quantum = std::min<std::int64_t>(
      params_.send_quantum, std::max<std::int64_t>(1, cwnd / 2));
  if (cwnd - max_pipe < quantum) return;
  while (budget-- > 0 && next_seq_ < by_buffer && max_pipe < cwnd) {
    // Increment first: the retransmission timer armed inside
    // send_data_packet must see the packet as outstanding, or the very
    // first packet of a session races the timer and a startup loss would
    // deadlock the connection.
    const net::SeqNum seq = next_seq_++;
    send_data_packet(seq, /*rexmit=*/false, net::kNoNode, 0);
    ++max_pipe;
  }
}

void RlaSender::send_data_packet(net::SeqNum seq, bool rexmit,
                                 net::NodeId unicast_to,
                                 net::PortId unicast_port) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.src_port = port_;
  p.size_bytes = params_.packet_bytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.is_rexmit = rexmit;
  p.ect = params_.ecn;
  if (unicast_to == net::kNoNode) {
    p.group = group_;
  } else {
    p.dst = unicast_to;
    p.dst_port = unicast_port;
  }

  if (!rexmit) {
    // Excluded receivers' scoreboards are frozen — they must not keep
    // accumulating outstanding-packet state for the rest of the session.
    for (std::size_t i = 0; i < rcvrs_.size(); ++i)
      if (!census_.excluded(static_cast<int>(i)))
        rcvrs_[i]->peer.sb.on_send(seq);
    send_info_[seq] = SendInfo{sim_.now(), false, -1e18};
  }

  pacer_.send(p);
  if (!rto_.armed()) restart_timeout_timer();
}

void RlaSender::restart_timeout_timer() {
  if (next_seq_ <= max_reach_all_) {
    rto_.cancel();
    return;
  }
  double rto = 0.0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    if (census_.excluded(static_cast<int>(i))) continue;
    rto = std::max(rto, rcvrs_[i]->peer.rtt.rto());
  }
  rto_.restart(std::max(rto, params_.rtt.min_rto));
}

void RlaSender::on_timeout() {
  if (next_seq_ <= max_reach_all_) return;

  // A crashed receiver shows up here first: its ACKs stopped, so the reach-
  // all frontier froze and the timer fired. Drop everyone silent beyond the
  // liveness bound; if that alone unfreezes the window there was no real
  // loss and the survivors need no cut.
  drop_silent_receivers();
  if (next_seq_ <= max_reach_all_) return;
  if (active_receivers() == 0) {
    // Everyone is gone: there is nobody to repair for. Stop the timer
    // instead of multicasting retransmissions into the void forever.
    rto_.cancel();
    return;
  }

  meas_.note_timeout();
  meas_.note_congestion_signal();

  // First expiry for a given stalled packet is treated like a tail-loss
  // probe: halve the window and repair. Only a *repeated* timeout on the
  // same packet collapses the window to one and backs the timers off,
  // TCP-style. (The paper's analysis assumes timeouts are rare; this keeps
  // them from dominating when a retransmission is itself lost.)
  const bool repeated = max_reach_all_ == timeout_blocking_;
  timeout_blocking_ = max_reach_all_;
  const cc::CutAction action = policy_.on_timeout(repeated);
  cc::apply_cut_action(win_, policy_, action);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
  if (action == cc::CutAction::kCollapse)
    for (std::size_t i = 0; i < rcvrs_.size(); ++i)
      if (!census_.excluded(static_cast<int>(i)))
        rcvrs_[i]->peer.rtt.back_off();
  last_window_cut_ = sim_.now();
  meas_.note_window_cut();

  const net::SeqNum blocking = max_reach_all_;
  auto& info = send_info_[blocking];
  info.last_rexmit = sim_.now();
  info.ever_rexmitted = true;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i)
    if (!census_.excluded(static_cast<int>(i)))
      rcvrs_[i]->peer.sb.on_retransmit(blocking);
  send_data_packet(blocking, /*rexmit=*/true, net::kNoNode, 0);
  ++mcast_rexmits_;

  restart_timeout_timer();
}

void RlaSender::drop_silent_receivers() {
  if (params_.silent_drop_after <= 0.0) return;
  bool dropped = false;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    const int idx = static_cast<int>(i);
    if (census_.excluded(idx)) continue;
    if (sim_.now() - rcvrs_[i]->last_ack_at > params_.silent_drop_after) {
      census_.exclude(idx);
      ++silent_drops_;
      dropped = true;
    }
  }
  if (!dropped) return;
  census_.recompute(sim_.now());
  // The silent receiver was pinning the frontier: recompute it over the
  // survivors and resume sending into the room that opened.
  advance_reach_all();
  send_new_data(params_.max_burst);
}

void RlaSender::maybe_drop_slowest(int idx) {
  if (!params_.enable_slow_receiver_drop) return;
  if (census_.total_signals() < params_.slow_drop_min_signals) return;
  const double share =
      static_cast<double>(census_.signals(idx)) /
      static_cast<double>(census_.total_signals());
  if (share > params_.slow_drop_fraction) {
    census_.exclude(idx);
    census_.recompute(sim_.now());
    advance_reach_all();
  }
}

}  // namespace rlacast::rla
