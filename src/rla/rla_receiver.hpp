// RLA multicast receiver.
//
// Subscribes to the session's multicast group, reassembles the packet
// stream, and acknowledges every received data packet (multicast original,
// multicast retransmission, or unicast retransmission) with a unicast
// SACK-format ACK carrying its receiver id — the same ACK format as TCP
// SACK, per §3.3 rule 1.
//
// Optionally sets the urgent-retransmission flag on its ACKs when the same
// hole has persisted across many ACKs, which the sender answers with an
// immediate unicast retransmission (the paper's "the receiver can also
// trigger an immediate retransmission of a lost packet by unicast if it
// sets a field in the packet").
#pragma once

#include "net/agent.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"
#include "tcp/reassembly.hpp"

namespace rlacast::rla {

/// Interception point for outgoing ACKs, consulted just before an ACK is
/// handed to the pacer. fault::ReceiverAdversary implements this to model
/// misbehaving receivers (srtt liars, signal storms, mutes) without the
/// receiver itself knowing it is lying; nullptr (the default) is the honest
/// receiver. The tap may rewrite the ACK in place, suppress it, or ask for
/// extra verbatim copies (NACK implosion).
class AckTap {
 public:
  struct Verdict {
    bool suppress = false;  // drop the ACK instead of sending it
    int extra_copies = 0;   // send this many additional copies after it
  };

  virtual ~AckTap() = default;
  virtual Verdict on_ack(net::Packet& ack, sim::SimTime now) = 0;
};

struct RlaReceiverOptions {
  std::int32_t ack_bytes = net::kAckPacketBytes;
  /// 0 disables urgent requests; otherwise request after this many
  /// consecutive ACKs with an unchanged cumulative point and data above it.
  int urgent_after_stuck_acks = 0;
  /// Late-join stream resumption: the first data packet received defines
  /// the start of this receiver's stream (everything earlier is not owed).
  /// Enable for receivers joining an in-progress session.
  bool resume_at_first_packet = false;
  /// Random per-ACK processing time, Uniform(0, max). Essential with
  /// drop-tail gateways: a multicast packet reaches all receivers of a
  /// balanced tree at the same instant, so without receiver-side jitter
  /// their ACKs hit shared reverse queues as a simultaneous burst and the
  /// tail of the burst is deterministically dropped every round — the §3.1
  /// phase effect on the feedback path.
  sim::SimTime max_ack_overhead = 0.0;
};

class RlaReceiver final : public net::Agent {
 public:
  using Options = RlaReceiverOptions;

  /// `id` is this receiver's index within the session (echoed in ACKs).
  RlaReceiver(net::Network& network, net::NodeId node, net::PortId port,
              net::GroupId group, net::NodeId sender_node,
              net::PortId sender_port, int id, Options options = {});

  void on_receive(const net::Packet& p) override;

  /// Crash fault: a silenced receiver still gets packets (it is still in
  /// the multicast tree) but processes and acknowledges nothing — exactly
  /// what the sender sees when a receiver host dies.
  void set_silenced(bool silenced) { silenced_ = silenced; }
  bool silenced() const { return silenced_; }

  /// Installs (or clears, with nullptr) the outgoing-ACK tap. Not owned.
  void set_ack_tap(AckTap* tap) { ack_tap_ = tap; }
  AckTap* ack_tap() const { return ack_tap_; }

  int id() const { return id_; }
  const tcp::ReassemblyBuffer& buffer() const { return buf_; }
  std::uint64_t data_packets_received() const { return received_; }
  std::uint64_t duplicates_received() const { return duplicates_; }
  std::uint64_t urgent_requests_sent() const { return urgent_requests_; }

 private:
  net::Network& network_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::NodeId sender_node_;
  net::PortId sender_port_;
  int id_;
  Options options_;

  net::SendPacer ack_pacer_;
  tcp::ReassemblyBuffer buf_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t urgent_requests_ = 0;
  net::SeqNum stuck_cum_ = -1;
  int stuck_acks_ = 0;
  bool silenced_ = false;
  AckTap* ack_tap_ = nullptr;
};

}  // namespace rlacast::rla
