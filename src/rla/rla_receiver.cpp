#include "rla/rla_receiver.hpp"

#include <string>

namespace rlacast::rla {

RlaReceiver::RlaReceiver(net::Network& network, net::NodeId node,
                         net::PortId port, net::GroupId group,
                         net::NodeId sender_node, net::PortId sender_port,
                         int id, Options options)
    : network_(network),
      node_(node),
      port_(port),
      group_(group),
      sender_node_(sender_node),
      sender_port_(sender_port),
      id_(id),
      options_(options),
      ack_pacer_(network.simulator(), network,
                 network.simulator().rng_stream(
                     "rla-ack-overhead-" + std::to_string(node) + "-" +
                     std::to_string(id)),
                 options.max_ack_overhead) {
  // Unicast retransmissions arrive addressed to (node, port); multicast
  // payload arrives via the group subscription.
  network_.attach(node_, port_, this);
  network_.subscribe(group_, node_, this);
}

void RlaReceiver::on_receive(const net::Packet& p) {
  if (silenced_) return;  // crashed host: packets fall on the floor
  if (p.type != net::PacketType::kData) return;
  if (options_.resume_at_first_packet && buf_.cum_ack() == 0 &&
      buf_.highest() == 0 && p.seq > 0)
    buf_.start_at(p.seq);
  if (buf_.add(p.seq))
    ++received_;
  else
    ++duplicates_;

  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.flow = p.flow;
  ack.src = node_;
  ack.dst = sender_node_;
  ack.src_port = port_;
  ack.dst_port = sender_port_;
  ack.size_bytes = options_.ack_bytes;
  ack.ack = buf_.cum_ack();
  ack.seq = p.seq;
  ack.ts_echo = p.ts_echo;
  ack.ece = p.ce;  // echo a congestion-experienced mark (ECN)
  ack.receiver_id = id_;
  ack.n_sack = static_cast<std::uint8_t>(
      buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));

  // Urgent-retransmission request when a hole persists (optional).
  if (options_.urgent_after_stuck_acks > 0) {
    if (buf_.cum_ack() == stuck_cum_ && buf_.highest() > buf_.cum_ack()) {
      if (++stuck_acks_ >= options_.urgent_after_stuck_acks) {
        ack.urgent_rexmit_request = true;
        ++urgent_requests_;
        stuck_acks_ = 0;
      }
    } else {
      stuck_cum_ = buf_.cum_ack();
      stuck_acks_ = 0;
    }
  }

  if (ack_tap_ != nullptr) {
    const AckTap::Verdict v = ack_tap_->on_ack(ack, network_.simulator().now());
    if (v.suppress) return;
    ack_pacer_.send(ack);
    for (int i = 0; i < v.extra_copies; ++i) ack_pacer_.send(ack);
    return;
  }
  ack_pacer_.send(ack);
}

}  // namespace rlacast::rla
