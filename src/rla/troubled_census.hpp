// Moved to cc/troubled_census.hpp: the census is consulted by
// cc::RlaPolicy (the loss-response side of the §3.3 rules), so it lives in
// the congestion-control core. This alias keeps the historical rla::
// spelling working for existing includes.
#pragma once

#include "cc/troubled_census.hpp"

namespace rlacast::rla {

using TroubledCensus = cc::TroubledCensus;

}  // namespace rlacast::rla
