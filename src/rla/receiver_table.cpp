#include "rla/receiver_table.hpp"

#include <algorithm>
#include <cassert>

namespace rlacast::rla {

void ReceiverTable::reserve(std::size_t n) {
  node_.reserve(n);
  port_.reserve(n);
  una_.reserve(n);
  last_ack_at_.reserve(n);
  sb_slot_.reserve(n);
  if (slim_)
    est_slot_.reserve(n);
  else
    grouper_.reserve(n);
}

int ReceiverTable::add(net::NodeId node, net::PortId port,
                       net::SeqNum frontier, sim::SimTime now) {
  const int i = static_cast<int>(node_.size());
  node_.push_back(node);
  port_.push_back(port);
  una_.push_back(frontier);
  last_ack_at_.push_back(now);
  sb_slot_.push_back(-1);
  if (slim_) {
    est_slot_.push_back(-1);
  } else {
    rtt_.emplace_back(rtt_params_);
    grouper_.emplace_back();
  }
  if (frontier_ < frontier) frontier_ = frontier;
  cmin_valid_ = false;
  rto_valid_ = false;
  return i;
}

ReceiverTable::TrackedState& ReceiverTable::ensure_slot(int i) {
  const std::size_t ii = idx(i);
  if (est_slot_[ii] < 0) {
    est_slot_[ii] = static_cast<std::int32_t>(tracked_.size());
    tracked_.emplace_back(rtt_params_);
    // Seed from the shared estimate: a member promoted mid-run should not
    // restart at the cold initial RTO.  (With reservoir >= N every member
    // is promoted before the fallback ever sees a sample, so the copy is
    // pristine and slim stays bit-identical to dense.)
    tracked_.back().rtt = fallback_rtt_;
    tracked_ids_.push_back(i);
    rto_valid_ = false;  // i's rto source changed from fallback to its own
  }
  return tracked_[static_cast<std::size_t>(est_slot_[ii])];
}

net::SeqNum ReceiverTable::first_missing(int i) const {
  if (!materialized(i)) return una_[idx(i)];
  return board(i).first_missing();  // cursor-cached, amortized O(1)
}

std::int64_t ReceiverTable::advance(int i, net::SeqNum new_una) {
  const std::size_t ii = idx(i);
  if (materialized(i)) {
    const std::int64_t n = board(i).advance(new_una);
    una_[ii] = board(i).una();
    return n;
  }
  if (new_una <= una_[ii]) return 0;
  const std::int64_t n = new_una - una_[ii];
  // Maintain the compact-min cache: if this receiver held the minimum its
  // departure may exhaust the count; a fresh minimum is found lazily.
  if (cmin_valid_ && una_[ii] == cmin_) {
    if (--cmin_count_ == 0) cmin_valid_ = false;
  }
  una_[ii] = new_una;
  return n;
}

bool ReceiverTable::any_missing(const cc::TroubledCensus& census,
                                net::SeqNum seq) const {
  refresh_compact_min(census);
  // A compact active receiver is missing seq iff una <= seq < frontier;
  // the smallest una decides for all of them.
  if (cmin_any_ && cmin_ <= seq && seq < frontier_) return true;
  for (int i : materialized_) {
    if (census.excluded(i)) continue;
    const cc::Scoreboard& sb = board(i);
    if (seq >= sb.una() && seq < sb.high() && !sb.is_sacked(seq)) return true;
  }
  return false;
}

bool ReceiverTable::sack_effective(int i, const net::SackBlock* blocks,
                                   int n) const {
  const net::SeqNum lo_bound = una_[idx(i)];
  for (int b = 0; b < n; ++b) {
    const net::SeqNum lo = std::max(blocks[b].lo, lo_bound);
    const net::SeqNum hi = std::min(blocks[b].hi, frontier_);
    if (lo < hi) return true;
  }
  return false;
}

cc::Scoreboard& ReceiverTable::materialize(int i) {
  assert(!materialized(i));
  // A diverged receiver is interesting by definition: give it its own RTT
  // estimator alongside its board.
  if (slim_) (void)ensure_slot(i);
  int slot_id;
  if (free_slots_.empty()) {
    pool_.push_back(std::make_unique<cc::Scoreboard>());
    slot_id = static_cast<int>(pool_.size()) - 1;
  } else {
    slot_id = free_slots_.back();
    free_slots_.pop_back();
  }
  sb_slot_[idx(i)] = slot_id;
  materialized_.push_back(i);
  cc::Scoreboard& sb = *pool_[static_cast<std::size_t>(slot_id)];
  sb.reset(una_[idx(i)]);
  for (net::SeqNum s = una_[idx(i)]; s < frontier_; ++s) sb.on_send(s);
  cmin_valid_ = false;  // one fewer compact member
  return sb;
}

void ReceiverTable::reclaim_if_clean(int i) {
  if (!materialized(i)) return;
  cc::Scoreboard& sb = board(i);
  if (!sb.clean() || sb.high() != frontier_) return;
  // Drop the board's per-packet nodes while it sits in the free list —
  // materialize() resets it anyway, and a clean board still spans the full
  // outstanding window, which would otherwise stay resident per pool slot.
  sb.reset(0);
  free_slots_.push_back(sb_slot_[idx(i)]);
  sb_slot_[idx(i)] = -1;
  auto it = std::find(materialized_.begin(), materialized_.end(), i);
  assert(it != materialized_.end());
  *it = materialized_.back();
  materialized_.pop_back();
  cmin_valid_ = false;  // one more compact member
}

void ReceiverTable::on_send(net::SeqNum seq, const cc::TroubledCensus& census) {
  assert(seq == frontier_ && "new packets must be sent in order");
  for (int i : materialized_)
    if (!census.excluded(i)) board(i).on_send(seq);
  frontier_ = seq + 1;
}

void ReceiverTable::reset(int i, net::SeqNum next_seq) {
  const std::size_t ii = idx(i);
  if (materialized(i)) {
    board(i).reset(0);
    free_slots_.push_back(sb_slot_[ii]);
    sb_slot_[ii] = -1;
    auto it = std::find(materialized_.begin(), materialized_.end(), i);
    assert(it != materialized_.end());
    *it = materialized_.back();
    materialized_.pop_back();
  }
  una_[ii] = next_seq;
  cmin_valid_ = false;
}

void ReceiverTable::rtt_back_off_all(const cc::TroubledCensus& census) {
  if (slim_) {
    for (std::size_t s = 0; s < tracked_ids_.size(); ++s)
      if (!census.excluded(tracked_ids_[s])) tracked_[s].rtt.back_off();
    // The fallback stands for every untracked member; none of them can be
    // excluded individually, so it always backs off.  (Never consulted
    // while all members are tracked.)
    fallback_rtt_.back_off();
    rto_valid_ = false;
    return;
  }
  for (std::size_t i = 0; i < rtt_.size(); ++i)
    if (!census.excluded(static_cast<int>(i))) rtt_[i].back_off();
  rto_valid_ = false;
}

void ReceiverTable::note_rto(int i) {
  if (!rto_valid_) return;
  const double v = rtt(i).rto();
  // Untracked slim members share the fallback estimator, so the cache
  // holder for any of them is the fallback itself.
  const int holder = tracked(i) ? i : kFallbackHolder;
  if (v >= rto_cache_) {
    rto_cache_ = v;
    rto_holder_ = holder;
  } else if (holder == rto_holder_) {
    rto_valid_ = false;  // the holder shrank; true max unknown
  }
}

void ReceiverTable::refresh_compact_min(
    const cc::TroubledCensus& census) const {
  if (cmin_valid_ && cmin_membership_ == census.membership_version()) return;
  cmin_any_ = false;
  cmin_ = 0;
  cmin_count_ = 0;
  for (std::size_t i = 0; i < una_.size(); ++i) {
    if (sb_slot_[i] >= 0 || census.excluded(static_cast<int>(i))) continue;
    if (!cmin_any_ || una_[i] < cmin_) {
      cmin_any_ = true;
      cmin_ = una_[i];
      cmin_count_ = 1;
    } else if (una_[i] == cmin_) {
      ++cmin_count_;
    }
  }
  cmin_valid_ = true;
  cmin_membership_ = census.membership_version();
}

net::SeqNum ReceiverTable::min_una(const cc::TroubledCensus& census,
                                   net::SeqNum fallback) const {
  refresh_compact_min(census);
  bool any = cmin_any_;
  net::SeqNum m = cmin_any_ ? cmin_ : 0;
  for (int i : materialized_) {
    if (census.excluded(i)) continue;
    const net::SeqNum u = board(i).una();
    if (!any || u < m) {
      any = true;
      m = u;
    }
  }
  return any ? m : fallback;
}

net::SeqNum ReceiverTable::min_first_missing(const cc::TroubledCensus& census,
                                             net::SeqNum fallback) const {
  // Compact members' first_missing == una, so the compact minimum carries
  // over; only materialized boards need the SACK-run walk.
  refresh_compact_min(census);
  bool any = cmin_any_;
  net::SeqNum m = cmin_any_ ? cmin_ : 0;
  for (int i : materialized_) {
    if (census.excluded(i)) continue;
    const net::SeqNum fm = first_missing(i);
    if (!any || fm < m) {
      any = true;
      m = fm;
    }
  }
  return any ? m : fallback;
}

std::int64_t ReceiverTable::max_pipe(const cc::TroubledCensus& census) const {
  // Compact pipes are frontier - una, maximized by the minimum una.
  refresh_compact_min(census);
  std::int64_t m = 0;
  if (cmin_any_) m = frontier_ - cmin_;
  for (int i : materialized_) {
    if (census.excluded(i)) continue;
    m = std::max(m, board(i).pipe());
  }
  return m;
}

sim::SimTime ReceiverTable::max_rto(const cc::TroubledCensus& census) const {
  if (!rto_valid_ || rto_membership_ != census.membership_version()) {
    bool any = false;
    rto_cache_ = 0.0;
    rto_holder_ = -1;
    if (slim_) {
      // O(tracked), not O(N): untracked members all share the fallback.
      int tracked_active = 0;
      for (std::size_t s = 0; s < tracked_ids_.size(); ++s) {
        const int i = tracked_ids_[s];
        if (census.excluded(i)) continue;
        ++tracked_active;
        const double v = tracked_[s].rtt.rto();
        if (!any || v >= rto_cache_) {
          any = true;
          rto_cache_ = v;
          rto_holder_ = i;
        }
      }
      // The fallback only counts while some active member is untracked —
      // with reservoir >= N it never enters the max (bit-identity).
      if (census.active_count() > tracked_active) {
        const double v = fallback_rtt_.rto();
        if (!any || v >= rto_cache_) {
          any = true;
          rto_cache_ = v;
          rto_holder_ = kFallbackHolder;
        }
      }
    } else {
      for (std::size_t i = 0; i < rtt_.size(); ++i) {
        if (census.excluded(static_cast<int>(i))) continue;
        const double v = rtt_[i].rto();
        if (!any || v >= rto_cache_) {
          any = true;
          rto_cache_ = v;
          rto_holder_ = static_cast<int>(i);
        }
      }
    }
    rto_valid_ = any;
    rto_membership_ = census.membership_version();
    if (!rto_valid_) return 0.0;
  }
  return rto_cache_;
}

std::size_t ReceiverTable::state_bytes() const {
  std::size_t b = sizeof(*this);
  b += node_.capacity() * sizeof(net::NodeId);
  b += port_.capacity() * sizeof(net::PortId);
  b += una_.capacity() * sizeof(net::SeqNum);
  b += last_ack_at_.capacity() * sizeof(sim::SimTime);
  b += sb_slot_.capacity() * sizeof(int);
  b += rtt_.size() * sizeof(cc::RttEstimator);
  b += grouper_.capacity() * sizeof(cc::SignalGrouper);
  b += est_slot_.capacity() * sizeof(std::int32_t);
  b += tracked_.size() * sizeof(TrackedState);
  b += tracked_ids_.capacity() * sizeof(int);
  b += pool_.capacity() * sizeof(void*);
  for (const auto& sb : pool_) b += sb->state_bytes();
  b += free_slots_.capacity() * sizeof(int);
  b += materialized_.capacity() * sizeof(int);
  return b;
}

}  // namespace rlacast::rla
