#include "rla/group_receiver.hpp"

#include <string>
#include <utility>

namespace rlacast::rla {

GroupReceiver::GroupReceiver(net::Network& network, net::NodeId node,
                             net::PortId port, net::GroupId group,
                             net::NodeId sender_node, net::PortId sender_port,
                             std::vector<int> member_ids, Options options)
    : network_(network),
      node_(node),
      port_(port),
      group_(group),
      sender_node_(sender_node),
      sender_port_(sender_port),
      members_(std::move(member_ids)),
      options_(options),
      ack_pacer_(network.simulator(), network,
                 network.simulator().rng_stream(
                     "rla-ack-overhead-" + std::to_string(node) + "-g" +
                     std::to_string(members_.empty() ? -1 : members_.front())),
                 options.max_ack_overhead) {
  network_.attach(node_, port_, this);
  network_.subscribe(group_, node_, this);
}

void GroupReceiver::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  if (buf_.add(p.seq)) ++received_;

  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.flow = p.flow;
  ack.src = node_;
  ack.dst = sender_node_;
  ack.src_port = port_;
  ack.dst_port = sender_port_;
  ack.size_bytes = options_.ack_bytes;
  ack.ack = buf_.cum_ack();
  ack.seq = p.seq;
  ack.ts_echo = p.ts_echo;
  ack.ece = p.ce;  // echo a congestion-experienced mark (ECN)
  ack.n_sack = static_cast<std::uint8_t>(
      buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));

  // Urgent-repair request when the shared buffer's hole persists; carried
  // on the first member's ACK only (one unicast repair fills it for all).
  bool urgent = false;
  if (options_.urgent_after_stuck_acks > 0) {
    if (buf_.cum_ack() == stuck_cum_ && buf_.highest() > buf_.cum_ack()) {
      if (++stuck_acks_ >= options_.urgent_after_stuck_acks) {
        urgent = true;
        ++urgent_requests_;
        stuck_acks_ = 0;
      }
    } else {
      stuck_cum_ = buf_.cum_ack();
      stuck_acks_ = 0;
    }
  }

  // One feedback packet per member: the group shares one buffer but not
  // one voice — sender-side state, census liveness, and reverse-path load
  // all scale with the real membership.
  for (int id : members_) {
    ack.receiver_id = id;
    ack.urgent_rexmit_request = urgent && id == members_.front();
    ack_pacer_.send(ack);
    ++acks_sent_;
  }
}

}  // namespace rlacast::rla
