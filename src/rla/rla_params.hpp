// Tunables of the Random Listening Algorithm, with the defaults the paper
// recommends or uses in its evaluation (§3.3, §5).
#pragma once

#include <cstdint>

#include "cc/rtt_estimator.hpp"
#include "cc/troubled_census.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rlacast::rla {

/// Frontier-progress watchdog (liveness defense).  The census rate defense
/// catches receivers that signal too often; it cannot catch a coalition
/// that simply stops acknowledging past some sequence number while staying
/// otherwise chatty — the reach-all frontier freezes, the window drains to
/// its trailing edge, and the session stalls even though a *majority* of
/// receivers keeps ACKing (the silent-receiver drop never fires because the
/// pinners are not silent).  The watchdog detects that shape — frontier
/// pinned for several RTOs while a healthy ACK stream flows and the
/// blocking packet has already been repaired — and force-quarantines the
/// pinning receivers through the census strike machinery, unless every
/// active receiver is pinned (then the loss is genuine and the timeout path
/// owns it).
struct FrontierWatchdogParams {
  bool enabled = false;
  /// Stall threshold in units of the current max receiver RTO.
  double stall_rtos = 3.0;
  /// Absolute floor of the stall threshold, seconds.
  sim::SimTime min_stall = 1.0;
  /// ACKs that must arrive during the stall before receivers are blamed —
  /// a frozen frontier with no ACK flow at all is loss, not pinning.
  std::uint64_t min_acks = 32;
  /// Cum-withholding bound.  A receiver can freeze its cumulative ACK while
  /// SACKing everything above it: reach-all then advances through
  /// first_missing (no frontier stall for the watchdog to see), but
  /// advance() never prunes its scoreboard, whose per-packet state — and
  /// the cost of every SACK walk across it — grows without bound.  An
  /// honest receiver's SACK lead over its own cumulative point is bounded
  /// by the congestion window; one whose lead exceeds this many packets is
  /// withholding and is quarantined like a frontier pinner.  0 disables.
  std::int64_t max_sack_lead = 2048;
};

/// Sender-side graceful degradation under structural failure (partition /
/// router crash).  The per-receiver ladders — silent_drop_after, the census
/// strike machinery — treat each dead receiver separately: a partitioned
/// subtree of k members costs k independent detections while the reach-all
/// frontier stays pinned and the RTO path keeps multicasting repairs into
/// the void.  This detector recognizes the *structural* shape instead:
/// every member of one topology subtree fell silent at once while
/// receivers outside it keep acknowledging.  The whole subtree is then
/// excised in one event — members ride the census exclusion, so
/// num_trouble, reach-all, and the RTO loop shrink to the survivors and
/// the dead members' rexmit state collapses into a single SubtreeEvent
/// record (no RTO storm).  When the partition heals, the first ACK whose
/// ts_echo postdates the excision starts a slow-start-style re-admission
/// ramp: missed data is re-multicast in doubling bursts, and once the
/// rejoiners' cumulative point is within handover_packets of the send
/// frontier they are re-admitted to the census (fresh epoch, reset
/// liveness clock) without collapsing the survivors' window.
struct SubtreeDegradeParams {
  bool enabled = false;
  /// Whole-subtree ACK silence before excision — also the bound on
  /// time-to-excise (plus one check_period of polling slack).  Must be
  /// well above one leaf RTT or a burst loss looks like a partition.
  sim::SimTime silence_after = 1.0;
  /// Detection poll period.
  sim::SimTime check_period = 0.25;
  /// Re-admission ramp tick; each tick multicasts one burst of catch-up
  /// retransmissions for every ramping subtree.
  sim::SimTime ramp_tick = 0.05;
  /// First ramp burst, in packets; doubles each tick (slow-start shape)
  /// up to ramp_max_burst.
  int ramp_initial_burst = 2;
  int ramp_max_burst = 64;
  /// The rejoining subtree graduates (census re-admission) once the gap
  /// between its members' cumulative point and the send frontier is at
  /// most this many packets; the ordinary repair path closes the rest.
  std::int64_t handover_packets = 8;
};

/// One excision → (heal → re-admission) episode of a subtree, exposed by
/// RlaSender::subtree_events() and surfaced in topo results.
struct SubtreeEvent {
  int subtree = -1;
  sim::SimTime excised_at = 0.0;
  /// Silence observed when the excision fired (>= silence_after).
  sim::SimTime time_to_excise = 0.0;
  int members_excised = 0;
  sim::SimTime healed_at = -1.0;      // first post-excision ACK; -1 = never
  sim::SimTime readmitted_at = -1.0;  // ramp graduation; -1 = never
  sim::SimTime time_to_readmit = -1.0;  // readmitted_at - healed_at
  int members_readmitted = 0;
  /// Reach-all frontier advance rate over [excised_at, readmitted_at] —
  /// what the survivors actually got while the subtree was out.
  double survivor_goodput_pps = 0.0;
};

struct RlaParams {
  double initial_cwnd = 1.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 1e6;
  int dupthresh = 3;  // "at least three higher" SACK loss rule (§3.3 rule 1)
  std::int32_t packet_bytes = net::kDataPacketBytes;
  std::int32_t ack_bytes = net::kAckPacketBytes;

  /// η of §3.3 rule 6: a congested receiver is troubled only if its average
  /// congestion-signal interval is below η * min_congestion_interval
  /// (equivalently its congestion probability exceeds p_max/η).  The proof
  /// in §4.2 needs the ratio above p_1/(2 - 1.5 p_1) ≈ 0.026 at p ≤ 5%;
  /// η = 20 (ratio 0.05) is the recommended setting.
  double eta = 20.0;

  /// EWMA gain of awnd, the moving average of cwnd used by the forced-cut
  /// guard. Updated once per reach-all acknowledgment.
  double awnd_gain = 0.01;

  /// EWMA gain of the per-receiver congestion-signal interval estimate.
  double signal_interval_gain = 0.25;

  /// Forced-cut guard multiplier: force a halving if the last cut is more
  /// than `forced_cut_factor * awnd * srtt_i` in the past (§3.3 rule 3).
  /// The paper's (ad hoc, but validated) choice is 2.
  double forced_cut_factor = 2.0;

  /// Congestion-signal grouping window, in units of srtt_i (§3.3 rule 2).
  double grouping_rtts = 2.0;

  /// Retransmission goes out by multicast when more than this many
  /// receivers are missing the packet, else by unicast (§3.3; the paper's
  /// simulations use 0 = always multicast).
  int rexmit_thresh = 0;

  /// Exponent k of f(x) = x^k in the generalized pthresh
  /// f(srtt_i/srtt_max)/num_trouble_rcvr for heterogeneous RTTs (§5.3).
  /// k = 0 reproduces the original RLA (pthresh = 1/num_trouble_rcvr);
  /// the paper's heterogeneous experiments use k = 2.
  double rtt_exponent = 0.0;

  /// §2's "ideal situation": a controllable constant c such that the
  /// session obtains roughly c times a competing TCP's share. Weight w
  /// scales the congestion-avoidance growth by w and the listening
  /// probability by 1/w (MulTCP-style emulation of w TCP flows), so the
  /// zero-drift window scales ~linearly in w. 1.0 = the paper's RLA.
  double fairness_weight = 1.0;

  /// Testing/ablation override: when >= 0, pthresh is this constant instead
  /// of f(srtt_i/srtt_max)/num_trouble_rcvr.  1.0 yields the naive
  /// listen-to-every-signal multicast sender whose throughput §3.2 argues
  /// collapses as the receiver count grows.
  double fixed_pthresh = -1.0;

  /// Receiver buffer B: the send window's upper bound never exceeds
  /// min_last_ack + B (§3.3 rule 5).
  std::int64_t receiver_buffer = 1'000'000;

  /// Max packets launched per ACK event, to keep a suddenly-opened window
  /// from bursting (the paper's "fast-recovery mechanism to prevent a
  /// suddenly widely-open window").
  int max_burst = 4;

  /// New data is released only once the window has this much unused room,
  /// and then as a back-to-back burst. 1 sends as soon as a slot opens
  /// (smooth, paced-like stream). Values near a TCP burst size make the
  /// multicast stream cluster like its TCP competitors, which equalizes
  /// drop-tail loss rates (§3.1's premise that all senders "send packets in
  /// a fashion similar" — see EXPERIMENTS.md on the drop-tail phase effect).
  int send_quantum = 1;

  /// Random per-packet sender processing time, Uniform(0, max): §3.1's
  /// phase-effect elimination for drop-tail gateways. 0 disables.
  /// Competing flows must use the same bound as
  /// TcpParams::max_send_overhead — unequal jitter quietly biases the
  /// fairness ratio (the topo/ builders assert this).
  sim::SimTime max_send_overhead = 0.0;

  /// ECN: mark data ECN-capable; an echoed CE from receiver i enters the
  /// same congestion-period grouping and random-listening decision as a
  /// loss from receiver i — congestion control without packet loss. Needs
  /// ECN-enabled RED gateways. (The paper's §3.3 remark that "any changes
  /// to networks to improve TCP performance can be easily incorporated"
  /// made concrete.)
  bool ecn = false;

  /// Silent-receiver (crash) protection: a receiver whose last ACK is more
  /// than this many seconds in the past is excluded at the next timeout, so
  /// a crashed receiver cannot freeze the window for the survivors.  The
  /// check rides the retransmission-timeout path — a silent receiver is
  /// indistinguishable from total loss until a timeout fires anyway.
  /// 0 disables (the paper's model: receivers never crash).
  sim::SimTime silent_drop_after = 0.0;

  /// §4.3 option: permanently drop the most congested receiver when its
  /// signal rate dominates (disabled by default, as in the paper's runs).
  bool enable_slow_receiver_drop = false;
  /// A receiver is dropped if it alone accounts for more than this fraction
  /// of all congestion signals after `slow_drop_min_signals` signals.
  double slow_drop_fraction = 0.9;
  std::uint64_t slow_drop_min_signals = 200;

  /// Estimator tuning; the shared TCP/RLA defaults live in
  /// cc/rtt_estimator.hpp.
  cc::RttEstimatorParams rtt{};

  /// Feedback-plane hardening: robust srtt aggregation, per-receiver
  /// signal-rate limiting, and the quarantine → probation → rejoin state
  /// machine of cc::TroubledCensus. Disabled by default — the paper's
  /// honest-receiver model — and byte-identical to it when disabled.
  cc::CensusDefenseParams defense{};

  /// Census mode and reservoir size (sublinear aggregates at large receiver
  /// counts). The kExact default is byte-identical to the historical census.
  cc::CensusSampleParams census{};

  /// Liveness defense against frontier-pinning coalitions; see
  /// FrontierWatchdogParams. Disabled by default.
  FrontierWatchdogParams frontier_watchdog{};

  /// Structural graceful degradation: whole-subtree excision on partition
  /// and the slow-start re-admission ramp on heal; see
  /// SubtreeDegradeParams. Disabled by default (no timers, no draws —
  /// byte-identical to a sender without it).
  SubtreeDegradeParams degrade{};
};

}  // namespace rlacast::rla
