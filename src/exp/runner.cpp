#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "exp/sandbox.hpp"

namespace rlacast::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Outcome of one attempt at one run.
struct Attempt {
  bool ok = false;
  bool transient = false;  // failure was a TransientError
  Metrics metrics;
  std::string error;
};

Attempt attempt_run(const RunFn& fn, const RunSpec& spec) {
  Attempt a;
  try {
    a.metrics = fn(spec);
    a.ok = true;
  } catch (const TransientError& e) {
    a.transient = true;
    a.error = e.what();
  } catch (const std::exception& e) {
    a.error = e.what();
  } catch (...) {
    a.error = "unknown exception";
  }
  return a;
}

/// One attempt under a wall-clock limit.  The attempt runs on its own
/// thread; if it finishes in time the thread is joined and its outcome
/// taken.  On timeout the waiter first raises `claimed` — the structural
/// guarantee that a run completing after abandonment can never deliver a
/// result: the attempt thread only publishes while claimed is still false,
/// under the same mutex the waiter holds to claim.  Only then is the
/// thread detached (threads cannot be killed portably); it keeps the
/// shared state alive through its own shared_ptr.  Returns false on
/// timeout.
bool attempt_with_timeout(const RunFn& fn, const RunSpec& spec,
                          double timeout_seconds, Attempt& out) {
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::atomic<bool> claimed{false};  // waiter gave up; discard the result
    Attempt result;
  };
  auto shared = std::make_shared<Shared>();
  // `fn` and `spec` are copied into the thread: the waiter (and even the
  // whole batch) may return before an abandoned attempt finishes.
  std::thread th([shared, fn, spec] {
    Attempt a = attempt_run(fn, spec);
    std::lock_guard<std::mutex> lock(shared->mu);
    if (shared->claimed.load(std::memory_order_relaxed)) return;  // too late
    shared->result = std::move(a);
    shared->done = true;
    shared->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(shared->mu);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return shared->done; });
  if (finished) {
    out = std::move(shared->result);
    lock.unlock();
    th.join();
    return true;
  }
  shared->claimed.store(true, std::memory_order_relaxed);
  lock.unlock();
  th.detach();
  return false;
}

/// results/crashes/<id>.crash.txt — id sanitized to a portable filename.
std::string sanitize_for_filename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                      c == '_';
    out += keep ? c : '_';
  }
  return out;
}

/// Writes the crash report for one crashed isolated run; returns its path
/// ("" on failure — the crash row survives either way).
std::string write_crash_report(const RunnerOptions& opts, const RunSpec& spec,
                               const IsolateOutcome& outcome) {
  std::error_code ec;
  std::filesystem::create_directories(opts.crash_dir, ec);
  const std::string path =
      opts.crash_dir + "/" + sanitize_for_filename(spec.id()) + ".crash.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  std::fprintf(f, "crash report: %s\n", spec.id().c_str());
  std::fprintf(f, "case: %s\n", spec.name.c_str());
  std::fprintf(f, "params: %s\n", spec.point.id().c_str());
  std::fprintf(f, "replicate: %d\n", spec.replicate);
  std::fprintf(f, "seed: %llu\n",
               static_cast<unsigned long long>(spec.seed));
  std::fprintf(f, "outcome: %s\n", outcome.describe().c_str());
  if (opts.isolate_cpu_seconds > 0.0)
    std::fprintf(f, "rlimit cpu: %g s\n", opts.isolate_cpu_seconds);
  if (opts.isolate_mem_mb > 0)
    std::fprintf(f, "rlimit as: %zu MiB\n", opts.isolate_mem_mb);
  if (opts.timeout_seconds > 0.0)
    std::fprintf(f, "timeout: %g s\n", opts.timeout_seconds);
  if (opts.crash_context) {
    const std::string extra = opts.crash_context(spec);
    if (!extra.empty()) {
      std::fputs(extra.c_str(), f);
      if (extra.back() != '\n') std::fputc('\n', f);
    }
  }
  std::fclose(f);
  return path;
}

}  // namespace

Results Runner::run(const std::vector<RunSpec>& specs, const RunFn& fn) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunResult> results(specs.size());

  // Shared cursor: each worker claims the next un-run spec. Claim order is
  // nondeterministic under contention, but every result lands in its own
  // grid slot and every seed comes from the spec, so output is not.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      RunResult& out = results[i];
      out.spec = specs[i];
      const auto run_t0 = std::chrono::steady_clock::now();
      for (int attempt = 0;; ++attempt) {
        Attempt a;
        if (opts_.isolate) {
          IsolateLimits limits;
          limits.cpu_seconds = opts_.isolate_cpu_seconds;
          limits.memory_mb = opts_.isolate_mem_mb;
          IsolateOutcome iso =
              run_isolated(fn, specs[i], limits, opts_.timeout_seconds);
          if (iso.timed_out) {
            out.ok = false;
            out.timed_out = true;
            char msg[64];
            std::snprintf(msg, sizeof(msg), "timeout after %g s",
                          opts_.timeout_seconds);
            out.error = msg;
            break;  // timeouts are never retried (see below)
          }
          if (iso.crashed) {
            // The child died abnormally. Contain it: record the crash,
            // write the report, keep sweeping. A crash is deterministic
            // for a deterministic run_fn, so it is never retried.
            out.ok = false;
            out.crashed = true;
            out.term_signal = iso.term_signal;
            out.error = iso.describe();
            if (!opts_.crash_dir.empty())
              out.crash_report = write_crash_report(opts_, specs[i], iso);
            break;
          }
          a.ok = iso.ok;
          a.transient = iso.transient;
          a.metrics = std::move(iso.metrics);
          a.error = std::move(iso.error);
        } else if (opts_.timeout_seconds > 0.0) {
          if (!attempt_with_timeout(fn, specs[i], opts_.timeout_seconds, a)) {
            // The attempt's thread is abandoned; never retry a timeout —
            // the wedge is almost certainly deterministic and each retry
            // would cost the full limit again.
            out.ok = false;
            out.timed_out = true;
            char msg[64];
            std::snprintf(msg, sizeof(msg), "timeout after %g s",
                          opts_.timeout_seconds);
            out.error = msg;
            break;
          }
        } else {
          a = attempt_run(fn, specs[i]);
        }
        out.ok = a.ok;
        out.metrics = std::move(a.metrics);
        out.error = std::move(a.error);
        if (a.ok || !a.transient || attempt >= opts_.max_retries) break;
        out.retries = attempt + 1;
        const double backoff =
            opts_.retry_backoff_seconds * static_cast<double>(1 << attempt);
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      out.wall_seconds = seconds_since(run_t0);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts_.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        const char* marker = "";
        if (!out.ok)
          marker = out.timed_out ? " [TIMEOUT]"
                                 : (out.crashed ? " [CRASH]" : " [ERROR]");
        std::fprintf(stderr, "exp: %zu/%zu %s%s (%.1f s)\n", completed,
                     specs.size(), specs[i].id().c_str(), marker,
                     out.wall_seconds);
      }
    }
  };

  int jobs = opts_.jobs;
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > specs.size())
    jobs = static_cast<int>(specs.size());

  // Soak heartbeat: a monitor thread wakes every heartbeat_seconds and
  // reports batch progress, so a long chaos run is visibly alive between
  // completion lines. Joined before run() returns.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat;
  if (opts_.heartbeat_seconds > 0.0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(hb_mu);
      for (;;) {
        if (hb_cv.wait_for(
                lock,
                std::chrono::duration<double>(opts_.heartbeat_seconds),
                [&] { return hb_stop; }))
          return;
        const std::size_t completed = done.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> plock(progress_mu);
        std::fprintf(stderr, "exp: heartbeat %zu/%zu done (%.1f s elapsed)\n",
                     completed, specs.size(), seconds_since(t0));
      }
    });
  }

  if (jobs <= 1) {
    worker();  // run inline: no pool overhead for the common --jobs 1 path
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  }

  last_wall_seconds_ = seconds_since(t0);
  return Results(std::move(results));
}

}  // namespace rlacast::exp
