#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

namespace rlacast::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Results Runner::run(const std::vector<RunSpec>& specs, const RunFn& fn) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunResult> results(specs.size());

  // Shared cursor: each worker claims the next un-run spec. Claim order is
  // nondeterministic under contention, but every result lands in its own
  // grid slot and every seed comes from the spec, so output is not.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      RunResult& out = results[i];
      out.spec = specs[i];
      const auto run_t0 = std::chrono::steady_clock::now();
      try {
        out.metrics = fn(specs[i]);
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      } catch (...) {
        out.ok = false;
        out.error = "unknown exception";
      }
      out.wall_seconds = seconds_since(run_t0);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts_.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "exp: %zu/%zu %s%s (%.1f s)\n", completed,
                     specs.size(), specs[i].id().c_str(),
                     out.ok ? "" : " [ERROR]", out.wall_seconds);
      }
    }
  };

  int jobs = opts_.jobs;
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > specs.size())
    jobs = static_cast<int>(specs.size());

  if (jobs <= 1) {
    worker();  // run inline: no pool overhead for the common --jobs 1 path
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  last_wall_seconds_ = seconds_since(t0);
  return Results(std::move(results));
}

}  // namespace rlacast::exp
