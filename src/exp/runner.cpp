#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace rlacast::exp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Outcome of one attempt at one run.
struct Attempt {
  bool ok = false;
  bool transient = false;  // failure was a TransientError
  Metrics metrics;
  std::string error;
};

Attempt attempt_run(const RunFn& fn, const RunSpec& spec) {
  Attempt a;
  try {
    a.metrics = fn(spec);
    a.ok = true;
  } catch (const TransientError& e) {
    a.transient = true;
    a.error = e.what();
  } catch (const std::exception& e) {
    a.error = e.what();
  } catch (...) {
    a.error = "unknown exception";
  }
  return a;
}

/// One attempt under a wall-clock limit.  The attempt runs on a detached
/// thread; if it finishes in time its outcome is taken, otherwise the
/// thread is abandoned — it keeps the shared state alive through its own
/// shared_ptr, so a late write after abandonment touches only memory the
/// waiter no longer reads.  Returns false on timeout.
bool attempt_with_timeout(const RunFn& fn, const RunSpec& spec,
                          double timeout_seconds, Attempt& out) {
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Attempt result;
  };
  auto shared = std::make_shared<Shared>();
  // `fn` and `spec` are copied into the thread: the waiter (and even the
  // whole batch) may return before an abandoned attempt finishes.
  std::thread([shared, fn, spec] {
    Attempt a = attempt_run(fn, spec);
    std::lock_guard<std::mutex> lock(shared->mu);
    shared->result = std::move(a);
    shared->done = true;
    shared->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lock(shared->mu);
  const bool finished = shared->cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return shared->done; });
  if (finished) out = std::move(shared->result);
  return finished;
}

}  // namespace

Results Runner::run(const std::vector<RunSpec>& specs, const RunFn& fn) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunResult> results(specs.size());

  // Shared cursor: each worker claims the next un-run spec. Claim order is
  // nondeterministic under contention, but every result lands in its own
  // grid slot and every seed comes from the spec, so output is not.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      RunResult& out = results[i];
      out.spec = specs[i];
      const auto run_t0 = std::chrono::steady_clock::now();
      for (int attempt = 0;; ++attempt) {
        Attempt a;
        if (opts_.timeout_seconds > 0.0) {
          if (!attempt_with_timeout(fn, specs[i], opts_.timeout_seconds, a)) {
            // The attempt's thread is abandoned; never retry a timeout —
            // the wedge is almost certainly deterministic and each retry
            // would cost the full limit again.
            out.ok = false;
            out.timed_out = true;
            char msg[64];
            std::snprintf(msg, sizeof(msg), "timeout after %g s",
                          opts_.timeout_seconds);
            out.error = msg;
            break;
          }
        } else {
          a = attempt_run(fn, specs[i]);
        }
        out.ok = a.ok;
        out.metrics = std::move(a.metrics);
        out.error = std::move(a.error);
        if (a.ok || !a.transient || attempt >= opts_.max_retries) break;
        out.retries = attempt + 1;
        const double backoff =
            opts_.retry_backoff_seconds * static_cast<double>(1 << attempt);
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
      }
      out.wall_seconds = seconds_since(run_t0);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (opts_.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fprintf(stderr, "exp: %zu/%zu %s%s (%.1f s)\n", completed,
                     specs.size(), specs[i].id().c_str(),
                     out.ok ? "" : (out.timed_out ? " [TIMEOUT]" : " [ERROR]"),
                     out.wall_seconds);
      }
    }
  };

  int jobs = opts_.jobs;
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > specs.size())
    jobs = static_cast<int>(specs.size());

  if (jobs <= 1) {
    worker();  // run inline: no pool overhead for the common --jobs 1 path
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  last_wall_seconds_ = seconds_since(t0);
  return Results(std::move(results));
}

}  // namespace rlacast::exp
