// Ordered per-run metric collection with replicate aggregation and emitters.
//
// A scenario closure returns Metrics — an ordered (insertion-order) list of
// name -> double rows.  Results keeps one RunResult per expanded RunSpec, in
// grid order regardless of which worker thread finished first, aggregates
// replicates of the same case into mean / stddev / 95% CI per metric, and
// serializes the whole batch (spec, per-run rows, aggregates, wall time) as
// the results.json schema documented in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/spec.hpp"
#include "stats/summary.hpp"

namespace rlacast::exp {

/// Ordered metric rows for one run. Insertion order is preserved in text
/// tables and JSON so output stays stable across compilers and libc++s.
class Metrics {
 public:
  Metrics() = default;
  Metrics(std::initializer_list<std::pair<std::string, double>> kv)
      : rows_(kv.begin(), kv.end()) {}

  Metrics& set(std::string name, double value);
  bool has(const std::string& name) const;
  /// Value of `name`; throws std::out_of_range when absent.
  double get(const std::string& name) const;
  double get(const std::string& name, double fallback) const;

  const std::vector<std::pair<std::string, double>>& rows() const {
    return rows_;
  }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  bool operator==(const Metrics& other) const { return rows_ == other.rows_; }

 private:
  std::vector<std::pair<std::string, double>> rows_;
};

/// Outcome of one run: either ok with metrics, or an error row carrying the
/// exception text (the batch continues; see Runner).
struct RunResult {
  RunSpec spec;
  Metrics metrics;
  bool ok = false;
  std::string error;          // exception text when !ok
  double wall_seconds = 0.0;  // this run's wall-clock time
  int retries = 0;            // extra attempts consumed (TransientError only)
  bool timed_out = false;     // killed by the per-run wall-clock timeout
  bool crashed = false;       // isolated child died abnormally (--isolate)
  int term_signal = 0;        // terminating signal of a crashed child, if any
  std::string crash_report;   // path of the written crash report, if any
};

/// Mean / stddev / 95% CI of one metric across a case's replicates.
struct MetricAggregate {
  std::string name;
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  // half-width; interval is mean +/- ci95
};

/// All replicates of one (case, point), aggregated per metric.
struct CaseAggregate {
  std::string name;
  Point point;
  std::size_t n_ok = 0;      // replicates that completed
  std::size_t n_error = 0;   // replicates that threw
  std::vector<MetricAggregate> metrics;  // metric insertion order
};

class Results {
 public:
  Results() = default;
  explicit Results(std::vector<RunResult> runs) : runs_(std::move(runs)) {}

  const std::vector<RunResult>& runs() const { return runs_; }
  std::size_t num_errors() const;

  /// First run of `case_name` with replicate 0 (the legacy-compatible run),
  /// or nullptr when absent / errored.
  const RunResult* replicate0(const std::string& case_name) const;

  /// Groups runs by (name, point) in first-appearance order and aggregates
  /// each metric across the ok replicates.
  std::vector<CaseAggregate> aggregate() const;

  /// Renders the aggregate table: one row per metric, one column per case,
  /// cells "mean ±ci95" (stats/table format).
  std::string render_aggregate_table() const;

  /// Serializes the batch as JSON. `spec_extra` rows (e.g. duration, warmup,
  /// jobs) are embedded in the "spec" object; wall time is the batch total.
  std::string to_json(
      const std::string& experiment, std::uint64_t master_seed, int replicates,
      int jobs, double wall_seconds_total,
      const std::vector<std::pair<std::string, std::string>>& spec_extra = {})
      const;

  /// to_json + atomic-ish write (tmp file, then rename). Returns false and
  /// prints to stderr on I/O failure.
  bool write_json(
      const std::string& path, const std::string& experiment,
      std::uint64_t master_seed, int replicates, int jobs,
      double wall_seconds_total,
      const std::vector<std::pair<std::string, std::string>>& spec_extra = {})
      const;

 private:
  std::vector<RunResult> runs_;
};

}  // namespace rlacast::exp
