#include "exp/spec.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/random.hpp"

namespace rlacast::exp {

const std::string Point::kEmpty;

Point& Point::set(std::string key, std::string value) {
  for (auto& kv : params_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return *this;
    }
  }
  params_.emplace_back(std::move(key), std::move(value));
  return *this;
}

namespace {

std::string format_double(double v) {
  // %g-style without trailing zeros so "5" round-trips as "5", not "5.000000".
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Point& Point::set(std::string key, double value) {
  return set(std::move(key), format_double(value));
}

Point& Point::set(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

const std::string& Point::get(const std::string& key,
                              const std::string& fallback) const {
  for (const auto& kv : params_) {
    if (kv.first == key) return kv.second;
  }
  return fallback;
}

bool Point::has(const std::string& key) const {
  for (const auto& kv : params_) {
    if (kv.first == key) return true;
  }
  return false;
}

double Point::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  return std::stod(get(key));
}

std::int64_t Point::get_int(const std::string& key,
                            std::int64_t fallback) const {
  if (!has(key)) return fallback;
  return std::stoll(get(key));
}

std::string Point::id() const {
  std::string out;
  for (const auto& kv : params_) {
    if (!out.empty()) out += ',';
    out += kv.first;
    out += '=';
    out += kv.second;
  }
  return out;
}

std::string RunSpec::id() const {
  std::string out = name;
  const std::string pid = point.id();
  if (!pid.empty()) {
    out += '/';
    out += pid;
  }
  out += '#';
  out += std::to_string(replicate);
  return out;
}

std::uint64_t derive_seed(std::uint64_t master_seed, const std::string& name,
                          const Point& point, int replicate) {
  if (replicate == 0) return master_seed;  // byte-compat with legacy benches
  RunSpec key;
  key.name = name;
  key.point = point;
  key.replicate = replicate;
  return sim::SeedSequence(master_seed).seed_for("exp/" + key.id());
}

Grid& Grid::add_case(std::string name, Point point) {
  cases_.emplace_back(std::move(name), std::move(point));
  return *this;
}

Grid& Grid::replicates(int r) {
  if (r < 1) throw std::invalid_argument("Grid::replicates: r must be >= 1");
  replicates_ = r;
  return *this;
}

Grid& Grid::master_seed(std::uint64_t seed) {
  master_seed_ = seed;
  return *this;
}

std::vector<RunSpec> Grid::expand() const {
  std::vector<RunSpec> runs;
  runs.reserve(cases_.size() * static_cast<std::size_t>(replicates_));
  for (const auto& [name, point] : cases_) {
    for (int r = 0; r < replicates_; ++r) {
      RunSpec spec;
      spec.name = name;
      spec.point = point;
      spec.replicate = r;
      spec.seed = derive_seed(master_seed_, name, point, r);
      spec.index = runs.size();
      runs.push_back(std::move(spec));
    }
  }
  return runs;
}

}  // namespace rlacast::exp
