// Parallel experiment execution: a fixed-size std::thread pool pulls runs
// off a shared index-based work queue and writes each RunResult into its
// grid slot, so the returned Results order is the grid order no matter how
// threads interleave.  Determinism contract: run_fn(spec) must depend only
// on `spec` (all randomness seeded from spec.seed) — then --jobs N is
// bit-identical to --jobs 1.
//
// A run that throws becomes an error row (ok = false, error = what()) and
// the rest of the batch proceeds.  Progress goes to stderr as monotonic
// "exp: k/N id (t s)" completion lines (off by default so single-replicate
// bench transcripts stay byte-compatible with the pre-runner format).
#pragma once

#include <functional>
#include <vector>

#include "exp/results.hpp"
#include "exp/spec.hpp"

namespace rlacast::exp {

/// Scenario closure: maps a RunSpec to its metric rows. Must be callable
/// concurrently from multiple threads (capture shared state const-only).
using RunFn = std::function<Metrics(const RunSpec&)>;

struct RunnerOptions {
  int jobs = 1;           // worker threads; clamped to [1, #runs]
  bool progress = false;  // per-completion lines on stderr
};

class Runner {
 public:
  explicit Runner(RunnerOptions opts = {}) : opts_(opts) {}

  /// Executes every spec through `fn`. Blocks until the batch finishes.
  Results run(const std::vector<RunSpec>& specs, const RunFn& fn) const;

  /// Convenience: expand + run.
  Results run(const Grid& grid, const RunFn& fn) const {
    return run(grid.expand(), fn);
  }

  /// Batch wall-clock seconds of the most recent run() call.
  double last_wall_seconds() const { return last_wall_seconds_; }

 private:
  RunnerOptions opts_;
  mutable double last_wall_seconds_ = 0.0;
};

}  // namespace rlacast::exp
