// Parallel experiment execution: a fixed-size std::thread pool pulls runs
// off a shared index-based work queue and writes each RunResult into its
// grid slot, so the returned Results order is the grid order no matter how
// threads interleave.  Determinism contract: run_fn(spec) must depend only
// on `spec` (all randomness seeded from spec.seed) — then --jobs N is
// bit-identical to --jobs 1.
//
// A run that throws becomes an error row (ok = false, error = what()) and
// the rest of the batch proceeds.  Progress goes to stderr as monotonic
// "exp: k/N id (t s)" completion lines (off by default so single-replicate
// bench transcripts stay byte-compatible with the pre-runner format).
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/results.hpp"
#include "exp/spec.hpp"

namespace rlacast::exp {

/// Scenario closure: maps a RunSpec to its metric rows. Must be callable
/// concurrently from multiple threads (capture shared state const-only).
using RunFn = std::function<Metrics(const RunSpec&)>;

/// A run failure worth retrying (resource exhaustion, racy I/O, anything
/// that may succeed on a second attempt).  Deterministic exceptions — a bad
/// parameter, an invariant violation, sim::WatchdogTimeout — would fail
/// identically every attempt, so only this type triggers the runner's
/// retry-with-backoff path.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
};

struct RunnerOptions {
  int jobs = 1;           // worker threads; clamped to [1, #runs]
  bool progress = false;  // per-completion lines on stderr
  /// Soak heartbeat: while the batch runs, print "exp: heartbeat k/N done
  /// (t s elapsed)" to stderr every this many wall-clock seconds; 0 (the
  /// default) disables.  Long chaos soaks otherwise look hung between
  /// per-run completion lines.
  double heartbeat_seconds = 0.0;
  /// Per-run wall-clock limit in seconds; 0 disables.  A run exceeding it
  /// is recorded as failed ("timeout after N s", timed_out = true) and the
  /// rest of the batch proceeds.  The overdue run's thread is abandoned
  /// (detached) — threads cannot be killed portably — so run_fn must not
  /// hold locks the remaining runs need.  Timeouts are never retried.
  double timeout_seconds = 0.0;
  /// Extra attempts (beyond the first) for runs failing with a
  /// TransientError.  Deterministic exceptions are not retried.
  int max_retries = 0;
  /// Sleep before retry attempt k is backoff * 2^(k-1) seconds.
  double retry_backoff_seconds = 0.05;

  // --- crash isolation (see exp/sandbox.hpp) ------------------------------
  /// Run every spec in a forked child process.  A child killed by
  /// SIGSEGV/SIGABRT/OOM (or dying any other abnormal way) becomes a
  /// crashed=true row — with a crash report when crash_dir is set — and the
  /// sweep continues.  timeout_seconds applies per child (SIGKILL).
  bool isolate = false;
  /// Directory for crash report files ("" = don't write reports).
  std::string crash_dir;
  /// RLIMIT_CPU per isolated run, seconds; 0 = unlimited.
  double isolate_cpu_seconds = 0.0;
  /// RLIMIT_AS per isolated run, MiB; 0 = unlimited.
  std::size_t isolate_mem_mb = 0;
  /// Extra lines for a crash report (journal path, last checkpoint id, the
  /// exact `bench_X --replay <journal>` repro command).  Called in the
  /// parent after the crash, so it may inspect files the dead child left.
  std::function<std::string(const RunSpec&)> crash_context;
};

class Runner {
 public:
  explicit Runner(RunnerOptions opts = {}) : opts_(opts) {}

  /// Executes every spec through `fn`. Blocks until the batch finishes.
  Results run(const std::vector<RunSpec>& specs, const RunFn& fn) const;

  /// Convenience: expand + run.
  Results run(const Grid& grid, const RunFn& fn) const {
    return run(grid.expand(), fn);
  }

  /// Batch wall-clock seconds of the most recent run() call.
  double last_wall_seconds() const { return last_wall_seconds_; }

 private:
  RunnerOptions opts_;
  mutable double last_wall_seconds_ = 0.0;
};

}  // namespace rlacast::exp
