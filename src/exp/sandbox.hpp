// Fork-based crash isolation for experiment runs (POSIX only).
//
// run_isolated() executes one run in a forked child under rlimit caps and
// reads the outcome back over a pipe. The contract is that NOTHING the run
// does — SIGSEGV, SIGABRT, an OOM kill, an rlimit CPU overrun, a silent
// _exit — can take the sweep down: the parent classifies whatever the child
// did and returns a structured IsolateOutcome.
//
// Crash detection is deliberately payload-based: a child that died without
// delivering a *complete* result payload crashed, whether it was killed by
// a signal (plain build) or converted the fault into exit(1) (sanitizer
// builds intercept SIGSEGV). Timeouts are the parent's doing — past the
// deadline the child is SIGKILLed and the outcome says timed_out, not
// crashed.
//
// Caveats, recorded here because they are caveats of fork(), not of this
// wrapper: the child of a multi-threaded parent must not depend on other
// threads' locks (run_fn must be self-contained, which the Runner's
// determinism contract already demands), and RLIMIT_AS caps are unreliable
// under AddressSanitizer's shadow-memory reservations (tests gate on it).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "exp/results.hpp"
#include "exp/spec.hpp"

namespace rlacast::exp {

// Runner's RunFn type, re-declared to avoid a circular include with
// runner.hpp (which includes this header for its options).
using IsolatedRunFn = std::function<Metrics(const RunSpec&)>;

struct IsolateLimits {
  /// RLIMIT_CPU for the child, seconds (rounded up); 0 = unlimited.
  double cpu_seconds = 0.0;
  /// RLIMIT_AS for the child, MiB; 0 = unlimited.
  std::size_t memory_mb = 0;
};

struct IsolateOutcome {
  bool completed = false;  // child delivered a full result payload
  bool crashed = false;    // died without one (signal, abort, OOM, rlimit)
  bool timed_out = false;  // parent deadline hit; child was SIGKILLed
  int term_signal = 0;     // terminating signal when the child was signaled
  int exit_code = -1;      // exit status when the child exited
  // Result payload, valid when completed:
  bool ok = false;
  bool transient = false;  // failure was a TransientError (retryable)
  Metrics metrics;
  std::string error;

  /// One-line human description of a non-completed outcome
  /// ("killed by signal 11 (SIGSEGV)", "exited 1 without a result").
  std::string describe() const;
};

/// Runs `fn(spec)` in a forked child under `limits`, waiting at most
/// `timeout_seconds` (0 = forever). Exceptions inside the child are caught
/// there and travel back as ok=false payloads, exactly like the in-process
/// path; only abnormal death reports crashed=true.
IsolateOutcome run_isolated(const IsolatedRunFn& fn, const RunSpec& spec,
                            const IsolateLimits& limits,
                            double timeout_seconds);

}  // namespace rlacast::exp
