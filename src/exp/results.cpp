#include "exp/results.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "stats/table.hpp"

namespace rlacast::exp {

Metrics& Metrics::set(std::string name, double value) {
  for (auto& row : rows_) {
    if (row.first == name) {
      row.second = value;
      return *this;
    }
  }
  rows_.emplace_back(std::move(name), value);
  return *this;
}

bool Metrics::has(const std::string& name) const {
  for (const auto& row : rows_) {
    if (row.first == name) return true;
  }
  return false;
}

double Metrics::get(const std::string& name) const {
  for (const auto& row : rows_) {
    if (row.first == name) return row.second;
  }
  throw std::out_of_range("exp::Metrics: no metric named " + name);
}

double Metrics::get(const std::string& name, double fallback) const {
  for (const auto& row : rows_) {
    if (row.first == name) return row.second;
  }
  return fallback;
}

std::size_t Results::num_errors() const {
  std::size_t n = 0;
  for (const auto& r : runs_) n += r.ok ? 0 : 1;
  return n;
}

const RunResult* Results::replicate0(const std::string& case_name) const {
  for (const auto& r : runs_) {
    if (r.spec.name == case_name && r.spec.replicate == 0)
      return r.ok ? &r : nullptr;
  }
  return nullptr;
}

std::vector<CaseAggregate> Results::aggregate() const {
  std::vector<CaseAggregate> out;
  auto find_case = [&](const RunResult& r) -> CaseAggregate& {
    for (auto& agg : out) {
      if (agg.name == r.spec.name && agg.point.id() == r.spec.point.id())
        return agg;
    }
    out.push_back({r.spec.name, r.spec.point, 0, 0, {}});
    return out.back();
  };

  // Pass 1: bucket runs; collect per-metric summaries in insertion order.
  std::vector<std::vector<stats::Summary>> sums;  // parallel to `out`
  std::vector<std::vector<std::string>> names;
  for (const auto& r : runs_) {
    CaseAggregate& agg = find_case(r);
    const std::size_t ci = static_cast<std::size_t>(&agg - out.data());
    if (sums.size() <= ci) {
      sums.resize(ci + 1);
      names.resize(ci + 1);
    }
    if (!r.ok) {
      ++agg.n_error;
      continue;
    }
    ++agg.n_ok;
    for (const auto& [name, value] : r.metrics.rows()) {
      std::size_t mi = 0;
      for (; mi < names[ci].size(); ++mi)
        if (names[ci][mi] == name) break;
      if (mi == names[ci].size()) {
        names[ci].push_back(name);
        sums[ci].emplace_back();
      }
      sums[ci][mi].add(value);
    }
  }

  for (std::size_t ci = 0; ci < out.size(); ++ci) {
    for (std::size_t mi = 0; mi < names[ci].size(); ++mi) {
      const stats::Summary& s = sums[ci][mi];
      out[ci].metrics.push_back({names[ci][mi], s.count(), s.mean(),
                                 s.stddev(), s.ci95_halfwidth()});
    }
  }
  return out;
}

std::string Results::render_aggregate_table() const {
  const auto aggs = aggregate();
  std::vector<std::string> header{"metric"};
  for (const auto& a : aggs) header.push_back(a.name);
  stats::Table t(std::move(header));

  // Row order: metric order of the first case that defines each metric.
  std::vector<std::string> metric_names;
  for (const auto& a : aggs) {
    for (const auto& m : a.metrics) {
      bool seen = false;
      for (const auto& n : metric_names) seen = seen || n == m.name;
      if (!seen) metric_names.push_back(m.name);
    }
  }

  for (const auto& name : metric_names) {
    std::vector<std::string> row{name};
    for (const auto& a : aggs) {
      const MetricAggregate* found = nullptr;
      for (const auto& m : a.metrics)
        if (m.name == name) found = &m;
      if (!found) {
        row.push_back("-");
      } else if (found->n > 1) {
        row.push_back(stats::Table::num(found->mean) + " ±" +
                      stats::Table::num(found->ci95));
      } else {
        row.push_back(stats::Table::num(found->mean));
      }
    }
    t.add_row(std::move(row));
  }
  return t.render();
}

namespace {

// --- minimal JSON writer (no dependency; enough for the results schema) ---

void json_escape(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[64];
  // %.17g round-trips doubles exactly; trim to %g when that is lossless so
  // counters print as "42", not "42.000000000000000".
  std::snprintf(buf, sizeof(buf), "%g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void json_point(std::string& out, const Point& p) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : p.items()) {
    if (!first) out += ',';
    first = false;
    json_escape(out, k);
    out += ':';
    json_escape(out, v);
  }
  out += '}';
}

void json_metrics(std::string& out, const Metrics& m) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m.rows()) {
    if (!first) out += ',';
    first = false;
    json_escape(out, k);
    out += ':';
    json_number(out, v);
  }
  out += '}';
}

}  // namespace

std::string Results::to_json(
    const std::string& experiment, std::uint64_t master_seed, int replicates,
    int jobs, double wall_seconds_total,
    const std::vector<std::pair<std::string, std::string>>& spec_extra) const {
  std::string out;
  out.reserve(4096 + runs_.size() * 512);
  out += "{\n  \"spec\": {";
  json_escape(out, "experiment");
  out += ':';
  json_escape(out, experiment);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"master_seed\":%" PRIu64 ",\"replicates\":%d,\"jobs\":%d",
                master_seed, replicates, jobs);
  out += buf;
  for (const auto& [k, v] : spec_extra) {
    out += ',';
    json_escape(out, k);
    out += ':';
    json_escape(out, v);
  }
  out += "},\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunResult& r = runs_[i];
    out += "    {\"case\":";
    json_escape(out, r.spec.name);
    out += ",\"params\":";
    json_point(out, r.spec.point);
    std::snprintf(buf, sizeof(buf), ",\"replicate\":%d,\"seed\":%" PRIu64,
                  r.spec.replicate, r.spec.seed);
    out += buf;
    out += ",\"ok\":";
    out += r.ok ? "true" : "false";
    if (!r.ok) {
      out += ",\"error\":";
      json_escape(out, r.error);
    }
    // Timeout/retry/crash columns appear only when those paths were taken,
    // so legacy results.json output is byte-identical.
    if (r.timed_out) out += ",\"timed_out\":true";
    if (r.crashed) {
      out += ",\"crashed\":true";
      if (r.term_signal != 0) {
        std::snprintf(buf, sizeof(buf), ",\"signal\":%d", r.term_signal);
        out += buf;
      }
      if (!r.crash_report.empty()) {
        out += ",\"crash_report\":";
        json_escape(out, r.crash_report);
      }
    }
    if (r.retries > 0) {
      std::snprintf(buf, sizeof(buf), ",\"retries\":%d", r.retries);
      out += buf;
    }
    out += ",\"wall_seconds\":";
    json_number(out, r.wall_seconds);
    out += ",\"metrics\":";
    json_metrics(out, r.metrics);
    out += '}';
    if (i + 1 < runs_.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"aggregates\": [\n";
  const auto aggs = aggregate();
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    const CaseAggregate& a = aggs[i];
    out += "    {\"case\":";
    json_escape(out, a.name);
    out += ",\"params\":";
    json_point(out, a.point);
    std::snprintf(buf, sizeof(buf), ",\"n_ok\":%zu,\"n_error\":%zu", a.n_ok,
                  a.n_error);
    out += buf;
    out += ",\"metrics\":{";
    for (std::size_t mi = 0; mi < a.metrics.size(); ++mi) {
      const MetricAggregate& m = a.metrics[mi];
      if (mi) out += ',';
      json_escape(out, m.name);
      std::snprintf(buf, sizeof(buf), ":{\"n\":%zu,\"mean\":", m.n);
      out += buf;
      json_number(out, m.mean);
      out += ",\"stddev\":";
      json_number(out, m.stddev);
      out += ",\"ci95\":";
      json_number(out, m.ci95);
      out += '}';
    }
    out += "}}";
    if (i + 1 < aggs.size()) out += ',';
    out += '\n';
  }
  out += "  ],\n  \"wall_seconds_total\":";
  json_number(out, wall_seconds_total);
  out += "\n}\n";
  return out;
}

bool Results::write_json(
    const std::string& path, const std::string& experiment,
    std::uint64_t master_seed, int replicates, int jobs,
    double wall_seconds_total,
    const std::vector<std::pair<std::string, std::string>>& spec_extra) const {
  const std::string body = to_json(experiment, master_seed, replicates, jobs,
                                   wall_seconds_total, spec_extra);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "exp: cannot open %s for writing\n", tmp.c_str());
    return false;
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "exp: failed writing %s\n", path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace rlacast::exp
