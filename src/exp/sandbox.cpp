#include "exp/sandbox.hpp"

#include "exp/runner.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace rlacast::exp {
namespace {

// Payload framing on the result pipe. The trailer magic is what makes
// "complete": a child dying mid-write (or before writing anything) can
// never fake it.
constexpr std::uint32_t kPayloadMagic = 0x524c5850;   // "RLXP"
constexpr std::uint32_t kPayloadTrailer = 0x444f4e45; // "DONE"

bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, sizeof(b));
}

void put_f64(std::string& out, double v) {
  char b[8];
  std::memcpy(b, &v, sizeof(b));
  out.append(b, sizeof(b));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

bool get_u32(const std::string& in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(in[pos + static_cast<std::size_t>(i)]);
  pos += 4;
  return true;
}

bool get_f64(const std::string& in, std::size_t& pos, double& v) {
  if (pos + 8 > in.size()) return false;
  std::memcpy(&v, in.data() + pos, sizeof(v));
  pos += 8;
  return true;
}

bool get_str(const std::string& in, std::size_t& pos, std::string& s) {
  std::uint32_t len = 0;
  if (!get_u32(in, pos, len) || pos + len > in.size()) return false;
  s.assign(in, pos, len);
  pos += len;
  return true;
}

/// Serializes one attempt outcome for the pipe.
std::string encode_payload(bool ok, bool transient, const std::string& error,
                           const Metrics& metrics) {
  std::string out;
  put_u32(out, kPayloadMagic);
  out += ok ? '\1' : '\0';
  out += transient ? '\1' : '\0';
  put_str(out, error);
  put_u32(out, static_cast<std::uint32_t>(metrics.rows().size()));
  for (const auto& [name, value] : metrics.rows()) {
    put_str(out, name);
    put_f64(out, value);
  }
  put_u32(out, kPayloadTrailer);
  return out;
}

/// Parses a pipe payload back into `out`; only a byte-complete payload
/// (trailer present, nothing dangling) counts.
bool decode_payload(const std::string& in, IsolateOutcome& out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0;
  if (!get_u32(in, pos, magic) || magic != kPayloadMagic) return false;
  if (pos + 2 > in.size()) return false;
  out.ok = in[pos++] != '\0';
  out.transient = in[pos++] != '\0';
  std::uint32_t nmetrics = 0;
  if (!get_str(in, pos, out.error) || !get_u32(in, pos, nmetrics))
    return false;
  for (std::uint32_t i = 0; i < nmetrics; ++i) {
    std::string name;
    double value = 0.0;
    if (!get_str(in, pos, name) || !get_f64(in, pos, value)) return false;
    out.metrics.set(std::move(name), value);
  }
  std::uint32_t trailer = 0;
  return get_u32(in, pos, trailer) && trailer == kPayloadTrailer &&
         pos == in.size();
}

void apply_limits(const IsolateLimits& limits) {
  if (limits.cpu_seconds > 0.0) {
    const auto secs =
        static_cast<rlim_t>(std::ceil(limits.cpu_seconds));
    struct rlimit rl;
    rl.rlim_cur = secs;
    rl.rlim_max = secs + 1;  // hard SIGKILL one second after the SIGXCPU
    ::setrlimit(RLIMIT_CPU, &rl);
  }
  if (limits.memory_mb > 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.memory_mb) * 1024 * 1024;
    rl.rlim_max = rl.rlim_cur;
    ::setrlimit(RLIMIT_AS, &rl);
  }
}

}  // namespace

std::string IsolateOutcome::describe() const {
  char buf[128];
  if (timed_out) {
    std::snprintf(buf, sizeof(buf), "isolated run timed out (SIGKILL)");
  } else if (term_signal != 0) {
    const char* name = ::strsignal(term_signal);
    std::snprintf(buf, sizeof(buf), "killed by signal %d (%s)", term_signal,
                  name != nullptr ? name : "?");
  } else if (!completed) {
    std::snprintf(buf, sizeof(buf), "exited %d without a result payload",
                  exit_code);
  } else {
    std::snprintf(buf, sizeof(buf), "completed");
  }
  return buf;
}

IsolateOutcome run_isolated(const IsolatedRunFn& fn, const RunSpec& spec,
                            const IsolateLimits& limits,
                            double timeout_seconds) {
  IsolateOutcome out;
  int fds[2];
  if (::pipe(fds) != 0) {
    out.error = "pipe() failed";
    return out;
  }
  // Buffered stdio must be flushed pre-fork or the child's exit (and any
  // crash-handler output) replays the parent's pending bytes.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.error = "fork() failed";
    return out;
  }

  if (pid == 0) {
    // ---- child ----
    ::close(fds[0]);
    apply_limits(limits);
    bool ok = false;
    bool transient = false;
    std::string error;
    Metrics metrics;
    try {
      metrics = fn(spec);
      ok = true;
    } catch (const TransientError& e) {
      transient = true;
      error = e.what();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    const std::string payload = encode_payload(ok, transient, error, metrics);
    write_all(fds[1], payload.data(), payload.size());
    ::close(fds[1]);
    std::fflush(nullptr);
    ::_exit(0);
  }

  // ---- parent ----
  ::close(fds[1]);
  std::string payload;
  const auto t0 = std::chrono::steady_clock::now();
  bool killed = false;
  for (;;) {
    int wait_ms = -1;
    if (timeout_seconds > 0.0) {
      const double left =
          timeout_seconds -
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (left <= 0.0) {
        ::kill(pid, SIGKILL);
        killed = true;
        wait_ms = -1;  // child is dying; drain until EOF
      } else {
        wait_ms = static_cast<int>(left * 1000.0) + 1;
      }
    }
    struct pollfd pfd;
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;  // deadline re-check at loop top
    char buf[4096];
    const ssize_t r = ::read(fds[0], buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;  // EOF: child closed its end (exit or death)
    payload.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fds[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFSIGNALED(status)) out.term_signal = WTERMSIG(status);
  if (WIFEXITED(status)) out.exit_code = WEXITSTATUS(status);

  if (killed) {
    out.timed_out = true;
    return out;
  }
  if (decode_payload(payload, out) && WIFEXITED(status) &&
      WEXITSTATUS(status) == 0) {
    out.completed = true;
    return out;
  }
  // Anything else — a terminating signal, a sanitizer's exit(1) after an
  // intercepted SIGSEGV, an OOM kill, a torn payload — is a crash.
  out.crashed = true;
  out.ok = false;
  out.metrics = Metrics();
  return out;
}

}  // namespace rlacast::exp
