// Declarative experiment specification: a run is a named scenario case plus
// a parameter point and a replicate index; a Grid expands cases x replicates
// into the ordered run list a Runner executes.
//
// Seed policy (the part everything else depends on): replicate 0 of every
// case runs with the grid's master seed itself — so a single-replicate grid
// reproduces the historical "every case at seed S" bench behaviour
// byte-for-byte — while replicates >= 1 derive their seed by hashing
// (master, case name, point, replicate) through the same FNV-1a/splitmix64
// pipeline as sim::SeedSequence.  Derivation depends only on the run's
// identity, never on thread count, completion order, or position in the
// grid, so --jobs N cannot perturb results.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rlacast::exp {

/// An ordered set of key=value parameters identifying a point of the sweep.
/// Order is the insertion order (deterministic, part of the run identity).
class Point {
 public:
  Point() = default;
  Point(std::initializer_list<std::pair<std::string, std::string>> kv)
      : params_(kv.begin(), kv.end()) {}

  Point& set(std::string key, std::string value);
  Point& set(std::string key, double value);
  Point& set(std::string key, std::int64_t value);

  /// Value for `key`, or `fallback` when absent.
  const std::string& get(const std::string& key,
                         const std::string& fallback = kEmpty) const;
  bool has(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  const std::vector<std::pair<std::string, std::string>>& items() const {
    return params_;
  }

  /// Canonical "k1=v1,k2=v2" form; part of seed derivation and JSON output.
  std::string id() const;

 private:
  static const std::string kEmpty;
  std::vector<std::pair<std::string, std::string>> params_;
};

/// One scheduled run: case name + parameter point + replicate + derived seed.
struct RunSpec {
  std::string name;          // scenario case name (e.g. "L1")
  Point point;               // case parameters
  int replicate = 0;         // 0-based replicate index
  std::uint64_t seed = 0;    // deterministic per-run seed (see header note)
  std::size_t index = 0;     // position in the expanded grid (stable order)

  /// "name/k=v#r" — the human-readable run identity used in logs and JSON.
  std::string id() const;
};

/// Derives the per-run seed from (master, name, point id, replicate).
/// Exposed so tests can assert the policy directly.
std::uint64_t derive_seed(std::uint64_t master_seed, const std::string& name,
                          const Point& point, int replicate);

/// Cartesian expansion of cases x replicates, in declaration order: all
/// replicates of case 0, then all replicates of case 1, ...
class Grid {
 public:
  Grid& add_case(std::string name, Point point = {});
  Grid& replicates(int r);
  Grid& master_seed(std::uint64_t seed);

  int num_replicates() const { return replicates_; }
  std::uint64_t master() const { return master_seed_; }
  std::size_t num_cases() const { return cases_.size(); }

  std::vector<RunSpec> expand() const;

 private:
  std::vector<std::pair<std::string, Point>> cases_;
  int replicates_ = 1;
  std::uint64_t master_seed_ = 1;
};

}  // namespace rlacast::exp
