// Agent: an endpoint protocol entity attached to a node.
//
// Agents receive packets addressed to (their node, their port) or multicast
// to a group they subscribed to.  They send by handing packets to the
// Network, optionally through a SendPacer that models per-packet sender
// processing overhead — the mechanism §3.1 of the paper uses to break
// drop-tail phase effects ("a uniformly distributed random processing time
// up to the bottleneck server service time").
#pragma once

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {

class Network;

class Agent {
 public:
  virtual ~Agent() = default;

  /// Called by the node when a packet is delivered to this agent.
  virtual void on_receive(const Packet& p) = 0;
};

/// Serializing send path with optional uniform random per-packet overhead.
/// With max_overhead == 0 packets are injected immediately (in order).
/// With max_overhead > 0 each packet waits Uniform(0, max_overhead) of
/// "processing time"; departures remain in FIFO order.
///
/// Pending packets wait in a ring owned by the pacer; each departure event
/// is a thin callback that pops the ring (no Packet captured in the
/// closure, no allocation on the send path).  Departure times are
/// monotonic by construction and the scheduler is FIFO among equal
/// timestamps, so pops always match the packet their event was armed for.
class SendPacer {
 public:
  SendPacer(sim::Simulator& sim, Network& network, sim::Rng rng,
            sim::SimTime max_overhead = 0.0)
      : sim_(sim),
        network_(network),
        rng_(std::move(rng)),
        max_overhead_(max_overhead) {}

  void set_max_overhead(sim::SimTime v) { max_overhead_ = v; }
  sim::SimTime max_overhead() const { return max_overhead_; }

  /// Sends (or schedules the send of) a packet.
  void send(const Packet& p);

 private:
  void inject(const Packet& p);
  void depart();

  sim::Simulator& sim_;
  Network& network_;
  sim::Rng rng_;
  sim::SimTime max_overhead_;
  sim::SimTime last_departure_ = 0.0;
  PacketRing pending_;
};

}  // namespace rlacast::net
