// Packet: the unit of exchange in the simulated network.
//
// Packets are plain value types (no heap allocations) so that multicast
// fan-out — which copies a packet once per outgoing branch — is cheap.
// Sequence numbers count packets, not bytes, following the convention of the
// paper and of ns-2's one-packet-per-segment TCP agents.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace rlacast::net {

using NodeId = std::int32_t;
using FlowId = std::int32_t;
using GroupId = std::int32_t;
using PortId = std::int32_t;
using SeqNum = std::int64_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr GroupId kNoGroup = -1;
inline constexpr SeqNum kNoSeq = -1;

enum class PacketType : std::uint8_t {
  kData,    // payload segment (TCP or multicast)
  kAck,     // cumulative + selective acknowledgment
  kReport,  // receiver loss report (rate-based baselines)
  kCtrl,    // other control (rate adjustments from baseline senders)
};

/// Half-open SACK block [lo, hi) of packet sequence numbers.
struct SackBlock {
  SeqNum lo = 0;
  SeqNum hi = 0;
  bool contains(SeqNum s) const { return s >= lo && s < hi; }
  bool operator==(const SackBlock&) const = default;
};

/// Maximum SACK blocks carried per ACK; RFC 2018 allows 3-4 with timestamps.
inline constexpr int kMaxSackBlocks = 3;

struct Packet {
  std::uint64_t uid = 0;  // unique per simulator, assigned by Network
  PacketType type = PacketType::kData;
  FlowId flow = -1;

  NodeId src = kNoNode;
  NodeId dst = kNoNode;        // unicast destination; ignored if group set
  GroupId group = kNoGroup;    // multicast group, or kNoGroup for unicast
  PortId src_port = 0;
  PortId dst_port = 0;

  std::int32_t size_bytes = 1000;

  // --- transport header ----------------------------------------------------
  SeqNum seq = kNoSeq;   // data sequence number (packets)
  SeqNum ack = kNoSeq;   // cumulative ACK: everything < ack received
  std::array<SackBlock, kMaxSackBlocks> sack{};
  std::uint8_t n_sack = 0;
  sim::SimTime ts_echo = 0.0;   // sender timestamp echoed by the receiver
  std::int32_t receiver_id = -1;  // multicast receiver index (ACK demux)
  bool is_rexmit = false;
  bool urgent_rexmit_request = false;  // receiver asks for immediate unicast rexmit

  // --- ECN (RFC 3168-style, simplified to packet granularity) ---------------
  bool ect = false;  // ECN-capable transport (set by senders that opt in)
  bool ce = false;   // congestion experienced (set by marking gateways)
  bool ece = false;  // echo of ce on the ACK path

  // --- baseline (rate-based) control payload --------------------------------
  double report_loss_rate = 0.0;   // EWMA loss rate carried by kReport
  std::int64_t report_received = 0;  // packets received in monitor period

  /// One-line debug rendering used in traces and test failure messages.
  std::string describe() const;
};

/// Standard sizes used throughout the paper's experiments.
inline constexpr std::int32_t kDataPacketBytes = 1000;
inline constexpr std::int32_t kAckPacketBytes = 40;

}  // namespace rlacast::net
