// Unidirectional link: output queue + transmitter + propagation pipe.
//
// Model (identical to ns-2's SimpleLink):
//  * a packet offered to a busy link goes to the queue (which may drop it);
//  * the transmitter serializes one packet at a time at `bandwidth` bit/s;
//  * after serialization the packet propagates for `delay` seconds, during
//    which the transmitter is free to serve the next packet (propagation is
//    pipelined, serialization is not).
//
// In-flight packets — the one being serialized and those in the propagation
// pipe — live in a small ring owned by the link; the two pipeline events per
// hop (serialization end, propagation end) are thin callbacks referencing
// the link, so pumping a packet performs zero heap allocations and copies no
// Packet into closures.  Propagation delay is a per-link constant and
// serialization ends are strictly ordered, so deliveries pop the ring FIFO.
//
// Note on buffer semantics: the packet currently being serialized has left
// the queue, so a queue capacity of B packets admits B+1 packets on the hop.
// ns-2 counts the in-service packet against the limit; the difference of one
// packet is immaterial to the reproduced results (buffer 20) but is recorded
// here for honesty.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {

class Network;

/// Fault-injection hook for one unidirectional link (implemented by
/// src/fault/; null = pristine link, zero overhead).  The link consults it
/// at the two points of the pipeline where real impairments act:
///  * transmit() — interface state: a down link discards offered packets
///    before they enter the queue (they were never transmitted);
///  * serialization end — the wire: a serialized packet may be corrupted
///    (lost), duplicated, or delayed (jitter) on its propagation leg.
/// Queue dynamics are never touched: congestion drops stay congestion
/// drops, and fault discards are counted separately (Link::fault_drops(),
/// stats::EngineCounters::fault_drops).
class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;

  /// Interface state at `now`. Called once per offered packet; a true
  /// return means that packet is discarded at the link entrance.
  virtual bool down(sim::SimTime now) = 0;

  /// Non-mutating interface probe: same answer as down() would give at
  /// `now`, but without counting a discarded packet.  Used by failure
  /// detectors (topo::FailoverManager) that poll interface health without
  /// offering traffic.  Default matches a pristine link.
  virtual bool peek_down(sim::SimTime /*now*/) const { return false; }

  struct WireVerdict {
    bool lost = false;             // corrupted on the wire, never arrives
    bool duplicated = false;       // one extra copy propagates
    sim::SimTime extra_delay = 0;  // jitter added to the propagation leg
  };

  /// Wire verdict for one serialized packet. Called once per packet that
  /// finishes serialization while the hook is installed.
  virtual WireVerdict wire(const Packet& p, sim::SimTime now) = 0;
};

class Link : public replay::Snapshotable {
 public:
  Link(sim::Simulator& sim, Network& network, NodeId from, NodeId to,
       double bandwidth_bps, sim::SimTime delay, std::unique_ptr<Queue> queue);

  ~Link() override;

  /// Offers a packet for transmission (from the `from` node).
  void transmit(const Packet& p);

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  sim::SimTime delay() const { return delay_; }

  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }

  /// Serialization time of a packet of `bytes` bytes.
  sim::SimTime tx_time(std::int32_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Packets rejected by the output queue at transmit() time.  Mirrors
  /// queue().stats().dropped but survives queue swaps and is the link-level
  /// answer to "did this hop silently discard traffic?".
  std::uint64_t drops() const { return drops_; }

  /// Packets currently on the hop: serializing + in the propagation pipe.
  std::size_t in_flight() const { return pipe_.size() + (busy_ ? 1u : 0u); }

  /// Deepest simultaneous in-flight occupancy seen (engine counter; bounded
  /// by the hop's bandwidth-delay product plus the serializer).
  std::size_t in_flight_hiwater() const { return inflight_hiwater_; }

  /// Installs (or clears, with nullptr) the fault-injection hook. The hook
  /// must outlive the link or be cleared before it dies.
  void set_fault_hook(LinkFaultHook* hook) { fault_ = hook; }
  const LinkFaultHook* fault_hook() const { return fault_; }

  /// Non-mutating "is the interface down right now?" probe for failure
  /// detectors; never counts a drop.  False on a pristine link.
  bool interface_down(sim::SimTime now) const {
    return fault_ != nullptr && fault_->peek_down(now);
  }

  /// Whether Network::build_routes() may use this link.  Backup links are
  /// created routing-disabled and flipped on by failover re-grafting; a
  /// disabled link still transmits fine if something routes onto it
  /// explicitly.  Default on (no behavior change for existing topologies).
  bool routing_enabled() const { return routing_enabled_; }
  void set_routing_enabled(bool on) { routing_enabled_ = on; }

  /// Packets discarded by injected faults (interface outage at transmit()
  /// plus wire loss at serialization end). Disjoint from drops().
  std::uint64_t fault_drops() const { return fault_drops_; }
  /// Extra packet copies delivered because of injected duplication.
  std::uint64_t fault_duplicates() const { return fault_duplicates_; }

  /// Checkpoint state: transmitter occupancy, pipe depth, and delivery /
  /// drop totals. The output queue snapshots separately (attached as
  /// "link-<from>-<to>/queue" beside this link's own registration).
  replay::Snapshot snapshot_state() const override;

 private:
  void pump();
  void on_serialized();
  void on_propagated();

  sim::Simulator& sim_;
  Network& network_;
  NodeId from_;
  NodeId to_;
  double bandwidth_bps_;
  sim::SimTime delay_;
  std::unique_ptr<Queue> queue_;
  bool busy_ = false;
  Packet tx_pkt_;      // the packet being serialized (valid while busy_)
  PacketRing pipe_;    // serialized packets still propagating, FIFO
  std::size_t inflight_hiwater_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t drops_ = 0;
  LinkFaultHook* fault_ = nullptr;
  bool routing_enabled_ = true;
  sim::SimTime last_arrival_ = 0.0;  // monotone clamp keeping jittered
                                     // deliveries FIFO (pipe pops in order)
  std::uint64_t fault_drops_ = 0;
  std::uint64_t fault_duplicates_ = 0;
};

}  // namespace rlacast::net
