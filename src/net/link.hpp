// Unidirectional link: output queue + transmitter + propagation pipe.
//
// Model (identical to ns-2's SimpleLink):
//  * a packet offered to a busy link goes to the queue (which may drop it);
//  * the transmitter serializes one packet at a time at `bandwidth` bit/s;
//  * after serialization the packet propagates for `delay` seconds, during
//    which the transmitter is free to serve the next packet (propagation is
//    pipelined, serialization is not).
//
// Note on buffer semantics: the packet currently being serialized has left
// the queue, so a queue capacity of B packets admits B+1 packets on the hop.
// ns-2 counts the in-service packet against the limit; the difference of one
// packet is immaterial to the reproduced results (buffer 20) but is recorded
// here for honesty.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {

class Network;

class Link {
 public:
  Link(sim::Simulator& sim, Network& network, NodeId from, NodeId to,
       double bandwidth_bps, sim::SimTime delay, std::unique_ptr<Queue> queue);

  /// Offers a packet for transmission (from the `from` node).
  void transmit(const Packet& p);

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  sim::SimTime delay() const { return delay_; }

  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }

  /// Serialization time of a packet of `bytes` bytes.
  sim::SimTime tx_time(std::int32_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  void pump();

  sim::Simulator& sim_;
  Network& network_;
  NodeId from_;
  NodeId to_;
  double bandwidth_bps_;
  sim::SimTime delay_;
  std::unique_ptr<Queue> queue_;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace rlacast::net
