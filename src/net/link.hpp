// Unidirectional link: output queue + transmitter + propagation pipe.
//
// Model (identical to ns-2's SimpleLink):
//  * a packet offered to a busy link goes to the queue (which may drop it);
//  * the transmitter serializes one packet at a time at `bandwidth` bit/s;
//  * after serialization the packet propagates for `delay` seconds, during
//    which the transmitter is free to serve the next packet (propagation is
//    pipelined, serialization is not).
//
// In-flight packets — the one being serialized and those in the propagation
// pipe — live in a small ring owned by the link; the two pipeline events per
// hop (serialization end, propagation end) are thin callbacks referencing
// the link, so pumping a packet performs zero heap allocations and copies no
// Packet into closures.  Propagation delay is a per-link constant and
// serialization ends are strictly ordered, so deliveries pop the ring FIFO.
//
// Note on buffer semantics: the packet currently being serialized has left
// the queue, so a queue capacity of B packets admits B+1 packets on the hop.
// ns-2 counts the in-service packet against the limit; the difference of one
// packet is immaterial to the reproduced results (buffer 20) but is recorded
// here for honesty.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {

class Network;

class Link {
 public:
  Link(sim::Simulator& sim, Network& network, NodeId from, NodeId to,
       double bandwidth_bps, sim::SimTime delay, std::unique_ptr<Queue> queue);

  /// Offers a packet for transmission (from the `from` node).
  void transmit(const Packet& p);

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  sim::SimTime delay() const { return delay_; }

  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }

  /// Serialization time of a packet of `bytes` bytes.
  sim::SimTime tx_time(std::int32_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Packets rejected by the output queue at transmit() time.  Mirrors
  /// queue().stats().dropped but survives queue swaps and is the link-level
  /// answer to "did this hop silently discard traffic?".
  std::uint64_t drops() const { return drops_; }

  /// Packets currently on the hop: serializing + in the propagation pipe.
  std::size_t in_flight() const { return pipe_.size() + (busy_ ? 1u : 0u); }

  /// Deepest simultaneous in-flight occupancy seen (engine counter; bounded
  /// by the hop's bandwidth-delay product plus the serializer).
  std::size_t in_flight_hiwater() const { return inflight_hiwater_; }

 private:
  void pump();
  void on_serialized();
  void on_propagated();

  sim::Simulator& sim_;
  Network& network_;
  NodeId from_;
  NodeId to_;
  double bandwidth_bps_;
  sim::SimTime delay_;
  std::unique_ptr<Queue> queue_;
  bool busy_ = false;
  Packet tx_pkt_;      // the packet being serialized (valid while busy_)
  PacketRing pipe_;    // serialized packets still propagating, FIFO
  std::size_t inflight_hiwater_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace rlacast::net
