#include "net/link.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "net/network.hpp"

namespace rlacast::net {

Link::Link(sim::Simulator& sim, Network& network, NodeId from, NodeId to,
           double bandwidth_bps, sim::SimTime delay,
           std::unique_ptr<Queue> queue)
    : sim_(sim),
      network_(network),
      from_(from),
      to_(to),
      bandwidth_bps_(bandwidth_bps),
      delay_(delay),
      queue_(std::move(queue)) {
  if (replay::RunObserver* obs = sim_.observer()) {
    const std::string id =
        "link-" + std::to_string(from_) + "-" + std::to_string(to_);
    obs->attach(id, this);
    obs->attach(id + "/queue", queue_.get());
  }
}

Link::~Link() {
  if (replay::RunObserver* obs = sim_.observer()) {
    obs->detach(this);
    obs->detach(queue_.get());
  }
}

replay::Snapshot Link::snapshot_state() const {
  replay::Snapshot s;
  s.put("busy", busy_);
  s.put("pipe", pipe_.size());
  s.put("inflight_hiwater", inflight_hiwater_);
  s.put("delivered", delivered_);
  s.put("bytes_delivered", bytes_delivered_);
  s.put("drops", drops_);
  s.put("fault_drops", fault_drops_);
  s.put("fault_duplicates", fault_duplicates_);
  s.put("last_arrival", last_arrival_);
  return s;
}

void Link::transmit(const Packet& p) {
  if (fault_ != nullptr && fault_->down(sim_.now())) {
    // Interface outage: the packet is discarded at the link entrance, never
    // entering the queue (distinct from a congestion drop).
    ++fault_drops_;
    ++sim_.scheduler().counters_mut().fault_drops;
    return;
  }
  if (!queue_->enqueue(p, sim_.now())) {
    ++drops_;  // queue overflow: the hop discards the packet
    return;
  }
  pump();
}

void Link::pump() {
  if (busy_) return;
  auto next = queue_->dequeue(sim_.now());
  if (!next) return;
  busy_ = true;
  tx_pkt_ = std::move(*next);
  inflight_hiwater_ = std::max(inflight_hiwater_, in_flight());
  auto done = [this] { on_serialized(); };
  static_assert(sim::SmallCallback::fits_inline<decltype(done)>(),
                "link pipeline events must use the inline callback path");
  sim_.after(tx_time(tx_pkt_.size_bytes), std::move(done));
}

void Link::on_serialized() {
  // Serialization end: free the transmitter, launch the propagation leg,
  // and serve the next queued packet.
  busy_ = false;
  if (fault_ == nullptr) {
    ++delivered_;
    bytes_delivered_ += static_cast<std::uint64_t>(tx_pkt_.size_bytes);
    pipe_.push_back(std::move(tx_pkt_));
    inflight_hiwater_ = std::max(inflight_hiwater_, in_flight());
    auto arrive = [this] { on_propagated(); };
    static_assert(sim::SmallCallback::fits_inline<decltype(arrive)>(),
                  "link pipeline events must use the inline callback path");
    sim_.after(delay_, std::move(arrive));
    pump();
    return;
  }

  // Faulted wire: the serialized packet may be lost, duplicated, or jittered
  // on its propagation leg.  Queue dynamics above are untouched.
  const LinkFaultHook::WireVerdict v = fault_->wire(tx_pkt_, sim_.now());
  if (v.lost) {
    ++fault_drops_;
    ++sim_.scheduler().counters_mut().fault_drops;
    pump();
    return;
  }
  ++delivered_;
  bytes_delivered_ += static_cast<std::uint64_t>(tx_pkt_.size_bytes);
  // The pipe pops FIFO, so a jittered arrival must never overtake an earlier
  // one: clamp each arrival to be monotone in scheduling order.
  const sim::SimTime jitter = v.extra_delay > 0.0 ? v.extra_delay : 0.0;
  sim::SimTime arrive_at = sim_.now() + delay_ + jitter;
  if (arrive_at < last_arrival_) arrive_at = last_arrival_;
  last_arrival_ = arrive_at;
  auto arrive = [this] { on_propagated(); };
  static_assert(sim::SmallCallback::fits_inline<decltype(arrive)>(),
                "link pipeline events must use the inline callback path");
  if (v.duplicated) {
    ++fault_duplicates_;
    ++sim_.scheduler().counters_mut().fault_duplicates;
    pipe_.push_back(tx_pkt_);  // the extra copy; original follows below
    sim_.at(arrive_at, arrive);
  }
  pipe_.push_back(std::move(tx_pkt_));
  inflight_hiwater_ = std::max(inflight_hiwater_, in_flight());
  sim_.at(arrive_at, std::move(arrive));
  pump();
}

void Link::on_propagated() {
  // Pop before delivering: delivery may re-entrantly transmit on this link.
  const Packet p = pipe_.pop_front();
  network_.deliver(to_, p);
}

}  // namespace rlacast::net
