#include "net/link.hpp"

#include <utility>

#include "net/network.hpp"

namespace rlacast::net {

Link::Link(sim::Simulator& sim, Network& network, NodeId from, NodeId to,
           double bandwidth_bps, sim::SimTime delay,
           std::unique_ptr<Queue> queue)
    : sim_(sim),
      network_(network),
      from_(from),
      to_(to),
      bandwidth_bps_(bandwidth_bps),
      delay_(delay),
      queue_(std::move(queue)) {}

void Link::transmit(const Packet& p) {
  if (!queue_->enqueue(p, sim_.now())) return;  // dropped
  pump();
}

void Link::pump() {
  if (busy_) return;
  auto next = queue_->dequeue(sim_.now());
  if (!next) return;
  busy_ = true;
  const sim::SimTime serialize = tx_time(next->size_bytes);
  // One event at serialization end: free the transmitter, launch the
  // propagation leg, and serve the next queued packet.
  sim_.after(serialize, [this, p = std::move(*next)]() mutable {
    busy_ = false;
    ++delivered_;
    bytes_delivered_ += static_cast<std::uint64_t>(p.size_bytes);
    sim_.after(delay_, [this, p = std::move(p)] { network_.deliver(to_, p); });
    pump();
  });
}

}  // namespace rlacast::net
