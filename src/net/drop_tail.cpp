#include "net/drop_tail.hpp"

namespace rlacast::net {

bool DropTailQueue::enqueue(const Packet& p, sim::SimTime now) {
  const bool full =
      byte_mode()
          ? bytes_ + p.size_bytes >
                static_cast<std::int64_t>(capacity_) * slot_bytes_
          : q_.size() >= capacity_;
  if (full) {
    note_drop(p, now);
    return false;
  }
  q_.push_back(p);
  bytes_ += p.size_bytes;
  note_enqueue();
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.pop_front();
  bytes_ -= p.size_bytes;
  note_dequeue();
  return p;
}

}  // namespace rlacast::net
