#include "net/red.hpp"

#include <cmath>

namespace rlacast::net {

void RedQueue::age_idle(sim::SimTime now) {
  if (!idle_ || params_.mean_pkt_time <= 0.0) return;
  const double m = (now - idle_since_) / params_.mean_pkt_time;
  if (m > 0.0) avg_ *= std::pow(1.0 - params_.w_q, m);
  idle_ = false;
}

bool RedQueue::enqueue(const Packet& p, sim::SimTime now) {
  age_idle(now);
  idle_ = false;

  avg_ = (1.0 - params_.w_q) * avg_ + params_.w_q * measured_length();

  const bool physically_full =
      params_.slot_bytes > 0
          ? bytes_ + p.size_bytes > static_cast<std::int64_t>(
                                        params_.capacity) * params_.slot_bytes
          : q_.size() >= params_.capacity;
  bool drop = false;
  bool mark = false;
  if (physically_full) {
    drop = true;
    ++overflow_drops_;
  } else if (avg_ >= params_.max_th) {
    drop = true;
    ++forced_drops_;
    count_ = 0;
  } else if (avg_ >= params_.min_th) {
    if (count_ < 0) count_ = 0;
    ++count_;
    const double pb = params_.max_p * (avg_ - params_.min_th) /
                      (params_.max_th - params_.min_th);
    double pa;
    if (params_.wait) {
      const double cpb = static_cast<double>(count_) * pb;
      if (cpb < 1.0)
        pa = 0.0;
      else if (cpb < 2.0)
        pa = pb / (2.0 - cpb);
      else
        pa = 1.0;
    } else {
      const double cpb = static_cast<double>(count_) * pb;
      pa = cpb < 1.0 ? pb / (1.0 - cpb) : 1.0;
    }
    if (rng_.chance(pa)) {
      // An early decision notifies the flow; with ECN and an ECN-capable
      // packet the notification is a CE mark, not a loss.
      if (params_.ecn && p.ect) {
        mark = true;
        ++ecn_marks_;
      } else {
        drop = true;
        ++early_drops_;
      }
      count_ = 0;
    }
  } else {
    count_ = -1;
  }

  if (drop) {
    note_drop(p, now);
    return false;
  }
  Packet stored = p;
  if (mark) stored.ce = true;
  q_.push_back(stored);
  bytes_ += stored.size_bytes;
  note_enqueue();
  return true;
}

std::optional<Packet> RedQueue::dequeue(sim::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.pop_front();
  bytes_ -= p.size_bytes;
  note_dequeue();
  if (q_.empty()) {
    idle_ = true;
    idle_since_ = now;
  }
  return p;
}

}  // namespace rlacast::net
