#include "net/agent.hpp"

#include <algorithm>

#include "net/network.hpp"

namespace rlacast::net {

void SendPacer::send(const Packet& p) {
  if (max_overhead_ <= 0.0) {
    network_.inject(p);
    return;
  }
  // Uniform random processing time, serialized so packets of one sender
  // never reorder (the overhead models CPU time, not an independent path).
  const sim::SimTime depart_at = std::max(
      sim_.now() + rng_.uniform(0.0, max_overhead_), last_departure_);
  last_departure_ = depart_at;
  pending_.push_back(p);
  auto fire = [this] { depart(); };
  static_assert(sim::SmallCallback::fits_inline<decltype(fire)>(),
                "pacer departure events must use the inline callback path");
  sim_.at(depart_at, std::move(fire));
}

void SendPacer::depart() {
  const Packet p = pending_.pop_front();
  inject(p);
}

void SendPacer::inject(const Packet& p) { network_.inject(p); }

}  // namespace rlacast::net
