// Drop-tail FIFO queue: finite buffer, arrivals beyond capacity discarded.
//
// This is the gateway type §3.1 of the paper analyses: buffer occupancy
// oscillates between near-empty and full ("buffer periods"), and the drop
// pattern is phase-sensitive — which is why the protocols add random sender
// overhead when operating across drop-tail gateways.
#pragma once

#include "net/packet_ring.hpp"
#include "net/queue.hpp"

namespace rlacast::net {

class DropTailQueue final : public Queue {
 public:
  /// `capacity` is the total buffer size in packets (including the packet in
  /// service, as in ns-2). With `slot_bytes > 0` the buffer is accounted in
  /// bytes instead — capacity * slot_bytes total — so small packets (ACKs)
  /// consume proportionally less room, matching ns-2's queue-in-bytes mode.
  /// Byte accounting matters on feedback paths: a multicast data packet
  /// reaching N receivers at once triggers N simultaneous 40-byte ACKs,
  /// which must not overflow a buffer sized for 1000-byte data packets.
  explicit DropTailQueue(std::size_t capacity, std::int32_t slot_bytes = 0)
      : capacity_(capacity), slot_bytes_(slot_bytes) {}

  bool enqueue(const Packet& p, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  std::size_t length() const override { return q_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool byte_mode() const { return slot_bytes_ > 0; }
  std::int64_t bytes() const { return bytes_; }

 private:
  std::size_t capacity_;
  std::int32_t slot_bytes_;
  std::int64_t bytes_ = 0;
  PacketRing q_;
};

}  // namespace rlacast::net
