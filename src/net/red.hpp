// RED (Random Early Detection) gateway queue.
//
// Implements the estimator and drop policy of Floyd & Jacobson, "Random
// Early Detection Gateways for Congestion Avoidance" (ToN 1993), in the
// variant shipped with ns-2.0 — which is what the paper's evaluation used
// ("other parameters are the default values used in the standard NS2.0 RED
// gateway"):
//
//  * EWMA average queue size, updated on every arrival:
//        avg <- (1 - w_q) * avg + w_q * q
//    with idle-time compensation: when the queue has been empty for time t,
//    the average is aged as if m = t / s small packets had passed
//    (s = mean packet service time): avg <- avg * (1 - w_q)^m.
//  * if avg < min_th: no early drop (count reset);
//    if min_th <= avg < max_th: early-drop with probability
//        p_b = max_p * (avg - min_th) / (max_th - min_th)
//        p_a = p_b / (1 - count * p_b)           [uniformization by count]
//    where `count` is the number of packets since the last drop;
//    if avg >= max_th: forced drop.
//  * A physically full buffer always drops (the avg can lag the real queue).
//
// The paper's runs use min_th = 5, max_th = 15 with a physical buffer of 20.
#pragma once

#include "net/packet_ring.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"

namespace rlacast::net {

struct RedParams {
  std::size_t capacity = 20;   // physical buffer, packets
  double min_th = 5.0;         // packets
  double max_th = 15.0;        // packets
  double w_q = 0.002;          // EWMA gain (ns-2 default)
  double max_p = 0.1;          // ns-2 linterm_ = 10  =>  max_p = 0.1
  bool wait = false;           // ns "wait_" spacing mode; off in ns-2.0 era
  // Mean packet service time at the attached link, used for idle aging.
  // Network fills this in from link bandwidth and mean packet size when it
  // attaches the queue; 0 disables idle compensation.
  double mean_pkt_time = 0.0;
  // Byte accounting (ns-2 "queue in bytes" mode): with slot_bytes > 0 the
  // physical capacity is capacity * slot_bytes bytes and the averaged queue
  // length is measured in mean-packet units (bytes / slot_bytes), so ACKs
  // cost proportionally less than data packets. 0 keeps packet counting.
  std::int32_t slot_bytes = 0;
  // ECN: when true, an *early* RED decision marks ECN-capable packets
  // (CE bit) instead of dropping them; forced and overflow drops still
  // drop. Non-ECT packets are dropped as usual.
  bool ecn = false;
};

class RedQueue final : public Queue {
 public:
  RedQueue(RedParams params, sim::Rng rng)
      : params_(params), rng_(std::move(rng)) {}

  bool enqueue(const Packet& p, sim::SimTime now) override;
  std::optional<Packet> dequeue(sim::SimTime now) override;
  std::size_t length() const override { return q_.size(); }

  double avg() const { return avg_; }
  const RedParams& params() const { return params_; }
  void set_mean_pkt_time(double s) { params_.mean_pkt_time = s; }

  /// Counters split by drop cause, for tests and the EXPERIMENTS writeup.
  std::uint64_t early_drops() const { return early_drops_; }
  std::uint64_t forced_drops() const { return forced_drops_; }
  std::uint64_t overflow_drops() const { return overflow_drops_; }
  std::uint64_t ecn_marks() const { return ecn_marks_; }

  /// Base counters plus the RED estimator internals (EWMA average, count
  /// since last drop, RNG draw cursor) — the state whose divergence is the
  /// classic symptom of an extra or missing early-drop coin flip.
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s = Queue::snapshot_state();
    s.put("avg", avg_);
    s.put("count", count_);
    s.put("bytes", bytes_);
    s.put("idle", idle_);
    s.put("early_drops", early_drops_);
    s.put("forced_drops", forced_drops_);
    s.put("overflow_drops", overflow_drops_);
    s.put("ecn_marks", ecn_marks_);
    s.put("rng_draws", rng_.draw_count());
    return s;
  }

 private:
  void age_idle(sim::SimTime now);

  /// Instantaneous queue length in the unit RED thresholds use (packets, or
  /// mean-packet equivalents in byte mode).
  double measured_length() const {
    return params_.slot_bytes > 0
               ? static_cast<double>(bytes_) / params_.slot_bytes
               : static_cast<double>(q_.size());
  }

  RedParams params_;
  sim::Rng rng_;
  PacketRing q_;
  std::int64_t bytes_ = 0;
  double avg_ = 0.0;
  std::int64_t count_ = -1;  // packets since last early drop; -1 = below min
  bool idle_ = true;
  sim::SimTime idle_since_ = 0.0;
  std::uint64_t early_drops_ = 0;
  std::uint64_t forced_drops_ = 0;
  std::uint64_t overflow_drops_ = 0;
  std::uint64_t ecn_marks_ = 0;
};

}  // namespace rlacast::net
