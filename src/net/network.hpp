// Network: topology container, router, and packet injector.
//
// Owns all nodes and links, computes hop-count shortest-path routes (BFS),
// grafts multicast distribution trees onto those routes, and moves packets:
// Network::inject() starts a packet at its source node; Network::deliver()
// is called by links when a packet reaches the far end of a hop.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/drop_tail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {

enum class QueueKind { kDropTail, kRed };

/// Per-hop configuration used when wiring a duplex link.
struct LinkConfig {
  double bandwidth_bps = 100e6;
  sim::SimTime delay = sim::milliseconds(5);
  QueueKind queue = QueueKind::kDropTail;
  std::size_t buffer_pkts = 20;
  /// Byte-mode queue accounting (ns-2 queue-in-bytes): buffers hold
  /// buffer_pkts * queue_slot_bytes bytes, so 40-byte ACKs cost ~1/25 of a
  /// data packet's room. 0 = classic per-packet counting. All the paper's
  /// experiments use byte mode; per-packet mode is kept for unit tests.
  std::int32_t queue_slot_bytes = kDataPacketBytes;
  RedParams red{};  // min/max thresholds etc.; capacity overridden by buffer_pkts
  /// Reverse-direction capacity override for connect(): 0 (the default)
  /// keeps the duplex symmetric. Aggregated topologies need this — a
  /// "group leaf" standing in for g real receivers carries the multicast
  /// data ONCE on the forward direction but the sum of g per-leaf ACK
  /// streams on the reverse, so the faithful collapse of that subtree is an
  /// asymmetric hop (forward = bottleneck capacity, reverse = g ACK paths).
  double reverse_bandwidth_bps = 0.0;
  /// Reverse-direction buffer override for connect(): 0 (the default)
  /// keeps the forward buffer_pkts. The collapsed-ACK-path hops above need
  /// room for a whole group's synchronized ACK answer, not the forward
  /// direction's bottleneck-sized buffer.
  std::size_t reverse_buffer_pkts = 0;

  LinkConfig with_bandwidth(double bps) const {
    LinkConfig c = *this;
    c.bandwidth_bps = bps;
    return c;
  }
  LinkConfig with_delay(sim::SimTime d) const {
    LinkConfig c = *this;
    c.delay = d;
    return c;
  }
};

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node();
  std::size_t node_count() const { return nodes_.size(); }
  Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }

  /// Creates a pair of unidirectional links a->b and b->a, each with its own
  /// queue built from `cfg`.
  struct Duplex {
    Link* forward;
    Link* reverse;
  };
  Duplex connect(NodeId a, NodeId b, const LinkConfig& cfg);

  /// Recomputes hop-count shortest-path routing tables for all nodes over
  /// the routing-enabled links (Link::routing_enabled(); backup links are
  /// excluded until failover flips them on).  Clears stale routes first, so
  /// it is safe to call again after a topology change — but group trees
  /// grafted from the old routes must be re-grafted (clear_group() +
  /// join_group()).  Call after the topology is final and before
  /// join_group().
  void build_routes();

  /// Grafts the unicast route source->member onto group g's tree.
  void join_group(GroupId g, NodeId source, NodeId member);

  /// Drops group g's forwarding sets at every node (re-grafting support:
  /// call before re-joining members after build_routes() changed paths).
  /// Local subscriptions (subscribe()) are untouched.
  void clear_group(GroupId g);

  /// Registers an agent at (node, port).
  void attach(NodeId node, PortId port, Agent* agent);

  /// Local group subscription for receiving multicast payload at a node.
  void subscribe(GroupId g, NodeId node, Agent* agent);

  /// Injects a packet at its source node. Assigns the uid.
  void inject(Packet p);

  /// Called by links on hop completion; also usable directly in tests.
  void deliver(NodeId at, const Packet& p);

  /// The unidirectional link from a to b, or nullptr.
  Link* link_between(NodeId a, NodeId b) const;

  /// All unidirectional links in creation order (drop accounting and other
  /// whole-topology diagnostics).
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  sim::Simulator& simulator() { return sim_; }

  std::uint64_t packets_injected() const { return next_uid_ - 1; }

 private:
  std::unique_ptr<Queue> make_queue(const LinkConfig& cfg);
  Link* add_link(NodeId from, NodeId to, const LinkConfig& cfg);
  void forward_multicast(Node& n, const Packet& p);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t next_uid_ = 1;
  int red_streams_ = 0;
};

}  // namespace rlacast::net
