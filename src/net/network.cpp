#include "net/network.hpp"

#include <cassert>
#include <deque>
#include <string>

namespace rlacast::net {

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id));
  return id;
}

std::unique_ptr<Queue> Network::make_queue(const LinkConfig& cfg) {
  switch (cfg.queue) {
    case QueueKind::kDropTail:
      return std::make_unique<DropTailQueue>(cfg.buffer_pkts,
                                             cfg.queue_slot_bytes);
    case QueueKind::kRed: {
      RedParams p = cfg.red;
      p.capacity = cfg.buffer_pkts;
      p.slot_bytes = cfg.queue_slot_bytes;
      // mean service time for idle aging: assume the standard data packet.
      p.mean_pkt_time =
          static_cast<double>(kDataPacketBytes) * 8.0 / cfg.bandwidth_bps;
      // Each RED queue gets an independent deterministic stream.
      auto rng = sim_.rng_stream("red-queue-" + std::to_string(red_streams_++));
      return std::make_unique<RedQueue>(p, std::move(rng));
    }
  }
  return nullptr;
}

Link* Network::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  links_.push_back(std::make_unique<Link>(sim_, *this, from, to,
                                          cfg.bandwidth_bps, cfg.delay,
                                          make_queue(cfg)));
  Link* l = links_.back().get();
  node(from).add_out_link(l);
  return l;
}

Network::Duplex Network::connect(NodeId a, NodeId b, const LinkConfig& cfg) {
  LinkConfig rev = cfg.reverse_bandwidth_bps > 0.0
                       ? cfg.with_bandwidth(cfg.reverse_bandwidth_bps)
                       : cfg;
  if (cfg.reverse_buffer_pkts > 0) rev.buffer_pkts = cfg.reverse_buffer_pkts;
  return Duplex{add_link(a, b, cfg), add_link(b, a, rev)};
}

void Network::build_routes() {
  // BFS from every node over the out-link adjacency. Topologies in this
  // project are tens of nodes, so O(V * (V + E)) is plenty fast.
  const auto n = nodes_.size();
  for (std::size_t src = 0; src < n; ++src) node(static_cast<NodeId>(src)).clear_routes();
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<Link*> first_hop(n, nullptr);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> frontier;
    seen[src] = true;
    frontier.push_back(static_cast<NodeId>(src));
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (Link* l : node(u).out_links()) {
        if (!l->routing_enabled()) continue;
        const auto v = static_cast<std::size_t>(l->to());
        if (seen[v]) continue;
        seen[v] = true;
        first_hop[v] =
            (u == static_cast<NodeId>(src)) ? l : first_hop[static_cast<std::size_t>(u)];
        frontier.push_back(l->to());
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst)
      if (dst != src && first_hop[dst] != nullptr)
        node(static_cast<NodeId>(src))
            .set_route(static_cast<NodeId>(dst), first_hop[dst]);
  }
}

void Network::join_group(GroupId g, NodeId source, NodeId member) {
  // Walk the unicast route source -> member, grafting each hop onto the tree.
  NodeId at = source;
  while (at != member) {
    Link* hop = node(at).route(member);
    assert(hop != nullptr && "no route while grafting multicast tree");
    node(at).add_group_link(g, hop);
    at = hop->to();
  }
}

void Network::clear_group(GroupId g) {
  for (const auto& n : nodes_) n->clear_group_links(g);
}

void Network::attach(NodeId n, PortId port, Agent* agent) {
  node(n).attach(port, agent);
}

void Network::subscribe(GroupId g, NodeId n, Agent* agent) {
  node(n).subscribe(g, agent);
}

void Network::inject(Packet p) {
  p.uid = next_uid_++;
  deliver(p.src, p);
}

void Network::forward_multicast(Node& n, const Packet& p) {
  if (const auto* links = n.group_links(p.group)) {
    for (Link* l : *links) l->transmit(p);
  }
}

void Network::deliver(NodeId at, const Packet& p) {
  Node& n = node(at);
  if (p.group != kNoGroup) {
    // Local subscribers receive a copy; downstream branches get forwarded
    // copies. Both can apply at interior nodes (e.g. gateway receivers in
    // the heterogeneous-RTT experiment of §5.3).
    if (const auto* subs = n.subscribers(p.group)) {
      for (Agent* a : *subs) a->on_receive(p);
    }
    forward_multicast(n, p);
    return;
  }
  if (p.dst == at) {
    if (Agent* a = n.agent_at(p.dst_port)) a->on_receive(p);
    return;
  }
  Link* hop = n.route(p.dst);
  assert(hop != nullptr && "no route for unicast packet");
  if (hop != nullptr) hop->transmit(p);
}

Link* Network::link_between(NodeId a, NodeId b) const {
  for (const auto& l : links_)
    if (l->from() == a && l->to() == b) return l.get();
  return nullptr;
}

}  // namespace rlacast::net
