// Queue discipline interface for router output buffers.
//
// The paper's evaluation contrasts two disciplines: drop-tail FIFO (the
// dominant Internet router of 1998) and RED.  Both are measured in packets —
// "all nodes have a buffer of size 20 packets".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.hpp"
#include "replay/snapshot.hpp"

namespace rlacast::net {

/// Cumulative counters every queue maintains; read by scenario harnesses and
/// tests to compute loss rates per gateway.
struct QueueStats {
  std::uint64_t enqueued = 0;   // accepted packets
  std::uint64_t dropped = 0;    // rejected/discarded packets
  std::uint64_t dequeued = 0;

  double drop_rate() const {
    const double arrivals = static_cast<double>(enqueued + dropped);
    return arrivals > 0.0 ? static_cast<double>(dropped) / arrivals : 0.0;
  }
};

class Queue : public replay::Snapshotable {
 public:
  ~Queue() override = default;

  /// Offers a packet at time `now`. Returns true if accepted; a false return
  /// means the packet was dropped (the caller discards it).
  virtual bool enqueue(const Packet& p, sim::SimTime now) = 0;

  /// Removes the head-of-line packet; nullopt when empty.
  virtual std::optional<Packet> dequeue(sim::SimTime now) = 0;

  /// Instantaneous backlog in packets.
  virtual std::size_t length() const = 0;

  const QueueStats& stats() const { return stats_; }

  /// Optional observer invoked for every dropped packet (tests, tracing,
  /// per-flow loss accounting).
  void set_drop_hook(std::function<void(const Packet&, sim::SimTime)> hook) {
    drop_hook_ = std::move(hook);
  }

  /// Checkpoint state: backlog + cumulative counters. Disciplines with
  /// internal estimator state (RED) extend this.
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("length", length());
    s.put("enqueued", stats_.enqueued);
    s.put("dropped", stats_.dropped);
    s.put("dequeued", stats_.dequeued);
    return s;
  }

 protected:
  void note_enqueue() { ++stats_.enqueued; }
  void note_dequeue() { ++stats_.dequeued; }
  void note_drop(const Packet& p, sim::SimTime now) {
    ++stats_.dropped;
    if (drop_hook_) drop_hook_(p, now);
  }

 private:
  QueueStats stats_;
  std::function<void(const Packet&, sim::SimTime)> drop_hook_;
};

}  // namespace rlacast::net
