#include "net/packet.hpp"

#include <sstream>

namespace rlacast::net {

std::string Packet::describe() const {
  std::ostringstream os;
  switch (type) {
    case PacketType::kData:
      os << "DATA";
      break;
    case PacketType::kAck:
      os << "ACK";
      break;
    case PacketType::kReport:
      os << "REPORT";
      break;
    case PacketType::kCtrl:
      os << "CTRL";
      break;
  }
  os << " uid=" << uid << " flow=" << flow << " " << src << "->";
  if (group != kNoGroup)
    os << "g" << group;
  else
    os << dst;
  if (seq != kNoSeq) os << " seq=" << seq;
  if (ack != kNoSeq) os << " ack=" << ack;
  for (int i = 0; i < n_sack; ++i)
    os << " sack[" << sack[i].lo << "," << sack[i].hi << ")";
  if (receiver_id >= 0) os << " rcvr=" << receiver_id;
  if (is_rexmit) os << " rexmit";
  return os.str();
}

}  // namespace rlacast::net
