// PacketRing: a growable FIFO ring of packets owned by the component whose
// pipeline they are traversing (a Link's in-flight window, a SendPacer's
// pending queue).
//
// The point is allocation behaviour: scheduled events reference the owning
// component (`this`) and pop from its ring, instead of capturing ~150-byte
// Packet copies inside chained closures.  The ring grows geometrically to
// the pipeline's natural depth (bandwidth-delay product of the hop, burst
// depth of the pacer) and then recycles storage forever — steady-state
// traffic performs zero heap allocations.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace rlacast::net {

class PacketRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  /// Deepest simultaneous occupancy seen (per-link in-flight high-water).
  std::size_t hiwater() const { return hiwater_; }

  Packet& front() {
    assert(count_ > 0);
    return buf_[head_];
  }

  void push_back(Packet p) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(p);
    ++count_;
    if (count_ > hiwater_) hiwater_ = count_;
  }

  /// Removes and returns the oldest packet.
  Packet pop_front() {
    assert(count_ > 0);
    Packet p = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return p;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 4 : buf_.size() * 2;
    std::vector<Packet> next(cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  // Power-of-two capacity so the index wrap is a mask.
  std::vector<Packet> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t hiwater_ = 0;
};

}  // namespace rlacast::net
