// Node: a router or end host.
//
// Routers forward by destination (unicast) or by group membership of their
// outgoing links (multicast; the forwarding sets are grafted from unicast
// routes by Network::join_group, giving a source-rooted shortest-path tree,
// exactly the dense-mode distribution tree the paper assumes).
// End hosts additionally hold agents, keyed by port, and group subscriptions.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/agent.hpp"
#include "net/packet.hpp"

namespace rlacast::net {

class Link;

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  // --- forwarding state (managed by Network) -------------------------------
  void set_route(NodeId dst, Link* next_hop);
  Link* route(NodeId dst) const;
  /// Drops every unicast route (re-grafting support: Network::build_routes
  /// clears before recomputing so stale next-hops cannot survive a topology
  /// change such as a failover link flip).
  void clear_routes();
  void add_group_link(GroupId g, Link* l);
  const std::vector<Link*>* group_links(GroupId g) const;
  /// Drops group g's forwarding set at this node (re-grafting support).
  void clear_group_links(GroupId g);

  // --- local delivery -------------------------------------------------------
  void attach(PortId port, Agent* agent);
  void subscribe(GroupId g, Agent* agent);
  Agent* agent_at(PortId port) const;
  const std::vector<Agent*>* subscribers(GroupId g) const;

  void add_out_link(Link* l) { out_links_.push_back(l); }
  const std::vector<Link*>& out_links() const { return out_links_; }

 private:
  NodeId id_;
  std::vector<Link*> routes_;  // indexed by destination node id
  std::unordered_map<GroupId, std::vector<Link*>> group_links_;
  std::unordered_map<PortId, Agent*> agents_;
  std::unordered_map<GroupId, std::vector<Agent*>> subscribers_;
  std::vector<Link*> out_links_;
};

}  // namespace rlacast::net
