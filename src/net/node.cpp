#include "net/node.hpp"

#include <algorithm>
#include <cassert>

namespace rlacast::net {

void Node::set_route(NodeId dst, Link* next_hop) {
  assert(dst >= 0);
  if (routes_.size() <= static_cast<std::size_t>(dst))
    routes_.resize(static_cast<std::size_t>(dst) + 1, nullptr);
  routes_[static_cast<std::size_t>(dst)] = next_hop;
}

Link* Node::route(NodeId dst) const {
  if (dst < 0 || static_cast<std::size_t>(dst) >= routes_.size())
    return nullptr;
  return routes_[static_cast<std::size_t>(dst)];
}

void Node::clear_routes() {
  std::fill(routes_.begin(), routes_.end(), nullptr);
}

void Node::add_group_link(GroupId g, Link* l) {
  auto& links = group_links_[g];
  if (std::find(links.begin(), links.end(), l) == links.end())
    links.push_back(l);
}

void Node::clear_group_links(GroupId g) { group_links_.erase(g); }

const std::vector<Link*>* Node::group_links(GroupId g) const {
  const auto it = group_links_.find(g);
  return it == group_links_.end() ? nullptr : &it->second;
}

void Node::attach(PortId port, Agent* agent) {
  assert(agents_.find(port) == agents_.end() && "port already in use");
  agents_[port] = agent;
}

void Node::subscribe(GroupId g, Agent* agent) {
  subscribers_[g].push_back(agent);
}

Agent* Node::agent_at(PortId port) const {
  const auto it = agents_.find(port);
  return it == agents_.end() ? nullptr : it->second;
}

const std::vector<Agent*>* Node::subscribers(GroupId g) const {
  const auto it = subscribers_.find(g);
  return it == subscribers_.end() ? nullptr : &it->second;
}

}  // namespace rlacast::net
