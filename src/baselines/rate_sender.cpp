#include "baselines/rate_sender.hpp"

#include <algorithm>

namespace rlacast::baselines {

RateBasedSender::RateBasedSender(net::Network& network, net::NodeId node,
                                 net::PortId port, net::GroupId group,
                                 net::FlowId flow, RateSenderParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      group_(group),
      flow_(flow),
      params_(params),
      rate_(params.initial_rate_pps),
      send_timer_(sim_, [this] { send_next(); }),
      policy_timer_(sim_, [this] { policy_tick(); }) {
  network_.attach(node_, port_, this);
  rate_mean_.start(0.0, rate_);
}

int RateBasedSender::add_receiver() {
  reported_loss_.push_back(0.0);
  return static_cast<int>(reported_loss_.size()) - 1;
}

void RateBasedSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    send_next();
    policy_tick();
  });
}

void RateBasedSender::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kReport) return;
  if (p.receiver_id < 0 ||
      static_cast<std::size_t>(p.receiver_id) >= reported_loss_.size())
    return;
  reported_loss_[static_cast<std::size_t>(p.receiver_id)] =
      p.report_loss_rate;
}

void RateBasedSender::send_next() {
  if (!started_) return;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.src_port = port_;
  p.group = group_;
  p.size_bytes = params_.packet_bytes;
  p.seq = next_seq_++;
  p.ts_echo = sim_.now();
  network_.inject(p);
  ++sent_;
  send_timer_.schedule(1.0 / rate_);
}

void RateBasedSender::set_rate(double r) {
  rate_ = std::clamp(r, params_.min_rate_pps, params_.max_rate_pps);
  rate_mean_.update(sim_.now(), rate_);
}

void RateBasedSender::policy_tick() {
  if (should_cut() && sim_.now() - last_cut_ >= params_.dead_time) {
    set_rate(rate_ / 2.0);
    last_cut_ = sim_.now();
    ++cuts_;
  } else {
    // Linear increase: one packet per RTT per RTT, i.e. slope 1/RTT^2
    // packets per second per second, applied over the update interval.
    const double slope =
        1.0 / (params_.nominal_rtt * params_.nominal_rtt);
    set_rate(rate_ + slope * params_.update_interval);
  }
  policy_timer_.schedule(params_.update_interval);
}

}  // namespace rlacast::baselines
