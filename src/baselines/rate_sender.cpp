#include "baselines/rate_sender.hpp"

namespace rlacast::baselines {

namespace {

cc::AimdRateParams rate_params(const RateSenderParams& p) {
  cc::AimdRateParams rp;
  rp.initial_rate = p.initial_rate_pps;
  rp.min_rate = p.min_rate_pps;
  rp.max_rate = p.max_rate_pps;
  rp.dead_time = p.dead_time;
  return rp;
}

}  // namespace

RateBasedSender::RateBasedSender(net::Network& network, net::NodeId node,
                                 net::PortId port, net::GroupId group,
                                 net::FlowId flow, RateSenderParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      group_(group),
      flow_(flow),
      params_(params),
      rate_(rate_params(params)),
      send_timer_(sim_, [this] { send_next(); }),
      policy_timer_(sim_, [this] { policy_tick(); }) {
  network_.attach(node_, port_, this);
  rate_mean_.start(0.0, rate_.rate());
}

int RateBasedSender::add_receiver() {
  reported_loss_.push_back(0.0);
  return static_cast<int>(reported_loss_.size()) - 1;
}

void RateBasedSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    send_next();
    policy_tick();
  });
}

void RateBasedSender::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kReport) return;
  if (p.receiver_id < 0 ||
      static_cast<std::size_t>(p.receiver_id) >= reported_loss_.size())
    return;
  reported_loss_[static_cast<std::size_t>(p.receiver_id)] =
      p.report_loss_rate;
}

void RateBasedSender::send_next() {
  if (!started_) return;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.src_port = port_;
  p.group = group_;
  p.size_bytes = params_.packet_bytes;
  p.seq = next_seq_++;
  p.ts_echo = sim_.now();
  network_.inject(p);
  ++sent_;
  send_timer_.schedule(1.0 / rate_.rate());
}

void RateBasedSender::policy_tick() {
  // should_cut() runs first even when the dead time would block the cut:
  // RL-style policies draw from their RNG inside it, and the stream must
  // advance identically either way.
  if (!(should_cut() && rate_.try_cut(sim_.now()))) {
    // Linear increase: one packet per RTT per RTT, i.e. slope 1/RTT^2
    // packets per second per second, applied over the update interval.
    const double slope =
        1.0 / (params_.nominal_rtt * params_.nominal_rtt);
    rate_.increase(slope * params_.update_interval);
  }
  rate_mean_.update(sim_.now(), rate_.rate());
  policy_timer_.schedule(params_.update_interval);
}

}  // namespace rlacast::baselines
