#include "baselines/rate_receiver.hpp"

#include <algorithm>

namespace rlacast::baselines {

RateReceiver::RateReceiver(net::Network& network, net::NodeId node,
                           net::PortId port, net::GroupId group,
                           net::NodeId sender_node, net::PortId sender_port,
                           int id, RateReceiverParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      group_(group),
      sender_node_(sender_node),
      sender_port_(sender_port),
      id_(id),
      params_(params),
      report_timer_(sim_, [this] { emit_report(); }),
      loss_(params.loss_ewma_gain) {
  network_.attach(node_, port_, this);
  network_.subscribe(group_, node_, this);
}

void RateReceiver::start_at(sim::SimTime when) {
  sim_.at(when, [this] { emit_report(); });
}

void RateReceiver::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  ++received_;
  ++period_received_;
  highest_seen_ = std::max(highest_seen_, p.seq);
}

void RateReceiver::emit_report() {
  // Expected-packets estimate over the period from the sequence progress;
  // anything missing counts as loss. Out-of-period stragglers make the
  // estimate slightly optimistic, which every threshold scheme shares.
  const std::int64_t expected = highest_seen_ - period_start_seq_;
  if (expected > 0) {
    const double loss = std::clamp(
        1.0 - static_cast<double>(period_received_) /
                  static_cast<double>(expected),
        0.0, 1.0);
    loss_.add(loss);
  }
  period_start_seq_ = highest_seen_;
  period_received_ = 0;

  net::Packet rep;
  rep.type = net::PacketType::kReport;
  rep.src = node_;
  rep.dst = sender_node_;
  rep.src_port = port_;
  rep.dst_port = sender_port_;
  rep.size_bytes = params_.report_bytes;
  rep.receiver_id = id_;
  rep.report_loss_rate = loss_.initialized() ? loss_.value() : 0.0;
  rep.report_received = period_received_;
  network_.inject(rep);

  report_timer_.schedule(params_.monitor_period);
}

}  // namespace rlacast::baselines
