#include "baselines/ltrc.hpp"

namespace rlacast::baselines {

bool LtrcSender::should_cut() {
  for (double loss : reported_loss())
    if (loss > loss_threshold_) return true;
  return false;
}

}  // namespace rlacast::baselines
