// MBFC — Monitor-Based Flow Control (Sano et al. 1997), as summarized in §1:
// a double-threshold scheme.  A receiver is "congested" when its monitored
// loss rate exceeds the loss-rate threshold; the sender halves its rate only
// when the fraction of congested receivers exceeds the loss-population
// threshold.  With the population threshold at its minimum this degenerates
// to tracing the slowest receiver, §1 notes — bench_baselines sweeps that.
#pragma once

#include "baselines/rate_sender.hpp"

namespace rlacast::baselines {

struct MbfcParams {
  RateSenderParams rate{};
  double loss_threshold = 0.02;
  /// Minimum fraction of receivers congested before the sender reacts.
  double population_threshold = 0.25;
};

class MbfcSender final : public RateBasedSender {
 public:
  MbfcSender(net::Network& network, net::NodeId node, net::PortId port,
             net::GroupId group, net::FlowId flow, MbfcParams params = {})
      : RateBasedSender(network, node, port, group, flow, params.rate),
        loss_threshold_(params.loss_threshold),
        population_threshold_(params.population_threshold) {}

  double congested_fraction() const;

 protected:
  bool should_cut() override;

 private:
  double loss_threshold_;
  double population_threshold_;
};

}  // namespace rlacast::baselines
