#include "baselines/mbfc.hpp"

namespace rlacast::baselines {

double MbfcSender::congested_fraction() const {
  if (reported_loss().empty()) return 0.0;
  std::size_t congested = 0;
  for (double loss : reported_loss())
    if (loss > loss_threshold_) ++congested;
  return static_cast<double>(congested) /
         static_cast<double>(reported_loss().size());
}

bool MbfcSender::should_cut() {
  return congested_fraction() > population_threshold_;
}

}  // namespace rlacast::baselines
