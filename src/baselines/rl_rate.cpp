#include "baselines/rl_rate.hpp"

namespace rlacast::baselines {

int RlRateSender::congested_count() const {
  int n = 0;
  for (double loss : reported_loss())
    if (loss > loss_floor_) ++n;
  return n;
}

bool RlRateSender::should_cut() {
  // One independent 1/n coin per congested receiver's standing report —
  // on average one obeyed signal per reporting round, the random-listening
  // invariant, regardless of how many receivers are congested.
  const int n = congested_count();
  if (n == 0) return false;
  const double pthresh = 1.0 / static_cast<double>(n);
  for (int i = 0; i < n; ++i)
    if (rng_.chance(pthresh)) return true;
  return false;
}

}  // namespace rlacast::baselines
