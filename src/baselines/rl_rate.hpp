// Random-listening rate controller — the paper's §6 future-work idea made
// concrete: "the idea of 'random listening' can be used in conjunction with
// other forms of congestion control mechanism, such as rate-based control."
//
// The sender keeps the LTRC/MBFC chassis (CBR source, periodic receiver
// loss reports, linear increase, dead-time-limited halving) but replaces
// the threshold *decision* with the RLA's randomized one: each congested
// receiver's report is obeyed with probability 1/n, where n is the number
// of receivers currently reporting congestion.  No topology-specific
// threshold tuning is needed — the property §1 faults LTRC and MBFC for
// lacking.
#pragma once

#include "baselines/rate_sender.hpp"
#include "sim/random.hpp"

namespace rlacast::baselines {

struct RlRateParams {
  RateSenderParams rate{};
  /// A receiver counts as congested when its reported EWMA loss rate
  /// exceeds this floor (loss measurement noise gate, not a tuned
  /// threshold: any small positive value works).
  double loss_floor = 0.005;
};

class RlRateSender final : public RateBasedSender {
 public:
  RlRateSender(net::Network& network, net::NodeId node, net::PortId port,
               net::GroupId group, net::FlowId flow, RlRateParams params = {})
      : RateBasedSender(network, node, port, group, flow, params.rate),
        loss_floor_(params.loss_floor),
        rng_(network.simulator().rng_stream("rl-rate-listen")) {}

  /// Receivers currently reporting loss above the floor.
  int congested_count() const;

 protected:
  bool should_cut() override;

 private:
  double loss_floor_;
  sim::Rng rng_;
};

}  // namespace rlacast::baselines
