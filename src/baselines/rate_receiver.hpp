// Receiver side of the rate-based multicast baselines (LTRC / MBFC).
//
// Subscribes to the group, counts data packets per monitor period, estimates
// the period's loss rate from sequence-number gaps, folds it into an EWMA,
// and unicasts a report packet to the sender every period — the feedback
// architecture shared by the threshold-based proposals §1 reviews.
#pragma once

#include "net/agent.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/ewma.hpp"

namespace rlacast::baselines {

struct RateReceiverParams {
  sim::SimTime monitor_period = 1.0;
  double loss_ewma_gain = 0.25;
  std::int32_t report_bytes = net::kAckPacketBytes;
};

class RateReceiver final : public net::Agent {
 public:
  RateReceiver(net::Network& network, net::NodeId node, net::PortId port,
               net::GroupId group, net::NodeId sender_node,
               net::PortId sender_port, int id,
               RateReceiverParams params = {});

  /// Starts the periodic reporting loop.
  void start_at(sim::SimTime when);

  void on_receive(const net::Packet& p) override;

  double loss_ewma() const { return loss_.value(); }
  std::uint64_t data_packets_received() const { return received_; }
  int id() const { return id_; }

 private:
  void emit_report();

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::NodeId sender_node_;
  net::PortId sender_port_;
  int id_;
  RateReceiverParams params_;

  sim::Timer report_timer_;  // next periodic loss report
  stats::Ewma loss_;
  std::uint64_t received_ = 0;
  std::int64_t period_received_ = 0;
  net::SeqNum highest_seen_ = -1;
  net::SeqNum period_start_seq_ = -1;
};

}  // namespace rlacast::baselines
