// LTRC — Loss-Tolerant Rate Controller (Montgomery 1997), as summarized in
// §1 of the paper: the sender halves its rate when the reported EWMA loss
// rate from *some* receiver exceeds a threshold, with a refractory period
// after each reduction.  §1's criticism — that no universal threshold exists
// across topologies — is what bench_baselines demonstrates.
#pragma once

#include "baselines/rate_sender.hpp"

namespace rlacast::baselines {

struct LtrcParams {
  RateSenderParams rate{};
  /// Loss-rate threshold above which a receiver's report signals congestion.
  double loss_threshold = 0.02;
};

class LtrcSender final : public RateBasedSender {
 public:
  LtrcSender(net::Network& network, net::NodeId node, net::PortId port,
             net::GroupId group, net::FlowId flow, LtrcParams params = {})
      : RateBasedSender(network, node, port, group, flow, params.rate),
        loss_threshold_(params.loss_threshold) {}

 protected:
  bool should_cut() override;

 private:
  double loss_threshold_;
};

}  // namespace rlacast::baselines
