// Common machinery of the rate-based multicast baselines: a CBR multicast
// source whose rate is adjusted by a pluggable congestion policy fed with
// receiver loss reports.
//
// The shared AIMD frame (as §1 describes): with no congestion the rate rises
// linearly by roughly one packet per RTT (per RTT); upon a congestion
// decision the rate is halved, and further halvings are suppressed for a
// dead time.  The rate arithmetic itself — halving, dead-time refractory,
// clamping — is cc::AimdRate; subclasses implement the *decision*: LTRC's
// single loss-rate threshold, MBFC's loss-rate + loss-population double
// threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/aimd_rate.hpp"
#include "net/agent.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/flow_measurement.hpp"
#include "stats/time_weighted.hpp"

namespace rlacast::baselines {

struct RateSenderParams {
  double initial_rate_pps = 10.0;
  double min_rate_pps = 0.5;
  double max_rate_pps = 1e6;
  /// How often the policy is evaluated and the linear increase applied.
  sim::SimTime update_interval = 1.0;
  /// RTT estimate for the "one packet per RTT" linear increase slope.
  sim::SimTime nominal_rtt = 0.25;
  /// Minimum time between two rate halvings.
  sim::SimTime dead_time = 2.0;
  std::int32_t packet_bytes = net::kDataPacketBytes;
};

class RateBasedSender : public net::Agent {
 public:
  RateBasedSender(net::Network& network, net::NodeId node, net::PortId port,
                  net::GroupId group, net::FlowId flow,
                  RateSenderParams params);

  /// Registers a receiver (index must match the RateReceiver's id).
  int add_receiver();

  void start_at(sim::SimTime when);

  void on_receive(const net::Packet& p) override;

  double rate_pps() const { return rate_.rate(); }
  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t rate_cuts() const { return rate_.cuts(); }
  const stats::TimeWeightedMean& rate_mean() const { return rate_mean_; }
  stats::TimeWeightedMean& rate_mean() { return rate_mean_; }

 protected:
  /// Policy hook: given fresh reports, should the rate be halved now?
  /// Called on every policy tick (update_interval).
  virtual bool should_cut() = 0;

  /// Latest loss-rate report per receiver (EWMA computed receiver-side).
  const std::vector<double>& reported_loss() const { return reported_loss_; }
  std::size_t receiver_count() const { return reported_loss_.size(); }
  sim::Simulator& simulator() { return sim_; }
  const RateSenderParams& params() const { return params_; }

 private:
  void send_next();
  void policy_tick();

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::GroupId group_;
  net::FlowId flow_;
  RateSenderParams params_;

  std::vector<double> reported_loss_;
  cc::AimdRate rate_;
  sim::Timer send_timer_;    // next CBR departure (paced at 1/rate)
  sim::Timer policy_timer_;  // next policy evaluation (update_interval)
  net::SeqNum next_seq_ = 0;
  std::uint64_t sent_ = 0;
  bool started_ = false;
  stats::TimeWeightedMean rate_mean_;
};

}  // namespace rlacast::baselines
