#include "workload/web_source.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace rlacast::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586;

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

WebFlowSource::WebFlowSource(net::Network& network, net::NodeId src_node,
                             net::NodeId dst_node, net::PortId src_port_base,
                             net::PortId dst_port_base, net::FlowId flow_base,
                             const std::string& name, WebConfig config)
    : network_(network),
      sim_(network.simulator()),
      src_node_(src_node),
      dst_node_(dst_node),
      src_port_base_(src_port_base),
      dst_port_base_(dst_port_base),
      flow_base_(flow_base),
      name_(name),
      config_(config),
      rng_(sim_.rng_stream(name)),
      timer_(sim_, [this] { start_fetch(); }) {}

void WebFlowSource::start_at(sim::SimTime when) {
  sim_.at(when, [this] { think(); });
}

void WebFlowSource::think() {
  thinking_ = true;
  limited_mark_ = true;
  timer_.schedule(rng_.exponential(config_.mean_think));
}

std::int64_t WebFlowSource::draw_size() {
  double size = 0.0;
  switch (config_.size_dist) {
    case WebConfig::SizeDist::kPareto: {
      // Inverse transform: X = scale * U^(-1/shape). One draw per flow.
      const double u = std::max(rng_.uniform(), 1e-12);
      size = config_.pareto_scale * std::pow(u, -1.0 / config_.pareto_shape);
      break;
    }
    case WebConfig::SizeDist::kLognormal: {
      // Box-Muller: exactly two draws per flow, always consumed (draw-count
      // stability is part of the determinism contract).
      const double u1 = std::max(rng_.uniform(), 1e-12);
      const double u2 = rng_.uniform();
      const double z =
          std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
      size = std::exp(config_.lognormal_mu + config_.lognormal_sigma * z);
      break;
    }
  }
  const auto pkts = static_cast<std::int64_t>(std::ceil(size));
  return std::clamp<std::int64_t>(pkts, 1, config_.max_flow_packets);
}

void WebFlowSource::start_fetch() {
  thinking_ = false;
  const std::int64_t size = draw_size();
  const int k = flows_started_++;
  fingerprint_ = fnv1a_mix(fingerprint_, static_cast<std::uint64_t>(size));
  fingerprint_ = fnv1a_mix(fingerprint_, double_bits(sim_.now()));

  const auto src_port = static_cast<net::PortId>(src_port_base_ + k);
  const auto dst_port = static_cast<net::PortId>(dst_port_base_ + k);
  const auto flow = static_cast<net::FlowId>(flow_base_ + k);

  receivers_.push_back(std::make_unique<tcp::TcpReceiver>(
      network_, dst_node_, dst_port, config_.tcp.ack_bytes,
      config_.tcp.max_send_overhead));
  tcp::TcpParams params = config_.tcp;
  params.flow_packets = size;
  auto sender = std::make_unique<tcp::TcpSender>(
      network_, src_node_, src_port, dst_node_, dst_port, flow, params);
  // Per-fetch measurement starts at creation (there is no shared warmup
  // boundary for flows born mid-run; callers snapshot delivered_total() at
  // their own warmup instead).
  sender->measurement().begin_measurement(sim_.now());
  sender->set_on_complete([this] {
    ++flows_completed_;
    think();
  });
  sender->start_at(sim_.now());
  senders_.push_back(std::move(sender));
}

std::int64_t WebFlowSource::delivered_total() const {
  std::int64_t total = 0;
  for (const auto& s : senders_) total += s->measurement().total_acked();
  return total;
}

bool WebFlowSource::app_limited() const {
  if (thinking_ || senders_.empty()) return true;
  return senders_.back()->app_limited();
}

bool WebFlowSource::poll_app_limited() {
  const bool now = app_limited();
  const bool limited = limited_mark_ || now;
  limited_mark_ = now;
  return limited;
}

}  // namespace rlacast::workload
