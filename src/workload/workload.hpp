// src/workload/ — deterministic traffic generation (ISSUE 6 tentpole).
//
// The paper's experiments run infinite FTP sources: every TCP always has
// data, so the fairness bands are measured under the easiest possible
// workload.  This layer adds the traffic mixes real networks carry —
// heavy-tailed web flows and on/off constant/variable-bit-rate streams —
// so the benches can ask whether RLA's bounded-fairness result survives
// senders that start, stop, and think.
//
// Three pieces:
//   * WebFlowSource (web_source.hpp) — a "user" that alternates
//     exponential think times with finite TCP transfers whose sizes are
//     Pareto or lognormal (the heavy-tailed web-size literature);
//   * OnOffSource (onoff_source.hpp) — unreliable CBR/VBR datagram
//     cross-traffic gated by exponential on/off periods;
//   * StartScheduleConfig (here) — how competing senders' start times are
//     laid out: the historical uniform(0,1) jitter, an even stagger, or a
//     wide randomized window.
//
// Determinism contract (the subsystem's reason to exist as a layer): every
// random decision draws from a named per-source sim::Rng stream
// ("workload-web-<i>", "workload-onoff-<i>", "start-jitter"), so a run is
// bit-identical across --jobs settings and replayable through src/replay/.
// TrafficKind::kFtp is the do-nothing default: no streams, no timers, no
// objects — the four historical figure benches stay byte-identical.
#pragma once

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "workload/onoff_source.hpp"
#include "workload/web_source.hpp"

namespace rlacast::workload {

/// Which background-traffic mix a topo builder should instantiate.
enum class TrafficKind {
  kFtp,    // historical infinite FTP senders (default, byte-identical)
  kWeb,    // WebFlowSource per leaf: think / transfer / think ...
  kOnOff   // infinite FTP + OnOffSource datagram cross-traffic per leaf
};

/// Start-time layout for the competing senders of one run.
struct StartScheduleConfig {
  enum class Kind {
    kJitter,      // historical: uniform(0, 1) per sender (byte-identical)
    kStaggered,   // i * spacing, plus uniform(0, window) jitter
    kRandomized   // uniform(0, window): wide decorrelated starts
  };
  Kind kind = Kind::kJitter;
  sim::SimTime spacing = 0.25;  // kStaggered: gap between consecutive flows
  sim::SimTime window = 1.0;    // jitter width (kStaggered/kRandomized)
};

/// Start time for the `index`-th sender. Draws exactly one uniform from
/// `rng` for every kind (same draw count => swapping schedules does not
/// shift later streams derived from the same Rng).
sim::SimTime start_time(const StartScheduleConfig& cfg, int index,
                        sim::Rng& rng);

/// The complete workload description a topo builder consumes.
struct TrafficSpec {
  TrafficKind kind = TrafficKind::kFtp;
  WebConfig web{};
  OnOffConfig onoff{};
  StartScheduleConfig schedule{};
};

}  // namespace rlacast::workload
