// OnOffSource: unreliable CBR/VBR datagram cross-traffic, gated by
// exponential on/off periods (the classic interrupted-Poisson shape).
//
// During an ON period the source emits fixed-size data packets at
// `rate_pps` — evenly spaced for CBR, or with exponential inter-packet
// gaps of the same mean for VBR (a Poisson packet process, the bursty
// variant).  OFF periods are silent.  There is no congestion control and
// no retransmission: this is the inelastic traffic the paper's TCP and RLA
// flows must survive next to, not compete with politely.
//
// All randomness (period lengths, VBR gaps) comes from the source's named
// Rng stream, so the emission schedule is bit-identical across --jobs and
// journals cleanly through src/replay/.  PacketSink counts arrivals so
// benches can report the cross-traffic's delivered rate.
#pragma once

#include <cstdint>
#include <string>

#include "net/agent.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rlacast::workload {

struct OnOffConfig {
  double rate_pps = 50.0;        // emission rate while ON
  sim::SimTime mean_on = 1.0;    // exponential mean ON duration, s
  sim::SimTime mean_off = 1.0;   // exponential mean OFF duration, s
  bool vbr = false;              // false: CBR spacing; true: exponential gaps
  std::int32_t packet_bytes = net::kDataPacketBytes;
};

/// Terminal counter for datagram traffic (no ACKs, no feedback).
class PacketSink final : public net::Agent {
 public:
  PacketSink(net::Network& network, net::NodeId node, net::PortId port);
  void on_receive(const net::Packet& p) override;
  std::int64_t packets_received() const { return received_; }

 private:
  std::int64_t received_ = 0;
};

class OnOffSource {
 public:
  /// Emits flow `flow` from (`node`, `port`) towards (`dst_node`,
  /// `dst_port`); `name` keys the Rng stream (e.g. "workload-onoff-5").
  OnOffSource(net::Network& network, net::NodeId node, net::PortId port,
              net::NodeId dst_node, net::PortId dst_port, net::FlowId flow,
              const std::string& name, OnOffConfig config);

  /// First ON period begins at `when`.
  void start_at(sim::SimTime when);

  std::int64_t packets_sent() const { return sent_; }
  bool on() const { return on_; }

 private:
  void begin_on();
  void begin_off();
  void emit();

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::NodeId dst_node_;
  net::PortId dst_port_;
  net::FlowId flow_;
  OnOffConfig config_;
  sim::Rng rng_;
  sim::Timer gate_timer_;  // flips ON <-> OFF
  sim::Timer send_timer_;  // next packet within an ON period
  bool on_ = false;
  std::int64_t sent_ = 0;
  net::SeqNum next_seq_ = 0;
};

}  // namespace rlacast::workload
