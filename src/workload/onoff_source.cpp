#include "workload/onoff_source.hpp"

namespace rlacast::workload {

PacketSink::PacketSink(net::Network& network, net::NodeId node,
                       net::PortId port) {
  network.attach(node, port, this);
}

void PacketSink::on_receive(const net::Packet& p) {
  if (p.type == net::PacketType::kData) ++received_;
}

OnOffSource::OnOffSource(net::Network& network, net::NodeId node,
                         net::PortId port, net::NodeId dst_node,
                         net::PortId dst_port, net::FlowId flow,
                         const std::string& name, OnOffConfig config)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      dst_node_(dst_node),
      dst_port_(dst_port),
      flow_(flow),
      config_(config),
      rng_(sim_.rng_stream(name)),
      gate_timer_(sim_, [this] {
        if (on_)
          begin_off();
        else
          begin_on();
      }),
      send_timer_(sim_, [this] { emit(); }) {}

void OnOffSource::start_at(sim::SimTime when) {
  sim_.at(when, [this] { begin_on(); });
}

void OnOffSource::begin_on() {
  on_ = true;
  gate_timer_.schedule(rng_.exponential(config_.mean_on));
  emit();
}

void OnOffSource::begin_off() {
  on_ = false;
  send_timer_.cancel();
  gate_timer_.schedule(rng_.exponential(config_.mean_off));
}

void OnOffSource::emit() {
  if (!on_ || config_.rate_pps <= 0.0) return;
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.dst = dst_node_;
  p.src_port = port_;
  p.dst_port = dst_port_;
  p.size_bytes = config_.packet_bytes;
  p.seq = next_seq_++;
  network_.inject(p);
  ++sent_;
  const double mean_gap = 1.0 / config_.rate_pps;
  // CBR: even spacing. VBR: exponential gaps with the same mean (Poisson
  // while ON) — one extra draw per packet, cleanly journaled.
  send_timer_.schedule(config_.vbr ? rng_.exponential(mean_gap) : mean_gap);
}

}  // namespace rlacast::workload
