#include "workload/workload.hpp"

namespace rlacast::workload {

sim::SimTime start_time(const StartScheduleConfig& cfg, int index,
                        sim::Rng& rng) {
  switch (cfg.kind) {
    case StartScheduleConfig::Kind::kJitter:
      // The historical topo-builder draw, byte-for-byte: uniform(0, 1).
      return rng.uniform(0.0, 1.0);
    case StartScheduleConfig::Kind::kStaggered:
      return static_cast<double>(index) * cfg.spacing +
             rng.uniform(0.0, cfg.window);
    case StartScheduleConfig::Kind::kRandomized:
      return rng.uniform(0.0, cfg.window);
  }
  return 0.0;
}

}  // namespace rlacast::workload
