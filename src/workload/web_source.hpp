// WebFlowSource: one simulated web "user" — think, fetch, think, fetch.
//
// The generator alternates exponential think times with finite TCP
// transfers (tcp::TcpSender with flow_packets > 0) whose sizes come from a
// heavy-tailed distribution: Pareto (the classic self-similar-web result)
// or lognormal, both synthesized from the source's own named Rng stream by
// inverse transform / Box–Muller so the draw count per flow is fixed
// (1 size draw + 1 think draw for Pareto, 2 + 1 for lognormal) and the
// schedule is bit-identical across --jobs and replayable.
//
// Each fetch gets a FRESH (sender, receiver) pair on fresh ports: the
// Network has no detach, and TCP state (scoreboard, reassembly) is
// per-connection anyway.  Completed pairs are kept alive until the source
// dies — ~100 bytes + two idle Rng streams per finished flow, a fine price
// for never reusing sequence space.
//
// app_limited() is true between fetches (thinking) and while the active
// transfer's tail can no longer fill its window — stats::FairnessMonitor
// uses it to keep think-time windows out of the fairness evidence.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast::workload {

struct WebConfig {
  enum class SizeDist { kPareto, kLognormal };
  SizeDist size_dist = SizeDist::kPareto;
  /// Pareto(shape, scale): P[X > x] = (scale/x)^shape for x >= scale.
  /// shape in (1, 2) gives the heavy tail with finite mean the web-traffic
  /// literature measures; scale is the minimum transfer in packets.
  double pareto_shape = 1.3;
  double pareto_scale = 6.0;
  /// Lognormal(mu, sigma) of the size in packets (exp(mu) ~ median).
  double lognormal_mu = 2.5;
  double lognormal_sigma = 1.0;
  /// Mean of the exponential think time between transfers, seconds.
  sim::SimTime mean_think = 2.0;
  /// Hard tail clamp so one astronomical Pareto draw cannot turn a web run
  /// back into an infinite FTP run.
  std::int64_t max_flow_packets = 4000;
  /// Template for every per-fetch sender (variant, overhead, ECN, ...);
  /// flow_packets is overwritten per fetch.
  tcp::TcpParams tcp{};
};

class WebFlowSource {
 public:
  /// The user fetches from `src_node` to `dst_node`:`dst_port_base`+k, with
  /// packet flow ids `flow_base`+k; `name` keys the Rng stream (unique per
  /// source, e.g. "workload-web-3").  Port/flow blocks must not collide
  /// across sources — the topo builders space them 1000 apart.
  WebFlowSource(net::Network& network, net::NodeId src_node,
                net::NodeId dst_node, net::PortId src_port_base,
                net::PortId dst_port_base, net::FlowId flow_base,
                const std::string& name, WebConfig config);

  /// First think period begins at `when` (the transfer follows it).
  void start_at(sim::SimTime when);

  // --- telemetry --------------------------------------------------------
  /// Cumulative packets acknowledged across all fetches (finished + live).
  std::int64_t delivered_total() const;
  int flows_started() const { return flows_started_; }
  int flows_completed() const { return flows_completed_; }
  /// True while thinking, done, or the live transfer cannot fill its window.
  bool app_limited() const;
  /// Windowed variant for fairness probes: true if the source was
  /// application-limited at ANY point since the previous poll (think
  /// periods are usually shorter than a fairness window, so edge sampling
  /// alone would miss them and count half-idle windows as evidence).
  /// Clears the mark and carries the current state into the next interval.
  bool poll_app_limited();
  /// FNV-1a over the (size, start-time-bits) sequence: two runs produced
  /// the same flow schedule iff the fingerprints match — the workload
  /// determinism test compares this across --jobs settings.
  std::uint64_t schedule_fingerprint() const { return fingerprint_; }
  const std::vector<std::unique_ptr<tcp::TcpSender>>& senders() const {
    return senders_;
  }

 private:
  void think();
  void start_fetch();
  std::int64_t draw_size();

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId src_node_;
  net::NodeId dst_node_;
  net::PortId src_port_base_;
  net::PortId dst_port_base_;
  net::FlowId flow_base_;
  std::string name_;
  WebConfig config_;
  sim::Rng rng_;
  sim::Timer timer_;

  std::vector<std::unique_ptr<tcp::TcpSender>> senders_;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers_;
  int flows_started_ = 0;
  int flows_completed_ = 0;
  bool thinking_ = true;
  bool limited_mark_ = true;  // sticky "was limited since last poll"
  std::uint64_t fingerprint_ = 14695981039346656037ULL;  // FNV-1a basis
};

}  // namespace rlacast::workload
