// Watchdog: periodic invariant checker riding inside a simulation run.
//
// A Watchdog ticks at a fixed simulated period and evaluates registered
// checks — each a named predicate returning an empty string when healthy or
// a human-readable description of the violation.  Violations are recorded
// (with the simulated time they were observed) rather than thrown, so a run
// completes and the caller can report every invariant that broke.
//
// Two built-in facilities guard against the failure mode invariant checks
// cannot express from inside a wedged simulation:
//  * event-horizon progress — if the engine dispatches (almost) nothing
//    across several consecutive ticks while events are still pending, the
//    simulation is livelocked and a violation is recorded;
//  * wall-clock limit — set_wall_limit() arms a real-time budget checked at
//    every tick; exceeding it throws WatchdogTimeout out of the event loop,
//    giving the experiment runner a cooperative in-process timeout for runs
//    that are slow but still dispatching (the runner's detached-thread
//    timeout remains the backstop for truly wedged runs).
#pragma once

#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rlacast::sim {

/// Thrown from a watchdog tick when the wall-clock budget is exhausted.
class WatchdogTimeout : public std::runtime_error {
 public:
  explicit WatchdogTimeout(const std::string& what)
      : std::runtime_error(what) {}
};

class Watchdog {
 public:
  struct Violation {
    std::string check;    // name of the check that fired
    std::string detail;   // what the check reported
    SimTime at = 0.0;     // simulated time of observation
  };

  /// `period` is the simulated interval between ticks.
  Watchdog(Simulator& sim, SimTime period);

  /// Registers a named invariant.  `check` returns "" when healthy, else a
  /// description of the violation.  Checks run at every tick, in
  /// registration order.  A check that keeps failing is recorded once per
  /// distinct detail string (no flooding).
  void add_check(std::string name, std::function<std::string()> check);

  /// Arms a real-time budget for the run; exceeding it makes the next tick
  /// throw WatchdogTimeout.  0 disables (default).
  void set_wall_limit(double seconds);

  /// Number of consecutive no-progress ticks (engine dispatching <= 1 event
  /// per tick while events remain pending) tolerated before the built-in
  /// progress check records a livelock violation.  0 disables the check.
  void set_progress_grace(int ticks) { progress_grace_ = ticks; }

  /// Starts ticking.  Call once, after the scenario is wired and before the
  /// event loop runs; the watchdog re-arms itself while events remain.
  void start();

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  std::uint64_t ticks() const { return ticks_; }

  /// One-line rendering of all violations ("" when ok) for error reporting.
  std::string report() const;

 private:
  void tick();
  void record(const std::string& check, const std::string& detail);

  Simulator& sim_;
  SimTime period_;
  std::vector<std::pair<std::string, std::function<std::string()>>> checks_;
  std::vector<Violation> violations_;
  double wall_limit_ = 0.0;
  std::chrono::steady_clock::time_point wall_start_{};
  int progress_grace_ = 5;
  int stalled_ticks_ = 0;
  std::uint64_t last_dispatched_ = 0;
  std::uint64_t ticks_ = 0;
  bool started_ = false;
};

}  // namespace rlacast::sim
