#include "sim/watchdog.hpp"

#include <utility>

namespace rlacast::sim {

Watchdog::Watchdog(Simulator& sim, SimTime period)
    : sim_(sim), period_(period) {}

void Watchdog::add_check(std::string name,
                         std::function<std::string()> check) {
  checks_.emplace_back(std::move(name), std::move(check));
}

void Watchdog::set_wall_limit(double seconds) { wall_limit_ = seconds; }

void Watchdog::start() {
  started_ = true;
  wall_start_ = std::chrono::steady_clock::now();
  last_dispatched_ = sim_.scheduler().counters().dispatched;
  sim_.after(period_, [this] { tick(); });
}

void Watchdog::record(const std::string& check, const std::string& detail) {
  for (const Violation& v : violations_) {
    if (v.check == check && v.detail == detail) return;  // no flooding
  }
  violations_.push_back(Violation{check, detail, sim_.now()});
}

void Watchdog::tick() {
  ++ticks_;

  if (wall_limit_ > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start_)
            .count();
    if (elapsed > wall_limit_) {
      throw WatchdogTimeout("watchdog: wall-clock limit of " +
                            std::to_string(wall_limit_) +
                            " s exceeded at simulated t=" +
                            std::to_string(sim_.now()));
    }
  }

  for (const auto& [name, check] : checks_) {
    const std::string detail = check();
    if (!detail.empty()) record(name, detail);
  }

  // Event-horizon progress: the tick itself is one dispatch, so a wedged
  // engine shows a per-tick delta of exactly 1 while work stays pending.
  const std::uint64_t dispatched = sim_.scheduler().counters().dispatched;
  if (progress_grace_ > 0) {
    if (dispatched - last_dispatched_ <= 1 &&
        sim_.scheduler().pending() > 1) {
      if (++stalled_ticks_ >= progress_grace_) {
        record("event-progress",
               "no event progress for " + std::to_string(stalled_ticks_) +
                   " consecutive ticks with " +
                   std::to_string(sim_.scheduler().pending()) +
                   " events pending");
        stalled_ticks_ = 0;  // re-arm so a later stall is also caught
      }
    } else {
      stalled_ticks_ = 0;
    }
  }
  last_dispatched_ = dispatched;

  // Re-arm only while the simulation still has other work: a lone watchdog
  // must not keep an otherwise-finished run alive forever.
  if (sim_.scheduler().pending() > 0) {
    sim_.after(period_, [this] { tick(); });
  }
}

std::string Watchdog::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    if (!out.empty()) out += "; ";
    out += v.check + " @t=" + std::to_string(v.at) + ": " + v.detail;
  }
  return out;
}

}  // namespace rlacast::sim
