#include "sim/simulator.hpp"

// Simulator and Timer are header-only today; this translation unit anchors
// the library target and is the intended home for future heavier run-control
// features (checkpointing, event tracing).
namespace rlacast::sim {}
