#include "sim/simulator.hpp"

#include <cassert>

namespace rlacast::sim {

Simulator::~Simulator() {
  if (observer_ != nullptr) observer_->detach(&scheduler_);
}

void Simulator::set_observer(replay::RunObserver* observer) {
  observer_ = observer;
  scheduler_.set_observer(observer);
  if (observer != nullptr) observer->attach("scheduler", &scheduler_);
}

Rng Simulator::rng_stream(std::string_view component) {
#ifndef NDEBUG
  for (const std::string& seen : stream_labels_)
    assert(seen != component &&
           "duplicate RNG stream label within one run — every component "
           "must own a uniquely named stream");
  stream_labels_.emplace_back(component);
#endif
  if (observer_ != nullptr) {
    const std::uint32_t id = observer_->on_stream(component);
    return Rng(seeds_.seed_for(component), observer_, id);
  }
  return seeds_.stream(component);
}

}  // namespace rlacast::sim
