// Event scheduler: the heart of the discrete-event engine.
//
// A binary min-heap of (time, sequence, callback) entries.  The sequence
// number makes ordering of simultaneous events deterministic (FIFO within a
// timestamp), which in turn makes every simulation in this repository exactly
// reproducible for a given seed.
//
// Events can be cancelled via the EventId returned at scheduling time;
// cancelled events are dropped lazily when they reach the top of the heap.
// This is how retransmission timers are implemented without heap surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace rlacast::sim {

/// Identifier of a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Invalid/none event id. Scheduler never returns this value.
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute time `at`. `at` must be >= now().
  EventId schedule_at(SimTime at, Callback cb);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return live_events_ == 0; }

  /// Number of runnable events still pending.
  std::size_t pending() const { return live_events_; }

  /// Current simulation time: the timestamp of the last dispatched event.
  SimTime now() const { return now_; }

  /// Timestamp of the next runnable event; kNever if none.
  SimTime next_time();

  /// Dispatches the next event. Returns false if none remain.
  bool run_one();

  /// Dispatches events until the clock passes `until` or no events remain.
  /// Events at exactly `until` are dispatched. Leaves now() == until if the
  /// horizon was reached with events still pending beyond it.
  void run_until(SimTime until);

  /// Dispatches everything. Intended for tests with finite event chains.
  void run_all();

  /// Total number of events dispatched so far (for micro-benchmarks).
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    SimTime at;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pops cancelled entries off the heap top.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0.0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
  std::size_t live_events_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace rlacast::sim
