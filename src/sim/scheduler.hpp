// Event scheduler: the heart of the discrete-event engine.
//
// Storage is a generation-tagged slab: every scheduled event occupies a slot
// holding its callback in-line (see SmallCallback), and the EventId handed
// back at scheduling time packs (slot index, generation).  Cancellation is
// O(1) — bump the slot's generation, free the slot — with no hashing and no
// per-event container churn; the stale heap entry is skimmed lazily when it
// surfaces.  Scheduling a typical event (timer re-arm, link pipeline leg)
// performs zero heap allocations.
//
// Dispatch order is a binary min-heap of (time, sequence) keys.  The
// sequence number makes ordering of simultaneous events deterministic (FIFO
// within a timestamp), which in turn makes every simulation in this
// repository exactly reproducible for a given seed.  reschedule_at()
// retargets a pending event in place — the callback stays in its slot; only
// a fresh (time, sequence) key is pushed — which is what makes TCP-style
// "restart the rexmit timer on every ACK" churn cheap.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "stats/engine_counters.hpp"

namespace rlacast::sim {

/// Identifier of a scheduled event; usable to cancel it before it fires.
/// Packs (generation << 32) | (slot + 1): the +1 keeps 0 free as the
/// invalid id, and the generation makes ids single-use — a slot reused by a
/// later event yields a different id, so cancelling a stale handle is a
/// guaranteed no-op.
using EventId = std::uint64_t;

/// Invalid/none event id. Scheduler never returns this value.
inline constexpr EventId kInvalidEventId = 0;

class Scheduler : public replay::Snapshotable {
 public:
  using Callback = SmallCallback;

  /// Schedules `cb` to run at absolute time `at`. `at` must be >= now().
  EventId schedule_at(SimTime at, Callback cb);

  /// Retargets a pending event to fire at `at` instead, keeping its stored
  /// callback (no destroy/reconstruct, no slot churn).  Returns the event's
  /// new id; returns kInvalidEventId — scheduling nothing — when `id` is no
  /// longer live (already fired or cancelled), in which case the caller
  /// schedules afresh.
  EventId reschedule_at(EventId id, SimTime at);

  /// Cancels a pending event. Cancelling an already-fired or already-
  /// cancelled event is a harmless no-op.
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return live_events_ == 0; }

  /// Number of runnable events still pending.
  std::size_t pending() const { return live_events_; }

  /// Current simulation time: the timestamp of the last dispatched event.
  SimTime now() const { return now_; }

  /// Timestamp of the next runnable event; kNever if none.  Logically const:
  /// may lazily discard cancelled entries from the internal heap.
  SimTime next_time() const;

  /// Dispatches the next event. Returns false if none remain.
  bool run_one();

  /// Dispatches events until the clock passes `until` or no events remain.
  /// Events at exactly `until` are dispatched. Leaves now() == until if the
  /// horizon was reached with events still pending beyond it.
  void run_until(SimTime until);

  /// Dispatches everything. Intended for tests with finite event chains.
  void run_all();

  /// Total number of events dispatched so far (for micro-benchmarks).
  std::uint64_t dispatched() const { return counters_.dispatched; }

  /// Cumulative engine counters (schedule/cancel/dispatch volume, heap and
  /// slab high-water marks, callback heap fallbacks).
  const stats::EngineCounters& counters() const { return counters_; }

  /// Mutable counter access for engine-adjacent components that account
  /// through the scheduler's counter block (the links' fault-injection
  /// drop/duplicate totals live here, beside the queue-drop statistics
  /// they must stay distinguishable from).
  stats::EngineCounters& counters_mut() { return counters_; }

  /// Installs (or clears, with nullptr) the determinism observer: every
  /// dispatch is reported as (sequence number, event time) immediately
  /// before the callback runs, so draws made inside the callback follow
  /// their dispatch record in the journal.
  void set_observer(replay::RunObserver* observer) { observer_ = observer; }
  replay::RunObserver* observer() const { return observer_; }

  /// Full engine-state checkpoint: clock, live-event census, sequence
  /// cursor, and every EngineCounters field. Two runs agree here iff the
  /// scheduler went through bit-identical histories.
  replay::Snapshot snapshot_state() const override;

 private:
  /// Heap key + slab reference. 24 bytes, trivially copyable: sift-up and
  /// sift-down move no callbacks.
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;   // FIFO tie-break among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;   // stale when != slots_[slot].gen
  };

  /// One slab slot: the callback lives here; `gen` advances on every disarm
  /// (fire, cancel, or in-place retarget) so outstanding ids and heap
  /// entries referring to the old incarnation die.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoFree;  // free-list link while unarmed
  };

  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// True and decoded when `id` refers to a currently-armed event.
  bool decode_live(EventId id, std::uint32_t& slot) const;

  void heap_push(SimTime at, std::uint32_t slot, std::uint32_t gen);
  void heap_pop();

  /// Discards cancelled entries off the heap top. Mutates only caches
  /// (the heap), hence callable from const queries.
  void skim() const;

  /// Returns `slot` to the free list after bumping its generation.
  void release_slot(std::uint32_t slot);

  // The heap is storage for *keys*; stale entries are cache garbage skimmed
  // lazily, so const queries may shrink it.
  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_events_ = 0;
  stats::EngineCounters counters_;
  replay::RunObserver* observer_ = nullptr;
};

}  // namespace rlacast::sim
