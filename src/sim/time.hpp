// Simulation time base.
//
// Time is modelled as a double in seconds, following the convention of
// classic network simulators (ns-2).  All latencies in the reproduced paper
// (propagation delays of 5 ms / 100 ms, service times around 0.08 ms for a
// 1000-byte packet on a 100 Mbit/s link) are comfortably inside the exactly
// representable range of a double over simulations of a few thousand seconds.
#pragma once

namespace rlacast::sim {

/// Simulation timestamp / duration, in seconds.
using SimTime = double;

/// Sentinel meaning "never" for optional deadlines.
inline constexpr SimTime kNever = -1.0;

/// Convenience literals-ish helpers.
constexpr SimTime milliseconds(double ms) { return ms * 1e-3; }
constexpr SimTime microseconds(double us) { return us * 1e-6; }
constexpr SimTime seconds(double s) { return s; }

}  // namespace rlacast::sim
