#include "sim/random.hpp"

namespace rlacast::sim {
namespace {

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t SeedSequence::seed_for(std::string_view component) const {
  const std::uint64_t h = fnv1a(component, 0xcbf29ce484222325ULL ^ master_);
  return splitmix64(h);
}

}  // namespace rlacast::sim
