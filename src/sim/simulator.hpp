// Simulator: the top-level context object for a run.
//
// Owns the scheduler and the seed sequence.  Every component in the network
// substrate receives a Simulator& at construction; there is no global state,
// so tests can run many simulators side by side.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rlacast::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t master_seed = 1)
      : seeds_(master_seed) {}

  /// Detaches the scheduler from any installed observer — an observer (a
  /// replay Recorder taking its final checkpoint) routinely outlives the
  /// Simulator.
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return scheduler_.now(); }

  /// Schedules a callback `delay` seconds from now.
  EventId after(SimTime delay, Scheduler::Callback cb) {
    return scheduler_.schedule_at(now() + delay, std::move(cb));
  }

  /// Schedules a callback at an absolute time.
  EventId at(SimTime when, Scheduler::Callback cb) {
    return scheduler_.schedule_at(when, std::move(cb));
  }

  /// Retargets a pending event in place (see Scheduler::reschedule_at).
  EventId reschedule_at(EventId id, SimTime when) {
    return scheduler_.reschedule_at(id, when);
  }

  void cancel(EventId id) { scheduler_.cancel(id); }

  void run_until(SimTime until) { scheduler_.run_until(until); }
  void run_all() { scheduler_.run_all(); }

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  const SeedSequence& seeds() const { return seeds_; }

  /// Creates a named deterministic random stream.  Stream labels must be
  /// unique within a run (each component owns its randomness); a duplicate
  /// label trips an assert in debug builds — two streams with one label
  /// would be correlated AND would corrupt the per-stream draw cursors the
  /// replay journal keys on.
  Rng rng_stream(std::string_view component);

  /// Installs (or clears, with nullptr) the determinism observer for this
  /// run: the scheduler reports dispatches to it, every subsequently
  /// created RNG stream reports its draws, and the scheduler itself is
  /// attached for checkpoints under the id "scheduler".  Install before
  /// building the network — streams created earlier go unobserved.
  void set_observer(replay::RunObserver* observer);
  replay::RunObserver* observer() const { return observer_; }

 private:
  Scheduler scheduler_;
  SeedSequence seeds_;
  replay::RunObserver* observer_ = nullptr;
#ifndef NDEBUG
  std::vector<std::string> stream_labels_;  // duplicate-label audit
#endif
};

/// A restartable one-shot timer bound to a simulator, used for protocol
/// retransmission timers, delayed ACKs, monitor ticks, and rate pacing.
///
/// Re-arming an armed timer retargets the pending event in place through the
/// scheduler's handle API — the event's inline callback stays in its slab
/// slot, so the ACK-clocked "restart the rexmit timer on every ACK" pattern
/// performs zero heap allocations and no cancel+reschedule churn.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}

  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` seconds from now.
  void schedule(SimTime delay) { schedule_at(sim_.now() + delay); }

  /// (Re)arms the timer to fire at absolute time `when`.
  void schedule_at(SimTime when) {
    expiry_ = when;
    if (id_ != kInvalidEventId) {
      // Armed: retarget the pending event in place.
      id_ = sim_.reschedule_at(id_, when);
      if (id_ != kInvalidEventId) return;
    }
    auto fire = [this] {
      id_ = kInvalidEventId;
      on_fire_();
    };
    static_assert(SmallCallback::fits_inline<decltype(fire)>(),
                  "timer events must use the inline callback path");
    id_ = sim_.at(when, std::move(fire));
  }

  void cancel() {
    if (id_ != kInvalidEventId) {
      sim_.cancel(id_);
      id_ = kInvalidEventId;
    }
  }

  bool armed() const { return id_ != kInvalidEventId; }

  /// Absolute expiry time of the currently armed timer (meaningless if not
  /// armed).
  SimTime expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId id_ = kInvalidEventId;
  SimTime expiry_ = 0.0;
};

}  // namespace rlacast::sim
