// SmallCallback: the scheduler's inline callback storage.
//
// Every scheduled event used to carry a std::function<void()>, whose
// small-buffer optimization (16 bytes on libstdc++) is defeated by anything
// larger than two pointers — so the per-hop lambdas of the packet pipeline
// heap-allocated on every schedule.  SmallCallback reserves a fixed in-entry
// buffer large enough for the engine's real captures (a `this` pointer, a
// couple of references, or a whole std::function when a caller insists) and
// constructs the callable in place: scheduling a typical event touches no
// allocator at all.
//
// Callables that do not fit fall back to a single heap allocation (tracked
// by the scheduler's EngineCounters so regressions are visible); hot-path
// call sites static_assert fits_inline<>() so the fallback can never creep
// into the timer or link pipeline unnoticed.
//
// Move-only, like the packaged callables it stores.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rlacast::sim {

class SmallCallback {
 public:
  /// In-entry storage, sized for the engine's captures: Timer and Link
  /// events capture one pointer; scenario harnesses store a std::function
  /// (32 bytes) plus a little change.
  static constexpr std::size_t kInlineCapacity = 48;

  /// True when callables of type F are stored in the in-entry buffer
  /// (no heap allocation on schedule).
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  SmallCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { take(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the stored callable overflowed to the heap (counted by the
  /// scheduler as EngineCounters::callback_heap_fallbacks).
  bool on_heap() const { return ops_ != nullptr && ops_->heap; }

  /// Destroys the stored callable, returning to the empty state.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      /*heap=*/false};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      /*heap=*/true};

  void take(SmallCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace rlacast::sim
