#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rlacast::sim {

bool Scheduler::decode_live(EventId id, std::uint32_t& slot) const {
  if (id == kInvalidEventId) return false;
  const auto raw = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (raw == 0 || raw > slots_.size()) return false;
  slot = raw - 1;
  const Slot& s = slots_[slot];
  return s.gen == static_cast<std::uint32_t>(id >> 32) &&
         static_cast<bool>(s.cb);
}

void Scheduler::heap_push(SimTime at, std::uint32_t slot, std::uint32_t gen) {
  // Manual sift-up on the trivially-copyable key; cheaper than
  // std::push_heap's iterator machinery and allocation-free once the vector
  // has warmed up.
  heap_.push_back(HeapEntry{at, next_seq_++, slot, gen});
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    const HeapEntry& p = heap_[parent];
    const HeapEntry& c = heap_[i];
    if (p.at < c.at || (p.at == c.at && p.seq < c.seq)) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
  counters_.heap_hiwater = std::max(counters_.heap_hiwater, heap_.size());
}

void Scheduler::heap_pop() {
  assert(!heap_.empty());
  heap_[0] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t first = l;
    if (r < n && (heap_[r].at < heap_[l].at ||
                  (heap_[r].at == heap_[l].at && heap_[r].seq < heap_[l].seq)))
      first = r;
    if (heap_[i].at < heap_[first].at ||
        (heap_[i].at == heap_[first].at && heap_[i].seq < heap_[first].seq))
      break;
    std::swap(heap_[i], heap_[first]);
    i = first;
  }
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // kills outstanding ids and stale heap entries for this slot
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId Scheduler::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(cb && "scheduling an empty callback");
  std::uint32_t slot;
  if (free_head_ != kNoFree) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    counters_.slab_capacity = slots_.size();
  }
  Slot& s = slots_[slot];
  if (cb.on_heap()) ++counters_.callback_heap_fallbacks;
  s.cb = std::move(cb);
  heap_push(at, slot, s.gen);
  ++live_events_;
  ++counters_.scheduled;
  counters_.slab_live_hiwater =
      std::max(counters_.slab_live_hiwater, live_events_);
  return pack(slot, s.gen);
}

EventId Scheduler::reschedule_at(EventId id, SimTime at) {
  assert(at >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (!decode_live(id, slot)) return kInvalidEventId;
  // Retarget in place: the callback stays put; the generation bump orphans
  // the old heap entry (skimmed lazily) and a fresh key carries the new
  // (time, sequence) — so a rescheduled event orders exactly as if it had
  // been cancelled and rescheduled, without touching the callback or slab.
  Slot& s = slots_[slot];
  ++s.gen;
  heap_push(at, slot, s.gen);
  ++counters_.rescheduled;
  return pack(slot, s.gen);
}

void Scheduler::cancel(EventId id) {
  // Only a live event may be cancelled; anything else must be a no-op or
  // the live-event accounting would drift. The generation check makes that
  // exact: an id is live only while its slot still carries its generation.
  std::uint32_t slot;
  if (!decode_live(id, slot)) return;
  slots_[slot].cb.reset();
  release_slot(slot);
  --live_events_;
  ++counters_.cancelled;
  // Tidy: drop stale keys that already surfaced, and empty the heap outright
  // when nothing live remains — a fully-cancelled scheduler reports
  // empty()/next_time() == kNever without a dispatch attempt.
  if (live_events_ == 0)
    heap_.clear();
  else
    skim();
}

void Scheduler::skim() const {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if (slots_[top.slot].gen == top.gen) return;
    const_cast<Scheduler*>(this)->heap_pop();
  }
}

SimTime Scheduler::next_time() const {
  skim();
  return heap_.empty() ? kNever : heap_[0].at;
}

bool Scheduler::run_one() {
  skim();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  heap_pop();
  // Move the callback out and free the slot before invoking, so re-entrant
  // scheduling from the callback (which may reuse this very slot) is safe.
  Callback cb = std::move(slots_[top.slot].cb);  // leaves the slot empty
  release_slot(top.slot);
  --live_events_;
  now_ = top.at;
  ++counters_.dispatched;
  if (observer_ != nullptr) observer_->on_dispatch(counters_.dispatched, now_);
  cb();
  return true;
}

replay::Snapshot Scheduler::snapshot_state() const {
  replay::Snapshot s;
  s.put("now", now_);
  s.put("next_seq", next_seq_);
  s.put("live_events", live_events_);
  s.put("heap_size", heap_.size());
  s.put("scheduled", counters_.scheduled);
  s.put("cancelled", counters_.cancelled);
  s.put("rescheduled", counters_.rescheduled);
  s.put("dispatched", counters_.dispatched);
  s.put("callback_heap_fallbacks", counters_.callback_heap_fallbacks);
  s.put("heap_hiwater", counters_.heap_hiwater);
  s.put("slab_capacity", counters_.slab_capacity);
  s.put("slab_live_hiwater", counters_.slab_live_hiwater);
  s.put("fault_drops", counters_.fault_drops);
  s.put("fault_duplicates", counters_.fault_duplicates);
  return s;
}

void Scheduler::run_until(SimTime until) {
  while (true) {
    const SimTime t = next_time();
    if (t == kNever) return;
    if (t > until) {
      now_ = until;
      return;
    }
    run_one();
  }
}

void Scheduler::run_all() {
  while (run_one()) {
  }
}

}  // namespace rlacast::sim
