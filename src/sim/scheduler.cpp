#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace rlacast::sim {

EventId Scheduler::schedule_at(SimTime at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(cb)});
  pending_ids_.insert(id);
  ++live_events_;
  return id;
}

void Scheduler::cancel(EventId id) {
  // A cancellation is only meaningful while the event is still pending;
  // cancelling an already-fired (or already-cancelled) id must be a no-op or
  // the live-event accounting would drift.
  if (pending_ids_.erase(id) == 0) return;
  cancelled_.insert(id);
  --live_events_;
}

void Scheduler::skim() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime Scheduler::next_time() {
  skim();
  return heap_.empty() ? kNever : heap_.top().at;
}

bool Scheduler::run_one() {
  skim();
  if (heap_.empty()) return false;
  // Move the callback out before popping so re-entrant scheduling is safe.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_ids_.erase(entry.id);
  --live_events_;
  now_ = entry.at;
  ++dispatched_;
  entry.cb();
  return true;
}

void Scheduler::run_until(SimTime until) {
  while (true) {
    const SimTime t = next_time();
    if (t == kNever) return;
    if (t > until) {
      now_ = until;
      return;
    }
    run_one();
  }
}

void Scheduler::run_all() {
  while (run_one()) {
  }
}

}  // namespace rlacast::sim
