// Deterministic random-number streams.
//
// Every stochastic component (RED drop decisions, RLA listening coin flips,
// random sender overhead used to break phase effects, start-time jitter)
// draws from its own named stream.  Streams are derived from a single master
// seed, so (a) runs are exactly reproducible, and (b) changing the amount of
// randomness one component consumes does not perturb the others — essential
// when comparing drop-tail vs RED runs of the same scenario.
//
// Each stream also audits itself: draw_count() is a monotonic cursor over
// the distribution-level draws made so far, and when the owning Simulator
// carries a replay::RunObserver every draw is reported as (stream id, draw
// index) — the raw material of the run journal.  A helper like chance()
// that is implemented in terms of uniform() counts as ONE draw.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "replay/snapshot.hpp"

namespace rlacast::sim {

/// A single random stream. Thin wrapper over a 64-bit Mersenne twister with
/// the distributions this project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// An observed stream: every draw is reported to `observer` under
  /// `stream_id` (assigned by the observer at stream creation).
  Rng(std::uint64_t seed, replay::RunObserver* observer,
      std::uint32_t stream_id)
      : engine_(seed), observer_(observer), stream_id_(stream_id) {}

  /// Uniform double in [0, 1).
  double uniform() {
    note_draw();
    return unit_(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    note_draw();
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) {
    note_draw();
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Number of distribution-level draws made from this stream so far.
  /// Monotonic; equal across two runs iff the component consumed the same
  /// amount of randomness in both.
  std::uint64_t draw_count() const { return draws_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  void note_draw() {
    ++draws_;
    if (observer_ != nullptr) observer_->on_draw(stream_id_, draws_);
  }

  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::uint64_t draws_ = 0;
  replay::RunObserver* observer_ = nullptr;
  std::uint32_t stream_id_ = 0;
};

/// Derives per-component seeds from a master seed and a component name, via
/// FNV-1a hashing followed by splitmix64 finalization.  Deterministic across
/// platforms (no dependence on std::hash).
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master_seed) : master_(master_seed) {}

  std::uint64_t seed_for(std::string_view component) const;

  /// Convenience: construct a stream for a component.
  Rng stream(std::string_view component) const {
    return Rng(seed_for(component));
  }

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace rlacast::sim
