// Deterministic random-number streams.
//
// Every stochastic component (RED drop decisions, RLA listening coin flips,
// random sender overhead used to break phase effects, start-time jitter)
// draws from its own named stream.  Streams are derived from a single master
// seed, so (a) runs are exactly reproducible, and (b) changing the amount of
// randomness one component consumes does not perturb the others — essential
// when comparing drop-tail vs RED runs of the same scenario.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace rlacast::sim {

/// A single random stream. Thin wrapper over a 64-bit Mersenne twister with
/// the distributions this project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Derives per-component seeds from a master seed and a component name, via
/// FNV-1a hashing followed by splitmix64 finalization.  Deterministic across
/// platforms (no dependence on std::hash).
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master_seed) : master_(master_seed) {}

  std::uint64_t seed_for(std::string_view component) const;

  /// Convenience: construct a stream for a component.
  Rng stream(std::string_view component) const {
    return Rng(seed_for(component));
  }

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace rlacast::sim
