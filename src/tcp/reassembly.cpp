#include "tcp/reassembly.hpp"

#include <algorithm>

namespace rlacast::tcp {

void ReassemblyBuffer::start_at(net::SeqNum seq) {
  if (cum_ != 0 || !blocks_.empty()) return;  // already receiving: no-op
  cum_ = seq;
  highest_ = seq;
}

bool ReassemblyBuffer::add(net::SeqNum seq) {
  if (seq < cum_ || has(seq)) return false;  // duplicate

  highest_ = std::max(highest_, seq + 1);
  ++ooo_pkts_;

  // Insert [seq, seq+1) and merge with neighbours.
  net::SeqNum lo = seq, hi = seq + 1;
  // Predecessor block ending exactly at seq merges from the left.
  auto it = blocks_.upper_bound(seq);
  if (it != blocks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == seq) {
      lo = prev->first;
      blocks_.erase(prev);
    }
  }
  // Successor block starting exactly at seq+1 merges from the right.
  it = blocks_.find(hi);
  if (it != blocks_.end()) {
    hi = it->second;
    blocks_.erase(it);
  }
  blocks_[lo] = hi;

  // Advance the cumulative point over a block that now starts at it.
  auto front = blocks_.find(cum_);
  if (front != blocks_.end()) {
    ooo_pkts_ -= static_cast<std::size_t>(front->second - front->first);
    cum_ = front->second;
    blocks_.erase(front);
  }

  // Recency list for SACK generation: newest first, bounded.
  recent_.push_front(seq);
  if (recent_.size() > 16) recent_.pop_back();
  return true;
}

bool ReassemblyBuffer::has(net::SeqNum seq) const {
  if (seq < cum_) return true;
  auto it = blocks_.upper_bound(seq);
  if (it == blocks_.begin()) return false;
  return std::prev(it)->second > seq;
}

net::SackBlock ReassemblyBuffer::block_around(net::SeqNum seq) const {
  auto it = blocks_.upper_bound(seq);
  if (it == blocks_.begin()) return {seq, seq + 1};  // unreachable if received
  --it;
  return {it->first, it->second};
}

int ReassemblyBuffer::sack_blocks(net::SackBlock* blocks,
                                  int max_blocks) const {
  int n = 0;
  for (net::SeqNum seq : recent_) {
    if (seq < cum_) continue;  // swallowed by the cumulative ACK
    const net::SackBlock b = block_around(seq);
    bool dup = false;
    for (int i = 0; i < n; ++i)
      if (blocks[i] == b) {
        dup = true;
        break;
      }
    if (dup) continue;
    blocks[n++] = b;
    if (n == max_blocks) break;
  }
  return n;
}

}  // namespace rlacast::tcp
