// Moved to cc/scoreboard.hpp: the SACK scoreboard is shared by the TCP
// sender (one instance) and the RLA sender (one per receiver), so it lives
// in the congestion-control core. This alias keeps the historical tcp::
// spelling working for existing includes.
#pragma once

#include "cc/scoreboard.hpp"

namespace rlacast::tcp {

using Scoreboard = cc::Scoreboard;

}  // namespace rlacast::tcp
