// TCP SACK receiver: acknowledges every data packet with a cumulative ACK
// plus up to three SACK blocks (RFC 2018), echoing the sender timestamp for
// RTT measurement.  The receiving application is infinitely fast (the paper's
// assumption), so data is consumed immediately.
#pragma once

#include "net/agent.hpp"
#include "net/network.hpp"
#include "tcp/reassembly.hpp"

namespace rlacast::tcp {

class TcpReceiver final : public net::Agent {
 public:
  /// `max_ack_overhead` adds Uniform(0, max) processing time per ACK — the
  /// §3.1 phase-effect randomization on the feedback path (drop-tail runs).
  TcpReceiver(net::Network& network, net::NodeId node, net::PortId port,
              std::int32_t ack_bytes = net::kAckPacketBytes,
              sim::SimTime max_ack_overhead = 0.0);

  /// Delayed ACKs (RFC 1122-style, simplified): acknowledge every second
  /// in-order segment; out-of-order data, ECN marks, and gap-filling data
  /// are ACKed immediately. Off by default (the paper's receivers ACK every
  /// packet).
  void set_delayed_ack(bool enabled) { delayed_ack_ = enabled; }

  void on_receive(const net::Packet& p) override;

  const ReassemblyBuffer& buffer() const { return buf_; }
  std::uint64_t data_packets_received() const { return received_; }
  std::uint64_t duplicates_received() const { return duplicates_; }

 private:
  /// Emits an ACK reflecting current buffer state. `trigger_seq` / `ts` /
  /// `ece` echo the data packet that caused it (kNoSeq for timer ACKs).
  void send_ack(net::SeqNum trigger_seq, sim::SimTime ts, bool ece);

  net::Network& network_;
  net::NodeId node_;
  net::PortId port_;
  std::int32_t ack_bytes_;
  net::SendPacer ack_pacer_;
  ReassemblyBuffer buf_;
  bool delayed_ack_ = false;
  int unacked_in_order_ = 0;  // in-order segments since the last ACK
  sim::Timer delack_timer_;
  static constexpr sim::SimTime kDelAckTimeout = 0.2;
  // Return address learned from the data path (needed by timer-driven ACKs).
  net::NodeId last_data_src_ = net::kNoNode;
  net::PortId last_data_sport_ = 0;
  net::FlowId flow_ = -1;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace rlacast::tcp
