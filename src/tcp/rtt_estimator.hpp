// Moved to cc/rtt_estimator.hpp: the estimator (and the shared parameter
// defaults) now live in the congestion-control core, where TCP and RLA use
// the same instance type. These aliases keep the historical tcp:: spelling
// working for existing includes.
#pragma once

#include "cc/rtt_estimator.hpp"

namespace rlacast::tcp {

using RttEstimator = cc::RttEstimator;
using RttEstimatorParams = cc::RttEstimatorParams;

}  // namespace rlacast::tcp
