// Receiver-side reassembly and SACK generation (RFC 2018 semantics, with
// packet-granularity sequence numbers as used throughout this project).
//
// Tracks which sequence numbers have arrived, exposes the cumulative ACK
// (first missing seq), and produces up to kMaxSackBlocks SACK blocks above
// the cumulative point, most-recently-updated first — the ordering RFC 2018
// prescribes so that a lost ACK does not lose SACK information.
//
// Out-of-order data is stored as disjoint [lo, hi) intervals, so every
// operation is O(log blocks) regardless of how long a hole persists — a
// receiver stuck behind one missing packet (e.g. after the sender dropped it
// via the §4.3 slow-receiver option) must not degrade to linear scans.
#pragma once

#include <deque>
#include <map>

#include "net/packet.hpp"

namespace rlacast::tcp {

class ReassemblyBuffer {
 public:
  /// Records arrival of `seq`. Returns true if the packet was new
  /// (not a duplicate).
  bool add(net::SeqNum seq);

  /// Fast-forwards the cumulative point to `seq` (stream resumption for a
  /// receiver that joined an in-progress multicast session: everything
  /// below its first packet is not owed to it). Only valid while nothing
  /// has been received.
  void start_at(net::SeqNum seq);

  /// First sequence number not yet received; all seqs below have arrived.
  net::SeqNum cum_ack() const { return cum_; }

  /// True if `seq` has been received (cumulatively or out of order).
  bool has(net::SeqNum seq) const;

  /// Fills `blocks` (size >= max_blocks) with SACK blocks above the
  /// cumulative ACK, most recently updated first. Returns the count.
  int sack_blocks(net::SackBlock* blocks, int max_blocks) const;

  /// Highest received seq + 1 (0 if nothing yet).
  net::SeqNum highest() const { return highest_; }

  /// Out-of-order backlog in packets (diagnostics / buffer accounting).
  std::size_t ooo_count() const { return ooo_pkts_; }

  /// Number of disjoint out-of-order blocks currently held.
  std::size_t block_count() const { return blocks_.size(); }

 private:
  /// The maximal contiguous received block containing `seq`, which must be
  /// a received, above-cum sequence number.
  net::SackBlock block_around(net::SeqNum seq) const;

  net::SeqNum cum_ = 0;
  net::SeqNum highest_ = 0;
  std::map<net::SeqNum, net::SeqNum> blocks_;  // disjoint lo -> hi, all >= cum_
  std::size_t ooo_pkts_ = 0;
  std::deque<net::SeqNum> recent_;  // recently arrived seqs, newest first
};

}  // namespace rlacast::tcp
