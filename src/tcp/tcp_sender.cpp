#include "tcp/tcp_sender.hpp"

#include <string>

namespace rlacast::tcp {

namespace {

std::unique_ptr<cc::LossResponsePolicy> make_policy(TcpVariant variant) {
  switch (variant) {
    case TcpVariant::kSack:
      return std::make_unique<cc::TcpSackPolicy>();
    case TcpVariant::kReno:
      return std::make_unique<cc::TcpRenoPolicy>();
    case TcpVariant::kTahoe:
      return std::make_unique<cc::TcpTahoePolicy>();
  }
  return nullptr;
}

}  // namespace

TcpSender::TcpSender(net::Network& network, net::NodeId node, net::PortId port,
                     net::NodeId dst_node, net::PortId dst_port,
                     net::FlowId flow, TcpParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      dst_node_(dst_node),
      dst_port_(dst_port),
      flow_(flow),
      params_(params),
      pacer_(sim_, network,
             sim_.rng_stream("tcp-overhead-" + std::to_string(flow)),
             params.max_send_overhead),
      peer_(params.rtt),
      win_(cc::WindowParams{.initial_cwnd = params.initial_cwnd,
                            .initial_ssthresh = params.initial_ssthresh,
                            .max_cwnd = params.max_cwnd}),
      rto_(sim_, [this] { on_timeout(); }),
      policy_(make_policy(params.variant)) {
  network_.attach(node_, port_, this);
  meas_.note_cwnd(0.0, win_.cwnd());
  if (replay::RunObserver* obs = sim_.observer()) {
    const std::string id = "tcp-" + std::to_string(flow_);
    obs->attach(id + "/window", &win_);
    obs->attach(id + "/rtt", &peer_.rtt);
  }
}

TcpSender::~TcpSender() {
  if (replay::RunObserver* obs = sim_.observer()) {
    obs->detach(&win_);
    obs->detach(&peer_.rtt);
  }
}

void TcpSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    send_what_we_can();
  });
}

cc::SignalContext TcpSender::signal_ctx(bool from_ecn) const {
  cc::SignalContext ctx;
  ctx.now = sim_.now();
  ctx.srtt = peer_.rtt.srtt();
  ctx.from_ecn = from_ecn;
  return ctx;
}

void TcpSender::apply_cut(cc::CutAction action) {
  if (cc::apply_cut_action(win_, *policy_, action))
    meas_.note_cwnd(sim_.now(), win_.cwnd());
}

void TcpSender::grow_window() {
  win_.grow(1);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
}

void TcpSender::on_receive(const net::Packet& p) {
  if (p.type == net::PacketType::kAck) on_ack(p);
}

void TcpSender::on_ack(const net::Packet& ack) {
  // --- RTT sampling, Karn's rule: skip samples echoed off retransmissions.
  // The receiver echoes (in ack.seq) the data seq that triggered this ACK
  // and (in ack.ts_echo) that packet's send timestamp.
  if (ack.seq != net::kNoSeq && !peer_.sb.was_retransmitted(ack.seq) &&
      ack.ts_echo > 0.0) {
    const double sample = sim_.now() - ack.ts_echo;
    peer_.rtt.add_sample(sample);
    meas_.note_rtt(sim_.now(), sample);
  }

  // --- cumulative advance (common to all variants).
  const std::int64_t newly_acked = peer_.sb.advance(ack.ack);
  if (newly_acked > 0) {
    meas_.note_acked(newly_acked);
    peer_.rtt.reset_backoff();  // forward progress clears backoff (Karn)
  }

  // ECN: an echoed CE mark is a congestion signal, honoured at most once
  // per recovery episode (like a loss, but with nothing to retransmit).
  if (params_.ecn && ack.ece) {
    grouper_.refresh(peer_.sb.una());
    if (!grouper_.in_episode()) {
      grouper_.open_episode(peer_.sb.high());
      apply_cut(policy_->on_signal(signal_ctx(/*from_ecn=*/true)));
      meas_.note_congestion_signal();
      meas_.note_window_cut();
    }
  }

  switch (params_.variant) {
    case TcpVariant::kSack:
      on_ack_sack(ack, newly_acked);
      break;
    case TcpVariant::kReno:
    case TcpVariant::kTahoe:
      on_ack_reno(ack, newly_acked);
      break;
  }

  if (peer_.sb.outstanding() > 0)
    restart_rexmit_timer();
  else
    rto_.cancel();

  send_what_we_can();
}

void TcpSender::on_ack_sack(const net::Packet& ack,
                            std::int64_t newly_acked) {
  peer_.sb.apply_sack(ack.sack.data(), ack.n_sack);
  const int new_losses = peer_.sb.detect_losses(params_.dupthresh);

  // Recovery state machine: one halving per loss episode.
  grouper_.refresh(peer_.sb.una());
  if (new_losses > 0 && !grouper_.in_episode()) {
    grouper_.open_episode(peer_.sb.high());
    apply_cut(policy_->on_signal(signal_ctx(/*from_ecn=*/false)));
    meas_.note_congestion_signal();
    meas_.note_window_cut();
  }

  // Window growth (not during recovery, per ns-2 sack1).
  if (newly_acked > 0 && !grouper_.in_episode()) grow_window();
}

void TcpSender::on_ack_reno(const net::Packet& ack,
                            std::int64_t newly_acked) {
  (void)ack;  // Reno/Tahoe ignore the SACK blocks entirely
  if (newly_acked == 0) {
    if (peer_.sb.outstanding() == 0) return;  // stray ACK
    ++dupacks_;
    if (!grouper_.in_episode() && dupacks_ == params_.dupthresh) {
      // Fast retransmit.
      meas_.note_congestion_signal();
      meas_.note_window_cut();
      peer_.sb.on_retransmit(peer_.sb.una());
      send_packet(peer_.sb.una(), /*rexmit=*/true);
      const cc::CutAction action =
          policy_->on_signal(signal_ctx(/*from_ecn=*/false));
      if (action == cc::CutAction::kCollapse) {
        // Tahoe: no fast recovery — collapse and slow-start.
        apply_cut(action);
        dupacks_ = 0;
      } else {
        // Reno: halve and inflate by the dupacks already seen.
        grouper_.open_episode(peer_.sb.high());
        apply_cut(action);
        inflation_ = static_cast<double>(params_.dupthresh);
      }
    } else if (grouper_.in_episode()) {
      inflation_ += 1.0;  // every further dupack means a packet left the pipe
    }
    return;
  }

  // New cumulative ACK.
  dupacks_ = 0;
  if (grouper_.in_episode()) {
    grouper_.refresh(peer_.sb.una());
    if (!grouper_.in_episode()) {
      inflation_ = 0.0;  // full recovery: deflate
    } else {
      // Partial ACK (NewReno behaviour): the next hole is also gone;
      // retransmit it immediately and stay in recovery.
      peer_.sb.on_retransmit(peer_.sb.una());
      send_packet(peer_.sb.una(), /*rexmit=*/true);
      inflation_ = std::max(0.0, inflation_ - static_cast<double>(newly_acked));
      return;
    }
  }
  grow_window();
}

void TcpSender::send_what_we_can() {
  if (!started_) return;
  const auto cwnd = static_cast<std::int64_t>(win_.cwnd());
  if (params_.variant == TcpVariant::kSack) {
    while (true) {
      const net::SeqNum rexmit = peer_.sb.next_to_retransmit();
      if (rexmit != net::kNoSeq) {
        if (peer_.sb.pipe() >= cwnd) break;
        send_packet(rexmit, /*rexmit=*/true);
        continue;
      }
      // New data: bounded by both the window from una and the pipe.
      if (peer_.sb.high() >= peer_.sb.una() + cwnd) break;
      if (peer_.sb.pipe() >= cwnd) break;
      send_packet(peer_.sb.high(), /*rexmit=*/false);
    }
    return;
  }
  // Reno/Tahoe: plain window from una, inflated during fast recovery.
  const auto wnd = static_cast<std::int64_t>(win_.cwnd() + inflation_);
  while (peer_.sb.high() < peer_.sb.una() + wnd)
    send_packet(peer_.sb.high(), /*rexmit=*/false);
}

void TcpSender::send_packet(net::SeqNum seq, bool rexmit) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.dst = dst_node_;
  p.src_port = port_;
  p.dst_port = dst_port_;
  p.size_bytes = params_.packet_bytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.is_rexmit = rexmit;
  p.ect = params_.ecn;

  if (rexmit)
    peer_.sb.on_retransmit(seq);
  else
    peer_.sb.on_send(seq);

  pacer_.send(p);
  rto_.ensure_armed(peer_.rtt.rto());
}

void TcpSender::restart_rexmit_timer() { rto_.restart(peer_.rtt.rto()); }

void TcpSender::on_timeout() {
  if (peer_.sb.outstanding() == 0) return;
  meas_.note_timeout();
  meas_.note_congestion_signal();
  meas_.note_window_cut();
  apply_cut(policy_->on_timeout(/*repeated_stall=*/true));
  grouper_.close_episode();
  dupacks_ = 0;
  inflation_ = 0.0;
  peer_.rtt.back_off();
  peer_.sb.mark_all_lost();
  if (params_.variant != TcpVariant::kSack) {
    // Go-back-N restart: retransmit the first outstanding packet now; the
    // rest follow as the window re-opens.
    send_packet(peer_.sb.una(), /*rexmit=*/true);
  }
  restart_rexmit_timer();
  send_what_we_can();
}

}  // namespace rlacast::tcp
