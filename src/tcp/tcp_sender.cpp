#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace rlacast::tcp {

TcpSender::TcpSender(net::Network& network, net::NodeId node, net::PortId port,
                     net::NodeId dst_node, net::PortId dst_port,
                     net::FlowId flow, TcpParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      dst_node_(dst_node),
      dst_port_(dst_port),
      flow_(flow),
      params_(params),
      pacer_(sim_, network,
             sim_.rng_stream("tcp-overhead-" + std::to_string(flow)),
             params.max_send_overhead),
      rtt_(params.rtt),
      rexmit_timer_(sim_, [this] { on_timeout(); }),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh) {
  network_.attach(node_, port_, this);
  meas_.note_cwnd(0.0, cwnd_);
}

void TcpSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    meas_.note_cwnd(sim_.now(), cwnd_);
    send_what_we_can();
  });
}

void TcpSender::set_cwnd(double w) {
  cwnd_ = std::clamp(w, 1.0, params_.max_cwnd);
  meas_.note_cwnd(sim_.now(), cwnd_);
}

void TcpSender::grow_window() {
  if (cwnd_ < ssthresh_)
    set_cwnd(cwnd_ + 1.0);  // slow start
  else
    set_cwnd(cwnd_ + 1.0 / std::floor(cwnd_));  // congestion avoidance
}

void TcpSender::on_receive(const net::Packet& p) {
  if (p.type == net::PacketType::kAck) on_ack(p);
}

void TcpSender::on_ack(const net::Packet& ack) {
  // --- RTT sampling, Karn's rule: skip samples echoed off retransmissions.
  // The receiver echoes (in ack.seq) the data seq that triggered this ACK
  // and (in ack.ts_echo) that packet's send timestamp.
  if (ack.seq != net::kNoSeq && !sb_.was_retransmitted(ack.seq) &&
      ack.ts_echo > 0.0) {
    const double sample = sim_.now() - ack.ts_echo;
    rtt_.add_sample(sample);
    meas_.note_rtt(sim_.now(), sample);
  }

  // --- cumulative advance (common to all variants).
  const std::int64_t newly_acked = sb_.advance(ack.ack);
  if (newly_acked > 0) {
    meas_.note_acked(newly_acked);
    rtt_.reset_backoff();  // forward progress clears timeout backoff (Karn)
  }

  // ECN: an echoed CE mark is a congestion signal, honoured at most once
  // per recovery episode (like a loss, but with nothing to retransmit).
  if (params_.ecn && ack.ece) {
    if (in_recovery_ && sb_.una() >= recovery_point_) in_recovery_ = false;
    if (!in_recovery_) {
      in_recovery_ = true;
      recovery_point_ = sb_.high();
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      set_cwnd(ssthresh_);
      meas_.note_congestion_signal();
      meas_.note_window_cut();
    }
  }

  switch (params_.variant) {
    case TcpVariant::kSack:
      on_ack_sack(ack, newly_acked);
      break;
    case TcpVariant::kReno:
    case TcpVariant::kTahoe:
      on_ack_reno(ack, newly_acked);
      break;
  }

  if (sb_.outstanding() > 0)
    restart_rexmit_timer();
  else
    rexmit_timer_.cancel();

  send_what_we_can();
}

void TcpSender::on_ack_sack(const net::Packet& ack,
                            std::int64_t newly_acked) {
  sb_.apply_sack(ack.sack.data(), ack.n_sack);
  const int new_losses = sb_.detect_losses(params_.dupthresh);

  // Recovery state machine: one halving per loss episode.
  if (in_recovery_ && sb_.una() >= recovery_point_) in_recovery_ = false;
  if (new_losses > 0 && !in_recovery_) {
    in_recovery_ = true;
    recovery_point_ = sb_.high();
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    set_cwnd(ssthresh_);
    meas_.note_congestion_signal();
    meas_.note_window_cut();
  }

  // Window growth (not during recovery, per ns-2 sack1).
  if (newly_acked > 0 && !in_recovery_) grow_window();
}

void TcpSender::on_ack_reno(const net::Packet& ack,
                            std::int64_t newly_acked) {
  (void)ack;  // Reno/Tahoe ignore the SACK blocks entirely
  if (newly_acked == 0) {
    if (sb_.outstanding() == 0) return;  // stray ACK
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == params_.dupthresh) {
      // Fast retransmit.
      meas_.note_congestion_signal();
      meas_.note_window_cut();
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      sb_.on_retransmit(sb_.una());
      send_packet(sb_.una(), /*rexmit=*/true);
      if (params_.variant == TcpVariant::kTahoe) {
        // Tahoe: no fast recovery — collapse and slow-start.
        set_cwnd(1.0);
        dupacks_ = 0;
      } else {
        // Reno: halve and inflate by the dupacks already seen.
        in_recovery_ = true;
        recovery_point_ = sb_.high();
        set_cwnd(ssthresh_);
        inflation_ = static_cast<double>(params_.dupthresh);
      }
    } else if (in_recovery_) {
      inflation_ += 1.0;  // every further dupack means a packet left the pipe
    }
    return;
  }

  // New cumulative ACK.
  dupacks_ = 0;
  if (in_recovery_) {
    if (sb_.una() >= recovery_point_) {
      in_recovery_ = false;  // full recovery: deflate
      inflation_ = 0.0;
    } else {
      // Partial ACK (NewReno behaviour): the next hole is also gone;
      // retransmit it immediately and stay in recovery.
      sb_.on_retransmit(sb_.una());
      send_packet(sb_.una(), /*rexmit=*/true);
      inflation_ = std::max(0.0, inflation_ - static_cast<double>(newly_acked));
      return;
    }
  }
  grow_window();
}

void TcpSender::send_what_we_can() {
  if (!started_) return;
  if (params_.variant == TcpVariant::kSack) {
    while (true) {
      const net::SeqNum rexmit = sb_.next_to_retransmit();
      if (rexmit != net::kNoSeq) {
        if (sb_.pipe() >= static_cast<std::int64_t>(cwnd_)) break;
        send_packet(rexmit, /*rexmit=*/true);
        continue;
      }
      // New data: bounded by both the window from una and the pipe.
      if (sb_.high() >= sb_.una() + static_cast<std::int64_t>(cwnd_)) break;
      if (sb_.pipe() >= static_cast<std::int64_t>(cwnd_)) break;
      send_packet(sb_.high(), /*rexmit=*/false);
    }
    return;
  }
  // Reno/Tahoe: plain window from una, inflated during fast recovery.
  const auto wnd = static_cast<std::int64_t>(cwnd_ + inflation_);
  while (sb_.high() < sb_.una() + wnd)
    send_packet(sb_.high(), /*rexmit=*/false);
}

void TcpSender::send_packet(net::SeqNum seq, bool rexmit) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.dst = dst_node_;
  p.src_port = port_;
  p.dst_port = dst_port_;
  p.size_bytes = params_.packet_bytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.is_rexmit = rexmit;
  p.ect = params_.ecn;

  if (rexmit)
    sb_.on_retransmit(seq);
  else
    sb_.on_send(seq);

  pacer_.send(p);
  if (!rexmit_timer_.armed()) restart_rexmit_timer();
}

void TcpSender::restart_rexmit_timer() { rexmit_timer_.schedule(rtt_.rto()); }

void TcpSender::on_timeout() {
  if (sb_.outstanding() == 0) return;
  meas_.note_timeout();
  meas_.note_congestion_signal();
  meas_.note_window_cut();
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  set_cwnd(1.0);
  in_recovery_ = false;
  dupacks_ = 0;
  inflation_ = 0.0;
  rtt_.back_off();
  sb_.mark_all_lost();
  if (params_.variant != TcpVariant::kSack) {
    // Go-back-N restart: retransmit the first outstanding packet now; the
    // rest follow as the window re-opens.
    send_packet(sb_.una(), /*rexmit=*/true);
  }
  restart_rexmit_timer();
  send_what_we_can();
}

}  // namespace rlacast::tcp
