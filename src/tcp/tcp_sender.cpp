#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace rlacast::tcp {

namespace {

std::unique_ptr<cc::LossResponsePolicy> make_policy(TcpVariant variant) {
  switch (variant) {
    case TcpVariant::kSack:
      return std::make_unique<cc::TcpSackPolicy>();
    case TcpVariant::kReno:
      return std::make_unique<cc::TcpRenoPolicy>();
    case TcpVariant::kTahoe:
      return std::make_unique<cc::TcpTahoePolicy>();
    case TcpVariant::kVegas:
      return std::make_unique<cc::DelayBasedPolicy>();
    case TcpVariant::kBbr:
      return std::make_unique<cc::BbrRatePolicy>();
  }
  return nullptr;
}

}  // namespace

TcpSender::TcpSender(net::Network& network, net::NodeId node, net::PortId port,
                     net::NodeId dst_node, net::PortId dst_port,
                     net::FlowId flow, TcpParams params)
    : network_(network),
      sim_(network.simulator()),
      node_(node),
      port_(port),
      dst_node_(dst_node),
      dst_port_(dst_port),
      flow_(flow),
      params_(params),
      pacer_(sim_, network,
             sim_.rng_stream("tcp-overhead-" + std::to_string(flow)),
             params.max_send_overhead),
      peer_(params.rtt),
      win_(cc::WindowParams{.initial_cwnd = params.initial_cwnd,
                            .initial_ssthresh = params.initial_ssthresh,
                            .max_cwnd = params.max_cwnd}),
      rto_(sim_, [this] { on_timeout(); }),
      policy_(make_policy(params.variant)),
      vegas_(params.vegas),
      bbr_(params.bbr),
      pace_timer_(sim_, [this] { pace_bbr(); }) {
  network_.attach(node_, port_, this);
  meas_.note_cwnd(0.0, win_.cwnd());
  if (replay::RunObserver* obs = sim_.observer()) {
    const std::string id = "tcp-" + std::to_string(flow_);
    obs->attach(id + "/window", &win_);
    obs->attach(id + "/rtt", &peer_.rtt);
  }
}

TcpSender::~TcpSender() {
  if (replay::RunObserver* obs = sim_.observer()) {
    obs->detach(&win_);
    obs->detach(&peer_.rtt);
  }
}

void TcpSender::start_at(sim::SimTime when) {
  sim_.at(when, [this] {
    started_ = true;
    meas_.note_cwnd(sim_.now(), win_.cwnd());
    send_what_we_can();
  });
}

cc::SignalContext TcpSender::signal_ctx(bool from_ecn) const {
  cc::SignalContext ctx;
  ctx.now = sim_.now();
  ctx.srtt = peer_.rtt.srtt();
  ctx.from_ecn = from_ecn;
  return ctx;
}

void TcpSender::apply_cut(cc::CutAction action) {
  if (cc::apply_cut_action(win_, *policy_, action))
    meas_.note_cwnd(sim_.now(), win_.cwnd());
}

void TcpSender::grow_window() {
  win_.grow(1);
  meas_.note_cwnd(sim_.now(), win_.cwnd());
}

void TcpSender::on_receive(const net::Packet& p) {
  if (p.type == net::PacketType::kAck) on_ack(p);
}

void TcpSender::on_ack(const net::Packet& ack) {
  if (done_) return;  // stray ACKs after a finite flow completed

  // --- RTT sampling, Karn's rule: skip samples echoed off retransmissions.
  // The receiver echoes (in ack.seq) the data seq that triggered this ACK
  // and (in ack.ts_echo) that packet's send timestamp.
  if (ack.seq != net::kNoSeq && !peer_.sb.was_retransmitted(ack.seq) &&
      ack.ts_echo > 0.0) {
    const double sample = sim_.now() - ack.ts_echo;
    peer_.rtt.add_sample(sample);
    meas_.note_rtt(sim_.now(), sample);
    if (params_.variant == TcpVariant::kVegas) on_rtt_sample_vegas(sample);
  }

  // --- cumulative advance (common to all variants).
  const std::int64_t newly_acked = peer_.sb.advance(ack.ack);
  if (newly_acked > 0) {
    meas_.note_acked(newly_acked);
    peer_.rtt.reset_backoff();  // forward progress clears backoff (Karn)
  }
  if (params_.variant == TcpVariant::kBbr)
    on_delivery_sample_bbr(ack, newly_acked);
  maybe_complete();
  if (done_) return;

  // ECN: an echoed CE mark is a congestion signal, honoured at most once
  // per recovery episode (like a loss, but with nothing to retransmit).
  if (params_.ecn && ack.ece) {
    grouper_.refresh(peer_.sb.una());
    if (!grouper_.in_episode()) {
      grouper_.open_episode(peer_.sb.high());
      apply_cut(policy_->on_signal(signal_ctx(/*from_ecn=*/true)));
      meas_.note_congestion_signal();
      meas_.note_window_cut();
    }
  }

  switch (params_.variant) {
    case TcpVariant::kSack:
      on_ack_sack(ack, newly_acked);
      break;
    case TcpVariant::kReno:
    case TcpVariant::kTahoe:
    case TcpVariant::kVegas:  // Reno loss mechanics, delay-gradient growth
      on_ack_reno(ack, newly_acked);
      break;
    case TcpVariant::kBbr:  // SACK scoreboard mechanics, model-set window
      on_ack_sack(ack, newly_acked);
      break;
  }

  if (peer_.sb.outstanding() > 0)
    restart_rexmit_timer();
  else
    rto_.cancel();

  send_what_we_can();
}

void TcpSender::on_ack_sack(const net::Packet& ack,
                            std::int64_t newly_acked) {
  peer_.sb.apply_sack(ack.sack.data(), ack.n_sack);
  const int new_losses = peer_.sb.detect_losses(params_.dupthresh);

  // Recovery state machine: one halving per loss episode. A policy that
  // answers kNone (the BBR-style competitor) registers the signal but no
  // window cut.
  grouper_.refresh(peer_.sb.una());
  if (new_losses > 0 && !grouper_.in_episode()) {
    grouper_.open_episode(peer_.sb.high());
    const cc::CutAction action =
        policy_->on_signal(signal_ctx(/*from_ecn=*/false));
    meas_.note_congestion_signal();
    if (action != cc::CutAction::kNone) meas_.note_window_cut();
    apply_cut(action);
  }

  if (params_.variant == TcpVariant::kBbr) {
    // The model, not ACK counting, sets the window: per-round bookkeeping,
    // then cap cwnd at cwnd_gain * estimated BDP.
    if (newly_acked > 0 && peer_.sb.una() >= bbr_round_end_) {
      bbr_round_end_ = peer_.sb.high();
      bbr_.on_round(sim_.now());
    }
    const double cap = bbr_.cwnd_cap();
    if (win_.cwnd() != cap) {
      win_.set_cwnd(cap);
      meas_.note_cwnd(sim_.now(), win_.cwnd());
    }
    return;
  }

  // Window growth (not during recovery, per ns-2 sack1).
  if (newly_acked > 0 && !grouper_.in_episode()) grow_window();
}

void TcpSender::on_ack_reno(const net::Packet& ack,
                            std::int64_t newly_acked) {
  (void)ack;  // Reno/Tahoe ignore the SACK blocks entirely
  if (newly_acked == 0) {
    if (peer_.sb.outstanding() == 0) return;  // stray ACK
    ++dupacks_;
    if (!grouper_.in_episode() && dupacks_ == params_.dupthresh) {
      // Fast retransmit.
      meas_.note_congestion_signal();
      meas_.note_window_cut();
      peer_.sb.on_retransmit(peer_.sb.una());
      send_packet(peer_.sb.una(), /*rexmit=*/true);
      const cc::CutAction action =
          policy_->on_signal(signal_ctx(/*from_ecn=*/false));
      if (action == cc::CutAction::kCollapse) {
        // Tahoe: no fast recovery — collapse and slow-start.
        apply_cut(action);
        dupacks_ = 0;
      } else {
        // Reno: halve and inflate by the dupacks already seen.
        grouper_.open_episode(peer_.sb.high());
        apply_cut(action);
        inflation_ = static_cast<double>(params_.dupthresh);
      }
    } else if (grouper_.in_episode()) {
      inflation_ += 1.0;  // every further dupack means a packet left the pipe
    }
    return;
  }

  // New cumulative ACK.
  dupacks_ = 0;
  if (grouper_.in_episode()) {
    grouper_.refresh(peer_.sb.una());
    if (!grouper_.in_episode()) {
      inflation_ = 0.0;  // full recovery: deflate
    } else {
      // Partial ACK (NewReno behaviour): the next hole is also gone;
      // retransmit it immediately and stay in recovery.
      peer_.sb.on_retransmit(peer_.sb.una());
      send_packet(peer_.sb.una(), /*rexmit=*/true);
      inflation_ = std::max(0.0, inflation_ - static_cast<double>(newly_acked));
      return;
    }
  }
  if (params_.variant == TcpVariant::kVegas) {
    // Vegas growth: exponential only until the backlog estimate says the
    // pipe is full, then one +-1 decision per RTT (epoch = one window of
    // data cumulatively acknowledged).
    if (win_.in_slow_start() && !vegas_.slow_start_done(win_.cwnd())) {
      grow_window();
    } else if (peer_.sb.una() >= vegas_epoch_end_) {
      vegas_epoch_end_ = peer_.sb.high();
      switch (vegas_.decide(win_.cwnd())) {
        case cc::DelayGradient::Verdict::kIncrease:
          win_.set_cwnd(win_.cwnd() + 1.0);
          meas_.note_cwnd(sim_.now(), win_.cwnd());
          break;
        case cc::DelayGradient::Verdict::kDecrease:
          win_.set_cwnd(win_.cwnd() - 1.0);
          meas_.note_cwnd(sim_.now(), win_.cwnd());
          break;
        case cc::DelayGradient::Verdict::kHold:
          break;
      }
    }
    return;
  }
  grow_window();
}

void TcpSender::on_rtt_sample_vegas(double sample) {
  vegas_.add_sample(sample);
}

void TcpSender::on_delivery_sample_bbr(const net::Packet& ack,
                                       std::int64_t newly_acked) {
  delivered_ += newly_acked;
  // Rate sample (BBR's delivered-count idea): throughput seen by the packet
  // this ACK answers = delivered packets since it was sent / elapsed.
  // Karn-filtered like RTT: retransmitted packets give ambiguous samples.
  if (ack.seq != net::kNoSeq && !peer_.sb.was_retransmitted(ack.seq) &&
      ack.ts_echo > 0.0) {
    const auto it = delivery_records_.find(ack.seq);
    if (it != delivery_records_.end()) {
      const sim::SimTime interval = sim_.now() - it->second.sent_at;
      const auto delta =
          static_cast<double>(delivered_ - it->second.delivered_at_send);
      bbr_.on_sample(sim_.now(), delta, interval, sim_.now() - ack.ts_echo);
    }
  }
  // Records at or below una can never produce another sample.
  delivery_records_.erase(delivery_records_.begin(),
                          delivery_records_.lower_bound(peer_.sb.una()));
}

void TcpSender::send_what_we_can() {
  if (!started_ || done_) return;
  if (params_.variant == TcpVariant::kBbr) {
    // Paced, not window-burst: (re)start the pacing loop if it is idle.
    // While the pacer is ahead of the window/flow limit it disarms itself
    // and this ACK-clocked restart picks sending back up.
    if (!pace_timer_.armed()) pace_bbr();
    return;
  }
  const auto cwnd = static_cast<std::int64_t>(win_.cwnd());
  if (params_.variant == TcpVariant::kSack) {
    while (true) {
      const net::SeqNum rexmit = peer_.sb.next_to_retransmit();
      if (rexmit != net::kNoSeq) {
        if (peer_.sb.pipe() >= cwnd) break;
        send_packet(rexmit, /*rexmit=*/true);
        continue;
      }
      // New data: bounded by the window from una, the pipe, and (finite
      // flows) the amount of data the application has.
      if (peer_.sb.high() >= flow_limit()) break;
      if (peer_.sb.high() >= peer_.sb.una() + cwnd) break;
      if (peer_.sb.pipe() >= cwnd) break;
      send_packet(peer_.sb.high(), /*rexmit=*/false);
    }
    return;
  }
  // Reno/Tahoe/Vegas: plain window from una, inflated during fast recovery.
  const auto wnd = static_cast<std::int64_t>(win_.cwnd() + inflation_);
  while (peer_.sb.high() < peer_.sb.una() + wnd &&
         peer_.sb.high() < flow_limit())
    send_packet(peer_.sb.high(), /*rexmit=*/false);
}

void TcpSender::pace_bbr() {
  if (!started_ || done_) return;
  const auto cwnd = static_cast<std::int64_t>(win_.cwnd());
  if (!send_one_eligible(cwnd)) return;  // limited: next ACK restarts pacing
  const double rate = std::max(bbr_.pacing_rate_pps(), 1e-3);
  pace_timer_.schedule(1.0 / rate);
}

bool TcpSender::send_one_eligible(std::int64_t cwnd) {
  // SACK-style eligibility, one packet: retransmissions first, then new
  // data, both capped by the in-flight (pipe) limit.
  const net::SeqNum rexmit = peer_.sb.next_to_retransmit();
  if (rexmit != net::kNoSeq) {
    if (peer_.sb.pipe() >= cwnd) return false;
    send_packet(rexmit, /*rexmit=*/true);
    return true;
  }
  if (peer_.sb.high() >= flow_limit()) return false;
  if (peer_.sb.high() >= peer_.sb.una() + cwnd) return false;
  if (peer_.sb.pipe() >= cwnd) return false;
  send_packet(peer_.sb.high(), /*rexmit=*/false);
  return true;
}

net::SeqNum TcpSender::flow_limit() const {
  return params_.flow_packets > 0 ? params_.flow_packets
                                  : std::numeric_limits<net::SeqNum>::max();
}

bool TcpSender::app_limited() const {
  if (!started_ || done_) return true;
  if (params_.flow_packets <= 0) return false;
  // Tail of a finite flow: every packet has been handed to the network at
  // least once, so new data can no longer fill the window.
  return peer_.sb.high() >= params_.flow_packets;
}

void TcpSender::maybe_complete() {
  if (done_ || params_.flow_packets <= 0) return;
  if (peer_.sb.una() < params_.flow_packets) return;
  done_ = true;
  rto_.cancel();
  pace_timer_.cancel();
  if (on_complete_) on_complete_();
}

void TcpSender::send_packet(net::SeqNum seq, bool rexmit) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = flow_;
  p.src = node_;
  p.dst = dst_node_;
  p.src_port = port_;
  p.dst_port = dst_port_;
  p.size_bytes = params_.packet_bytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.is_rexmit = rexmit;
  p.ect = params_.ecn;

  if (rexmit)
    peer_.sb.on_retransmit(seq);
  else
    peer_.sb.on_send(seq);

  // BBR rate samples need the delivered count at (first) send time.
  if (params_.variant == TcpVariant::kBbr && !rexmit)
    delivery_records_[seq] = DeliveryRecord{delivered_, sim_.now()};

  pacer_.send(p);
  rto_.ensure_armed(peer_.rtt.rto());
}

void TcpSender::restart_rexmit_timer() { rto_.restart(peer_.rtt.rto()); }

void TcpSender::on_timeout() {
  if (done_ || peer_.sb.outstanding() == 0) return;
  meas_.note_timeout();
  meas_.note_congestion_signal();
  // Loss-based variants always collapse on RTO; the BBR-style sender only
  // collapses (and forgets its bandwidth model) when the SAME data stalls
  // through consecutive timeouts — a single RTO is just the model being
  // slow, not the path being gone.
  bool repeated_stall = true;
  if (params_.variant == TcpVariant::kBbr) {
    repeated_stall = peer_.sb.una() == last_timeout_una_;
    last_timeout_una_ = peer_.sb.una();
    if (repeated_stall) bbr_.reset_bw();
  }
  const cc::CutAction action = policy_->on_timeout(repeated_stall);
  if (action != cc::CutAction::kNone) meas_.note_window_cut();
  apply_cut(action);
  grouper_.close_episode();
  dupacks_ = 0;
  inflation_ = 0.0;
  peer_.rtt.back_off();
  peer_.sb.mark_all_lost();
  if (params_.variant != TcpVariant::kSack &&
      params_.variant != TcpVariant::kBbr) {
    // Go-back-N restart: retransmit the first outstanding packet now; the
    // rest follow as the window re-opens.
    send_packet(peer_.sb.una(), /*rexmit=*/true);
  }
  restart_rexmit_timer();
  send_what_we_can();
}

}  // namespace rlacast::tcp
