// TCP SACK sender (ns-2 "sack1"-style, packet-granularity sequence space).
//
// Implements the congestion control loop §4.1 of the paper models:
//   * slow start:  cwnd += 1 per new ACK while cwnd < ssthresh;
//   * congestion avoidance:  cwnd += 1/cwnd per new ACK;
//   * SACK loss detection: a packet is lost when dupthresh (3) packets above
//     it have been SACKed;
//   * fast recovery with pipe-based transmission (conservation of packets),
//     one window halving per recovery episode;
//   * retransmission timeout: cwnd = 1, ssthresh = cwnd/2, exponential
//     backoff (Karn), scoreboard restart.
//
// The window arithmetic, RTO management, signal grouping, and the cut
// decision all live in the shared congestion-control core (src/cc/): this
// class keeps only the transport mechanics — what to (re)send, when to
// sample RTT, and the variant-specific recovery plumbing (SACK pipe vs
// Reno dupack counting and window inflation).
//
// The application is an infinite FTP source by default: there is always
// data to send.  TcpParams::flow_packets > 0 turns the connection into a
// finite flow (the src/workload/ web-traffic generator's building block):
// the sender transmits exactly that many packets, reports completion
// through set_on_complete, and goes quiescent — and while the tail of a
// finite flow (or a completed one) cannot fill its window, app_limited()
// is true so the fairness telemetry can exclude those windows from band
// checks (a flow that WON'T use its share is not evidence about one that
// CAN'T get it).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "cc/bbr_policy.hpp"
#include "cc/delay_policy.hpp"
#include "cc/loss_policy.hpp"
#include "cc/peer_state.hpp"
#include "cc/rto_manager.hpp"
#include "cc/signal_grouper.hpp"
#include "cc/window.hpp"
#include "net/agent.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stats/flow_measurement.hpp"

namespace rlacast::tcp {

/// Congestion-control flavour of the sender.  The paper's background
/// traffic is SACK TCP; Reno and Tahoe are provided for comparison runs
/// (the paper cites Fall & Floyd's Tahoe/Reno/SACK study for the "multiple
/// drops in one window = one signal" behaviour).
enum class TcpVariant {
  kSack,   // scoreboard loss detection + pipe-based recovery (default)
  kReno,   // dupack-count fast retransmit + window-inflation fast recovery
  kTahoe,  // dupack-count fast retransmit, then slow start from 1
  // Modern competitors (ROADMAP item 3; not part of the paper's evaluation):
  kVegas,  // delay-based: once-per-RTT srtt-gradient window adjustment
           // (cc::DelayGradient) over Reno loss mechanics
  kBbr     // BBR-style: windowed max-bandwidth / min-RTT model (cc::BbrModel)
           // paces sends and caps cwnd; grouped losses do not cut
};

struct TcpParams {
  TcpVariant variant = TcpVariant::kSack;
  double initial_cwnd = 1.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 1e6;          // receiver window, packets
  int dupthresh = 3;
  std::int32_t packet_bytes = net::kDataPacketBytes;
  std::int32_t ack_bytes = net::kAckPacketBytes;
  /// Estimator tuning; the shared TCP/RLA defaults live in
  /// cc/rtt_estimator.hpp.
  cc::RttEstimatorParams rtt{};
  /// Random per-packet sender processing time, Uniform(0, max): §3.1's
  /// phase-effect elimination. 0 disables. Competing flows must use the
  /// same bound as RlaParams::max_send_overhead — unequal jitter quietly
  /// biases the fairness ratio (the topo/ builders assert this).
  sim::SimTime max_send_overhead = 0.0;
  // ECN (RFC 3168, simplified): mark data ECN-capable and treat an echoed
  // CE (ECE on an ACK) as a congestion signal — one window halving per
  // episode, no packet loss required. Needs ECN-enabled RED gateways.
  bool ecn = false;
  /// Finite-flow size in packets; 0 keeps the historical infinite FTP
  /// source. When > 0 the connection sends exactly this many packets,
  /// fires the on_complete callback once fully acknowledged, and goes
  /// quiescent (timers cancelled).
  std::int64_t flow_packets = 0;
  /// Vegas-style tuning (kVegas only).
  cc::DelayGradientParams vegas{};
  /// BBR-style tuning (kBbr only).
  cc::BbrParams bbr{};
};

class TcpSender final : public net::Agent {
 public:
  /// The sender lives at (`node`, `port`) and talks to a TcpReceiver at
  /// (`dst_node`, `dst_port`). `flow` tags its packets for tracing.
  TcpSender(net::Network& network, net::NodeId node, net::PortId port,
            net::NodeId dst_node, net::PortId dst_port, net::FlowId flow,
            TcpParams params = {});

  ~TcpSender() override;

  /// Opens the connection at absolute simulation time `when`.
  void start_at(sim::SimTime when);

  /// Completion callback for finite flows (flow_packets > 0): fired exactly
  /// once, when every packet of the flow has been cumulatively acknowledged.
  /// The callback may construct new senders (the web workload's user loop)
  /// but must not destroy this one.
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  void on_receive(const net::Packet& p) override;

  // --- observability ---------------------------------------------------------
  double cwnd() const { return win_.cwnd(); }
  double ssthresh() const { return win_.ssthresh(); }
  bool in_recovery() const { return grouper_.in_episode(); }
  net::SeqNum highest_sent() const { return peer_.sb.high(); }
  net::SeqNum una() const { return peer_.sb.una(); }
  /// Finite flows only: all flow_packets acknowledged, sender quiescent.
  bool done() const { return done_; }
  /// True when the application, not the network, is the throughput limit
  /// right now: the connection has not started, has completed, or a finite
  /// flow's remaining data cannot fill the congestion window. Sampled by
  /// stats::FairnessMonitor to mark windows that must not count as
  /// fairness evidence.
  bool app_limited() const;
  const cc::RttEstimator& rtt() const { return peer_.rtt; }
  stats::FlowMeasurement& measurement() { return meas_; }
  const stats::FlowMeasurement& measurement() const { return meas_; }
  const TcpParams& params() const { return params_; }

  // kVegas observability.
  const cc::DelayGradient& delay_gradient() const { return vegas_; }
  // kBbr observability.
  const cc::BbrModel& bbr_model() const { return bbr_; }

 private:
  void on_ack(const net::Packet& ack);
  void on_ack_sack(const net::Packet& ack, std::int64_t newly_acked);
  void on_ack_reno(const net::Packet& ack, std::int64_t newly_acked);
  void on_rtt_sample_vegas(double sample);
  void on_delivery_sample_bbr(const net::Packet& ack, std::int64_t newly_acked);
  void grow_window();
  void apply_cut(cc::CutAction action);
  cc::SignalContext signal_ctx(bool from_ecn) const;
  void on_timeout();
  void send_what_we_can();
  void pace_bbr();
  bool send_one_eligible(std::int64_t cwnd);
  void send_packet(net::SeqNum seq, bool rexmit);
  void restart_rexmit_timer();
  net::SeqNum flow_limit() const;
  void maybe_complete();

  net::Network& network_;
  sim::Simulator& sim_;
  net::NodeId node_;
  net::PortId port_;
  net::NodeId dst_node_;
  net::PortId dst_port_;
  net::FlowId flow_;
  TcpParams params_;

  net::SendPacer pacer_;
  cc::PeerState peer_;  // {scoreboard, RTT estimator}: one, for one receiver
  cc::Window win_;
  cc::SignalGrouper grouper_;  // sequence-mode recovery episodes
  cc::RtoManager rto_;
  std::unique_ptr<cc::LossResponsePolicy> policy_;  // one heap alloc, in ctor

  bool started_ = false;
  bool done_ = false;
  std::function<void()> on_complete_;
  // Reno/Tahoe dupack machinery.
  int dupacks_ = 0;
  double inflation_ = 0.0;  // Reno fast-recovery window inflation

  // kVegas: the srtt-gradient core plus the once-per-RTT epoch marker.
  cc::DelayGradient vegas_;
  net::SeqNum vegas_epoch_end_ = 0;

  // kBbr: the bandwidth/propagation model, the pacing timer, per-packet
  // delivered-count records for BBR-style rate samples, and round tracking.
  cc::BbrModel bbr_;
  sim::Timer pace_timer_;
  std::int64_t delivered_ = 0;  // cumulative cleanly-delivered packets
  struct DeliveryRecord {
    std::int64_t delivered_at_send = 0;
    sim::SimTime sent_at = 0.0;
  };
  std::map<net::SeqNum, DeliveryRecord> delivery_records_;
  net::SeqNum bbr_round_end_ = 0;
  net::SeqNum last_timeout_una_ = -1;  // repeated-stall detection (kBbr)

  stats::FlowMeasurement meas_;
};

}  // namespace rlacast::tcp
