#include "tcp/rtt_estimator.hpp"

namespace rlacast::tcp {}
