#include "tcp/tcp_receiver.hpp"

#include <string>

namespace rlacast::tcp {

TcpReceiver::TcpReceiver(net::Network& network, net::NodeId node,
                         net::PortId port, std::int32_t ack_bytes,
                         sim::SimTime max_ack_overhead)
    : network_(network),
      node_(node),
      port_(port),
      ack_bytes_(ack_bytes),
      ack_pacer_(network.simulator(), network,
                 network.simulator().rng_stream(
                     "tcp-ack-overhead-" + std::to_string(node) + "-" +
                     std::to_string(port)),
                 max_ack_overhead),
      delack_timer_(network.simulator(), [this] {
        unacked_in_order_ = 0;
        send_ack(net::kNoSeq, 0.0, false);
      }) {
  network_.attach(node_, port_, this);
}

void TcpReceiver::on_receive(const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  last_data_src_ = p.src;
  last_data_sport_ = p.src_port;
  flow_ = p.flow;
  const net::SeqNum cum_before = buf_.cum_ack();
  if (buf_.add(p.seq))
    ++received_;
  else
    ++duplicates_;

  if (delayed_ack_) {
    // Delay only clean in-order arrivals; anything unusual (gap, reorder,
    // duplicate, CE mark) must be reported immediately so the sender's
    // loss/congestion detection is not slowed down.
    const bool in_order = buf_.cum_ack() == cum_before + 1 &&
                          buf_.ooo_count() == 0 && !p.ce;
    if (in_order && ++unacked_in_order_ < 2) {
      delack_timer_.schedule(kDelAckTimeout);
      return;
    }
    unacked_in_order_ = 0;
    delack_timer_.cancel();
  }

  send_ack(p.seq, p.ts_echo, p.ce);
}

void TcpReceiver::send_ack(net::SeqNum trigger_seq, sim::SimTime ts,
                           bool ece) {
  if (last_data_src_ == net::kNoNode) return;  // nothing to acknowledge yet
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.flow = flow_;
  ack.src = node_;
  ack.dst = last_data_src_;
  ack.src_port = port_;
  ack.dst_port = last_data_sport_;
  ack.size_bytes = ack_bytes_;
  ack.ack = buf_.cum_ack();
  ack.seq = trigger_seq;  // seq that triggered this ACK (for Karn check)
  ack.ts_echo = ts;       // sender timestamp echo
  ack.ece = ece;          // echo a congestion-experienced mark (ECN)
  ack.n_sack = static_cast<std::uint8_t>(
      buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));
  ack_pacer_.send(ack);
}

}  // namespace rlacast::tcp
