#include "cc/window.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::cc {

void Window::clamp() { cwnd_ = std::clamp(cwnd_, 1.0, p_.max_cwnd); }

void Window::grow(std::int64_t newly_acked) {
  for (std::int64_t k = 0; k < newly_acked; ++k) {
    if (cwnd_ < ssthresh_)
      cwnd_ += 1.0;  // slow start
    else
      cwnd_ += p_.fairness_weight / std::floor(cwnd_);  // cong. avoidance
  }
  clamp();
}

void Window::halve(double cwnd_floor) {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = std::max(cwnd_ / 2.0, cwnd_floor);
  clamp();
}

void Window::collapse_to_one() {
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  clamp();
}

void Window::set_cwnd(double w) {
  cwnd_ = w;
  clamp();
}

}  // namespace rlacast::cc
