// The per-peer reliability bundle: a SACK scoreboard plus an RTT/RTO
// estimator. A TCP sender owns exactly one (its single receiver); the RLA
// sender owns a vector of them, one per multicast receiver — the same
// machinery either way, which is what makes the two controllers' loss
// detection directly comparable.
#pragma once

#include "cc/rtt_estimator.hpp"
#include "cc/scoreboard.hpp"

namespace rlacast::cc {

struct PeerState {
  Scoreboard sb;
  RttEstimator rtt;

  explicit PeerState(const RttEstimatorParams& rp = {}) : rtt(rp) {}
};

}  // namespace rlacast::cc
