// Troubled-receiver census (§3.3 rule 6).
//
// num_trouble_rcvr is the dynamic count of receivers whose congestion-signal
// rate is within a factor η of the most congested receiver's.  Concretely,
// each receiver carries an EWMA of the intervals between its congestion
// signals; with min_congestion_interval the smallest such average over all
// receivers, receiver i is *troubled* iff
//
//     effective_interval_i < eta * min_congestion_interval .
//
// Two practical refinements over the paper's one-line description (both
// documented in DESIGN.md):
//  * a receiver whose EWMA has no sample yet (fewer than two signals) uses
//    the elapsed time since its single signal, so the very first loss of a
//    session still counts (num_trouble >= 1 whenever anyone signals);
//  * the effective interval is max(EWMA, time since last signal), so a
//    receiver whose congestion ended ages out of the census instead of
//    staying troubled on stale history.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/time.hpp"
#include "stats/ewma.hpp"

namespace rlacast::cc {

class TroubledCensus : public replay::Snapshotable {
 public:
  TroubledCensus(double eta, double interval_gain)
      : eta_(eta), gain_(interval_gain) {}

  /// Registers one more receiver; returns its index.
  int add_receiver();

  std::size_t receiver_count() const { return rcvrs_.size(); }

  /// Records a congestion signal from receiver `i` at time `now`.
  void on_signal(int i, sim::SimTime now);

  /// Permanently removes receiver `i` from the census (§4.3 slow-drop).
  void exclude(int i);
  bool excluded(int i) const { return rcvrs_[static_cast<std::size_t>(i)].excluded; }

  /// Recomputes all troubled flags as of `now`; returns num_trouble_rcvr.
  int recompute(sim::SimTime now);

  bool troubled(int i) const { return rcvrs_[static_cast<std::size_t>(i)].troubled; }
  int num_troubled() const { return num_troubled_; }

  /// Smallest effective interval across receivers; <0 when nobody has
  /// signalled yet.
  double min_interval(sim::SimTime now) const;

  /// The per-receiver effective congestion-signal interval (see above);
  /// returns a negative value when the receiver has never signalled.
  double effective_interval(int i, sim::SimTime now) const;

  std::uint64_t signals(int i) const { return rcvrs_[static_cast<std::size_t>(i)].signals; }
  std::uint64_t total_signals() const { return total_signals_; }
  sim::SimTime last_signal_time(int i) const {
    return rcvrs_[static_cast<std::size_t>(i)].last_signal;
  }

  /// Checkpoint state: census totals plus per-receiver signal counts and
  /// troubled/excluded flags (the inputs to every pthresh decision).
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("receivers", rcvrs_.size());
    s.put("num_troubled", num_troubled_);
    s.put("total_signals", total_signals_);
    std::uint64_t excluded = 0;
    std::uint64_t troubled_mask = 0;
    for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
      if (rcvrs_[i].excluded) ++excluded;
      if (rcvrs_[i].troubled && i < 64) troubled_mask |= (1ULL << i);
    }
    s.put("excluded", excluded);
    s.put("troubled_mask", troubled_mask);
    return s;
  }

 private:
  struct Rcvr {
    stats::Ewma interval;
    sim::SimTime last_signal = sim::kNever;
    std::uint64_t signals = 0;
    bool troubled = false;
    bool excluded = false;

    explicit Rcvr(double gain) : interval(gain) {}
  };

  double eta_;
  double gain_;
  std::vector<Rcvr> rcvrs_;
  int num_troubled_ = 0;
  std::uint64_t total_signals_ = 0;
};

}  // namespace rlacast::cc
