// Troubled-receiver census (§3.3 rule 6).
//
// num_trouble_rcvr is the dynamic count of receivers whose congestion-signal
// rate is within a factor η of the most congested receiver's.  Concretely,
// each receiver carries an EWMA of the intervals between its congestion
// signals; with min_congestion_interval the smallest such average over all
// receivers, receiver i is *troubled* iff
//
//     effective_interval_i < eta * min_congestion_interval .
//
// Two practical refinements over the paper's one-line description (both
// documented in DESIGN.md):
//  * a receiver whose EWMA has no sample yet (fewer than two signals) uses
//    the elapsed time since its single signal, so the very first loss of a
//    session still counts (num_trouble >= 1 whenever anyone signals);
//  * the effective interval is max(EWMA, time since last signal), so a
//    receiver whose congestion ended ages out of the census instead of
//    staying troubled on stale history.
//
// Storage is the flat SoA member table of cc::CensusCore (parallel arrays
// indexed by the dense receiver id); this class layers the troubled rule,
// the sampled mode, and the defense state machine on top of it.
//
// Census modes (CensusSampleParams; see DESIGN.md "Memory model"):
//  * kExact (default): every recompute rescans all members — O(N) per
//    signal, byte-identical to the historical census.
//  * kSampled: recompute scans only a deterministic bottom-k hash sample of
//    the active membership (plus the most recent signaller, whose troubled
//    flag the listening policy consults directly).  num_trouble_rcvr is the
//    sample count scaled by active/sample and srtt_max is taken over the
//    sample, so per-signal work is O(k).  With reservoir >= N the sample is
//    the whole membership and every decision matches kExact bit-for-bit.
//
// The sender's srtt aggregate also lives here: note_srtt(i, srtt) mirrors
// each receiver's estimate into the SoA and srtt_max() serves the cached
// maximum (amortized O(1): the cache only invalidates when the holder's own
// estimate shrinks or the membership changes) — with the defense's
// median/MAD clamp applied on top when enabled.
//
// Feedback-plane hardening (CensusDefenseParams): the paper assumes every
// receiver reports honestly.  A signal-storm receiver can fabricate holes
// fast enough to become the census minimum, shrink everyone's pthresh
// denominator to itself, and halve the window on every fabricated signal.
// With the defense enabled the census rate-limits each member against the
// MEDIAN peer rate (a storm cannot drag the median the way it drags the
// minimum) and moves violators through a quarantine → probation → rejoin
// state machine instead of the old binary excluded() bit:
//
//   kActive --rate violation--> kQuarantined --timer--> kProbation
//     ^                                                    |
//     +------------- clean probation window ---------------+
//
// While quarantined a member counts as excluded() for every sender
// mechanism (frozen scoreboard, skipped frontier, dropped ACKs).  Each
// violation is a strike; strikes escalate the quarantine dwell and
// max_strikes converts the member to kExcluded permanently.  Probation uses
// a stricter rate factor (hysteresis), so a flip-flopping attacker is
// re-caught faster each time it resumes.  Everything defaults to disabled:
// defense off is byte-identical to the historical census.
// force_quarantine() exposes the same strike machinery to the sender's
// frontier-progress watchdog, which works with the rate defense off.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/census_core.hpp"
#include "replay/snapshot.hpp"
#include "sim/time.hpp"

namespace rlacast::cc {

/// Robust-aggregation and rate-limiter knobs. enabled == false (default)
/// keeps the census byte-identical to the pre-defense implementation.
struct CensusDefenseParams {
  bool enabled = false;
  /// Median/MAD clamp applied by the sender to reported srtts before
  /// srtt_max is taken (see robust_clamped_max); <= 0 disables the clamp
  /// even when the rest of the defense is on.
  double srtt_clamp_mads = 4.0;
  /// A member is quarantined when its effective signal interval is more
  /// than rate_factor times SMALLER than the median peer interval.
  double rate_factor = 8.0;
  /// Stricter factor while on probation (hysteresis: a re-offender is
  /// easier to catch than a first offender).
  double probation_rate_factor = 4.0;
  /// Rate checks only start once the member has this many signals in the
  /// current epoch (since join or last rejoin).
  std::uint64_t min_signals = 8;
  /// Base quarantine dwell; strike k serves quarantine_seconds * 2^(k-1).
  sim::SimTime quarantine_seconds = 20.0;
  /// Probation window after quarantine; clean conduct restores kActive.
  sim::SimTime probation_seconds = 30.0;
  /// Strikes before the member is excluded permanently; 0 = never.
  int max_strikes = 3;
};

/// Median/MAD outlier clamp: every value is clamped from above to
/// median + k_mads * 1.4826 * MAD (1.4826 makes the MAD sigma-consistent)
/// and the max of the clamped values is returned.  A single liar reporting
/// a wild srtt is pulled back to the honest cohort's spread; with fewer
/// than 3 values or k_mads <= 0 the plain max is returned (no robust
/// baseline exists).  `values` is scratch: reordered in place.
double robust_clamped_max(std::vector<double>& values, double k_mads);

class TroubledCensus : public replay::Snapshotable {
 public:
  TroubledCensus(double eta, double interval_gain)
      : eta_(eta), core_(interval_gain) {}

  /// Installs the defense knobs (call before signals flow; with
  /// defense.enabled == false this is a no-op configuration).
  void set_defense(const CensusDefenseParams& defense) { defense_ = defense; }
  const CensusDefenseParams& defense() const { return defense_; }

  /// Selects the census mode (call before receivers join; the default
  /// kExact configuration is byte-identical to the historical census).
  void configure_sampling(const CensusSampleParams& sampling);
  CensusMode mode() const { return sampling_.mode; }

  /// Capacity hint: the expected membership (topology builders know it up
  /// front; the dense arrays would otherwise pay push_back overshoot).
  void reserve(std::size_t n) {
    core_.reserve(n);
    reservoir_.reserve(n);
  }

  /// Registers one more receiver; returns its index.
  int add_receiver();

  std::size_t receiver_count() const { return core_.size(); }

  /// Receivers not excluded (active or on probation). O(1).
  int active_count() const { return active_count_; }

  /// Bumped on every change to the excluded()-membership (join, leave,
  /// quarantine, rejoin).  Aggregate caches — here and in the sender's
  /// receiver table — key their validity on it.
  std::uint64_t membership_version() const { return membership_version_; }

  /// Records a congestion signal from receiver `i` at time `now`.  With the
  /// defense enabled this also runs the median rate check and may move `i`
  /// to kQuarantined (or kExcluded on the final strike).
  void on_signal(int i, sim::SimTime now);

  /// Permanently removes receiver `i` from the census (§4.3 slow-drop,
  /// leaves, silent-receiver drops, subtree excision).
  void exclude(int i);

  /// Reverses exclude(): re-admits a kExcluded member as kActive with a
  /// fresh census epoch (stale signal history from before the exclusion
  /// must not poison its interval estimate).  The structural-heal path —
  /// the sender's subtree re-admission ramp — graduates members back
  /// through this.  No-op unless `i` is currently kExcluded.
  void readmit(int i);

  /// True while `i` must not influence the sender: permanently excluded OR
  /// serving a quarantine.  Every sender-side guard (frontier, scoreboards,
  /// ACK intake, retransmit scans) keys off this, so quarantine reuses the
  /// exact mechanics that already handled departed receivers.
  bool excluded(int i) const { return core_.excluded(i); }

  /// Time-driven state transitions as of `now`: quarantines that have been
  /// served become probation (their indices are returned so the sender can
  /// thaw them like late joiners), clean probation windows become active.
  /// No-op while the defense is disabled and nothing was ever quarantined
  /// (force_quarantine also arms it); amortized O(1) between transition
  /// deadlines.
  std::vector<int> advance_states(sim::SimTime now);

  /// Recomputes the troubled flags as of `now`; returns num_trouble_rcvr.
  /// kExact scans all members; kSampled scans the reservoir plus the most
  /// recent signaller and scales the count to the active membership.
  int recompute(sim::SimTime now);

  bool troubled(int i) const {
    return core_.troubled[static_cast<std::size_t>(i)] != 0;
  }
  int num_troubled() const { return num_troubled_; }

  /// Smallest effective interval across receivers (kSampled: across the
  /// reservoir plus the most recent signaller); <0 when nobody has
  /// signalled yet.
  double min_interval(sim::SimTime now) const;

  /// The per-receiver effective congestion-signal interval (see above);
  /// returns a negative value when the receiver has never signalled (in
  /// its current epoch — a rejoin starts a fresh epoch).
  double effective_interval(int i, sim::SimTime now) const {
    return core_.effective_interval(i, now);
  }

  std::uint64_t signals(int i) const { return core_.signal_count(i); }
  std::uint64_t total_signals() const { return total_signals_; }
  sim::SimTime last_signal_time(int i) const {
    return core_.last_signal_at(i);
  }

  /// kSampled only: true when `i` is one of the reservoir-tracked members
  /// (always false in kExact, where every member is tracked implicitly).
  /// The sender keys its own slim per-receiver state on this.
  bool sampled_tracked(int i) const {
    return sampling_.mode == CensusMode::kSampled && reservoir_.tracked(i);
  }

  // --- srtt aggregate -------------------------------------------------------
  /// Mirrors receiver `i`'s srtt estimate into the census (the sender calls
  /// this after every RTT sample). Keeps the srtt_max cache hot: O(1)
  /// unless the cached holder's own estimate shrank.
  void note_srtt(int i, double srtt);

  /// Largest mirrored srtt over the non-excluded members (kSampled: over
  /// the reservoir).  With the defense's srtt clamp enabled the median/MAD
  /// clamp of robust_clamped_max is applied first; that variant is cached
  /// per (srtt, membership) version, so repeated pthresh evaluations of the
  /// same census state cost O(1).
  double srtt_max() const;

  // --- defense observability ----------------------------------------------
  MemberState state(int i) const {
    return core_.state[static_cast<std::size_t>(i)];
  }
  int strikes(int i) const { return core_.strike_count(i); }
  /// Total quarantine transitions (strike-outs included).
  std::uint64_t quarantines() const { return quarantines_; }
  /// Members converted to kExcluded by reaching max_strikes.
  std::uint64_t strikeouts() const { return strikeouts_; }
  int currently_quarantined() const {
    int n = 0;
    for (std::size_t i = 0; i < core_.size(); ++i)
      if (core_.state[i] == MemberState::kQuarantined) ++n;
    return n;
  }

  /// Strikes `i` through the quarantine machinery regardless of the rate
  /// defense — the sender's frontier-progress watchdog uses this to evict
  /// receivers that pin the reach-all frontier while everyone else keeps
  /// acknowledging.  No-op when `i` is already excluded.
  void force_quarantine(int i, sim::SimTime now);

  /// Resident bytes of the census (SoA arrays + reservoir + scratch).
  std::size_t state_bytes() const;

  /// Checkpoint state: census totals plus per-receiver signal counts and
  /// troubled/excluded flags (the inputs to every pthresh decision).
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("receivers", core_.size());
    s.put("active", active_count_);
    s.put("num_troubled", num_troubled_);
    s.put("total_signals", total_signals_);
    std::uint64_t excluded_n = 0;
    std::uint64_t troubled_mask = 0;
    for (std::size_t i = 0; i < core_.size(); ++i) {
      if (core_.excluded(static_cast<int>(i))) ++excluded_n;
      if (core_.troubled[i] != 0 && i < 64) troubled_mask |= (1ULL << i);
    }
    s.put("excluded", excluded_n);
    s.put("troubled_mask", troubled_mask);
    s.put("quarantines", quarantines_);
    return s;
  }

 private:
  /// Median rate check for `i` after a fresh signal; quarantines on
  /// violation.  Defense-enabled path only.
  void rate_check(int i, sim::SimTime now);
  void quarantine(int i, sim::SimTime now);
  void clear_troubled(int i);
  void set_troubled(int i);
  /// Member left the excluded() set (join/rejoin) or entered it.
  void membership_changed(int i, bool now_active);
  double plain_srtt_max() const;
  double robust_srtt_max() const;

  double eta_;
  CensusDefenseParams defense_{};
  CensusSampleParams sampling_{};
  CensusCore core_;
  SampleReservoir reservoir_;   // kSampled only
  int last_signaller_ = -1;     // kSampled: always evaluated exactly
  std::vector<int> flagged_;    // members whose troubled flag is set
  std::vector<double> interval_scratch_;  // rate_check median workspace
  int num_troubled_ = 0;
  int active_count_ = 0;
  std::uint64_t total_signals_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t strikeouts_ = 0;
  std::uint64_t membership_version_ = 0;
  sim::SimTime next_state_check_ = 1e18;  // earliest pending state expiry

  // srtt_max caches (logically const accessors).
  std::uint64_t srtt_version_ = 0;
  mutable bool srtt_max_valid_ = false;
  mutable double srtt_max_cache_ = 0.0;
  mutable int srtt_holder_ = -1;
  mutable std::uint64_t srtt_max_membership_ = ~0ULL;
  mutable bool robust_valid_ = false;
  mutable double robust_cache_ = 0.0;
  mutable std::uint64_t robust_srtt_version_ = ~0ULL;
  mutable std::uint64_t robust_membership_ = ~0ULL;
  mutable std::vector<double> srtt_scratch_;
};

}  // namespace rlacast::cc
