// Troubled-receiver census (§3.3 rule 6).
//
// num_trouble_rcvr is the dynamic count of receivers whose congestion-signal
// rate is within a factor η of the most congested receiver's.  Concretely,
// each receiver carries an EWMA of the intervals between its congestion
// signals; with min_congestion_interval the smallest such average over all
// receivers, receiver i is *troubled* iff
//
//     effective_interval_i < eta * min_congestion_interval .
//
// Two practical refinements over the paper's one-line description (both
// documented in DESIGN.md):
//  * a receiver whose EWMA has no sample yet (fewer than two signals) uses
//    the elapsed time since its single signal, so the very first loss of a
//    session still counts (num_trouble >= 1 whenever anyone signals);
//  * the effective interval is max(EWMA, time since last signal), so a
//    receiver whose congestion ended ages out of the census instead of
//    staying troubled on stale history.
//
// Feedback-plane hardening (CensusDefenseParams): the paper assumes every
// receiver reports honestly.  A signal-storm receiver can fabricate holes
// fast enough to become the census minimum, shrink everyone's pthresh
// denominator to itself, and halve the window on every fabricated signal.
// With the defense enabled the census rate-limits each member against the
// MEDIAN peer rate (a storm cannot drag the median the way it drags the
// minimum) and moves violators through a quarantine → probation → rejoin
// state machine instead of the old binary excluded() bit:
//
//   kActive --rate violation--> kQuarantined --timer--> kProbation
//     ^                                                    |
//     +------------- clean probation window ---------------+
//
// While quarantined a member counts as excluded() for every sender
// mechanism (frozen scoreboard, skipped frontier, dropped ACKs).  Each
// violation is a strike; strikes escalate the quarantine dwell and
// max_strikes converts the member to kExcluded permanently.  Probation uses
// a stricter rate factor (hysteresis), so a flip-flopping attacker is
// re-caught faster each time it resumes.  Everything defaults to disabled:
// defense off is byte-identical to the historical census.
#pragma once

#include <cstdint>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/time.hpp"
#include "stats/ewma.hpp"

namespace rlacast::cc {

/// Robust-aggregation and rate-limiter knobs. enabled == false (default)
/// keeps the census byte-identical to the pre-defense implementation.
struct CensusDefenseParams {
  bool enabled = false;
  /// Median/MAD clamp applied by the sender to reported srtts before
  /// srtt_max is taken (see robust_clamped_max); <= 0 disables the clamp
  /// even when the rest of the defense is on.
  double srtt_clamp_mads = 4.0;
  /// A member is quarantined when its effective signal interval is more
  /// than rate_factor times SMALLER than the median peer interval.
  double rate_factor = 8.0;
  /// Stricter factor while on probation (hysteresis: a re-offender is
  /// easier to catch than a first offender).
  double probation_rate_factor = 4.0;
  /// Rate checks only start once the member has this many signals in the
  /// current epoch (since join or last rejoin).
  std::uint64_t min_signals = 8;
  /// Base quarantine dwell; strike k serves quarantine_seconds * 2^(k-1).
  sim::SimTime quarantine_seconds = 20.0;
  /// Probation window after quarantine; clean conduct restores kActive.
  sim::SimTime probation_seconds = 30.0;
  /// Strikes before the member is excluded permanently; 0 = never.
  int max_strikes = 3;
};

/// Membership state of one receiver in the hardened census.
enum class MemberState : std::uint8_t {
  kActive,       // full participant
  kProbation,    // rejoined, watched under the stricter rate factor
  kQuarantined,  // timed exclusion (counts as excluded())
  kExcluded,     // permanent (leave, silent-drop, slow-drop, strike-out)
};

/// Median/MAD outlier clamp: every value is clamped from above to
/// median + k_mads * 1.4826 * MAD (1.4826 makes the MAD sigma-consistent)
/// and the max of the clamped values is returned.  A single liar reporting
/// a wild srtt is pulled back to the honest cohort's spread; with fewer
/// than 3 values or k_mads <= 0 the plain max is returned (no robust
/// baseline exists).  `values` is scratch: reordered in place.
double robust_clamped_max(std::vector<double>& values, double k_mads);

class TroubledCensus : public replay::Snapshotable {
 public:
  TroubledCensus(double eta, double interval_gain)
      : eta_(eta), gain_(interval_gain) {}

  /// Installs the defense knobs (call before signals flow; with
  /// defense.enabled == false this is a no-op configuration).
  void set_defense(const CensusDefenseParams& defense) { defense_ = defense; }
  const CensusDefenseParams& defense() const { return defense_; }

  /// Registers one more receiver; returns its index.
  int add_receiver();

  std::size_t receiver_count() const { return rcvrs_.size(); }

  /// Records a congestion signal from receiver `i` at time `now`.  With the
  /// defense enabled this also runs the median rate check and may move `i`
  /// to kQuarantined (or kExcluded on the final strike).
  void on_signal(int i, sim::SimTime now);

  /// Permanently removes receiver `i` from the census (§4.3 slow-drop,
  /// leaves, silent-receiver drops).
  void exclude(int i);

  /// True while `i` must not influence the sender: permanently excluded OR
  /// serving a quarantine.  Every sender-side guard (frontier, scoreboards,
  /// ACK intake, retransmit scans) keys off this, so quarantine reuses the
  /// exact mechanics that already handled departed receivers.
  bool excluded(int i) const {
    const MemberState s = rcvrs_[static_cast<std::size_t>(i)].state;
    return s == MemberState::kQuarantined || s == MemberState::kExcluded;
  }

  /// Time-driven state transitions as of `now`: quarantines that have been
  /// served become probation (their indices are returned so the sender can
  /// thaw them like late joiners), clean probation windows become active.
  /// No-op (empty vector, no state read) while the defense is disabled.
  std::vector<int> advance_states(sim::SimTime now);

  /// Recomputes all troubled flags as of `now`; returns num_trouble_rcvr.
  int recompute(sim::SimTime now);

  bool troubled(int i) const { return rcvrs_[static_cast<std::size_t>(i)].troubled; }
  int num_troubled() const { return num_troubled_; }

  /// Smallest effective interval across receivers; <0 when nobody has
  /// signalled yet.
  double min_interval(sim::SimTime now) const;

  /// The per-receiver effective congestion-signal interval (see above);
  /// returns a negative value when the receiver has never signalled (in
  /// its current epoch — a rejoin starts a fresh epoch).
  double effective_interval(int i, sim::SimTime now) const;

  std::uint64_t signals(int i) const { return rcvrs_[static_cast<std::size_t>(i)].signals; }
  std::uint64_t total_signals() const { return total_signals_; }
  sim::SimTime last_signal_time(int i) const {
    return rcvrs_[static_cast<std::size_t>(i)].last_signal;
  }

  // --- defense observability ----------------------------------------------
  MemberState state(int i) const {
    return rcvrs_[static_cast<std::size_t>(i)].state;
  }
  int strikes(int i) const { return rcvrs_[static_cast<std::size_t>(i)].strikes; }
  /// Total quarantine transitions (strike-outs included).
  std::uint64_t quarantines() const { return quarantines_; }
  /// Members converted to kExcluded by reaching max_strikes.
  std::uint64_t strikeouts() const { return strikeouts_; }
  int currently_quarantined() const {
    int n = 0;
    for (const Rcvr& r : rcvrs_)
      if (r.state == MemberState::kQuarantined) ++n;
    return n;
  }

  /// Checkpoint state: census totals plus per-receiver signal counts and
  /// troubled/excluded flags (the inputs to every pthresh decision).
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("receivers", rcvrs_.size());
    s.put("num_troubled", num_troubled_);
    s.put("total_signals", total_signals_);
    std::uint64_t excluded = 0;
    std::uint64_t troubled_mask = 0;
    for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
      if (rcvrs_[i].state == MemberState::kQuarantined ||
          rcvrs_[i].state == MemberState::kExcluded)
        ++excluded;
      if (rcvrs_[i].troubled && i < 64) troubled_mask |= (1ULL << i);
    }
    s.put("excluded", excluded);
    s.put("troubled_mask", troubled_mask);
    s.put("quarantines", quarantines_);
    return s;
  }

 private:
  struct Rcvr {
    stats::Ewma interval;
    sim::SimTime last_signal = sim::kNever;
    std::uint64_t signals = 0;        // lifetime count (observability)
    std::uint64_t epoch_signals = 0;  // since join / last rejoin (census)
    bool troubled = false;
    MemberState state = MemberState::kActive;
    sim::SimTime state_until = 0.0;  // quarantine/probation expiry
    int strikes = 0;

    explicit Rcvr(double gain) : interval(gain) {}
  };

  /// Median rate check for `i` after a fresh signal; quarantines on
  /// violation.  Defense-enabled path only.
  void rate_check(int i, sim::SimTime now);
  void quarantine(int i, sim::SimTime now);

  double eta_;
  double gain_;
  CensusDefenseParams defense_{};
  std::vector<Rcvr> rcvrs_;
  std::vector<double> interval_scratch_;  // rate_check median workspace
  int num_troubled_ = 0;
  std::uint64_t total_signals_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t strikeouts_ = 0;
};

}  // namespace rlacast::cc
