// The rate-based analogue of cc::Window, shared by the baselines/ senders:
// a rate in packets/s that rises linearly between congestion decisions and
// halves on one, with a refractory dead time between halvings and a clamp
// to [min_rate, max_rate]. Subsumes the rate arithmetic LTRC, MBFC, and
// the random-listening rate controller used to each carry privately — the
// baselines differ only in the cut *decision*, exactly as the window-based
// controllers differ only in their LossResponsePolicy.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace rlacast::cc {

struct AimdRateParams {
  double initial_rate = 10.0;  // packets/s
  double min_rate = 0.5;
  double max_rate = 1e6;
  /// Minimum time between two halvings.
  sim::SimTime dead_time = 2.0;
};

class AimdRate {
 public:
  explicit AimdRate(const AimdRateParams& p) : p_(p), rate_(p.initial_rate) {}

  double rate() const { return rate_; }
  std::uint64_t cuts() const { return cuts_; }
  sim::SimTime last_cut() const { return last_cut_; }

  /// Halves the rate unless a previous cut is still within the dead time.
  /// Returns whether the cut was applied.
  bool try_cut(sim::SimTime now);

  /// Additive increase by `delta` packets/s (clamped).
  void increase(double delta);

  /// Direct override for tests; clamps to [min_rate, max_rate].
  void set_rate(double r);

 private:
  AimdRateParams p_;
  double rate_;
  sim::SimTime last_cut_ = -1e18;
  std::uint64_t cuts_ = 0;
};

}  // namespace rlacast::cc
