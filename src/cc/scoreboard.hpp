// Sender-side SACK scoreboard.
//
// Tracks, for every outstanding packet in [una, high), whether it has been
// selectively acknowledged, declared lost, or retransmitted — the state
// needed for SACK-based loss detection (a packet is lost once dupthresh
// packets above it have been SACKed; the paper uses the same rule: "at least
// three higher"), for the pipe estimate used during recovery, and for Karn's
// rule when taking RTT samples.
//
// Shared by the TCP sender and (one instance per receiver) the RLA sender.
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.hpp"

namespace rlacast::cc {

class Scoreboard {
 public:
  /// Lowest outstanding sequence number (cumulative ACK point).
  net::SeqNum una() const { return una_; }

  /// Next sequence number after the highest transmitted one.
  net::SeqNum high() const { return high_; }

  /// Registers transmission of a new packet (must be == high()).
  void on_send(net::SeqNum seq);

  /// Registers a retransmission of an outstanding packet.
  void on_retransmit(net::SeqNum seq);

  /// Forgets that `seq` was retransmitted, making it eligible for
  /// next_to_retransmit() again — used when a retransmission is itself
  /// presumed lost (no ACK within an RTO of the repair).
  void clear_retransmitted(net::SeqNum seq);

  /// Advances the cumulative point; forgets state below it.
  /// Returns the number of packets newly acknowledged.
  std::int64_t advance(net::SeqNum new_una);

  /// Applies SACK blocks. Returns the number of newly SACKed packets.
  int apply_sack(const net::SackBlock* blocks, int n_blocks);

  /// Marks as lost every unSACKed packet with >= dupthresh SACKed packets
  /// above it. Returns the number of packets newly marked.
  int detect_losses(int dupthresh);

  /// Marks every unSACKed outstanding packet as lost and clears their
  /// retransmitted flags (RTO recovery restarts from scratch).
  void mark_all_lost();

  bool is_sacked(net::SeqNum seq) const;
  bool is_lost(net::SeqNum seq) const;
  bool was_retransmitted(net::SeqNum seq) const;

  /// First unSACKed sequence at or above una (the receiver's true
  /// reassembly point once SACKed data above a hole is accounted for).
  /// Amortized O(1): a SACK flag never reverts while the packet is
  /// outstanding, so the scan cursor only ever moves forward.  Without the
  /// cursor this walk is O(hole span) per call, and a receiver whose
  /// cumulative point is pinned (a misbehaving frozen-ACK coalition, or
  /// simply a very long recovery) grows that span without bound — the
  /// reach-all aggregate consults first_missing on every ACK.
  net::SeqNum first_missing() const;

  /// Lowest lost-and-not-yet-retransmitted packet; kNoSeq if none.
  net::SeqNum next_to_retransmit() const;

  /// Conservation-of-packets estimate of the number in flight:
  /// outstanding, not SACKed, and (not lost or retransmitted).
  /// Maintained incrementally — O(1) — because the RLA sender consults one
  /// pipe per receiver on every send decision.
  std::int64_t pipe() const { return pipe_; }

  /// Number of outstanding packets (high - una).
  std::int64_t outstanding() const { return high_ - una_; }

  std::int64_t sacked_count() const { return sacked_count_; }
  std::int64_t lost_count() const { return lost_count_; }
  std::int64_t rexmit_count() const { return rexmit_count_; }

  /// True when no outstanding packet carries any SACK/loss/retransmit mark —
  /// i.e. the board holds no information beyond (una, high).  The RLA
  /// sender's receiver table reclaims materialized boards in this state
  /// back to the compact per-receiver representation.
  bool clean() const {
    return sacked_count_ == 0 && lost_count_ == 0 && rexmit_count_ == 0;
  }

  /// Resident bytes: per-packet map nodes plus the object itself.  The map
  /// node estimate (key/value + 3 pointers + color) matches libstdc++'s
  /// _Rb_tree_node layout closely enough for the scale benches.
  std::size_t state_bytes() const {
    return sizeof(*this) + pkts_.size() * (sizeof(net::SeqNum) + sizeof(State) +
                                           4 * sizeof(void*));
  }

  /// Drops all per-packet state (session restart in tests).
  void reset(net::SeqNum next_seq);

 private:
  struct State {
    bool sacked = false;
    bool lost = false;
    bool rexmitted = false;
  };

  /// In-pipe predicate: not SACKed and (not lost, or repaired).
  static bool in_pipe(const State& st) {
    return !st.sacked && (!st.lost || st.rexmitted);
  }

  std::map<net::SeqNum, State> pkts_;  // only seqs in [una_, high_)
  net::SeqNum una_ = 0;
  net::SeqNum high_ = 0;
  mutable net::SeqNum fm_cursor_ = 0;  // first_missing scan cursor
  std::int64_t sacked_count_ = 0;
  std::int64_t lost_count_ = 0;  // lost and not SACKed since
  std::int64_t rexmit_count_ = 0;  // entries with the rexmitted flag set
  std::int64_t pipe_ = 0;
};

}  // namespace rlacast::cc
