// Congestion-signal grouping: both controllers honour at most one signal
// per "buffer period", they just define the period differently.
//
//   * TCP (fast recovery): all losses below the recovery point — the send
//     frontier at cut time — belong to one episode; the next cut needs
//     una to pass that sequence number first.
//   * RLA (§3.3 rule 2): all losses from receiver i within grouping_rtts *
//     srtt_i of the congestion-period start are one signal; the next period
//     opens only strictly after that window.
//
// One SignalGrouper instance per signal source: the TCP sender holds one
// (sequence mode), the RLA sender one per receiver (time mode).
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rlacast::cc {

class SignalGrouper {
 public:
  // --- sequence-window episodes (TCP fast recovery) ------------------------
  bool in_episode() const { return in_episode_; }
  net::SeqNum episode_end() const { return recovery_point_; }

  /// Closes the episode once the cumulative point passes the recovery
  /// point. Call before consulting in_episode() on an ACK.
  void refresh(net::SeqNum una) {
    if (in_episode_ && una >= recovery_point_) in_episode_ = false;
  }

  /// Opens a new episode ending at the current send frontier.
  void open_episode(net::SeqNum high) {
    in_episode_ = true;
    recovery_point_ = high;
  }

  /// Unconditional close (RTO recovery abandons the episode).
  void close_episode() { in_episode_ = false; }

  // --- time-window periods (RLA §3.3 rule 2) -------------------------------
  /// Returns true — and starts a new congestion period at `now` — iff `now`
  /// lies strictly beyond the previous period's grouping window of length
  /// `span` (= grouping_rtts * srtt_i). Otherwise the loss joins the
  /// current period's single signal.
  bool try_open_period(sim::SimTime now, sim::SimTime span) {
    if (now <= period_start_ + span) return false;
    period_start_ = now;
    return true;
  }

  sim::SimTime period_start() const { return period_start_; }

 private:
  bool in_episode_ = false;
  net::SeqNum recovery_point_ = 0;
  sim::SimTime period_start_ = -1e18;  // far in the past
};

}  // namespace rlacast::cc
