#include "cc/aimd_rate.hpp"

#include <algorithm>

namespace rlacast::cc {

void AimdRate::set_rate(double r) {
  rate_ = std::clamp(r, p_.min_rate, p_.max_rate);
}

bool AimdRate::try_cut(sim::SimTime now) {
  if (now - last_cut_ < p_.dead_time) return false;
  set_rate(rate_ / 2.0);
  last_cut_ = now;
  ++cuts_;
  return true;
}

void AimdRate::increase(double delta) { set_rate(rate_ + delta); }

}  // namespace rlacast::cc
