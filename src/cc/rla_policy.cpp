#include "cc/rla_policy.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::cc {

double RlaPolicy::pthresh(double srtt_i, double srtt_max) const {
  if (p_.fixed_pthresh >= 0.0) return p_.fixed_pthresh;
  const int n = std::max(census_.num_troubled(), 1);
  double f = 1.0;
  if (p_.rtt_exponent > 0.0) {
    if (srtt_max > 0.0) {
      const double x = std::clamp(srtt_i / srtt_max, 0.0, 1.0);
      f = std::pow(x, p_.rtt_exponent);
    }
  }
  // The fairness weight divides the listening probability (w emulated
  // flows each hear 1/w of the signals aimed at the aggregate).
  return std::clamp(f / (static_cast<double>(n) * p_.fairness_weight),
                    0.0, 1.0);
}

CutAction RlaPolicy::on_signal(const SignalContext& ctx) {
  // Rule 3, step 1: rare losses from untroubled receivers are ignored.
  if (!census_.troubled(ctx.receiver)) return CutAction::kNone;

  // Step 2: forced-cut — protect against arbitrarily long cut-free runs.
  const double guard_srtt =
      p_.rtt_exponent > 0.0 ? ctx.srtt_max : ctx.srtt;
  if (ctx.now - ctx.last_cut > p_.forced_cut_factor * ctx.awnd * guard_srtt)
    return CutAction::kForcedHalve;

  // Step 3: randomized-cut — listen with probability pthresh. The draw
  // happens exactly here and nowhere else, so the listening RNG stream is
  // consumed once per non-forced troubled signal (byte-identical replay
  // depends on this).
  if (rng_.uniform() <= pthresh(ctx.srtt, ctx.srtt_max))
    return CutAction::kHalve;
  return CutAction::kNone;
}

CutAction RlaPolicy::on_timeout(bool repeated_stall) {
  return repeated_stall ? CutAction::kCollapse : CutAction::kHalve;
}

}  // namespace rlacast::cc
