#include "cc/scoreboard.hpp"

#include <cassert>

namespace rlacast::cc {

void Scoreboard::on_send(net::SeqNum seq) {
  assert(seq == high_ && "new packets must be sent in order");
  pkts_.emplace(seq, State{});
  high_ = seq + 1;
  ++pipe_;  // fresh packet: unSACKed, not lost
}

void Scoreboard::on_retransmit(net::SeqNum seq) {
  auto it = pkts_.find(seq);
  if (it == pkts_.end()) return;
  const bool was_in_pipe = in_pipe(it->second);
  if (!it->second.rexmitted) ++rexmit_count_;
  it->second.rexmitted = true;
  if (!was_in_pipe && in_pipe(it->second)) ++pipe_;  // repair re-enters
}

void Scoreboard::clear_retransmitted(net::SeqNum seq) {
  auto it = pkts_.find(seq);
  if (it == pkts_.end()) return;
  const bool was_in_pipe = in_pipe(it->second);
  if (it->second.rexmitted) --rexmit_count_;
  it->second.rexmitted = false;
  if (was_in_pipe && !in_pipe(it->second)) --pipe_;  // presumed lost again
}

std::int64_t Scoreboard::advance(net::SeqNum new_una) {
  if (new_una <= una_) return 0;
  const std::int64_t n = new_una - una_;
  auto it = pkts_.begin();
  while (it != pkts_.end() && it->first < new_una) {
    if (it->second.sacked) --sacked_count_;
    if (it->second.lost && !it->second.sacked) --lost_count_;
    if (it->second.rexmitted) --rexmit_count_;
    if (in_pipe(it->second)) --pipe_;
    it = pkts_.erase(it);
  }
  una_ = new_una;
  if (high_ < una_) high_ = una_;
  return n;
}

int Scoreboard::apply_sack(const net::SackBlock* blocks, int n_blocks) {
  int newly = 0;
  for (int b = 0; b < n_blocks; ++b) {
    // One ordered walk per block instead of a map lookup per sequence: a
    // block re-covering an already-SACKed span (every ACK from a receiver
    // in a long recovery does this) costs a pointer chase per node, not a
    // tree search per sequence.
    const auto lo = pkts_.lower_bound(std::max(blocks[b].lo, una_));
    for (auto it = lo; it != pkts_.end() && it->first < blocks[b].hi; ++it) {
      if (it->second.sacked) continue;
      if (in_pipe(it->second)) --pipe_;  // SACKed packets leave the pipe
      it->second.sacked = true;
      ++sacked_count_;
      if (it->second.lost) --lost_count_;  // spurious loss mark
      ++newly;
    }
  }
  return newly;
}

int Scoreboard::detect_losses(int dupthresh) {
  // Walk from the top, counting SACKed packets above the cursor; everything
  // below the dupthresh-th SACKed packet that is itself unSACKed is lost.
  int newly = 0;
  int sacked_above = 0;
  for (auto it = pkts_.rbegin(); it != pkts_.rend(); ++it) {
    if (it->second.sacked) {
      ++sacked_above;
      continue;
    }
    if (sacked_above >= dupthresh && !it->second.lost) {
      const bool was_in_pipe = in_pipe(it->second);
      it->second.lost = true;
      ++lost_count_;
      ++newly;
      if (was_in_pipe && !in_pipe(it->second)) --pipe_;
    }
  }
  return newly;
}

void Scoreboard::mark_all_lost() {
  for (auto& [seq, st] : pkts_) {
    if (st.sacked) continue;
    const bool was_in_pipe = in_pipe(st);
    if (!st.lost) {
      st.lost = true;
      ++lost_count_;
    }
    if (st.rexmitted) --rexmit_count_;
    st.rexmitted = false;
    if (was_in_pipe && !in_pipe(st)) --pipe_;
  }
}

bool Scoreboard::is_sacked(net::SeqNum seq) const {
  const auto it = pkts_.find(seq);
  return it != pkts_.end() && it->second.sacked;
}

net::SeqNum Scoreboard::first_missing() const {
  if (fm_cursor_ < una_) fm_cursor_ = una_;
  while (fm_cursor_ < high_) {
    const auto it = pkts_.find(fm_cursor_);
    if (it == pkts_.end() || !it->second.sacked) break;
    ++fm_cursor_;
  }
  return fm_cursor_;
}

bool Scoreboard::is_lost(net::SeqNum seq) const {
  const auto it = pkts_.find(seq);
  return it != pkts_.end() && it->second.lost;
}

bool Scoreboard::was_retransmitted(net::SeqNum seq) const {
  const auto it = pkts_.find(seq);
  return it != pkts_.end() && it->second.rexmitted;
}

net::SeqNum Scoreboard::next_to_retransmit() const {
  for (const auto& [seq, st] : pkts_)
    if (st.lost && !st.sacked && !st.rexmitted) return seq;
  return net::kNoSeq;
}

void Scoreboard::reset(net::SeqNum next_seq) {
  pkts_.clear();
  una_ = high_ = next_seq;
  fm_cursor_ = next_seq;  // pooled boards get reused at lower sequences
  sacked_count_ = lost_count_ = rexmit_count_ = 0;
  pipe_ = 0;
}

}  // namespace rlacast::cc
