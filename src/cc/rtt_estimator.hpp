// Jacobson/Karels round-trip-time estimation and RTO computation,
// with Karn's rule applied by the caller (samples from retransmitted
// packets are never fed in).
//
// This is the single estimator both the TCP sender (one instance) and the
// RLA sender (one instance per receiver) use; RttEstimatorParams is the one
// place the shared defaults live, so a tuning change cannot silently
// diverge the two controllers.
#pragma once

#include <algorithm>

#include "replay/snapshot.hpp"
#include "sim/time.hpp"

namespace rlacast::cc {

struct RttEstimatorParams {
  double alpha = 0.125;  // srtt gain (RFC 6298)
  double beta = 0.25;    // rttvar gain
  sim::SimTime min_rto = 0.2;
  sim::SimTime max_rto = 64.0;
  sim::SimTime initial_rto = 3.0;
};

class RttEstimator : public replay::Snapshotable {
 public:
  explicit RttEstimator(RttEstimatorParams p = {}) : p_(p), rto_(p.initial_rto) {}

  void add_sample(sim::SimTime rtt) {
    if (!valid_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2.0;
      valid_ = true;
    } else {
      rttvar_ += p_.beta * (std::abs(srtt_ - rtt) - rttvar_);
      srtt_ += p_.alpha * (rtt - srtt_);
    }
    rto_ = std::clamp(srtt_ + 4.0 * rttvar_, p_.min_rto, p_.max_rto);
    backoff_ = 1.0;
  }

  /// Exponential backoff after a retransmission timeout.
  void back_off() { backoff_ = std::min(backoff_ * 2.0, 64.0); }

  /// Clears the backoff without a new sample — called on forward progress
  /// (cumulative ACK advance), since Karn's rule blocks samples from
  /// retransmitted packets and would otherwise pin the timer at its
  /// backed-off value after a timeout-driven recovery.
  void reset_backoff() { backoff_ = 1.0; }

  sim::SimTime rto() const {
    return std::min(rto_ * backoff_, p_.max_rto);
  }
  sim::SimTime srtt() const { return valid_ ? srtt_ : p_.initial_rto / 2.0; }
  sim::SimTime rttvar() const { return rttvar_; }
  bool valid() const { return valid_; }

  /// Checkpoint state: the full estimator (bit-exact doubles), so RTT
  /// sample reordering between runs is caught at the next checkpoint.
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("valid", valid_);
    s.put("srtt", srtt_);
    s.put("rttvar", rttvar_);
    s.put("rto", rto_);
    s.put("backoff", backoff_);
    return s;
  }

 private:
  RttEstimatorParams p_;
  bool valid_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_;
  double backoff_ = 1.0;
};

}  // namespace rlacast::cc
