// The Random Listening Algorithm's loss response (§3.3 rule 3), as a
// cc::LossResponsePolicy.
//
// On a grouped signal from receiver i:
//   1. skip if i is not in the troubled census (rare loss);
//   2. forced-cut if the last cut is more than forced_cut_factor * awnd *
//      guard_srtt in the past — guard_srtt is srtt_i for the original RLA,
//      but srtt_max under the generalized pthresh (k > 0), where a
//      short-RTT receiver signalling often would otherwise bypass the
//      f(srtt_i/srtt_max) discount rule 3 just applied;
//   3. otherwise listen with probability
//        pthresh = f(srtt_i / srtt_max) / (num_trouble_rcvr * w),
//      f(x) = x^k. k = 0 is the paper's equal-RTT RLA (pthresh = 1/n);
//      k = 2 is the generalized RLA of §5.3; w is the fairness weight.
//
// Timeouts: first expiry for a stalled packet is a tail-loss probe (halve);
// a repeated stall on the same packet collapses TCP-style.
//
// The policy draws from the sender's dedicated listening RNG stream and
// reads (never writes) the sender's TroubledCensus; both are borrowed by
// reference, so constructing a policy allocates nothing.
#pragma once

#include "cc/loss_policy.hpp"
#include "cc/troubled_census.hpp"
#include "sim/random.hpp"

namespace rlacast::cc {

struct RlaPolicyParams {
  double forced_cut_factor = 2.0;
  double rtt_exponent = 0.0;  // k of f(x) = x^k
  double fairness_weight = 1.0;
  double fixed_pthresh = -1.0;  // >= 0 overrides the formula (ablation)
};

class RlaPolicy final : public LossResponsePolicy {
 public:
  RlaPolicy(const RlaPolicyParams& p, const TroubledCensus& census,
            sim::Rng& listen_rng)
      : p_(p), census_(census), rng_(listen_rng) {}

  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 1.0; }

  /// The current listening probability for a receiver with smoothed RTT
  /// `srtt_i` (pure; exposed for observability and direct unit tests).
  double pthresh(double srtt_i, double srtt_max) const;

 private:
  RlaPolicyParams p_;
  const TroubledCensus& census_;
  sim::Rng& rng_;
};

}  // namespace rlacast::cc
