// Delay-based congestion control (Vegas-style srtt-gradient), the modern
// competitor ROADMAP item 3 calls for (PAPERS.md: "Achieving Fair Network
// Equilibria with Delay-based Congestion Control Algorithms").
//
// Two cooperating pieces, mirroring the split every controller in the repo
// uses:
//
//   DelayGradient      — the once-per-RTT estimation core: tracks the
//                        minimum observed RTT (base_rtt, the propagation
//                        estimate) and computes the Vegas backlog
//                        diff = cwnd * (rtt - base_rtt) / rtt — the number
//                        of packets the flow keeps queued at the
//                        bottleneck.  diff < alpha -> grow, diff > beta ->
//                        shrink, otherwise hold.
//   DelayBasedPolicy   — the cc::LossResponsePolicy half: delay-based
//                        senders still halve on a genuine loss episode and
//                        collapse on a timeout (Vegas keeps Reno's loss
//                        reaction as its safety net); it exists as its own
//                        class so benches and tests can tell the competitor
//                        apart from TcpSackPolicy.
//
// Both are plain objects: no allocation, no RNG draws (determinism guard:
// a delay-based sender must consume exactly zero randomness beyond its send
// pacer — cc_policy_test pins this).
#pragma once

#include "cc/loss_policy.hpp"
#include "sim/time.hpp"

namespace rlacast::cc {

struct DelayGradientParams {
  double alpha = 2.0;  // grow while backlog < alpha packets
  double beta = 4.0;   // shrink once backlog > beta packets
  /// Slow-start exit: leave exponential growth once backlog exceeds gamma.
  double gamma = 1.0;
};

/// The once-per-RTT Vegas decision core. The owning sender feeds it clean
/// RTT samples (Karn-filtered, like the RttEstimator) plus the current
/// cwnd, and asks for a verdict once per window of data.
class DelayGradient {
 public:
  enum class Verdict { kHold, kIncrease, kDecrease };

  explicit DelayGradient(DelayGradientParams p = {}) : p_(p) {}

  /// Feeds one clean RTT sample (seconds). Keeps the running minimum as the
  /// propagation estimate and the latest sample as the congestion signal.
  void add_sample(sim::SimTime rtt) {
    if (!valid_ || rtt < base_rtt_) base_rtt_ = rtt;
    last_rtt_ = rtt;
    valid_ = true;
  }

  /// Estimated bottleneck backlog in packets at window `cwnd`:
  /// diff = cwnd * (rtt - base_rtt) / rtt (Vegas eq. with expected =
  /// cwnd/base_rtt, actual = cwnd/rtt, scaled by base_rtt).
  double backlog(double cwnd) const {
    if (!valid_ || last_rtt_ <= 0.0) return 0.0;
    return cwnd * (last_rtt_ - base_rtt_) / last_rtt_;
  }

  /// The once-per-RTT congestion-avoidance decision.
  Verdict decide(double cwnd) const {
    if (!valid_) return Verdict::kHold;
    const double diff = backlog(cwnd);
    if (diff < p_.alpha) return Verdict::kIncrease;
    if (diff > p_.beta) return Verdict::kDecrease;
    return Verdict::kHold;
  }

  /// Whether slow start should end: backlog beyond gamma means the pipe is
  /// full and exponential growth would only build queue.
  bool slow_start_done(double cwnd) const {
    return valid_ && backlog(cwnd) > p_.gamma;
  }

  bool valid() const { return valid_; }
  sim::SimTime base_rtt() const { return base_rtt_; }
  sim::SimTime last_rtt() const { return last_rtt_; }

  /// Base-RTT refresh after a route change or long idle (unused by the
  /// benches; exposed for completeness and tests).
  void reset() { valid_ = false; }

 private:
  DelayGradientParams p_;
  bool valid_ = false;
  sim::SimTime base_rtt_ = 0.0;
  sim::SimTime last_rtt_ = 0.0;
};

/// Loss response of the delay-based sender: Vegas keeps TCP's reaction to
/// actual loss (halve per episode, collapse on timeout) — the delay
/// gradient only replaces the *probing*, not the safety net.
class DelayBasedPolicy final : public LossResponsePolicy {
 public:
  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 2.0; }
};

}  // namespace rlacast::cc
