// The congestion window shared by every window-based sender in the repo.
//
// The paper's central framing (§3.3) is that RLA is "TCP-like in its window
// dynamics": the two controllers differ only in WHICH congestion signals
// they obey, never in how the window grows, halves, or clamps. This class
// is that guarantee made structural — slow start, the congestion-avoidance
// increment (including the fairness_weight generalization), the
// multiplicative cut, ssthresh management, and the [1, max_cwnd] clamp
// exist exactly once, here.
//
// Numerical contract: grow(n) performs n sequential per-ACK increments and
// clamps once at the end. For n == 1 (TCP: one increment per ACK) this is
// bit-identical to the historical increment-then-clamp; for n > 1 (RLA:
// one batch per reach-all advance) it reproduces the historical
// accumulate-then-clamp loop. Do not "optimize" the loop into a closed
// form — byte-identical bench output depends on the FP operation order.
#pragma once

#include <cstdint>

#include "replay/snapshot.hpp"

namespace rlacast::cc {

struct WindowParams {
  double initial_cwnd = 1.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 1e6;  // receiver window, packets
  /// Scales the congestion-avoidance increment (w emulated flows probe w
  /// packets per RTT, MulTCP-style). 1.0 = plain TCP / the paper's RLA.
  double fairness_weight = 1.0;
};

class Window : public replay::Snapshotable {
 public:
  explicit Window(const WindowParams& p)
      : p_(p), cwnd_(p.initial_cwnd), ssthresh_(p.initial_ssthresh) {}

  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  const WindowParams& params() const { return p_; }

  /// Applies `newly_acked` per-ACK growth steps: +1 in slow start,
  /// +fairness_weight/floor(cwnd) in congestion avoidance.
  void grow(std::int64_t newly_acked);

  /// Multiplicative decrease: ssthresh = max(cwnd/2, 2) and
  /// cwnd = max(cwnd/2, cwnd_floor). TCP recovery uses floor 2 (the window
  /// lands on ssthresh); RLA's randomized/forced cut uses floor 1.
  void halve(double cwnd_floor);

  /// Timeout collapse: ssthresh = max(cwnd/2, 2), cwnd = 1 (slow-start
  /// restart).
  void collapse_to_one();

  /// Direct override for tests and ablations; clamps to [1, max_cwnd].
  void set_cwnd(double w);

  /// Checkpoint state: the window doubles bit-exact, so a single FP
  /// reordering anywhere in the growth path shows up here.
  replay::Snapshot snapshot_state() const override {
    replay::Snapshot s;
    s.put("cwnd", cwnd_);
    s.put("ssthresh", ssthresh_);
    return s;
  }

 private:
  void clamp();

  WindowParams p_;
  double cwnd_;
  double ssthresh_;
};

}  // namespace rlacast::cc
