#include "cc/delay_policy.hpp"

namespace rlacast::cc {

CutAction DelayBasedPolicy::on_signal(const SignalContext& ctx) {
  (void)ctx;  // loss and ECN echo alike: one halving per episode
  return CutAction::kHalve;
}

CutAction DelayBasedPolicy::on_timeout(bool repeated_stall) {
  (void)repeated_stall;
  return CutAction::kCollapse;
}

}  // namespace rlacast::cc
