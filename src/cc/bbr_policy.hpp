// BBR-style model-based rate control — the second modern competitor of
// ROADMAP item 3 (exemplar: /root/related/rohithsaji__TCP-BBRv1/).
//
// This is NOT a line-for-line BBRv1: it is the model-based *shape* of BBR
// reduced to what the discrete-event benches need, built on the repo's
// shared pieces (cc::AimdRate holds the pacing rate, cc::LossResponsePolicy
// carries the loss reaction):
//
//   * bandwidth model — windowed maximum of per-ACK delivery-rate samples
//     (delivered-count delta / elapsed, BBR's rate-sample idea) over the
//     last bw_window_rtts RTT rounds;
//   * propagation model — windowed minimum RTT over min_rtt_window seconds;
//   * gain cycling — ProbeBW rotates pacing gain through
//     [1.25, 0.75, 1, 1, 1, 1, 1, 1], one phase per min_rtt, after a
//     Startup phase (gain 2/ln2) that exits when bandwidth stops growing
//     for 3 consecutive rounds, followed by one Drain phase;
//   * cwnd cap — cwnd_gain x estimated BDP, the model's in-flight ceiling.
//
// Losses do not move the model (BBR ignores isolated loss by design —
// exactly the behaviour the fairness benches are probing); only a repeated
// retransmission-timeout stall collapses the window, and the model restarts
// from the next delivery samples.
//
// Deterministic: no RNG draws anywhere (the phase rotation is clocked by
// min_rtt, not randomized — one less stream to journal).
#pragma once

#include <array>
#include <cstdint>

#include "cc/aimd_rate.hpp"
#include "cc/loss_policy.hpp"
#include "sim/time.hpp"

namespace rlacast::cc {

struct BbrParams {
  int bw_window_rtts = 10;          // max-filter length, in RTT rounds
  sim::SimTime min_rtt_window = 10.0;  // min-filter length, seconds
  double cwnd_gain = 2.0;           // in-flight cap = gain * BDP
  double startup_gain = 2.885;      // 2/ln2: fill the pipe in log2 rounds
  double drain_gain = 0.3465;       // 1/startup_gain: drain the queue
  /// Startup exits when bandwidth grew less than this factor for
  /// startup_full_bw_rounds consecutive rounds.
  double startup_growth_thresh = 1.25;
  int startup_full_bw_rounds = 3;
  double initial_rate_pps = 10.0;   // pacing rate before the first sample
  double min_rate_pps = 0.5;
  double max_rate_pps = 1e9;
};

/// The bandwidth/propagation model plus the Startup/Drain/ProbeBW gain
/// plumbing. The owning sender feeds delivery-rate and RTT samples and
/// reads back pacing rate and cwnd cap; the pacing rate itself lives in a
/// cc::AimdRate so the rate arithmetic (clamping, observability) is the
/// same object the rate-based baselines use.
class BbrModel {
 public:
  enum class Mode : std::uint8_t { kStartup, kDrain, kProbeBw };

  explicit BbrModel(BbrParams p = {});

  /// One delivery-rate sample: `delivered_delta` packets acknowledged over
  /// `interval` seconds (computed by the sender from per-packet delivered
  /// counts, BBR's rate-sample), plus the accompanying clean RTT sample.
  void on_sample(sim::SimTime now, double delivered_delta,
                 sim::SimTime interval, sim::SimTime rtt);

  /// Round/phase bookkeeping: the sender calls this when a full window of
  /// data has been delivered (one "round trip" of the BBR state machine).
  void on_round(sim::SimTime now);

  /// Model outputs.
  double btlbw_pps() const { return btlbw_; }
  sim::SimTime min_rtt() const { return min_rtt_; }
  double pacing_gain() const;
  /// Current pacing rate in packets/s (gain * btlbw, via the AimdRate).
  double pacing_rate_pps() const { return pace_.rate(); }
  /// In-flight cap in packets: cwnd_gain * BDP (floored at 4 so the ACK
  /// clock can always restart).
  double cwnd_cap() const;
  Mode mode() const { return mode_; }
  int cycle_phase() const { return cycle_phase_; }
  const AimdRate& pace() const { return pace_; }

  /// Timeout collapse: forget the bandwidth model (the pipe evidently
  /// changed); min_rtt survives — propagation does not spike on loss.
  void reset_bw();

 private:
  void refresh_pace();

  BbrParams p_;
  AimdRate pace_;  // pacing-rate holder (rate-domain arithmetic + clamps)
  Mode mode_ = Mode::kStartup;

  // Windowed-max bandwidth filter: ring of per-round maxima.
  std::array<double, 16> bw_ring_{};
  int bw_head_ = 0;
  int bw_count_ = 0;
  double round_max_bw_ = 0.0;  // running max within the current round
  double btlbw_ = 0.0;

  // Windowed-min RTT filter (timestamped running minimum).
  sim::SimTime min_rtt_ = 0.0;
  sim::SimTime min_rtt_at_ = 0.0;
  bool min_rtt_valid_ = false;

  // Startup exit detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;

  // ProbeBW gain cycle.
  static constexpr std::array<double, 8> kCycleGains = {1.25, 0.75, 1.0, 1.0,
                                                        1.0,  1.0,  1.0, 1.0};
  int cycle_phase_ = 0;
  sim::SimTime phase_started_ = 0.0;
};

/// Loss response of the BBR-style sender: a grouped loss episode does NOT
/// cut the window (the model, not loss, sets the rate) — but the sender
/// still retransmits, and a repeated timeout stall collapses to restart
/// the ACK clock.
class BbrRatePolicy final : public LossResponsePolicy {
 public:
  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 2.0; }
};

}  // namespace rlacast::cc
