#include "cc/loss_policy.hpp"

#include "cc/window.hpp"

namespace rlacast::cc {

bool apply_cut_action(Window& win, const LossResponsePolicy& policy,
                      CutAction action) {
  switch (action) {
    case CutAction::kNone:
      return false;
    case CutAction::kHalve:
    case CutAction::kForcedHalve:
      win.halve(policy.halve_floor());
      return true;
    case CutAction::kCollapse:
      win.collapse_to_one();
      return true;
  }
  return false;
}

CutAction TcpSackPolicy::on_signal(const SignalContext& ctx) {
  (void)ctx;
  return CutAction::kHalve;
}

CutAction TcpSackPolicy::on_timeout(bool repeated_stall) {
  (void)repeated_stall;  // TCP treats every RTO as a full collapse
  return CutAction::kCollapse;
}

CutAction TcpRenoPolicy::on_signal(const SignalContext& ctx) {
  (void)ctx;
  return CutAction::kHalve;
}

CutAction TcpRenoPolicy::on_timeout(bool repeated_stall) {
  (void)repeated_stall;
  return CutAction::kCollapse;
}

CutAction TcpTahoePolicy::on_signal(const SignalContext& ctx) {
  return ctx.from_ecn ? CutAction::kHalve : CutAction::kCollapse;
}

CutAction TcpTahoePolicy::on_timeout(bool repeated_stall) {
  (void)repeated_stall;
  return CutAction::kCollapse;
}

}  // namespace rlacast::cc
