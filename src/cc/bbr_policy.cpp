#include "cc/bbr_policy.hpp"

#include <algorithm>

namespace rlacast::cc {

BbrModel::BbrModel(BbrParams p)
    : p_(p),
      pace_(AimdRateParams{.initial_rate = p.initial_rate_pps,
                           .min_rate = p.min_rate_pps,
                           .max_rate = p.max_rate_pps,
                           .dead_time = 0.0}) {}

void BbrModel::on_sample(sim::SimTime now, double delivered_delta,
                         sim::SimTime interval, sim::SimTime rtt) {
  if (delivered_delta > 0.0 && interval > 0.0)
    round_max_bw_ = std::max(round_max_bw_, delivered_delta / interval);
  if (rtt > 0.0) {
    if (!min_rtt_valid_ || rtt <= min_rtt_ ||
        now - min_rtt_at_ > p_.min_rtt_window) {
      min_rtt_ = rtt;
      min_rtt_at_ = now;
      min_rtt_valid_ = true;
    }
  }
}

void BbrModel::on_round(sim::SimTime now) {
  // Commit this round's bandwidth maximum into the windowed-max ring.
  const int window = std::min<int>(p_.bw_window_rtts,
                                   static_cast<int>(bw_ring_.size()));
  bw_ring_[static_cast<std::size_t>(bw_head_)] = round_max_bw_;
  bw_head_ = (bw_head_ + 1) % window;
  bw_count_ = std::min(bw_count_ + 1, window);
  round_max_bw_ = 0.0;
  btlbw_ = 0.0;
  for (int i = 0; i < bw_count_; ++i)
    btlbw_ = std::max(btlbw_, bw_ring_[static_cast<std::size_t>(i)]);

  switch (mode_) {
    case Mode::kStartup:
      // Exit once bandwidth stops growing for N consecutive rounds.
      if (btlbw_ >= full_bw_ * p_.startup_growth_thresh) {
        full_bw_ = btlbw_;
        full_bw_rounds_ = 0;
      } else if (++full_bw_rounds_ >= p_.startup_full_bw_rounds) {
        mode_ = Mode::kDrain;
        phase_started_ = now;
      }
      break;
    case Mode::kDrain:
      // One drain round empties the startup queue, then steady probing.
      mode_ = Mode::kProbeBw;
      cycle_phase_ = 0;
      phase_started_ = now;
      break;
    case Mode::kProbeBw:
      // Rotate one gain phase per min_rtt (not per round: long-RTT rounds
      // already last >= min_rtt, short rounds batch up).
      if (min_rtt_valid_ && now - phase_started_ >= min_rtt_) {
        cycle_phase_ = (cycle_phase_ + 1) % static_cast<int>(kCycleGains.size());
        phase_started_ = now;
      }
      break;
  }
  refresh_pace();
}

double BbrModel::pacing_gain() const {
  switch (mode_) {
    case Mode::kStartup:
      return p_.startup_gain;
    case Mode::kDrain:
      return p_.drain_gain;
    case Mode::kProbeBw:
      return kCycleGains[static_cast<std::size_t>(cycle_phase_)];
  }
  return 1.0;
}

double BbrModel::cwnd_cap() const {
  if (btlbw_ <= 0.0 || !min_rtt_valid_) return 4.0;
  return std::max(4.0, p_.cwnd_gain * btlbw_ * min_rtt_);
}

void BbrModel::reset_bw() {
  bw_count_ = 0;
  bw_head_ = 0;
  round_max_bw_ = 0.0;
  btlbw_ = 0.0;
  full_bw_ = 0.0;
  full_bw_rounds_ = 0;
  mode_ = Mode::kStartup;
  refresh_pace();
}

void BbrModel::refresh_pace() {
  const double bw = btlbw_ > 0.0 ? btlbw_ : p_.initial_rate_pps;
  pace_.set_rate(pacing_gain() * bw);
}

CutAction BbrRatePolicy::on_signal(const SignalContext& ctx) {
  (void)ctx;  // the model, not loss, sets the rate
  return CutAction::kNone;
}

CutAction BbrRatePolicy::on_timeout(bool repeated_stall) {
  return repeated_stall ? CutAction::kCollapse : CutAction::kNone;
}

}  // namespace rlacast::cc
