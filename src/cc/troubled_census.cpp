#include "cc/troubled_census.hpp"

#include <algorithm>

namespace rlacast::cc {

int TroubledCensus::add_receiver() {
  rcvrs_.emplace_back(gain_);
  return static_cast<int>(rcvrs_.size()) - 1;
}

void TroubledCensus::on_signal(int i, sim::SimTime now) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.excluded) return;
  if (r.last_signal != sim::kNever) r.interval.add(now - r.last_signal);
  r.last_signal = now;
  ++r.signals;
  ++total_signals_;
}

void TroubledCensus::exclude(int i) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.troubled) --num_troubled_;
  r.troubled = false;
  r.excluded = true;
}

double TroubledCensus::effective_interval(int i, sim::SimTime now) const {
  const Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.excluded || r.signals == 0) return -1.0;
  const double since_last = now - r.last_signal;
  if (!r.interval.initialized()) return std::max(since_last, 1e-12);
  return std::max(r.interval.value(), since_last);
}

double TroubledCensus::min_interval(sim::SimTime now) const {
  double best = -1.0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    const double e = effective_interval(static_cast<int>(i), now);
    if (e < 0.0) continue;
    if (best < 0.0 || e < best) best = e;
  }
  return best;
}

int TroubledCensus::recompute(sim::SimTime now) {
  const double min_int = min_interval(now);
  num_troubled_ = 0;
  for (auto& r : rcvrs_) {
    r.troubled = false;
  }
  if (min_int < 0.0) return 0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    Rcvr& r = rcvrs_[i];
    if (r.excluded || r.signals == 0) continue;
    const double e = effective_interval(static_cast<int>(i), now);
    // The most-congested receiver satisfies e == min_int; the strict "<"
    // of the paper is made "<=" scaled so that it is always troubled.
    if (e <= eta_ * min_int) {
      r.troubled = true;
      ++num_troubled_;
    }
  }
  return num_troubled_;
}

}  // namespace rlacast::cc
