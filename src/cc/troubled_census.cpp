#include "cc/troubled_census.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::cc {

double robust_clamped_max(std::vector<double>& values, double k_mads) {
  if (values.empty()) return 0.0;
  const auto plain_max = *std::max_element(values.begin(), values.end());
  if (values.size() < 3 || k_mads <= 0.0) return plain_max;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double median = values[mid];
  // Absolute deviations reuse the same buffer (values is scratch).
  for (double& v : values) v = std::abs(v - median);
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double mad = values[mid];
  // MAD == 0 means a majority sits exactly at the median; clamp outliers all
  // the way back to it (a tiny slack keeps honest ties unaffected).
  const double hi = median + (mad > 0.0 ? k_mads * 1.4826 * mad : 1e-12);
  return std::min(plain_max, std::max(hi, median));
}

int TroubledCensus::add_receiver() {
  rcvrs_.emplace_back(gain_);
  return static_cast<int>(rcvrs_.size()) - 1;
}

void TroubledCensus::on_signal(int i, sim::SimTime now) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.state == MemberState::kQuarantined || r.state == MemberState::kExcluded)
    return;
  if (r.last_signal != sim::kNever) r.interval.add(now - r.last_signal);
  r.last_signal = now;
  ++r.signals;
  ++r.epoch_signals;
  ++total_signals_;
  if (defense_.enabled) rate_check(i, now);
}

void TroubledCensus::exclude(int i) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.troubled) --num_troubled_;
  r.troubled = false;
  r.state = MemberState::kExcluded;
}

void TroubledCensus::rate_check(int i, sim::SimTime now) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.epoch_signals < defense_.min_signals) return;
  const double mine = effective_interval(i, now);
  if (mine <= 0.0) return;
  // Median interval over the OTHER members still speaking for themselves.
  interval_scratch_.clear();
  for (std::size_t j = 0; j < rcvrs_.size(); ++j) {
    if (static_cast<int>(j) == i) continue;
    const Rcvr& o = rcvrs_[j];
    if (o.state == MemberState::kQuarantined || o.state == MemberState::kExcluded)
      continue;
    const double e = effective_interval(static_cast<int>(j), now);
    if (e > 0.0) interval_scratch_.push_back(e);
  }
  // With fewer than 2 honest peers there is no cohort to compare against.
  if (interval_scratch_.size() < 2) return;
  const std::size_t mid = interval_scratch_.size() / 2;
  std::nth_element(interval_scratch_.begin(),
                   interval_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   interval_scratch_.end());
  const double median = interval_scratch_[mid];
  const double factor = (r.state == MemberState::kProbation)
                            ? defense_.probation_rate_factor
                            : defense_.rate_factor;
  // Violation: signalling more than `factor` times faster than the median
  // peer.  The census minimum can be dragged by one liar; the median cannot.
  if (mine * factor < median) quarantine(i, now);
}

void TroubledCensus::quarantine(int i, sim::SimTime now) {
  Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.troubled) --num_troubled_;
  r.troubled = false;
  ++r.strikes;
  ++quarantines_;
  if (defense_.max_strikes > 0 && r.strikes >= defense_.max_strikes) {
    r.state = MemberState::kExcluded;
    ++strikeouts_;
    return;
  }
  r.state = MemberState::kQuarantined;
  // Escalating dwell: strike k serves quarantine_seconds * 2^(k-1).
  const double dwell =
      defense_.quarantine_seconds * std::ldexp(1.0, r.strikes - 1);
  r.state_until = now + dwell;
}

std::vector<int> TroubledCensus::advance_states(sim::SimTime now) {
  std::vector<int> rejoined;
  if (!defense_.enabled) return rejoined;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    Rcvr& r = rcvrs_[i];
    if (r.state == MemberState::kQuarantined && now >= r.state_until) {
      r.state = MemberState::kProbation;
      r.state_until = now + defense_.probation_seconds;
      // Fresh census epoch: history earned while lying must not survive
      // the rejoin (and a stale last_signal would poison the interval).
      r.interval = stats::Ewma(gain_);
      r.last_signal = sim::kNever;
      r.epoch_signals = 0;
      rejoined.push_back(static_cast<int>(i));
    } else if (r.state == MemberState::kProbation && now >= r.state_until) {
      r.state = MemberState::kActive;
    }
  }
  return rejoined;
}

double TroubledCensus::effective_interval(int i, sim::SimTime now) const {
  const Rcvr& r = rcvrs_[static_cast<std::size_t>(i)];
  if (r.state == MemberState::kQuarantined ||
      r.state == MemberState::kExcluded || r.epoch_signals == 0)
    return -1.0;
  const double since_last = now - r.last_signal;
  if (!r.interval.initialized()) return std::max(since_last, 1e-12);
  return std::max(r.interval.value(), since_last);
}

double TroubledCensus::min_interval(sim::SimTime now) const {
  double best = -1.0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    const double e = effective_interval(static_cast<int>(i), now);
    if (e < 0.0) continue;
    if (best < 0.0 || e < best) best = e;
  }
  return best;
}

int TroubledCensus::recompute(sim::SimTime now) {
  const double min_int = min_interval(now);
  num_troubled_ = 0;
  for (auto& r : rcvrs_) {
    r.troubled = false;
  }
  if (min_int < 0.0) return 0;
  for (std::size_t i = 0; i < rcvrs_.size(); ++i) {
    Rcvr& r = rcvrs_[i];
    if (r.state == MemberState::kQuarantined ||
        r.state == MemberState::kExcluded || r.epoch_signals == 0)
      continue;
    const double e = effective_interval(static_cast<int>(i), now);
    // The most-congested receiver satisfies e == min_int; the strict "<"
    // of the paper is made "<=" scaled so that it is always troubled.
    if (e <= eta_ * min_int) {
      r.troubled = true;
      ++num_troubled_;
    }
  }
  return num_troubled_;
}

}  // namespace rlacast::cc
