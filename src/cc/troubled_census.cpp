#include "cc/troubled_census.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::cc {

double robust_clamped_max(std::vector<double>& values, double k_mads) {
  if (values.empty()) return 0.0;
  const auto plain_max = *std::max_element(values.begin(), values.end());
  if (values.size() < 3 || k_mads <= 0.0) return plain_max;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double median = values[mid];
  // Absolute deviations reuse the same buffer (values is scratch).
  for (double& v : values) v = std::abs(v - median);
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double mad = values[mid];
  // MAD == 0 means a majority sits exactly at the median; clamp outliers all
  // the way back to it (a tiny slack keeps honest ties unaffected).
  const double hi = median + (mad > 0.0 ? k_mads * 1.4826 * mad : 1e-12);
  return std::min(plain_max, std::max(hi, median));
}

void TroubledCensus::configure_sampling(const CensusSampleParams& sampling) {
  sampling_ = sampling;
  if (sampling_.mode == CensusMode::kSampled) {
    // The slim (sparse-slot) member layout only engages when the mode is
    // chosen before members join; a late switch keeps the dense layout so
    // no per-member history is lost.
    if (core_.size() == 0) core_.set_slim(true);
    reservoir_.configure(sampling_.reservoir, sampling_.seed);
    for (std::size_t i = 0; i < core_.size(); ++i)
      if (!core_.excluded(static_cast<int>(i)))
        reservoir_.insert(static_cast<int>(i));
  }
}

int TroubledCensus::add_receiver() {
  const int idx = core_.add();
  ++active_count_;
  ++membership_version_;
  if (sampling_.mode == CensusMode::kSampled) reservoir_.insert(idx);
  return idx;
}

void TroubledCensus::membership_changed(int i, bool now_active) {
  ++membership_version_;
  active_count_ += now_active ? 1 : -1;
  if (sampling_.mode == CensusMode::kSampled) {
    if (now_active)
      reservoir_.insert(i);
    else
      reservoir_.erase(i, core_);
  }
}

void TroubledCensus::clear_troubled(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (core_.troubled[u] != 0) {
    core_.troubled[u] = 0;
    --num_troubled_;
  }
}

void TroubledCensus::set_troubled(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (core_.troubled[u] == 0) {
    core_.troubled[u] = 1;
    flagged_.push_back(i);
    ++num_troubled_;
  }
}

void TroubledCensus::on_signal(int i, sim::SimTime now) {
  if (core_.excluded(i)) return;
  core_.record_signal(i, now);
  ++total_signals_;
  last_signaller_ = i;
  if (defense_.enabled) rate_check(i, now);
}

void TroubledCensus::exclude(int i) {
  if (core_.state[static_cast<std::size_t>(i)] == MemberState::kExcluded)
    return;
  clear_troubled(i);
  const bool was_active = !core_.excluded(i);
  core_.state[static_cast<std::size_t>(i)] = MemberState::kExcluded;
  if (was_active) membership_changed(i, /*now_active=*/false);
}

void TroubledCensus::readmit(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (core_.state[u] != MemberState::kExcluded) return;
  core_.state[u] = MemberState::kActive;
  core_.reset_epoch(i);
  membership_changed(i, /*now_active=*/true);
}

void TroubledCensus::rate_check(int i, sim::SimTime now) {
  const auto u = static_cast<std::size_t>(i);
  if (core_.epoch_signal_count(i) < defense_.min_signals) return;
  const double mine = core_.effective_interval(i, now);
  if (mine <= 0.0) return;
  // Median interval over the OTHER members still speaking for themselves.
  // kSampled consults the reservoir cohort — the same members every other
  // census aggregate is estimated from.
  interval_scratch_.clear();
  if (sampling_.mode == CensusMode::kSampled) {
    for (const int j : reservoir_.sample()) {
      if (j == i) continue;
      const double e = core_.effective_interval(j, now);
      if (e > 0.0) interval_scratch_.push_back(e);
    }
  } else {
    for (std::size_t j = 0; j < core_.size(); ++j) {
      if (static_cast<int>(j) == i) continue;
      if (core_.excluded(static_cast<int>(j))) continue;
      const double e = core_.effective_interval(static_cast<int>(j), now);
      if (e > 0.0) interval_scratch_.push_back(e);
    }
  }
  // With fewer than 2 honest peers there is no cohort to compare against.
  if (interval_scratch_.size() < 2) return;
  const std::size_t mid = interval_scratch_.size() / 2;
  std::nth_element(interval_scratch_.begin(),
                   interval_scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   interval_scratch_.end());
  const double median = interval_scratch_[mid];
  const double factor =
      (core_.state[u] == MemberState::kProbation)
          ? defense_.probation_rate_factor
          : defense_.rate_factor;
  // Violation: signalling more than `factor` times faster than the median
  // peer.  The census minimum can be dragged by one liar; the median cannot.
  if (mine * factor < median) quarantine(i, now);
}

void TroubledCensus::quarantine(int i, sim::SimTime now) {
  const auto u = static_cast<std::size_t>(i);
  clear_troubled(i);
  const int strikes = core_.add_strike(i);
  ++quarantines_;
  if (defense_.max_strikes > 0 && strikes >= defense_.max_strikes) {
    core_.state[u] = MemberState::kExcluded;
    ++strikeouts_;
    membership_changed(i, /*now_active=*/false);
    return;
  }
  core_.state[u] = MemberState::kQuarantined;
  // Escalating dwell: strike k serves quarantine_seconds * 2^(k-1).
  const double dwell =
      defense_.quarantine_seconds * std::ldexp(1.0, strikes - 1);
  core_.set_state_until(i, now + dwell);
  next_state_check_ = std::min(next_state_check_, now + dwell);
  membership_changed(i, /*now_active=*/false);
}

void TroubledCensus::force_quarantine(int i, sim::SimTime now) {
  if (core_.excluded(i)) return;
  quarantine(i, now);
}

std::vector<int> TroubledCensus::advance_states(sim::SimTime now) {
  std::vector<int> rejoined;
  // The historical fast path: with the defense off and nothing ever
  // force-quarantined, there is no state machine to advance.
  if (!defense_.enabled && quarantines_ == 0) return rejoined;
  // Amortized O(1): skip the scan until the earliest pending expiry.
  if (now < next_state_check_) return rejoined;
  next_state_check_ = 1e18;
  for (std::size_t i = 0; i < core_.size(); ++i) {
    const int id = static_cast<int>(i);
    if (core_.state[i] == MemberState::kQuarantined &&
        now >= core_.state_until_of(id)) {
      core_.state[i] = MemberState::kProbation;
      core_.set_state_until(id, now + defense_.probation_seconds);
      // Fresh census epoch: history earned while lying must not survive
      // the rejoin (and a stale last_signal would poison the interval).
      core_.reset_epoch(id);
      membership_changed(id, /*now_active=*/true);
      rejoined.push_back(id);
    } else if (core_.state[i] == MemberState::kProbation &&
               now >= core_.state_until_of(id)) {
      core_.state[i] = MemberState::kActive;
    }
    if (core_.state[i] == MemberState::kQuarantined ||
        core_.state[i] == MemberState::kProbation)
      next_state_check_ = std::min(next_state_check_, core_.state_until_of(id));
  }
  return rejoined;
}

double TroubledCensus::min_interval(sim::SimTime now) const {
  double best = -1.0;
  if (sampling_.mode == CensusMode::kSampled) {
    for (const int i : reservoir_.sample()) {
      const double e = core_.effective_interval(i, now);
      if (e < 0.0) continue;
      if (best < 0.0 || e < best) best = e;
    }
    if (last_signaller_ >= 0 && !reservoir_.tracked(last_signaller_)) {
      const double e = core_.effective_interval(last_signaller_, now);
      if (e >= 0.0 && (best < 0.0 || e < best)) best = e;
    }
    return best;
  }
  for (std::size_t i = 0; i < core_.size(); ++i) {
    const double e = core_.effective_interval(static_cast<int>(i), now);
    if (e < 0.0) continue;
    if (best < 0.0 || e < best) best = e;
  }
  return best;
}

int TroubledCensus::recompute(sim::SimTime now) {
  const double min_int = min_interval(now);
  for (const int i : flagged_) {
    const auto u = static_cast<std::size_t>(i);
    core_.troubled[u] = 0;
  }
  flagged_.clear();
  num_troubled_ = 0;
  if (min_int < 0.0) return 0;
  const double bound = eta_ * min_int;

  if (sampling_.mode == CensusMode::kSampled) {
    // Scan the reservoir; scale the troubled count to the membership.
    int raw = 0;
    const std::vector<int>& sample = reservoir_.sample();
    for (const int i : sample) {
      const double e = core_.effective_interval(i, now);
      // The most-congested receiver satisfies e == min_int; the strict "<"
      // of the paper is made "<=" scaled so that it is always troubled.
      if (e >= 0.0 && e <= bound) {
        core_.troubled[static_cast<std::size_t>(i)] = 1;
        flagged_.push_back(i);
        ++raw;
      }
    }
    // The listening policy consults troubled(signaller) on every signal, so
    // the most recent signaller is always evaluated exactly even when the
    // hash sample skipped it.
    bool signaller_troubled = false;
    if (last_signaller_ >= 0 && !core_.excluded(last_signaller_)) {
      const double e = core_.effective_interval(last_signaller_, now);
      signaller_troubled = e >= 0.0 && e <= bound;
      if (signaller_troubled && !reservoir_.tracked(last_signaller_)) {
        core_.troubled[static_cast<std::size_t>(last_signaller_)] = 1;
        flagged_.push_back(last_signaller_);
      }
    }
    const double scale =
        sample.empty() ? 0.0
                       : static_cast<double>(active_count_) /
                             static_cast<double>(sample.size());
    num_troubled_ = static_cast<int>(
        std::llround(static_cast<double>(raw) * scale));
    if (raw > 0 || signaller_troubled)
      num_troubled_ = std::max(num_troubled_, 1);
    num_troubled_ = std::min(num_troubled_, active_count_);
    return num_troubled_;
  }

  for (std::size_t i = 0; i < core_.size(); ++i) {
    if (core_.excluded(static_cast<int>(i)) ||
        core_.epoch_signal_count(static_cast<int>(i)) == 0)
      continue;
    const double e = core_.effective_interval(static_cast<int>(i), now);
    // The most-congested receiver satisfies e == min_int; the strict "<"
    // of the paper is made "<=" scaled so that it is always troubled.
    if (e <= bound) {
      core_.troubled[i] = 1;
      flagged_.push_back(static_cast<int>(i));
      ++num_troubled_;
    }
  }
  return num_troubled_;
}

void TroubledCensus::note_srtt(int i, double srtt) {
  const bool tracked =
      sampling_.mode != CensusMode::kSampled || reservoir_.tracked(i);
  core_.set_srtt(i, srtt, /*ensure_slot=*/tracked);
  ++srtt_version_;
  robust_valid_ = false;
  if (!tracked) return;
  if (core_.excluded(i)) return;
  if (!srtt_max_valid_ || srtt_max_membership_ != membership_version_) return;
  if (srtt >= srtt_max_cache_) {
    srtt_max_cache_ = srtt;
    srtt_holder_ = i;
  } else if (i == srtt_holder_) {
    // The previous maximum shrank; only a rescan knows the new holder.
    srtt_max_valid_ = false;
  }
}

double TroubledCensus::plain_srtt_max() const {
  if (!srtt_max_valid_ || srtt_max_membership_ != membership_version_) {
    srtt_max_cache_ = 0.0;
    srtt_holder_ = -1;
    if (sampling_.mode == CensusMode::kSampled) {
      for (const int i : reservoir_.sample()) {
        const double v = core_.srtt_of(i);
        if (v >= srtt_max_cache_) {
          srtt_max_cache_ = v;
          srtt_holder_ = i;
        }
      }
    } else {
      for (std::size_t i = 0; i < core_.size(); ++i) {
        if (core_.excluded(static_cast<int>(i))) continue;
        if (core_.srtt_of(static_cast<int>(i)) >= srtt_max_cache_) {
          srtt_max_cache_ = core_.srtt_of(static_cast<int>(i));
          srtt_holder_ = static_cast<int>(i);
        }
      }
    }
    srtt_max_valid_ = true;
    srtt_max_membership_ = membership_version_;
  }
  return srtt_max_cache_;
}

double TroubledCensus::robust_srtt_max() const {
  if (robust_valid_ && robust_srtt_version_ == srtt_version_ &&
      robust_membership_ == membership_version_)
    return robust_cache_;
  srtt_scratch_.clear();
  if (sampling_.mode == CensusMode::kSampled) {
    for (const int i : reservoir_.sample())
      srtt_scratch_.push_back(core_.srtt_of(i));
  } else {
    for (std::size_t i = 0; i < core_.size(); ++i) {
      if (core_.excluded(static_cast<int>(i))) continue;
      srtt_scratch_.push_back(core_.srtt_of(static_cast<int>(i)));
    }
  }
  robust_cache_ = robust_clamped_max(srtt_scratch_, defense_.srtt_clamp_mads);
  robust_valid_ = true;
  robust_srtt_version_ = srtt_version_;
  robust_membership_ = membership_version_;
  return robust_cache_;
}

double TroubledCensus::srtt_max() const {
  // Hardened path: an srtt-inflating receiver drives pthresh toward 1 for
  // everyone else (their srtt_i/srtt_max ratio collapses), so reported
  // srtts are median/MAD-clamped before the max is taken.
  if (defense_.enabled && defense_.srtt_clamp_mads > 0.0)
    return robust_srtt_max();
  return plain_srtt_max();
}

std::size_t TroubledCensus::state_bytes() const {
  return sizeof(*this) + core_.state_bytes() + reservoir_.state_bytes() +
         flagged_.capacity() * sizeof(int) +
         interval_scratch_.capacity() * sizeof(double) +
         srtt_scratch_.capacity() * sizeof(double);
}

}  // namespace rlacast::cc
