#include "cc/census_core.hpp"

#include <algorithm>

namespace rlacast::cc {

void CensusCore::reserve(std::size_t n) {
  troubled.reserve(n);
  state.reserve(n);
  if (slim_) {
    slot_.reserve(n);
    return;
  }
  interval_.reserve(n);
  last_signal_.reserve(n);
  signals_.reserve(n);
  epoch_signals_.reserve(n);
  srtt_.reserve(n);
  state_until_.reserve(n);
  strikes_.reserve(n);
}

int CensusCore::add() {
  troubled.push_back(0);
  state.push_back(MemberState::kActive);
  if (slim_) {
    slot_.push_back(-1);
  } else {
    interval_.emplace_back(gain_);
    last_signal_.push_back(sim::kNever);
    signals_.push_back(0);
    epoch_signals_.push_back(0);
    srtt_.push_back(0.0);
    state_until_.push_back(0.0);
    strikes_.push_back(0);
  }
  return static_cast<int>(state.size()) - 1;
}

CensusCore::MemberStats& CensusCore::ensure_slot(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (slot_[u] < 0) {
    slot_[u] = static_cast<std::int32_t>(stats_.size());
    stats_.emplace_back(gain_);
  }
  return stats_[static_cast<std::size_t>(slot_[u])];
}

void CensusCore::record_signal(int i, sim::SimTime now) {
  const auto u = static_cast<std::size_t>(i);
  if (slim_) {
    MemberStats& m = ensure_slot(i);
    if (m.last_signal != sim::kNever) m.interval.add(now - m.last_signal);
    m.last_signal = now;
    ++m.signals;
    ++m.epoch_signals;
    return;
  }
  if (last_signal_[u] != sim::kNever) interval_[u].add(now - last_signal_[u]);
  last_signal_[u] = now;
  ++signals_[u];
  ++epoch_signals_[u];
}

void CensusCore::reset_epoch(int i) {
  const auto u = static_cast<std::size_t>(i);
  if (slim_) {
    // A member with no slot has no history to forget.
    if (MemberStats* m = slot_of(i)) {
      m->interval = stats::Ewma(gain_);
      m->last_signal = sim::kNever;
      m->epoch_signals = 0;
    }
    return;
  }
  interval_[u] = stats::Ewma(gain_);
  last_signal_[u] = sim::kNever;
  epoch_signals_[u] = 0;
}

double CensusCore::effective_interval(int i, sim::SimTime now) const {
  if (excluded(i)) return -1.0;
  const stats::Ewma* ewma;
  sim::SimTime last;
  if (slim_) {
    const MemberStats* m = slot_of(i);
    if (m == nullptr || m->epoch_signals == 0) return -1.0;
    ewma = &m->interval;
    last = m->last_signal;
  } else {
    const auto u = static_cast<std::size_t>(i);
    if (epoch_signals_[u] == 0) return -1.0;
    ewma = &interval_[u];
    last = last_signal_[u];
  }
  const double since_last = now - last;
  if (!ewma->initialized()) return std::max(since_last, 1e-12);
  return std::max(ewma->value(), since_last);
}

double CensusCore::srtt_of(int i) const {
  if (!slim_) return srtt_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->srtt : 0.0;
}

void CensusCore::set_srtt(int i, double srtt, bool ensure) {
  if (!slim_) {
    srtt_[static_cast<std::size_t>(i)] = srtt;
    return;
  }
  if (MemberStats* m = slot_of(i)) {
    m->srtt = srtt;
    return;
  }
  if (ensure) ensure_slot(i).srtt = srtt;
}

sim::SimTime CensusCore::last_signal_at(int i) const {
  if (!slim_) return last_signal_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->last_signal : sim::kNever;
}

std::uint64_t CensusCore::signal_count(int i) const {
  if (!slim_) return signals_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->signals : 0;
}

std::uint64_t CensusCore::epoch_signal_count(int i) const {
  if (!slim_) return epoch_signals_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->epoch_signals : 0;
}

int CensusCore::strike_count(int i) const {
  if (!slim_) return strikes_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->strikes : 0;
}

int CensusCore::add_strike(int i) {
  if (!slim_) return ++strikes_[static_cast<std::size_t>(i)];
  return ++ensure_slot(i).strikes;
}

sim::SimTime CensusCore::state_until_of(int i) const {
  if (!slim_) return state_until_[static_cast<std::size_t>(i)];
  const MemberStats* m = slot_of(i);
  return m != nullptr ? m->state_until : 0.0;
}

void CensusCore::set_state_until(int i, sim::SimTime t) {
  if (!slim_) {
    state_until_[static_cast<std::size_t>(i)] = t;
    return;
  }
  ensure_slot(i).state_until = t;
}

std::size_t CensusCore::state_bytes() const {
  std::size_t b = troubled.capacity() + state.capacity() * sizeof(MemberState);
  if (slim_) {
    b += slot_.capacity() * sizeof(std::int32_t);
    b += stats_.capacity() * sizeof(MemberStats);
    return b;
  }
  b += interval_.capacity() * sizeof(stats::Ewma) +
       last_signal_.capacity() * sizeof(sim::SimTime) +
       signals_.capacity() * sizeof(std::uint64_t) +
       epoch_signals_.capacity() * sizeof(std::uint64_t) +
       srtt_.capacity() * sizeof(double) +
       state_until_.capacity() * sizeof(sim::SimTime) +
       strikes_.capacity() * sizeof(int);
  return b;
}

std::uint64_t SampleReservoir::hash(int i) const {
  // splitmix64 finalizer: a fixed bijection of (seed + id), so the sample
  // is a deterministic function of the active set and consumes no RNG.
  std::uint64_t x = seed_ + static_cast<std::uint64_t>(i);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void SampleReservoir::insert(int i) {
  if (capacity_ == 0) return;
  if (static_cast<std::size_t>(i) >= in_sample_.size())
    in_sample_.resize(static_cast<std::size_t>(i) + 1, 0);
  const Entry e{hash(i), i};
  if (entries_.size() == capacity_ && !(e < entries_.back())) return;
  if (entries_.size() == capacity_) {
    in_sample_[static_cast<std::size_t>(entries_.back().id)] = 0;
    entries_.pop_back();
  }
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e), e);
  in_sample_[static_cast<std::size_t>(i)] = 1;
  refresh_ids();
}

void SampleReservoir::erase(int i, const CensusCore& core) {
  if (!tracked(i)) return;
  in_sample_[static_cast<std::size_t>(i)] = 0;
  // The evicted slot may admit the smallest not-yet-tracked active member;
  // only a full rescan knows which one that is.
  rebuild(core);
}

void SampleReservoir::rebuild(const CensusCore& core) {
  scratch_.clear();
  std::fill(in_sample_.begin(), in_sample_.end(), 0);
  if (in_sample_.size() < core.size()) in_sample_.resize(core.size(), 0);
  for (std::size_t i = 0; i < core.size(); ++i) {
    if (core.excluded(static_cast<int>(i))) continue;
    scratch_.push_back(Entry{hash(static_cast<int>(i)), static_cast<int>(i)});
  }
  if (scratch_.size() > capacity_) {
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(capacity_),
                     scratch_.end());
    scratch_.resize(capacity_);
  }
  std::sort(scratch_.begin(), scratch_.end());
  entries_ = scratch_;
  for (const Entry& e : entries_)
    in_sample_[static_cast<std::size_t>(e.id)] = 1;
  refresh_ids();
}

void SampleReservoir::refresh_ids() {
  ids_.clear();
  ids_.reserve(entries_.size());
  for (const Entry& e : entries_) ids_.push_back(e.id);
}

}  // namespace rlacast::cc
