// Flat SoA storage core of the troubled-receiver census, plus the
// deterministic bottom-k sample reservoir of the sampled census mode.
//
// CensusCore keeps the per-member fields of the census in one of two
// layouts, selected with set_slim() before members join:
//
//  * dense (default, the kExact census): every field is a parallel array
//    indexed by the dense receiver id, so the per-signal census scan walks
//    flat cache-friendly arrays instead of chasing one heap node per
//    receiver;
//  * slim (the kSampled census): only the two flag bytes (troubled, state)
//    and a slot index stay dense.  The WIDE stats — interval EWMA, signal
//    counters, srtt mirror, defense clocks — live in pooled slots allocated
//    on first use: reservoir members, signallers, and quarantined members.
//    A member that never loses a packet costs ~6 bytes instead of ~70, which
//    is what makes the sampled sender's per-receiver memory sublinear.
//    Slots are never freed (strike history must survive rejoins); the pool
//    is bounded by reservoir + ever-troubled, not by N.
//
// All policy — the troubled rule, the defense state machine, sampling
// estimates — stays in cc::TroubledCensus; this file is pure bookkeeping.
//
// SampleReservoir implements the kSampled census mode's membership sample:
// the k members with the smallest splitmix64 hash of their id.  The hash is
// a pure function of (seed, id), so the sample is a deterministic function
// of the active-member set — no RNG stream is consumed, which keeps
// record/replay bit-identity and means kSampled with reservoir >= N tracks
// exactly the active set (the equivalence the census property tests pin).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/ewma.hpp"

namespace rlacast::cc {

/// Census accounting mode (see cc::TroubledCensus).
///  * kExact   — every signal rescans all members: O(N) per signal, the
///               historical byte-identical census.
///  * kSampled — num_trouble_rcvr and srtt_max are estimated from a bounded
///               bottom-k hash reservoir: O(k) per signal, O(N) only on the
///               rare membership change.
enum class CensusMode : std::uint8_t { kExact, kSampled };

/// Sampled-census knobs. The default (kExact) is byte-identical to the
/// historical census; set mode = kSampled before receivers join.
struct CensusSampleParams {
  CensusMode mode = CensusMode::kExact;
  /// Reservoir capacity k. With k >= the active-member count the sample is
  /// the whole membership and every census decision matches kExact
  /// bit-for-bit; at k << N the num_trouble estimate has relative standard
  /// error ~ sqrt((1-f)/(f*k)) for troubled fraction f (see DESIGN.md).
  std::size_t reservoir = 256;
  /// Seed of the member-id hash (any fixed value works; it only decorrelates
  /// the sample from the join order).
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

/// Membership state of one receiver in the hardened census.
enum class MemberState : std::uint8_t {
  kActive,       // full participant
  kProbation,    // rejoined, watched under the stricter rate factor
  kQuarantined,  // timed exclusion (counts as excluded())
  kExcluded,     // permanent (leave, silent-drop, slow-drop, strike-out)
};

/// The member table. cc::TroubledCensus is the only driver; all access to
/// the wide per-member stats goes through the accessors below so the dense
/// and slim layouts stay interchangeable.
class CensusCore {
 public:
  explicit CensusCore(double interval_gain) : gain_(interval_gain) {}

  /// Selects the slim (sparse-slot) layout; call before members join.
  void set_slim(bool slim) { slim_ = slim; }
  bool is_slim() const { return slim_; }

  /// Reserves the member arrays for `n` members (capacity hint only;
  /// state_bytes() reports capacity, so growth overshoot is not free).
  void reserve(std::size_t n);

  /// Appends one member; returns its dense id.
  int add();

  std::size_t size() const { return state.size(); }

  bool excluded(int i) const {
    const MemberState s = state[static_cast<std::size_t>(i)];
    return s == MemberState::kQuarantined || s == MemberState::kExcluded;
  }

  /// EWMA + counter update for one congestion signal (no policy).
  void record_signal(int i, sim::SimTime now);

  /// Fresh census epoch on rejoin: history earned while quarantined must
  /// not survive (a stale last_signal would poison the interval).
  void reset_epoch(int i);

  /// Effective congestion-signal interval of member `i` (see
  /// cc::TroubledCensus): max(EWMA, time since last signal); negative while
  /// the member is excluded or has no signal in its current epoch.
  double effective_interval(int i, sim::SimTime now) const;

  // --- wide per-member stats, layout-independent ---------------------------
  double srtt_of(int i) const;
  /// Mirrors member `i`'s srtt. In the slim layout the value is only kept
  /// when a slot exists or `ensure_slot` is set (the caller passes the
  /// reservoir-tracked bit) — an untracked healthy member's srtt is never
  /// read by any sampled aggregate, so storing it would defeat the layout.
  void set_srtt(int i, double srtt, bool ensure_slot);
  sim::SimTime last_signal_at(int i) const;
  std::uint64_t signal_count(int i) const;
  std::uint64_t epoch_signal_count(int i) const;
  int strike_count(int i) const;
  /// Increments and returns `i`'s strike count (allocates its slot).
  int add_strike(int i);
  sim::SimTime state_until_of(int i) const;
  void set_state_until(int i, sim::SimTime t);

  /// Number of wide-stat slots in use (slim layout; == size() when dense).
  std::size_t slot_count() const {
    return slim_ ? stats_.size() : state.size();
  }

  /// Resident bytes of the member table (capacity-based).
  std::size_t state_bytes() const;

  // Dense per-member flag arrays (both layouts), indexed by receiver id.
  std::vector<std::uint8_t> troubled;  // current troubled flag
  std::vector<MemberState> state;      // defense state machine

 private:
  /// Wide per-member stats: one slot in the slim layout, one array element
  /// per field in the dense layout.
  struct MemberStats {
    explicit MemberStats(double gain) : interval(gain) {}
    stats::Ewma interval;                     // signal-interval EWMA
    sim::SimTime last_signal = sim::kNever;   // most recent signal time
    std::uint64_t signals = 0;                // lifetime count
    std::uint64_t epoch_signals = 0;          // since join / last rejoin
    double srtt = 0.0;                        // sender-reported srtt mirror
    sim::SimTime state_until = 0.0;           // quarantine/probation expiry
    int strikes = 0;                          // defense strike count
  };

  const MemberStats* slot_of(int i) const {
    const std::int32_t s = slot_[static_cast<std::size_t>(i)];
    return s >= 0 ? &stats_[static_cast<std::size_t>(s)] : nullptr;
  }
  MemberStats* slot_of(int i) {
    const std::int32_t s = slot_[static_cast<std::size_t>(i)];
    return s >= 0 ? &stats_[static_cast<std::size_t>(s)] : nullptr;
  }
  MemberStats& ensure_slot(int i);

  bool slim_ = false;
  double gain_;

  // Dense layout: parallel wide-stat arrays (kExact's cache-friendly scan).
  std::vector<stats::Ewma> interval_;
  std::vector<sim::SimTime> last_signal_;
  std::vector<std::uint64_t> signals_;
  std::vector<std::uint64_t> epoch_signals_;
  std::vector<double> srtt_;
  std::vector<sim::SimTime> state_until_;
  std::vector<int> strikes_;

  // Slim layout: slot index per member + pooled wide stats.
  std::vector<std::int32_t> slot_;
  std::vector<MemberStats> stats_;
};

/// Bottom-k hash sample over the active census members: the k active ids
/// with the smallest splitmix64(seed + id).  Insert is O(k); removing a
/// sampled member triggers a full O(N log k) rebuild (membership changes —
/// joins, leaves, quarantines — are rare next to signals).  Deterministic:
/// no RNG stream is consumed.
class SampleReservoir {
 public:
  void configure(std::size_t capacity, std::uint64_t seed) {
    capacity_ = capacity;
    seed_ = seed;
  }

  std::size_t capacity() const { return capacity_; }

  /// Capacity hint for the dense per-member flag array.
  void reserve(std::size_t n) { in_sample_.reserve(n); }

  /// Member `i` became active (join or rejoin).
  void insert(int i);

  /// Member `i` became inactive (quarantine, exclusion); rebuilds from
  /// `core` when `i` was part of the sample.
  void erase(int i, const CensusCore& core);

  /// True when `i` is currently one of the bottom-k sampled members.
  bool tracked(int i) const {
    return static_cast<std::size_t>(i) < in_sample_.size() &&
           in_sample_[static_cast<std::size_t>(i)] != 0;
  }

  /// Sampled member ids in hash order (smallest first).
  const std::vector<int>& sample() const { return ids_; }

  std::size_t state_bytes() const {
    return entries_.capacity() * sizeof(entries_[0]) +
           ids_.capacity() * sizeof(int) + in_sample_.capacity();
  }

 private:
  struct Entry {
    std::uint64_t hash;
    int id;
    bool operator<(const Entry& o) const {
      return hash != o.hash ? hash < o.hash : id < o.id;
    }
  };

  std::uint64_t hash(int i) const;
  void rebuild(const CensusCore& core);
  void refresh_ids();

  std::size_t capacity_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<Entry> entries_;           // sorted, size <= capacity_
  std::vector<Entry> scratch_;           // rebuild workspace
  std::vector<int> ids_;                 // entries_[*].id (scan order)
  std::vector<std::uint8_t> in_sample_;  // per-member flag
};

}  // namespace rlacast::cc
