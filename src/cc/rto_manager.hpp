// Retransmission-timeout timer management on the engine's in-place timers.
//
// One RtoManager per sender session. TCP re-arms it with its single
// estimator's rto(); the RLA sender re-arms it with the max rto over its
// active receivers (the session stalls only when the SLOWEST receiver has
// clearly gone quiet). Karn's exponential backoff lives in RttEstimator —
// per peer, because the RLA sender backs off each receiver's estimator
// individually on a repeated stall — so this class is deliberately just the
// arm/re-arm/cancel surface over sim::Timer.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace rlacast::cc {

class RtoManager {
 public:
  RtoManager(sim::Simulator& sim, std::function<void()> on_timeout)
      : timer_(sim, std::move(on_timeout)) {}

  /// (Re)arms the timer to fire `rto` seconds from now — the "restart on
  /// every ACK that leaves data outstanding" rule.
  void restart(sim::SimTime rto) { timer_.schedule(rto); }

  /// Arms only if nothing is pending (first packet of a burst must not
  /// push out an already-running timer).
  void ensure_armed(sim::SimTime rto) {
    if (!timer_.armed()) timer_.schedule(rto);
  }

  void cancel() { timer_.cancel(); }
  bool armed() const { return timer_.armed(); }
  sim::SimTime expiry() const { return timer_.expiry(); }

 private:
  sim::Timer timer_;
};

}  // namespace rlacast::cc
