// Pluggable loss-response policies: what a sender DOES about a congestion
// signal, decoupled from how the window moves (cc::Window) and from how
// signals are detected and grouped (Scoreboard + SignalGrouper).
//
// Every controller in the repo answers the same two questions —
//   "a grouped congestion signal arrived; cut?"  (on_signal)
//   "the retransmission timer fired; how hard?"  (on_timeout)
// — with a CutAction the sender then applies to its cc::Window. TCP's
// variants differ only in the signal response (SACK/Reno halve, Tahoe
// collapses unless the signal is a lossless ECN echo); RLA differs in
// *which* signals it obeys: untroubled receivers are ignored, a stale cut
// forces a halving, everything else is the §3.3 randomized-listening draw
// (see cc::RlaPolicy).
//
// Policies are plain objects constructed once per sender: no per-event
// allocation (engine_alloc_test counts), no virtual calls on the data path
// beyond the one dispatch per grouped signal.
#pragma once

#include "sim/time.hpp"

namespace rlacast::cc {

/// What the sender should do to its window right now.
enum class CutAction {
  kNone,         // ignore the signal (RLA: not listening this time)
  kHalve,        // multiplicative decrease (Window::halve)
  kForcedHalve,  // same cut, but by RLA's forced-cut guard (stats differ)
  kCollapse      // cwnd -> 1, slow-start restart (Window::collapse_to_one)
};

/// Everything a policy may consult about the signal it is judging. TCP
/// policies only look at from_ecn; RlaPolicy uses the rest. Filling unused
/// fields costs nothing and keeps the dispatch monomorphic.
struct SignalContext {
  sim::SimTime now = 0.0;
  int receiver = 0;          // index of the signalling receiver
  double srtt = 0.0;         // that receiver's smoothed RTT
  double srtt_max = 0.0;     // largest smoothed RTT across active receivers
  double awnd = 0.0;         // EWMA of cwnd (forced-cut guard length)
  sim::SimTime last_cut = -1e18;  // time of the session's last window cut
  bool from_ecn = false;     // signal is an ECN echo, not a loss
};

class LossResponsePolicy {
 public:
  virtual ~LossResponsePolicy() = default;

  /// Judges one grouped congestion signal.
  virtual CutAction on_signal(const SignalContext& ctx) = 0;

  /// Judges a retransmission-timeout expiry. `repeated_stall` is true when
  /// the timer fired again without any forward progress since the last
  /// expiry (TCP: always treated as repeated; RLA: first expiry per stalled
  /// packet is a tail-loss probe).
  virtual CutAction on_timeout(bool repeated_stall) = 0;

  /// Lower bound handed to Window::halve() for this controller's cuts:
  /// TCP recovery floors at 2 (the window lands on ssthresh), RLA at 1.
  virtual double halve_floor() const = 0;
};

class Window;

/// Applies a policy verdict to the window: kHalve/kForcedHalve is
/// Window::halve(policy.halve_floor()), kCollapse is collapse_to_one().
/// Returns false for kNone (the window was not touched), so callers can
/// gate their cwnd bookkeeping on it.
bool apply_cut_action(Window& win, const LossResponsePolicy& policy,
                      CutAction action);

/// SACK TCP: every loss episode and ECN echo is one halving; a timeout
/// collapses the window.
class TcpSackPolicy final : public LossResponsePolicy {
 public:
  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 2.0; }
};

/// Reno: identical cut decisions to SACK (the dupack-count trigger and the
/// window-inflation mechanics live in the sender, not the policy).
class TcpRenoPolicy final : public LossResponsePolicy {
 public:
  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 2.0; }
};

/// Tahoe: no fast recovery — a loss collapses the window to 1. An ECN echo
/// carries no loss to repair, so it is honoured as a plain halving (same
/// behaviour as the other variants on the lossless path).
class TcpTahoePolicy final : public LossResponsePolicy {
 public:
  CutAction on_signal(const SignalContext& ctx) override;
  CutAction on_timeout(bool repeated_stall) override;
  double halve_floor() const override { return 2.0; }
};

}  // namespace rlacast::cc
