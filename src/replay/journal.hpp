// Run journal: the on-disk and in-memory record of one deterministic run.
//
// A journal is an ordered sequence of records — stream creations, RNG
// draws, scheduler dispatches, checkpoints — plus free-form metadata
// (bench name, case point, seed, durations) sufficient to re-create the
// run's RunSpec. Two runs of the same build are deterministic iff their
// journals are identical record-for-record; the Verifier exploits this by
// comparing a re-execution against the journal *as it happens*, so the
// first mismatching record IS the first-divergent event (no post-hoc
// search needed), and the bracketing checkpoints bound where state agreed.
//
// Binary format (little-endian, fixed width):
//   header:  magic "RLCJ" | u32 version (1) | u32 meta count
//            meta entries: (u32 len, bytes key)(u32 len, bytes value)
//   body:    records, each  u8 type | u32 stream | u64 value | f64 at
//            kCheckpoint records are followed by an inline checkpoint
//            blob: u64 id | u64 dispatch_seq | f64 sim_time | u32 ncomp |
//            ncomp * [str id | u32 nfields | nfields * (str key, u64 bits,
//            u8 is_double)]
// The loader accepts a truncated tail (a crashed recorder stops mid-write)
// and flags it via truncated() — everything before the tear is usable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "replay/snapshot.hpp"

namespace rlacast::replay {

enum class RecordType : std::uint8_t {
  kStream = 1,      // stream = new id, value = label index into labels()
  kDraw = 2,        // stream = stream id, value = per-stream draw index
  kDispatch = 3,    // value = cumulative dispatch seq, at = event time
  kCheckpoint = 4,  // value = checkpoint id (index into checkpoints());
                    // stream = 0 for a periodic mid-run checkpoint, 1 for
                    // the final teardown checkpoint (taken after the run's
                    // components detached — the Verifier matches it in
                    // finalize(), not inline after the last dispatch)
};

struct Record {
  RecordType type = RecordType::kDraw;
  std::uint32_t stream = 0;
  std::uint64_t value = 0;
  double at = 0.0;

  bool operator==(const Record& o) const {
    return type == o.type && stream == o.stream && value == o.value &&
           at == o.at;
  }
  std::string render() const;
};

/// Full engine state at one instant: every attached component's snapshot,
/// in attach order, plus the synthetic "rng-cursors" component holding the
/// per-stream draw counters.
struct Checkpoint {
  std::uint64_t id = 0;
  std::uint64_t dispatch_seq = 0;
  double sim_time = 0.0;
  std::vector<std::pair<std::string, Snapshot>> components;
};

/// Where and how a re-execution first left the recorded path.
struct Divergence {
  bool found = false;
  std::uint64_t record_index = 0;  // index of the first mismatching record
  Record expected;                 // what the journal says happened
  Record got;                      // what the replay actually did
  bool replay_ended_early = false; // replay produced fewer records
  bool journal_ended_early = false;// replay kept going past the journal
  // Checkpoint ids bracketing the divergence (-1 == none on that side).
  std::int64_t checkpoint_before = -1;
  std::int64_t checkpoint_after = -1;
  std::string detail;              // e.g. first differing checkpoint field

  std::string render() const;
};

class Journal {
 public:
  // --- construction (Recorder side) -----------------------------------------
  void set_meta(std::string key, std::string value);
  std::uint32_t intern_label(std::string_view label);
  void append(const Record& r) { records_.push_back(r); }
  std::uint64_t add_checkpoint(Checkpoint cp);

  // --- access ---------------------------------------------------------------
  const std::vector<Record>& records() const { return records_; }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }
  const std::vector<std::pair<std::string, std::string>>& meta() const {
    return meta_;
  }
  /// Value for `key` in meta, or "" when absent.
  std::string meta_value(std::string_view key) const;
  bool has_meta(std::string_view key) const;
  /// True when the file this journal was loaded from ended mid-record
  /// (recorder died); records() holds everything before the tear.
  bool truncated() const { return truncated_; }
  std::string label_of_stream(std::uint32_t stream) const;
  /// Id of the last checkpoint at or before `record_index` (-1 if none).
  std::int64_t last_checkpoint_before(std::uint64_t record_index) const;

  // --- persistence ----------------------------------------------------------
  /// Writes the full journal to `path`. Returns false on I/O error.
  bool save(const std::string& path) const;
  /// Reads a journal from `path`. Returns false when the file is missing
  /// or not a journal; a torn tail is NOT an error (see truncated()).
  bool load(const std::string& path);

  bool operator==(const Journal& o) const {
    return records_ == o.records_ && labels_ == o.labels_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> labels_;       // stream id -> label
  std::vector<Record> records_;
  std::vector<Checkpoint> checkpoints_;
  bool truncated_ = false;
};

/// Incremental journal serializer: writes the header once, then appends
/// records as they happen. flush() makes everything written so far durable
/// — the Recorder flushes at checkpoints so a crashed process leaves a
/// loadable journal up to its last checkpoint. Journal::save() is built on
/// this same writer, so the streamed and one-shot formats are identical.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool open(const std::string& path,
            const std::vector<std::pair<std::string, std::string>>& meta);
  bool is_open() const { return f_ != nullptr; }
  /// `label` must be set for kStream records, `cp` for kCheckpoint ones.
  void write(const Record& r, const std::string* label = nullptr,
             const Checkpoint* cp = nullptr);
  void flush();
  void close();

 private:
  std::FILE* f_ = nullptr;
};

/// Record-by-record comparison of two journals (e.g. two fresh recordings
/// of nominally identical runs). Checkpoint contents are compared when both
/// sides carry them. For replay-vs-journal use Verifier, which catches the
/// divergence live instead.
Divergence first_divergence(const Journal& recorded, const Journal& replayed);

}  // namespace rlacast::replay
