// Verifier: the RunObserver that re-executes a run against its journal.
//
// The replay driver installs a Verifier in place of a Recorder and runs the
// bench's ordinary run function with the spec reconstructed from journal
// metadata. Every incoming hook event is compared against the next journal
// record *live*, so the first mismatch IS the first-divergent event — the
// "bisection" between checkpoints falls out of the record stream for free:
// the Divergence carries both dispatch records plus the ids of the last
// checkpoint the runs agreed on and the first one after the split.
//
// Checkpoint records are consumed by the Verifier itself: when one follows
// a matched dispatch, it captures a live checkpoint at the exact moment the
// Recorder did (after the dispatch hook, before the callback runs) and
// compares field-by-field.
//
// A truncated journal (recorder killed mid-run) verifies everything up to
// the tear; the replay running past the journal's end is then expected and
// reported via reproduced_to_crash_point(), not as a divergence.
#pragma once

#include <cstdint>
#include <string>

#include "replay/journal.hpp"
#include "replay/recorder.hpp"
#include "replay/snapshot.hpp"

namespace rlacast::replay {

class Verifier final : public RunObserver {
 public:
  /// `recorded` must outlive the Verifier.
  explicit Verifier(const Journal& recorded);

  // --- RunObserver ----------------------------------------------------------
  std::uint32_t on_stream(std::string_view label) override;
  void on_draw(std::uint32_t stream, std::uint64_t index) override;
  void on_dispatch(std::uint64_t seq, double at) override;
  void attach(std::string id, const Snapshotable* component) override;
  void detach(const Snapshotable* component) override;

  /// The replay finished; consumes trailing checkpoint records and flags a
  /// replay that ended before the journal did. Call exactly once.
  void finalize();

  bool diverged() const { return div_.found; }
  const Divergence& divergence() const { return div_; }
  /// True when every record in the journal was matched (and, for a
  /// truncated journal, the replay carried on past the tear).
  bool ok() const { return !div_.found; }
  /// Truncated journal fully consumed — the crash path was reproduced.
  bool reproduced_to_crash_point() const {
    return journal_.truncated() && cursor_ >= journal_.records().size() &&
           !div_.found;
  }
  std::uint64_t verified_checkpoints() const { return verified_cps_; }
  std::uint64_t records_matched() const { return cursor_; }

 private:
  /// Compares one live event against the journal cursor; afterwards
  /// consumes any checkpoint records sitting at the cursor.
  void expect(const Record& got, std::string_view stream_label);
  void consume_checkpoints(double at, bool include_final = false);
  void fail(const Record& got, std::string detail);

  const Journal& journal_;
  Registry registry_;
  std::uint64_t cursor_ = 0;
  std::uint64_t streams_seen_ = 0;
  std::uint64_t verified_cps_ = 0;
  std::int64_t last_verified_cp_ = -1;
  double last_at_ = 0.0;
  bool overran_ = false;  // ran past a truncated journal's tear (expected)
  bool finalized_ = false;
  Divergence div_;
};

}  // namespace rlacast::replay
