// Determinism-audit interfaces: the contract between the engine layers
// (sim/, net/, cc/, rla/) and the run journal (replay/journal.hpp).
//
// This header is deliberately self-contained (stdlib only) so any layer can
// implement Snapshotable or call a RunObserver without linking against the
// replay library — the dependency points upward only for the concrete
// Recorder/Verifier, never for the instrumented components.
//
// A run is *observed* at three granularities:
//  * every RNG draw          — (stream id, per-stream draw index);
//  * every scheduler dispatch — (cumulative sequence number, event time);
//  * periodic checkpoints     — each attached Snapshotable's state, encoded
//    as an ordered list of (key, bits) fields.
// Doubles are captured by bit pattern, so two runs agree on a checkpoint
// iff their state is *bit*-identical — the same standard the golden-output
// bench guard enforces on stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rlacast::replay {

/// One component's state at a checkpoint: ordered (key, value) fields.
/// Field order is part of the state — emit fields deterministically.
class Snapshot {
 public:
  struct Field {
    std::string key;
    std::uint64_t bits = 0;    // raw value (doubles bit-cast)
    bool is_double = false;    // display hint only

    bool operator==(const Field& o) const {
      return key == o.key && bits == o.bits;
    }
  };

  void put(std::string_view key, std::uint64_t v) {
    fields_.push_back({std::string(key), v, false});
  }
  void put(std::string_view key, std::int64_t v) {
    put(key, static_cast<std::uint64_t>(v));
  }
  void put(std::string_view key, std::uint32_t v) {
    put(key, static_cast<std::uint64_t>(v));
  }
  void put(std::string_view key, int v) {
    put(key, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  void put(std::string_view key, bool v) {
    put(key, static_cast<std::uint64_t>(v ? 1 : 0));
  }
  void put(std::string_view key, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fields_.push_back({std::string(key), bits, true});
  }

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  bool operator==(const Snapshot& o) const { return fields_ == o.fields_; }

  static std::string render_value(const Field& f) {
    char buf[48];
    if (f.is_double) {
      double v = 0.0;
      std::memcpy(&v, &f.bits, sizeof(v));
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(f.bits));
    }
    return buf;
  }

  /// Human description of the first field where the two snapshots differ
  /// ("key: <this> != <other>"); empty when equal.
  std::string first_diff(const Snapshot& other) const {
    const std::size_t n =
        fields_.size() < other.fields_.size() ? fields_.size()
                                              : other.fields_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Field& a = fields_[i];
      const Field& b = other.fields_[i];
      if (a.key != b.key)
        return "field #" + std::to_string(i) + ": key '" + a.key + "' != '" +
               b.key + "'";
      if (a.bits != b.bits)
        return a.key + ": " + render_value(a) + " != " + render_value(b);
    }
    if (fields_.size() != other.fields_.size())
      return "field count: " + std::to_string(fields_.size()) +
             " != " + std::to_string(other.fields_.size());
    return "";
  }

 private:
  std::vector<Field> fields_;
};

/// A component whose state can be captured at a checkpoint. Implemented by
/// sim::Scheduler, net::Link, net::Queue, cc::Window, cc::RttEstimator,
/// cc::TroubledCensus, rla::RlaSender. The capture must be cheap and free
/// of side effects — it runs mid-simulation.
class Snapshotable {
 public:
  virtual ~Snapshotable() = default;
  virtual Snapshot snapshot_state() const = 0;
};

/// Passive observer of one run, driven by the engine. Implemented by
/// replay::Recorder (journal a run) and replay::Verifier (re-execute and
/// compare). Observers must not perturb the run: no RNG draws, no
/// scheduling, no mutation of observed components.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// A named RNG stream was constructed; returns the stream id that
  /// subsequent on_draw calls for this stream must carry. Stream creation
  /// order is part of the recorded run.
  virtual std::uint32_t on_stream(std::string_view label) = 0;

  /// One distribution-level draw from `stream`; `index` is that stream's
  /// 1-based running draw count (the RNG cursor).
  virtual void on_draw(std::uint32_t stream, std::uint64_t index) = 0;

  /// One scheduler dispatch: `seq` is the cumulative dispatch count, `at`
  /// the event's timestamp. Called before the event's callback runs, so
  /// draws made inside the callback follow their dispatch record.
  virtual void on_dispatch(std::uint64_t seq, double at) = 0;

  /// Registers `component` for checkpoint capture under `id` (unique per
  /// run, e.g. "scheduler", "link-3-7/queue", "rla-0/window"). Attach
  /// order must be deterministic — it defines checkpoint layout.
  virtual void attach(std::string id, const Snapshotable* component) = 0;

  /// Removes every registration of `component` (component teardown, e.g.
  /// receiver churn). Safe to call for a never-attached pointer.
  virtual void detach(const Snapshotable* component) = 0;
};

}  // namespace rlacast::replay
