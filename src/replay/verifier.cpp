#include "replay/verifier.hpp"

#include <utility>

namespace rlacast::replay {

Verifier::Verifier(const Journal& recorded) : journal_(recorded) {}

void Verifier::fail(const Record& got, std::string detail) {
  div_.found = true;
  div_.record_index = cursor_;
  if (cursor_ < journal_.records().size())
    div_.expected = journal_.records()[static_cast<std::size_t>(cursor_)];
  div_.got = got;
  div_.detail = std::move(detail);
  div_.checkpoint_before = last_verified_cp_;
  div_.checkpoint_after = -1;
  for (std::size_t i = static_cast<std::size_t>(cursor_);
       i < journal_.records().size(); ++i) {
    if (journal_.records()[i].type == RecordType::kCheckpoint) {
      div_.checkpoint_after =
          static_cast<std::int64_t>(journal_.records()[i].value);
      break;
    }
  }
}

void Verifier::consume_checkpoints(double at, bool include_final) {
  const auto& recs = journal_.records();
  while (!div_.found && cursor_ < recs.size() &&
         recs[static_cast<std::size_t>(cursor_)].type ==
             RecordType::kCheckpoint) {
    const Record& r = recs[static_cast<std::size_t>(cursor_)];
    // A final (teardown) checkpoint was recorded after the run's components
    // detached; matching it inline — while everything is still attached —
    // would be a guaranteed false divergence. finalize() consumes it.
    if (r.stream == 1 && !include_final) return;
    const auto id = static_cast<std::size_t>(r.value);
    if (id >= journal_.checkpoints().size()) {
      // Checkpoint body was torn off (truncated journal): nothing to
      // compare against; treat like the tear itself.
      ++cursor_;
      continue;
    }
    const Checkpoint& want = journal_.checkpoints()[id];
    const Checkpoint live = registry_.capture(want.dispatch_seq, at);
    std::string diff;
    const std::size_t n = want.components.size() < live.components.size()
                              ? want.components.size()
                              : live.components.size();
    for (std::size_t c = 0; c < n && diff.empty(); ++c) {
      if (want.components[c].first != live.components[c].first) {
        diff = "component #" + std::to_string(c) + ": '" +
               want.components[c].first + "' != '" +
               live.components[c].first + "'";
      } else if (!(want.components[c].second == live.components[c].second)) {
        diff = "component '" + want.components[c].first + "': " +
               want.components[c].second.first_diff(live.components[c].second);
      }
    }
    if (diff.empty() && want.components.size() != live.components.size())
      diff = "component count: " + std::to_string(want.components.size()) +
             " != " + std::to_string(live.components.size());
    if (!diff.empty()) {
      Record got = r;  // same position, divergent contents
      fail(got, "checkpoint " + std::to_string(id) + " mismatch: " + diff);
      div_.checkpoint_after = static_cast<std::int64_t>(id);
      return;
    }
    last_verified_cp_ = static_cast<std::int64_t>(id);
    ++verified_cps_;
    ++cursor_;
  }
}

void Verifier::expect(const Record& got, std::string_view stream_label) {
  if (div_.found) return;  // already diverged: go passive
  const auto& recs = journal_.records();
  if (cursor_ >= recs.size()) {
    if (journal_.truncated()) {
      overran_ = true;  // expected: the recorder died here
      return;
    }
    div_.found = true;
    div_.record_index = cursor_;
    div_.journal_ended_early = true;
    div_.got = got;
    div_.checkpoint_before = last_verified_cp_;
    return;
  }
  const Record& want = recs[static_cast<std::size_t>(cursor_)];
  if (!(want == got)) {
    fail(got, "");
    return;
  }
  if (got.type == RecordType::kStream) {
    const std::string recorded_label =
        journal_.label_of_stream(got.stream);
    if (recorded_label != stream_label) {
      fail(got, "stream " + std::to_string(got.stream) + " label '" +
                    recorded_label + "' != '" + std::string(stream_label) +
                    "'");
      return;
    }
  }
  ++cursor_;
  consume_checkpoints(got.at);
}

std::uint32_t Verifier::on_stream(std::string_view label) {
  const auto id = static_cast<std::uint32_t>(streams_seen_++);
  registry_.note_stream(label);
  Record r;
  r.type = RecordType::kStream;
  r.stream = id;
  r.value = id;
  expect(r, label);
  return id;
}

void Verifier::on_draw(std::uint32_t stream, std::uint64_t index) {
  registry_.note_draw(stream, index);
  Record r;
  r.type = RecordType::kDraw;
  r.stream = stream;
  r.value = index;
  expect(r, "");
}

void Verifier::on_dispatch(std::uint64_t seq, double at) {
  last_at_ = at;
  Record r;
  r.type = RecordType::kDispatch;
  r.value = seq;
  r.at = at;
  expect(r, "");
}

void Verifier::attach(std::string id, const Snapshotable* component) {
  registry_.attach(std::move(id), component);
}

void Verifier::detach(const Snapshotable* component) {
  registry_.detach(component);
}

void Verifier::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // The recorder's finalize() appended a final checkpoint; match it now
  // that this side's components have detached too.
  consume_checkpoints(last_at_, /*include_final=*/true);
  if (!div_.found && cursor_ < journal_.records().size()) {
    div_.found = true;
    div_.record_index = cursor_;
    div_.replay_ended_early = true;
    div_.expected = journal_.records()[static_cast<std::size_t>(cursor_)];
    div_.checkpoint_before = last_verified_cp_;
  }
}

}  // namespace rlacast::replay
