#include "replay/journal.hpp"

#include <cstdio>
#include <cstring>

namespace rlacast::replay {
namespace {

constexpr char kMagic[4] = {'R', 'L', 'C', 'J'};
constexpr std::uint32_t kVersion = 1;

// ---- low-level little-endian I/O over stdio --------------------------------

void put_u8(std::FILE* f, std::uint8_t v) { std::fputc(v, f); }

void put_u32(std::FILE* f, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, sizeof(b), f);
}

void put_u64(std::FILE* f, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  std::fwrite(b, 1, sizeof(b), f);
}

void put_f64(std::FILE* f, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(f, bits);
}

void put_str(std::FILE* f, const std::string& s) {
  put_u32(f, static_cast<std::uint32_t>(s.size()));
  std::fwrite(s.data(), 1, s.size(), f);
}

bool get_u8(std::FILE* f, std::uint8_t& v) {
  int c = std::fgetc(f);
  if (c == EOF) return false;
  v = static_cast<std::uint8_t>(c);
  return true;
}

bool get_u32(std::FILE* f, std::uint32_t& v) {
  unsigned char b[4];
  if (std::fread(b, 1, sizeof(b), f) != sizeof(b)) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool get_u64(std::FILE* f, std::uint64_t& v) {
  unsigned char b[8];
  if (std::fread(b, 1, sizeof(b), f) != sizeof(b)) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool get_f64(std::FILE* f, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(f, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

// Strings are bounded to keep a torn length prefix from triggering a
// gigabyte allocation when loading a truncated journal.
bool get_str(std::FILE* f, std::string& s) {
  std::uint32_t len = 0;
  if (!get_u32(f, len)) return false;
  if (len > (1u << 20)) return false;
  s.resize(len);
  return len == 0 || std::fread(s.data(), 1, len, f) == len;
}

void put_checkpoint(std::FILE* f, const Checkpoint& cp) {
  put_u64(f, cp.id);
  put_u64(f, cp.dispatch_seq);
  put_f64(f, cp.sim_time);
  put_u32(f, static_cast<std::uint32_t>(cp.components.size()));
  for (const auto& [id, snap] : cp.components) {
    put_str(f, id);
    put_u32(f, static_cast<std::uint32_t>(snap.fields().size()));
    for (const auto& field : snap.fields()) {
      put_str(f, field.key);
      put_u64(f, field.bits);
      put_u8(f, field.is_double ? 1 : 0);
    }
  }
}

bool get_checkpoint(std::FILE* f, Checkpoint& cp) {
  std::uint32_t ncomp = 0;
  if (!get_u64(f, cp.id) || !get_u64(f, cp.dispatch_seq) ||
      !get_f64(f, cp.sim_time) || !get_u32(f, ncomp))
    return false;
  if (ncomp > (1u << 20)) return false;
  cp.components.clear();
  cp.components.reserve(ncomp);
  for (std::uint32_t c = 0; c < ncomp; ++c) {
    std::string id;
    std::uint32_t nfields = 0;
    if (!get_str(f, id) || !get_u32(f, nfields)) return false;
    if (nfields > (1u << 20)) return false;
    Snapshot snap;
    for (std::uint32_t i = 0; i < nfields; ++i) {
      std::string key;
      std::uint64_t bits = 0;
      std::uint8_t is_double = 0;
      if (!get_str(f, key) || !get_u64(f, bits) || !get_u8(f, is_double))
        return false;
      if (is_double != 0) {
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        snap.put(key, v);
      } else {
        snap.put(key, bits);
      }
    }
    cp.components.emplace_back(std::move(id), std::move(snap));
  }
  return true;
}

}  // namespace

std::string Record::render() const {
  char buf[128];
  switch (type) {
    case RecordType::kStream:
      std::snprintf(buf, sizeof(buf), "stream id=%u label#%llu", stream,
                    static_cast<unsigned long long>(value));
      break;
    case RecordType::kDraw:
      std::snprintf(buf, sizeof(buf), "draw stream=%u index=%llu", stream,
                    static_cast<unsigned long long>(value));
      break;
    case RecordType::kDispatch:
      std::snprintf(buf, sizeof(buf), "dispatch seq=%llu at=%.9f",
                    static_cast<unsigned long long>(value), at);
      break;
    case RecordType::kCheckpoint:
      std::snprintf(buf, sizeof(buf), "checkpoint id=%llu",
                    static_cast<unsigned long long>(value));
      break;
  }
  return buf;
}

std::string Divergence::render() const {
  if (!found) return "no divergence";
  std::string s = "first divergence at record #" +
                  std::to_string(record_index) + ": ";
  if (replay_ended_early) {
    s += "replay ended early; journal expects " + expected.render();
  } else if (journal_ended_early) {
    s += "replay continued past end of journal with " + got.render();
  } else {
    s += "expected [" + expected.render() + "] got [" + got.render() + "]";
  }
  s += "; bracketing checkpoints: ";
  s += checkpoint_before >= 0 ? std::to_string(checkpoint_before)
                              : std::string("(none)");
  s += " .. ";
  s += checkpoint_after >= 0 ? std::to_string(checkpoint_after)
                             : std::string("(none)");
  if (!detail.empty()) s += "; " + detail;
  return s;
}

void Journal::set_meta(std::string key, std::string value) {
  for (auto& kv : meta_) {
    if (kv.first == key) {
      kv.second = std::move(value);
      return;
    }
  }
  meta_.emplace_back(std::move(key), std::move(value));
}

std::string Journal::meta_value(std::string_view key) const {
  for (const auto& kv : meta_)
    if (kv.first == key) return kv.second;
  return "";
}

bool Journal::has_meta(std::string_view key) const {
  for (const auto& kv : meta_)
    if (kv.first == key) return true;
  return false;
}

std::uint32_t Journal::intern_label(std::string_view label) {
  labels_.emplace_back(label);
  return static_cast<std::uint32_t>(labels_.size() - 1);
}

std::uint64_t Journal::add_checkpoint(Checkpoint cp) {
  cp.id = checkpoints_.size();
  checkpoints_.push_back(std::move(cp));
  return checkpoints_.back().id;
}

std::string Journal::label_of_stream(std::uint32_t stream) const {
  // Stream ids are assigned in creation order, matching labels_ order.
  if (stream < labels_.size()) return labels_[stream];
  return "<stream " + std::to_string(stream) + ">";
}

std::int64_t Journal::last_checkpoint_before(
    std::uint64_t record_index) const {
  std::int64_t best = -1;
  const std::uint64_t n =
      record_index < records_.size() ? record_index : records_.size();
  for (std::uint64_t i = 0; i < n; ++i)
    if (records_[i].type == RecordType::kCheckpoint)
      best = static_cast<std::int64_t>(records_[i].value);
  return best;
}

bool JournalWriter::open(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  close();
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) return false;
  std::fwrite(kMagic, 1, sizeof(kMagic), f_);
  put_u32(f_, kVersion);
  put_u32(f_, static_cast<std::uint32_t>(meta.size()));
  for (const auto& [k, v] : meta) {
    put_str(f_, k);
    put_str(f_, v);
  }
  return std::ferror(f_) == 0;
}

void JournalWriter::write(const Record& r, const std::string* label,
                          const Checkpoint* cp) {
  if (f_ == nullptr) return;
  put_u8(f_, static_cast<std::uint8_t>(r.type));
  put_u32(f_, r.stream);
  put_u64(f_, r.value);
  put_f64(f_, r.at);
  if (r.type == RecordType::kStream) {
    static const std::string kEmpty;
    put_str(f_, label != nullptr ? *label : kEmpty);
  } else if (r.type == RecordType::kCheckpoint && cp != nullptr) {
    put_checkpoint(f_, *cp);
  }
}

void JournalWriter::flush() {
  if (f_ != nullptr) std::fflush(f_);
}

void JournalWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool Journal::save(const std::string& path) const {
  JournalWriter w;
  if (!w.open(path, meta_)) return false;
  for (const Record& r : records_) {
    const std::string* label = nullptr;
    const Checkpoint* cp = nullptr;
    if (r.type == RecordType::kStream &&
        static_cast<std::size_t>(r.value) < labels_.size())
      label = &labels_[static_cast<std::size_t>(r.value)];
    else if (r.type == RecordType::kCheckpoint &&
             r.value < checkpoints_.size())
      cp = &checkpoints_[static_cast<std::size_t>(r.value)];
    w.write(r, label, cp);
  }
  w.flush();
  w.close();
  return true;
}

bool Journal::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[4];
  std::uint32_t version = 0;
  std::uint32_t nmeta = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      !get_u32(f, version) || version != kVersion || !get_u32(f, nmeta) ||
      nmeta > (1u << 20)) {
    std::fclose(f);
    return false;
  }
  meta_.clear();
  labels_.clear();
  records_.clear();
  checkpoints_.clear();
  truncated_ = false;
  for (std::uint32_t i = 0; i < nmeta; ++i) {
    std::string k;
    std::string v;
    if (!get_str(f, k) || !get_str(f, v)) {
      std::fclose(f);
      return false;  // a torn header (before any record) is unusable
    }
    meta_.emplace_back(std::move(k), std::move(v));
  }
  for (;;) {
    std::uint8_t type = 0;
    if (!get_u8(f, type)) break;  // clean EOF between records
    Record r;
    if (type < 1 || type > 4) {
      truncated_ = true;
      break;
    }
    r.type = static_cast<RecordType>(type);
    if (!get_u32(f, r.stream) || !get_u64(f, r.value) || !get_f64(f, r.at)) {
      truncated_ = true;
      break;
    }
    if (r.type == RecordType::kStream) {
      std::string label;
      if (!get_str(f, label)) {
        truncated_ = true;
        break;
      }
      labels_.push_back(std::move(label));
    } else if (r.type == RecordType::kCheckpoint) {
      Checkpoint cp;
      if (!get_checkpoint(f, cp)) {
        truncated_ = true;
        break;
      }
      checkpoints_.push_back(std::move(cp));
    }
    records_.push_back(r);
  }
  std::fclose(f);
  return true;
}

Divergence first_divergence(const Journal& recorded,
                            const Journal& replayed) {
  Divergence d;
  const auto& a = recorded.records();
  const auto& b = replayed.records();
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) {
      if (a[i].type == RecordType::kCheckpoint) {
        // Same checkpoint id — compare contents when both sides have them.
        const auto& ca = recorded.checkpoints();
        const auto& cb = replayed.checkpoints();
        const auto id = static_cast<std::size_t>(a[i].value);
        if (id < ca.size() && id < cb.size()) {
          const Checkpoint& x = ca[id];
          const Checkpoint& y = cb[id];
          const std::size_t nc = x.components.size() < y.components.size()
                                     ? x.components.size()
                                     : y.components.size();
          for (std::size_t c = 0; c < nc; ++c) {
            if (x.components[c].first != y.components[c].first ||
                !(x.components[c].second == y.components[c].second)) {
              d.found = true;
              d.record_index = i;
              d.expected = a[i];
              d.got = b[i];
              d.detail = "checkpoint " + std::to_string(id) + " component '" +
                         x.components[c].first + "': " +
                         x.components[c].second.first_diff(
                             y.components[c].second);
              d.checkpoint_before = recorded.last_checkpoint_before(i);
              d.checkpoint_after = static_cast<std::int64_t>(id);
              return d;
            }
          }
          if (x.components.size() != y.components.size()) {
            d.found = true;
            d.record_index = i;
            d.expected = a[i];
            d.got = b[i];
            d.detail = "checkpoint " + std::to_string(id) +
                       " component count differs";
            d.checkpoint_before = recorded.last_checkpoint_before(i);
            d.checkpoint_after = static_cast<std::int64_t>(id);
            return d;
          }
        }
      }
      continue;
    }
    d.found = true;
    d.record_index = i;
    d.expected = a[i];
    d.got = b[i];
    d.checkpoint_before = recorded.last_checkpoint_before(i);
    // First checkpoint at or after the divergence in the recorded journal.
    d.checkpoint_after = -1;
    for (std::size_t j = i; j < a.size(); ++j) {
      if (a[j].type == RecordType::kCheckpoint) {
        d.checkpoint_after = static_cast<std::int64_t>(a[j].value);
        break;
      }
    }
    return d;
  }
  if (a.size() != b.size()) {
    d.found = true;
    d.record_index = n;
    d.checkpoint_before = recorded.last_checkpoint_before(n);
    d.checkpoint_after = -1;
    if (a.size() > b.size()) {
      d.replay_ended_early = true;
      d.expected = a[n];
    } else {
      d.journal_ended_early = true;
      d.got = b[n];
    }
  }
  return d;
}

}  // namespace rlacast::replay
