// Recorder: the RunObserver that journals a run.
//
// Appends one record per stream creation / RNG draw / scheduler dispatch,
// and every `checkpoint_every` dispatches captures a full checkpoint of all
// attached Snapshotables plus a synthetic "rng-cursors" component (the
// per-stream draw counters). When `stream_path` is set, records are also
// streamed to disk incrementally with an fflush at every checkpoint, so a
// run killed by a signal leaves a loadable (truncated) journal covering
// everything up to its last checkpoint — the raw material for the crash
// report's `--replay` repro command.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "replay/journal.hpp"
#include "replay/snapshot.hpp"

namespace rlacast::replay {

/// Shared bookkeeping for Recorder and Verifier: the attach-ordered
/// component registry and per-stream draw cursors, from which live
/// checkpoints are captured.
class Registry {
 public:
  void attach(std::string id, const Snapshotable* component) {
    components_.emplace_back(std::move(id), component);
  }

  void detach(const Snapshotable* component) {
    for (std::size_t i = components_.size(); i > 0; --i)
      if (components_[i - 1].second == component)
        components_.erase(components_.begin() +
                          static_cast<std::ptrdiff_t>(i - 1));
  }

  void note_stream(std::string_view label) {
    stream_labels_.emplace_back(label);
    cursors_.push_back(0);
  }

  void note_draw(std::uint32_t stream, std::uint64_t index) {
    if (stream < cursors_.size()) cursors_[stream] = index;
  }

  /// Captures every attached component plus the synthetic "rng-cursors"
  /// snapshot (one field per stream, keyed by label).
  Checkpoint capture(std::uint64_t dispatch_seq, double sim_time) const {
    Checkpoint cp;
    cp.dispatch_seq = dispatch_seq;
    cp.sim_time = sim_time;
    Snapshot cursors;
    for (std::size_t i = 0; i < cursors_.size(); ++i)
      cursors.put(stream_labels_[i], cursors_[i]);
    cp.components.emplace_back("rng-cursors", std::move(cursors));
    cp.components.reserve(1 + components_.size());
    for (const auto& [id, component] : components_)
      cp.components.emplace_back(id, component->snapshot_state());
    return cp;
  }

  std::size_t component_count() const { return components_.size(); }
  std::size_t stream_count() const { return stream_labels_.size(); }

 private:
  std::vector<std::pair<std::string, const Snapshotable*>> components_;
  std::vector<std::string> stream_labels_;
  std::vector<std::uint64_t> cursors_;  // per stream id, last draw index
};

struct RecorderOptions {
  /// Checkpoint cadence in scheduler dispatches (0 = final only).
  std::uint64_t checkpoint_every = 20000;
  /// When non-empty, stream the journal to this file as it is recorded.
  std::string stream_path;
};

class Recorder final : public RunObserver {
 public:
  explicit Recorder(RecorderOptions opts = {});
  ~Recorder() override;

  /// Journal metadata (bench name, spec point, seed...). Must be complete
  /// before the first observed event — it is written into the stream
  /// file's header.
  void set_meta(std::string key, std::string value);

  // --- RunObserver ----------------------------------------------------------
  std::uint32_t on_stream(std::string_view label) override;
  void on_draw(std::uint32_t stream, std::uint64_t index) override;
  void on_dispatch(std::uint64_t seq, double at) override;
  void attach(std::string id, const Snapshotable* component) override;
  void detach(const Snapshotable* component) override;

  /// Takes the final checkpoint and closes the stream file. Idempotent;
  /// also called by the destructor.
  void finalize();

  const Journal& journal() const { return journal_; }
  Journal take_journal() { return std::move(journal_); }
  /// Id of the newest checkpoint, -1 before the first one.
  std::int64_t last_checkpoint_id() const { return last_checkpoint_; }
  /// Convenience: finalize() then save the full journal to `path`.
  bool save(const std::string& path);

 private:
  void emit(const Record& r);
  void take_checkpoint(double at, bool final_cp = false);

  RecorderOptions opts_;
  Journal journal_;
  Registry registry_;
  std::unique_ptr<JournalWriter> writer_;
  std::uint64_t last_seq_ = 0;
  double last_at_ = 0.0;
  std::int64_t last_checkpoint_ = -1;
  bool finalized_ = false;
  bool opened_ = false;
};

}  // namespace rlacast::replay
