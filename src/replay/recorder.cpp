#include "replay/recorder.hpp"

namespace rlacast::replay {

Recorder::Recorder(RecorderOptions opts) : opts_(std::move(opts)) {}

Recorder::~Recorder() { finalize(); }

void Recorder::set_meta(std::string key, std::string value) {
  journal_.set_meta(std::move(key), std::move(value));
}

void Recorder::emit(const Record& r) {
  journal_.append(r);
  if (opts_.stream_path.empty()) return;
  if (!opened_) {
    opened_ = true;  // one attempt; a failed open degrades to memory-only
    writer_ = std::make_unique<JournalWriter>();
    if (!writer_->open(opts_.stream_path, journal_.meta())) writer_.reset();
  }
  if (!writer_) return;
  const std::string* label = nullptr;
  const Checkpoint* cp = nullptr;
  if (r.type == RecordType::kStream)
    label = &journal_.labels()[static_cast<std::size_t>(r.value)];
  else if (r.type == RecordType::kCheckpoint)
    cp = &journal_.checkpoints()[static_cast<std::size_t>(r.value)];
  writer_->write(r, label, cp);
  if (r.type == RecordType::kCheckpoint) writer_->flush();
}

std::uint32_t Recorder::on_stream(std::string_view label) {
  const std::uint32_t id = journal_.intern_label(label);
  registry_.note_stream(label);
  Record r;
  r.type = RecordType::kStream;
  r.stream = id;
  r.value = id;  // label index == stream id (creation order)
  emit(r);
  return id;
}

void Recorder::on_draw(std::uint32_t stream, std::uint64_t index) {
  registry_.note_draw(stream, index);
  Record r;
  r.type = RecordType::kDraw;
  r.stream = stream;
  r.value = index;
  emit(r);
}

void Recorder::on_dispatch(std::uint64_t seq, double at) {
  last_seq_ = seq;
  last_at_ = at;
  Record r;
  r.type = RecordType::kDispatch;
  r.value = seq;
  r.at = at;
  emit(r);
  if (opts_.checkpoint_every != 0 && seq % opts_.checkpoint_every == 0)
    take_checkpoint(at);
}

void Recorder::attach(std::string id, const Snapshotable* component) {
  registry_.attach(std::move(id), component);
}

void Recorder::detach(const Snapshotable* component) {
  registry_.detach(component);
}

void Recorder::take_checkpoint(double at, bool final_cp) {
  const std::uint64_t id =
      journal_.add_checkpoint(registry_.capture(last_seq_, at));
  last_checkpoint_ = static_cast<std::int64_t>(id);
  Record r;
  r.type = RecordType::kCheckpoint;
  r.stream = final_cp ? 1 : 0;  // see RecordType::kCheckpoint
  r.value = id;
  r.at = at;
  emit(r);  // emit() flushes the stream after every checkpoint
}

void Recorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  take_checkpoint(last_at_, /*final_cp=*/true);
  if (writer_) {
    writer_->flush();
    writer_->close();
    writer_.reset();
  }
}

bool Recorder::save(const std::string& path) {
  finalize();
  return journal_.save(path);
}

}  // namespace rlacast::replay
