#include "stats/table.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace rlacast::stats {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == rows_.front().size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::render() const {
  const std::size_t ncols = rows_.front().size();
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < ncols; ++c)
      width[c] = std::max(width[c], row[c].size());

  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const auto& cell = rows_[r][c];
      out += cell;
      out.append(width[c] - cell.size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (auto w : width) total += w + 2;
      out.append(total, '-');
      out += '\n';
    }
  }
  return out;
}

}  // namespace rlacast::stats
