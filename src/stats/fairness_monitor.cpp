#include "stats/fairness_monitor.hpp"

#include <cmath>
#include <utility>

namespace rlacast::stats {

FairnessMonitor::FairnessMonitor(sim::Simulator& sim,
                                 FairnessMonitorConfig config)
    : sim_(sim), config_(config), timer_(sim, [this] { on_window(); }) {}

void FairnessMonitor::add_probe(FlowProbe probe) {
  ProbeState st;
  st.probe = std::move(probe);
  probes_.push_back(std::move(st));
  if (!enabled() || armed_) return;
  // Lazy arming: the first probe schedules the first window close. Window
  // edges are absolute times so every run with the same config samples at
  // the same instants regardless of when flows attach.
  armed_ = true;
  window_start_ = config_.start;
  timer_.schedule_at(config_.start + config_.window);
}

void FairnessMonitor::on_window() {
  const sim::SimTime t_end = sim_.now();
  const sim::SimTime span = t_end - window_start_;

  FairnessSample sample;
  sample.t_end = t_end;
  sample.throughput_pps.reserve(probes_.size());

  std::vector<double> counted;
  counted.reserve(probes_.size());
  for (ProbeState& st : probes_) {
    const double delivered = st.probe.delivered();
    const bool limited_now = st.probe.app_limited();
    const double delta = delivered - st.delivered_at_start;
    // A window counts for a flow only if the application could have used
    // the network for the whole window: not limited at either edge.
    const bool excluded = limited_now || st.limited_at_start;
    const double pps = span > 0.0 ? delta / span : -1.0;
    // A probe returning NaN/inf (a broken delivered() reader, a zero-length
    // window) is treated like an excluded flow: one bad reading must not
    // poison the window's index into NaN, which would leak through every
    // min/mean comparison (NaN < 0.0 is false).
    if (excluded || !std::isfinite(pps) || pps < 0.0) {
      sample.throughput_pps.push_back(-1.0);
      ++sample.flows_app_limited;
    } else {
      sample.throughput_pps.push_back(pps);
      counted.push_back(pps);
      ++sample.flows_counted;
    }
    st.delivered_at_start = delivered;
    st.limited_at_start = limited_now;
  }
  sample.jain = jain_index(counted);
  samples_.push_back(std::move(sample));

  window_start_ = t_end;
  const sim::SimTime next = t_end + config_.window;
  if (config_.stop > 0.0 && next > config_.stop) return;
  timer_.schedule_at(next);
}

double FairnessMonitor::min_jain() const {
  double best = -1.0;
  for (const FairnessSample& s : samples_) {
    if (s.jain < 0.0) continue;
    if (best < 0.0 || s.jain < best) best = s.jain;
  }
  return best;
}

double FairnessMonitor::mean_jain() const {
  double sum = 0.0;
  int n = 0;
  for (const FairnessSample& s : samples_) {
    if (s.jain < 0.0) continue;
    sum += s.jain;
    ++n;
  }
  return n > 0 ? sum / n : -1.0;
}

double FairnessMonitor::jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return -1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;  // all idle: trivially fair
  const double j = (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
  // Belt and braces: a non-finite input slipping through yields the
  // defined "no evidence" sentinel, never NaN.
  return std::isfinite(j) ? j : -1.0;
}

}  // namespace rlacast::stats
