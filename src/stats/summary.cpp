#include "stats/summary.hpp"

namespace rlacast::stats {}
