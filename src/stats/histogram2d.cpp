#include "stats/histogram2d.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::stats {

Histogram2D::Histogram2D(double x_max, double y_max, std::size_t nx,
                         std::size_t ny)
    : x_max_(x_max), y_max_(y_max), nx_(nx), ny_(ny), bins_(nx * ny, 0.0) {}

void Histogram2D::add(double x, double y, double weight) {
  auto bin = [](double v, double vmax, std::size_t n) {
    const double f = v / vmax * static_cast<double>(n);
    const auto i = static_cast<std::ptrdiff_t>(std::floor(f));
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
        i, 0, static_cast<std::ptrdiff_t>(n) - 1));
  };
  bins_[bin(y, y_max_, ny_) * nx_ + bin(x, x_max_, nx_)] += weight;
  total_ += weight;
}

std::pair<double, double> Histogram2D::mode() const {
  const auto it = std::max_element(bins_.begin(), bins_.end());
  const auto idx = static_cast<std::size_t>(it - bins_.begin());
  return {x_center(idx % nx_), y_center(idx / nx_)};
}

double Histogram2D::mean_x() const {
  if (total_ <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t iy = 0; iy < ny_; ++iy)
    for (std::size_t ix = 0; ix < nx_; ++ix)
      s += at(ix, iy) * x_center(ix);
  return s / total_;
}

double Histogram2D::mean_y() const {
  if (total_ <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t iy = 0; iy < ny_; ++iy)
    for (std::size_t ix = 0; ix < nx_; ++ix)
      s += at(ix, iy) * y_center(iy);
  return s / total_;
}

double Histogram2D::mass_near(double x, double y, double radius) const {
  if (total_ <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t iy = 0; iy < ny_; ++iy)
    for (std::size_t ix = 0; ix < nx_; ++ix)
      if (std::abs(x_center(ix) - x) <= radius &&
          std::abs(y_center(iy) - y) <= radius)
        s += at(ix, iy);
  return s / total_;
}

std::string Histogram2D::render_ascii(std::size_t max_cols) const {
  static constexpr char kShades[] = " .:-=+*#%@";
  const std::size_t n_shades = sizeof(kShades) - 2;
  const std::size_t cols = std::min(nx_, max_cols);
  const std::size_t rows = std::min(ny_, max_cols);
  const double peak = *std::max_element(bins_.begin(), bins_.end());
  std::string out;
  if (peak <= 0.0) return out;
  for (std::size_t r = rows; r-- > 0;) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Aggregate the underlying bins covered by this display cell.
      double m = 0.0;
      const std::size_t y0 = r * ny_ / rows, y1 = (r + 1) * ny_ / rows;
      const std::size_t x0 = c * nx_ / cols, x1 = (c + 1) * nx_ / cols;
      for (std::size_t iy = y0; iy < std::max(y1, y0 + 1); ++iy)
        for (std::size_t ix = x0; ix < std::max(x1, x0 + 1); ++ix)
          m = std::max(m, at(ix, iy));
      const auto shade = static_cast<std::size_t>(
          std::round(std::sqrt(m / peak) * static_cast<double>(n_shades)));
      out += kShades[std::min(shade, n_shades)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace rlacast::stats
