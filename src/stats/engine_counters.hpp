// Engine observability: cumulative counters the event engine maintains about
// itself.  Read through Scheduler::counters() by benches (bench_engine prints
// them) and by tests asserting the zero-allocation contract; cheap enough to
// update unconditionally on the hot path (plain increments and max()s).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace rlacast::stats {

struct EngineCounters {
  std::uint64_t scheduled = 0;    // schedule_at() calls
  std::uint64_t cancelled = 0;    // cancel() calls that hit a live event
  std::uint64_t rescheduled = 0;  // in-place reschedule_at() retargets
  std::uint64_t dispatched = 0;   // callbacks actually run
  /// Scheduled callables too large for the inline buffer (heap fallback).
  /// Zero in every engine-owned path; nonzero means a fat capture crept in.
  std::uint64_t callback_heap_fallbacks = 0;
  std::size_t heap_hiwater = 0;       // max heap entries (incl. stale)
  std::size_t slab_capacity = 0;      // slots ever allocated
  std::size_t slab_live_hiwater = 0;  // max simultaneously armed events
  /// Fault-injection totals (src/fault/): packets a Link discarded because
  /// of an injected impairment — interface outage at transmit() or wire
  /// loss at serialization end — and extra copies created by duplication.
  /// Counted separately from queue drops (Link::drops() / Queue stats).
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;

  /// Compact one-line rendering for bench transcripts.
  std::string render() const {
    char buf[320];
    int n = std::snprintf(buf, sizeof(buf),
                          "scheduled=%llu cancelled=%llu rescheduled=%llu "
                          "dispatched=%llu heap_fallbacks=%llu heap_hiwater=%zu "
                          "slab_capacity=%zu slab_live_hiwater=%zu",
                          static_cast<unsigned long long>(scheduled),
                          static_cast<unsigned long long>(cancelled),
                          static_cast<unsigned long long>(rescheduled),
                          static_cast<unsigned long long>(dispatched),
                          static_cast<unsigned long long>(callback_heap_fallbacks),
                          heap_hiwater, slab_capacity, slab_live_hiwater);
    // Fault counters appear only when faults were injected, so pristine
    // bench transcripts are unchanged.
    if ((fault_drops || fault_duplicates) && n > 0 &&
        static_cast<std::size_t>(n) < sizeof(buf)) {
      std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                    " fault_drops=%llu fault_duplicates=%llu",
                    static_cast<unsigned long long>(fault_drops),
                    static_cast<unsigned long long>(fault_duplicates));
    }
    return buf;
  }
};

}  // namespace rlacast::stats
