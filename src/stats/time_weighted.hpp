// Time-weighted averaging of piecewise-constant signals.
//
// The paper's tables report the *time average* congestion window over the
// measurement period (3000 s minus 100 s warm-up).  cwnd is piecewise
// constant between updates, so the average is the integral of the held value
// divided by elapsed time.  Warm-up is handled by reset_at().
#pragma once

#include "sim/time.hpp"

namespace rlacast::stats {

class TimeWeightedMean {
 public:
  /// Starts tracking at time t0 with initial value v0.
  void start(sim::SimTime t0, double v0) {
    last_time_ = t0;
    last_value_ = v0;
    area_ = 0.0;
    origin_ = t0;
    started_ = true;
  }

  /// Records that the signal changed to `v` at time `t`.
  void update(sim::SimTime t, double v) {
    if (!started_) {
      start(t, v);
      return;
    }
    area_ += last_value_ * (t - last_time_);
    last_time_ = t;
    last_value_ = v;
  }

  /// Discards history accumulated before `t` (warm-up cut) but keeps the
  /// current held value.
  void reset_at(sim::SimTime t) {
    if (!started_) {
      start(t, 0.0);
      return;
    }
    area_ = 0.0;
    last_time_ = t;
    origin_ = t;
  }

  /// Mean over [origin, t]. The currently held value is extended to `t`.
  double mean(sim::SimTime t) const {
    if (!started_ || t <= origin_) return last_value_;
    const double area = area_ + last_value_ * (t - last_time_);
    return area / (t - origin_);
  }

  double current() const { return last_value_; }
  bool started() const { return started_; }

 private:
  sim::SimTime origin_ = 0.0;
  sim::SimTime last_time_ = 0.0;
  double last_value_ = 0.0;
  double area_ = 0.0;
  bool started_ = false;
};

}  // namespace rlacast::stats
