#include "stats/time_weighted.hpp"

namespace rlacast::stats {}
