// Minimal fixed-width text table used by the bench harnesses to print the
// paper's result tables (Figures 7, 8, 9, 10) in the same row/column layout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rlacast::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric cells with fixed precision.
  static std::string num(double v, int precision = 1);

  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace rlacast::stats
