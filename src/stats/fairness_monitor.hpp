// Continuous fairness telemetry: a timer-polled sliding-window Jain index
// over a set of flows (ROADMAP item 3's "Jain-fairness telemetry").
//
// The paper's Theorems I/II bound the *ratio* of the RLA session's
// throughput to TCP's; the Jain index J = (sum x)^2 / (n * sum x^2)
// compresses the same per-window throughput vector into one number in
// (1/n, 1] — J = 1 is a perfectly fair window, J = 1/n is one flow
// starving the rest.  The monitor emits one FairnessSample per window so
// benches can plot a time series and report the minimum (the worst
// transient), not just the run-long average that hides convergence.
//
// Application-limited exclusion (the fix ISSUE 6 calls out): a flow that
// WON'T use its share — a web flow between requests, a finite flow's tail,
// a source that has not started — is not evidence about a flow that CAN'T
// get its share.  Each probe carries an app_limited() predicate; a flow
// that reports limited at either window edge (or made no progress at all
// while limited) is dropped from that window's index, and the sample
// records how many flows were excluded.  With every flow excluded the
// window yields no index (jain = -1) and is skipped by min/mean.
//
// Determinism: the monitor draws no randomness and, when config.window is
// 0 (the default everywhere), arms no timer and touches nothing — the four
// historical figure benches stay byte-identical with the monitor compiled
// in but idle.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rlacast::stats {

struct FairnessMonitorConfig {
  /// Sliding-window length in seconds; 0 disables the monitor entirely
  /// (no timer, no samples).
  sim::SimTime window = 0.0;
  /// First window starts here (benches pass the warmup boundary).
  sim::SimTime start = 0.0;
  /// No windows start at or after this time; 0 = run forever.
  sim::SimTime stop = 0.0;
};

/// One monitored flow: a name for reports, a cumulative delivered-packets
/// reader, and the application-limited predicate sampled at window edges.
struct FlowProbe {
  std::string name;
  std::function<double()> delivered;     // cumulative packets acked
  std::function<bool()> app_limited;     // true = don't count this window
};

/// One completed window.
struct FairnessSample {
  sim::SimTime t_end = 0.0;  // window [t_end - window, t_end]
  /// Jain index over the network-limited flows; -1 when every flow was
  /// application-limited (no evidence this window).
  double jain = -1.0;
  int flows_counted = 0;
  int flows_app_limited = 0;
  /// Per-flow throughput (pps) this window, probe order; -1 for excluded
  /// flows so series stay column-aligned.
  std::vector<double> throughput_pps;
};

class FairnessMonitor {
 public:
  /// Probes may be added until the first window closes. The monitor arms
  /// its timer lazily on the first add_probe call (and only if
  /// config.window > 0), so an unconfigured monitor is inert.
  FairnessMonitor(sim::Simulator& sim, FairnessMonitorConfig config);

  void add_probe(FlowProbe probe);

  bool enabled() const { return config_.window > 0.0; }
  const std::vector<FairnessSample>& samples() const { return samples_; }

  /// Minimum/mean Jain index over windows that produced evidence (jain >=
  /// 0); -1 when no window did.
  double min_jain() const;
  double mean_jain() const;

  /// J = (sum x)^2 / (n * sum x^2) over xs; -1 for an empty vector, 1.0
  /// when every entry is 0 (all-idle is trivially fair). Never NaN: a
  /// non-finite result degrades to the -1 "no evidence" sentinel.
  static double jain_index(const std::vector<double>& xs);

 private:
  void on_window();

  sim::Simulator& sim_;
  FairnessMonitorConfig config_;
  sim::Timer timer_;
  bool armed_ = false;
  sim::SimTime window_start_ = 0.0;

  struct ProbeState {
    FlowProbe probe;
    double delivered_at_start = 0.0;
    bool limited_at_start = true;  // pre-start flows begin excluded
  };
  std::vector<ProbeState> probes_;
  std::vector<FairnessSample> samples_;
};

}  // namespace rlacast::stats
