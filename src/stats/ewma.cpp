#include "stats/ewma.hpp"

namespace rlacast::stats {}
