// 2-D occupancy histogram, used to reproduce Figure 5 (density plot of the
// joint (cwnd1, cwnd2) process of two competing multicast sessions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rlacast::stats {

class Histogram2D {
 public:
  /// Covers [0, x_max) x [0, y_max) with nx x ny uniform bins.
  Histogram2D(double x_max, double y_max, std::size_t nx, std::size_t ny);

  /// Adds `weight` at (x, y); samples outside the range are clamped to the
  /// edge bins so probability mass is conserved.
  void add(double x, double y, double weight = 1.0);

  double at(std::size_t ix, std::size_t iy) const {
    return bins_[iy * nx_ + ix];
  }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  double total() const { return total_; }

  /// Bin centre coordinates.
  double x_center(std::size_t ix) const { return (ix + 0.5) * x_max_ / nx_; }
  double y_center(std::size_t iy) const { return (iy + 0.5) * y_max_ / ny_; }

  /// Coordinates of the modal (highest-mass) bin centre.
  std::pair<double, double> mode() const;

  /// Marginal means of the (normalized) histogram.
  double mean_x() const;
  double mean_y() const;

  /// Fraction of mass within a Chebyshev radius (in bins) of bin (cx, cy).
  double mass_near(double x, double y, double radius) const;

  /// ASCII-art density rendering (darker glyph = more mass), rows printed
  /// top-to-bottom in decreasing y like the paper's plot.
  std::string render_ascii(std::size_t max_cols = 40) const;

 private:
  double x_max_, y_max_;
  std::size_t nx_, ny_;
  std::vector<double> bins_;
  double total_ = 0.0;
};

}  // namespace rlacast::stats
