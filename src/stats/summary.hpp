// Scalar sample summaries (mean / min / max / variance / 95% CI) used by the
// table reproductions (e.g. worst / best / average congestion-signal counts
// per branch in Figure 8), by the experiment runner's replicate aggregation
// (exp/results), and by tests asserting distributions.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace rlacast::stats {

class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Unbiased sample variance.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  /// Half-width of the two-sided 95% confidence interval for the mean,
  /// t_{0.975,n-1} * s / sqrt(n).  Uses Student's t (not 1.96) because
  /// replicate counts are small; 0 when n < 2 (no interval estimable).
  double ci95_halfwidth() const {
    if (n_ < 2) return 0.0;
    return t975(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
  }

  /// Two-sided 95% Student-t critical value for `df` degrees of freedom
  /// (exact table for df <= 30, asymptote 1.960 beyond).
  static double t975(std::size_t df) {
    static constexpr double kTable[31] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0) return 0.0;
    return df <= 30 ? kTable[df] : 1.960;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rlacast::stats
