// Scalar sample summaries (mean / min / max / variance) used by the table
// reproductions (e.g. worst / best / average congestion-signal counts per
// branch in Figure 8) and by tests asserting distributions.
#pragma once

#include <cstddef>
#include <limits>

namespace rlacast::stats {

class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Unbiased sample variance.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rlacast::stats
