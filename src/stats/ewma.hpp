// Exponentially weighted moving averages.
//
// Two flavours are needed by the paper:
//  * sample-based EWMA (TCP srtt/rttvar, RLA congestion-interval average,
//    LTRC loss-rate average) — Ewma;
//  * a time-decayed EWMA for queue averaging used by RED, which must decay
//    per *packet arrival* with idle-time compensation — that one lives in
//    the RED queue itself because its decay rule is RED-specific.
#pragma once

#include <cstddef>

namespace rlacast::stats {

/// Classic sample EWMA: avg <- (1-g)*avg + g*sample.
/// Until the first sample arrives, value() returns the configured initial
/// value and initialized() is false.
class Ewma {
 public:
  explicit Ewma(double gain, double initial = 0.0)
      : gain_(gain), value_(initial) {}

  void add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += gain_ * (sample - value_);
    }
    ++count_;
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  std::size_t count() const { return count_; }
  double gain() const { return gain_; }

  void reset(double initial = 0.0) {
    value_ = initial;
    initialized_ = false;
    count_ = 0;
  }

 private:
  double gain_;
  double value_;
  bool initialized_ = false;
  std::size_t count_ = 0;
};

}  // namespace rlacast::stats
