// FlowMeasurement: the per-connection statistics rows of the paper's tables.
//
// Collects exactly what Figures 7, 9 and 10 report per flow: average
// throughput (packets acknowledged per second after warm-up), time-averaged
// congestion window, mean per-packet RTT (packets delivered without
// retransmission only, as the paper specifies), and the counts of congestion
// signals, window cuts and forced cuts.
//
// The harness calls begin_measurement(warmup) once; everything before that
// instant is discarded, mirroring "statistics are collected after the first
// 100 seconds".
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "stats/summary.hpp"
#include "stats/time_weighted.hpp"

namespace rlacast::stats {

class FlowMeasurement {
 public:
  // --- recording (called by protocol agents) -------------------------------
  void note_cwnd(sim::SimTime t, double cwnd) { cwnd_mean_.update(t, cwnd); }
  void note_rtt(sim::SimTime t, double rtt) {
    if (measuring_ && t >= warmup_) rtt_.add(rtt);
  }
  void note_acked(std::int64_t n) { pkts_acked_ += static_cast<std::uint64_t>(n); }
  void note_congestion_signal() { ++cong_signals_; }
  void note_window_cut() { ++window_cuts_; }
  void note_forced_cut() { ++forced_cuts_; }
  void note_timeout() { ++timeouts_; }

  // --- harness control ------------------------------------------------------
  /// Starts the measurement period at time `t` (warm-up cut).
  void begin_measurement(sim::SimTime t) {
    warmup_ = t;
    measuring_ = true;
    cwnd_mean_.reset_at(t);
    base_acked_ = pkts_acked_;
    base_signals_ = cong_signals_;
    base_cuts_ = window_cuts_;
    base_forced_ = forced_cuts_;
    base_timeouts_ = timeouts_;
  }

  // --- reading (at end time `t`) --------------------------------------------
  double throughput_pps(sim::SimTime t) const {
    const double dt = t - warmup_;
    return dt > 0.0 ? static_cast<double>(pkts_acked_ - base_acked_) / dt : 0.0;
  }
  double avg_cwnd(sim::SimTime t) const { return cwnd_mean_.mean(t); }
  double avg_rtt() const { return rtt_.mean(); }
  std::uint64_t congestion_signals() const { return cong_signals_ - base_signals_; }
  std::uint64_t window_cuts() const { return window_cuts_ - base_cuts_; }
  std::uint64_t forced_cuts() const { return forced_cuts_ - base_forced_; }
  std::uint64_t timeouts() const { return timeouts_ - base_timeouts_; }
  std::uint64_t total_acked() const { return pkts_acked_; }
  const Summary& rtt_summary() const { return rtt_; }

 private:
  TimeWeightedMean cwnd_mean_;
  Summary rtt_;
  std::uint64_t pkts_acked_ = 0;
  std::uint64_t cong_signals_ = 0;
  std::uint64_t window_cuts_ = 0;
  std::uint64_t forced_cuts_ = 0;
  std::uint64_t timeouts_ = 0;

  sim::SimTime warmup_ = 0.0;
  bool measuring_ = false;
  std::uint64_t base_acked_ = 0;
  std::uint64_t base_signals_ = 0;
  std::uint64_t base_cuts_ = 0;
  std::uint64_t base_forced_ = 0;
  std::uint64_t base_timeouts_ = 0;
};

}  // namespace rlacast::stats
