// Figure 4: average drift field of two competing RLA congestion windows.
//
// The §4.4 model: two multicast sessions share n troubled virtual links.
// Below the aggregate pipe (cwnd1 + cwnd2 < pipe) both windows grow by 2 per
// time unit (Δt = 2 RTT).  At or above it, each sender independently takes
// i halvings with probability Binomial(n, 1/n)_i, so the expected drift of
// W along its axis is
//
//     2 p0  -  Σ_{i=1..n} (W - W/2^i) p_i .
//
// The multi-pipe staircase (pipe_1 < … < pipe_k carrying n_1 … n_k
// receivers) generalizes this: between pipe_j and pipe_{j+1} the senders
// receive m_j = n_1 + … + n_j signals, and the halving count is
// Binomial(m_j, 1/n) with n = Σ n_j.
#pragma once

#include <vector>

namespace rlacast::model {

struct PipeClass {
  double pipe = 0.0;  // pipe size (packets)
  int receivers = 0;  // receivers whose virtual link has this pipe size
};

class DriftField {
 public:
  /// Single-pipe constructor (the paper's Figure 4 uses n = 3, pipe = 10).
  DriftField(int n, double pipe);

  /// Multi-pipe staircase constructor; classes must be sorted by pipe size.
  explicit DriftField(std::vector<PipeClass> classes);

  /// Expected (dW1, dW2) per time unit (2 RTT) at state (w1, w2).
  struct Vec {
    double dx = 0.0;
    double dy = 0.0;
  };
  Vec drift(double w1, double w2) const;

  /// Number of congestion signals received per event at state (w1, w2):
  /// 0 below the first pipe, m_j in staircase region j.
  int signals_at(double w1, double w2) const;

  int total_receivers() const { return n_; }

 private:
  /// Expected per-axis drift of a window of size w under m signals.
  double axis_drift(double w, int m) const;

  std::vector<PipeClass> classes_;
  int n_ = 0;
};

}  // namespace rlacast::model
