#include "model/two_session_markov.hpp"

#include <algorithm>
#include <cmath>

namespace rlacast::model {

TwoSessionResult run_two_session_markov(const TwoSessionParams& p,
                                        sim::Rng rng) {
  const double hist_max = p.hist_max > 0.0 ? p.hist_max : 2.0 * p.pipe;
  TwoSessionResult res{
      stats::Histogram2D(hist_max, hist_max, p.hist_bins, p.hist_bins)};

  double w1 = p.w0_1, w2 = p.w0_2;
  double sum1 = 0.0, sum2 = 0.0;
  const double fair = p.pipe / 2.0;
  const double near_r = p.pipe / 4.0;
  bool was_near = false;

  auto step_window = [&](double w, int n) {
    // Halvings arrive Binomial(n, 1/n): draw the count directly.
    int cuts = 0;
    for (int i = 0; i < n; ++i)
      if (rng.chance(1.0 / static_cast<double>(n))) ++cuts;
    if (cuts == 0) return w + 2.0;
    return std::max(w / std::pow(2.0, cuts), 1.0);
  };

  for (std::int64_t t = 0; t < p.steps + p.warmup_steps; ++t) {
    if (w1 + w2 < p.pipe) {
      w1 += 2.0;
      w2 += 2.0;
    } else {
      // Both senders see the same congestion signals but coin-flip
      // independently.
      const double nw1 = step_window(w1, p.n);
      const double nw2 = step_window(w2, p.n);
      w1 = nw1;
      w2 = nw2;
    }

    if (t < p.warmup_steps) continue;
    res.density.add(w1, w2);
    sum1 += w1;
    sum2 += w2;
    const bool near = std::abs(w1 - fair) <= near_r && std::abs(w2 - fair) <= near_r;
    if (near && !was_near) ++res.fair_point_visits;
    was_near = near;
  }

  const double n_samples = static_cast<double>(p.steps);
  res.mean_w1 = sum1 / n_samples;
  res.mean_w2 = sum2 / n_samples;
  res.mass_near_fair = res.density.mass_near(fair, fair, near_r);
  return res;
}

}  // namespace rlacast::model
