// Figure 5: Monte-Carlo simulation of the §4.4 two-session Markov chain.
//
// State (W1, W2); time step Δt = 2 RTT.  Below the pipe both windows grow by
// 2; at/above it each window independently grows by 2 with probability
// p0 = (1-1/n)^n or is divided by 2^i with probability Binomial(n, 1/n)_i.
// The paper's claims, which the benches verify: the desired operating point
// (pipe/2, pipe/2) is recurrent, both marginals have equal means (the chain
// is exchangeable), and most probability mass concentrates around the
// desired point.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "stats/histogram2d.hpp"

namespace rlacast::model {

struct TwoSessionParams {
  int n = 27;          // receivers per session
  double pipe = 40.0;  // aggregate pipe (packets); desired point = pipe/2 each
  double w0_1 = 1.0;   // initial windows
  double w0_2 = 1.0;
  std::int64_t steps = 1'000'000;
  std::int64_t warmup_steps = 1'000;
  double hist_max = 0.0;  // histogram range; 0 = 2*pipe
  std::size_t hist_bins = 80;
};

struct TwoSessionResult {
  stats::Histogram2D density;
  double mean_w1 = 0.0;
  double mean_w2 = 0.0;
  /// Fraction of steps within Chebyshev radius pipe/4 of the desired point.
  double mass_near_fair = 0.0;
  /// Number of visits to the neighbourhood of the desired operating point
  /// (recurrence evidence).
  std::int64_t fair_point_visits = 0;
};

TwoSessionResult run_two_session_markov(const TwoSessionParams& p,
                                        sim::Rng rng);

}  // namespace rlacast::model
