// Closed-form results of §4 of the paper.
//
// All window sizes are "proportional average (PA)" windows: the zero-drift
// point of the congestion-window random walk, which the paper (following
// Ott/Kemperman/Mathis) uses as a proxy proportional to the true time
// average.
#pragma once

namespace rlacast::model {

/// Eq. (1): PA window of TCP congestion avoidance under congestion
/// probability p:  W = sqrt(2(1-p)/p).
double tcp_pa_window(double p);

/// The √(2/p) small-p approximation of eq. (1).
double tcp_pa_window_approx(double p);

/// Mahdavi–Floyd TCP throughput estimate, packets/second:
/// 1.3 / (rtt * sqrt(p)).
double tcp_throughput_mahdavi(double rtt, double p);

/// Eq. (3): PA window of the RLA sender with two receivers on independent
/// loss paths with congestion probabilities p1 and p2 (pthresh = 1/2):
///   W^2 = 4 { 1 - (p1+p2)/2 + p1 p2 /4 } / { p1 + p2 - p1 p2 /4 }.
double rla_two_receiver_window(double p1, double p2);

/// PA window for n receivers with *fully common* losses (every signal hits
/// all receivers at once; pthresh = 1/n).  Derived with the same drift
/// technique as eq. (3): on a congestion event the sender takes i cuts with
/// probability Binom(n, 1/n); see DESIGN.md.
double rla_common_loss_window(double p, int n);

/// PA window for n receivers with independent losses of equal probability p
/// (pthresh = 1/n), by the same drift construction.
double rla_independent_loss_window(double p, int n);

/// Proposition (eq. 2) bounds on the RLA PA window given n troubled
/// receivers and the largest per-receiver congestion probability p_max:
///   sqrt(2(1-p)/p) < W < sqrt(n) * sqrt(2(1-p)/p).
struct Bounds {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double w) const { return lo < w && w < hi; }
};
Bounds proposition_window_bounds(double p_max, int n);

/// Theorem I: essential-fairness throughput bounds with RED gateways:
/// a = 1/3, b = sqrt(3 n).
Bounds theorem1_red_bounds(int n);

/// Theorem II: essential-fairness bounds with drop-tail gateways and phase
/// effects eliminated: a = 1/4, b = 2 n.
Bounds theorem2_droptail_bounds(int n);

/// §4.2's troubled-receiver condition: the two-receiver upper bound of the
/// Proposition holds when x = p2/p1 >= f(p1) = p1 / (2 - 1.5 p1).
double troubled_ratio_threshold(double p1);

}  // namespace rlacast::model
