#include "model/drift.hpp"

#include <cassert>
#include <cmath>

namespace rlacast::model {
namespace {

double binom_pmf(int n, int i, double q) {
  double logc = 0.0;
  for (int k = 0; k < i; ++k)
    logc += std::log(static_cast<double>(n - k) / static_cast<double>(i - k));
  return std::exp(logc + i * std::log(q) + (n - i) * std::log1p(-q));
}

}  // namespace

DriftField::DriftField(int n, double pipe)
    : DriftField(std::vector<PipeClass>{{pipe, n}}) {}

DriftField::DriftField(std::vector<PipeClass> classes)
    : classes_(std::move(classes)) {
  for (std::size_t j = 0; j < classes_.size(); ++j) {
    assert(j == 0 || classes_[j].pipe > classes_[j - 1].pipe);
    n_ += classes_[j].receivers;
  }
  assert(n_ > 0);
}

int DriftField::signals_at(double w1, double w2) const {
  const double sum = w1 + w2;
  int m = 0;
  for (const auto& c : classes_)
    if (sum >= c.pipe) m += c.receivers;
  return m;
}

double DriftField::axis_drift(double w, int m) const {
  if (m == 0) return 2.0;
  const double q = 1.0 / static_cast<double>(n_);
  double d = 2.0 * binom_pmf(m, 0, q);
  for (int i = 1; i <= m; ++i)
    d -= (w - w / std::pow(2.0, i)) * binom_pmf(m, i, q);
  return d;
}

DriftField::Vec DriftField::drift(double w1, double w2) const {
  const int m = signals_at(w1, w2);
  return {axis_drift(w1, m), axis_drift(w2, m)};
}

}  // namespace rlacast::model
