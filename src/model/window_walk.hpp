// Monte-Carlo simulation of the per-packet congestion-window random walks
// of §4.1/§4.2 — the processes whose zero-drift points give eq. (1) and
// eq. (3).  Used to validate the paper's claim that the PA window "is a
// good approximation to the time average of the random process W_t and in
// fact is proportional to it".
//
// TCP walk (§4.1):   with prob 1-p: W += 1/W;  with prob p: W /= 2.
// RLA walk (§4.2):   n receivers; per packet each receiver independently
//   signals with prob p_i; each signal is obeyed with prob 1/n; W is halved
//   once per obeyed signal (i obeyed signals -> W / 2^i), else W += 1/W.
//   Common-loss variant: one signal event with prob p reaches all n
//   receivers at once.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace rlacast::model {

struct WalkResult {
  double mean_window = 0.0;      // time (= per-packet) average of W_t
  double pa_window = 0.0;        // the zero-drift PA prediction
  double ratio = 0.0;            // mean / PA
  double observed_cut_prob = 0.0;  // halvings per packet (sanity)
};

/// TCP congestion-avoidance walk at loss probability p.
WalkResult walk_tcp(double p, std::int64_t steps, sim::Rng rng);

/// RLA walk with n receivers, each with independent signal probability p.
WalkResult walk_rla_independent(double p, int n, std::int64_t steps,
                                sim::Rng rng);

/// RLA walk with fully common losses of probability p.
WalkResult walk_rla_common(double p, int n, std::int64_t steps, sim::Rng rng);

}  // namespace rlacast::model
