#include "model/window_walk.hpp"

#include <cmath>

#include "model/formulas.hpp"

namespace rlacast::model {
namespace {

/// Runs a walk given a per-step congestion-decision callback that returns
/// the number of halvings to apply this step.
template <typename CutsFn>
WalkResult run_walk(double pa, std::int64_t steps, CutsFn&& cuts_fn) {
  double w = pa;  // start at the predicted operating point
  double sum = 0.0;
  std::int64_t halvings = 0;
  const std::int64_t warmup = steps / 10;
  for (std::int64_t t = 0; t < steps + warmup; ++t) {
    const int cuts = cuts_fn();
    if (cuts == 0) {
      w += 1.0 / w;
    } else {
      w = std::max(w / std::pow(2.0, cuts), 1.0);
      halvings += cuts;
    }
    if (t >= warmup) sum += w;
  }
  WalkResult res;
  res.mean_window = sum / static_cast<double>(steps);
  res.pa_window = pa;
  res.ratio = res.mean_window / pa;
  res.observed_cut_prob =
      static_cast<double>(halvings) / static_cast<double>(steps + warmup);
  return res;
}

}  // namespace

WalkResult walk_tcp(double p, std::int64_t steps, sim::Rng rng) {
  return run_walk(tcp_pa_window(p), steps,
                  [&] { return rng.chance(p) ? 1 : 0; });
}

WalkResult walk_rla_independent(double p, int n, std::int64_t steps,
                                sim::Rng rng) {
  const double q = 1.0 / static_cast<double>(n);
  return run_walk(rla_independent_loss_window(p, n), steps, [&] {
    int cuts = 0;
    for (int i = 0; i < n; ++i)
      if (rng.chance(p) && rng.chance(q)) ++cuts;
    return cuts;
  });
}

WalkResult walk_rla_common(double p, int n, std::int64_t steps,
                           sim::Rng rng) {
  const double q = 1.0 / static_cast<double>(n);
  return run_walk(rla_common_loss_window(p, n), steps, [&] {
    if (!rng.chance(p)) return 0;
    int cuts = 0;
    for (int i = 0; i < n; ++i)
      if (rng.chance(q)) ++cuts;
    return cuts;
  });
}

}  // namespace rlacast::model
