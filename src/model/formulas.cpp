#include "model/formulas.hpp"

#include <cassert>
#include <cmath>

namespace rlacast::model {

double tcp_pa_window(double p) {
  assert(p > 0.0 && p < 1.0);
  return std::sqrt(2.0 * (1.0 - p) / p);
}

double tcp_pa_window_approx(double p) {
  assert(p > 0.0);
  return std::sqrt(2.0 / p);
}

double tcp_throughput_mahdavi(double rtt, double p) {
  assert(rtt > 0.0 && p > 0.0);
  return 1.3 / (rtt * std::sqrt(p));
}

double rla_two_receiver_window(double p1, double p2) {
  // Eq. (3). Derived from the four-outcome drift enumeration in §4.2.
  const double cross = p1 * p2 / 4.0;
  const double num = 4.0 * (1.0 - 0.5 * (p1 + p2) + cross);
  const double den = p1 + p2 - cross;
  assert(den > 0.0);
  return std::sqrt(num / den);
}

double rla_common_loss_window(double p, int n) {
  // Every congestion event delivers n simultaneous signals, each obeyed
  // independently with probability 1/n, so the number of halvings is
  // Binomial(n, 1/n):
  //   gain  : (1-p)/W + p * P(i=0)/W
  //   loss  : p * W * E[(1 - 2^-i) 1{i>=1}] = p * W * (1 - E[2^-i])
  // with P(i=0) = (1-1/n)^n and E[2^-i] = (1 - 1/(2n))^n.
  assert(p > 0.0 && p < 1.0 && n >= 1);
  const double nn = static_cast<double>(n);
  const double p0 = std::pow(1.0 - 1.0 / nn, nn);
  const double e_half = std::pow(1.0 - 0.5 / nn, nn);
  const double num = 1.0 - p + p * p0;
  const double den = p * (1.0 - e_half);
  return std::sqrt(num / den);
}

double rla_independent_loss_window(double p, int n) {
  // Independent equal-probability losses: receiver j delivers a signal with
  // probability p, obeyed with probability 1/n, so a halving arrives from
  // receiver j with probability p/n independently; total halvings are
  // Binomial(n, p/n):
  //   W^2 = P(i=0) / (1 - E[2^-i])
  // with P(i=0) = (1-p/n)^n and E[2^-i] = (1 - p/(2n))^n.
  // For n = 1 (or n = 2, cf. eq. 3 with p1 = p2) this reduces to eq. (1)/(3).
  assert(p > 0.0 && p < 1.0 && n >= 1);
  const double nn = static_cast<double>(n);
  const double p0 = std::pow(1.0 - p / nn, nn);
  const double e_half = std::pow(1.0 - 0.5 * p / nn, nn);
  return std::sqrt(p0 / (1.0 - e_half));
}

Bounds proposition_window_bounds(double p_max, int n) {
  const double base = tcp_pa_window(p_max);
  return {base, std::sqrt(static_cast<double>(n)) * base};
}

Bounds theorem1_red_bounds(int n) {
  return {1.0 / 3.0, std::sqrt(3.0 * static_cast<double>(n))};
}

Bounds theorem2_droptail_bounds(int n) {
  return {0.25, 2.0 * static_cast<double>(n)};
}

double troubled_ratio_threshold(double p1) {
  return p1 / (2.0 - 1.5 * p1);
}

}  // namespace rlacast::model
