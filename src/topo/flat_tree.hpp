// The restricted topology of Figure 1 and the two-receiver special cases of
// Figure 2, as runnable scenarios.
//
// One sender S with N receivers R_1..R_N.  Virtual link L_i runs S -> G ->
// B_i -> R_i with a per-branch bottleneck of mu_i packets/second, plus m_i
// competing TCP connections from S to R_i along the same path.  All branches
// share the same propagation delay, giving the equal-RTT restricted topology
// the fairness definitions require.  Alternatively a *shared* bottleneck can
// be placed on the common S -> G hop (Figure 2(b): fully correlated losses).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/red.hpp"
#include "rla/rla_params.hpp"
#include "sim/time.hpp"
#include "stats/fairness_monitor.hpp"
#include "tcp/tcp_sender.hpp"
#include "topo/flow_rows.hpp"
#include "workload/workload.hpp"

namespace rlacast::sim {
class Simulator;
}

namespace rlacast::topo {

enum class GatewayType { kDropTail, kRed };

struct FlatBranch {
  double mu_pps = 200.0;  // bottleneck capacity of this branch, packets/s
  int n_tcp = 1;          // m_i: competing TCP connections on this branch
  /// Additional one-way propagation delay on this branch's last hop.
  /// 0 keeps the equal-RTT restricted topology; nonzero values build
  /// heterogeneous-RTT scenarios (pair with RlaParams::rtt_exponent = 2).
  sim::SimTime extra_delay = 0.0;
};

struct FlatTreeConfig {
  std::vector<FlatBranch> branches;
  /// 0 = per-branch bottlenecks only (fig. 2(a) style); > 0 places the
  /// bottleneck on the shared first hop with this capacity (fig. 2(b));
  /// branch links are then fast.
  double shared_bottleneck_pps = 0.0;
  GatewayType gateway = GatewayType::kDropTail;
  std::size_t buffer_pkts = 20;
  net::RedParams red{};  // min_th 5 / max_th 15 defaults
  double fast_link_bps = 100e6;
  sim::SimTime hop_delay = sim::milliseconds(5);  // per hop, 3 hops per branch
  bool phase_randomization = true;  // random sender overhead for drop-tail
  sim::SimTime duration = 200.0;
  sim::SimTime warmup = 50.0;
  std::uint64_t seed = 1;
  rla::RlaParams rla{};
  tcp::TcpParams tcp{};
  bool with_multicast = true;  // false = TCP-only runs (calibration tests)
  /// Called on the freshly constructed Simulator before any component is
  /// built; the replay subsystem installs its RunObserver here. Empty =
  /// unobserved (default).
  std::function<void(sim::Simulator&)> instrument;
  /// Start-time layout for all senders (kJitter default = the historical
  /// uniform(0,1) draws, byte-identical).
  workload::StartScheduleConfig schedule{};
  /// Sliding-window Jain telemetry over {RLA + TCPs}; window 0 = off.
  stats::FairnessMonitorConfig fairness{};
};

struct FlatTreeResult {
  FlowRow rla;
  std::vector<FlowRow> tcps;              // one per TCP connection
  std::vector<int> tcp_branch;            // branch index of each TCP row
  std::vector<std::uint64_t> rla_signals_per_receiver;
  std::vector<double> bottleneck_drop_rate;  // per branch (or [0] if shared)
  double rla_mcast_rexmits = 0.0;
  double rla_ucast_rexmits = 0.0;
  int num_troubled_final = 0;
  /// Jain-index telemetry (empty / -1 unless fairness.window > 0).
  std::vector<stats::FairnessSample> fairness_samples;
  double min_jain = -1.0;
  double mean_jain = -1.0;

  const FlowRow& worst_tcp() const { return tcps[worst_index(tcps)]; }
  const FlowRow& best_tcp() const { return tcps[best_index(tcps)]; }
};

/// Builds, runs and measures the scenario.
FlatTreeResult run_flat_tree(const FlatTreeConfig& cfg);

}  // namespace rlacast::topo
