#include "topo/flow_rows.hpp"

#include <cassert>

namespace rlacast::topo {

FlowRow make_row(const stats::FlowMeasurement& m, sim::SimTime t_end) {
  FlowRow r;
  r.throughput_pps = m.throughput_pps(t_end);
  r.avg_cwnd = m.avg_cwnd(t_end);
  r.avg_rtt = m.avg_rtt();
  r.cong_signals = m.congestion_signals();
  r.window_cuts = m.window_cuts();
  r.forced_cuts = m.forced_cuts();
  r.timeouts = m.timeouts();
  return r;
}

std::size_t worst_index(const std::vector<FlowRow>& rows) {
  assert(!rows.empty());
  std::size_t w = 0;
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].throughput_pps < rows[w].throughput_pps) w = i;
  return w;
}

std::size_t best_index(const std::vector<FlowRow>& rows) {
  assert(!rows.empty());
  std::size_t b = 0;
  for (std::size_t i = 1; i < rows.size(); ++i)
    if (rows[i].throughput_pps > rows[b].throughput_pps) b = i;
  return b;
}

}  // namespace rlacast::topo
