// Large-topology builder: the scale companion to run_tertiary_tree.
//
// The paper validates Theorems I/II on 27 receivers; the ROADMAP's north
// star is 10^4..10^6.  Simulating a million individual leaves would spend
// all memory on the NETWORK model and mask the quantity the scale bench
// measures — sender bytes per receiver — so this builder collapses each
// group of `group_size` co-located receivers into one leaf node carrying a
// single rla::GroupReceiver (one reassembly buffer, one downstream loss
// pattern) while the sender still runs a full census entry and one ACK
// stream per MEMBER.  Geometry:
//
//     S --- G1 --- branch_j --- group leaf (g members each)
//
// with ~sqrt(#groups) branches.  The first `congested_groups` group links
// are the paper's soft bottlenecks: capacity share_pps * (1 TCP + 1)
// packets/s, RED or drop-tail per `gateway`, one competing background TCP
// each; every other hop is fast.  A group link's REVERSE direction stands
// in for g independent per-leaf ACK paths, so it is provisioned at
// fast_link_bps (see net::LinkConfig::reverse_bandwidth_bps) — collapsing
// the subtree must not invent an ACK bottleneck that the uncollapsed tree
// does not have.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/red.hpp"
#include "rla/rla_params.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_sender.hpp"
#include "topo/flat_tree.hpp"  // GatewayType
#include "topo/flow_rows.hpp"

namespace rlacast::topo {

struct BigTreeConfig {
  /// Total session membership n (the `n` of the Theorem I/II bounds).
  int receivers = 1000;
  /// Members collapsed per group leaf; the last group takes the remainder.
  int group_size = 25;
  /// Leading group links that carry the soft bottleneck + background TCP.
  int congested_groups = 4;

  GatewayType gateway = GatewayType::kRed;
  double share_pps = 100.0;       // paper capacity rule: mu / (m + 1)
  double fast_link_bps = 10e9;    // uncongested hops and collapsed ACK paths
  /// Buffer of the congested bottleneck hops (paper-scale, small).
  std::size_t buffer_pkts = 20;
  /// Buffer of the fast interior hops and the collapsed ACK reverse paths;
  /// 0 = auto-size to the ACK fan-in (receivers + slack).  Leaving these at
  /// the bottleneck's 20 packets silently drops most of the synchronized
  /// n-receiver ACK answer once n reaches ~10^4 (feedback implosion), and
  /// the bench then measures interior queue sizing instead of the gateway
  /// discipline under test.
  std::size_t ack_buffer_pkts = 0;
  net::RedParams red{};
  sim::SimTime upper_delay = sim::milliseconds(5);
  sim::SimTime leaf_delay = sim::milliseconds(100);

  /// Per-ACK processing jitter at the group receivers, Uniform(0, max).
  /// Replaces the per-host jitter the collapse removed: without it every
  /// member of every group answers one multicast delivery at the same
  /// instant and the shared reverse queues see a synchronized burst.
  sim::SimTime ack_spread = 0.02;

  double duration = 20.0;
  double warmup = 5.0;
  /// RLA session start (plus jitter). Defaults alongside the background
  /// TCPs (which start inside the first second) so every session
  /// slow-starts into the same empty queues — the paper's setups start
  /// flows together.  Starting the RLA session AFTER the TCPs entrench is
  /// a known trap at scale: on a RED queue held at a persistent drop
  /// probability by full-window TCPs, every small restart burst tail-loses
  /// (no packets after the hole -> no dupacks -> full RTO), and the
  /// session never escapes the timeout/collapse cycle.
  sim::SimTime rla_start = 0.0;
  std::uint64_t seed = 1;
  /// Sampling period of the materialized-scoreboard / state-bytes
  /// high-water probes; 0 disables sampling (final values only).
  sim::SimTime sample_period = 0.5;

  rla::RlaParams rla{};
  tcp::TcpParams tcp{};

  /// Replay hook (bench/replay_support.hpp), applied right after the
  /// simulator is constructed.
  std::function<void(sim::Simulator&)> instrument;
};

struct BigTreeResult {
  FlowRow rla;
  std::vector<FlowRow> tcps;  // one per congested group
  const FlowRow& worst_tcp() const { return tcps[worst_index(tcps)]; }
  const FlowRow& best_tcp() const { return tcps[best_index(tcps)]; }

  int nodes = 0;
  int groups = 0;
  double bottleneck_drop_rate = 0.0;  // mean over the congested forward hops
  /// Packets dropped anywhere EXCEPT the congested forward hops — feedback
  /// implosion shows up here (ACK fan-in overflowing interior buffers), and
  /// a large value means the bench is measuring queue sizing, not fairness.
  std::uint64_t offpath_drops = 0;

  std::uint64_t acks = 0;             // ACKs processed by the sender
  std::uint64_t events = 0;           // scheduler events dispatched
  std::uint64_t mcast_rexmits = 0;
  std::uint64_t ucast_rexmits = 0;
  int troubled_final = 0;
  int active_final = 0;
  std::uint64_t watchdog_quarantines = 0;

  /// Sender memory for the per-receiver machinery (rla::ReceiverTable +
  /// census + send info), sampled at end of run and at its high water.
  std::size_t sender_state_bytes = 0;
  std::size_t sender_state_bytes_hiwater = 0;
  /// The historical one-scoreboard-per-receiver cost of the same state —
  /// the denominator of the scale bench's memory-ratio headline.
  std::size_t baseline_state_bytes = 0;
  std::size_t materialized_final = 0;
  std::size_t materialized_hiwater = 0;
};

BigTreeResult run_big_tree(const BigTreeConfig& cfg);

}  // namespace rlacast::topo
