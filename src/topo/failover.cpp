#include "topo/failover.hpp"

#include <cassert>

namespace rlacast::topo {

FailoverManager::FailoverManager(net::Network& net, FailoverConfig cfg)
    : net_(net),
      sim_(net.simulator()),
      cfg_(cfg),
      timer_(sim_, [this] { poll(); }) {}

void FailoverManager::add_route(const BackupRoute& r) {
  Route rt;
  rt.r = r;
  rt.primary_fwd = net_.link_between(r.primary_parent, r.child);
  rt.primary_rev = net_.link_between(r.child, r.primary_parent);
  rt.backup_fwd = net_.link_between(r.backup_parent, r.child);
  rt.backup_rev = net_.link_between(r.child, r.backup_parent);
  assert(rt.primary_fwd && rt.primary_rev && rt.backup_fwd && rt.backup_rev &&
         "backup route references links that do not exist");
  routes_.push_back(rt);
}

void FailoverManager::watch_group(net::GroupId g, net::NodeId source,
                                  std::vector<net::NodeId> members) {
  groups_.push_back({g, source, std::move(members)});
}

void FailoverManager::start() { timer_.schedule(cfg_.poll); }

std::uint64_t FailoverManager::backup_delivered(const Route& rt) const {
  return rt.backup_fwd->packets_delivered() +
         rt.backup_rev->packets_delivered();
}

std::uint64_t FailoverManager::packets_rerouted() const {
  std::uint64_t total = rerouted_closed_;
  for (const Route& rt : routes_)
    if (rt.on_backup) total += backup_delivered(rt) - rt.backup_delivered_base;
  return total;
}

void FailoverManager::poll() {
  timer_.schedule(cfg_.poll);
  const sim::SimTime now = sim_.now();
  bool dirty = false;
  for (Route& rt : routes_) {
    const bool primary_down = rt.primary_fwd->interface_down(now) ||
                              rt.primary_rev->interface_down(now);
    if (!primary_down) {
      rt.down_since = -1.0;
      if (rt.on_backup) {
        // Primary healed: revert so the tree returns to its designed shape
        // (the backup may be a longer / shared path).
        rt.primary_fwd->set_routing_enabled(true);
        rt.primary_rev->set_routing_enabled(true);
        rt.backup_fwd->set_routing_enabled(false);
        rt.backup_rev->set_routing_enabled(false);
        rerouted_closed_ += backup_delivered(rt) - rt.backup_delivered_base;
        rt.on_backup = false;
        ++failover_reverts_;
        dirty = true;
      }
      continue;
    }
    if (rt.on_backup) continue;
    if (rt.down_since < 0.0) {
      rt.down_since = now;
      continue;
    }
    if (now - rt.down_since < cfg_.detect_delay) continue;
    // A crashed child router downs its backup uplink too (NodeFailure is
    // atomic over the node's interfaces): nothing to fail over to, keep
    // waiting — subtree excision owns that scenario.
    if (rt.backup_fwd->interface_down(now) ||
        rt.backup_rev->interface_down(now))
      continue;
    rt.primary_fwd->set_routing_enabled(false);
    rt.primary_rev->set_routing_enabled(false);
    rt.backup_fwd->set_routing_enabled(true);
    rt.backup_rev->set_routing_enabled(true);
    rt.backup_delivered_base = backup_delivered(rt);
    rt.on_backup = true;
    ++failover_events_;
    dirty = true;
  }
  if (dirty) regraft();
}

void FailoverManager::regraft() {
  net_.build_routes();
  for (const WatchedGroup& wg : groups_) {
    net_.clear_group(wg.group);
    for (const net::NodeId m : wg.members)
      net_.join_group(wg.group, wg.source, m);
  }
}

}  // namespace rlacast::topo
