#include "topo/big_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/group_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"

namespace rlacast::topo {
namespace {

double pps_to_bps(double pps, std::int32_t pkt_bytes) {
  return pps * static_cast<double>(pkt_bytes) * 8.0;
}

}  // namespace

BigTreeResult run_big_tree(const BigTreeConfig& cfg) {
  assert(cfg.receivers > 0 && cfg.group_size > 0);
  sim::Simulator sim(cfg.seed);
  if (cfg.instrument) cfg.instrument(sim);
  net::Network net(sim);

  const int groups =
      (cfg.receivers + cfg.group_size - 1) / cfg.group_size;
  const int congested = std::min(cfg.congested_groups, groups);
  const int branches = std::max(
      1, static_cast<int>(std::lround(std::ceil(std::sqrt(groups)))));

  // --- nodes -----------------------------------------------------------------
  const net::NodeId s = net.add_node();
  const net::NodeId g1 = net.add_node();
  std::vector<net::NodeId> branch(static_cast<std::size_t>(branches));
  for (auto& n : branch) n = net.add_node();
  std::vector<net::NodeId> leaf(static_cast<std::size_t>(groups));
  for (auto& n : leaf) n = net.add_node();

  // --- links -----------------------------------------------------------------
  const std::int32_t pkt_bytes = cfg.rla.packet_bytes;
  const std::size_t ack_buf =
      cfg.ack_buffer_pkts > 0
          ? cfg.ack_buffer_pkts
          : static_cast<std::size_t>(cfg.receivers) + 64;
  net::LinkConfig fast;
  fast.bandwidth_bps = cfg.fast_link_bps;
  fast.buffer_pkts = ack_buf;
  fast.delay = cfg.upper_delay;

  net.connect(s, g1, fast);
  for (int b = 0; b < branches; ++b)
    net.connect(g1, branch[static_cast<std::size_t>(b)], fast);

  // Group g hangs off branch g % branches, which spreads the congested
  // prefix over distinct branches.  The congested forward direction gets
  // the paper's soft-bottleneck capacity mu = share_pps * (m + 1) with one
  // background TCP (m = 1); its reverse stands in for group_size collapsed
  // per-leaf ACK paths and stays fast.
  const double cap_bps = pps_to_bps(cfg.share_pps * 2.0, pkt_bytes);
  std::vector<net::Link*> bottleneck_links;
  for (int g = 0; g < groups; ++g) {
    const net::NodeId up = branch[static_cast<std::size_t>(g % branches)];
    net::LinkConfig c = fast.with_delay(cfg.leaf_delay);
    if (g < congested) {
      c.bandwidth_bps = cap_bps;
      c.buffer_pkts = cfg.buffer_pkts;  // the soft bottleneck stays small
      c.reverse_bandwidth_bps = cfg.fast_link_bps;
      c.reverse_buffer_pkts = ack_buf;  // the group's collapsed ACK paths
      c.queue = cfg.gateway == GatewayType::kRed ? net::QueueKind::kRed
                                                 : net::QueueKind::kDropTail;
      c.red = cfg.red;
    }
    const auto duplex = net.connect(up, leaf[static_cast<std::size_t>(g)], c);
    if (g < congested) bottleneck_links.push_back(duplex.forward);
  }
  net.build_routes();

  // Drop-tail phase randomization: both flow kinds share one jitter bound
  // derived from the bottleneck serialization time (see run_tertiary_tree).
  const sim::SimTime overhead =
      cfg.gateway == GatewayType::kDropTail
          ? static_cast<double>(pkt_bytes) * 8.0 / cap_bps
          : 0.0;

  // --- the RLA session -------------------------------------------------------
  const net::GroupId group_id = 1;
  const net::PortId sender_port = 1000;
  const net::PortId rcvr_port = 10;
  rla::RlaParams rp = cfg.rla;
  rp.max_send_overhead = overhead;
  auto sender = std::make_unique<rla::RlaSender>(net, s, sender_port, group_id,
                                                 /*flow=*/1000, rp);
  sender->reserve_receivers(static_cast<std::size_t>(cfg.receivers));
  std::vector<std::unique_ptr<rla::GroupReceiver>> group_receivers;
  group_receivers.reserve(static_cast<std::size_t>(groups));
  int remaining = cfg.receivers;
  for (int g = 0; g < groups; ++g) {
    const net::NodeId node = leaf[static_cast<std::size_t>(g)];
    net.join_group(group_id, s, node);
    const int members = std::min(cfg.group_size, remaining);
    remaining -= members;
    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(members));
    for (int m = 0; m < members; ++m)
      ids.push_back(sender->add_receiver(node, rcvr_port));
    rla::GroupReceiverOptions gopts;
    gopts.max_ack_overhead = std::max(cfg.ack_spread, overhead);
    group_receivers.push_back(std::make_unique<rla::GroupReceiver>(
        net, node, rcvr_port, group_id, s, sender_port, std::move(ids),
        gopts));
  }
  assert(remaining == 0);

  // --- background TCP on every congested group link --------------------------
  std::vector<std::unique_ptr<tcp::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcp_receivers;
  for (int g = 0; g < congested; ++g) {
    const net::NodeId node = leaf[static_cast<std::size_t>(g)];
    const auto port = static_cast<net::PortId>(100 + g);
    tcp::TcpParams tp = cfg.tcp;
    tp.max_send_overhead = overhead;
    tcp_receivers.push_back(std::make_unique<tcp::TcpReceiver>(
        net, node, port, net::kAckPacketBytes, overhead));
    tcp_senders.push_back(std::make_unique<tcp::TcpSender>(
        net, s, port, node, port, static_cast<net::FlowId>(g + 1), tp));
  }

  auto starts = sim.rng_stream("start-jitter");
  for (auto& t : tcp_senders) t->start_at(starts.uniform(0.0, 1.0));
  sender->start_at(cfg.rla_start + starts.uniform(0.0, 0.5));

  BigTreeResult res;
  res.nodes = static_cast<int>(net.node_count());
  res.groups = groups;

  sim.at(cfg.warmup, [&] {
    sender->measurement().begin_measurement(sim.now());
    for (auto& t : tcp_senders) t->measurement().begin_measurement(sim.now());
  });
  std::unique_ptr<sim::Timer> sampler;
  if (cfg.sample_period > 0.0) {
    sampler = std::make_unique<sim::Timer>(sim, [&] {
      res.materialized_hiwater =
          std::max(res.materialized_hiwater, sender->materialized_scoreboards());
      res.sender_state_bytes_hiwater =
          std::max(res.sender_state_bytes_hiwater, sender->state_bytes());
      if (sim.now() + cfg.sample_period <= cfg.duration)
        sampler->schedule(cfg.sample_period);
    });
    sampler->schedule(cfg.sample_period);
  }
  sim.run_until(cfg.duration);

  // --- results ---------------------------------------------------------------
  res.rla = make_row(sender->measurement(), cfg.duration);
  for (auto& t : tcp_senders)
    res.tcps.push_back(make_row(t->measurement(), cfg.duration));
  double drops = 0.0;
  for (net::Link* l : bottleneck_links) drops += l->queue().stats().drop_rate();
  res.bottleneck_drop_rate =
      bottleneck_links.empty() ? 0.0
                               : drops / static_cast<double>(bottleneck_links.size());
  std::uint64_t all_drops = 0;
  for (const auto& l : net.links()) all_drops += l->queue().stats().dropped;
  for (net::Link* l : bottleneck_links) all_drops -= l->queue().stats().dropped;
  res.offpath_drops = all_drops;
  res.acks = sender->acks_received();
  res.events = sim.scheduler().dispatched();
  res.mcast_rexmits = sender->multicast_rexmits();
  res.ucast_rexmits = sender->unicast_rexmits();
  res.troubled_final = sender->num_trouble_rcvr();
  res.active_final = sender->active_receivers();
  res.watchdog_quarantines = sender->watchdog_quarantines();
  res.sender_state_bytes = sender->state_bytes();
  res.baseline_state_bytes = sender->baseline_state_bytes();
  res.materialized_final = sender->materialized_scoreboards();
  res.materialized_hiwater =
      std::max(res.materialized_hiwater, res.materialized_final);
  res.sender_state_bytes_hiwater =
      std::max(res.sender_state_bytes_hiwater, res.sender_state_bytes);
  return res;
}

}  // namespace rlacast::topo
