// The four-level tertiary tree of Figure 6 — the paper's evaluation
// topology — with the five bottleneck placements of Figures 7/8/9, the
// two-session variant of §5.2, and the heterogeneous-RTT variant of §5.3
// (gateway receivers G31..G39, Figure 10).
//
// Geometry: S --L1--> G1 --L2i--> G2i (3) --L3i--> G3i (9) --L4i--> Ri (27).
// Levels 1-3 have 5 ms one-way propagation delay, level 4 has 100 ms.
// Every node buffers 20 packets; RED gateways use min_th 5 / max_th 15.
// One background TCP connection runs from S to every receiver leaf.
// Congested links get capacity 100 pkt/s * (TCP flows through the link + 1),
// making the soft-bottleneck share min mu_i/(m_i+1) = 100 pkt/s; all other
// links run at 100 Mbit/s.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/adversary.hpp"
#include "fault/fault.hpp"
#include "net/red.hpp"
#include "rla/rla_params.hpp"
#include "sim/time.hpp"
#include "stats/fairness_monitor.hpp"
#include "tcp/tcp_sender.hpp"
#include "topo/flat_tree.hpp"  // GatewayType
#include "topo/flow_rows.hpp"
#include "workload/workload.hpp"

namespace rlacast::sim {
class Simulator;
}

namespace rlacast::topo {

/// The five "most congested links" rows of Figures 7 and 9.
enum class TreeCase {
  kL1,      // case 1: the root link
  kL3All,   // case 2: all nine level-3 links
  kL4All,   // case 3: all 27 leaf links
  kL4Some,  // case 4: leaf links L41..L45 only
  kL21,     // case 5: one level-2 link
  // Figure 10 (heterogeneous RTTs; requires gateway_receivers = true):
  kL2AllHetero,  // case 1 of fig. 10: all three level-2 links
  kL3AllHetero,  // case 2 of fig. 10: all nine level-3 links
};

std::string tree_case_name(TreeCase c);

/// One structural failure window on the tree, named by subtree rather than
/// by raw link: level 2 selects G2<index> (index 1..3, nine leaves below),
/// level 3 selects G3<index> (index 1..9, three leaves below).  With
/// router_crash false the subtree's primary UPLINK is partitioned (both
/// directions) for [start, end); with it true the subtree's root router
/// crashes — fault::NodeFailure downs every interface it owns, including
/// any backup uplink, so failover cannot route around it.
struct SubtreeOutage {
  int level = 3;   // 2 or 3
  int index = 1;   // 1-based within the level
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
  bool router_crash = false;
};

struct TreeConfig {
  TreeCase bottleneck = TreeCase::kL4All;
  GatewayType gateway = GatewayType::kDropTail;
  double share_pps = 100.0;  // target soft-bottleneck per-flow share
  double fast_link_bps = 100e6;
  std::size_t buffer_pkts = 20;
  net::RedParams red{};
  sim::SimTime upper_delay = sim::milliseconds(5);   // levels 1-3
  sim::SimTime leaf_delay = sim::milliseconds(100);  // level 4
  /// Per-leaf RTT heterogeneity: leaf i's 100 ms hop is scaled by
  /// 1 + spread * (i-1)/26, so spread = 1 spans 100..200 ms across the 27
  /// leaves. 0 (default) keeps the paper's homogeneous tree. Pair with
  /// rla.rtt_exponent > 0 to exercise the generalized pthresh, which is a
  /// no-op when every srtt_i equals srtt_max.
  double leaf_delay_spread = 0.0;
  int multicast_sessions = 1;   // 2 reproduces §5.2
  bool gateway_receivers = false;  // adds G31..G39 as receivers (fig. 10)
  bool phase_randomization = true;
  sim::SimTime duration = 400.0;
  sim::SimTime warmup = 100.0;
  std::uint64_t seed = 1;
  /// When > 0, the runner samples every RLA session's cwnd at this period
  /// (after warm-up) into TreeResult::window_samples — the raw material of
  /// Figure 5's joint density plot.
  sim::SimTime window_sample_period = 0.0;
  rla::RlaParams rla{};
  tcp::TcpParams tcp{};

  // --- robustness scenario controls (src/fault/) ---------------------------
  /// Wire impairment applied to every level-4 forward (downstream) link —
  /// the access hops, where non-congestion loss lives in the wireless
  /// multicast setting. Empty (default) arms nothing and the run is
  /// byte-identical to an unfaulted one.
  fault::LinkImpairment leaf_fault{};
  /// Reverse-path (control-plane) impairment: applied to every level-4
  /// UPSTREAM link (leaf -> G3), the hops every leaf ACK and census signal
  /// crosses first. Loss here starves the sender of feedback without
  /// touching the data path. Empty (default) arms nothing.
  fault::LinkImpairment ack_fault{};
  /// Misbehaving receivers in session 0: (receiver index, model) pairs,
  /// armed as rla::AckTaps on the matching receivers. Empty (default) arms
  /// nothing and the run is byte-identical to an honest one.
  std::vector<std::pair<int, fault::AdversaryModel>> adversaries{};
  /// Receiver churn for session 0's leaf members: mean interval between
  /// leave events (exponential, dedicated "churn" stream); 0 disables. The
  /// departed leaf rejoins as a fresh late-join receiver after
  /// churn_rejoin_after seconds.
  double churn_mean_interval = 0.0;
  sim::SimTime churn_rejoin_after = 5.0;
  /// Crash fault: silence session 0's receiver at this index (it keeps
  /// receiving but never ACKs again) at time silent_at. -1 disables.
  /// Pair with rla.silent_drop_after so the sender sheds it.
  int silent_receiver = -1;
  sim::SimTime silent_at = 0.0;
  /// Structural failure windows (partitions / router crashes), resolved
  /// onto concrete links/routers and merged ADDITIVELY into the fault plan
  /// beside leaf_fault / ack_fault. Empty (default) arms nothing.
  std::vector<SubtreeOutage> partitions{};
  /// Provision backup-parent duplexes (drop-tail, fast-link speed; G2
  /// siblings back each other, and each G3 is backed by the next G2 over)
  /// and run a topo::FailoverManager that re-grafts partitioned subtrees
  /// onto them after failover_detect_delay. Off (default) creates no
  /// links, no timer — byte-identical to the historical tree.
  bool backup_paths = false;
  sim::SimTime failover_detect_delay = 0.5;
  sim::SimTime failover_poll = 0.05;
  /// Arm a sim::Watchdog (1 s period) with RLA invariant checks: window
  /// bounds, frontier ordering, census sanity, event-horizon progress.
  bool watchdog = false;
  /// Called on the freshly constructed Simulator before any component is
  /// built — the hook point where replay::Recorder/Verifier observers are
  /// installed (sim.set_observer) so every stream, draw and dispatch of the
  /// run is journaled or checked. Empty = run unobserved (the default; the
  /// run is byte-identical either way).
  std::function<void(sim::Simulator&)> instrument;

  // --- workload layer (src/workload/, ISSUE 6) -----------------------------
  /// Background-traffic mix. kFtp (the default) builds the paper's 27
  /// infinite FTP senders exactly as before — no new streams, timers or
  /// draws, byte-identical to the seed. kWeb replaces them with one
  /// WebFlowSource per leaf (think / heavy-tailed fetch / think); kOnOff
  /// keeps the FTPs and adds one OnOffSource of datagram cross-traffic per
  /// leaf. The schedule sub-config also selects the start-time layout for
  /// whatever senders run.
  workload::TrafficSpec traffic{};
  /// Sliding-window Jain-index telemetry over {RLA session 0 + background
  /// flows}. window == 0 (default) keeps the monitor inert.
  stats::FairnessMonitorConfig fairness{};
};

struct TreeResult {
  std::vector<FlowRow> rla;  // one per multicast session
  std::vector<FlowRow> tcps;  // one per background TCP (per receiver)
  /// Session 0's congestion-signal count per receiver (Figure 8).
  std::vector<std::uint64_t> rla_signals_per_receiver;
  /// Per-TCP congestion-signal counts (window cuts; Figure 8's TCP side).
  std::vector<std::uint64_t> tcp_signals;
  /// Whether each receiver sits behind a congested (soft-bottleneck) link.
  std::vector<bool> receiver_congested;
  std::vector<double> bottleneck_drop_rate;
  int num_troubled_final = 0;
  std::uint64_t rla_mcast_rexmits = 0;
  std::uint64_t rla_ucast_rexmits = 0;
  /// window_samples[k][s] = session s's cwnd at the k-th sample instant
  /// (only filled when TreeConfig::window_sample_period > 0).
  std::vector<std::vector<double>> window_samples;

  // --- robustness outcomes -------------------------------------------------
  std::uint64_t fault_wire_losses = 0;   // injected wire losses (all links)
  std::uint64_t fault_outage_drops = 0;  // discarded at a down interface
  std::uint64_t fault_duplicates = 0;    // extra copies injected
  std::uint64_t churn_leaves = 0;        // leave events executed
  std::uint64_t churn_joins = 0;         // rejoin events executed
  std::uint64_t rla_silent_drops = 0;    // receivers shed as silent/crashed
  int active_receivers_final = 0;        // session 0 members still active
  bool watchdog_ok = true;               // no invariant violations recorded
  std::string watchdog_report;           // "" when ok

  // --- structural failure & self-healing outcomes --------------------------
  std::uint64_t failover_events = 0;     // primary -> backup route flips
  std::uint64_t failover_reverts = 0;    // backup -> primary (primary healed)
  std::uint64_t packets_rerouted = 0;    // packets carried by backup uplinks
  std::uint64_t subtree_excisions = 0;   // sender whole-subtree excisions
  std::uint64_t subtree_readmissions = 0;
  std::uint64_t ramp_rexmits = 0;        // re-admission catch-up resends
  /// Session 0's excision -> heal -> re-admission episodes, verbatim.
  std::vector<rla::SubtreeEvent> subtree_events;
  /// First episode's headline numbers (-1 when no episode happened).
  double time_to_excise = -1.0;
  double time_to_readmit = -1.0;
  double survivor_goodput_pps = -1.0;

  // --- feedback-plane outcomes ---------------------------------------------
  std::uint64_t adv_acks_tampered = 0;   // ACKs rewritten by adversaries
  std::uint64_t adv_acks_withheld = 0;   // ACKs suppressed (mute phases)
  std::uint64_t adv_extra_acks = 0;      // storm copies injected
  std::uint64_t adv_fake_holes = 0;      // fabricated loss episodes
  std::uint64_t census_quarantines = 0;  // defense quarantine transitions
  std::uint64_t census_strikeouts = 0;   // members excluded by max_strikes
  /// Frontier-watchdog force-quarantines (session 0) — the liveness
  /// defense against ACK-pinning coalitions (FrontierWatchdogParams).
  std::uint64_t rla_watchdog_quarantines = 0;

  // --- workload + fairness telemetry ---------------------------------------
  /// One sample per fairness window (empty unless fairness.window > 0).
  std::vector<stats::FairnessSample> fairness_samples;
  double min_jain = -1.0;   // worst window with evidence; -1 = none
  double mean_jain = -1.0;
  /// kWeb: totals across all 27 WebFlowSources, plus the XOR of their
  /// schedule fingerprints (two runs drew the same flows iff equal).
  int web_flows_started = 0;
  int web_flows_completed = 0;
  std::uint64_t workload_fingerprint = 0;
  /// kOnOff: cross-traffic packet totals (sent vs delivered at the sinks).
  std::int64_t onoff_packets_sent = 0;
  std::int64_t onoff_packets_received = 0;

  const FlowRow& worst_tcp() const { return tcps[worst_index(tcps)]; }
  const FlowRow& best_tcp() const { return tcps[best_index(tcps)]; }
};

TreeResult run_tertiary_tree(const TreeConfig& cfg);

}  // namespace rlacast::topo
