// Failover re-grafting over precomputed backup-parent routes.
//
// A multicast tree has no end-to-end retransmission path around a dead
// uplink: when the link (or router) feeding a subtree goes down, every
// member below it is unreachable until the routing layer re-grafts the
// subtree somewhere else.  This manager models the IGMP/PIM-style repair
// loop at simulation fidelity:
//
//   * every protected subtree root declares ONE precomputed backup parent
//     (TreeConfig::backup_paths wires sibling gateways; the backup duplex
//     exists from t=0 but is routing-disabled, so the initial BFS ignores
//     it);
//   * a poll timer probes the primary uplink's interface state in both
//     directions (Link::interface_down — non-mutating, no traffic needed);
//   * once the primary has been down for detect_delay, the manager flips
//     routing (primary off, backup on), recomputes BFS routes, and
//     re-grafts every watched multicast group over the new paths;
//   * when the primary heals, the flip reverts the same way.
//
// A router crash (fault::NodeFailure) downs the backup uplink too — there
// is nothing to fail over TO, so no flip happens and the sender-side
// subtree excision (rla::SubtreeDegradeParams) is the protection that
// engages instead.  The two mechanisms are deliberately complementary:
// failover repairs *paths*, excision repairs *sessions*.
//
// Determinism: the manager draws no random numbers and creates exactly one
// timer; with backup_paths off it is never constructed, so default runs
// stay byte-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast::topo {

/// One protected subtree root with its precomputed secondary parent.  The
/// duplex links parent<->child must already exist for both parents (the
/// backup one routing-disabled).
struct BackupRoute {
  net::NodeId child = net::kNoNode;
  net::NodeId primary_parent = net::kNoNode;
  net::NodeId backup_parent = net::kNoNode;
};

struct FailoverConfig {
  /// Primary-down dwell before the flip — the detection delay of the
  /// repair protocol (keep well above the poll period).
  sim::SimTime detect_delay = 0.5;
  /// Interface poll period.
  sim::SimTime poll = 0.05;
};

class FailoverManager {
 public:
  FailoverManager(net::Network& net, FailoverConfig cfg);

  /// Registers a protected subtree root. Call before start().
  void add_route(const BackupRoute& r);

  /// Registers a multicast group to re-graft after every route flip.
  void watch_group(net::GroupId g, net::NodeId source,
                   std::vector<net::NodeId> members);

  /// Arms the poll timer.
  void start();

  /// Primary -> backup flips executed.
  std::uint64_t failover_events() const { return failover_events_; }
  /// Backup -> primary reverts executed (primary healed).
  std::uint64_t failover_reverts() const { return failover_reverts_; }
  /// Packets that traversed a backup uplink (either direction) while its
  /// route was flipped — the traffic that would have been lost without
  /// failover.  Includes still-active flips.
  std::uint64_t packets_rerouted() const;

 private:
  struct Route {
    BackupRoute r;
    net::Link* primary_fwd = nullptr;  // primary_parent -> child
    net::Link* primary_rev = nullptr;  // child -> primary_parent
    net::Link* backup_fwd = nullptr;   // backup_parent -> child
    net::Link* backup_rev = nullptr;   // child -> backup_parent
    sim::SimTime down_since = -1.0;    // first poll that saw the primary down
    bool on_backup = false;
    std::uint64_t backup_delivered_base = 0;  // fwd+rev delivered at flip
  };
  struct WatchedGroup {
    net::GroupId group;
    net::NodeId source;
    std::vector<net::NodeId> members;
  };

  void poll();
  std::uint64_t backup_delivered(const Route& rt) const;
  void regraft();

  net::Network& net_;
  sim::Simulator& sim_;
  FailoverConfig cfg_;
  std::vector<Route> routes_;
  std::vector<WatchedGroup> groups_;
  sim::Timer timer_;
  std::uint64_t failover_events_ = 0;
  std::uint64_t failover_reverts_ = 0;
  std::uint64_t rerouted_closed_ = 0;  // from flips already reverted
};

}  // namespace rlacast::topo
