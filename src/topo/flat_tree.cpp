#include "topo/flat_tree.hpp"

#include <cassert>
#include <memory>
#include <string>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"

namespace rlacast::topo {
namespace {

double pps_to_bps(double pps, std::int32_t pkt_bytes) {
  return pps * static_cast<double>(pkt_bytes) * 8.0;
}

}  // namespace

FlatTreeResult run_flat_tree(const FlatTreeConfig& cfg) {
  const std::size_t n_branches = cfg.branches.size();
  sim::Simulator sim(cfg.seed);
  if (cfg.instrument) cfg.instrument(sim);
  net::Network net(sim);

  const auto queue_kind = cfg.gateway == GatewayType::kRed
                              ? net::QueueKind::kRed
                              : net::QueueKind::kDropTail;
  net::LinkConfig base;
  base.queue = queue_kind;
  base.buffer_pkts = cfg.buffer_pkts;
  base.red = cfg.red;
  base.delay = cfg.hop_delay;

  // --- nodes -----------------------------------------------------------------
  const net::NodeId s = net.add_node();
  const net::NodeId g = net.add_node();
  std::vector<net::NodeId> b(n_branches), r(n_branches);
  for (std::size_t i = 0; i < n_branches; ++i) {
    b[i] = net.add_node();
    r[i] = net.add_node();
  }

  // --- links -----------------------------------------------------------------
  const std::int32_t pkt_bytes = cfg.rla.packet_bytes;
  const bool shared = cfg.shared_bottleneck_pps > 0.0;
  const double shared_bps = pps_to_bps(cfg.shared_bottleneck_pps, pkt_bytes);

  net.connect(s, g,
              base.with_bandwidth(shared ? shared_bps : cfg.fast_link_bps));
  double slowest_bps = shared ? shared_bps : cfg.fast_link_bps;
  std::vector<net::Link*> bottleneck_links;
  if (shared) bottleneck_links.push_back(net.link_between(s, g));
  for (std::size_t i = 0; i < n_branches; ++i) {
    const double mu_bps =
        shared ? cfg.fast_link_bps : pps_to_bps(cfg.branches[i].mu_pps, pkt_bytes);
    net.connect(g, b[i], base.with_bandwidth(mu_bps));
    net.connect(b[i], r[i],
                base.with_bandwidth(cfg.fast_link_bps)
                    .with_delay(cfg.hop_delay + cfg.branches[i].extra_delay));
    if (!shared) {
      bottleneck_links.push_back(net.link_between(g, b[i]));
      slowest_bps = std::min(slowest_bps, mu_bps);
    }
  }
  net.build_routes();

  // Phase-effect elimination: uniform random sender overhead up to the
  // bottleneck service time, drop-tail only (§3.1). Competing flows must
  // share one jitter bound — unequal max_send_overhead quietly biases the
  // fairness comparison — so the builder overrides both params from the
  // same `overhead` below and rejects configs that pre-set them unequally.
  assert(cfg.rla.max_send_overhead == cfg.tcp.max_send_overhead &&
         "RLA and TCP flows must share the same send-jitter bound");
  const sim::SimTime overhead =
      (cfg.gateway == GatewayType::kDropTail && cfg.phase_randomization)
          ? static_cast<double>(pkt_bytes) * 8.0 / slowest_bps
          : 0.0;

  // --- multicast session -----------------------------------------------------
  const net::GroupId group = 1;
  std::unique_ptr<rla::RlaSender> rla_sender;
  std::vector<std::unique_ptr<rla::RlaReceiver>> rla_receivers;
  if (cfg.with_multicast) {
    rla::RlaParams rp = cfg.rla;
    rp.max_send_overhead = overhead;
    rla_sender = std::make_unique<rla::RlaSender>(net, s, /*port=*/1000, group,
                                                  /*flow=*/1000, rp);
    rla::RlaReceiverOptions ropts;
    ropts.max_ack_overhead = overhead;
    for (std::size_t i = 0; i < n_branches; ++i) {
      net.join_group(group, s, r[i]);
      const int idx = rla_sender->add_receiver(r[i], /*port=*/2);
      rla_receivers.push_back(std::make_unique<rla::RlaReceiver>(
          net, r[i], /*port=*/2, group, s, /*sender_port=*/1000, idx, ropts));
    }
  }

  // --- competing TCP connections ---------------------------------------------
  std::vector<std::unique_ptr<tcp::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcp_receivers;
  std::vector<int> tcp_branch;
  int flow = 1;
  for (std::size_t i = 0; i < n_branches; ++i) {
    for (int k = 0; k < cfg.branches[i].n_tcp; ++k) {
      const net::PortId sport = 100 + flow;
      const net::PortId dport = 100 + flow;
      tcp::TcpParams tp = cfg.tcp;
      tp.max_send_overhead = overhead;
      tcp_receivers.push_back(std::make_unique<tcp::TcpReceiver>(
          net, r[i], dport, net::kAckPacketBytes, overhead));
      tcp_senders.push_back(std::make_unique<tcp::TcpSender>(
          net, s, sport, r[i], dport, flow, tp));
      tcp_branch.push_back(static_cast<int>(i));
      ++flow;
    }
  }

  // --- fairness telemetry (inert unless cfg.fairness.window > 0) --------------
  stats::FairnessMonitor fmon(sim, cfg.fairness);
  if (fmon.enabled()) {
    if (rla_sender) {
      rla::RlaSender* m = rla_sender.get();
      fmon.add_probe(
          {"rla",
           [m] { return static_cast<double>(m->measurement().total_acked()); },
           [] { return false; }});
    }
    for (std::size_t i = 0; i < tcp_senders.size(); ++i) {
      tcp::TcpSender* t = tcp_senders[i].get();
      fmon.add_probe(
          {"tcp-" + std::to_string(i),
           [t] { return static_cast<double>(t->measurement().total_acked()); },
           [t] { return t->app_limited(); }});
    }
  }

  // --- start times: scheduled to desynchronize --------------------------------
  auto starts = sim.rng_stream("start-jitter");
  int start_idx = 0;
  for (auto& t : tcp_senders)
    t->start_at(workload::start_time(cfg.schedule, start_idx++, starts));
  if (rla_sender)
    rla_sender->start_at(workload::start_time(cfg.schedule, start_idx++, starts));

  // --- run -------------------------------------------------------------------
  sim.at(cfg.warmup, [&] {
    if (rla_sender) rla_sender->measurement().begin_measurement(sim.now());
    for (auto& t : tcp_senders) t->measurement().begin_measurement(sim.now());
  });
  sim.run_until(cfg.duration);

  // --- results ---------------------------------------------------------------
  FlatTreeResult res;
  if (rla_sender) {
    res.rla = make_row(rla_sender->measurement(), cfg.duration);
    for (std::size_t i = 0; i < n_branches; ++i)
      res.rla_signals_per_receiver.push_back(
          rla_sender->signals_from(static_cast<int>(i)));
    res.rla_mcast_rexmits = static_cast<double>(rla_sender->multicast_rexmits());
    res.rla_ucast_rexmits = static_cast<double>(rla_sender->unicast_rexmits());
    res.num_troubled_final = rla_sender->num_trouble_rcvr();
  }
  for (auto& t : tcp_senders)
    res.tcps.push_back(make_row(t->measurement(), cfg.duration));
  res.tcp_branch = std::move(tcp_branch);
  res.fairness_samples = fmon.samples();
  res.min_jain = fmon.min_jain();
  res.mean_jain = fmon.mean_jain();
  for (net::Link* l : bottleneck_links)
    res.bottleneck_drop_rate.push_back(l->queue().stats().drop_rate());
  return res;
}

}  // namespace rlacast::topo
