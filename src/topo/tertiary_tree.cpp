#include "topo/tertiary_tree.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "fault/fault.hpp"
#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "sim/watchdog.hpp"
#include "tcp/tcp_receiver.hpp"
#include "topo/failover.hpp"

namespace rlacast::topo {
namespace {

double pps_to_bps(double pps, std::int32_t pkt_bytes) {
  return pps * static_cast<double>(pkt_bytes) * 8.0;
}

struct LinkRef {
  net::NodeId from;
  net::NodeId to;
  int level;   // 1..4
  int index;   // 1-based within its level (L21 = level 2, index 1)
};

/// Receiver-churn driver for session 0's leaf members. One object on the
/// runner's stack; its timer callbacks capture only `this` (plus a leaf
/// index for rejoins), so churn events stay on the scheduler's inline
/// callback path.
struct ChurnDriver {
  sim::Simulator& sim;
  net::Network& net;
  rla::RlaSender& sender;
  std::vector<std::unique_ptr<rla::RlaReceiver>>& owned;
  std::vector<rla::RlaReceiver*>& by_idx;  // census idx -> receiver
  const std::array<net::NodeId, 27>& leaf;
  net::NodeId src;
  net::GroupId group;
  net::PortId sender_port;
  rla::RlaReceiverOptions ropts;  // template for rejoining receivers
  double mean_interval;
  sim::SimTime rejoin_after;
  sim::Rng rng;
  std::array<int, 27> member{};  // current census idx per leaf, -1 if away
  net::PortId next_port = 20000;
  std::uint64_t leaves = 0;
  std::uint64_t joins = 0;
  sim::Timer timer;

  ChurnDriver(sim::Simulator& s_, net::Network& n_, rla::RlaSender& snd,
              std::vector<std::unique_ptr<rla::RlaReceiver>>& own,
              std::vector<rla::RlaReceiver*>& idx,
              const std::array<net::NodeId, 27>& lf, net::NodeId src_,
              net::GroupId g, net::PortId sp, rla::RlaReceiverOptions ro,
              double mean, sim::SimTime rejoin)
      : sim(s_),
        net(n_),
        sender(snd),
        owned(own),
        by_idx(idx),
        leaf(lf),
        src(src_),
        group(g),
        sender_port(sp),
        ropts(ro),
        mean_interval(mean),
        rejoin_after(rejoin),
        rng(s_.rng_stream("churn")),
        timer(s_, [this] { on_fire(); }) {
    for (int i = 0; i < 27; ++i) member[static_cast<std::size_t>(i)] = i;
    timer.schedule(rng.exponential(mean_interval));
  }

  void on_fire() {
    const int li = static_cast<int>(rng.uniform_int(0, 26));
    const int idx = member[static_cast<std::size_t>(li)];
    if (idx >= 0) {
      // Leave: the sender stops waiting for this member; the old receiver
      // object is silenced so in-flight data stops generating stale ACKs.
      sender.remove_receiver(idx);
      by_idx[static_cast<std::size_t>(idx)]->set_silenced(true);
      member[static_cast<std::size_t>(li)] = -1;
      ++leaves;
      sim.after(rejoin_after, [this, li] { rejoin(li); });
    }
    timer.schedule(rng.exponential(mean_interval));
  }

  void rejoin(int li) {
    // Fresh late joiner on a fresh port (the departed incarnation keeps its
    // old port attached; reusing it would alias two agents).
    const net::NodeId node = leaf[static_cast<std::size_t>(li)];
    const net::PortId port = next_port++;
    const int idx = sender.add_receiver(node, port);
    rla::RlaReceiverOptions ro = ropts;
    ro.resume_at_first_packet = true;
    owned.push_back(std::make_unique<rla::RlaReceiver>(
        net, node, port, group, src, sender_port, idx, ro));
    by_idx.push_back(owned.back().get());
    member[static_cast<std::size_t>(li)] = idx;
    ++joins;
  }
};

}  // namespace

std::string tree_case_name(TreeCase c) {
  switch (c) {
    case TreeCase::kL1:
      return "L1";
    case TreeCase::kL3All:
      return "L3i, i=1..9";
    case TreeCase::kL4All:
      return "L4i, i=1..27";
    case TreeCase::kL4Some:
      return "L4i, i=1..5";
    case TreeCase::kL21:
      return "L21";
    case TreeCase::kL2AllHetero:
      return "L2i, i=1..3 (hetero)";
    case TreeCase::kL3AllHetero:
      return "L3i, i=1..9 (hetero)";
  }
  return "?";
}

TreeResult run_tertiary_tree(const TreeConfig& cfg) {
  sim::Simulator sim(cfg.seed);
  if (cfg.instrument) cfg.instrument(sim);
  net::Network net(sim);

  // --- nodes -----------------------------------------------------------------
  const net::NodeId s = net.add_node();
  const net::NodeId g1 = net.add_node();
  std::array<net::NodeId, 3> g2{};
  std::array<net::NodeId, 9> g3{};
  std::array<net::NodeId, 27> leaf{};
  for (auto& n : g2) n = net.add_node();
  for (auto& n : g3) n = net.add_node();
  for (auto& n : leaf) n = net.add_node();

  // --- receiver set ----------------------------------------------------------
  // Leaves R1..R27 always; gateway receivers G31..G39 in the heterogeneous
  // variant (their RTT excludes the 100 ms leaf hop).
  std::vector<net::NodeId> receivers(leaf.begin(), leaf.end());
  if (cfg.gateway_receivers)
    receivers.insert(receivers.end(), g3.begin(), g3.end());
  const std::size_t n_rcvrs = receivers.size();

  // --- link table with congestion marking -------------------------------------
  std::vector<LinkRef> link_refs;
  link_refs.push_back({s, g1, 1, 1});
  for (int i = 0; i < 3; ++i) link_refs.push_back({g1, g2[size_t(i)], 2, i + 1});
  for (int i = 0; i < 9; ++i)
    link_refs.push_back({g2[size_t(i / 3)], g3[size_t(i)], 3, i + 1});
  for (int i = 0; i < 27; ++i)
    link_refs.push_back({g3[size_t(i / 3)], leaf[size_t(i)], 4, i + 1});

  auto is_congested = [&](const LinkRef& l) {
    switch (cfg.bottleneck) {
      case TreeCase::kL1:
        return l.level == 1;
      case TreeCase::kL3All:
      case TreeCase::kL3AllHetero:
        return l.level == 3;
      case TreeCase::kL4All:
        return l.level == 4;
      case TreeCase::kL4Some:
        return l.level == 4 && l.index <= 5;
      case TreeCase::kL21:
        return l.level == 2 && l.index == 1;
      case TreeCase::kL2AllHetero:
        return l.level == 2;
    }
    return false;
  };

  // Number of background TCP connections traversing a link: one per LEAF
  // downstream. Gateway receivers (§5.3) join the multicast session only —
  // Figure 10's small worst/best TCP spread shows the background TCPs all
  // share the leaf RTT, so no TCP terminates at G31..G39.
  auto tcp_flows_through = [&](const LinkRef& l) -> int {
    return l.level == 1 ? 27 : l.level == 2 ? 9 : l.level == 3 ? 3 : 1;
  };

  const std::int32_t pkt_bytes = cfg.rla.packet_bytes;
  const auto queue_kind = cfg.gateway == GatewayType::kRed
                              ? net::QueueKind::kRed
                              : net::QueueKind::kDropTail;
  net::LinkConfig base;
  base.queue = queue_kind;
  base.buffer_pkts = cfg.buffer_pkts;
  base.red = cfg.red;

  double slowest_bps = cfg.fast_link_bps;
  std::vector<net::Link*> bottleneck_links;
  for (const auto& lr : link_refs) {
    sim::SimTime hop_delay =
        lr.level == 4 ? cfg.leaf_delay : cfg.upper_delay;
    if (lr.level == 4 && cfg.leaf_delay_spread > 0.0)
      hop_delay *= 1.0 + cfg.leaf_delay_spread *
                             static_cast<double>(lr.index - 1) / 26.0;
    net::LinkConfig c = base.with_delay(hop_delay);
    if (is_congested(lr)) {
      // The paper's capacity rule: soft-bottleneck share = mu / (m + 1).
      // §5.2 adds its second multicast session WITHOUT re-scaling links
      // ("simulated the above scenarios with two overlapping sessions"),
      // so the +1 stays +1 regardless of session count.
      const double cap_pps =
          cfg.share_pps * static_cast<double>(tcp_flows_through(lr) + 1);
      c.bandwidth_bps = pps_to_bps(cap_pps, pkt_bytes);
      slowest_bps = std::min(slowest_bps, c.bandwidth_bps);
    } else {
      c.bandwidth_bps = cfg.fast_link_bps;
    }
    net.connect(lr.from, lr.to, c);
    if (is_congested(lr)) bottleneck_links.push_back(net.link_between(lr.from, lr.to));
  }

  // Backup-parent provisioning (cfg.backup_paths): fast drop-tail duplexes
  // created AFTER every primary link (stream numbering of the primaries is
  // unchanged; drop-tail queues allocate no "red-queue-N" streams) and
  // routing-disabled, so the initial BFS below ignores them entirely.  G2
  // siblings back each other; each G3 is backed by the next G2 over — its
  // uplink survives a partition of either the G3 uplink or the parent G2's
  // own uplink/router.
  std::vector<BackupRoute> backup_routes;
  if (cfg.backup_paths) {
    net::LinkConfig bc = base.with_delay(cfg.upper_delay);
    bc.queue = net::QueueKind::kDropTail;
    bc.bandwidth_bps = cfg.fast_link_bps;
    for (int j = 0; j < 3; ++j) {
      const net::NodeId bp = g2[static_cast<std::size_t>((j + 1) % 3)];
      auto d = net.connect(bp, g2[static_cast<std::size_t>(j)], bc);
      d.forward->set_routing_enabled(false);
      d.reverse->set_routing_enabled(false);
      backup_routes.push_back({g2[static_cast<std::size_t>(j)], g1, bp});
    }
    for (int i = 0; i < 9; ++i) {
      const net::NodeId bp = g2[static_cast<std::size_t>((i / 3 + 1) % 3)];
      auto d = net.connect(bp, g3[static_cast<std::size_t>(i)], bc);
      d.forward->set_routing_enabled(false);
      d.reverse->set_routing_enabled(false);
      backup_routes.push_back(
          {g3[static_cast<std::size_t>(i)], g2[static_cast<std::size_t>(i / 3)], bp});
    }
  }
  net.build_routes();

  // Competing flows must share one jitter bound (see the cross-referenced
  // doc comments on RlaParams/TcpParams::max_send_overhead): the builder
  // overrides both from the same `overhead`, and rejects configs that
  // pre-set them unequally.
  assert(cfg.rla.max_send_overhead == cfg.tcp.max_send_overhead &&
         "RLA and TCP flows must share the same send-jitter bound");
  const sim::SimTime overhead =
      (cfg.gateway == GatewayType::kDropTail && cfg.phase_randomization)
          ? static_cast<double>(pkt_bytes) * 8.0 / slowest_bps
          : 0.0;

  // --- multicast sessions ------------------------------------------------------
  std::vector<std::unique_ptr<rla::RlaSender>> rla_senders;
  std::vector<std::unique_ptr<rla::RlaReceiver>> rla_receivers;
  for (int sess = 0; sess < cfg.multicast_sessions; ++sess) {
    const net::GroupId group = 1 + sess;
    const net::PortId sender_port = 1000 + sess;
    rla::RlaParams rp = cfg.rla;
    rp.max_send_overhead = overhead;
    auto sender = std::make_unique<rla::RlaSender>(
        net, s, sender_port, group, /*flow=*/1000 + sess, rp);
    rla::RlaReceiverOptions ropts;
    ropts.max_ack_overhead = overhead;
    for (std::size_t i = 0; i < n_rcvrs; ++i) {
      net.join_group(group, s, receivers[i]);
      const net::PortId rport = 10 + sess;
      const int idx = sender->add_receiver(receivers[i], rport);
      // Structural-degradation grouping: leaf i hangs off G3 gateway i/3,
      // gateway receiver i (>= 27) IS G3 gateway i-27.  No-op (and no
      // state) unless cfg.rla.degrade.enabled.
      sender->set_subtree(idx, i < 27 ? static_cast<int>(i) / 3
                                      : static_cast<int>(i) - 27);
      rla_receivers.push_back(std::make_unique<rla::RlaReceiver>(
          net, receivers[i], rport, group, s, sender_port, idx, ropts));
    }
    rla_senders.push_back(std::move(sender));
  }

  // --- robustness layer: faults, churn, crash, watchdog -----------------------
  // Session 0's census-index -> receiver map (positions track add_receiver
  // order, which churn rejoins preserve).
  std::vector<rla::RlaReceiver*> sess0_rcvr_by_idx;
  for (std::size_t i = 0; i < n_rcvrs; ++i)
    sess0_rcvr_by_idx.push_back(rla_receivers[i].get());

  fault::FaultPlan fault_plan;
  // Forward entries first, reverse entries after: a leaf_fault-only config
  // builds the exact stream set (and creation order) it always did.
  if (cfg.leaf_fault.any())
    for (const auto& lr : link_refs)
      if (lr.level == 4) fault_plan.impair(lr.from, lr.to, cfg.leaf_fault);
  if (cfg.ack_fault.any())
    for (const auto& lr : link_refs)
      if (lr.level == 4) fault_plan.impair(lr.to, lr.from, cfg.ack_fault);
  // Structural windows resolve level+index onto the subtree's root router
  // (crash) or primary uplink (partition); merged additively at arm().
  for (const auto& so : cfg.partitions) {
    assert((so.level == 2 || so.level == 3) && "SubtreeOutage.level is 2 or 3");
    if (so.level == 3) {
      assert(so.index >= 1 && so.index <= 9);
      const net::NodeId root = g3[static_cast<std::size_t>(so.index - 1)];
      if (so.router_crash)
        fault_plan.fail_node(root, so.start, so.end);
      else
        fault_plan.partition(g2[static_cast<std::size_t>((so.index - 1) / 3)],
                             root, so.start, so.end);
    } else {
      assert(so.index >= 1 && so.index <= 3);
      const net::NodeId root = g2[static_cast<std::size_t>(so.index - 1)];
      if (so.router_crash)
        fault_plan.fail_node(root, so.start, so.end);
      else
        fault_plan.partition(g1, root, so.start, so.end);
    }
  }
  if (!fault_plan.empty()) fault_plan.arm(net);

  std::unique_ptr<FailoverManager> failover;
  if (cfg.backup_paths) {
    failover = std::make_unique<FailoverManager>(
        net, FailoverConfig{cfg.failover_detect_delay, cfg.failover_poll});
    for (const auto& br : backup_routes) failover->add_route(br);
    // Re-grafting must cover every group: a flip rewrites routes globally.
    for (int sess = 0; sess < cfg.multicast_sessions; ++sess)
      failover->watch_group(static_cast<net::GroupId>(1 + sess), s, receivers);
    failover->start();
  }

  fault::AdversaryPlan adversary_plan;
  if (!cfg.adversaries.empty()) {
    for (const auto& [idx, model] : cfg.adversaries)
      adversary_plan.corrupt(idx, model);
    adversary_plan.arm(sess0_rcvr_by_idx);
  }

  std::unique_ptr<ChurnDriver> churn;
  if (cfg.churn_mean_interval > 0.0) {
    rla::RlaReceiverOptions churn_ropts;
    churn_ropts.max_ack_overhead = overhead;
    churn = std::make_unique<ChurnDriver>(
        sim, net, *rla_senders.front(), rla_receivers, sess0_rcvr_by_idx,
        leaf, s, /*group=*/1, /*sender_port=*/1000, churn_ropts,
        cfg.churn_mean_interval, cfg.churn_rejoin_after);
  }

  if (cfg.silent_receiver >= 0 &&
      static_cast<std::size_t>(cfg.silent_receiver) < n_rcvrs) {
    sim.at(cfg.silent_at, [&sess0_rcvr_by_idx, &cfg] {
      sess0_rcvr_by_idx[static_cast<std::size_t>(cfg.silent_receiver)]
          ->set_silenced(true);
    });
  }

  std::unique_ptr<sim::Watchdog> watchdog;
  if (cfg.watchdog) {
    watchdog = std::make_unique<sim::Watchdog>(sim, 1.0);
    watchdog->add_check("rla-invariants", [&rla_senders]() -> std::string {
      for (const auto& m : rla_senders) {
        if (!(m->cwnd() >= 1.0) || m->cwnd() > m->params().max_cwnd)
          return "cwnd out of bounds: " + std::to_string(m->cwnd());
        if (m->max_reach_all() > m->next_seq())
          return "reach-all frontier beyond send frontier";
        if (m->num_trouble_rcvr() < 0 ||
            m->num_trouble_rcvr() > m->active_receivers())
          return "troubled census exceeds active membership";
      }
      return "";
    });
    watchdog->start();
  }

  // --- background traffic: one source from S to every LEAF --------------------
  // kFtp (default) and kOnOff build the paper's infinite FTP connections;
  // kWeb replaces them with WebFlowSources; kOnOff additionally lays one
  // OnOffSource of datagram cross-traffic over every leaf.
  std::vector<std::unique_ptr<tcp::TcpSender>> tcp_senders;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcp_receivers;
  std::vector<std::unique_ptr<workload::WebFlowSource>> web_sources;
  std::vector<std::unique_ptr<workload::OnOffSource>> onoff_sources;
  std::vector<std::unique_ptr<workload::PacketSink>> onoff_sinks;
  if (cfg.traffic.kind == workload::TrafficKind::kWeb) {
    for (std::size_t i = 0; i < leaf.size(); ++i) {
      workload::WebConfig wc = cfg.traffic.web;
      wc.tcp = cfg.tcp;  // one source of TCP truth per run: TreeConfig::tcp
      wc.tcp.max_send_overhead = overhead;
      const auto block = static_cast<net::PortId>(30000 + 1000 * i);
      web_sources.push_back(std::make_unique<workload::WebFlowSource>(
          net, s, leaf[i], block, block,
          static_cast<net::FlowId>(2000 + 1000 * i),
          "workload-web-" + std::to_string(i), wc));
    }
  } else {
    for (std::size_t i = 0; i < leaf.size(); ++i) {
      const net::PortId port = 100 + static_cast<net::PortId>(i);
      tcp::TcpParams tp = cfg.tcp;
      tp.max_send_overhead = overhead;
      tcp_receivers.push_back(std::make_unique<tcp::TcpReceiver>(
          net, leaf[i], port, net::kAckPacketBytes, overhead));
      tcp_senders.push_back(std::make_unique<tcp::TcpSender>(
          net, s, port, leaf[i], port, static_cast<net::FlowId>(i + 1), tp));
    }
  }
  if (cfg.traffic.kind == workload::TrafficKind::kOnOff) {
    for (std::size_t i = 0; i < leaf.size(); ++i) {
      const auto port = static_cast<net::PortId>(40000 + i);
      onoff_sinks.push_back(
          std::make_unique<workload::PacketSink>(net, leaf[i], port));
      onoff_sources.push_back(std::make_unique<workload::OnOffSource>(
          net, s, port, leaf[i], port, static_cast<net::FlowId>(5000 + i),
          "workload-onoff-" + std::to_string(i), cfg.traffic.onoff));
    }
  }

  // --- fairness telemetry (inert unless cfg.fairness.window > 0) --------------
  stats::FairnessMonitor fmon(sim, cfg.fairness);
  if (fmon.enabled()) {
    rla::RlaSender* sess0 = rla_senders.front().get();
    fmon.add_probe(
        {"rla0",
         [sess0] { return static_cast<double>(sess0->measurement().total_acked()); },
         [] { return false; }});  // infinite multicast source
    for (std::size_t i = 0; i < tcp_senders.size(); ++i) {
      tcp::TcpSender* t = tcp_senders[i].get();
      fmon.add_probe(
          {"tcp-" + std::to_string(i),
           [t] { return static_cast<double>(t->measurement().total_acked()); },
           [t] { return t->app_limited(); }});
    }
    for (std::size_t i = 0; i < web_sources.size(); ++i) {
      workload::WebFlowSource* w = web_sources[i].get();
      fmon.add_probe({"web-" + std::to_string(i),
                      [w] { return static_cast<double>(w->delivered_total()); },
                      [w] { return w->poll_app_limited(); }});
    }
  }

  auto starts = sim.rng_stream("start-jitter");
  int start_idx = 0;
  for (auto& t : tcp_senders)
    t->start_at(workload::start_time(cfg.traffic.schedule, start_idx++, starts));
  for (auto& w : web_sources)
    w->start_at(workload::start_time(cfg.traffic.schedule, start_idx++, starts));
  for (auto& o : onoff_sources)
    o->start_at(workload::start_time(cfg.traffic.schedule, start_idx++, starts));
  for (auto& m : rla_senders)
    m->start_at(workload::start_time(cfg.traffic.schedule, start_idx++, starts));

  TreeResult res;
  std::vector<std::int64_t> web_delivered_at_warmup(web_sources.size(), 0);
  sim.at(cfg.warmup, [&] {
    for (auto& m : rla_senders) m->measurement().begin_measurement(sim.now());
    for (auto& t : tcp_senders) t->measurement().begin_measurement(sim.now());
    for (std::size_t i = 0; i < web_sources.size(); ++i)
      web_delivered_at_warmup[i] = web_sources[i]->delivered_total();
  });
  std::unique_ptr<sim::Timer> sampler;
  if (cfg.window_sample_period > 0.0) {
    sampler = std::make_unique<sim::Timer>(sim, [&] {
      std::vector<double> row;
      row.reserve(rla_senders.size());
      for (auto& m : rla_senders) row.push_back(m->cwnd());
      res.window_samples.push_back(std::move(row));
      if (sim.now() + cfg.window_sample_period <= cfg.duration)
        sampler->schedule(cfg.window_sample_period);
    });
    sampler->schedule_at(cfg.warmup);
  }
  sim.run_until(cfg.duration);

  // --- results -------------------------------------------------------------
  for (auto& m : rla_senders) res.rla.push_back(make_row(m->measurement(), cfg.duration));
  for (auto& t : tcp_senders) {
    res.tcps.push_back(make_row(t->measurement(), cfg.duration));
    res.tcp_signals.push_back(t->measurement().congestion_signals());
  }
  // kWeb: synthesize one aggregate row per leaf "user" so worst_tcp()/
  // best_tcp() and the figure plumbing keep working. Throughput is the
  // post-warmup delivered rate; the counters sum over every fetch.
  const double measured_span = cfg.duration - cfg.warmup;
  for (std::size_t i = 0; i < web_sources.size(); ++i) {
    const workload::WebFlowSource& w = *web_sources[i];
    FlowRow row;
    row.throughput_pps =
        measured_span > 0.0
            ? static_cast<double>(w.delivered_total() -
                                  web_delivered_at_warmup[i]) /
                  measured_span
            : 0.0;
    double rtt_sum = 0.0;
    int rtt_n = 0;
    for (const auto& snd : w.senders()) {
      const stats::FlowMeasurement& m = snd->measurement();
      row.cong_signals += m.congestion_signals();
      row.window_cuts += m.window_cuts();
      row.forced_cuts += m.forced_cuts();
      row.timeouts += m.timeouts();
      if (m.avg_rtt() > 0.0) {
        rtt_sum += m.avg_rtt();
        ++rtt_n;
      }
    }
    row.avg_rtt = rtt_n > 0 ? rtt_sum / rtt_n : 0.0;
    res.tcps.push_back(row);
    res.tcp_signals.push_back(row.cong_signals);
    res.web_flows_started += w.flows_started();
    res.web_flows_completed += w.flows_completed();
    res.workload_fingerprint ^= w.schedule_fingerprint();
  }
  for (const auto& o : onoff_sources) res.onoff_packets_sent += o->packets_sent();
  for (const auto& sk : onoff_sinks)
    res.onoff_packets_received += sk->packets_received();
  res.fairness_samples = fmon.samples();
  res.min_jain = fmon.min_jain();
  res.mean_jain = fmon.mean_jain();
  auto& first = *rla_senders.front();
  for (std::size_t i = 0; i < n_rcvrs; ++i)
    res.rla_signals_per_receiver.push_back(
        first.signals_from(static_cast<int>(i)));
  res.num_troubled_final = first.num_trouble_rcvr();
  res.rla_mcast_rexmits = first.multicast_rexmits();
  res.rla_ucast_rexmits = first.unicast_rexmits();

  const fault::FaultTotals ftot = fault_plan.totals();
  res.fault_wire_losses = ftot.wire_losses;
  res.fault_outage_drops = ftot.outage_drops;
  res.fault_duplicates = ftot.duplicates;
  if (churn) {
    res.churn_leaves = churn->leaves;
    res.churn_joins = churn->joins;
  }
  res.rla_silent_drops = first.silent_drops();
  res.active_receivers_final = first.active_receivers();
  res.subtree_excisions = first.subtree_excisions();
  res.subtree_readmissions = first.subtree_readmissions();
  res.ramp_rexmits = first.ramp_rexmits();
  res.subtree_events = first.subtree_events();
  if (!res.subtree_events.empty()) {
    const rla::SubtreeEvent& ev = res.subtree_events.front();
    res.time_to_excise = ev.time_to_excise;
    res.time_to_readmit = ev.time_to_readmit;
    res.survivor_goodput_pps = ev.survivor_goodput_pps;
  }
  if (failover) {
    res.failover_events = failover->failover_events();
    res.failover_reverts = failover->failover_reverts();
    res.packets_rerouted = failover->packets_rerouted();
  }
  const fault::AdversaryTotals atot = adversary_plan.totals();
  res.adv_acks_tampered = atot.acks_tampered;
  res.adv_acks_withheld = atot.acks_withheld;
  res.adv_extra_acks = atot.extra_acks;
  res.adv_fake_holes = atot.fake_holes;
  res.census_quarantines = first.census().quarantines();
  res.census_strikeouts = first.census().strikeouts();
  res.rla_watchdog_quarantines = first.watchdog_quarantines();
  if (watchdog) {
    res.watchdog_ok = watchdog->ok();
    res.watchdog_report = watchdog->report();
  }

  // Mark which receivers sit behind a congested hop (Figure 8 grouping).
  res.receiver_congested.assign(n_rcvrs, false);
  for (std::size_t i = 0; i < n_rcvrs; ++i) {
    // Walk the route from S to the receiver and check each hop.
    net::NodeId at = s;
    while (at != receivers[i]) {
      net::Link* hop = net.node(at).route(receivers[i]);
      assert(hop != nullptr);
      for (const auto& lr : link_refs)
        if (lr.from == at && lr.to == hop->to() && is_congested(lr))
          res.receiver_congested[i] = true;
      at = hop->to();
    }
  }
  for (net::Link* l : bottleneck_links)
    res.bottleneck_drop_rate.push_back(l->queue().stats().drop_rate());
  return res;
}

}  // namespace rlacast::topo
