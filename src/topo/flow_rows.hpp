// Result rows shared by every scenario runner: exactly the columns the
// paper's Figures 7, 9 and 10 report per flow.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/flow_measurement.hpp"

namespace rlacast::topo {

struct FlowRow {
  double throughput_pps = 0.0;  // packets/second over the measured period
  double avg_cwnd = 0.0;        // time-averaged congestion window
  double avg_rtt = 0.0;         // mean per-packet RTT (clean packets only)
  std::uint64_t cong_signals = 0;
  std::uint64_t window_cuts = 0;
  std::uint64_t forced_cuts = 0;
  std::uint64_t timeouts = 0;
};

/// Builds a row from a FlowMeasurement at end-of-run time `t_end`.
FlowRow make_row(const stats::FlowMeasurement& m, sim::SimTime t_end);

/// Index of the row with the smallest / largest throughput.
std::size_t worst_index(const std::vector<FlowRow>& rows);
std::size_t best_index(const std::vector<FlowRow>& rows);

}  // namespace rlacast::topo
