#include "fault/fault.hpp"

#include <stdexcept>
#include <utility>

#include "net/network.hpp"

namespace rlacast::fault {

LinkFaultState::LinkFaultState(sim::Simulator& sim, LinkImpairment imp,
                               sim::Rng rng)
    : sim_(sim), imp_(std::move(imp)), rng_(std::move(rng)) {}

void LinkFaultState::start() {
  if (!imp_.flapping()) return;
  flap_down_ = false;
  schedule_flap();
}

void LinkFaultState::schedule_flap() {
  const sim::SimTime dwell = rng_.exponential(
      flap_down_ ? imp_.flap_mean_down : imp_.flap_mean_up);
  sim_.after(dwell, [this] {
    flap_down_ = !flap_down_;
    schedule_flap();
  });
}

bool LinkFaultState::down(sim::SimTime now) {
  bool is_down = flap_down_;
  if (!is_down) {
    for (const Outage& o : imp_.outages) {
      if (now >= o.start && now < o.end) {
        is_down = true;
        break;
      }
    }
  }
  if (is_down) ++outage_drops_;
  return is_down;
}

net::LinkFaultHook::WireVerdict LinkFaultState::wire(const net::Packet&,
                                                     sim::SimTime) {
  ++offered_;
  WireVerdict v;
  // Draw order is fixed — GE advance, GE loss, Bernoulli loss, duplication,
  // jitter — so a given seed always consumes the stream identically and
  // reruns are bit-identical.
  if (imp_.ge.enabled()) {
    ge_bad_ = ge_bad_ ? !rng_.chance(imp_.ge.p_bad_to_good)
                      : rng_.chance(imp_.ge.p_good_to_bad);
    const double p = ge_bad_ ? imp_.ge.loss_bad : imp_.ge.loss_good;
    if (p > 0.0 && rng_.chance(p)) v.lost = true;
  }
  if (!v.lost && imp_.loss_p > 0.0 && rng_.chance(imp_.loss_p)) v.lost = true;
  if (v.lost) {
    ++wire_losses_;
    return v;
  }
  if (imp_.duplicate_p > 0.0 && rng_.chance(imp_.duplicate_p)) {
    v.duplicated = true;
    ++duplicates_;
  }
  if (imp_.max_jitter > 0.0) {
    v.extra_delay = rng_.uniform(0.0, imp_.max_jitter);
  }
  return v;
}

FaultPlan& FaultPlan::impair(net::NodeId from, net::NodeId to,
                             const LinkImpairment& imp) {
  for (Entry& e : entries_) {
    if (e.from == from && e.to == to) {
      e.imp = imp;
      return *this;
    }
  }
  entries_.push_back(Entry{from, to, imp, nullptr});
  return *this;
}

void FaultPlan::arm(net::Network& net) {
  for (Entry& e : entries_) {
    net::Link* link = net.link_between(e.from, e.to);
    if (link == nullptr) {
      throw std::invalid_argument(
          "FaultPlan::arm: no link " + std::to_string(e.from) + "->" +
          std::to_string(e.to));
    }
    sim::Simulator& sim = net.simulator();
    const std::string stream = "fault-link-" + std::to_string(e.from) + "-" +
                               std::to_string(e.to);
    e.state = std::make_unique<LinkFaultState>(sim, e.imp,
                                               sim.rng_stream(stream));
    link->set_fault_hook(e.state.get());
    e.state->start();
  }
}

FaultTotals FaultPlan::totals() const {
  FaultTotals t;
  for (const Entry& e : entries_) {
    if (!e.state) continue;
    t.offered += e.state->offered();
    t.wire_losses += e.state->wire_losses();
    t.outage_drops += e.state->outage_drops();
    t.duplicates += e.state->duplicates();
  }
  return t;
}

}  // namespace rlacast::fault
