#include "fault/fault.hpp"

#include <stdexcept>
#include <utility>

#include "net/network.hpp"

namespace rlacast::fault {

LinkFaultState::LinkFaultState(sim::Simulator& sim, LinkImpairment imp,
                               sim::Rng rng)
    : sim_(sim), imp_(std::move(imp)), rng_(std::move(rng)) {}

void LinkFaultState::start() {
  if (!imp_.flapping()) return;
  flap_down_ = false;
  schedule_flap();
}

void LinkFaultState::schedule_flap() {
  const sim::SimTime dwell = rng_.exponential(
      flap_down_ ? imp_.flap_mean_down : imp_.flap_mean_up);
  sim_.after(dwell, [this] {
    flap_down_ = !flap_down_;
    schedule_flap();
  });
}

bool LinkFaultState::is_down(sim::SimTime now) const {
  if (flap_down_) return true;
  for (const Outage& o : imp_.outages) {
    if (now >= o.start && now < o.end) return true;
  }
  return false;
}

bool LinkFaultState::down(sim::SimTime now) {
  const bool d = is_down(now);
  if (d) ++outage_drops_;
  return d;
}

bool LinkFaultState::peek_down(sim::SimTime now) const { return is_down(now); }

net::LinkFaultHook::WireVerdict LinkFaultState::wire(const net::Packet&,
                                                     sim::SimTime) {
  ++offered_;
  WireVerdict v;
  // Draw order is fixed — GE advance, GE loss, Bernoulli loss, duplication,
  // jitter — so a given seed always consumes the stream identically and
  // reruns are bit-identical.
  if (imp_.ge.enabled()) {
    ge_bad_ = ge_bad_ ? !rng_.chance(imp_.ge.p_bad_to_good)
                      : rng_.chance(imp_.ge.p_good_to_bad);
    const double p = ge_bad_ ? imp_.ge.loss_bad : imp_.ge.loss_good;
    if (p > 0.0 && rng_.chance(p)) v.lost = true;
  }
  if (!v.lost && imp_.loss_p > 0.0 && rng_.chance(imp_.loss_p)) v.lost = true;
  if (v.lost) {
    ++wire_losses_;
    return v;
  }
  if (imp_.duplicate_p > 0.0 && rng_.chance(imp_.duplicate_p)) {
    v.duplicated = true;
    ++duplicates_;
  }
  if (imp_.max_jitter > 0.0) {
    v.extra_delay = rng_.uniform(0.0, imp_.max_jitter);
  }
  return v;
}

FaultPlan& FaultPlan::impair(net::NodeId from, net::NodeId to,
                             const LinkImpairment& imp) {
  for (Entry& e : entries_) {
    if (e.from == from && e.to == to) {
      e.imp = imp;
      return *this;
    }
  }
  entries_.push_back(Entry{from, to, imp, nullptr});
  return *this;
}

FaultPlan& FaultPlan::fail_node(net::NodeId node, sim::SimTime start,
                                sim::SimTime end) {
  node_failures_.push_back(NodeFailure{node, start, end});
  return *this;
}

FaultPlan& FaultPlan::partition(net::NodeId a, net::NodeId b,
                                sim::SimTime start, sim::SimTime end) {
  partitions_.push_back(Partition{a, b, start, end});
  return *this;
}

FaultPlan::Entry& FaultPlan::entry_for(net::NodeId from, net::NodeId to) {
  for (Entry& e : entries_) {
    if (e.from == from && e.to == to) return e;
  }
  entries_.push_back(Entry{from, to, LinkImpairment{}, nullptr});
  return entries_.back();
}

void FaultPlan::resolve_structural(net::Network& net) {
  // Structural failures merge outage windows ADDITIVELY into per-link
  // entries.  Outage-only impairments consume zero RNG draws, and each
  // entry's stream is named by its endpoints, so resolving structure can
  // never perturb the draw sequence of an already-registered impairment.
  for (const NodeFailure& nf : node_failures_) {
    bool touched = false;
    for (const auto& link : net.links()) {
      if (link->from() != nf.node && link->to() != nf.node) continue;
      entry_for(link->from(), link->to())
          .imp.outages.push_back(Outage{nf.start, nf.end});
      touched = true;
    }
    if (!touched) {
      throw std::invalid_argument(
          "FaultPlan::arm: fail_node(" + std::to_string(nf.node) +
          ") matches no link");
    }
  }
  for (const Partition& p : partitions_) {
    bool touched = false;
    for (const auto [from, to] : {std::pair{p.a, p.b}, std::pair{p.b, p.a}}) {
      if (net.link_between(from, to) == nullptr) continue;
      entry_for(from, to).imp.outages.push_back(Outage{p.start, p.end});
      touched = true;
    }
    if (!touched) {
      throw std::invalid_argument(
          "FaultPlan::arm: partition(" + std::to_string(p.a) + "," +
          std::to_string(p.b) + ") matches no link");
    }
  }
}

void FaultPlan::arm(net::Network& net) {
  resolve_structural(net);
  for (Entry& e : entries_) {
    net::Link* link = net.link_between(e.from, e.to);
    if (link == nullptr) {
      throw std::invalid_argument(
          "FaultPlan::arm: no link " + std::to_string(e.from) + "->" +
          std::to_string(e.to));
    }
    sim::Simulator& sim = net.simulator();
    const std::string stream = "fault-link-" + std::to_string(e.from) + "-" +
                               std::to_string(e.to);
    e.state = std::make_unique<LinkFaultState>(sim, e.imp,
                                               sim.rng_stream(stream));
    link->set_fault_hook(e.state.get());
    e.state->start();
  }
}

FaultTotals FaultPlan::totals() const {
  FaultTotals t;
  for (const Entry& e : entries_) {
    if (!e.state) continue;
    t.offered += e.state->offered();
    t.wire_losses += e.state->wire_losses();
    t.outage_drops += e.state->outage_drops();
    t.duplicates += e.state->duplicates();
  }
  return t;
}

}  // namespace rlacast::fault
