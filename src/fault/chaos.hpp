// Chaos scenario drawing for soak runs.
//
// A chaos run replicates a base experiment many times, each replicate under
// a RANDOMIZED combination of feedback-plane hostility: which adversary
// model, how many adversaries, where they sit, and how impaired the reverse
// (ACK) path is.  The draw itself is deterministic — a dedicated
// "chaos-scenario" stream derived from the replicate's seed, consumed in a
// fixed order — so a chaos replicate is fully described by its seed and
// replays bit-identically through the record/replay machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/adversary.hpp"
#include "fault/fault.hpp"

namespace rlacast::fault {

/// Bounds of the chaos draw; every replicate lands uniformly inside them.
struct ChaosConfig {
  double max_ack_loss_p = 0.05;     // reverse-path Bernoulli ACK loss
  double max_ack_dup_p = 0.05;      // reverse-path ACK duplication
  sim::SimTime max_ack_jitter = 0.02;  // reverse-path delay jitter bound
  double max_leaf_loss_p = 0.02;    // forward leaf-link loss
  int max_adversaries = 9;          // misbehaving receivers per replicate
  sim::SimTime min_flip_period = 5.0;
  sim::SimTime max_flip_period = 20.0;
  sim::SimTime adversary_start = 20.0;  // honest warm-up before lying
  /// Structural-failure draws (node crashes / subtree partitions).  Off by
  /// default: when false, draw_chaos consumes ZERO extra stream draws and
  /// existing chaos journals stay bit-identical.  When true, exactly four
  /// extra draws are appended (kind, placement, start, length) regardless
  /// of which kind lands, so the consumption is seed-stable.
  bool structural = false;
  sim::SimTime min_partition_start = 15.0;
  sim::SimTime max_partition_start = 30.0;
  sim::SimTime min_partition_len = 2.0;
  sim::SimTime max_partition_len = 10.0;
};

/// What structural failure (if any) a chaos replicate draws.  Indices are
/// topology-relative: the bench maps `structural_index` onto its tree's
/// subtree roots (e.g. tertiary tree: 9 level-3 groups, 3 level-2 groups).
enum class StructuralKind : std::uint8_t {
  kNone = 0,          // this replicate has no structural failure
  kLeafPartition,     // partition one level-3 (leaf-group) uplink
  kMidPartition,      // partition one level-2 (mid-group) uplink
  kRouterCrash,       // crash one level-3 router (all interfaces down)
};

const char* structural_kind_name(StructuralKind k);

/// One replicate's drawn scenario.
struct ChaosDraw {
  AdversaryKind kind = AdversaryKind::kSignalStorm;
  int n_adversaries = 0;
  std::vector<int> adversary_idx;  // receiver indices, ascending
  LinkImpairment ack_fault{};      // reverse-path (ACK) impairment
  LinkImpairment leaf_fault{};     // forward leaf-link impairment
  sim::SimTime flip_period = 10.0;
  sim::SimTime adversary_start = 20.0;
  /// Structural failure of this replicate (kNone unless ChaosConfig::
  /// structural was set).  structural_index is a raw 0-based draw in
  /// [0, 9); the bench maps it modulo its subtree count.
  StructuralKind structural = StructuralKind::kNone;
  int structural_index = 0;
  sim::SimTime partition_start = 0.0;
  sim::SimTime partition_len = 0.0;

  /// Materializes the per-receiver models of this draw.
  std::vector<std::pair<int, AdversaryModel>> adversaries() const;

  /// One-line rendering for run logs and crash-row context.
  std::string describe() const;
};

/// Draws one scenario from `cfg` for a session of `n_receivers`, on the
/// "chaos-scenario" stream of `seed`.  The draw order is part of the replay
/// contract: kind, adversary count, adversary placement (partial
/// Fisher-Yates, one uniform_int per slot), ACK loss, ACK duplication, ACK
/// jitter, leaf loss, flip period, then — only when cfg.structural —
/// structural kind, placement, start, length — changing it invalidates
/// recorded chaos journals.
ChaosDraw draw_chaos(const ChaosConfig& cfg, std::uint64_t seed,
                     int n_receivers);

}  // namespace rlacast::fault
