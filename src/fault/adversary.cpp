#include "fault/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlacast::fault {

const char* adversary_kind_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kSrttInflate: return "srtt_inflate";
    case AdversaryKind::kSrttDeflate: return "srtt_deflate";
    case AdversaryKind::kSignalStorm: return "signal_storm";
    case AdversaryKind::kMute: return "mute";
    case AdversaryKind::kFlipFlop: return "flip_flop";
  }
  return "?";
}

void ReceiverAdversary::inflate(net::Packet& ack) const {
  if (ack.ts_echo <= 0.0) return;
  // Pushing the echoed timestamp into the past inflates the sender's
  // (now - ts_echo) sample by srtt_bias seconds.
  ack.ts_echo = std::max(1e-9, ack.ts_echo - model_.srtt_bias);
}

void ReceiverAdversary::deflate(net::Packet& ack, sim::SimTime now) const {
  if (ack.ts_echo <= 0.0) return;
  // Claiming the data was sent deflate_to ago yields a near-zero sample.
  // max() keeps the lie from turning a genuinely smaller sample negative.
  ack.ts_echo = std::max(ack.ts_echo, now - model_.deflate_to);
}

ReceiverAdversary::Verdict ReceiverAdversary::storm(net::Packet& ack) {
  Verdict v;
  const net::SeqNum real_cum = ack.ack;
  if (cooldown_ > 0) {
    // One honest ACK: the sender's frontier catches up to real_cum, so the
    // NEXT fake hole opens at fresh territory and reads as a new loss.
    --cooldown_;
    reported_cum_ = real_cum;
    return v;
  }
  if (hole_ == net::kNoSeq) {
    hole_ = reported_cum_;
    hole_acks_left_ = std::max(1, model_.hole_hold_acks);
    ++fake_holes_;
  }
  if (real_cum > hole_) {
    // Freeze the cumulative point at the fake hole; everything actually
    // received above it rides in SACK block 0 so the sender SACK-detects a
    // "loss" at hole_ (dupthresh covered once real_cum - hole_ >= 3).
    const std::array<net::SackBlock, net::kMaxSackBlocks> orig = ack.sack;
    const std::uint8_t orig_n = ack.n_sack;
    ack.sack[0] = net::SackBlock{hole_ + 1, real_cum};
    std::uint8_t n = 1;
    for (std::uint8_t b = 0; b < orig_n && n < net::kMaxSackBlocks; ++b)
      ack.sack[n++] = orig[b];
    ack.n_sack = n;
    ack.ack = hole_;
    ++acks_tampered_;
    v.extra_copies = model_.storm_copies;
    extra_acks_ += static_cast<std::uint64_t>(v.extra_copies);
  }
  if (--hole_acks_left_ <= 0) {
    hole_ = net::kNoSeq;
    cooldown_ = 1;
  }
  return v;
}

ReceiverAdversary::Verdict ReceiverAdversary::on_ack(net::Packet& ack,
                                                     sim::SimTime now) {
  Verdict v;
  if (now < model_.start) {
    reported_cum_ = ack.ack;  // honest phase: track what the sender knows
    return v;
  }
  AdversaryKind kind = model_.kind;
  if (kind == AdversaryKind::kFlipFlop) {
    const auto phase = static_cast<std::int64_t>(
        std::floor((now - model_.start) / model_.flip_period));
    kind = (phase % 2 == 0) ? AdversaryKind::kSignalStorm
                            : AdversaryKind::kMute;
  }
  switch (kind) {
    case AdversaryKind::kMute:
      ++acks_withheld_;
      v.suppress = true;
      return v;
    case AdversaryKind::kSrttInflate:
      inflate(ack);
      ++acks_tampered_;
      reported_cum_ = ack.ack;
      return v;
    case AdversaryKind::kSrttDeflate:
      deflate(ack, now);
      ++acks_tampered_;
      reported_cum_ = ack.ack;
      return v;
    case AdversaryKind::kSignalStorm:
      return storm(ack);
    case AdversaryKind::kFlipFlop:
      break;  // resolved above
  }
  return v;
}

AdversaryPlan& AdversaryPlan::corrupt(int rcvr_idx,
                                      const AdversaryModel& model) {
  for (Entry& e : entries_) {
    if (e.rcvr_idx == rcvr_idx) {
      e.model = model;
      return *this;
    }
  }
  entries_.push_back(Entry{rcvr_idx, model, nullptr});
  return *this;
}

void AdversaryPlan::arm(const std::vector<rla::RlaReceiver*>& receivers) {
  for (Entry& e : entries_) {
    if (e.rcvr_idx < 0 ||
        static_cast<std::size_t>(e.rcvr_idx) >= receivers.size() ||
        receivers[static_cast<std::size_t>(e.rcvr_idx)] == nullptr)
      throw std::invalid_argument("AdversaryPlan: no receiver with index " +
                                  std::to_string(e.rcvr_idx));
    e.state = std::make_unique<ReceiverAdversary>(e.model);
    receivers[static_cast<std::size_t>(e.rcvr_idx)]->set_ack_tap(
        e.state.get());
  }
}

AdversaryTotals AdversaryPlan::totals() const {
  AdversaryTotals t;
  for (const Entry& e : entries_) {
    if (!e.state) continue;
    t.acks_tampered += e.state->acks_tampered();
    t.acks_withheld += e.state->acks_withheld();
    t.extra_acks += e.state->extra_acks();
    t.fake_holes += e.state->fake_holes();
  }
  return t;
}

}  // namespace rlacast::fault
