// Fault injection: scheduled per-link impairments, deterministically seeded.
//
// A FaultPlan maps unidirectional links to LinkImpairment descriptions —
// Bernoulli and Gilbert–Elliott random wire loss, duplication, delay jitter,
// scheduled outage windows, and random up/down flapping.  arm() installs one
// LinkFaultState per impaired link as that link's net::LinkFaultHook; each
// state draws from its own named sim::Rng stream ("fault-link-<from>-<to>"),
// so (a) faulted runs replay bit-identically for a given master seed, and
// (b) arming a plan cannot perturb any pre-existing stream (RED, RLA coin
// flips, start jitter) — the no-fault baseline stays byte-identical.
//
// Where each impairment acts in the queue → serializer → pipe pipeline:
//  * outages / flapping  — transmit(): the interface is down, the offered
//    packet is discarded before it reaches the queue;
//  * loss / duplication / jitter — serialization end: the packet survived
//    queueing and serialization but is corrupted, copied, or delayed on its
//    propagation leg.
// Queue dynamics are never touched; congestion drops remain congestion
// drops, and every fault discard is counted separately (Link::fault_drops(),
// stats::EngineCounters::fault_drops).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rlacast::fault {

/// Two-state Gilbert–Elliott burst-loss channel.  The chain advances once
/// per serialized packet; the per-packet loss probability depends on the
/// current state (loss_good in Good, loss_bad in Bad).
struct GilbertElliott {
  double p_good_to_bad = 0.0;  // per-packet transition Good -> Bad
  double p_bad_to_good = 0.0;  // per-packet transition Bad -> Good
  double loss_good = 0.0;      // loss probability while Good
  double loss_bad = 1.0;       // loss probability while Bad

  bool enabled() const { return p_good_to_bad > 0.0; }
};

/// A scheduled interface outage: the link is down on [start, end).
///
/// Onset semantics (intentional, pinned by fault_test's
/// OutageOnsetDeliversInFlightPackets): an outage downs the *interface*,
/// not the wire.  Only packets offered at transmit() while the outage is
/// active are discarded; packets already queued, serializing, or in the
/// net::PacketRing propagation pipe when the outage begins are delivered
/// normally — matching a router interface going admin-down while photons
/// already on the fiber still arrive.  A model that also kills in-flight
/// packets can be composed by pairing the outage with a loss window, but
/// the base semantics here are deliver-in-flight.
struct Outage {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
};

/// A router crash: every link attached to `node` (incoming and outgoing) is
/// down on [start, end) atomically.  Resolved against the actual topology
/// at arm() time by merging an Outage into each attached link's impairment.
struct NodeFailure {
  net::NodeId node = 0;
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
};

/// A correlated bidirectional partition: both directions of the a<->b link
/// pair are down on [start, end).  Cuts one edge of the tree, severing the
/// subtree below it, without crashing either endpoint.
struct Partition {
  net::NodeId a = 0;
  net::NodeId b = 0;
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;
};

/// Everything that can go wrong on one unidirectional link.
struct LinkImpairment {
  double loss_p = 0.0;           // Bernoulli wire loss per packet
  GilbertElliott ge{};           // bursty loss channel (composes with loss_p)
  double duplicate_p = 0.0;      // probability of one extra delivered copy
  sim::SimTime max_jitter = 0.0; // uniform [0, max_jitter) extra delay
  std::vector<Outage> outages;   // scheduled down windows
  /// Random flapping: alternate exponentially distributed up/down dwell
  /// times (both means must be > 0 to enable).  Composes with outages.
  sim::SimTime flap_mean_up = 0.0;
  sim::SimTime flap_mean_down = 0.0;

  bool flapping() const { return flap_mean_up > 0.0 && flap_mean_down > 0.0; }
  bool any() const {
    return loss_p > 0.0 || ge.enabled() || duplicate_p > 0.0 ||
           max_jitter > 0.0 || !outages.empty() || flapping();
  }
};

/// Aggregate fault accounting across a plan (sum over armed links).
struct FaultTotals {
  std::uint64_t offered = 0;       // packets the wire() hook adjudicated
  std::uint64_t wire_losses = 0;   // lost at serialization end
  std::uint64_t outage_drops = 0;  // discarded at a down interface
  std::uint64_t duplicates = 0;    // extra copies injected
};

/// The per-link hook implementation.  Owns the link's dedicated RNG stream
/// and the Gilbert–Elliott / flapping state machines.  Created and owned by
/// FaultPlan; must outlive the simulation run.
class LinkFaultState final : public net::LinkFaultHook {
 public:
  LinkFaultState(sim::Simulator& sim, LinkImpairment imp, sim::Rng rng);

  bool down(sim::SimTime now) override;
  bool peek_down(sim::SimTime now) const override;
  WireVerdict wire(const net::Packet& p, sim::SimTime now) override;

  /// Starts the flapping state machine (no-op unless imp.flapping()).
  void start();

  const LinkImpairment& impairment() const { return imp_; }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t wire_losses() const { return wire_losses_; }
  std::uint64_t outage_drops() const { return outage_drops_; }
  std::uint64_t duplicates() const { return duplicates_; }

 private:
  void schedule_flap();
  bool is_down(sim::SimTime now) const;

  sim::Simulator& sim_;
  LinkImpairment imp_;
  sim::Rng rng_;
  bool ge_bad_ = false;    // Gilbert–Elliott channel state
  bool flap_down_ = false; // flapping interface state
  std::uint64_t offered_ = 0;
  std::uint64_t wire_losses_ = 0;
  std::uint64_t outage_drops_ = 0;
  std::uint64_t duplicates_ = 0;
};

/// A schedule of per-link impairments.  Build with impair(), then arm()
/// once the topology exists.  An empty plan arms nothing: every link keeps a
/// null hook and the run is byte-identical to an unfaulted one.
class FaultPlan {
 public:
  /// Registers (or merges, last-write-wins) the impairment for the
  /// unidirectional link from -> to.  Call before arm().
  FaultPlan& impair(net::NodeId from, net::NodeId to,
                    const LinkImpairment& imp);

  /// Schedules a router crash: at arm() time every link attached to `node`
  /// in the armed network gets an Outage on [start, end).  Unlike impair()
  /// this is ADDITIVE — it merges into (never replaces) any per-link
  /// impairment already registered, and multiple structural failures stack.
  FaultPlan& fail_node(net::NodeId node, sim::SimTime start, sim::SimTime end);

  /// Schedules a correlated bidirectional partition of the a<->b edge on
  /// [start, end).  Additive, like fail_node().  Directions that do not
  /// exist in the armed network are skipped (a partition of a unidirectional
  /// edge downs just that direction).
  FaultPlan& partition(net::NodeId a, net::NodeId b, sim::SimTime start,
                       sim::SimTime end);

  bool empty() const {
    return entries_.empty() && node_failures_.empty() && partitions_.empty();
  }
  std::size_t size() const { return entries_.size(); }

  const std::vector<NodeFailure>& node_failures() const {
    return node_failures_;
  }
  const std::vector<Partition>& partitions() const { return partitions_; }

  /// Installs hooks on the matching links of `net` and starts flapping
  /// state machines.  Throws std::invalid_argument if a registered link
  /// does not exist.  The plan must outlive the simulation run.
  void arm(net::Network& net);

  /// Sum of per-link fault counters across all armed links.
  FaultTotals totals() const;

 private:
  struct Entry {
    net::NodeId from;
    net::NodeId to;
    LinkImpairment imp;
    std::unique_ptr<LinkFaultState> state;  // null until arm()
  };
  /// Finds or creates the entry for from -> to (created entries start with
  /// an empty impairment, to be merged into).
  Entry& entry_for(net::NodeId from, net::NodeId to);
  /// Resolves node failures / partitions against the armed topology by
  /// merging outage windows into per-link entries.
  void resolve_structural(net::Network& net);

  std::vector<Entry> entries_;
  std::vector<NodeFailure> node_failures_;
  std::vector<Partition> partitions_;
};

}  // namespace rlacast::fault
