#include "fault/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "sim/random.hpp"

namespace rlacast::fault {

std::vector<std::pair<int, AdversaryModel>> ChaosDraw::adversaries() const {
  std::vector<std::pair<int, AdversaryModel>> out;
  out.reserve(adversary_idx.size());
  for (const int idx : adversary_idx) {
    AdversaryModel m;
    m.kind = kind;
    m.start = adversary_start;
    m.flip_period = flip_period;
    out.emplace_back(idx, m);
  }
  return out;
}

const char* structural_kind_name(StructuralKind k) {
  switch (k) {
    case StructuralKind::kNone: return "none";
    case StructuralKind::kLeafPartition: return "l3part";
    case StructuralKind::kMidPartition: return "l2part";
    case StructuralKind::kRouterCrash: return "crash";
  }
  return "?";
}

std::string ChaosDraw::describe() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "chaos{%s x%d, ack_loss=%.3f ack_dup=%.3f ack_jit=%.3f "
                "leaf_loss=%.3f flip=%.1f}",
                adversary_kind_name(kind), n_adversaries, ack_fault.loss_p,
                ack_fault.duplicate_p, ack_fault.max_jitter,
                leaf_fault.loss_p, flip_period);
  std::string out(buf);
  if (structural != StructuralKind::kNone) {
    std::snprintf(buf, sizeof(buf), " struct=%s#%d@%.1f+%.1fs",
                  structural_kind_name(structural), structural_index,
                  partition_start, partition_len);
    out += buf;
  }
  return out;
}

ChaosDraw draw_chaos(const ChaosConfig& cfg, std::uint64_t seed,
                     int n_receivers) {
  sim::Rng rng = sim::SeedSequence(seed).stream("chaos-scenario");
  ChaosDraw d;

  // Draw order is fixed (see header) — append new draws at the end only.
  constexpr AdversaryKind kKinds[] = {
      AdversaryKind::kSrttInflate, AdversaryKind::kSrttDeflate,
      AdversaryKind::kSignalStorm, AdversaryKind::kMute,
      AdversaryKind::kFlipFlop};
  d.kind = kKinds[rng.uniform_int(0, 4)];

  const int max_adv = std::min(cfg.max_adversaries, std::max(0, n_receivers));
  d.n_adversaries =
      max_adv > 0 ? static_cast<int>(rng.uniform_int(0, max_adv)) : 0;

  // Partial Fisher-Yates: exactly one uniform_int draw per adversary slot,
  // regardless of how many receivers exist.
  std::vector<int> pool(static_cast<std::size_t>(std::max(0, n_receivers)));
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < d.n_adversaries; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  d.adversary_idx.assign(pool.begin(), pool.begin() + d.n_adversaries);
  std::sort(d.adversary_idx.begin(), d.adversary_idx.end());

  d.ack_fault.loss_p = rng.uniform(0.0, cfg.max_ack_loss_p);
  d.ack_fault.duplicate_p = rng.uniform(0.0, cfg.max_ack_dup_p);
  d.ack_fault.max_jitter = rng.uniform(0.0, cfg.max_ack_jitter);
  d.leaf_fault.loss_p = rng.uniform(0.0, cfg.max_leaf_loss_p);
  d.flip_period = rng.uniform(cfg.min_flip_period, cfg.max_flip_period);
  d.adversary_start = cfg.adversary_start;

  // Structural draws are strictly appended and gated: with cfg.structural
  // false nothing below runs and pre-existing journals stay bit-identical.
  // With it true, exactly four draws are consumed whatever kind lands.
  if (cfg.structural) {
    constexpr StructuralKind kStructKinds[] = {
        StructuralKind::kNone, StructuralKind::kLeafPartition,
        StructuralKind::kMidPartition, StructuralKind::kRouterCrash};
    d.structural = kStructKinds[rng.uniform_int(0, 3)];
    d.structural_index = static_cast<int>(rng.uniform_int(0, 8));
    d.partition_start =
        rng.uniform(cfg.min_partition_start, cfg.max_partition_start);
    d.partition_len = rng.uniform(cfg.min_partition_len, cfg.max_partition_len);
  }
  return d;
}

}  // namespace rlacast::fault
