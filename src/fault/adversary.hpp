// Misbehaving-receiver models for the feedback plane.
//
// PR 3's fault layer corrupts the *wire*; an adversary corrupts the
// *report*.  The models here implement rla::AckTap and rewrite a receiver's
// outgoing ACKs before they reach the pacer, so the receiver's reassembly
// and the forward data path stay honest — only what the sender is told is a
// lie.  The four attacks map onto the sender inputs the RLA analysis (§4)
// trusts:
//
//   kSrttInflate  — subtracts srtt_bias from ts_echo, inflating the
//                   sender's RTT sample for this receiver.  Under the
//                   generalized pthresh (k > 0) the liar's srtt becomes
//                   srtt_max and everyone ELSE's listening probability
//                   collapses; countered by the median/MAD srtt clamp.
//   kSrttDeflate  — pins ts_echo near `now`, deflating the sample toward
//                   deflate_to.  The liar claims a tiny RTT: its own
//                   pthresh drops, so it ignores congestion and overruns.
//   kSignalStorm  — NACK implosion: periodically re-opens a fake hole at
//                   the last reported cumulative point (ack frozen, real
//                   progress carried in SACK blocks) and sends extra ACK
//                   copies.  The sender sees a receiver losing "packets"
//                   at line rate: its census interval collapses, it
//                   becomes the troubled minimum, and every fabricated
//                   signal is a cut opportunity; countered by the
//                   signal-rate quarantine.
//   kMute         — ACK withholding: suppresses every ACK after `start`.
//                   Freezes min_last_ack/reach-all until the silent-drop
//                   protection fires.
//   kFlipFlop     — alternates storm and mute phases of length flip_period
//                   (lie, serve the quarantine, lie again) — the
//                   hysteresis/probation stress case.
//
// All models are deterministic functions of (ack, now): no RNG stream is
// consumed, so arming an AdversaryPlan cannot perturb any existing stream
// and an adversarial run replays bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "rla/rla_receiver.hpp"
#include "sim/time.hpp"

namespace rlacast::fault {

enum class AdversaryKind : std::uint8_t {
  kSrttInflate,
  kSrttDeflate,
  kSignalStorm,
  kMute,
  kFlipFlop,
};

const char* adversary_kind_name(AdversaryKind kind);

/// One receiver's misbehavior. Fields beyond `kind` are per-kind knobs;
/// irrelevant ones are ignored.
struct AdversaryModel {
  AdversaryKind kind = AdversaryKind::kSignalStorm;
  /// The receiver is honest before this time (lets the session converge
  /// first, which is also the harder case for the defense: the liar has an
  /// established honest history).
  sim::SimTime start = 0.0;
  /// kSrttInflate: seconds subtracted from every echoed timestamp.
  double srtt_bias = 1.0;
  /// kSrttDeflate: the RTT the liar pretends to have.
  double deflate_to = 1e-4;
  /// kSignalStorm / kFlipFlop storm phase: ACKs a fake hole is held open
  /// before one honest ACK lets the sender's frontier catch up.
  int hole_hold_acks = 8;
  /// kSignalStorm: extra verbatim copies per tampered ACK (implosion).
  int storm_copies = 2;
  /// kFlipFlop: phase length; even phases storm, odd phases mute.
  sim::SimTime flip_period = 10.0;
};

/// Aggregate adversary accounting across a plan.
struct AdversaryTotals {
  std::uint64_t acks_tampered = 0;  // rewritten before sending
  std::uint64_t acks_withheld = 0;  // suppressed entirely
  std::uint64_t extra_acks = 0;     // storm copies injected
  std::uint64_t fake_holes = 0;     // fabricated loss episodes opened
};

/// The per-receiver tap implementation. Created and owned by AdversaryPlan;
/// must outlive the simulation run.
class ReceiverAdversary final : public rla::AckTap {
 public:
  explicit ReceiverAdversary(AdversaryModel model) : model_(model) {}

  Verdict on_ack(net::Packet& ack, sim::SimTime now) override;

  const AdversaryModel& model() const { return model_; }
  std::uint64_t acks_tampered() const { return acks_tampered_; }
  std::uint64_t acks_withheld() const { return acks_withheld_; }
  std::uint64_t extra_acks() const { return extra_acks_; }
  std::uint64_t fake_holes() const { return fake_holes_; }

 private:
  Verdict storm(net::Packet& ack);
  void inflate(net::Packet& ack) const;
  void deflate(net::Packet& ack, sim::SimTime now) const;

  AdversaryModel model_;
  // Signal-storm state: the sender's view of our cumulative point. A fake
  // hole must open at (not below) the sender's frontier or the lie is a
  // no-op — previous honest ACKs already advanced it past the hole.
  net::SeqNum reported_cum_ = 0;
  net::SeqNum hole_ = net::kNoSeq;  // currently-open fake hole
  int hole_acks_left_ = 0;
  int cooldown_ = 0;  // honest ACKs owed before the next hole opens

  std::uint64_t acks_tampered_ = 0;
  std::uint64_t acks_withheld_ = 0;
  std::uint64_t extra_acks_ = 0;
  std::uint64_t fake_holes_ = 0;
};

/// A schedule of per-receiver misbehavior, mirroring FaultPlan's build/arm
/// shape: corrupt() before the topology run, arm() once the receivers
/// exist. An empty plan arms nothing and the run is byte-identical to an
/// honest one.
class AdversaryPlan {
 public:
  /// Registers (or replaces, last-write-wins) the model for receiver index
  /// `rcvr_idx` (the session receiver id). Call before arm().
  AdversaryPlan& corrupt(int rcvr_idx, const AdversaryModel& model);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Installs the taps on the matching receivers. Throws
  /// std::invalid_argument if a registered index has no receiver. The plan
  /// must outlive the simulation run.
  void arm(const std::vector<rla::RlaReceiver*>& receivers);

  /// Sum of per-receiver adversary counters across all armed taps.
  AdversaryTotals totals() const;

 private:
  struct Entry {
    int rcvr_idx;
    AdversaryModel model;
    std::unique_ptr<ReceiverAdversary> state;  // null until arm()
  };
  std::vector<Entry> entries_;
};

}  // namespace rlacast::fault
