#include "trace/buffer_periods.hpp"

namespace rlacast::trace {

BufferPeriodStats analyze_buffer_periods(
    const std::vector<QueueMonitor::Sample>& samples, std::size_t low,
    std::size_t high) {
  BufferPeriodStats out;
  enum class Phase { kLow, kBusy, kFull };  // kBusy: above low, below high
  Phase phase = Phase::kLow;
  double period_start = 0.0;
  double full_start = 0.0;
  bool reached_full = false;  // did this excursion touch the full region?

  for (const auto& s : samples) {
    switch (phase) {
      case Phase::kLow:
        if (s.backlog > low) {
          phase = s.backlog >= high ? Phase::kFull : Phase::kBusy;
          period_start = s.at;
          reached_full = phase == Phase::kFull;
          if (reached_full) full_start = s.at;
        }
        break;
      case Phase::kBusy:
        if (s.backlog >= high) {
          phase = Phase::kFull;
          full_start = s.at;
          reached_full = true;
        } else if (s.backlog <= low) {
          // Excursion over. Only count it as a buffer period if the buffer
          // actually filled (the paper's low -> full -> low definition).
          if (reached_full) {
            out.period_length.add(s.at - period_start);
            ++out.periods;
          }
          phase = Phase::kLow;
          reached_full = false;
        }
        break;
      case Phase::kFull:
        if (s.backlog < high) {
          out.full_length.add(s.at - full_start);
          if (s.backlog <= low) {
            out.period_length.add(s.at - period_start);
            ++out.periods;
            phase = Phase::kLow;
            reached_full = false;
          } else {
            phase = Phase::kBusy;  // may refill within the same period
          }
        }
        break;
    }
  }
  return out;
}

}  // namespace rlacast::trace
