#include "trace/packet_trace.hpp"

#include <ostream>
#include <sstream>

namespace rlacast::trace {
namespace {

char type_code(net::PacketType t) {
  switch (t) {
    case net::PacketType::kData:
      return 'D';
    case net::PacketType::kAck:
      return 'A';
    case net::PacketType::kReport:
      return 'R';
    case net::PacketType::kCtrl:
      return 'C';
  }
  return '?';
}

}  // namespace

std::string Record::render() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << static_cast<char>(op) << ' ' << at << ' ' << from << ' ' << to << ' '
     << type_code(type) << ' ' << size_bytes << ' ' << flow << ' ' << seq
     << ' ' << ack << ' ' << uid;
  return os.str();
}

void PacketTrace::log(Op op, sim::SimTime at, net::NodeId from, net::NodeId to,
                      const net::Packet& p) {
  ++total_;
  const Record rec{op,      at,    from,  to,    p.type,
                   p.size_bytes, p.flow, p.seq, p.ack, p.uid};
  if (max_records_ == 0) {
    records_.push_back(rec);
    return;
  }
  if (records_.size() < max_records_) {
    records_.push_back(rec);
  } else {
    records_[head_] = rec;
    head_ = (head_ + 1) % max_records_;
  }
}

std::size_t PacketTrace::count_if(
    const std::function<bool(const Record&)>& pred) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (pred(r)) ++n;
  return n;
}

std::size_t PacketTrace::drops() const {
  return count_if([](const Record& r) { return r.op == Op::kDrop; });
}

std::size_t PacketTrace::drops_for_flow(net::FlowId flow) const {
  return count_if([flow](const Record& r) {
    return r.op == Op::kDrop && r.flow == flow;
  });
}

void PacketTrace::write(std::ostream& os) const {
  for (const auto& r : records_) os << r.render() << '\n';
}

}  // namespace rlacast::trace
