// Periodic sampling of a queue's backlog into a time series — the raw
// material for §3.1's "macro-effect" analysis of drop-tail buffers
// (occupancy oscillating between near-empty and full).
#pragma once

#include <functional>
#include <vector>

#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace rlacast::trace {

class QueueMonitor {
 public:
  struct Sample {
    sim::SimTime at;
    std::size_t backlog;
  };

  /// Samples `queue.length()` every `period` seconds from `start` to `stop`.
  QueueMonitor(sim::Simulator& sim, const net::Queue& queue,
               sim::SimTime period, sim::SimTime start, sim::SimTime stop);

  const std::vector<Sample>& samples() const { return samples_; }

  /// Fraction of samples with backlog >= threshold.
  double fraction_at_or_above(std::size_t threshold) const;

  /// Mean backlog across samples.
  double mean_backlog() const;

  /// Peak backlog observed.
  std::size_t peak_backlog() const;

 private:
  void tick();

  sim::Simulator& sim_;
  const net::Queue& queue_;
  sim::SimTime period_;
  sim::SimTime stop_;
  sim::Timer tick_timer_;
  std::vector<Sample> samples_;
};

}  // namespace rlacast::trace
