// Packet event tracing, ns-2 style.
//
// A PacketTrace collects one record per traced event:
//   '+' enqueue   '-' dequeue   'd' drop   'r' receive (delivered to agent)
// with timestamp, hop (from->to), and the packet's transport header.  The
// text rendering matches the spirit of ns-2 trace files so existing habits
// (grep for " d ", awk on columns) carry over:
//
//   <op> <time> <from> <to> <type> <size> <flow> <seq> <ack> <uid>
//
// Tracing attaches to Queue drop hooks and can be fed manually by scenario
// code for send/receive events.  It is a debugging/analysis facility: the
// benches that reproduce paper figures use the cheaper dedicated monitors.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace rlacast::trace {

enum class Op : char {
  kEnqueue = '+',
  kDequeue = '-',
  kDrop = 'd',
  kReceive = 'r',
};

struct Record {
  Op op;
  sim::SimTime at;
  net::NodeId from;
  net::NodeId to;
  net::PacketType type;
  std::int32_t size_bytes;
  net::FlowId flow;
  net::SeqNum seq;
  net::SeqNum ack;
  std::uint64_t uid;

  std::string render() const;
};

class PacketTrace {
 public:
  /// Maximum records retained (oldest evicted). 0 = unbounded.
  explicit PacketTrace(std::size_t max_records = 0)
      : max_records_(max_records) {}

  void log(Op op, sim::SimTime at, net::NodeId from, net::NodeId to,
           const net::Packet& p);

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t total_logged() const { return total_; }

  /// Number of retained records matching a predicate.
  std::size_t count_if(const std::function<bool(const Record&)>& pred) const;

  /// Convenience filters.
  std::size_t drops() const;
  std::size_t drops_for_flow(net::FlowId flow) const;

  /// Writes every retained record as one line each.
  void write(std::ostream& os) const;

  void clear() {
    records_.clear();
  }

 private:
  std::size_t max_records_;
  std::vector<Record> records_;
  std::uint64_t total_ = 0;
  std::size_t head_ = 0;  // ring start when bounded
};

}  // namespace rlacast::trace
