#include "trace/queue_monitor.hpp"

#include <algorithm>

namespace rlacast::trace {

QueueMonitor::QueueMonitor(sim::Simulator& sim, const net::Queue& queue,
                           sim::SimTime period, sim::SimTime start,
                           sim::SimTime stop)
    : sim_(sim),
      queue_(queue),
      period_(period),
      stop_(stop),
      tick_timer_(sim, [this] { tick(); }) {
  tick_timer_.schedule_at(start);
}

void QueueMonitor::tick() {
  samples_.push_back({sim_.now(), queue_.length()});
  if (sim_.now() + period_ <= stop_) tick_timer_.schedule(period_);
}

double QueueMonitor::fraction_at_or_above(std::size_t threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_)
    if (s.backlog >= threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

double QueueMonitor::mean_backlog() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += static_cast<double>(s.backlog);
  return sum / static_cast<double>(samples_.size());
}

std::size_t QueueMonitor::peak_backlog() const {
  std::size_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.backlog);
  return peak;
}

}  // namespace rlacast::trace
