// Buffer-period analysis (§3.1).
//
// The paper's macro model of a drop-tail gateway carrying TCP: occupancy
// oscillates between (near-)empty and full; a *buffer period* runs from one
// low-occupancy epoch through full and back; the *buffer-full period* is
// the stretch at/near the top during which arrivals are dropped.  The paper
// observes buffer periods ≫ 2·RTT and full periods ≲ 2·RTT, which justifies
// grouping losses within 2·srtt into one congestion signal.
//
// BufferPeriodAnalyzer segments a QueueMonitor time series with a
// low/high-threshold hysteresis and reports the period statistics.
#pragma once

#include <vector>

#include "stats/summary.hpp"
#include "trace/queue_monitor.hpp"

namespace rlacast::trace {

struct BufferPeriodStats {
  stats::Summary period_length;      // low -> full -> low durations
  stats::Summary full_length;        // contiguous time at/above `high`
  std::size_t periods = 0;
};

/// Segments `samples` (uniformly spaced) into buffer periods.
/// `low` / `high` are backlog thresholds (e.g. 25% and 90% of the buffer).
BufferPeriodStats analyze_buffer_periods(
    const std::vector<QueueMonitor::Sample>& samples, std::size_t low,
    std::size_t high);

}  // namespace rlacast::trace
