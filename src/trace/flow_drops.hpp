// Per-flow drop accounting for a queue — the measurement behind the
// drop-tail phase-effect analysis in EXPERIMENTS.md (whose packets does a
// congested gateway actually discard?).
//
// Installs itself as the queue's drop hook; at most one FlowDropCounter
// (or other hook user) per queue.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/queue.hpp"

namespace rlacast::trace {

class FlowDropCounter {
 public:
  explicit FlowDropCounter(net::Queue& queue) {
    queue.set_drop_hook([this](const net::Packet& p, sim::SimTime) {
      ++drops_[p.flow];
      ++total_;
    });
  }

  FlowDropCounter(const FlowDropCounter&) = delete;
  FlowDropCounter& operator=(const FlowDropCounter&) = delete;

  std::uint64_t drops(net::FlowId flow) const {
    const auto it = drops_.find(flow);
    return it == drops_.end() ? 0 : it->second;
  }
  std::uint64_t total() const { return total_; }
  const std::unordered_map<net::FlowId, std::uint64_t>& by_flow() const {
    return drops_;
  }

 private:
  std::unordered_map<net::FlowId, std::uint64_t> drops_;
  std::uint64_t total_ = 0;
};

}  // namespace rlacast::trace
