// Tests for the RlaSession convenience wrapper and the TcpReceiver
// delayed-ACK option.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_session.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast {
namespace {

struct StarNet {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::NodeId s, hub;
  std::vector<net::NodeId> leaves;

  explicit StarNet(int n, double leaf_pps = 0.0) {
    s = net.add_node();
    hub = net.add_node();
    net::LinkConfig fast;
    fast.bandwidth_bps = 1e9;
    fast.delay = 0.01;
    net.connect(s, hub, fast);
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net::LinkConfig leg = fast;
      if (leaf_pps > 0) leg.bandwidth_bps = leaf_pps * 8000.0;
      net.connect(hub, leaves.back(), leg);
    }
    net.build_routes();
  }
};

TEST(RlaSession, WiresCompleteSession) {
  StarNet star(4);
  rla::RlaParams p;
  p.max_cwnd = 128;
  rla::RlaSession session(star.net, star.s, /*group=*/1, p);
  for (const auto leaf : star.leaves) session.add_receiver(leaf);
  EXPECT_EQ(session.receiver_count(), 4u);
  session.start_at(0.0);
  star.sim.run_until(2.0);
  EXPECT_GT(session.sender().max_reach_all(), 100);
  for (int i = 0; i < 4; ++i)
    EXPECT_GT(session.receiver(i).data_packets_received(), 100u);
}

TEST(RlaSession, TwoSessionsCoexistOnSharedNodes) {
  StarNet star(3, 400.0);
  rla::RlaSession a(star.net, star.s, 1);
  rla::RlaSession b(star.net, star.s, 2);
  for (const auto leaf : star.leaves) {
    a.add_receiver(leaf);
    b.add_receiver(leaf);
  }
  a.start_at(0.0);
  b.start_at(0.2);
  star.sim.run_until(30.0);
  EXPECT_GT(a.sender().max_reach_all(), 500);
  EXPECT_GT(b.sender().max_reach_all(), 500);
  // Shared 400 pkt/s branches: the two sessions split the capacity.
  const double total =
      static_cast<double>(a.sender().max_reach_all() +
                          b.sender().max_reach_all()) /
      30.0;
  EXPECT_LT(total, 420.0);
  EXPECT_GT(total, 250.0);
}

TEST(RlaSession, LateJoinerResumesMidStream) {
  StarNet star(3, 400.0);
  rla::RlaSession session(star.net, star.s, 1);
  session.add_receiver(star.leaves[0]);
  session.add_receiver(star.leaves[1]);
  session.start_at(0.0);
  star.sim.run_until(10.0);
  const net::SeqNum frontier = session.sender().next_seq();
  ASSERT_GT(frontier, 500);

  // Third receiver joins mid-session.
  const int idx = session.add_receiver(star.leaves[2]);
  star.sim.run_until(20.0);

  // The session kept moving (the joiner did not stall it waiting for
  // history it never saw)...
  EXPECT_GT(session.sender().max_reach_all(), frontier + 100);
  // ...and the joiner is receiving the live stream from its join point.
  EXPECT_GT(session.receiver(idx).data_packets_received(), 100u);
  EXPECT_GE(session.receiver(idx).buffer().cum_ack(), frontier);
}

TEST(RlaSession, LeaverStopsGatingTheWindow) {
  // Receiver 2 sits behind a crippled branch; after it leaves, the session
  // accelerates to the healthy branches' pace.
  StarNet star(3);
  // Rebuild leaf 2's leg as slow: easiest is a fresh topology.
  sim::Simulator sim(2);
  net::Network net(sim);
  const auto s = net.add_node(), hub = net.add_node();
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.01;
  net.connect(s, hub, fast);
  std::vector<net::NodeId> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(net.add_node());
    net::LinkConfig leg = fast;
    if (i == 2) leg.bandwidth_bps = 50 * 8000.0;  // 50 pkt/s straggler
    leg.buffer_pkts = 20;
    net.connect(hub, leaves.back(), leg);
  }
  net.build_routes();
  rla::RlaParams params;
  params.max_cwnd = 256;
  rla::RlaSession session(net, s, 1, params);
  for (const auto leaf : leaves) session.add_receiver(leaf);
  session.start_at(0.0);
  sim.run_until(30.0);
  const double paced_rate =
      static_cast<double>(session.sender().max_reach_all()) / 30.0;
  EXPECT_LT(paced_rate, 80.0);  // straggler-bound

  session.remove_receiver(2);
  const net::SeqNum before = session.sender().max_reach_all();
  sim.run_until(40.0);
  const double free_rate =
      static_cast<double>(session.sender().max_reach_all() - before) / 10.0;
  EXPECT_GT(free_rate, 3.0 * paced_rate);  // unshackled
}

TEST(DelayedAck, HalvesAckTrafficOnCleanPath) {
  // Two identical TCP transfers, one with delayed ACKs: roughly half the
  // ACK packets for the same data progress; throughput unharmed.
  auto run = [](bool delack) {
    sim::Simulator sim(3);
    net::Network net(sim);
    const auto s = net.add_node(), r = net.add_node();
    net::LinkConfig link;
    link.bandwidth_bps = 400 * 8000.0;
    link.delay = 0.02;
    net.connect(s, r, link);
    net.build_routes();
    tcp::TcpReceiver rcv(net, r, 1);
    rcv.set_delayed_ack(delack);
    tcp::TcpParams p;
    p.max_cwnd = 64;
    tcp::TcpSender snd(net, s, 1, r, 1, 1, p);
    snd.start_at(0.0);
    sim.run_until(30.0);
    const auto* reverse = net.link_between(r, s);
    return std::pair<double, std::uint64_t>(
        static_cast<double>(snd.una()) / 30.0,
        reverse->packets_delivered());
  };
  const auto [thr_plain, acks_plain] = run(false);
  const auto [thr_delack, acks_delack] = run(true);
  EXPECT_GT(thr_delack, 0.85 * thr_plain);  // progress preserved
  EXPECT_LT(static_cast<double>(acks_delack),
            0.65 * static_cast<double>(acks_plain));  // ~half the ACKs
}

TEST(DelayedAck, LossStillDetectedPromptly) {
  // Delayed ACKs must not defeat fast retransmit: out-of-order arrivals
  // are ACKed immediately.
  sim::Simulator sim(5);
  net::Network net(sim);
  const auto s = net.add_node(), g = net.add_node(), r = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = 150 * 8000.0;
  bttl.delay = 0.02;
  bttl.buffer_pkts = 10;  // small buffer: genuine losses
  net.connect(s, g, bttl);
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.02;
  net.connect(g, r, fast);
  net.build_routes();
  tcp::TcpReceiver rcv(net, r, 1);
  rcv.set_delayed_ack(true);
  tcp::TcpSender snd(net, s, 1, r, 1, 1, tcp::TcpParams{});
  snd.start_at(0.0);
  sim.at(10.0, [&] { snd.measurement().begin_measurement(sim.now()); });
  sim.run_until(60.0);
  ASSERT_GT(snd.measurement().window_cuts(), 3u);
  // Most loss episodes recovered via SACK, not timeout.
  EXPECT_LT(snd.measurement().timeouts(),
            snd.measurement().window_cuts() / 2 + 2);
  EXPECT_GT(snd.measurement().throughput_pps(60.0), 100.0);
}

}  // namespace
}  // namespace rlacast
