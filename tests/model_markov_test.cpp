// Tests of the §4.4 two-session Markov chain (Figure 5): exchangeability
// (equal marginal means), concentration near the desired operating point,
// and recurrence.
#include <gtest/gtest.h>

#include <cmath>

#include "model/two_session_markov.hpp"

namespace rlacast::model {
namespace {

TwoSessionParams paper_setup() {
  TwoSessionParams p;
  p.n = 27;
  p.pipe = 40.0;  // desired operating point (20, 20) as in Figure 5
  p.steps = 400000;
  return p;
}

TEST(TwoSessionMarkov, MarginalMeansEqual) {
  const auto res = run_two_session_markov(paper_setup(), sim::Rng(1));
  EXPECT_NEAR(res.mean_w1 / res.mean_w2, 1.0, 0.05);
}

TEST(TwoSessionMarkov, MeansNearFairShare) {
  const auto res = run_two_session_markov(paper_setup(), sim::Rng(2));
  // The chain overshoots the pipe boundary before cutting, so the mean sits
  // around the fair share; allow a generous band, the claim is "focused on
  // the general area".
  EXPECT_GT(res.mean_w1, 10.0);
  EXPECT_LT(res.mean_w1, 35.0);
}

TEST(TwoSessionMarkov, MassConcentratesNearDesiredPoint) {
  const auto res = run_two_session_markov(paper_setup(), sim::Rng(3));
  // Majority of the probability mass within Chebyshev radius pipe/4 of
  // (pipe/2, pipe/2).
  EXPECT_GT(res.mass_near_fair, 0.5);
}

TEST(TwoSessionMarkov, DesiredPointIsRecurrent) {
  const auto res = run_two_session_markov(paper_setup(), sim::Rng(4));
  // The neighbourhood is entered and left many times, not once.
  EXPECT_GT(res.fair_point_visits, 100);
}

TEST(TwoSessionMarkov, AsymmetricStartForgotten) {
  TwoSessionParams p = paper_setup();
  p.w0_1 = 60.0;
  p.w0_2 = 1.0;
  const auto res = run_two_session_markov(p, sim::Rng(5));
  EXPECT_NEAR(res.mean_w1 / res.mean_w2, 1.0, 0.07);
}

TEST(TwoSessionMarkov, DeterministicForSeed) {
  const auto a = run_two_session_markov(paper_setup(), sim::Rng(9));
  const auto b = run_two_session_markov(paper_setup(), sim::Rng(9));
  EXPECT_DOUBLE_EQ(a.mean_w1, b.mean_w1);
  EXPECT_DOUBLE_EQ(a.mass_near_fair, b.mass_near_fair);
}

// Property sweep over n: fairness (equal means) holds regardless of the
// receiver count; concentration degrades gracefully as randomness grows.
class MarkovN : public ::testing::TestWithParam<int> {};

TEST_P(MarkovN, ExchangeableForAnyReceiverCount) {
  TwoSessionParams p = paper_setup();
  p.n = GetParam();
  p.steps = 200000;
  const auto res = run_two_session_markov(p, sim::Rng(11));
  EXPECT_NEAR(res.mean_w1 / res.mean_w2, 1.0, 0.10) << "n=" << p.n;
}

INSTANTIATE_TEST_SUITE_P(Ns, MarkovN, ::testing::Values(1, 3, 9, 27, 81));

}  // namespace
}  // namespace rlacast::model
