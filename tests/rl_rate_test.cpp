// Tests of the §6 random-listening rate controller: threshold-free
// congestion decisions, scaling with congested-receiver count, and the
// contrast with LTRC's tuned threshold.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/ltrc.hpp"
#include "baselines/rate_receiver.hpp"
#include "baselines/rl_rate.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast::baselines {
namespace {

struct Star {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::NodeId s, hub;
  std::vector<net::NodeId> leaves;
  std::vector<std::unique_ptr<RateReceiver>> rcvrs;

  Star(int n, double trunk_pps) {
    s = net.add_node();
    hub = net.add_node();
    net::LinkConfig t;
    t.bandwidth_bps = trunk_pps * 8000.0;
    t.delay = 0.01;
    t.buffer_pkts = 20;
    net.connect(s, hub, t);
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net::LinkConfig leg;
      leg.delay = 0.01;
      leg.bandwidth_bps = 1e9;
      net.connect(hub, leaves.back(), leg);
    }
    net.build_routes();
  }

  template <typename Sender, typename Params>
  std::unique_ptr<Sender> make_sender(Params params) {
    auto snd = std::make_unique<Sender>(net, s, 100, 1, 1, params);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      net.join_group(1, s, leaves[i]);
      const int idx = snd->add_receiver();
      rcvrs.push_back(std::make_unique<RateReceiver>(net, leaves[i], 2, 1, s,
                                                     100, idx));
      rcvrs.back()->start_at(0.5);
    }
    snd->start_at(0.1);
    return snd;
  }
};

TEST(RlRate, NoCongestionNoCuts) {
  Star star(4, 1e5);
  auto snd = star.make_sender<RlRateSender>(RlRateParams{});
  star.sim.run_until(30.0);
  EXPECT_EQ(snd->rate_cuts(), 0u);
  EXPECT_EQ(snd->congested_count(), 0);
}

TEST(RlRate, ConvergesNearCapacityWithoutTuning) {
  Star star(4, 80.0);
  RlRateParams p;
  p.rate.initial_rate_pps = 40.0;
  auto snd = star.make_sender<RlRateSender>(p);
  star.sim.run_until(120.0);
  EXPECT_GT(snd->rate_cuts(), 3u);
  const double avg_rate = snd->rate_mean().mean(120.0);
  EXPECT_GT(avg_rate, 30.0);
  EXPECT_LT(avg_rate, 200.0);  // bounded around the 80 pkt/s capacity
}

TEST(RlRate, WorksAcrossCapacitiesWithSameParameters) {
  // The whole point: one parameterization, many topologies. LTRC with a
  // fixed threshold runs away at one of these scales (see baselines bench);
  // RL-rate stays near capacity in all.
  for (double cap : {40.0, 150.0, 600.0}) {
    Star star(4, cap);
    RlRateParams p;
    p.rate.initial_rate_pps = 30.0;
    auto snd = star.make_sender<RlRateSender>(p);
    star.sim.run_until(150.0);
    const double avg_rate = snd->rate_mean().mean(150.0);
    EXPECT_GT(avg_rate, 0.25 * cap) << "capacity " << cap;
    EXPECT_LT(avg_rate, 2.5 * cap) << "capacity " << cap;
  }
}

TEST(RlRate, CongestedCountTracksReports) {
  Star star(4, 60.0);
  RlRateParams p;
  p.rate.initial_rate_pps = 120.0;  // well above capacity: everyone suffers
  auto snd = star.make_sender<RlRateSender>(p);
  star.sim.run_until(30.0);
  EXPECT_EQ(snd->congested_count(), 4);
}

TEST(RlRate, DeterministicForSeed) {
  auto run = [] {
    Star star(3, 70.0);
    RlRateParams p;
    p.rate.initial_rate_pps = 50.0;
    auto snd = star.make_sender<RlRateSender>(p);
    star.sim.run_until(60.0);
    return snd->rate_cuts();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rlacast::baselines
