// Tests of the rate-based baselines (LTRC / MBFC): AIMD mechanics, the
// threshold decision rules, and the qualitative failure modes §1 describes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/ltrc.hpp"
#include "baselines/mbfc.hpp"
#include "baselines/rate_receiver.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast::baselines {
namespace {

/// Star topology for baseline senders. The trunk s->hub has a configurable
/// capacity; individual leaf legs can be slowed to congest a subset of the
/// receivers.
struct Star {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::NodeId s, hub;
  std::vector<net::NodeId> leaves;
  std::vector<std::unique_ptr<RateReceiver>> rcvrs;
  net::Link* trunk = nullptr;

  Star(int n, double trunk_pps, std::vector<double> leaf_pps = {}) {
    s = net.add_node();
    hub = net.add_node();
    net::LinkConfig t;
    t.bandwidth_bps = trunk_pps * 8000.0;
    t.delay = 0.01;
    t.buffer_pkts = 20;
    net.connect(s, hub, t);
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net::LinkConfig leg;
      leg.delay = 0.01;
      leg.buffer_pkts = 20;
      leg.bandwidth_bps = 1e9;
      if (static_cast<std::size_t>(i) < leaf_pps.size() && leaf_pps[size_t(i)] > 0)
        leg.bandwidth_bps = leaf_pps[size_t(i)] * 8000.0;
      net.connect(hub, leaves.back(), leg);
    }
    net.build_routes();
    trunk = net.link_between(s, hub);
  }

  template <typename Sender, typename Params>
  std::unique_ptr<Sender> make_sender(Params params) {
    const net::GroupId g = 1;
    auto snd = std::make_unique<Sender>(net, s, 100, g, 1, params);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      net.join_group(g, s, leaves[i]);
      const int idx = snd->add_receiver();
      rcvrs.push_back(std::make_unique<RateReceiver>(net, leaves[i], 2, g, s,
                                                     100, idx));
      rcvrs.back()->start_at(0.5);
    }
    snd->start_at(0.1);
    return snd;
  }
};

TEST(RateReceiver, ReportsZeroLossOnCleanPath) {
  Star star(2, 10000.0);
  auto snd = star.make_sender<LtrcSender>(LtrcParams{});
  star.sim.run_until(20.0);
  for (auto& r : star.rcvrs) {
    EXPECT_DOUBLE_EQ(r->loss_ewma(), 0.0);
    EXPECT_GT(r->data_packets_received(), 0u);
  }
  EXPECT_EQ(snd->rate_cuts(), 0u);
}

TEST(RateSender, LinearIncreaseWithoutCongestion) {
  Star star(2, 100000.0);
  LtrcParams p;
  p.rate.initial_rate_pps = 10.0;
  p.rate.update_interval = 1.0;
  p.rate.nominal_rtt = 0.5;  // slope = 4 pps per update
  auto snd = star.make_sender<LtrcSender>(p);
  star.sim.run_until(10.4);
  // 10 policy ticks after starting at t=0.1: rate = 10 + 10*4 = 50.
  EXPECT_NEAR(snd->rate_pps(), 50.0, 4.1);
}

TEST(Ltrc, CutsWhenLossExceedsThreshold) {
  Star star(3, 50.0);  // tight trunk: the CBR ramp will overrun it
  LtrcParams p;
  p.loss_threshold = 0.02;
  p.rate.initial_rate_pps = 40.0;
  auto snd = star.make_sender<LtrcSender>(p);
  star.sim.run_until(60.0);
  EXPECT_GT(snd->rate_cuts(), 0u);
  // Long-run average rate must hover near capacity, not run away.
  EXPECT_LT(snd->rate_mean().mean(60.0), 150.0);
}

TEST(Ltrc, HighThresholdIgnoresCongestion) {
  // §1's criticism: the threshold is topology-dependent. An over-generous
  // threshold never triggers, and the rate climbs far past capacity.
  Star star(3, 50.0);
  LtrcParams p;
  p.loss_threshold = 0.98;
  p.rate.initial_rate_pps = 40.0;
  auto snd = star.make_sender<LtrcSender>(p);
  star.sim.run_until(60.0);
  EXPECT_EQ(snd->rate_cuts(), 0u);
  EXPECT_GT(snd->rate_pps(), 300.0);
}

TEST(Ltrc, DeadTimeLimitsCutFrequency) {
  Star star(2, 30.0);
  LtrcParams p;
  p.loss_threshold = 0.01;
  p.rate.dead_time = 5.0;
  p.rate.initial_rate_pps = 100.0;  // start far above capacity
  auto snd = star.make_sender<LtrcSender>(p);
  star.sim.run_until(30.0);
  // At most one cut per dead_time once congestion persists.
  EXPECT_LE(snd->rate_cuts(), 7u);
  EXPECT_GE(snd->rate_cuts(), 2u);
}

TEST(Mbfc, LowPopulationThresholdTracksSlowestReceiver) {
  // One congested receiver out of four; population threshold 0 means a
  // single congested receiver triggers cuts (the degenerate case §1 notes).
  Star star(4, 1e5, {30.0});  // leaf 0 capped at 30 pkt/s
  MbfcParams p;
  p.loss_threshold = 0.02;
  p.population_threshold = 0.0;
  p.rate.initial_rate_pps = 60.0;
  auto snd = star.make_sender<MbfcSender>(p);
  star.sim.run_until(60.0);
  EXPECT_GT(snd->rate_cuts(), 0u);
  EXPECT_LT(snd->rate_mean().mean(60.0), 120.0);
}

TEST(Mbfc, HighPopulationThresholdIgnoresMinority) {
  // The same single congested receiver with a 50% population threshold:
  // 1/4 < 50%, so MBFC never reacts and the slow receiver is abandoned.
  Star star(4, 1e5, {30.0});
  MbfcParams p;
  p.loss_threshold = 0.02;
  p.population_threshold = 0.5;
  p.rate.initial_rate_pps = 60.0;
  auto snd = star.make_sender<MbfcSender>(p);
  star.sim.run_until(60.0);
  EXPECT_EQ(snd->rate_cuts(), 0u);
  EXPECT_GT(snd->rate_pps(), 200.0);
  // The congested receiver's loss EWMA confirms persistent congestion.
  EXPECT_GT(star.rcvrs[0]->loss_ewma(), 0.02);
}

TEST(Mbfc, ReactsWhenMajorityCongested) {
  // All receivers share the congested trunk: fraction = 1 > any threshold.
  Star star(4, 50.0);
  MbfcParams p;
  p.loss_threshold = 0.02;
  p.population_threshold = 0.5;
  p.rate.initial_rate_pps = 80.0;
  auto snd = star.make_sender<MbfcSender>(p);
  star.sim.run_until(60.0);
  EXPECT_GT(snd->rate_cuts(), 0u);
  EXPECT_GT(snd->congested_fraction(), 0.5);
}

TEST(RateSender, RateStaysWithinConfiguredBounds) {
  Star star(2, 20.0);
  LtrcParams p;
  p.loss_threshold = 0.001;
  p.rate.initial_rate_pps = 4.0;
  p.rate.min_rate_pps = 2.0;
  p.rate.dead_time = 0.0;  // cut on every tick if congested
  auto snd = star.make_sender<LtrcSender>(p);
  star.sim.run_until(120.0);
  EXPECT_GE(snd->rate_pps(), 2.0);
}

}  // namespace
}  // namespace rlacast::baselines
