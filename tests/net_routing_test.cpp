// Routing and multicast forwarding tests: BFS shortest paths, tree grafting,
// per-branch fan-out, and subscriber delivery at interior nodes.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {
namespace {

class CountingAgent final : public Agent {
 public:
  void on_receive(const Packet& p) override {
    ++count;
    last = p;
  }
  int count = 0;
  Packet last;
};

LinkConfig fast() {
  LinkConfig c;
  c.bandwidth_bps = 1e9;
  c.delay = 0.001;
  return c;
}

TEST(Routing, UnicastFollowsShortestPath) {
  sim::Simulator sim;
  Network net(sim);
  // Line: 0 - 1 - 2, plus a long detour 0 - 3 - 4 - 2.
  const NodeId n0 = net.add_node(), n1 = net.add_node(), n2 = net.add_node();
  const NodeId n3 = net.add_node(), n4 = net.add_node();
  net.connect(n0, n1, fast());
  net.connect(n1, n2, fast());
  net.connect(n0, n3, fast());
  net.connect(n3, n4, fast());
  net.connect(n4, n2, fast());
  net.build_routes();

  EXPECT_EQ(net.node(n0).route(n2)->to(), n1);  // 2 hops beats 3
  EXPECT_EQ(net.node(n0).route(n4)->to(), n3);
}

TEST(Routing, DeliversToCorrectAgentPort) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_node(), b = net.add_node();
  net.connect(a, b, fast());
  net.build_routes();
  CountingAgent p1, p2;
  net.attach(b, 1, &p1);
  net.attach(b, 2, &p2);

  Packet pkt;
  pkt.src = a;
  pkt.dst = b;
  pkt.dst_port = 2;
  net.inject(pkt);
  sim.run_all();
  EXPECT_EQ(p1.count, 0);
  EXPECT_EQ(p2.count, 1);
}

struct StarFixture {
  sim::Simulator sim;
  Network net{sim};
  NodeId s, hub;
  std::vector<NodeId> leaves;
  std::vector<CountingAgent> sinks;

  explicit StarFixture(int n) : sinks(static_cast<size_t>(n)) {
    s = net.add_node();
    hub = net.add_node();
    net.connect(s, hub, fast());
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net.connect(hub, leaves.back(), fast());
    }
    net.build_routes();
  }
};

TEST(Multicast, DeliversToAllGroupMembers) {
  StarFixture f(5);
  const GroupId g = 7;
  for (int i = 0; i < 5; ++i) {
    f.net.join_group(g, f.s, f.leaves[size_t(i)]);
    f.net.subscribe(g, f.leaves[size_t(i)], &f.sinks[size_t(i)]);
  }
  Packet pkt;
  pkt.src = f.s;
  pkt.group = g;
  pkt.seq = 3;
  f.net.inject(pkt);
  f.sim.run_all();
  for (auto& sink : f.sinks) {
    EXPECT_EQ(sink.count, 1);
    EXPECT_EQ(sink.last.seq, 3);
  }
}

TEST(Multicast, OnlyMembersReceive) {
  StarFixture f(4);
  const GroupId g = 7;
  for (int i = 0; i < 2; ++i) {  // only leaves 0 and 1 join
    f.net.join_group(g, f.s, f.leaves[size_t(i)]);
    f.net.subscribe(g, f.leaves[size_t(i)], &f.sinks[size_t(i)]);
  }
  // Non-members still subscribe locally, but no tree branch reaches them,
  // so nothing arrives.
  for (int i = 2; i < 4; ++i)
    f.net.subscribe(g, f.leaves[size_t(i)], &f.sinks[size_t(i)]);

  Packet pkt;
  pkt.src = f.s;
  pkt.group = g;
  f.net.inject(pkt);
  f.sim.run_all();
  EXPECT_EQ(f.sinks[0].count, 1);
  EXPECT_EQ(f.sinks[1].count, 1);
  EXPECT_EQ(f.sinks[2].count, 0);
  EXPECT_EQ(f.sinks[3].count, 0);
}

TEST(Multicast, SharedTrunkCarriesOneCopy) {
  StarFixture f(3);
  const GroupId g = 1;
  for (int i = 0; i < 3; ++i) {
    f.net.join_group(g, f.s, f.leaves[size_t(i)]);
    f.net.subscribe(g, f.leaves[size_t(i)], &f.sinks[size_t(i)]);
  }
  for (int k = 0; k < 10; ++k) {
    Packet pkt;
    pkt.src = f.s;
    pkt.group = g;
    pkt.seq = k;
    f.net.inject(pkt);
  }
  f.sim.run_all();
  // The trunk s->hub must carry exactly one copy per packet; the fan-out
  // happens at the hub.
  EXPECT_EQ(f.net.link_between(f.s, f.hub)->packets_delivered(), 10u);
  EXPECT_EQ(f.net.link_between(f.hub, f.leaves[0])->packets_delivered(), 10u);
}

TEST(Multicast, InteriorSubscriberReceives) {
  // A receiver at an interior gateway (the fig. 10 heterogeneous setup).
  StarFixture f(2);
  const GroupId g = 2;
  CountingAgent interior;
  f.net.join_group(g, f.s, f.leaves[0]);
  f.net.subscribe(g, f.hub, &interior);  // hub is on the path
  f.net.subscribe(g, f.leaves[0], &f.sinks[0]);

  Packet pkt;
  pkt.src = f.s;
  pkt.group = g;
  f.net.inject(pkt);
  f.sim.run_all();
  EXPECT_EQ(interior.count, 1);
  EXPECT_EQ(f.sinks[0].count, 1);
}

TEST(Multicast, GraftingIsIdempotent) {
  StarFixture f(2);
  const GroupId g = 3;
  f.net.join_group(g, f.s, f.leaves[0]);
  f.net.join_group(g, f.s, f.leaves[0]);  // duplicate join
  f.net.subscribe(g, f.leaves[0], &f.sinks[0]);
  Packet pkt;
  pkt.src = f.s;
  pkt.group = g;
  f.net.inject(pkt);
  f.sim.run_all();
  EXPECT_EQ(f.sinks[0].count, 1);  // not duplicated
}

}  // namespace
}  // namespace rlacast::net
