// Frontier-progress watchdog regression (ISSUE 9 satellite, ROADMAP item 6):
// the majority-coalition liveness hole.
//
// Nine signal-storm receivers (a third of the tree) freeze their cumulative
// ACK behind a fabricated hole and never release it.  The census rate
// defense is OFF — each stormer's signal rate alone is defensible — so the
// only guard is the sender's frontier watchdog: reach-all pinned for
// several RTOs while ACKs keep flowing and the blocking packet has been
// repaired means the pinners are lying about loss, and they are
// force-quarantined through the census strike machinery.  The honest 18
// receivers then carry the session.
#include <gtest/gtest.h>

#include "fault/adversary.hpp"
#include "topo/tertiary_tree.hpp"

namespace rlacast {
namespace {

topo::TreeConfig stormed_tree(bool watchdog_on) {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.duration = 60.0;
  cfg.warmup = 10.0;
  cfg.seed = 7;
  fault::AdversaryModel storm;
  storm.kind = fault::AdversaryKind::kSignalStorm;
  storm.start = 5.0;
  storm.hole_hold_acks = 1 << 30;  // the hole never releases: a pure pin
  storm.storm_copies = 1;
  for (int i = 0; i < 9; ++i) cfg.adversaries.emplace_back(i * 3, storm);
  cfg.rla.frontier_watchdog.enabled = watchdog_on;
  return cfg;
}

TEST(FrontierWatchdog, NineStormersAreQuarantinedAndSessionProceeds) {
  const auto res = topo::run_tertiary_tree(stormed_tree(true));
  EXPECT_GT(res.adv_fake_holes, 0u);  // the attack actually ran
  // Every pinner must be evicted for the frontier to pass its frozen cum;
  // rejoin waves after served quarantines can only add to the count.
  EXPECT_GE(res.rla_watchdog_quarantines, 9u);
  EXPECT_GT(res.rla[0].throughput_pps, 0.0);
  EXPECT_GE(res.active_receivers_final, 18);
}

TEST(FrontierWatchdog, DisabledWatchdogLeavesTheSessionPinned) {
  const auto res_off = topo::run_tertiary_tree(stormed_tree(false));
  EXPECT_EQ(res_off.rla_watchdog_quarantines, 0u);
  EXPECT_GT(res_off.adv_fake_holes, 0u);
  // The liveness win, not just the mechanism: the same attack with the
  // watchdog on clears several times the pinned session's throughput.
  const auto res_on = topo::run_tertiary_tree(stormed_tree(true));
  EXPECT_GT(res_on.rla[0].throughput_pps, res_off.rla[0].throughput_pps);
}

}  // namespace
}  // namespace rlacast
