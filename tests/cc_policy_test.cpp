// Loss-response policy unit tests, centred on the generalized-RLA cut
// probability (§3.4):
//
//     pthresh_i = f(srtt_i / srtt_max) / num_trouble_rcvr,   f(x) = x^k
//
// exercised directly against cc::RlaPolicy for k = 0 (plain RLA) and
// k = 2 (the paper's recommended generalized variant), over heterogeneous
// RTT vectors and the single-troubled / srtt_max-receiver edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cc/bbr_policy.hpp"
#include "cc/delay_policy.hpp"
#include "cc/loss_policy.hpp"
#include "cc/rla_policy.hpp"
#include "cc/signal_grouper.hpp"
#include "cc/troubled_census.hpp"
#include "sim/random.hpp"

namespace rlacast::cc {
namespace {

// Builds a census with `total` receivers of which the first `troubled`
// have been signalling at the same steady rate (so all of them land inside
// the eta band and num_troubled == troubled).
TroubledCensus make_census(int total, int troubled) {
  TroubledCensus c(20.0, 0.25);
  for (int i = 0; i < total; ++i) c.add_receiver();
  for (int k = 1; k <= 5; ++k)
    for (int i = 0; i < troubled; ++i)
      c.on_signal(i, 1.0 * k + 0.01 * i);
  c.recompute(5.5);
  return c;
}

RlaPolicyParams params_k(double k) {
  RlaPolicyParams p;
  p.rtt_exponent = k;
  return p;
}

TEST(RlaPthresh, ExponentZeroIgnoresRtt) {
  // k = 0: every troubled receiver cuts with probability 1/n, no matter how
  // its srtt compares to srtt_max.
  sim::Rng rng(1);
  auto census = make_census(4, 4);
  RlaPolicy policy(params_k(0.0), census, rng);
  ASSERT_EQ(census.num_troubled(), 4);
  for (double srtt : {0.01, 0.1, 0.4}) {
    EXPECT_DOUBLE_EQ(policy.pthresh(srtt, 0.4), 0.25);
  }
}

TEST(RlaPthresh, ExponentTwoHeterogeneousRtts) {
  // k = 2 over a heterogeneous RTT vector: pthresh_i = (srtt_i/srtt_max)^2/n.
  sim::Rng rng(1);
  auto census = make_census(4, 4);
  RlaPolicy policy(params_k(2.0), census, rng);
  const std::vector<double> srtts = {0.05, 0.1, 0.2, 0.4};
  const double srtt_max = 0.4;
  for (double s : srtts) {
    const double x = s / srtt_max;
    EXPECT_DOUBLE_EQ(policy.pthresh(s, srtt_max), x * x / 4.0) << "srtt " << s;
  }
  // Concretely: the 50 ms receiver is 64x less likely to cut than the
  // 400 ms one — the bias that equalises per-RTT cut rates.
  EXPECT_DOUBLE_EQ(policy.pthresh(0.05, srtt_max) * 64.0,
                   policy.pthresh(0.4, srtt_max));
}

TEST(RlaPthresh, SrttMaxReceiverGetsOneOverN) {
  // The srtt_max receiver has x = 1, so f(x) = 1 for every exponent: its
  // pthresh is exactly 1/n regardless of k.
  sim::Rng rng(1);
  auto census = make_census(3, 3);
  for (double k : {0.0, 1.0, 2.0, 4.0}) {
    RlaPolicy policy(params_k(k), census, rng);
    EXPECT_DOUBLE_EQ(policy.pthresh(0.25, 0.25), 1.0 / 3.0) << "k=" << k;
  }
}

TEST(RlaPthresh, SingleTroubledReceiverAlwaysCuts) {
  // Edge case: exactly one troubled receiver. With k = 0 (or the receiver
  // at srtt_max) pthresh is 1, so every grouped signal triggers a cut.
  sim::Rng rng(1);
  auto census = make_census(5, 1);
  ASSERT_EQ(census.num_troubled(), 1);
  RlaPolicy p0(params_k(0.0), census, rng);
  EXPECT_DOUBLE_EQ(p0.pthresh(0.03, 0.4), 1.0);
  RlaPolicy p2(params_k(2.0), census, rng);
  EXPECT_DOUBLE_EQ(p2.pthresh(0.4, 0.4), 1.0);
  // ...but k = 2 still discounts a short-RTT receiver even when alone.
  EXPECT_DOUBLE_EQ(p2.pthresh(0.1, 0.4), 0.0625);
}

TEST(RlaPthresh, EmptyCensusDenominatorIsOne) {
  // Before anyone is troubled the denominator saturates at 1 rather than 0.
  sim::Rng rng(1);
  auto census = make_census(3, 0);
  ASSERT_EQ(census.num_troubled(), 0);
  RlaPolicy policy(params_k(0.0), census, rng);
  EXPECT_DOUBLE_EQ(policy.pthresh(0.1, 0.2), 1.0);
}

TEST(RlaPthresh, RatioClampedToUnitInterval) {
  // srtt_i transiently above srtt_max (stale max) must clamp to x = 1, and
  // a zero srtt_max falls back to f = 1 instead of dividing by zero.
  sim::Rng rng(1);
  auto census = make_census(2, 2);
  RlaPolicy policy(params_k(2.0), census, rng);
  EXPECT_DOUBLE_EQ(policy.pthresh(0.5, 0.4), 0.5);  // x clamped to 1 -> 1/n
  EXPECT_DOUBLE_EQ(policy.pthresh(0.1, 0.0), 0.5);
}

TEST(RlaPthresh, FairnessWeightAndFixedOverride) {
  sim::Rng rng(1);
  auto census = make_census(2, 2);
  RlaPolicyParams p = params_k(0.0);
  p.fairness_weight = 4.0;  // TCP-friendliness scaling: 1/(n*w)
  RlaPolicy weighted(p, census, rng);
  EXPECT_DOUBLE_EQ(weighted.pthresh(0.1, 0.1), 1.0 / 8.0);

  RlaPolicyParams q = params_k(2.0);
  q.fixed_pthresh = 0.37;  // experiment override bypasses the formula
  RlaPolicy fixed(q, census, rng);
  EXPECT_DOUBLE_EQ(fixed.pthresh(0.01, 0.4), 0.37);
}

TEST(RlaSignal, UntroubledReceiverConsumesNoRandomness) {
  // A signal from an untroubled receiver returns kNone *before* the RNG is
  // consulted — the byte-identity guarantee depends on this draw order.
  sim::Rng rng(7);
  sim::Rng shadow(7);
  auto census = make_census(2, 1);
  RlaPolicy policy(params_k(0.0), census, rng);
  SignalContext ctx;
  ctx.now = 100.0;
  ctx.receiver = 1;  // receiver 1 never signalled -> not troubled
  ctx.srtt = 0.1;
  ctx.srtt_max = 0.1;
  ctx.awnd = 8.0;
  ctx.last_cut = 99.9;
  EXPECT_EQ(policy.on_signal(ctx), CutAction::kNone);
  EXPECT_DOUBLE_EQ(rng.uniform(), shadow.uniform());  // stream untouched
}

TEST(RlaSignal, ForcedCutBypassesRandomDraw) {
  // No cut for longer than forced_cut_factor * awnd * guard_srtt forces a
  // deterministic cut, again without consuming a uniform() draw.
  sim::Rng rng(7);
  sim::Rng shadow(7);
  auto census = make_census(1, 1);
  RlaPolicy policy(params_k(0.0), census, rng);
  SignalContext ctx;
  ctx.now = 1000.0;
  ctx.receiver = 0;
  ctx.srtt = 0.1;
  ctx.srtt_max = 0.1;
  ctx.awnd = 8.0;
  ctx.last_cut = 0.0;  // ages past 2 * 8 * 0.1 = 1.6 s
  EXPECT_EQ(policy.on_signal(ctx), CutAction::kForcedHalve);
  EXPECT_DOUBLE_EQ(rng.uniform(), shadow.uniform());
}

TEST(RlaSignal, ForcedCutGuardUsesSrttMaxOnlyWhenExponentPositive) {
  auto census = make_census(1, 1);
  SignalContext ctx;
  ctx.now = 10.0;
  ctx.receiver = 0;
  ctx.srtt = 0.01;     // tiny own RTT...
  ctx.srtt_max = 1.0;  // ...but the slowest receiver is 100x slower
  ctx.awnd = 4.0;
  ctx.last_cut = 9.0;  // 1 s ago: > 2*4*0.01 but < 2*4*1.0

  // k = 0 guards with the receiver's own srtt -> forced.
  sim::Rng r0(3);
  RlaPolicy p0(params_k(0.0), census, r0);
  EXPECT_EQ(p0.on_signal(ctx), CutAction::kForcedHalve);

  // k = 2 guards with srtt_max -> not forced; falls through to the
  // randomized draw (pthresh == 1 here since n == 1... make it certain).
  sim::Rng r2(3);
  RlaPolicy p2(params_k(2.0), census, r2);
  SignalContext c2 = ctx;
  c2.srtt = 1.0;  // srtt_max receiver: pthresh = 1 -> kHalve, never forced
  EXPECT_EQ(p2.on_signal(c2), CutAction::kHalve);
}

TEST(RlaTimeout, RepeatedStallCollapsesOtherwiseHalves) {
  sim::Rng rng(1);
  auto census = make_census(1, 1);
  RlaPolicy policy(params_k(0.0), census, rng);
  EXPECT_EQ(policy.on_timeout(false), CutAction::kHalve);
  EXPECT_EQ(policy.on_timeout(true), CutAction::kCollapse);
  EXPECT_DOUBLE_EQ(policy.halve_floor(), 1.0);
}

TEST(TcpPolicies, SackAndRenoHalveOnSignalCollapseOnTimeout) {
  SignalContext loss;
  SignalContext ecn;
  ecn.from_ecn = true;
  for (auto* p : std::initializer_list<LossResponsePolicy*>{
           new TcpSackPolicy(), new TcpRenoPolicy()}) {
    EXPECT_EQ(p->on_signal(loss), CutAction::kHalve);
    EXPECT_EQ(p->on_signal(ecn), CutAction::kHalve);
    EXPECT_EQ(p->on_timeout(true), CutAction::kCollapse);
    EXPECT_DOUBLE_EQ(p->halve_floor(), 2.0);
    delete p;
  }
}

TEST(TcpPolicies, TahoeCollapsesOnLossButHalvesOnEcn) {
  TcpTahoePolicy tahoe;
  SignalContext loss;
  EXPECT_EQ(tahoe.on_signal(loss), CutAction::kCollapse);
  SignalContext ecn;
  ecn.from_ecn = true;
  EXPECT_EQ(tahoe.on_signal(ecn), CutAction::kHalve);
  EXPECT_EQ(tahoe.on_timeout(true), CutAction::kCollapse);
}

TEST(SignalGrouper, PeriodOpensOncePerSpan) {
  // Time-period mode (RLA): at most one signal per grouping_rtts * srtt,
  // with the strict `>` boundary the byte-identity contract requires.
  SignalGrouper g;
  EXPECT_TRUE(g.try_open_period(0.0, 0.4));   // first signal always opens
  EXPECT_FALSE(g.try_open_period(0.3, 0.4));  // inside the period
  EXPECT_FALSE(g.try_open_period(0.4, 0.4));  // exactly at the edge: closed
  EXPECT_TRUE(g.try_open_period(0.41, 0.4));  // strictly past: new period
}

// --- delay-based competitor (cc::DelayGradient + cc::DelayBasedPolicy) ----

TEST(DelayGradient, TracksBaseRttMinimum) {
  DelayGradient g;
  EXPECT_FALSE(g.valid());
  g.add_sample(0.10);
  g.add_sample(0.12);
  g.add_sample(0.09);
  g.add_sample(0.15);
  EXPECT_TRUE(g.valid());
  EXPECT_DOUBLE_EQ(g.base_rtt(), 0.09);
  EXPECT_DOUBLE_EQ(g.last_rtt(), 0.15);
  g.reset();
  EXPECT_FALSE(g.valid());
  EXPECT_EQ(g.decide(10.0), DelayGradient::Verdict::kHold);
}

TEST(DelayGradient, BacklogAndVerdictThresholds) {
  // backlog = cwnd * (rtt - base) / rtt, judged against alpha=2 / beta=4.
  // Values keep the backlog safely off the thresholds — the thresholds are
  // strict inequalities and these are doubles.
  DelayGradient g;
  g.add_sample(0.100);  // base
  g.add_sample(0.200);  // rtt doubled: backlog = cwnd / 2
  EXPECT_NEAR(g.backlog(6.0), 3.0, 1e-9);
  EXPECT_EQ(g.decide(6.0), DelayGradient::Verdict::kHold);  // 2 < 3 < 4
  EXPECT_EQ(g.decide(2.0), DelayGradient::Verdict::kIncrease);  // 1 < alpha
  EXPECT_EQ(g.decide(10.0), DelayGradient::Verdict::kDecrease);  // 5 > beta
  // Empty queue (rtt back at base): backlog ~0, always grow.
  g.add_sample(0.100);
  EXPECT_NEAR(g.backlog(50.0), 0.0, 1e-9);
  EXPECT_EQ(g.decide(50.0), DelayGradient::Verdict::kIncrease);
}

TEST(DelayGradient, SlowStartExitsOnGammaBacklog) {
  DelayGradient g;
  EXPECT_FALSE(g.slow_start_done(100.0));  // no samples: keep growing
  g.add_sample(0.100);
  g.add_sample(0.120);
  // backlog = cwnd/6: cwnd 4 -> 0.67 < gamma, cwnd 10 -> 1.67 > gamma.
  EXPECT_FALSE(g.slow_start_done(4.0));
  EXPECT_TRUE(g.slow_start_done(10.0));
}

TEST(DelayBasedPolicy, KeepsTcpLossSafetyNet) {
  // Vegas replaces the probing, not the loss reaction: halve per episode
  // (loss or ECN alike), collapse on any timeout, recovery floor 2.
  DelayBasedPolicy p;
  SignalContext loss;
  SignalContext ecn;
  ecn.from_ecn = true;
  EXPECT_EQ(p.on_signal(loss), CutAction::kHalve);
  EXPECT_EQ(p.on_signal(ecn), CutAction::kHalve);
  EXPECT_EQ(p.on_timeout(false), CutAction::kCollapse);
  EXPECT_EQ(p.on_timeout(true), CutAction::kCollapse);
  EXPECT_DOUBLE_EQ(p.halve_floor(), 2.0);
}

// --- BBR-style competitor (cc::BbrModel + cc::BbrRatePolicy) --------------

/// One steady round: constant delivery rate `bw` pps at RTT `rtt`.
void feed_round(BbrModel& m, sim::SimTime now, double bw, sim::SimTime rtt) {
  m.on_sample(now, bw * 0.01, 0.01, rtt);
  m.on_round(now);
}

TEST(BbrModel, StartupDrainProbeBwProgression) {
  BbrModel m;
  EXPECT_EQ(m.mode(), BbrModel::Mode::kStartup);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 2.885);

  // Constant 100 pps: the very first round "grows" from 0 and resets the
  // counter; the next startup_full_bw_rounds (3) flat rounds exit Startup.
  // Rounds are spaced 1 s apart (>> min_rtt 0.1) so the ProbeBW phase
  // clock below fires on every round without float-boundary games.
  sim::SimTime now = 0.0;
  for (int i = 0; i < 4 && m.mode() == BbrModel::Mode::kStartup; ++i)
    feed_round(m, now += 1.0, 100.0, 0.1);
  EXPECT_EQ(m.mode(), BbrModel::Mode::kDrain);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 0.3465);
  EXPECT_DOUBLE_EQ(m.btlbw_pps(), 100.0);
  EXPECT_DOUBLE_EQ(m.min_rtt(), 0.1);

  // One drain round, then steady ProbeBW starting at the 1.25 probe phase.
  feed_round(m, now += 1.0, 100.0, 0.1);
  EXPECT_EQ(m.mode(), BbrModel::Mode::kProbeBw);
  EXPECT_EQ(m.cycle_phase(), 0);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 1.25);

  // Phases rotate once per min_rtt: 1.25 -> 0.75 -> 1.0 ...
  feed_round(m, now += 1.0, 100.0, 0.1);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 0.75);
  feed_round(m, now += 1.0, 100.0, 0.1);
  EXPECT_DOUBLE_EQ(m.pacing_gain(), 1.0);
}

TEST(BbrModel, CwndCapIsGainTimesBdp) {
  BbrModel m;
  EXPECT_DOUBLE_EQ(m.cwnd_cap(), 4.0);  // no model yet: ACK-clock floor
  feed_round(m, 0.1, 100.0, 0.1);
  // BDP = 100 pps * 0.1 s = 10 pkts; cap = cwnd_gain (2) * BDP.
  EXPECT_DOUBLE_EQ(m.cwnd_cap(), 20.0);
}

TEST(BbrModel, WindowedMaxForgetsOldBandwidth) {
  BbrModel m;
  sim::SimTime now = 0.0;
  feed_round(m, now += 0.1, 200.0, 0.1);
  EXPECT_DOUBLE_EQ(m.btlbw_pps(), 200.0);
  // 200-pps sample ages out of the bw_window_rtts=10 round window.
  for (int i = 0; i < 10; ++i) feed_round(m, now += 0.1, 100.0, 0.1);
  EXPECT_DOUBLE_EQ(m.btlbw_pps(), 100.0);
}

TEST(BbrModel, ResetBwForgetsBandwidthKeepsMinRtt) {
  BbrModel m;
  sim::SimTime now = 0.0;
  for (int i = 0; i < 5; ++i) feed_round(m, now += 0.1, 100.0, 0.1);
  ASSERT_GT(m.btlbw_pps(), 0.0);
  m.reset_bw();
  EXPECT_DOUBLE_EQ(m.btlbw_pps(), 0.0);
  EXPECT_EQ(m.mode(), BbrModel::Mode::kStartup);
  // Propagation estimate survives — loss does not change the path length.
  EXPECT_DOUBLE_EQ(m.min_rtt(), 0.1);
  EXPECT_DOUBLE_EQ(m.cwnd_cap(), 4.0);
}

TEST(BbrRatePolicy, IgnoresLossCollapsesOnRepeatedStall) {
  // The designed misbehaviour the workload bench measures: loss episodes
  // do not cut (the model sets the rate); only a repeated timeout stall
  // collapses to restart the ACK clock.
  BbrRatePolicy p;
  SignalContext loss;
  EXPECT_EQ(p.on_signal(loss), CutAction::kNone);
  EXPECT_EQ(p.on_timeout(false), CutAction::kNone);
  EXPECT_EQ(p.on_timeout(true), CutAction::kCollapse);
}

TEST(DeterminismGuard, CompetitorCoresAreRngFree) {
  // Neither competitor core may consume randomness: interleave heavy use
  // of both with draws from an Rng and check the draw sequence matches a
  // virgin Rng with the same seed. (The classes cannot even reach an Rng
  // today — this pins the contract against future parameter additions, the
  // same way the RLA draw-order tests pin pthresh's single draw.)
  sim::Rng used(99);
  sim::Rng virgin(99);
  DelayGradient g;
  BbrModel m;
  DelayBasedPolicy dp;
  BbrRatePolicy bp;
  SignalContext ctx;
  for (int i = 0; i < 50; ++i) {
    g.add_sample(0.1 + 0.001 * i);
    (void)g.decide(10.0);
    (void)g.slow_start_done(10.0);
    m.on_sample(0.1 * i, 1.0, 0.01, 0.1);
    m.on_round(0.1 * i);
    (void)dp.on_signal(ctx);
    (void)bp.on_signal(ctx);
    (void)dp.on_timeout(i % 2 == 0);
    (void)bp.on_timeout(i % 2 == 0);
    EXPECT_DOUBLE_EQ(used.uniform(), virgin.uniform()) << "draw " << i;
  }
}

TEST(SignalGrouper, EpisodeTracksRecoveryPoint) {
  // Sequence-episode mode (TCP fast recovery): one cut per window of data.
  SignalGrouper g;
  EXPECT_FALSE(g.in_episode());
  g.open_episode(42);
  EXPECT_TRUE(g.in_episode());
  EXPECT_EQ(g.episode_end(), 42);
  g.refresh(40);  // una below recovery point: still recovering
  EXPECT_TRUE(g.in_episode());
  g.refresh(42);  // una reaches recovery point: episode over
  EXPECT_FALSE(g.in_episode());
  g.open_episode(50);
  g.close_episode();  // timeout aborts the episode immediately
  EXPECT_FALSE(g.in_episode());
}

}  // namespace
}  // namespace rlacast::cc
