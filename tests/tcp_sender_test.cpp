// TCP sender behavioural tests, driven by a scripted receiver that can
// swallow chosen sequence numbers — giving deterministic loss patterns
// without relying on queue dynamics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast::tcp {
namespace {

/// A receiver that pretends configured seqs were never delivered.
class LossyReceiver final : public net::Agent {
 public:
  LossyReceiver(net::Network& net, net::NodeId node, net::PortId port)
      : net_(net), node_(node), port_(port) {
    net_.attach(node_, port_, this);
  }

  void drop(net::SeqNum s) { blackhole_.insert(s); }

  void on_receive(const net::Packet& p) override {
    if (p.type != net::PacketType::kData) return;
    seen.push_back(p);
    if (blackhole_.count(p.seq) && !p.is_rexmit) return;  // swallowed
    buf_.add(p.seq);
    net::Packet ack;
    ack.type = net::PacketType::kAck;
    ack.src = node_;
    ack.dst = p.src;
    ack.src_port = port_;
    ack.dst_port = p.src_port;
    ack.size_bytes = 40;
    ack.ack = buf_.cum_ack();
    ack.seq = p.seq;
    ack.ts_echo = p.ts_echo;
    ack.n_sack = static_cast<std::uint8_t>(
        buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));
    net_.inject(ack);
  }

  std::vector<net::Packet> seen;

 private:
  net::Network& net_;
  net::NodeId node_;
  net::PortId port_;
  ReassemblyBuffer buf_;
  std::set<net::SeqNum> blackhole_;
};

struct Fixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  net::NodeId s, r;
  LossyReceiver rcvr;
  TcpSender snd;

  explicit Fixture(TcpParams params = {})
      : s(net.add_node()),
        r(add_and_wire()),
        rcvr(net, r, 1),
        snd(net, s, 1, r, 1, /*flow=*/1, capped(params)) {}

  // The fixture's link is effectively infinite-capacity; cap the window so
  // uncontrolled slow start cannot explode the event count.
  static TcpParams capped(TcpParams p) {
    p.max_cwnd = std::min(p.max_cwnd, 256.0);
    return p;
  }

  net::NodeId add_and_wire() {
    const net::NodeId n = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;  // effectively instantaneous
    cfg.delay = 0.01;         // rtt = 20 ms
    cfg.buffer_pkts = 10000;  // this fixture never drops in the network
    net.connect(s, n, cfg);
    net.build_routes();
    return n;
  }
};

TEST(TcpSender, InitialWindowSendsOnePacket) {
  Fixture f;
  f.snd.start_at(0.0);
  f.sim.run_until(0.015);  // packet has arrived; its ACK (0.02) has not
  EXPECT_EQ(f.rcvr.seen.size(), 1u);
  EXPECT_EQ(f.rcvr.seen[0].seq, 0);
}

TEST(TcpSender, SlowStartDoublesPerRtt) {
  Fixture f;
  f.snd.start_at(0.0);
  // RTT = 20 ms. After k RTTs of slow start, cwnd ~= 2^k.
  f.sim.run_until(0.11);  // ~5 RTTs
  EXPECT_GE(f.snd.cwnd(), 16.0);
  EXPECT_LE(f.snd.cwnd(), 80.0);
  EXPECT_GT(f.rcvr.seen.size(), 30u);
}

TEST(TcpSender, CongestionAvoidanceGrowsLinearly) {
  TcpParams p;
  p.initial_ssthresh = 4.0;  // leave slow start quickly
  Fixture f(p);
  f.snd.start_at(0.0);
  f.sim.run_until(0.1);
  const double w1 = f.snd.cwnd();
  f.sim.run_until(0.3);  // +10 RTTs
  const double w2 = f.snd.cwnd();
  EXPECT_NEAR(w2 - w1, 10.0, 3.0);  // ~1 packet per RTT
}

TEST(TcpSender, SackLossHalvesWindowOnce) {
  TcpParams p;
  p.initial_ssthresh = 100.0;
  Fixture f(p);
  f.rcvr.drop(20);
  f.rcvr.drop(21);  // two drops in one window: still ONE congestion signal
  f.snd.start_at(0.0);
  f.sim.run_until(2.0);
  EXPECT_EQ(f.snd.measurement().window_cuts(), 1u);
  EXPECT_EQ(f.snd.measurement().timeouts(), 0u);
  // The holes must have been repaired by retransmission.
  EXPECT_GT(f.snd.una(), 22);
}

TEST(TcpSender, SeparatedLossesAreSeparateSignals) {
  TcpParams p;
  p.initial_ssthresh = 8.0;
  Fixture f(p);
  f.rcvr.drop(30);
  f.rcvr.drop(200);
  f.snd.start_at(0.0);
  f.sim.run_until(5.0);
  EXPECT_EQ(f.snd.measurement().window_cuts(), 2u);
}

TEST(TcpSender, RetransmissionCarriesFlag) {
  Fixture f;
  f.rcvr.drop(5);
  f.snd.start_at(0.0);
  f.sim.run_until(2.0);
  bool saw_rexmit_of_5 = false;
  for (const auto& pkt : f.rcvr.seen)
    if (pkt.seq == 5 && pkt.is_rexmit) saw_rexmit_of_5 = true;
  EXPECT_TRUE(saw_rexmit_of_5);
}

TEST(TcpSender, TimeoutCollapsesWindowToOne) {
  // Swallow a packet and every packet after it, so SACK feedback stops and
  // only the RTO can recover. (Drop enough future seqs to outlast recovery.)
  TcpParams pp;
  pp.initial_ssthresh = 64.0;
  Fixture f(pp);
  for (net::SeqNum s = 10; s < 500; ++s) f.rcvr.drop(s);
  f.snd.start_at(0.0);
  f.sim.run_until(1.0);
  EXPECT_GE(f.snd.measurement().timeouts(), 1u);
  // After a timeout the window restarts from 1 (it may have grown a little
  // since, but far below the pre-timeout value).
  EXPECT_LT(f.snd.cwnd(), 10.0);
}

TEST(TcpSender, RttEstimateMatchesPathRtt) {
  Fixture f;
  f.snd.start_at(0.0);
  f.sim.run_until(1.0);
  EXPECT_NEAR(f.snd.rtt().srtt(), 0.02, 0.005);
}

TEST(TcpSender, WindowNeverExceedsMaxCwnd) {
  TcpParams p;
  p.max_cwnd = 10.0;
  Fixture f(p);
  f.snd.start_at(0.0);
  f.sim.run_until(2.0);
  EXPECT_LE(f.snd.cwnd(), 10.0);
  EXPECT_LE(f.snd.highest_sent() - f.snd.una(), 10);
}

TEST(TcpSender, ThroughputCountsAckedPackets) {
  Fixture f;
  f.snd.start_at(0.0);
  f.snd.measurement().begin_measurement(0.0);
  f.sim.run_until(1.0);
  // max_cwnd unbounded on an instantaneous link: throughput limited only by
  // slow start; just check accounting consistency.
  EXPECT_EQ(f.snd.measurement().total_acked(),
            static_cast<std::uint64_t>(f.snd.una()));
}

}  // namespace
}  // namespace rlacast::tcp
