// src/fault/ unit tests: impairment semantics on a single link (Bernoulli
// loss, Gilbert–Elliott burstiness, duplication, jitter FIFO preservation,
// outages, flapping), counter separation from congestion drops, dedicated
// RNG streams (empty plan = pristine run, faulted reruns bit-identical).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast {
namespace {

/// Records delivery times and uids at the far end of a hop.
class Sink final : public net::Agent {
 public:
  void on_receive(const net::Packet& p) override {
    uids.push_back(p.uid);
    at.push_back(now_fn ? now_fn() : 0.0);
  }
  std::vector<std::uint64_t> uids;
  std::vector<double> at;
  std::function<double()> now_fn;
};

struct Hop {
  sim::Simulator sim;
  net::Network net;
  net::NodeId a, b;
  Sink sink;

  explicit Hop(std::uint64_t seed = 1) : sim(seed), net(sim) {
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;  // 1000-byte packet = 1 ms serialization
    cfg.delay = 0.01;
    cfg.buffer_pkts = 50000;  // no congestion drops in these tests
    net.connect(a, b, cfg);
    net.build_routes();
    net.attach(b, 1, &sink);
    sink.now_fn = [this] { return sim.now(); };
  }

  net::Link* link() { return net.link_between(a, b); }

  void send(int n) {
    for (int i = 0; i < n; ++i) {
      net::Packet p;
      p.type = net::PacketType::kData;
      p.src = a;
      p.dst = b;
      p.dst_port = 1;
      p.size_bytes = 1000;
      net.inject(p);
    }
  }
};

TEST(Fault, EmptyPlanArmsNothing) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  Hop h;
  plan.arm(h.net);  // no entries: no hooks installed
  EXPECT_EQ(h.link()->fault_hook(), nullptr);
  h.send(50);
  h.sim.run_all();
  EXPECT_EQ(h.sink.uids.size(), 50u);
  EXPECT_EQ(h.link()->fault_drops(), 0u);
  const auto totals = plan.totals();
  EXPECT_EQ(totals.offered, 0u);
}

TEST(Fault, ImpairmentAnyReflectsEveryKnob) {
  fault::LinkImpairment imp;
  EXPECT_FALSE(imp.any());
  imp.loss_p = 0.1;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.ge.p_good_to_bad = 0.01;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.duplicate_p = 0.1;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.max_jitter = 0.001;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.outages.push_back({1.0, 2.0});
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.flap_mean_up = 1.0;
  EXPECT_FALSE(imp.any());  // needs both dwell means
  imp.flap_mean_down = 1.0;
  EXPECT_TRUE(imp.any());
}

TEST(Fault, ArmThrowsOnUnknownLink) {
  Hop h;
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.5;
  plan.impair(h.a, 99, imp);
  EXPECT_THROW(plan.arm(h.net), std::invalid_argument);
}

TEST(Fault, BernoulliLossRateAndCounters) {
  Hop h(7);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.2;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  const int n = 5000;
  h.send(n);
  h.sim.run_all();

  const auto totals = plan.totals();
  EXPECT_EQ(totals.offered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.sink.uids.size() + totals.wire_losses,
            static_cast<std::uint64_t>(n));
  // ~20% loss within generous tolerance.
  EXPECT_NEAR(static_cast<double>(totals.wire_losses) / n, 0.2, 0.03);
  // Fault drops are counted on the link and mirrored into the engine
  // counters, and are NOT congestion drops.
  EXPECT_EQ(h.link()->fault_drops(), totals.wire_losses);
  EXPECT_EQ(h.sim.scheduler().counters().fault_drops, totals.wire_losses);
  EXPECT_EQ(h.link()->drops(), 0u);
}

TEST(Fault, SameSeedRerunsAreBitIdentical) {
  auto run = [] {
    Hop h(1234);
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    imp.loss_p = 0.1;
    imp.duplicate_p = 0.05;
    imp.max_jitter = 0.002;
    plan.impair(h.a, h.b, imp);
    plan.arm(h.net);
    h.send(1000);
    h.sim.run_all();
    return std::make_pair(h.sink.uids, h.sink.at);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);  // exact double equality: same draws
}

TEST(Fault, DuplicationDeliversExtraCopies) {
  Hop h(5);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.duplicate_p = 0.5;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  const int n = 2000;
  h.send(n);
  h.sim.run_all();
  const auto totals = plan.totals();
  EXPECT_EQ(h.sink.uids.size(), static_cast<std::uint64_t>(n) + totals.duplicates);
  EXPECT_NEAR(static_cast<double>(totals.duplicates) / n, 0.5, 0.05);
  EXPECT_EQ(h.sim.scheduler().counters().fault_duplicates, totals.duplicates);
}

TEST(Fault, JitterPreservesFifoOrder) {
  Hop h(9);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.max_jitter = 0.05;  // 50x the serialization time: heavy reordering risk
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  h.send(500);
  h.sim.run_all();
  ASSERT_EQ(h.sink.uids.size(), 500u);
  // Arrival times monotone (the clamp) and uid order preserved (FIFO pipe).
  for (std::size_t i = 1; i < h.sink.at.size(); ++i) {
    EXPECT_LE(h.sink.at[i - 1], h.sink.at[i]);
    EXPECT_LT(h.sink.uids[i - 1], h.sink.uids[i]);
  }
}

TEST(Fault, ScheduledOutageDropsAtInterface) {
  Hop h(3);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.outages.push_back({0.5, 1.5});
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);

  // One packet before, one inside, one after the outage window.
  auto send_at = [&](double t) {
    h.sim.at(t, [&] { h.send(1); });
  };
  send_at(0.1);
  send_at(1.0);
  send_at(2.0);
  h.sim.run_all();

  EXPECT_EQ(h.sink.uids.size(), 2u);
  const auto totals = plan.totals();
  EXPECT_EQ(totals.outage_drops, 1u);
  EXPECT_EQ(h.link()->fault_drops(), 1u);
  EXPECT_EQ(h.link()->drops(), 0u);  // never reached the queue
}

TEST(Fault, GilbertElliottLossIsBurstier) {
  // Equal average loss (~2%): GE losses cluster, Bernoulli losses spread.
  // Compare the count of adjacent lost pairs.
  auto lost_pairs = [](const std::vector<std::uint64_t>& delivered, int n) {
    std::vector<bool> lost(static_cast<std::size_t>(n) + 1, true);
    for (auto uid : delivered) lost[static_cast<std::size_t>(uid)] = false;
    int pairs = 0;
    for (int i = 2; i <= n; ++i)
      if (lost[static_cast<std::size_t>(i)] &&
          lost[static_cast<std::size_t>(i - 1)])
        ++pairs;
    return pairs;
  };
  const int n = 20000;

  Hop bern(21);
  {
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    imp.loss_p = 0.02;
    plan.impair(bern.a, bern.b, imp);
    plan.arm(bern.net);
    bern.send(n);
    bern.sim.run_all();
    EXPECT_NEAR(plan.totals().wire_losses / double(n), 0.02, 0.005);
  }
  Hop ge(21);
  {
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    // Bad 1/10 of the time (0.02/(0.02+0.18)), loss 0.2 while Bad -> 2% avg.
    imp.ge.p_good_to_bad = 0.02;
    imp.ge.p_bad_to_good = 0.18;
    imp.ge.loss_bad = 0.2;
    plan.impair(ge.a, ge.b, imp);
    plan.arm(ge.net);
    ge.send(n);
    ge.sim.run_all();
    EXPECT_NEAR(plan.totals().wire_losses / double(n), 0.02, 0.008);
  }
  EXPECT_GT(lost_pairs(ge.sink.uids, n), lost_pairs(bern.sink.uids, n));
}

TEST(Fault, FlappingAlternatesUpAndDown) {
  Hop h(11);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.flap_mean_up = 0.5;
  imp.flap_mean_down = 0.5;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  // Steady trickle across many flap cycles: roughly half get through.
  for (int i = 0; i < 1000; ++i)
    h.sim.at(0.01 * i, [&] { h.send(1); });
  // run_until, not run_all: the flap process re-arms itself forever.
  h.sim.run_until(20.0);
  const auto totals = plan.totals();
  EXPECT_GT(totals.outage_drops, 200u);
  EXPECT_GT(h.sink.uids.size(), 200u);
  EXPECT_EQ(h.sink.uids.size() + totals.outage_drops, 1000u);
}

TEST(Fault, FaultStreamDoesNotPerturbOtherStreams) {
  // The named fault stream is independent: the draws another component sees
  // are identical whether or not a fault stream was ever created.
  sim::Simulator sim_a(42);
  auto red_a = sim_a.rng_stream("red-1");
  std::vector<double> draws_a;
  for (int i = 0; i < 16; ++i) draws_a.push_back(red_a.uniform());

  sim::Simulator sim_b(42);
  auto fault_b = sim_b.rng_stream("fault-link-0-1");
  (void)fault_b.uniform();  // consume from the fault stream
  auto red_b = sim_b.rng_stream("red-1");
  std::vector<double> draws_b;
  for (int i = 0; i < 16; ++i) draws_b.push_back(red_b.uniform());

  EXPECT_EQ(draws_a, draws_b);
}

}  // namespace
}  // namespace rlacast
