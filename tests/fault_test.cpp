// src/fault/ unit tests: impairment semantics on a single link (Bernoulli
// loss, Gilbert–Elliott burstiness, duplication, jitter FIFO preservation,
// outages, flapping), counter separation from congestion drops, dedicated
// RNG streams (empty plan = pristine run, faulted reruns bit-identical).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast {
namespace {

/// Records delivery times and uids at the far end of a hop.
class Sink final : public net::Agent {
 public:
  void on_receive(const net::Packet& p) override {
    uids.push_back(p.uid);
    at.push_back(now_fn ? now_fn() : 0.0);
  }
  std::vector<std::uint64_t> uids;
  std::vector<double> at;
  std::function<double()> now_fn;
};

struct Hop {
  sim::Simulator sim;
  net::Network net;
  net::NodeId a, b;
  Sink sink;

  explicit Hop(std::uint64_t seed = 1) : sim(seed), net(sim) {
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;  // 1000-byte packet = 1 ms serialization
    cfg.delay = 0.01;
    cfg.buffer_pkts = 50000;  // no congestion drops in these tests
    net.connect(a, b, cfg);
    net.build_routes();
    net.attach(b, 1, &sink);
    sink.now_fn = [this] { return sim.now(); };
  }

  net::Link* link() { return net.link_between(a, b); }

  void send(int n) {
    for (int i = 0; i < n; ++i) {
      net::Packet p;
      p.type = net::PacketType::kData;
      p.src = a;
      p.dst = b;
      p.dst_port = 1;
      p.size_bytes = 1000;
      net.inject(p);
    }
  }
};

TEST(Fault, EmptyPlanArmsNothing) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  Hop h;
  plan.arm(h.net);  // no entries: no hooks installed
  EXPECT_EQ(h.link()->fault_hook(), nullptr);
  h.send(50);
  h.sim.run_all();
  EXPECT_EQ(h.sink.uids.size(), 50u);
  EXPECT_EQ(h.link()->fault_drops(), 0u);
  const auto totals = plan.totals();
  EXPECT_EQ(totals.offered, 0u);
}

TEST(Fault, ImpairmentAnyReflectsEveryKnob) {
  fault::LinkImpairment imp;
  EXPECT_FALSE(imp.any());
  imp.loss_p = 0.1;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.ge.p_good_to_bad = 0.01;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.duplicate_p = 0.1;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.max_jitter = 0.001;
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.outages.push_back({1.0, 2.0});
  EXPECT_TRUE(imp.any());
  imp = {};
  imp.flap_mean_up = 1.0;
  EXPECT_FALSE(imp.any());  // needs both dwell means
  imp.flap_mean_down = 1.0;
  EXPECT_TRUE(imp.any());
}

TEST(Fault, ArmThrowsOnUnknownLink) {
  Hop h;
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.5;
  plan.impair(h.a, 99, imp);
  EXPECT_THROW(plan.arm(h.net), std::invalid_argument);
}

TEST(Fault, BernoulliLossRateAndCounters) {
  Hop h(7);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.2;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  const int n = 5000;
  h.send(n);
  h.sim.run_all();

  const auto totals = plan.totals();
  EXPECT_EQ(totals.offered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.sink.uids.size() + totals.wire_losses,
            static_cast<std::uint64_t>(n));
  // ~20% loss within generous tolerance.
  EXPECT_NEAR(static_cast<double>(totals.wire_losses) / n, 0.2, 0.03);
  // Fault drops are counted on the link and mirrored into the engine
  // counters, and are NOT congestion drops.
  EXPECT_EQ(h.link()->fault_drops(), totals.wire_losses);
  EXPECT_EQ(h.sim.scheduler().counters().fault_drops, totals.wire_losses);
  EXPECT_EQ(h.link()->drops(), 0u);
}

TEST(Fault, SameSeedRerunsAreBitIdentical) {
  auto run = [] {
    Hop h(1234);
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    imp.loss_p = 0.1;
    imp.duplicate_p = 0.05;
    imp.max_jitter = 0.002;
    plan.impair(h.a, h.b, imp);
    plan.arm(h.net);
    h.send(1000);
    h.sim.run_all();
    return std::make_pair(h.sink.uids, h.sink.at);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);  // exact double equality: same draws
}

TEST(Fault, DuplicationDeliversExtraCopies) {
  Hop h(5);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.duplicate_p = 0.5;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  const int n = 2000;
  h.send(n);
  h.sim.run_all();
  const auto totals = plan.totals();
  EXPECT_EQ(h.sink.uids.size(), static_cast<std::uint64_t>(n) + totals.duplicates);
  EXPECT_NEAR(static_cast<double>(totals.duplicates) / n, 0.5, 0.05);
  EXPECT_EQ(h.sim.scheduler().counters().fault_duplicates, totals.duplicates);
}

TEST(Fault, JitterPreservesFifoOrder) {
  Hop h(9);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.max_jitter = 0.05;  // 50x the serialization time: heavy reordering risk
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  h.send(500);
  h.sim.run_all();
  ASSERT_EQ(h.sink.uids.size(), 500u);
  // Arrival times monotone (the clamp) and uid order preserved (FIFO pipe).
  for (std::size_t i = 1; i < h.sink.at.size(); ++i) {
    EXPECT_LE(h.sink.at[i - 1], h.sink.at[i]);
    EXPECT_LT(h.sink.uids[i - 1], h.sink.uids[i]);
  }
}

TEST(Fault, ScheduledOutageDropsAtInterface) {
  Hop h(3);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.outages.push_back({0.5, 1.5});
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);

  // One packet before, one inside, one after the outage window.
  auto send_at = [&](double t) {
    h.sim.at(t, [&] { h.send(1); });
  };
  send_at(0.1);
  send_at(1.0);
  send_at(2.0);
  h.sim.run_all();

  EXPECT_EQ(h.sink.uids.size(), 2u);
  const auto totals = plan.totals();
  EXPECT_EQ(totals.outage_drops, 1u);
  EXPECT_EQ(h.link()->fault_drops(), 1u);
  EXPECT_EQ(h.link()->drops(), 0u);  // never reached the queue
}

TEST(Fault, GilbertElliottLossIsBurstier) {
  // Equal average loss (~2%): GE losses cluster, Bernoulli losses spread.
  // Compare the count of adjacent lost pairs.
  auto lost_pairs = [](const std::vector<std::uint64_t>& delivered, int n) {
    std::vector<bool> lost(static_cast<std::size_t>(n) + 1, true);
    for (auto uid : delivered) lost[static_cast<std::size_t>(uid)] = false;
    int pairs = 0;
    for (int i = 2; i <= n; ++i)
      if (lost[static_cast<std::size_t>(i)] &&
          lost[static_cast<std::size_t>(i - 1)])
        ++pairs;
    return pairs;
  };
  const int n = 20000;

  Hop bern(21);
  {
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    imp.loss_p = 0.02;
    plan.impair(bern.a, bern.b, imp);
    plan.arm(bern.net);
    bern.send(n);
    bern.sim.run_all();
    EXPECT_NEAR(plan.totals().wire_losses / double(n), 0.02, 0.005);
  }
  Hop ge(21);
  {
    fault::FaultPlan plan;
    fault::LinkImpairment imp;
    // Bad 1/10 of the time (0.02/(0.02+0.18)), loss 0.2 while Bad -> 2% avg.
    imp.ge.p_good_to_bad = 0.02;
    imp.ge.p_bad_to_good = 0.18;
    imp.ge.loss_bad = 0.2;
    plan.impair(ge.a, ge.b, imp);
    plan.arm(ge.net);
    ge.send(n);
    ge.sim.run_all();
    EXPECT_NEAR(plan.totals().wire_losses / double(n), 0.02, 0.008);
  }
  EXPECT_GT(lost_pairs(ge.sink.uids, n), lost_pairs(bern.sink.uids, n));
}

TEST(Fault, FlappingAlternatesUpAndDown) {
  Hop h(11);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.flap_mean_up = 0.5;
  imp.flap_mean_down = 0.5;
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  // Steady trickle across many flap cycles: roughly half get through.
  for (int i = 0; i < 1000; ++i)
    h.sim.at(0.01 * i, [&] { h.send(1); });
  // run_until, not run_all: the flap process re-arms itself forever.
  h.sim.run_until(20.0);
  const auto totals = plan.totals();
  EXPECT_GT(totals.outage_drops, 200u);
  EXPECT_GT(h.sink.uids.size(), 200u);
  EXPECT_EQ(h.sink.uids.size() + totals.outage_drops, 1000u);
}

// Bidirectional hop for reverse-path (ACK-direction) impairment tests:
// data flows a -> b, a simulated feedback stream flows b -> a.
struct DuplexHop {
  sim::Simulator sim;
  net::Network net;
  net::NodeId a, b;
  Sink fwd_sink;  // at b: receives the a -> b direction
  Sink rev_sink;  // at a: receives the b -> a direction

  explicit DuplexHop(std::uint64_t seed = 1) : sim(seed), net(sim) {
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;
    cfg.delay = 0.01;
    cfg.buffer_pkts = 50000;
    net.connect(a, b, cfg);
    net.build_routes();
    net.attach(b, 1, &fwd_sink);
    net.attach(a, 2, &rev_sink);
    fwd_sink.now_fn = [this] { return sim.now(); };
    rev_sink.now_fn = [this] { return sim.now(); };
  }

  /// Schedules interleaved traffic in both directions at fixed times so the
  /// injection order (and hence packet uids) is run-invariant.
  void schedule(int n) {
    for (int i = 0; i < n; ++i) {
      sim.at(0.001 * i, [this, i] {
        net::Packet d;
        d.type = net::PacketType::kData;
        d.src = a;
        d.dst = b;
        d.dst_port = 1;
        d.seq = i;
        net.inject(d);
        net::Packet ack;
        ack.type = net::PacketType::kAck;
        ack.src = b;
        ack.dst = a;
        ack.dst_port = 2;
        ack.seq = i;
        ack.size_bytes = 40;
        net.inject(ack);
      });
    }
  }
};

TEST(Fault, ForwardOnlyPlanLeavesReverseStreamByteIdentical) {
  // ISSUE 8 satellite: a forward-path-only plan must leave the reverse
  // (ACK) direction byte-identical to a pristine run — same uids, same
  // arrival instants — because each direction draws from its own
  // "fault-link-<from>-<to>" stream and an unimpaired link has no hook.
  const int n = 400;
  DuplexHop clean(11);
  clean.schedule(n);
  clean.sim.run_all();
  ASSERT_EQ(clean.rev_sink.uids.size(), static_cast<std::size_t>(n));

  DuplexHop faulted(11);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.3;
  imp.max_jitter = 0.004;
  plan.impair(faulted.a, faulted.b, imp);  // forward direction ONLY
  plan.arm(faulted.net);
  faulted.schedule(n);
  faulted.sim.run_all();

  // Forward direction visibly impaired...
  EXPECT_LT(faulted.fwd_sink.uids.size(), static_cast<std::size_t>(n));
  EXPECT_GT(plan.totals().wire_losses, 0u);
  // ...reverse direction untouched, bit for bit.
  EXPECT_EQ(faulted.rev_sink.uids, clean.rev_sink.uids);
  EXPECT_EQ(faulted.rev_sink.at, clean.rev_sink.at);
  EXPECT_EQ(faulted.net.link_between(faulted.b, faulted.a)->fault_hook(),
            nullptr);
}

TEST(Fault, ReverseDupJitterPreservesAckFifo) {
  // Reverse-path duplication + jitter (the --chaos ACK impairment mix) may
  // delay and clone feedback but must never reorder it: cumulative ACK
  // semantics tolerate duplicates, not time travel.
  DuplexHop h(23);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.duplicate_p = 0.3;
  imp.max_jitter = 0.02;  // far above the 40-byte serialization time
  plan.impair(h.b, h.a, imp);  // reverse direction ONLY
  plan.arm(h.net);
  const int n = 500;
  h.schedule(n);
  h.sim.run_all();

  const auto totals = plan.totals();
  EXPECT_GT(totals.duplicates, 0u);
  ASSERT_EQ(h.rev_sink.uids.size(),
            static_cast<std::size_t>(n) + totals.duplicates);
  // FIFO both in time and in sequence: a duplicated ACK arrives adjacent to
  // its original, and no later ACK overtakes an earlier one.
  for (std::size_t i = 1; i < h.rev_sink.at.size(); ++i) {
    EXPECT_LE(h.rev_sink.at[i - 1], h.rev_sink.at[i]);
    EXPECT_LE(h.rev_sink.uids[i - 1], h.rev_sink.uids[i]);
  }
  // The forward data direction saw no impairment at all.
  EXPECT_EQ(h.fwd_sink.uids.size(), static_cast<std::size_t>(n));
}

TEST(Fault, FaultStreamDoesNotPerturbOtherStreams) {
  // The named fault stream is independent: the draws another component sees
  // are identical whether or not a fault stream was ever created.
  sim::Simulator sim_a(42);
  auto red_a = sim_a.rng_stream("red-1");
  std::vector<double> draws_a;
  for (int i = 0; i < 16; ++i) draws_a.push_back(red_a.uniform());

  sim::Simulator sim_b(42);
  auto fault_b = sim_b.rng_stream("fault-link-0-1");
  (void)fault_b.uniform();  // consume from the fault stream
  auto red_b = sim_b.rng_stream("red-1");
  std::vector<double> draws_b;
  for (int i = 0; i < 16; ++i) draws_b.push_back(red_b.uniform());

  EXPECT_EQ(draws_a, draws_b);
}

TEST(Fault, OutageOnsetDeliversInFlightPackets) {
  // Onset semantics (documented on fault::Outage): interface state is
  // consulted at transmit() only, so packets already queued, serializing,
  // or propagating when the outage begins sail through — the hop's pipe is
  // not flushed.  10 back-to-back packets at t=0 need 10 ms of serialization
  // plus 10 ms propagation; an outage opening at t=2 ms must not claw back
  // the 8 still waiting in the queue.
  Hop h(11);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.outages.push_back({0.002, 1.0});
  plan.impair(h.a, h.b, imp);
  plan.arm(h.net);
  h.send(10);                          // t=0: all accepted, interface up
  h.sim.at(0.5, [&] { h.send(1); });   // mid-outage: discarded at entrance
  h.sim.at(2.0, [&] { h.send(1); });   // after heal: delivered
  h.sim.run_all();

  EXPECT_EQ(h.sink.uids.size(), 11u);
  EXPECT_EQ(plan.totals().outage_drops, 1u);
  EXPECT_EQ(h.link()->fault_drops(), 1u);
}

TEST(Fault, NodeFailureDownsEveryAttachedInterface) {
  // A crashed router takes down ALL its interfaces atomically: a 3-node
  // chain n0 - n1 - n2 with n1 failed blackholes both directions of both
  // duplexes for the whole window.
  sim::Simulator sim(5);
  net::Network net(sim);
  const auto n0 = net.add_node();
  const auto n1 = net.add_node();
  const auto n2 = net.add_node();
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = 0.001;
  net.connect(n0, n1, cfg);
  net.connect(n1, n2, cfg);
  net.build_routes();
  Sink fwd, rev;
  net.attach(n2, 1, &fwd);
  net.attach(n0, 1, &rev);

  fault::FaultPlan plan;
  plan.fail_node(n1, 0.5, 1.5);
  EXPECT_FALSE(plan.empty());
  plan.arm(net);

  auto send = [&](net::NodeId from, net::NodeId to, double t) {
    sim.at(t, [&net, from, to] {
      net::Packet p;
      p.type = net::PacketType::kData;
      p.src = from;
      p.dst = to;
      p.dst_port = 1;
      p.size_bytes = 1000;
      net.inject(p);
    });
  };
  send(n0, n2, 0.1);  // before: delivered
  send(n2, n0, 0.1);
  send(n0, n2, 1.0);  // inside: dropped at the first hop's entrance
  send(n2, n0, 1.0);
  send(n0, n2, 2.0);  // after: delivered
  send(n2, n0, 2.0);
  sim.run_all();

  EXPECT_EQ(fwd.uids.size(), 2u);
  EXPECT_EQ(rev.uids.size(), 2u);
  EXPECT_EQ(plan.totals().outage_drops, 2u);
}

TEST(Fault, PartitionDownsBothDirectionsOfOneLink) {
  Hop h(6);
  Sink rev;
  h.net.attach(h.a, 2, &rev);
  fault::FaultPlan plan;
  plan.partition(h.a, h.b, 0.5, 1.5);
  plan.arm(h.net);

  auto send_rev = [&](double t) {
    h.sim.at(t, [&] {
      net::Packet p;
      p.type = net::PacketType::kAck;
      p.src = h.b;
      p.dst = h.a;
      p.dst_port = 2;
      p.size_bytes = 40;
      h.net.inject(p);
    });
  };
  h.sim.at(1.0, [&] { h.send(1); });  // forward, mid-window: dropped
  send_rev(1.0);                      // reverse, mid-window: dropped
  h.sim.at(2.0, [&] { h.send(1); });  // both heal
  send_rev(2.0);
  h.sim.run_all();

  EXPECT_EQ(h.sink.uids.size(), 1u);
  EXPECT_EQ(rev.uids.size(), 1u);
  EXPECT_EQ(plan.totals().outage_drops, 2u);
}

TEST(Fault, StructuralArmThrowsOnUnknownPlacement) {
  {
    Hop h;
    fault::FaultPlan plan;
    plan.fail_node(99, 1.0, 2.0);  // no link touches node 99
    EXPECT_THROW(plan.arm(h.net), std::invalid_argument);
  }
  {
    Hop h;
    fault::FaultPlan plan;
    plan.partition(h.a, 99, 1.0, 2.0);  // neither direction exists
    EXPECT_THROW(plan.arm(h.net), std::invalid_argument);
  }
}

TEST(Fault, StructuralMergesAdditivelyWithImpairments) {
  // fail_node / partition resolve ADDITIVELY at arm(): an existing wire
  // impairment on the same link keeps working through the merge (impair()
  // alone is last-write-wins; structural windows must not clobber it).
  Hop h(13);
  fault::FaultPlan plan;
  fault::LinkImpairment imp;
  imp.loss_p = 0.3;
  plan.impair(h.a, h.b, imp);
  plan.partition(h.a, h.b, 0.25, 0.3);
  plan.arm(h.net);
  h.send(2000);  // burst at t=0 drains in ~2 s of serialization
  h.sim.run_all();
  const auto totals = plan.totals();
  EXPECT_GT(totals.wire_losses, 0u);   // Bernoulli loss still armed
  EXPECT_EQ(totals.outage_drops, 0u);  // burst was accepted before onset
  EXPECT_NEAR(static_cast<double>(totals.wire_losses) / 2000.0, 0.3, 0.05);
}

TEST(Fault, ChaosStructuralDrawsAppendWithoutPerturbing) {
  // With cfg.structural off the draw consumes exactly the historical
  // stream prefix; turning it on appends draws at the END, so every
  // non-structural field of the scenario is unchanged for the same seed.
  fault::ChaosConfig base;
  fault::ChaosConfig structural = base;
  structural.structural = true;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto a = fault::draw_chaos(base, seed, 27);
    const auto b = fault::draw_chaos(structural, seed, 27);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.n_adversaries, b.n_adversaries);
    EXPECT_EQ(a.adversary_idx, b.adversary_idx);
    EXPECT_EQ(a.ack_fault.loss_p, b.ack_fault.loss_p);
    EXPECT_EQ(a.flip_period, b.flip_period);
    EXPECT_EQ(a.structural, fault::StructuralKind::kNone);
    if (b.structural != fault::StructuralKind::kNone) {
      EXPECT_GE(b.partition_start, structural.min_partition_start);
      EXPECT_LE(b.partition_start, structural.max_partition_start);
      EXPECT_GE(b.partition_len, structural.min_partition_len);
      EXPECT_LE(b.partition_len, structural.max_partition_len);
      EXPECT_GE(b.structural_index, 0);
      EXPECT_LT(b.structural_index, 9);
    }
  }
}

}  // namespace
}  // namespace rlacast
