// cc::Window unit tests: the one place AIMD window arithmetic lives.
//
// The numerical contract matters as much as the behaviour: grow(n) must be
// n sequential per-ACK increments followed by a single clamp, because the
// figure benches are guarded byte-for-byte (tests/golden/) and the FP
// operation order feeds straight into their output.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/window.hpp"

namespace rlacast::cc {
namespace {

WindowParams params(double cwnd, double ssthresh, double max_cwnd = 1e6,
                    double weight = 1.0) {
  WindowParams p;
  p.initial_cwnd = cwnd;
  p.initial_ssthresh = ssthresh;
  p.max_cwnd = max_cwnd;
  p.fairness_weight = weight;
  return p;
}

TEST(Window, SlowStartAddsOnePerAck) {
  Window w(params(1.0, 64.0));
  EXPECT_TRUE(w.in_slow_start());
  w.grow(1);
  EXPECT_DOUBLE_EQ(w.cwnd(), 2.0);
  w.grow(2);
  EXPECT_DOUBLE_EQ(w.cwnd(), 4.0);
}

TEST(Window, CongestionAvoidanceAddsReciprocalOfFloor) {
  Window w(params(10.0, 4.0));
  EXPECT_FALSE(w.in_slow_start());
  w.grow(1);
  EXPECT_DOUBLE_EQ(w.cwnd(), 10.0 + 1.0 / 10.0);
  // The next increment divides by the *new* floor once cwnd crosses 11.
  Window v(params(10.9, 4.0));
  v.grow(1);
  EXPECT_DOUBLE_EQ(v.cwnd(), 10.9 + 1.0 / 10.0);
}

TEST(Window, FairnessWeightScalesCaIncrement) {
  Window w(params(10.0, 4.0, 1e6, 2.5));
  w.grow(1);
  EXPECT_DOUBLE_EQ(w.cwnd(), 10.0 + 2.5 / 10.0);
  // Weight does not touch slow start.
  Window s(params(2.0, 64.0, 1e6, 2.5));
  s.grow(1);
  EXPECT_DOUBLE_EQ(s.cwnd(), 3.0);
}

TEST(Window, GrowCrossesSsthreshMidBatch) {
  // A batch of ACKs that straddles ssthresh: per-ACK increments must switch
  // regime mid-loop exactly as n individual grow(1) calls would.
  Window batch(params(3.0, 4.0));
  batch.grow(3);
  Window step(params(3.0, 4.0));
  for (int i = 0; i < 3; ++i) step.grow(1);
  EXPECT_EQ(batch.cwnd(), step.cwnd());  // bit-identical, not just close
  EXPECT_DOUBLE_EQ(batch.cwnd(), 4.0 + 1.0 / 4.0 + 1.0 / 4.0);
}

TEST(Window, GrowBatchBitIdenticalToSequentialAcks) {
  Window batch(params(1.0, 8.0));
  Window step(params(1.0, 8.0));
  batch.grow(50);
  for (int i = 0; i < 50; ++i) step.grow(1);
  EXPECT_EQ(batch.cwnd(), step.cwnd());
  EXPECT_EQ(batch.ssthresh(), step.ssthresh());
}

TEST(Window, ClampsToMaxCwnd) {
  Window w(params(9.5, 64.0, 10.0));
  w.grow(3);
  EXPECT_DOUBLE_EQ(w.cwnd(), 10.0);
}

TEST(Window, HalveWithTcpFloorLandsOnSsthresh) {
  Window w(params(10.0, 64.0));
  w.halve(2.0);
  EXPECT_DOUBLE_EQ(w.ssthresh(), 5.0);
  EXPECT_DOUBLE_EQ(w.cwnd(), 5.0);
  // Small window: both ssthresh and cwnd pinned at the floor of 2.
  Window s(params(3.0, 64.0));
  s.halve(2.0);
  EXPECT_DOUBLE_EQ(s.ssthresh(), 2.0);
  EXPECT_DOUBLE_EQ(s.cwnd(), 2.0);
}

TEST(Window, HalveWithRlaFloorCanGoBelowTwo) {
  Window w(params(3.0, 64.0));
  w.halve(1.0);
  EXPECT_DOUBLE_EQ(w.ssthresh(), 2.0);  // ssthresh floor stays at 2
  EXPECT_DOUBLE_EQ(w.cwnd(), 1.5);      // cwnd may drop to the RLA floor
  w.halve(1.0);
  EXPECT_DOUBLE_EQ(w.cwnd(), 1.0);  // clamped at the absolute minimum
}

TEST(Window, CollapseToOneKeepsHalfAsSsthresh) {
  Window w(params(16.0, 64.0));
  w.collapse_to_one();
  EXPECT_DOUBLE_EQ(w.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(w.ssthresh(), 8.0);
  EXPECT_TRUE(w.in_slow_start());
  // Tiny window: ssthresh still floors at 2.
  Window s(params(1.0, 64.0));
  s.collapse_to_one();
  EXPECT_DOUBLE_EQ(s.ssthresh(), 2.0);
}

TEST(Window, SetCwndClampsBothEnds) {
  Window w(params(5.0, 64.0, 20.0));
  w.set_cwnd(0.2);
  EXPECT_DOUBLE_EQ(w.cwnd(), 1.0);
  w.set_cwnd(100.0);
  EXPECT_DOUBLE_EQ(w.cwnd(), 20.0);
}

}  // namespace
}  // namespace rlacast::cc
