// Tests of the Reno and Tahoe congestion-control variants against the SACK
// default: loss responses, fast-recovery behaviour, and the classic ranking
// under multiple drops per window (Fall & Floyd: SACK >= Reno >= Tahoe).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast::tcp {
namespace {

/// Dumbbell with a real bottleneck so variants face genuine queue loss.
struct Bottleneck {
  sim::Simulator sim{5};
  net::Network net{sim};
  net::NodeId s, g, r;
  std::unique_ptr<TcpReceiver> rcv;
  std::unique_ptr<TcpSender> snd;

  explicit Bottleneck(TcpVariant v, double pps = 150.0) {
    s = net.add_node();
    g = net.add_node();
    r = net.add_node();
    net::LinkConfig bttl;
    bttl.bandwidth_bps = pps * 8000.0;
    bttl.delay = 0.02;
    bttl.buffer_pkts = 15;
    net.connect(s, g, bttl);
    net::LinkConfig fast;
    fast.bandwidth_bps = 1e9;
    fast.delay = 0.02;
    net.connect(g, r, fast);
    net.build_routes();
    TcpParams p;
    p.variant = v;
    rcv = std::make_unique<TcpReceiver>(net, r, 1);
    snd = std::make_unique<TcpSender>(net, s, 1, r, 1, 1, p);
    snd->start_at(0.0);
  }

  double run(double warmup = 20.0, double until = 120.0) {
    sim.at(warmup, [&] { snd->measurement().begin_measurement(sim.now()); });
    sim.run_until(until);
    return snd->measurement().throughput_pps(until);
  }
};

TEST(TcpVariants, RenoFillsBottleneck) {
  Bottleneck b(TcpVariant::kReno);
  EXPECT_GT(b.run(), 120.0);
  EXPECT_GT(b.snd->measurement().window_cuts(), 5u);
}

TEST(TcpVariants, TahoeFillsBottleneckLessEfficiently) {
  Bottleneck tahoe(TcpVariant::kTahoe);
  const double t_thr = tahoe.run();
  EXPECT_GT(t_thr, 80.0);  // works, but pays slow-start after every loss
}

TEST(TcpVariants, SackAtLeastAsGoodAsRenoAtLeastAsTahoe) {
  Bottleneck sack(TcpVariant::kSack);
  Bottleneck reno(TcpVariant::kReno);
  Bottleneck tahoe(TcpVariant::kTahoe);
  const double s = sack.run(), r = reno.run(), t = tahoe.run();
  // Classic ordering with slack for stochastic variation.
  EXPECT_GT(s, 0.9 * r);
  EXPECT_GT(r, 0.9 * t);
}

TEST(TcpVariants, TahoeCollapsesWindowOnFastRetransmit) {
  // Deterministic single loss via a tiny intermediate buffer burst: compare
  // the window right after the first cut.
  Bottleneck tahoe(TcpVariant::kTahoe, 100.0);
  tahoe.sim.run_until(30.0);
  ASSERT_GT(tahoe.snd->measurement().window_cuts(), 0u);
  // Tahoe re-enters slow start: ssthresh remembers half the old window and
  // cwnd restarts near 1; over time avg cwnd stays below ssthresh ceiling.
  EXPECT_GT(tahoe.snd->ssthresh(), 1.0);
}

TEST(TcpVariants, RenoRecoversWithoutTimeoutOnSingleLoss) {
  Bottleneck reno(TcpVariant::kReno, 120.0);
  reno.sim.run_until(60.0);
  ASSERT_GT(reno.snd->measurement().window_cuts(), 0u);
  // Single-loss episodes are handled by fast retransmit; timeouts should be
  // a small minority of the cuts.
  EXPECT_LT(reno.snd->measurement().timeouts(),
            reno.snd->measurement().window_cuts() / 2 + 2);
}

TEST(TcpVariants, VariantsShareFairlyWithEachOther) {
  // One SACK and one Reno through a common bottleneck: neither starves.
  sim::Simulator sim(9);
  net::Network net(sim);
  const auto s = net.add_node(), g = net.add_node(), r = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = 300 * 8000.0;
  bttl.delay = 0.02;
  net.connect(s, g, bttl);
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.02;
  net.connect(g, r, fast);
  net.build_routes();
  TcpParams sack_p;
  TcpParams reno_p;
  reno_p.variant = TcpVariant::kReno;
  TcpReceiver rcv1(net, r, 1), rcv2(net, r, 2);
  TcpSender snd1(net, s, 1, r, 1, 1, sack_p);
  TcpSender snd2(net, s, 2, r, 2, 2, reno_p);
  snd1.start_at(0.1);
  snd2.start_at(0.5);
  sim.at(30.0, [&] {
    snd1.measurement().begin_measurement(sim.now());
    snd2.measurement().begin_measurement(sim.now());
  });
  sim.run_until(230.0);
  const double a = snd1.measurement().throughput_pps(230.0);
  const double b = snd2.measurement().throughput_pps(230.0);
  EXPECT_GT(a, 50.0);
  EXPECT_GT(b, 50.0);
  EXPECT_LT(std::max(a, b) / std::min(a, b), 3.0);
}

}  // namespace
}  // namespace rlacast::tcp
