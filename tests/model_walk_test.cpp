// Monte-Carlo validation of the PA-window approximation (§4.1/§4.2): the
// time average of the window walk is proportional to the PA prediction,
// with a proportionality constant that is stable across loss rates and
// receiver counts — exactly the property the paper's proofs rely on.
#include <gtest/gtest.h>

#include "model/window_walk.hpp"

namespace rlacast::model {
namespace {

constexpr std::int64_t kSteps = 400000;

TEST(WindowWalk, TcpTimeAverageProportionalToPa) {
  // The ratio mean/PA should be a constant (~0.8-0.9) across loss rates.
  double ratios[3];
  int i = 0;
  for (double p : {0.005, 0.01, 0.03}) {
    const auto r = walk_tcp(p, kSteps, sim::Rng(1));
    ratios[i++] = r.ratio;
    EXPECT_GT(r.ratio, 0.7) << p;
    EXPECT_LT(r.ratio, 1.1) << p;
  }
  EXPECT_NEAR(ratios[0], ratios[2], 0.08);  // stable constant
}

TEST(WindowWalk, TcpObservedCutProbMatchesP) {
  const auto r = walk_tcp(0.02, kSteps, sim::Rng(2));
  EXPECT_NEAR(r.observed_cut_prob, 0.02, 0.002);
}

TEST(WindowWalk, RlaIndependentMatchesItsPa) {
  for (int n : {2, 9, 27}) {
    const auto r = walk_rla_independent(0.02, n, kSteps, sim::Rng(3));
    EXPECT_GT(r.ratio, 0.7) << n;
    EXPECT_LT(r.ratio, 1.1) << n;
  }
}

TEST(WindowWalk, RlaCommonMatchesItsPa) {
  for (int n : {2, 9, 27}) {
    const auto r = walk_rla_common(0.02, n, kSteps, sim::Rng(4));
    EXPECT_GT(r.ratio, 0.7) << n;
    EXPECT_LT(r.ratio, 1.15) << n;
  }
}

TEST(WindowWalk, CorrelationLemmaHoldsInSimulation) {
  // §4.2 Lemma at walk level: common losses give a larger mean window than
  // independent losses of the same per-receiver probability.
  const auto common = walk_rla_common(0.02, 9, kSteps, sim::Rng(5));
  const auto indep = walk_rla_independent(0.02, 9, kSteps, sim::Rng(5));
  EXPECT_GT(common.mean_window, indep.mean_window);
}

TEST(WindowWalk, RlaWalkWindowExceedsTcpAtSameSignalRate) {
  // Listening to 1/n of the signals must produce a larger window than TCP
  // obeying all of them.
  const auto tcp = walk_tcp(0.02, kSteps, sim::Rng(6));
  const auto rla = walk_rla_common(0.02, 9, kSteps, sim::Rng(6));
  EXPECT_GT(rla.mean_window, tcp.mean_window);
}

TEST(WindowWalk, DeterministicForSeed) {
  const auto a = walk_tcp(0.01, 100000, sim::Rng(9));
  const auto b = walk_tcp(0.01, 100000, sim::Rng(9));
  EXPECT_DOUBLE_EQ(a.mean_window, b.mean_window);
}

}  // namespace
}  // namespace rlacast::model
