// RLA sender behavioural tests with scripted receivers on a loss-free star
// network: window dynamics, random-listening decisions, signal grouping,
// retransmission policy, and the window bounds of §3.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/reassembly.hpp"

namespace rlacast::rla {
namespace {

/// RLA receiver that swallows selected seqs on first (multicast, non-rexmit)
/// delivery — injecting deterministic loss without queue dynamics.
class LossyRlaReceiver final : public net::Agent {
 public:
  LossyRlaReceiver(net::Network& net, net::NodeId node, net::PortId port,
                   net::GroupId group, net::NodeId sender_node,
                   net::PortId sender_port, int id)
      : net_(net),
        node_(node),
        port_(port),
        sender_node_(sender_node),
        sender_port_(sender_port),
        id_(id) {
    net_.attach(node_, port_, this);
    net_.subscribe(group, node_, this);
  }

  void drop(net::SeqNum s) { blackhole_.insert(s); }
  void drop_range(net::SeqNum lo, net::SeqNum hi) {
    for (net::SeqNum s = lo; s < hi; ++s) blackhole_.insert(s);
  }

  const tcp::ReassemblyBuffer& buffer() const { return buf_; }
  int rexmits_received = 0;

  void on_receive(const net::Packet& p) override {
    if (p.type != net::PacketType::kData) return;
    if (p.is_rexmit) ++rexmits_received;
    if (blackhole_.count(p.seq) && !p.is_rexmit) return;
    buf_.add(p.seq);
    net::Packet ack;
    ack.type = net::PacketType::kAck;
    ack.src = node_;
    ack.dst = sender_node_;
    ack.src_port = port_;
    ack.dst_port = sender_port_;
    ack.size_bytes = 40;
    ack.ack = buf_.cum_ack();
    ack.seq = p.seq;
    ack.ts_echo = p.ts_echo;
    ack.receiver_id = id_;
    ack.n_sack = static_cast<std::uint8_t>(
        buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));
    net_.inject(ack);
  }

 private:
  net::Network& net_;
  net::NodeId node_;
  net::PortId port_;
  net::NodeId sender_node_;
  net::PortId sender_port_;
  int id_;
  tcp::ReassemblyBuffer buf_;
  std::set<net::SeqNum> blackhole_;
};

struct Star {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId s, hub;
  std::vector<net::NodeId> leaves;
  std::unique_ptr<RlaSender> snd;
  std::vector<std::unique_ptr<LossyRlaReceiver>> rcvrs;

  explicit Star(int n, RlaParams params = {}, std::uint64_t seed = 1)
      : sim(seed) {
    // The star's links are effectively infinite-capacity; cap the window so
    // an uncontrolled slow start cannot explode the event count.
    params.max_cwnd = std::min(params.max_cwnd, 256.0);
    s = net.add_node();
    hub = net.add_node();
    net::LinkConfig fast;
    fast.bandwidth_bps = 1e9;
    fast.delay = 0.01;  // rtt = 40 ms (two hops each way)
    fast.buffer_pkts = 100000;
    net.connect(s, hub, fast);
    const net::GroupId group = 1;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net.connect(hub, leaves.back(), fast);
    }
    net.build_routes();
    snd = std::make_unique<RlaSender>(net, s, 100, group, 500, params);
    for (int i = 0; i < n; ++i) {
      net.join_group(group, s, leaves[size_t(i)]);
      const int idx = snd->add_receiver(leaves[size_t(i)], 2);
      rcvrs.push_back(std::make_unique<LossyRlaReceiver>(
          net, leaves[size_t(i)], 2, group, s, 100, idx));
    }
  }
};

TEST(RlaSender, DeliversToAllReceiversAndGrows) {
  Star star(5);
  star.snd->start_at(0.0);
  star.sim.run_until(2.0);
  EXPECT_GT(star.snd->max_reach_all(), 100);
  // Receivers are at least as far along as the sender's all-ACKed point
  // (ACKs still in flight explain any positive gap).
  for (auto& r : star.rcvrs)
    EXPECT_GE(r->buffer().cum_ack(), star.snd->max_reach_all());
  EXPECT_GT(star.snd->cwnd(), star.snd->params().initial_cwnd);
  EXPECT_EQ(star.snd->measurement().congestion_signals(), 0u);
}

TEST(RlaSender, SingleLossFromOneReceiverIsOneSignal) {
  Star star(3);
  star.rcvrs[0]->drop(50);
  star.snd->start_at(0.0);
  star.sim.run_until(3.0);
  EXPECT_EQ(star.snd->signals_from(0), 1u);
  EXPECT_EQ(star.snd->signals_from(1), 0u);
  EXPECT_EQ(star.snd->measurement().congestion_signals(), 1u);
  // Loss repaired; session kept moving.
  EXPECT_GT(star.snd->max_reach_all(), 51);
}

TEST(RlaSender, FirstLossCutsBecauseSingleTroubledReceiver) {
  // With one signalling receiver, num_trouble = 1 and pthresh = 1: the cut
  // is certain (TCP-equivalent behaviour).
  Star star(3);
  star.rcvrs[1]->drop(40);
  star.snd->start_at(0.0);
  star.sim.run_until(3.0);
  EXPECT_EQ(star.snd->measurement().window_cuts(), 1u);
}

TEST(RlaSender, CloseLossesGroupIntoOneSignal) {
  // Losses within 2*srtt of the congestion-period start are one signal.
  Star star(2);
  star.rcvrs[0]->drop(40);
  star.rcvrs[0]->drop(41);
  star.rcvrs[0]->drop(43);
  star.snd->start_at(0.0);
  star.sim.run_until(3.0);
  EXPECT_EQ(star.snd->signals_from(0), 1u);
}

TEST(RlaSender, SeparatedLossesAreSeparateSignals) {
  Star star(2);
  star.rcvrs[0]->drop(50);
  star.rcvrs[0]->drop(800);  // several RTTs later at these rates
  star.snd->start_at(0.0);
  star.sim.run_until(6.0);
  EXPECT_EQ(star.snd->signals_from(0), 2u);
}

TEST(RlaSender, PthreshIsOneOverTroubledCount) {
  Star star(4);
  // Make receivers 0..2 signal repeatedly at similar rates.
  for (int r = 0; r < 3; ++r)
    for (net::SeqNum s = 100 + r; s < 3000; s += 200)
      star.rcvrs[size_t(r)]->drop(s);
  star.snd->start_at(0.0);
  star.sim.run_until(20.0);
  EXPECT_EQ(star.snd->num_trouble_rcvr(), 3);
  EXPECT_NEAR(star.snd->pthresh_for(0), 1.0 / 3.0, 1e-9);
}

TEST(RlaSender, FixedPthreshOverrides) {
  RlaParams p;
  p.fixed_pthresh = 1.0;
  Star star(3, p);
  star.rcvrs[0]->drop(40);
  star.rcvrs[2]->drop(60);
  star.snd->start_at(0.0);
  star.sim.run_until(4.0);
  // Naive listener: every signal cuts.
  EXPECT_EQ(star.snd->measurement().window_cuts(),
            star.snd->measurement().congestion_signals());
  EXPECT_GE(star.snd->measurement().window_cuts(), 2u);
}

TEST(RlaSender, ForcedCutFiresWhenRandomizedCutsNeverHappen) {
  RlaParams p;
  p.fixed_pthresh = 0.0;  // randomized-cut never fires -> only forced-cuts
  Star star(2, p);
  for (net::SeqNum s = 50; s < 5000; s += 100) star.rcvrs[0]->drop(s);
  star.snd->start_at(0.0);
  star.sim.run_until(30.0);
  EXPECT_GT(star.snd->measurement().forced_cuts(), 0u);
  EXPECT_EQ(star.snd->measurement().window_cuts(),
            star.snd->measurement().forced_cuts());
}

TEST(RlaSender, MulticastRexmitWhenManyMiss) {
  RlaParams p;
  p.rexmit_thresh = 0;  // any loss -> multicast repair
  Star star(4, p);
  for (auto& r : star.rcvrs) r->drop(30);  // everyone misses 30
  star.snd->start_at(0.0);
  star.sim.run_until(3.0);
  EXPECT_GE(star.snd->multicast_rexmits(), 1u);
  EXPECT_EQ(star.snd->unicast_rexmits(), 0u);
  EXPECT_GT(star.snd->max_reach_all(), 31);
}

TEST(RlaSender, UnicastRexmitWhenFewMissAndThresholdHigh) {
  RlaParams p;
  p.rexmit_thresh = 2;  // need >2 requesters for multicast
  Star star(4, p);
  star.rcvrs[1]->drop(30);  // single receiver misses
  star.snd->start_at(0.0);
  star.sim.run_until(3.0);
  EXPECT_EQ(star.snd->multicast_rexmits(), 0u);
  EXPECT_GE(star.snd->unicast_rexmits(), 1u);
  // Only the requester got the repair.
  EXPECT_GE(star.rcvrs[1]->rexmits_received, 1);
  EXPECT_EQ(star.rcvrs[0]->rexmits_received, 0);
}

TEST(RlaSender, ReceiverBufferBoundsLeadingEdge) {
  RlaParams p;
  p.receiver_buffer = 50;
  Star star(2, p);
  // Receiver 0 permanently misses packet 20 (drop rexmits too by dropping a
  // wide range: rexmits bypass the blackhole, so instead keep re-dropping).
  star.rcvrs[0]->drop(20);
  star.snd->start_at(0.0);
  star.sim.run_until(0.5);  // before the repair lands, window may race ahead
  EXPECT_LE(star.snd->next_seq(), star.snd->min_last_ack() + 50);
}

TEST(RlaSender, SlowReceiverDropOption) {
  RlaParams p;
  p.enable_slow_receiver_drop = true;
  p.slow_drop_fraction = 0.8;
  p.slow_drop_min_signals = 10;
  Star star(3, p);
  // Receiver 2 is pathologically congested; others clean.
  for (net::SeqNum s = 20; s < 100000; s += 60) star.rcvrs[2]->drop(s);
  star.snd->start_at(0.0);
  star.sim.run_until(60.0);
  EXPECT_TRUE(star.snd->receiver_dropped(2));
  // Once dropped, the session no longer waits for receiver 2.
  EXPECT_GT(star.snd->max_reach_all(),
            static_cast<net::SeqNum>(
                star.rcvrs[2]->buffer().cum_ack()));
}

TEST(RlaSender, RecoversWhenVeryFirstPacketIsLost) {
  // Regression: packet 0 lost before any ACK ever arrived used to deadlock
  // the session (the retransmission timer raced next_seq_). The timeout
  // path must repair it and the session must proceed.
  Star star(3);
  star.rcvrs[1]->drop(0);
  star.snd->start_at(0.0);
  star.sim.run_until(10.0);
  EXPECT_GT(star.snd->max_reach_all(), 100);
  EXPECT_GE(star.snd->measurement().timeouts() +
                star.snd->multicast_rexmits(),
            1u);
}

/// Receiver that swallows a seq on first delivery AND on its first repair:
/// exercises the lost-retransmission path.
TEST(RlaSender, RecoversWhenRetransmissionIsAlsoLost) {
  // LossyRlaReceiver passes rexmits through, so emulate a lost repair by
  // dropping the packet at two receivers where one repair (multicast)
  // covers both — then drop the repair for one of them via a second
  // blackhole entry keyed on the rexmit flag. Simplest equivalent: a
  // custom acceptance rule.
  class DoubleLossReceiver final : public net::Agent {
   public:
    DoubleLossReceiver(net::Network& net, net::NodeId node, net::PortId port,
                       net::GroupId group, net::NodeId sn, net::PortId sp,
                       int id)
        : net_(net), node_(node), port_(port), sn_(sn), sp_(sp), id_(id) {
      net_.attach(node_, port_, this);
      net_.subscribe(group, node_, this);
    }
    void on_receive(const net::Packet& p) override {
      if (p.type != net::PacketType::kData) return;
      if (p.seq == 50 && drops_left_ > 0) {
        --drops_left_;  // swallow original AND first repair
        return;
      }
      buf_.add(p.seq);
      net::Packet ack;
      ack.type = net::PacketType::kAck;
      ack.src = node_;
      ack.dst = sn_;
      ack.src_port = port_;
      ack.dst_port = sp_;
      ack.size_bytes = 40;
      ack.ack = buf_.cum_ack();
      ack.seq = p.seq;
      ack.ts_echo = p.ts_echo;
      ack.receiver_id = id_;
      ack.n_sack = static_cast<std::uint8_t>(
          buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));
      net_.inject(ack);
    }
    tcp::ReassemblyBuffer buf_;

   private:
    net::Network& net_;
    net::NodeId node_;
    net::PortId port_;
    net::NodeId sn_;
    net::PortId sp_;
    int id_;
    int drops_left_ = 2;
  };

  Star star(2);  // receiver state 2 added manually below
  const int idx = star.snd->add_receiver(star.leaves[0], 7);
  DoubleLossReceiver dbl(star.net, star.leaves[0], 7, 1, star.s, 100, idx);
  star.snd->start_at(0.0);
  star.sim.run_until(15.0);
  // Despite losing seq 50 twice at one receiver, the session recovered.
  EXPECT_GT(star.snd->max_reach_all(), 60);
  EXPECT_TRUE(dbl.buf_.has(50));
}

TEST(RlaSender, AckCounterTracksReceipt) {
  Star star(2);
  star.snd->start_at(0.0);
  star.sim.run_until(1.0);
  // Two receivers ACK every delivered packet.
  EXPECT_GE(star.snd->acks_received(),
            static_cast<std::uint64_t>(star.snd->max_reach_all()) * 2);
}

TEST(RlaSender, SendQuantumReleasesInBursts) {
  RlaParams p;
  p.send_quantum = 8;
  p.max_burst = 16;
  Star star(2, p);
  star.snd->start_at(0.0);
  star.sim.run_until(5.0);
  // Still makes progress (quantum capped by cwnd/2 at small windows).
  EXPECT_GT(star.snd->max_reach_all(), 100);
}

TEST(RlaSender, CwndTimeAverageTracked) {
  Star star(2);
  star.snd->start_at(0.0);
  star.snd->measurement().begin_measurement(0.0);
  star.sim.run_until(1.0);
  EXPECT_GT(star.snd->measurement().avg_cwnd(1.0), 1.0);
}

TEST(RlaSender, RttSampleMatchesPath) {
  Star star(2);
  star.snd->start_at(0.0);
  star.snd->measurement().begin_measurement(0.0);
  star.sim.run_until(2.0);
  // Star RTT = 40 ms; reach-all RTT is the max over branches, equal here.
  EXPECT_NEAR(star.snd->measurement().avg_rtt(), 0.04, 0.01);
  EXPECT_NEAR(star.snd->srtt_of(0), 0.04, 0.01);
}

}  // namespace
}  // namespace rlacast::rla
