// Tests for the tracing subsystem: packet trace records and ring buffer,
// queue monitor sampling, and §3.1 buffer-period segmentation.
#include <gtest/gtest.h>

#include <sstream>

#include "net/drop_tail.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/buffer_periods.hpp"
#include "trace/flow_drops.hpp"
#include "trace/packet_trace.hpp"
#include "trace/queue_monitor.hpp"

namespace rlacast::trace {
namespace {

net::Packet pkt(net::SeqNum seq, net::FlowId flow = 1) {
  net::Packet p;
  p.seq = seq;
  p.flow = flow;
  p.uid = static_cast<std::uint64_t>(seq) + 1;
  return p;
}

TEST(PacketTrace, RecordsEvents) {
  PacketTrace t;
  t.log(Op::kEnqueue, 1.0, 0, 1, pkt(5));
  t.log(Op::kDrop, 2.0, 0, 1, pkt(6));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.drops(), 1u);
  EXPECT_EQ(t.records()[0].op, Op::kEnqueue);
  EXPECT_EQ(t.records()[1].seq, 6);
}

TEST(PacketTrace, FiltersByFlow) {
  PacketTrace t;
  t.log(Op::kDrop, 1.0, 0, 1, pkt(1, 7));
  t.log(Op::kDrop, 1.0, 0, 1, pkt(2, 8));
  t.log(Op::kDrop, 1.0, 0, 1, pkt(3, 7));
  EXPECT_EQ(t.drops_for_flow(7), 2u);
  EXPECT_EQ(t.drops_for_flow(8), 1u);
  EXPECT_EQ(t.drops_for_flow(9), 0u);
}

TEST(PacketTrace, BoundedRingEvictsOldest) {
  PacketTrace t(3);
  for (net::SeqNum s = 0; s < 10; ++s) t.log(Op::kEnqueue, 0.1 * s, 0, 1, pkt(s));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.total_logged(), 10u);
}

TEST(PacketTrace, RenderContainsKeyFields) {
  PacketTrace t;
  t.log(Op::kDrop, 1.5, 3, 4, pkt(42, 9));
  const std::string line = t.records()[0].render();
  EXPECT_NE(line.find('d'), std::string::npos);
  EXPECT_NE(line.find("42"), std::string::npos);
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(), line + "\n");
}

TEST(PacketTrace, HooksIntoQueueDrops) {
  PacketTrace t;
  net::DropTailQueue q(1);
  q.set_drop_hook([&](const net::Packet& p, sim::SimTime at) {
    t.log(Op::kDrop, at, 0, 1, p);
  });
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 1.0);  // dropped
  EXPECT_EQ(t.drops(), 1u);
  EXPECT_DOUBLE_EQ(t.records()[0].at, 1.0);
}

TEST(FlowDropCounter, AttributesDropsPerFlow) {
  net::DropTailQueue q(1);
  FlowDropCounter counter(q);
  q.enqueue(pkt(0, 7), 0.0);   // accepted (in queue)
  q.enqueue(pkt(1, 7), 0.0);   // dropped
  q.enqueue(pkt(2, 8), 0.0);   // dropped
  q.enqueue(pkt(3, 8), 0.0);   // dropped
  EXPECT_EQ(counter.drops(7), 1u);
  EXPECT_EQ(counter.drops(8), 2u);
  EXPECT_EQ(counter.drops(9), 0u);
  EXPECT_EQ(counter.total(), 3u);
  EXPECT_EQ(counter.by_flow().size(), 2u);
}

TEST(QueueMonitor, SamplesAtConfiguredPeriod) {
  sim::Simulator sim;
  net::DropTailQueue q(10);
  QueueMonitor mon(sim, q, 0.5, 0.0, 2.0);
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 0.0);
  sim.run_until(3.0);
  ASSERT_EQ(mon.samples().size(), 5u);  // t = 0, .5, 1, 1.5, 2
  EXPECT_EQ(mon.samples()[0].backlog, 2u);
  EXPECT_DOUBLE_EQ(mon.mean_backlog(), 2.0);
  EXPECT_EQ(mon.peak_backlog(), 2u);
}

TEST(QueueMonitor, FractionAtOrAbove) {
  sim::Simulator sim;
  net::DropTailQueue q(10);
  QueueMonitor mon(sim, q, 1.0, 0.0, 3.0);
  sim.at(0.5, [&] { q.enqueue(pkt(0), 0.5); });   // backlog 1 from t=0.5
  sim.at(1.5, [&] { q.enqueue(pkt(1), 1.5); });   // backlog 2 from t=1.5
  sim.run_until(4.0);
  // samples at 0,1,2,3 -> backlogs 0,1,2,2
  EXPECT_DOUBLE_EQ(mon.fraction_at_or_above(2), 0.5);
  EXPECT_DOUBLE_EQ(mon.fraction_at_or_above(1), 0.75);
}

std::vector<QueueMonitor::Sample> series(
    std::initializer_list<std::size_t> backlogs, double dt = 0.1) {
  std::vector<QueueMonitor::Sample> out;
  double t = 0.0;
  for (auto b : backlogs) {
    out.push_back({t, b});
    t += dt;
  }
  return out;
}

TEST(BufferPeriods, SegmentsOneCleanPeriod) {
  // low=2, high=8: rise, full for 3 samples, drain.
  const auto s = series({0, 1, 3, 5, 8, 9, 9, 8, 5, 2, 0});
  const auto st = analyze_buffer_periods(s, 2, 8);
  EXPECT_EQ(st.periods, 1u);
  EXPECT_NEAR(st.full_length.mean(), 0.4, 1e-9);   // t=0.4..0.8 (8 counts)
  EXPECT_NEAR(st.period_length.mean(), 0.7, 1e-9); // t=0.2..0.9
}

TEST(BufferPeriods, ExcursionWithoutFullDoesNotCount) {
  const auto s = series({0, 3, 5, 4, 3, 1, 0});
  const auto st = analyze_buffer_periods(s, 2, 8);
  EXPECT_EQ(st.periods, 0u);
}

TEST(BufferPeriods, MultiplePeriodsCounted) {
  const auto s =
      series({0, 5, 9, 5, 0, 0, 5, 9, 9, 5, 0, 1, 6, 9, 1});
  const auto st = analyze_buffer_periods(s, 2, 8);
  EXPECT_EQ(st.periods, 3u);
  EXPECT_EQ(st.full_length.count(), 3u);
}

TEST(BufferPeriods, RefillWithinPeriod) {
  // Dips below high but not below low, refills: one period, two full spells.
  const auto s = series({0, 5, 9, 6, 9, 9, 4, 0});
  const auto st = analyze_buffer_periods(s, 2, 8);
  EXPECT_EQ(st.periods, 1u);
  EXPECT_EQ(st.full_length.count(), 2u);
}

}  // namespace
}  // namespace rlacast::trace
