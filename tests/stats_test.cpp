// Tests for the statistics substrate: EWMA, time-weighted means, summaries,
// 2-D histograms, table formatting, flow measurement warm-up semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/ewma.hpp"
#include "stats/flow_measurement.hpp"
#include "stats/histogram2d.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "stats/time_weighted.hpp"

namespace rlacast::stats {
namespace {

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.initialized());
  e.add(5.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.25);
  for (int i = 0; i < 100; ++i) e.add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ewma, GainControlsAdaptationSpeed) {
  Ewma fast(0.5), slow(0.01);
  fast.add(0.0);
  slow.add(0.0);
  for (int i = 0; i < 10; ++i) {
    fast.add(10.0);
    slow.add(10.0);
  }
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.count(), 0u);
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean m;
  m.start(0.0, 7.0);
  EXPECT_DOUBLE_EQ(m.mean(10.0), 7.0);
}

TEST(TimeWeightedMean, StepSignalWeighting) {
  TimeWeightedMean m;
  m.start(0.0, 0.0);
  m.update(5.0, 10.0);  // 0 for 5s, then 10 for 5s
  EXPECT_DOUBLE_EQ(m.mean(10.0), 5.0);
}

TEST(TimeWeightedMean, UnevenHolding) {
  TimeWeightedMean m;
  m.start(0.0, 2.0);
  m.update(1.0, 4.0);  // 2 for 1s, 4 for 3s
  EXPECT_DOUBLE_EQ(m.mean(4.0), (2.0 * 1 + 4.0 * 3) / 4.0);
}

TEST(TimeWeightedMean, ResetDiscardsHistory) {
  TimeWeightedMean m;
  m.start(0.0, 100.0);
  m.update(10.0, 2.0);
  m.reset_at(10.0);  // discard the 100-valued epoch
  EXPECT_DOUBLE_EQ(m.mean(20.0), 2.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, StddevAndCi95) {
  Summary s;
  for (double x : {10.0, 12.0, 14.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  // t_{0.975,2} = 4.303; halfwidth = 4.303 * 2 / sqrt(3).
  EXPECT_NEAR(s.ci95_halfwidth(), 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
  Summary one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(one.ci95_halfwidth(), 0.0);  // no interval from n=1
}

TEST(Summary, Ci95UsesAsymptoticTForLargeN) {
  Summary s;
  for (int i = 0; i < 100; ++i) s.add(i % 2 ? 1.0 : -1.0);
  // df=99 > 30 -> 1.960 critical value; s = sqrt(100/99) ~ 1.00504.
  EXPECT_NEAR(s.ci95_halfwidth(), 1.960 * s.stddev() / 10.0, 1e-12);
}

TEST(Histogram2D, MassConservedAndClamped) {
  Histogram2D h(10.0, 10.0, 10, 10);
  h.add(5.0, 5.0);
  h.add(100.0, -3.0);  // clamped to edge bins
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
  EXPECT_DOUBLE_EQ(h.at(9, 0), 1.0);
}

TEST(Histogram2D, ModeFindsPeak) {
  Histogram2D h(10.0, 10.0, 10, 10);
  for (int i = 0; i < 5; ++i) h.add(2.5, 7.5);
  h.add(9.0, 1.0);
  const auto [mx, my] = h.mode();
  EXPECT_NEAR(mx, 2.5, 0.51);
  EXPECT_NEAR(my, 7.5, 0.51);
}

TEST(Histogram2D, MarginalMeans) {
  Histogram2D h(10.0, 10.0, 100, 100);
  h.add(2.0, 8.0);
  h.add(4.0, 6.0);
  EXPECT_NEAR(h.mean_x(), 3.0, 0.1);
  EXPECT_NEAR(h.mean_y(), 7.0, 0.1);
}

TEST(Histogram2D, MassNearCapturesNeighborhood) {
  Histogram2D h(10.0, 10.0, 100, 100);
  for (int i = 0; i < 99; ++i) h.add(5.0, 5.0);
  h.add(0.5, 9.5);
  EXPECT_NEAR(h.mass_near(5.0, 5.0, 1.0), 0.99, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.25, 2)});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

TEST(FlowMeasurement, WarmupCutsCounters) {
  FlowMeasurement m;
  m.note_cwnd(0.0, 10.0);
  m.note_acked(500);
  m.note_window_cut();
  m.begin_measurement(100.0);
  m.note_acked(300);
  EXPECT_DOUBLE_EQ(m.throughput_pps(200.0), 3.0);
  EXPECT_EQ(m.window_cuts(), 0u);
  m.note_window_cut();
  EXPECT_EQ(m.window_cuts(), 1u);
}

TEST(FlowMeasurement, RttSamplesOnlyDuringMeasurement) {
  FlowMeasurement m;
  m.note_rtt(1.0, 0.5);  // before begin_measurement: dropped
  m.begin_measurement(10.0);
  m.note_rtt(11.0, 0.25);
  EXPECT_DOUBLE_EQ(m.avg_rtt(), 0.25);
  EXPECT_EQ(m.rtt_summary().count(), 1u);
}

TEST(FlowMeasurement, CwndAverageRestartsAtWarmup) {
  FlowMeasurement m;
  m.note_cwnd(0.0, 100.0);
  m.begin_measurement(10.0);
  m.note_cwnd(10.0, 2.0);
  EXPECT_DOUBLE_EQ(m.avg_cwnd(20.0), 2.0);
}

}  // namespace
}  // namespace rlacast::stats
