// RLA integration tests on real bottleneck networks: the end-to-end claims
// of the paper at test scale — essential fairness against TCP, scaling with
// receiver count, and the superiority over the naive listener.
#include <gtest/gtest.h>

#include "model/formulas.hpp"
#include "topo/flat_tree.hpp"

namespace rlacast::rla {
namespace {

using topo::FlatBranch;
using topo::FlatTreeConfig;
using topo::GatewayType;
using topo::run_flat_tree;

FlatTreeConfig base_config(int n_branches, GatewayType gw) {
  FlatTreeConfig cfg;
  cfg.branches.assign(static_cast<std::size_t>(n_branches),
                      FlatBranch{200.0, 1});
  cfg.gateway = gw;
  cfg.duration = 220.0;
  cfg.warmup = 40.0;
  return cfg;
}

TEST(RlaIntegration, AloneFillsBottleneck) {
  FlatTreeConfig cfg = base_config(3, GatewayType::kDropTail);
  for (auto& b : cfg.branches) b.n_tcp = 0;  // no competing TCP
  const auto res = run_flat_tree(cfg);
  // The multicast session alone should achieve high utilization of the
  // per-branch 200 pkt/s bottleneck.
  EXPECT_GT(res.rla.throughput_pps, 120.0);
  EXPECT_LE(res.rla.throughput_pps, 205.0);
}

TEST(RlaIntegration, EssentiallyFairToTcpDropTail) {
  const auto res = run_flat_tree(base_config(3, GatewayType::kDropTail));
  const double wtcp = res.worst_tcp().throughput_pps;
  ASSERT_GT(wtcp, 0.0);
  const double ratio = res.rla.throughput_pps / wtcp;
  const auto bounds = model::theorem2_droptail_bounds(3);
  EXPECT_GT(ratio, bounds.lo);
  EXPECT_LT(ratio, bounds.hi);
}

TEST(RlaIntegration, EssentiallyFairToTcpRed) {
  const auto res = run_flat_tree(base_config(3, GatewayType::kRed));
  const double wtcp = res.worst_tcp().throughput_pps;
  ASSERT_GT(wtcp, 0.0);
  const double ratio = res.rla.throughput_pps / wtcp;
  const auto bounds = model::theorem1_red_bounds(3);
  EXPECT_GT(ratio, bounds.lo);
  EXPECT_LT(ratio, bounds.hi);
}

TEST(RlaIntegration, TcpNotShutOut) {
  // Minimum requirement 1 of §2.1: TCP keeps a nontrivial share.
  const auto res = run_flat_tree(base_config(5, GatewayType::kDropTail));
  EXPECT_GT(res.worst_tcp().throughput_pps, 100.0 * 0.25);
}

TEST(RlaIntegration, ThroughputDoesNotCollapseWithReceiverCount) {
  // Minimum requirement 2 of §2.1. Compare 2 vs 8 equally congested
  // branches: the naive listener collapses, the RLA must not.
  const auto small = run_flat_tree(base_config(2, GatewayType::kDropTail));
  const auto large = run_flat_tree(base_config(8, GatewayType::kDropTail));
  EXPECT_GT(large.rla.throughput_pps, 0.4 * small.rla.throughput_pps);
  EXPECT_GT(large.rla.throughput_pps, 40.0);
}

TEST(RlaIntegration, BeatsNaiveListenerAtScale) {
  FlatTreeConfig naive_cfg = base_config(8, GatewayType::kDropTail);
  naive_cfg.rla.fixed_pthresh = 1.0;  // obey every congestion signal
  const auto naive = run_flat_tree(naive_cfg);
  const auto rla = run_flat_tree(base_config(8, GatewayType::kDropTail));
  EXPECT_GT(rla.rla.throughput_pps, 1.3 * naive.rla.throughput_pps);
}

TEST(RlaIntegration, AllBranchesCongestedAllTroubled) {
  const auto res = run_flat_tree(base_config(4, GatewayType::kDropTail));
  EXPECT_EQ(res.num_troubled_final, 4);
  for (auto s : res.rla_signals_per_receiver) EXPECT_GT(s, 0u);
}

TEST(RlaIntegration, WindowCutsAreFractionOfSignals) {
  // With n troubled receivers the sender obeys ~1/n of the signals.
  const auto res = run_flat_tree(base_config(6, GatewayType::kDropTail));
  ASSERT_GT(res.rla.cong_signals, 50u);
  const double obey_ratio =
      static_cast<double>(res.rla.window_cuts) /
      static_cast<double>(res.rla.cong_signals);
  EXPECT_LT(obey_ratio, 0.55);
  EXPECT_GT(obey_ratio, 1.0 / (6.0 * 3.0));
}

TEST(RlaIntegration, ForcedCutsRare) {
  const auto res = run_flat_tree(base_config(4, GatewayType::kDropTail));
  // The paper's tables report zero forced cuts in every case.
  EXPECT_LE(res.rla.forced_cuts, res.rla.window_cuts / 5 + 1);
}

TEST(RlaIntegration, SharedBottleneckCorrelatedLossesBiggerWindow) {
  // Lemma of §4.2 at system level: common losses (shared trunk bottleneck)
  // yield a larger average RLA window than independent per-branch losses at
  // comparable per-flow share.
  FlatTreeConfig indep = base_config(4, GatewayType::kDropTail);
  FlatTreeConfig common = base_config(4, GatewayType::kDropTail);
  common.shared_bottleneck_pps = 4 * 200.0;  // same aggregate share
  const auto res_i = run_flat_tree(indep);
  const auto res_c = run_flat_tree(common);
  EXPECT_GT(res_c.rla.avg_cwnd, res_i.rla.avg_cwnd * 0.9);
}

TEST(RlaIntegration, UnbalancedCongestionGivesRlaMoreThanWorstTcp) {
  // §4.3: one very congested branch among mostly clean ones lets the RLA
  // exceed the soft-bottleneck TCP share (by design), while remaining
  // within the essential-fairness ceiling.
  FlatTreeConfig cfg = base_config(5, GatewayType::kDropTail);
  cfg.branches[0].mu_pps = 200.0;
  for (std::size_t i = 1; i < 5; ++i) cfg.branches[i].mu_pps = 2000.0;
  const auto res = run_flat_tree(cfg);
  const double wtcp = res.worst_tcp().throughput_pps;
  EXPECT_GT(res.rla.throughput_pps, wtcp);
  EXPECT_LT(res.rla.throughput_pps,
            model::theorem2_droptail_bounds(5).hi * wtcp);
}

TEST(RlaIntegration, DeterministicForSeed) {
  const auto a = run_flat_tree(base_config(3, GatewayType::kDropTail));
  const auto b = run_flat_tree(base_config(3, GatewayType::kDropTail));
  EXPECT_DOUBLE_EQ(a.rla.throughput_pps, b.rla.throughput_pps);
  EXPECT_EQ(a.rla.window_cuts, b.rla.window_cuts);
}

}  // namespace
}  // namespace rlacast::rla
