// Sublinear receiver state (ISSUE 9): sampled-census equivalence and the
// slim (sparse-slot) layouts.
//
//   * Property: kSampled with reservoir >= N reproduces kExact decisions
//     bit-identically — troubled flags, num_trouble_rcvr, srtt_max,
//     min_interval and the defense state machine, step for step.  The
//     bottom-k hash sample is the whole active membership at that size, so
//     any divergence is a bug in the slim storage, not sampling error.
//   * Property: at reservoir << N the num_trouble_rcvr estimate stays
//     within a few standard errors of the exact count — relative standard
//     error ~ sqrt((1-f)/(f*k)) for troubled fraction f (DESIGN.md).
//   * The slim census layout only allocates wide-stat slots for reservoir
//     members + signallers, so census memory is O(reservoir), not O(N).
//   * rla::ReceiverTable slim mode: untracked members share the fallback
//     RTT estimator, tracked members behave exactly like the dense table,
//     and table memory is O(tracked), not O(N).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cc/rtt_estimator.hpp"
#include "cc/troubled_census.hpp"
#include "rla/receiver_table.hpp"

namespace rlacast {
namespace {

std::uint64_t lcg(std::uint64_t& x) {
  x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  return x >> 33;
}

// Drives two censuses through an identical operation stream and asserts
// bit-identical observable state after every step.
void expect_census_lockstep(cc::TroubledCensus& a, cc::TroubledCensus& b,
                            int n, int steps, bool with_defense) {
  if (with_defense) {
    cc::CensusDefenseParams d;
    d.enabled = true;
    a.set_defense(d);
    b.set_defense(d);
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(a.add_receiver(), b.add_receiver());
    a.note_srtt(i, 0.1);
    b.note_srtt(i, 0.1);
  }
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  double t = 1.0;
  for (int s = 0; s < steps; ++s) {
    t += 0.01;
    const int i = static_cast<int>(lcg(x) % static_cast<std::uint64_t>(n));
    switch (lcg(x) % 8) {
      case 0: {
        const double srtt = 0.05 + 0.001 * static_cast<double>(lcg(x) % 400);
        a.note_srtt(i, srtt);
        b.note_srtt(i, srtt);
        break;
      }
      case 1:
        a.exclude(i);
        b.exclude(i);
        break;
      case 2:
        a.force_quarantine(i, t);
        b.force_quarantine(i, t);
        break;
      case 3: {
        const auto ra = a.advance_states(t);
        const auto rb = b.advance_states(t);
        ASSERT_EQ(ra, rb);
        break;
      }
      default:
        a.on_signal(i, t);
        b.on_signal(i, t);
        break;
    }
    ASSERT_EQ(a.recompute(t), b.recompute(t)) << "step " << s;
    ASSERT_EQ(a.num_troubled(), b.num_troubled());
    ASSERT_EQ(a.active_count(), b.active_count());
    ASSERT_EQ(a.min_interval(t), b.min_interval(t));
    ASSERT_EQ(a.srtt_max(), b.srtt_max());
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(a.troubled(j), b.troubled(j)) << "rcvr " << j;
      ASSERT_EQ(a.excluded(j), b.excluded(j)) << "rcvr " << j;
      ASSERT_EQ(a.state(j), b.state(j)) << "rcvr " << j;
      ASSERT_EQ(a.strikes(j), b.strikes(j)) << "rcvr " << j;
      ASSERT_EQ(a.signals(j), b.signals(j)) << "rcvr " << j;
    }
  }
}

TEST(CensusScale, SampledReservoirGeNMatchesExactBitForBit) {
  const int n = 64;
  cc::TroubledCensus exact(20.0, 0.25);
  cc::TroubledCensus sampled(20.0, 0.25);
  cc::CensusSampleParams sp;
  sp.mode = cc::CensusMode::kSampled;
  sp.reservoir = 256;  // >= n: the sample IS the membership
  sampled.configure_sampling(sp);
  expect_census_lockstep(exact, sampled, n, 600, /*with_defense=*/false);
}

TEST(CensusScale, SampledReservoirGeNMatchesExactUnderDefense) {
  const int n = 48;
  cc::TroubledCensus exact(20.0, 0.25);
  cc::TroubledCensus sampled(20.0, 0.25);
  cc::CensusSampleParams sp;
  sp.mode = cc::CensusMode::kSampled;
  sp.reservoir = 64;
  sampled.configure_sampling(sp);
  expect_census_lockstep(exact, sampled, n, 600, /*with_defense=*/true);
}

TEST(CensusScale, SmallReservoirBoundsNumTroubleError) {
  // f = 1/5 of 5000 members signal 100x faster than the rest; they are the
  // troubled set.  The bottom-k estimate scales the sampled troubled count
  // by active/sample, with relative standard error ~ sqrt((1-f)/(f*k)).
  const int n = 5000;
  const int k = 256;
  const double f = 0.2;
  cc::TroubledCensus exact(20.0, 0.25);
  cc::TroubledCensus sampled(20.0, 0.25);
  cc::CensusSampleParams sp;
  sp.mode = cc::CensusMode::kSampled;
  sp.reservoir = static_cast<std::size_t>(k);
  sampled.configure_sampling(sp);
  for (int i = 0; i < n; ++i) {
    exact.add_receiver();
    sampled.add_receiver();
  }
  const int fast_stride = static_cast<int>(1.0 / f);
  for (double t = 1.0; t < 21.0; t += 0.1) {
    for (int i = 0; i < n; ++i) {
      const bool fast = (i % fast_stride) == 0;
      // Fast members signal every 0.1 s, slow members every 10 s.
      const bool due =
          fast || std::fmod(t - 1.0, 10.0) < 0.05;
      if (!due) continue;
      exact.on_signal(i, t);
      sampled.on_signal(i, t);
    }
  }
  const int t_exact = exact.recompute(21.0);
  const int t_sampled = sampled.recompute(21.0);
  ASSERT_GT(t_exact, 0);
  ASSERT_GT(t_sampled, 0);
  const double rel_err =
      std::abs(static_cast<double>(t_sampled - t_exact)) /
      static_cast<double>(t_exact);
  const double stderr_bound = std::sqrt((1.0 - f) / (f * k));  // ~0.125
  EXPECT_LT(rel_err, 4.0 * stderr_bound)
      << "exact=" << t_exact << " sampled=" << t_sampled;
}

TEST(CensusScale, SlimCensusMemoryIsSublinear) {
  // Only reservoir members and signallers get wide-stat slots: census
  // memory is O(reservoir + signallers), not O(N).
  const int n = 20000;
  cc::TroubledCensus exact(20.0, 0.25);
  cc::TroubledCensus sampled(20.0, 0.25);
  cc::CensusSampleParams sp;
  sp.mode = cc::CensusMode::kSampled;
  sp.reservoir = 128;
  sampled.configure_sampling(sp);
  for (int i = 0; i < n; ++i) {
    exact.add_receiver();
    sampled.add_receiver();
    exact.note_srtt(i, 0.1);
    sampled.note_srtt(i, 0.1);
  }
  // A handful of members signal; everyone else stays cheap.
  for (int i = 0; i < 10; ++i) {
    exact.on_signal(i, 1.0 + i);
    sampled.on_signal(i, 1.0 + i);
  }
  EXPECT_LT(sampled.state_bytes() * 4, exact.state_bytes())
      << "slim=" << sampled.state_bytes() << " dense=" << exact.state_bytes();
}

// --- rla::ReceiverTable slim mode -----------------------------------------

cc::RttEstimatorParams rtt_params() { return cc::RttEstimatorParams{}; }

TEST(SlimTable, UntrackedMembersShareTheFallbackEstimator) {
  rla::ReceiverTable t(rtt_params(), /*slim=*/true);
  for (int i = 0; i < 3; ++i) t.add(1, 10, 0, 0.0);
  EXPECT_FALSE(t.tracked(0));
  EXPECT_FALSE(t.tracked(1));
  t.rtt_add_sample(0, 0.5);
  // 0's sample landed in the shared estimator, so 1 reports it too.
  EXPECT_EQ(t.rtt(0).srtt(), t.rtt(1).srtt());
  EXPECT_DOUBLE_EQ(t.rtt(1).srtt(), 0.5);
}

TEST(SlimTable, TrackedMemberGetsItsOwnEstimatorSeededFromFallback) {
  rla::ReceiverTable t(rtt_params(), /*slim=*/true);
  for (int i = 0; i < 3; ++i) t.add(1, 10, 0, 0.0);
  t.rtt_add_sample(0, 0.5);  // population estimate: 0.5
  t.ensure_tracked(2);
  EXPECT_TRUE(t.tracked(2));
  // Seeded from the fallback, then diverges on its own samples.
  EXPECT_DOUBLE_EQ(t.rtt(2).srtt(), 0.5);
  t.rtt_add_sample(2, 2.0);
  EXPECT_GT(t.rtt(2).srtt(), 0.5);
  EXPECT_DOUBLE_EQ(t.rtt(0).srtt(), 0.5);  // fallback untouched by 2
}

TEST(SlimTable, GrouperAccessAndMaterializeAllocateTrackedSlots) {
  rla::ReceiverTable t(rtt_params(), /*slim=*/true);
  for (int i = 0; i < 4; ++i) t.add(1, 10, 0, 0.0);
  (void)t.grouper(1);
  EXPECT_TRUE(t.tracked(1));
  t.materialize(2);
  EXPECT_TRUE(t.tracked(2));
  EXPECT_FALSE(t.tracked(3));
  EXPECT_EQ(t.tracked_count(), 2u);
}

TEST(SlimTable, AllTrackedMatchesDenseTable) {
  // With every member tracked the slim table must agree with the dense one
  // on every RTT aggregate — the table half of the reservoir >= N property.
  cc::TroubledCensus census(20.0, 0.25);
  rla::ReceiverTable dense(rtt_params(), /*slim=*/false);
  rla::ReceiverTable slim(rtt_params(), /*slim=*/true);
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    census.add_receiver();
    dense.add(1, 10, 0, 0.0);
    slim.add(1, 10, 0, 0.0);
    slim.ensure_tracked(i);
  }
  std::uint64_t x = 123;
  for (int s = 0; s < 400; ++s) {
    const int i = static_cast<int>(lcg(x) % n);
    switch (lcg(x) % 4) {
      case 0: {
        const double sample = 0.05 + 0.01 * static_cast<double>(lcg(x) % 50);
        dense.rtt_add_sample(i, sample);
        slim.rtt_add_sample(i, sample);
        break;
      }
      case 1:
        dense.rtt_reset_backoff(i);
        slim.rtt_reset_backoff(i);
        break;
      case 2:
        dense.rtt_back_off_all(census);
        slim.rtt_back_off_all(census);
        break;
      default:
        break;
    }
    ASSERT_EQ(dense.max_rto(census), slim.max_rto(census)) << "step " << s;
    ASSERT_EQ(dense.rtt(i).srtt(), slim.rtt(i).srtt());
    ASSERT_EQ(dense.rtt(i).rto(), slim.rtt(i).rto());
  }
}

TEST(SlimTable, MaxRtoCountsFallbackOnlyWhileUntrackedMembersExist) {
  cc::TroubledCensus census(20.0, 0.25);
  rla::ReceiverTable t(rtt_params(), /*slim=*/true);
  for (int i = 0; i < 3; ++i) {
    census.add_receiver();
    t.add(1, 10, 0, 0.0);
  }
  t.ensure_tracked(0);
  t.rtt_add_sample(0, 0.1);
  // 1 and 2 are untracked; 1's huge sample lands in the shared fallback,
  // which speaks for both of them in the aggregate: it must win.
  t.rtt_add_sample(1, 8.0);
  const double fallback_rto = t.rtt(2).rto();  // untracked view == fallback
  const double with_untracked = t.max_rto(census);
  EXPECT_GE(with_untracked, fallback_rto);
  // Once no ACTIVE member is untracked the fallback speaks for nobody and
  // the aggregate is over the tracked members only.
  census.exclude(1);
  census.exclude(2);
  EXPECT_DOUBLE_EQ(t.max_rto(census), t.rtt(0).rto());
  EXPECT_LT(t.max_rto(census), with_untracked);
}

TEST(SlimTable, StateBytesAreSublinearInMembership) {
  const int n = 10000;
  rla::ReceiverTable dense(rtt_params(), /*slim=*/false);
  rla::ReceiverTable slim(rtt_params(), /*slim=*/true);
  for (int i = 0; i < n; ++i) {
    dense.add(1, 10, 0, 0.0);
    slim.add(1, 10, 0, 0.0);
  }
  for (int i = 0; i < 32; ++i) slim.ensure_tracked(i);
  EXPECT_EQ(slim.tracked_count(), 32u);
  EXPECT_LT(slim.state_bytes() * 3, dense.state_bytes())
      << "slim=" << slim.state_bytes() << " dense=" << dense.state_bytes();
}

}  // namespace
}  // namespace rlacast
