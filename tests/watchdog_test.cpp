// sim::Watchdog unit tests: healthy runs stay ok(), failing checks are
// recorded (once per distinct detail) with simulated timestamps, the
// built-in progress check flags a livelocked event loop, and the wall-clock
// budget throws WatchdogTimeout out of the run.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/watchdog.hpp"

namespace rlacast {
namespace {

// Keeps the event loop busy: one event per `step` simulated seconds.
void drive(sim::Simulator& sim, double until, double step = 0.1) {
  for (double t = step; t <= until; t += step) sim.at(t, [] {});
}

TEST(Watchdog, HealthyRunStaysOk) {
  sim::Simulator sim(1);
  sim::Watchdog dog(sim, 1.0);
  int evaluations = 0;
  dog.add_check("always-ok", [&] {
    ++evaluations;
    return std::string();
  });
  drive(sim, 10.0);
  dog.start();
  sim.run_all();
  EXPECT_TRUE(dog.ok());
  EXPECT_TRUE(dog.violations().empty());
  EXPECT_TRUE(dog.report().empty());
  EXPECT_GE(dog.ticks(), 9u);
  EXPECT_EQ(evaluations, static_cast<int>(dog.ticks()));
}

TEST(Watchdog, FailingCheckRecordsViolationWithTimestamp) {
  sim::Simulator sim(1);
  sim::Watchdog dog(sim, 1.0);
  dog.add_check("cwnd-range", [&]() -> std::string {
    return sim.now() >= 5.0 ? "cwnd=-3 below 1" : "";
  });
  drive(sim, 10.0);
  dog.start();
  sim.run_all();
  ASSERT_FALSE(dog.ok());
  // Same (check, detail) pair fires on every tick after t=5 but is recorded
  // once — no flooding.
  ASSERT_EQ(dog.violations().size(), 1u);
  const auto& v = dog.violations()[0];
  EXPECT_EQ(v.check, "cwnd-range");
  EXPECT_EQ(v.detail, "cwnd=-3 below 1");
  EXPECT_GE(v.at, 5.0);
  EXPECT_NE(dog.report().find("cwnd-range"), std::string::npos);
  EXPECT_NE(dog.report().find("cwnd=-3"), std::string::npos);
}

TEST(Watchdog, DistinctDetailsRecordedSeparately) {
  sim::Simulator sim(1);
  sim::Watchdog dog(sim, 1.0);
  dog.add_check("drift", [&] { return "drift at t=" + std::to_string(static_cast<int>(sim.now())); });
  drive(sim, 3.5);
  dog.start();
  sim.run_all();
  EXPECT_EQ(dog.violations().size(), dog.ticks());
}

TEST(Watchdog, LivelockTriggersProgressViolation) {
  // Far-future pending events that never get closer: the engine dispatches
  // only the watchdog tick itself each period, which is the
  // <=1-dispatch-per-tick signature the progress check looks for.
  sim::Simulator sim(1);
  sim.at(1000.0, [] {});
  sim.at(1000.0, [] {});
  sim::Watchdog dog(sim, 1.0);
  dog.set_progress_grace(3);
  dog.start();
  sim.run_all();
  ASSERT_FALSE(dog.ok());
  EXPECT_EQ(dog.violations()[0].check, "event-progress");
}

TEST(Watchdog, ProgressGraceZeroDisablesCheck) {
  sim::Simulator sim(1);
  sim.at(1000.0, [] {});
  sim::Watchdog dog(sim, 1.0);
  dog.set_progress_grace(0);
  dog.start();
  sim.run_all();
  EXPECT_TRUE(dog.ok());
}

TEST(Watchdog, BusyRunDoesNotTripProgressCheck) {
  sim::Simulator sim(1);
  drive(sim, 50.0, 0.05);  // plenty of real dispatches between ticks
  sim::Watchdog dog(sim, 1.0);
  dog.set_progress_grace(2);
  dog.start();
  sim.run_all();
  EXPECT_TRUE(dog.ok());
}

TEST(Watchdog, WallLimitThrowsWatchdogTimeout) {
  sim::Simulator sim(1);
  drive(sim, 1000.0, 1.0);
  sim::Watchdog dog(sim, 1.0);
  // Simulated time is free, but a 0-second budget is exceeded by the first
  // tick's real-time check.
  dog.set_wall_limit(1e-9);
  dog.start();
  EXPECT_THROW(sim.run_all(), sim::WatchdogTimeout);
}

TEST(Watchdog, DoesNotKeepFinishedRunAlive) {
  sim::Simulator sim(1);
  drive(sim, 2.0);
  sim::Watchdog dog(sim, 1.0);
  dog.start();
  sim.run_all();  // must terminate: watchdog stops re-arming once alone
  EXPECT_TRUE(dog.ok());
  EXPECT_LE(dog.ticks(), 4u);
}

}  // namespace
}  // namespace rlacast
