// Scenario-builder tests for the four-level tertiary tree (Figure 6): node
// and flow wiring, per-case congestion marking, heterogeneous receivers,
// and short-run sanity of all five bottleneck cases.
#include <gtest/gtest.h>

#include "topo/tertiary_tree.hpp"

namespace rlacast::topo {
namespace {

TreeConfig quick(TreeCase c, GatewayType g = GatewayType::kDropTail) {
  TreeConfig cfg;
  cfg.bottleneck = c;
  cfg.gateway = g;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  return cfg;
}

TEST(TertiaryTree, TwentySevenReceiversAndTcps) {
  const auto res = run_tertiary_tree(quick(TreeCase::kL4All));
  EXPECT_EQ(res.tcps.size(), 27u);
  EXPECT_EQ(res.rla_signals_per_receiver.size(), 27u);
  EXPECT_EQ(res.rla.size(), 1u);
}

TEST(TertiaryTree, CongestionMarkingPerCase) {
  {
    const auto res = run_tertiary_tree(quick(TreeCase::kL1));
    for (bool b : res.receiver_congested) EXPECT_TRUE(b);
    EXPECT_EQ(res.bottleneck_drop_rate.size(), 1u);
  }
  {
    const auto res = run_tertiary_tree(quick(TreeCase::kL4Some));
    int congested = 0;
    for (bool b : res.receiver_congested) congested += b ? 1 : 0;
    EXPECT_EQ(congested, 5);
    EXPECT_EQ(res.bottleneck_drop_rate.size(), 5u);
  }
  {
    const auto res = run_tertiary_tree(quick(TreeCase::kL21));
    int congested = 0;
    for (bool b : res.receiver_congested) congested += b ? 1 : 0;
    EXPECT_EQ(congested, 9);  // the nine leaves below G21
  }
}

TEST(TertiaryTree, AllCasesRunAndProgress) {
  for (TreeCase c : {TreeCase::kL1, TreeCase::kL3All, TreeCase::kL4All,
                     TreeCase::kL4Some, TreeCase::kL21}) {
    const auto res = run_tertiary_tree(quick(c));
    EXPECT_GT(res.rla[0].throughput_pps, 5.0) << tree_case_name(c);
    EXPECT_GT(res.worst_tcp().throughput_pps, 1.0) << tree_case_name(c);
  }
}

TEST(TertiaryTree, RttReflectsLeafDelay) {
  // Propagation RTT = 2*(5+5+5+100) ms = 230 ms.
  const auto res = run_tertiary_tree(quick(TreeCase::kL4All));
  EXPECT_GT(res.rla[0].avg_rtt, 0.225);
  EXPECT_LT(res.rla[0].avg_rtt, 0.5);
}

TEST(TertiaryTree, TwoSessionsBothProgress) {
  TreeConfig cfg = quick(TreeCase::kL4All);
  cfg.multicast_sessions = 2;
  const auto res = run_tertiary_tree(cfg);
  ASSERT_EQ(res.rla.size(), 2u);
  EXPECT_GT(res.rla[0].throughput_pps, 5.0);
  EXPECT_GT(res.rla[1].throughput_pps, 5.0);
}

TEST(TertiaryTree, HeterogeneousAddsGatewayReceivers) {
  TreeConfig cfg = quick(TreeCase::kL3AllHetero);
  cfg.gateway_receivers = true;
  const auto res = run_tertiary_tree(cfg);
  // 36 multicast receivers, but background TCP runs only to the 27 leaves
  // (Figure 10's uniform TCP RTTs).
  EXPECT_EQ(res.tcps.size(), 27u);
  EXPECT_EQ(res.rla_signals_per_receiver.size(), 36u);
  EXPECT_GT(res.rla[0].throughput_pps, 5.0);
}

TEST(TertiaryTree, UncongestedBranchesSeeFewerSignals) {
  const auto res = run_tertiary_tree(quick(TreeCase::kL21));
  std::uint64_t congested_signals = 0, clean_signals = 0;
  int n_congested = 0, n_clean = 0;
  for (std::size_t i = 0; i < res.rla_signals_per_receiver.size(); ++i) {
    if (res.receiver_congested[i]) {
      congested_signals += res.rla_signals_per_receiver[i];
      ++n_congested;
    } else {
      clean_signals += res.rla_signals_per_receiver[i];
      ++n_clean;
    }
  }
  ASSERT_GT(n_congested, 0);
  ASSERT_GT(n_clean, 0);
  const double avg_congested =
      static_cast<double>(congested_signals) / n_congested;
  const double avg_clean = static_cast<double>(clean_signals) / n_clean;
  EXPECT_GT(avg_congested, 2.0 * avg_clean);
}

TEST(TertiaryTree, CaseNamesAreDistinct) {
  EXPECT_NE(tree_case_name(TreeCase::kL1), tree_case_name(TreeCase::kL21));
  EXPECT_NE(tree_case_name(TreeCase::kL3All),
            tree_case_name(TreeCase::kL4All));
}

}  // namespace
}  // namespace rlacast::topo
