// Tests for the exp/ experiment-runner subsystem: grid expansion order,
// deterministic seed derivation (thread-count and order independent),
// jobs=1 vs jobs=8 bit-identical results, exception capture as error rows,
// replicate aggregation math, and the results.json emitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include "exp/runner.hpp"
#include "exp/results.hpp"
#include "exp/spec.hpp"
#include "sim/random.hpp"
#include "topo/tertiary_tree.hpp"

namespace rlacast {
namespace {

exp::Grid three_case_grid(int replicates, std::uint64_t seed) {
  exp::Grid g;
  g.master_seed(seed).replicates(replicates);
  g.add_case("alpha", exp::Point{}.set("x", std::int64_t{1}));
  g.add_case("beta", exp::Point{}.set("x", std::int64_t{2}));
  g.add_case("gamma", exp::Point{}.set("x", std::int64_t{3}));
  return g;
}

/// Deterministic pseudo-workload: metrics are a pure function of the spec.
exp::Metrics fake_scenario(const exp::RunSpec& spec) {
  sim::Rng rng(spec.seed);
  exp::Metrics m;
  m.set("value", rng.uniform() + spec.point.get_double("x", 0.0));
  m.set("draw2", rng.uniform());
  return m;
}

TEST(ExpSpec, PointRoundTripsAndFormatsId) {
  exp::Point p;
  p.set("gateway", "red").set("share", 100.0).set("n", std::int64_t{27});
  EXPECT_EQ(p.id(), "gateway=red,share=100,n=27");
  EXPECT_EQ(p.get("gateway"), "red");
  EXPECT_DOUBLE_EQ(p.get_double("share", 0.0), 100.0);
  EXPECT_EQ(p.get_int("n", 0), 27);
  EXPECT_EQ(p.get_int("absent", -1), -1);
  p.set("gateway", "droptail");  // overwrite keeps position
  EXPECT_EQ(p.id(), "gateway=droptail,share=100,n=27");
}

TEST(ExpSpec, GridExpansionIsCasesMajorReplicatesMinor) {
  const auto runs = three_case_grid(/*replicates=*/2, /*seed=*/7).expand();
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].id(), "alpha/x=1#0");
  EXPECT_EQ(runs[1].id(), "alpha/x=1#1");
  EXPECT_EQ(runs[2].id(), "beta/x=2#0");
  EXPECT_EQ(runs[5].id(), "gamma/x=3#1");
  for (std::size_t i = 0; i < runs.size(); ++i) EXPECT_EQ(runs[i].index, i);
}

TEST(ExpSpec, Replicate0UsesMasterSeedForLegacyCompat) {
  const auto runs = three_case_grid(/*replicates=*/3, /*seed=*/42).expand();
  for (const auto& r : runs) {
    if (r.replicate == 0) {
      EXPECT_EQ(r.seed, 42u) << r.id();
    }
  }
}

TEST(ExpSpec, DerivedSeedsAreDistinctAndStable) {
  const auto runs = three_case_grid(/*replicates=*/4, /*seed=*/42).expand();
  std::set<std::uint64_t> nonzero_rep_seeds;
  for (const auto& r : runs) {
    if (r.replicate > 0) nonzero_rep_seeds.insert(r.seed);
    // Derivation depends only on run identity, not on grid layout.
    EXPECT_EQ(r.seed, exp::derive_seed(42, r.name, r.point, r.replicate));
  }
  EXPECT_EQ(nonzero_rep_seeds.size(), 9u);  // 3 cases x 3 derived replicates

  // Changing the master seed moves every derived seed.
  EXPECT_NE(exp::derive_seed(42, "alpha", {}, 1),
            exp::derive_seed(43, "alpha", {}, 1));
  // Case name and point are part of the identity.
  EXPECT_NE(exp::derive_seed(42, "alpha", {}, 1),
            exp::derive_seed(42, "beta", {}, 1));
  EXPECT_NE(exp::derive_seed(42, "alpha", exp::Point{}.set("x", "1"), 1),
            exp::derive_seed(42, "alpha", exp::Point{}.set("x", "2"), 1));
}

TEST(ExpRunner, Jobs1AndJobs8ProduceIdenticalResults) {
  const auto grid = three_case_grid(/*replicates=*/4, /*seed=*/11);

  exp::RunnerOptions serial;
  serial.jobs = 1;
  exp::RunnerOptions parallel;
  parallel.jobs = 8;

  const auto r1 = exp::Runner(serial).run(grid, fake_scenario);
  const auto r8 = exp::Runner(parallel).run(grid, fake_scenario);

  ASSERT_EQ(r1.runs().size(), r8.runs().size());
  for (std::size_t i = 0; i < r1.runs().size(); ++i) {
    const auto& a = r1.runs()[i];
    const auto& b = r8.runs()[i];
    EXPECT_EQ(a.spec.id(), b.spec.id()) << i;
    EXPECT_EQ(a.spec.seed, b.spec.seed) << i;
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    // Bit-identical metric rows (names, order, and exact double values).
    EXPECT_TRUE(a.metrics == b.metrics) << a.spec.id();
  }
}

TEST(ExpRunner, ThrowingRunBecomesErrorRowWithoutKillingBatch) {
  const auto grid = three_case_grid(/*replicates=*/2, /*seed=*/5);
  exp::RunnerOptions opts;
  opts.jobs = 4;
  const auto results =
      exp::Runner(opts).run(grid, [](const exp::RunSpec& spec) {
        if (spec.name == "beta" && spec.replicate == 1)
          throw std::runtime_error("synthetic failure");
        return fake_scenario(spec);
      });

  ASSERT_EQ(results.runs().size(), 6u);
  EXPECT_EQ(results.num_errors(), 1u);
  for (const auto& r : results.runs()) {
    if (r.spec.name == "beta" && r.spec.replicate == 1) {
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.error, "synthetic failure");
      EXPECT_TRUE(r.metrics.empty());
    } else {
      EXPECT_TRUE(r.ok) << r.spec.id();
      EXPECT_FALSE(r.metrics.empty());
    }
  }
  // The errored replicate is excluded from its case aggregate.
  for (const auto& agg : results.aggregate()) {
    if (agg.name == "beta") {
      EXPECT_EQ(agg.n_ok, 1u);
      EXPECT_EQ(agg.n_error, 1u);
    } else {
      EXPECT_EQ(agg.n_ok, 2u);
      EXPECT_EQ(agg.n_error, 0u);
    }
  }
}

TEST(ExpRunner, ManyMoreRunsThanThreadsAllComplete) {
  exp::Grid g;
  g.master_seed(3).replicates(25);
  g.add_case("only");
  exp::RunnerOptions opts;
  opts.jobs = 8;
  std::atomic<int> calls{0};
  const auto results = exp::Runner(opts).run(g, [&](const exp::RunSpec& s) {
    calls.fetch_add(1);
    return fake_scenario(s);
  });
  EXPECT_EQ(calls.load(), 25);
  EXPECT_EQ(results.runs().size(), 25u);
  EXPECT_EQ(results.num_errors(), 0u);
}

TEST(ExpResults, AggregateComputesMeanStddevAndCi) {
  std::vector<exp::RunResult> runs;
  const double values[] = {10.0, 12.0, 14.0};  // mean 12, stddev 2
  for (int i = 0; i < 3; ++i) {
    exp::RunResult r;
    r.spec.name = "case";
    r.spec.replicate = i;
    r.ok = true;
    r.metrics.set("v", values[i]);
    runs.push_back(std::move(r));
  }
  const auto aggs = exp::Results(std::move(runs)).aggregate();
  ASSERT_EQ(aggs.size(), 1u);
  ASSERT_EQ(aggs[0].metrics.size(), 1u);
  const auto& m = aggs[0].metrics[0];
  EXPECT_EQ(m.name, "v");
  EXPECT_EQ(m.n, 3u);
  EXPECT_DOUBLE_EQ(m.mean, 12.0);
  EXPECT_DOUBLE_EQ(m.stddev, 2.0);
  // t_{0.975,2} * s / sqrt(3) = 4.303 * 2 / 1.732...
  EXPECT_NEAR(m.ci95, 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(ExpResults, JsonContainsSchemaFieldsAndEscapes) {
  std::vector<exp::RunResult> runs;
  exp::RunResult ok;
  ok.spec.name = "quoted\"name";
  ok.spec.point.set("k", "v");
  ok.spec.seed = 9;
  ok.ok = true;
  ok.metrics.set("thrput", 123.5);
  runs.push_back(ok);
  exp::RunResult bad;
  bad.spec.name = "boom";
  bad.spec.replicate = 1;
  bad.ok = false;
  bad.error = "line1\nline2";
  runs.push_back(bad);

  const std::string json = exp::Results(std::move(runs))
                               .to_json("unit", 7, 2, 4, 1.25, {{"d", "40"}});
  EXPECT_NE(json.find("\"experiment\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"master_seed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"replicates\":2"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"quoted\\\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"thrput\":123.5"), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"line1\\nline2\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds_total\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"aggregates\""), std::string::npos);
  // Structurally balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExpRunner, TransientErrorIsRetriedWithRecordedCount) {
  exp::Grid g;
  g.master_seed(2).replicates(1);
  g.add_case("flaky");
  g.add_case("solid");
  exp::RunnerOptions opts;
  opts.jobs = 2;
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 0.001;

  std::atomic<int> flaky_calls{0};
  const auto results = exp::Runner(opts).run(g, [&](const exp::RunSpec& s) {
    if (s.name == "flaky" && flaky_calls.fetch_add(1) < 2)
      throw exp::TransientError("spurious");
    return fake_scenario(s);
  });

  EXPECT_EQ(flaky_calls.load(), 3);  // 2 failures + 1 success
  EXPECT_EQ(results.num_errors(), 0u);
  for (const auto& r : results.runs()) {
    EXPECT_TRUE(r.ok) << r.spec.id();
    EXPECT_FALSE(r.timed_out);
    EXPECT_EQ(r.retries, r.spec.name == "flaky" ? 2 : 0) << r.spec.id();
  }
  const std::string json =
      exp::Results(results.runs()).to_json("unit", 2, 1, 2, 0.0, {});
  EXPECT_NE(json.find("\"retries\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"timed_out\""), std::string::npos);
}

TEST(ExpRunner, TransientErrorExhaustsRetriesIntoErrorRow) {
  exp::Grid g;
  g.master_seed(2).replicates(1);
  g.add_case("doomed");
  exp::RunnerOptions opts;
  opts.jobs = 1;
  opts.max_retries = 2;
  opts.retry_backoff_seconds = 0.001;

  std::atomic<int> calls{0};
  const auto results =
      exp::Runner(opts).run(g, [&](const exp::RunSpec&) -> exp::Metrics {
        calls.fetch_add(1);
        throw exp::TransientError("always transient");
      });

  EXPECT_EQ(calls.load(), 3);  // initial attempt + 2 retries
  ASSERT_EQ(results.runs().size(), 1u);
  EXPECT_FALSE(results.runs()[0].ok);
  EXPECT_EQ(results.runs()[0].retries, 2);
  EXPECT_EQ(results.runs()[0].error, "always transient");
}

TEST(ExpRunner, DeterministicFailureIsNotRetried) {
  exp::Grid g;
  g.master_seed(2).replicates(1);
  g.add_case("broken");
  exp::RunnerOptions opts;
  opts.jobs = 1;
  opts.max_retries = 5;  // generous budget that must go unused

  std::atomic<int> calls{0};
  const auto results =
      exp::Runner(opts).run(g, [&](const exp::RunSpec&) -> exp::Metrics {
        calls.fetch_add(1);
        throw std::runtime_error("deterministic bug");
      });

  EXPECT_EQ(calls.load(), 1);  // a plain exception never retries
  ASSERT_EQ(results.runs().size(), 1u);
  EXPECT_FALSE(results.runs()[0].ok);
  EXPECT_EQ(results.runs()[0].retries, 0);
  EXPECT_EQ(results.runs()[0].error, "deterministic bug");
}

TEST(ExpRunner, WedgedRunIsKilledByTimeoutWithoutBlockingOthers) {
  exp::Grid g;
  g.master_seed(4).replicates(1);
  g.add_case("wedged");
  g.add_case("fine-1");
  g.add_case("fine-2");
  exp::RunnerOptions opts;
  opts.jobs = 2;
  opts.timeout_seconds = 0.2;
  opts.max_retries = 3;  // timeouts must NOT consume retries

  std::atomic<int> wedged_calls{0};
  const auto results = exp::Runner(opts).run(g, [&](const exp::RunSpec& s) {
    if (s.name == "wedged") {
      wedged_calls.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    }
    return fake_scenario(s);
  });

  EXPECT_EQ(wedged_calls.load(), 1);  // abandoned, never retried
  ASSERT_EQ(results.runs().size(), 3u);
  EXPECT_EQ(results.num_errors(), 1u);
  for (const auto& r : results.runs()) {
    if (r.spec.name == "wedged") {
      EXPECT_FALSE(r.ok);
      EXPECT_TRUE(r.timed_out);
      EXPECT_EQ(r.retries, 0);
      EXPECT_NE(r.error.find("timeout"), std::string::npos) << r.error;
    } else {
      EXPECT_TRUE(r.ok) << r.spec.id();
      EXPECT_FALSE(r.timed_out);
    }
  }
  const std::string json =
      exp::Results(results.runs()).to_json("unit", 4, 1, 2, 0.0, {});
  EXPECT_NE(json.find("\"timed_out\":true"), std::string::npos);
  // The abandoned worker thread may still be sleeping when the test body
  // ends; give it time to drain so its write to `wedged_calls` (and gtest's
  // teardown) cannot race process exit under TSan.
  std::this_thread::sleep_for(std::chrono::milliseconds(1600));
}

TEST(ExpResults, LegacyJsonHasNoRobustnessKeysWhenUnused) {
  std::vector<exp::RunResult> runs;
  exp::RunResult ok;
  ok.spec.name = "plain";
  ok.ok = true;
  ok.metrics.set("v", 1.0);
  runs.push_back(ok);
  const std::string json =
      exp::Results(std::move(runs)).to_json("unit", 1, 1, 1, 0.0, {});
  EXPECT_EQ(json.find("\"retries\""), std::string::npos);
  EXPECT_EQ(json.find("\"timed_out\""), std::string::npos);
}

// End-to-end: a real (tiny) tertiary-tree scenario through the pool is
// thread-count independent. This is the TSan target for the race gate.
TEST(ExpRunner, TreeScenarioIsThreadCountIndependent) {
  exp::Grid g;
  g.master_seed(1).replicates(2);
  g.add_case("L1", exp::Point{}.set(
                       "case", static_cast<std::int64_t>(topo::TreeCase::kL1)));
  g.add_case("L4All",
             exp::Point{}.set("case", static_cast<std::int64_t>(
                                          topo::TreeCase::kL4All)));

  const exp::RunFn run = [](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck =
        static_cast<topo::TreeCase>(spec.point.get_int("case", 0));
    cfg.duration = 12.0;
    cfg.warmup = 4.0;
    cfg.seed = spec.seed;
    const auto res = topo::run_tertiary_tree(cfg);
    exp::Metrics m;
    m.set("rla.thrput_pps", res.rla[0].throughput_pps);
    m.set("wtcp.thrput_pps", res.worst_tcp().throughput_pps);
    m.set("rla.signals", static_cast<double>(res.rla[0].cong_signals));
    return m;
  };

  exp::RunnerOptions serial;
  serial.jobs = 1;
  exp::RunnerOptions parallel;
  parallel.jobs = 4;
  const auto r1 = exp::Runner(serial).run(g, run);
  const auto r4 = exp::Runner(parallel).run(g, run);

  ASSERT_EQ(r1.runs().size(), 4u);
  ASSERT_EQ(r4.runs().size(), 4u);
  for (std::size_t i = 0; i < r1.runs().size(); ++i) {
    EXPECT_TRUE(r1.runs()[i].ok);
    EXPECT_TRUE(r1.runs()[i].metrics == r4.runs()[i].metrics)
        << r1.runs()[i].spec.id();
  }
}

}  // namespace
}  // namespace rlacast
