// Structural failure & self-healing, end to end on the tertiary tree:
// failover re-grafting over precomputed backup parents, sender-side
// subtree excision / re-admission, crash-vs-partition semantics, and
// receiver churn racing a partition window.  The invariant watchdog runs
// in every scenario, so census sanity (num_trouble <= active) and window
// bounds are asserted once per simulated second throughout.
#include <gtest/gtest.h>

#include "cc/troubled_census.hpp"
#include "topo/tertiary_tree.hpp"

namespace rlacast::topo {
namespace {

TreeConfig base_cfg() {
  TreeConfig cfg;
  cfg.bottleneck = TreeCase::kL4All;
  cfg.duration = 80.0;
  cfg.warmup = 10.0;
  cfg.watchdog = true;
  return cfg;
}

TEST(Partition, FailoverRegraftsPartitionedSubtree) {
  // G31's uplink is partitioned for 10 s; the backup parent (G22) carries
  // the subtree after the detection delay and the primary takes it back on
  // heal.  Nobody needed excising and the membership is intact.
  TreeConfig cfg = base_cfg();
  cfg.partitions.push_back({/*level=*/3, /*index=*/1, 20.0, 30.0, false});
  cfg.backup_paths = true;
  const auto res = run_tertiary_tree(cfg);
  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_GE(res.failover_events, 1u);
  EXPECT_GE(res.failover_reverts, 1u);
  EXPECT_GT(res.packets_rerouted, 0u);
  EXPECT_EQ(res.subtree_excisions, 0u);
  EXPECT_EQ(res.active_receivers_final, 27);
  EXPECT_GT(res.rla[0].throughput_pps, 0.0);
  EXPECT_GT(res.fault_outage_drops, 0u);  // the dead interface did discard
}

TEST(Partition, MidLevelPartitionFailsOverViaSibling) {
  // Partitioning G21's uplink darkens nine leaves at once; the G2-sibling
  // backup (G22 -> G21) restores them without any session-level surgery.
  TreeConfig cfg = base_cfg();
  cfg.partitions.push_back({/*level=*/2, /*index=*/1, 20.0, 30.0, false});
  cfg.backup_paths = true;
  const auto res = run_tertiary_tree(cfg);
  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_GE(res.failover_events, 1u);
  EXPECT_GE(res.failover_reverts, 1u);
  EXPECT_EQ(res.active_receivers_final, 27);
  EXPECT_GT(res.rla[0].throughput_pps, 0.0);
}

TEST(Partition, ExcisionThenReadmission) {
  // No backup paths: the sender's structural detector must excise the
  // silent subtree (3 members, one event), keep the survivors moving, and
  // re-admit the subtree through the ramp after the heal.
  TreeConfig cfg = base_cfg();
  cfg.partitions.push_back({/*level=*/3, /*index=*/1, 20.0, 30.0, false});
  cfg.rla.degrade.enabled = true;
  const auto res = run_tertiary_tree(cfg);
  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_EQ(res.failover_events, 0u);  // no manager without backup_paths
  EXPECT_GE(res.subtree_excisions, 1u);
  EXPECT_GE(res.subtree_readmissions, 1u);
  ASSERT_FALSE(res.subtree_events.empty());
  const rla::SubtreeEvent& ev = res.subtree_events.front();
  EXPECT_EQ(ev.members_excised, 3);
  EXPECT_GE(ev.time_to_excise, cfg.rla.degrade.silence_after);
  EXPECT_GE(ev.healed_at, 30.0);  // cannot heal before the partition ends
  EXPECT_GE(ev.readmitted_at, ev.healed_at);
  EXPECT_EQ(ev.members_readmitted, 3);
  EXPECT_GT(ev.survivor_goodput_pps, 0.0);
  EXPECT_GT(res.ramp_rexmits, 0u);
  EXPECT_EQ(res.active_receivers_final, 27);  // everyone back
}

TEST(Partition, RouterCrashBypassesFailoverAndExcises) {
  // A crashed G31 downs its backup uplink too (NodeFailure is atomic over
  // the router's interfaces): failover has nothing to flip to and stays
  // quiet; excision + re-admission own the episode.
  TreeConfig cfg = base_cfg();
  cfg.partitions.push_back({/*level=*/3, /*index=*/1, 20.0, 30.0,
                            /*router_crash=*/true});
  cfg.backup_paths = true;
  cfg.rla.degrade.enabled = true;
  const auto res = run_tertiary_tree(cfg);
  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_EQ(res.failover_events, 0u);
  EXPECT_GE(res.subtree_excisions, 1u);
  EXPECT_GE(res.subtree_readmissions, 1u);
  EXPECT_EQ(res.active_receivers_final, 27);
}

TEST(Partition, SurvivorsKeepGoodputDuringExcision) {
  // The point of graceful degradation: while the subtree is out, the
  // 24 survivors' frontier keeps advancing at a healthy rate instead of
  // grinding through RTO storms against dead members.
  TreeConfig cfg = base_cfg();
  cfg.partitions.push_back({/*level=*/3, /*index=*/1, 20.0, 40.0, false});
  cfg.rla.degrade.enabled = true;
  const auto res = run_tertiary_tree(cfg);
  ASSERT_FALSE(res.subtree_events.empty());
  // Survivor goodput within the episode is a substantial fraction of the
  // session's overall post-warmup rate (not a stalled session).
  EXPECT_GT(res.survivor_goodput_pps, 0.25 * res.rla[0].throughput_pps);
}

TEST(Partition, ChurnRejoinDuringPartitionStaysConsistent) {
  // Receivers leave and rejoin (fresh census index, old one stays
  // excluded) while one subtree is partitioned and later readmitted.  A
  // rejoin landing INSIDE its subtree's partition window creates a member
  // that cannot ACK until the heal; the census must never double-count an
  // incarnation and the session must not wedge.  The 1 Hz invariant
  // watchdog checks num_trouble <= active throughout.
  TreeConfig cfg = base_cfg();
  cfg.duration = 100.0;
  cfg.partitions.push_back({/*level=*/3, /*index=*/1, 20.0, 35.0, false});
  cfg.rla.degrade.enabled = true;
  cfg.rla.frontier_watchdog.enabled = true;
  cfg.churn_mean_interval = 1.0;  // ~100 leave events over the run
  cfg.churn_rejoin_after = 3.0;
  const auto res = run_tertiary_tree(cfg);
  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_GT(res.churn_leaves, 0u);
  EXPECT_GT(res.churn_joins, 0u);
  // One live incarnation per leaf, ever: actives can never exceed 27.
  EXPECT_LE(res.active_receivers_final, 27);
  EXPECT_GT(res.rla[0].throughput_pps, 0.0);
}

TEST(Partition, DefaultsRunNoStructuralMachinery) {
  // All-off config: no failover manager, no degradation state, no events.
  const auto res = run_tertiary_tree(base_cfg());
  EXPECT_EQ(res.failover_events, 0u);
  EXPECT_EQ(res.subtree_excisions, 0u);
  EXPECT_TRUE(res.subtree_events.empty());
  EXPECT_EQ(res.time_to_excise, -1.0);
  EXPECT_EQ(res.active_receivers_final, 27);
}

TEST(CensusReadmit, RestoresActiveMembershipWithFreshEpoch) {
  cc::TroubledCensus census(20.0, 0.25);
  for (int i = 0; i < 4; ++i) census.add_receiver();
  EXPECT_EQ(census.active_count(), 4);
  census.on_signal(1, 1.0);
  census.on_signal(1, 2.0);
  census.exclude(1);
  EXPECT_EQ(census.active_count(), 3);
  EXPECT_TRUE(census.excluded(1));
  census.readmit(1);
  EXPECT_EQ(census.active_count(), 4);
  EXPECT_FALSE(census.excluded(1));
  // Signal history must not survive the re-admission (fresh epoch).
  EXPECT_EQ(census.recompute(3.0), 0);
  // Idempotent: readmitting an active member changes nothing.
  census.readmit(1);
  EXPECT_EQ(census.active_count(), 4);
}

}  // namespace
}  // namespace rlacast::topo
