// Tests for the deterministic random streams: reproducibility, stream
// independence, distribution sanity (uniformity moments), and the replay
// subsystem's draw-site auditing (draw_count, observer hooks, the
// duplicate-stream-label assert).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "replay/snapshot.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace rlacast::sim {
namespace {

TEST(SeedSequence, SameNameSameSeed) {
  SeedSequence a(42), b(42);
  EXPECT_EQ(a.seed_for("red-queue-0"), b.seed_for("red-queue-0"));
}

TEST(SeedSequence, DifferentNamesDifferentSeeds) {
  SeedSequence s(42);
  EXPECT_NE(s.seed_for("red-queue-0"), s.seed_for("red-queue-1"));
  EXPECT_NE(s.seed_for("a"), s.seed_for("b"));
}

TEST(SeedSequence, DifferentMasterDifferentSeeds) {
  SeedSequence a(1), b(2);
  EXPECT_NE(a.seed_for("x"), b.seed_for("x"));
}

TEST(Rng, ReproducibleSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng r(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum2 / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.5);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 3.5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ChanceFrequencyMatches) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(17);
  bool seen_lo = false, seen_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    seen_lo |= v == 0;
    seen_hi |= v == 5;
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, DrawCountIsMonotonicAcrossAllDrawKinds) {
  Rng r(21);
  EXPECT_EQ(r.draw_count(), 0u);
  r.uniform();
  EXPECT_EQ(r.draw_count(), 1u);
  r.uniform(2.0, 3.0);  // counts once (implemented via uniform())
  EXPECT_EQ(r.draw_count(), 2u);
  r.uniform_int(0, 9);
  EXPECT_EQ(r.draw_count(), 3u);
  r.exponential(1.0);
  EXPECT_EQ(r.draw_count(), 4u);
  r.chance(0.5);
  EXPECT_EQ(r.draw_count(), 5u);
}

/// Minimal observer recording (stream, index) pairs.
struct DrawLog final : replay::RunObserver {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> draws;
  std::vector<std::string> streams;
  std::uint32_t on_stream(std::string_view label) override {
    streams.emplace_back(label);
    return static_cast<std::uint32_t>(streams.size() - 1);
  }
  void on_draw(std::uint32_t stream, std::uint64_t index) override {
    draws.emplace_back(stream, index);
  }
  void on_dispatch(std::uint64_t, double) override {}
  void attach(std::string, const replay::Snapshotable*) override {}
  void detach(const replay::Snapshotable*) override {}
};

TEST(Rng, ObservedStreamReportsOneBasedDrawIndices) {
  DrawLog log;
  Simulator sim(7);
  sim.set_observer(&log);
  Rng a = sim.rng_stream("test-stream-a");
  Rng b = sim.rng_stream("test-stream-b");
  a.uniform();
  b.uniform();
  a.uniform();
  ASSERT_EQ(log.streams.size(), 2u);
  EXPECT_EQ(log.streams[0], "test-stream-a");
  ASSERT_EQ(log.draws.size(), 3u);
  EXPECT_EQ(log.draws[0], (std::pair<std::uint32_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(log.draws[1], (std::pair<std::uint32_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(log.draws[2], (std::pair<std::uint32_t, std::uint64_t>{0, 2}));
}

TEST(Rng, ObservedStreamDrawsSameValuesAsUnobserved) {
  DrawLog log;
  Simulator observed(7), plain(7);
  observed.set_observer(&log);
  Rng a = observed.rng_stream("value-stream");
  Rng b = plain.rng_stream("value-stream");
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

#ifndef NDEBUG
TEST(RngDeathTest, DuplicateStreamLabelAsserts) {
  EXPECT_DEATH(
      {
        Simulator sim(1);
        sim.rng_stream("dup-label");
        sim.rng_stream("dup-label");
      },
      "duplicate RNG stream label");
}
#endif

}  // namespace
}  // namespace rlacast::sim
