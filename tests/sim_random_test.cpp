// Tests for the deterministic random streams: reproducibility, stream
// independence, and distribution sanity (uniformity moments).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace rlacast::sim {
namespace {

TEST(SeedSequence, SameNameSameSeed) {
  SeedSequence a(42), b(42);
  EXPECT_EQ(a.seed_for("red-queue-0"), b.seed_for("red-queue-0"));
}

TEST(SeedSequence, DifferentNamesDifferentSeeds) {
  SeedSequence s(42);
  EXPECT_NE(s.seed_for("red-queue-0"), s.seed_for("red-queue-1"));
  EXPECT_NE(s.seed_for("a"), s.seed_for("b"));
}

TEST(SeedSequence, DifferentMasterDifferentSeeds) {
  SeedSequence a(1), b(2);
  EXPECT_NE(a.seed_for("x"), b.seed_for("x"));
}

TEST(Rng, ReproducibleSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng r(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum2 / n - (sum / n) * (sum / n), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.5);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 3.5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ChanceFrequencyMatches) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(17);
  bool seen_lo = false, seen_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    seen_lo |= v == 0;
    seen_hi |= v == 5;
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

}  // namespace
}  // namespace rlacast::sim
