// Scenario-builder tests for the flat (Figure 1 / Figure 2) topology:
// wiring correctness, measurement plumbing, and configuration knobs.
#include <gtest/gtest.h>

#include "topo/flat_tree.hpp"

namespace rlacast::topo {
namespace {

FlatTreeConfig tiny() {
  FlatTreeConfig cfg;
  cfg.branches = {{200.0, 1}, {200.0, 2}};
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  return cfg;
}

TEST(FlatTree, RowCountsMatchConfig) {
  const auto res = run_flat_tree(tiny());
  EXPECT_EQ(res.tcps.size(), 3u);  // 1 + 2 TCPs
  EXPECT_EQ(res.tcp_branch, (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(res.rla_signals_per_receiver.size(), 2u);
  EXPECT_EQ(res.bottleneck_drop_rate.size(), 2u);
}

TEST(FlatTree, AllFlowsMakeProgress) {
  const auto res = run_flat_tree(tiny());
  EXPECT_GT(res.rla.throughput_pps, 1.0);
  for (const auto& t : res.tcps) EXPECT_GT(t.throughput_pps, 1.0);
}

TEST(FlatTree, RttMatchesTopologyDelays) {
  // 3 hops of 5 ms each way = 30 ms propagation floor; queueing adds more.
  const auto res = run_flat_tree(tiny());
  EXPECT_GT(res.rla.avg_rtt, 0.030);
  EXPECT_LT(res.rla.avg_rtt, 0.5);
  for (const auto& t : res.tcps) {
    EXPECT_GT(t.avg_rtt, 0.029);
    EXPECT_LT(t.avg_rtt, 0.5);
  }
}

TEST(FlatTree, WithoutMulticastRunsTcpOnly) {
  FlatTreeConfig cfg = tiny();
  cfg.with_multicast = false;
  const auto res = run_flat_tree(cfg);
  EXPECT_DOUBLE_EQ(res.rla.throughput_pps, 0.0);
  EXPECT_GT(res.tcps[0].throughput_pps, 50.0);
}

TEST(FlatTree, SharedBottleneckReportsSingleQueue) {
  FlatTreeConfig cfg = tiny();
  cfg.shared_bottleneck_pps = 400.0;
  const auto res = run_flat_tree(cfg);
  EXPECT_EQ(res.bottleneck_drop_rate.size(), 1u);
}

TEST(FlatTree, BottleneckCapacityCapsThroughput) {
  FlatTreeConfig cfg = tiny();
  cfg.branches = {{100.0, 0}};
  const auto res = run_flat_tree(cfg);
  EXPECT_LE(res.rla.throughput_pps, 101.0);
}

TEST(FlatTree, RedGatewayProducesDrops) {
  FlatTreeConfig cfg = tiny();
  cfg.gateway = GatewayType::kRed;
  const auto res = run_flat_tree(cfg);
  // With demand exceeding capacity, RED must be shedding load.
  double total_drop = 0.0;
  for (double d : res.bottleneck_drop_rate) total_drop += d;
  EXPECT_GT(total_drop, 0.0);
}

TEST(FlatTree, ExtraDelayMakesHeterogeneousRtts) {
  FlatTreeConfig cfg = tiny();
  cfg.branches = {{200.0, 1, 0.0}, {200.0, 1, 0.1}};  // 100 ms extra on b1
  cfg.duration = 80.0;
  const auto res = run_flat_tree(cfg);
  // The TCP on the distant branch measures a much larger RTT.
  ASSERT_EQ(res.tcps.size(), 2u);
  EXPECT_GT(res.tcps[1].avg_rtt, res.tcps[0].avg_rtt + 0.15);
}

TEST(FlatTree, GeneralizedRlaHelpsOnHeterogeneousRtts) {
  // One near and three far receivers; the generalized pthresh (k=2) should
  // give the multicast a larger share than the original RLA (k=0), which
  // over-listens to the chatty near receiver.
  auto run = [](double k) {
    FlatTreeConfig cfg;
    cfg.branches = {{200.0, 1, 0.0},
                    {200.0, 1, 0.1},
                    {200.0, 1, 0.1},
                    {200.0, 1, 0.1}};
    cfg.rla.rtt_exponent = k;
    cfg.duration = 260.0;
    cfg.warmup = 60.0;
    cfg.seed = 5;
    return run_flat_tree(cfg).rla.throughput_pps;
  };
  const double original = run(0.0);
  const double generalized = run(2.0);
  EXPECT_GT(generalized, original);
}

TEST(FlatTree, SeedChangesOutcomeDeterministically) {
  FlatTreeConfig a = tiny(), b = tiny(), c = tiny();
  c.seed = 99;
  const auto ra = run_flat_tree(a);
  const auto rb = run_flat_tree(b);
  const auto rc = run_flat_tree(c);
  EXPECT_DOUBLE_EQ(ra.rla.throughput_pps, rb.rla.throughput_pps);
  EXPECT_NE(ra.rla.window_cuts, rc.rla.window_cuts);
}

}  // namespace
}  // namespace rlacast::topo
