// Tests for the fork-based crash sandbox (exp/sandbox.hpp) and its runner
// integration (--isolate): a SIGSEGV'd run becomes a contained crashed=true
// row with a crash report while the sweep completes; timeouts are SIGKILLed
// and classified separately; rlimits bound runaway children; and the
// timeout claimed-flag handoff never lets an abandoned attempt publish.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "exp/runner.hpp"
#include "exp/sandbox.hpp"
#include "exp/spec.hpp"

// Fork-based sandboxing interacts badly with sanitizer runtimes (TSan
// refuses fork-from-threaded, ASan intercepts the crash signals), so the
// sandbox tests skip themselves under either.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define RLACAST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define RLACAST_SANITIZED 1
#endif
#endif

namespace rlacast {
namespace {

exp::Grid crashy_grid() {
  exp::Grid g;
  g.master_seed(3).replicates(1);
  g.add_case("ok-before", exp::Point{}.set("mode", "ok"));
  g.add_case("boom", exp::Point{}.set("mode", "segv"));
  g.add_case("ok-after", exp::Point{}.set("mode", "ok"));
  return g;
}

/// Scenario with per-case failure modes, selected by the spec point.
exp::Metrics crashy_scenario(const exp::RunSpec& spec) {
  const std::string mode = spec.point.get("mode", "ok");
  if (mode == "segv") std::raise(SIGSEGV);
  if (mode == "spin") {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  exp::Metrics m;
  m.set("value", static_cast<double>(spec.seed));
  return m;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(Sandbox, CompletedRunDeliversMetricsThroughThePipe) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunSpec spec;
  spec.name = "ok";
  spec.seed = 99;
  const exp::IsolateOutcome out =
      exp::run_isolated(crashy_scenario, spec, {}, /*timeout_seconds=*/0.0);
  EXPECT_TRUE(out.completed);
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.crashed);
  EXPECT_FALSE(out.timed_out);
  EXPECT_DOUBLE_EQ(out.metrics.get("value"), 99.0);
}

TEST(Sandbox, ChildExceptionBecomesErrorNotCrash) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunSpec spec;
  const exp::IsolateOutcome out = exp::run_isolated(
      [](const exp::RunSpec&) -> exp::Metrics {
        throw std::runtime_error("bad parameter");
      },
      spec, {}, 0.0);
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.crashed);
  EXPECT_EQ(out.error, "bad parameter");
}

TEST(Sandbox, SigsegvIsContainedAndClassified) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunSpec spec;
  spec.name = "boom";
  spec.point.set("mode", "segv");
  const exp::IsolateOutcome out =
      exp::run_isolated(crashy_scenario, spec, {}, 0.0);
  EXPECT_FALSE(out.completed);
  EXPECT_TRUE(out.crashed);
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(out.term_signal, SIGSEGV);
  EXPECT_NE(out.describe().find("signal"), std::string::npos);
}

TEST(Sandbox, TimeoutIsKilledAndClassifiedSeparately) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunSpec spec;
  spec.point.set("mode", "spin");
  const exp::IsolateOutcome out =
      exp::run_isolated(crashy_scenario, spec, {}, /*timeout_seconds=*/0.3);
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.completed);
  EXPECT_FALSE(out.crashed);
}

TEST(Sandbox, CpuRlimitKillsARunawayChild) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunSpec spec;
  exp::IsolateLimits limits;
  limits.cpu_seconds = 1.0;
  const exp::IsolateOutcome out = exp::run_isolated(
      [](const exp::RunSpec&) -> exp::Metrics {
        volatile double x = 0.0;
        for (;;) x += 1.0;  // pure CPU burn, no sleeps
      },
      spec, limits, /*timeout_seconds=*/30.0);
  EXPECT_TRUE(out.crashed);
  EXPECT_FALSE(out.timed_out);
  EXPECT_TRUE(out.term_signal == SIGXCPU || out.term_signal == SIGKILL)
      << out.describe();
}

TEST(IsolateRunner, CrashedRunIsContainedAndSweepCompletes) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  const std::string crash_dir =
      testing::TempDir() + "/isolate_crash_test_reports";
  std::filesystem::remove_all(crash_dir);

  exp::RunnerOptions opts;
  opts.isolate = true;
  opts.crash_dir = crash_dir;
  opts.crash_context = [](const exp::RunSpec& spec) {
    return "repro: bench_fake --replay journals/" + spec.name + ".journal";
  };
  exp::Runner runner(opts);
  const exp::Results results = runner.run(crashy_grid(), crashy_scenario);

  ASSERT_EQ(results.runs().size(), 3u);
  const exp::RunResult& before = results.runs()[0];
  const exp::RunResult& boom = results.runs()[1];
  const exp::RunResult& after = results.runs()[2];

  // The sweep survived the crash: both neighbours completed normally.
  EXPECT_TRUE(before.ok);
  EXPECT_TRUE(after.ok);
  EXPECT_DOUBLE_EQ(after.metrics.get("value"),
                   static_cast<double>(after.spec.seed));

  EXPECT_FALSE(boom.ok);
  EXPECT_TRUE(boom.crashed);
  EXPECT_EQ(boom.term_signal, SIGSEGV);
  ASSERT_FALSE(boom.crash_report.empty());

  const std::string report = read_file(boom.crash_report);
  EXPECT_NE(report.find("crash report: boom/mode=segv#0"), std::string::npos)
      << report;
  EXPECT_NE(report.find("signal"), std::string::npos) << report;
  EXPECT_NE(report.find("repro: bench_fake --replay"), std::string::npos)
      << report;

  // The crash columns reach results.json.
  const std::string json = results.to_json("crash-test", 3, 1, 1, 0.0);
  EXPECT_NE(json.find("\"crashed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"crash_report\":"), std::string::npos);

  std::filesystem::remove_all(crash_dir);
}

TEST(IsolateRunner, NoCrashDirMeansNoReportButStillContained) {
#ifdef RLACAST_SANITIZED
  GTEST_SKIP() << "fork sandbox is incompatible with sanitizer runtimes";
#endif
  exp::RunnerOptions opts;
  opts.isolate = true;  // crash_dir left empty
  exp::Runner runner(opts);
  const exp::Results results = runner.run(crashy_grid(), crashy_scenario);
  ASSERT_EQ(results.runs().size(), 3u);
  EXPECT_TRUE(results.runs()[1].crashed);
  EXPECT_TRUE(results.runs()[1].crash_report.empty());
  EXPECT_TRUE(results.runs()[2].ok);
}

TEST(RunnerTimeout, AbandonedAttemptCannotPublishAfterTheClaim) {
  // Regression for the detached-thread handoff: an attempt finishing AFTER
  // the waiter timed out must never overwrite the timeout row. The worker
  // sleeps past the limit, then "finishes" — the claimed flag makes its
  // publish a no-op.
  exp::Grid g;
  g.master_seed(1).replicates(1);
  g.add_case("slow");
  exp::RunnerOptions opts;
  opts.timeout_seconds = 0.05;
  exp::Runner runner(opts);
  const exp::Results results =
      runner.run(g, [](const exp::RunSpec&) -> exp::Metrics {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        exp::Metrics m;
        m.set("late", 1.0);
        return m;
      });
  ASSERT_EQ(results.runs().size(), 1u);
  EXPECT_TRUE(results.runs()[0].timed_out);
  EXPECT_FALSE(results.runs()[0].ok);
  // Give the abandoned thread time to finish and (incorrectly) publish —
  // the result row must stay a timeout with no metrics.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(results.runs()[0].timed_out);
  EXPECT_TRUE(results.runs()[0].metrics.empty());
}

}  // namespace
}  // namespace rlacast
