// Feedback-plane hardening unit tests:
//
//   * ReceiverAdversary model semantics — the signal-storm hole state
//     machine (freeze ack, carry real progress in SACK, cooldown release),
//     srtt inflate/deflate timestamp rewrites, mute suppression, and the
//     flip-flop phase schedule;
//   * AdversaryPlan build/arm contract (last-write-wins, arm() validation,
//     totals aggregation);
//   * cc::robust_clamped_max median/MAD math;
//   * the TroubledCensus defense: median rate-check quarantine, the
//     quarantine -> probation -> rejoin state machine, strike escalation to
//     permanent exclusion, and no-false-positive behavior on honest skew;
//   * chaos draws: bit-identical per seed, within configured bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cc/troubled_census.hpp"
#include "fault/adversary.hpp"
#include "fault/chaos.hpp"

namespace rlacast {
namespace {

net::Packet make_ack(net::SeqNum cum, double ts_echo = 1.0) {
  net::Packet p;
  p.type = net::PacketType::kAck;
  p.ack = cum;
  p.ts_echo = ts_echo;
  return p;
}

// --- ReceiverAdversary -----------------------------------------------------

TEST(Adversary, HonestBeforeStart) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kMute;
  m.start = 100.0;
  fault::ReceiverAdversary adv(m);
  net::Packet ack = make_ack(7);
  const auto v = adv.on_ack(ack, 50.0);
  EXPECT_FALSE(v.suppress);
  EXPECT_EQ(v.extra_copies, 0);
  EXPECT_EQ(ack.ack, 7);
  EXPECT_EQ(adv.acks_withheld(), 0u);
}

TEST(Adversary, StormFreezesCumAndCarriesProgressInSack) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kSignalStorm;
  m.start = 10.0;
  m.hole_hold_acks = 3;
  m.storm_copies = 2;
  fault::ReceiverAdversary adv(m);

  // Honest phase establishes the sender frontier at 20.
  net::Packet warm = make_ack(20);
  adv.on_ack(warm, 5.0);

  // First stormed ACK: hole opens at the reported frontier (20); the real
  // cumulative point 25 rides in SACK block 0 as (hole, real_cum).
  net::Packet a1 = make_ack(25);
  const auto v1 = adv.on_ack(a1, 10.0);
  EXPECT_EQ(a1.ack, 20);
  ASSERT_GE(a1.n_sack, 1);
  EXPECT_EQ(a1.sack[0].lo, 21);
  EXPECT_EQ(a1.sack[0].hi, 25);
  EXPECT_EQ(v1.extra_copies, 2);
  EXPECT_FALSE(v1.suppress);
  EXPECT_EQ(adv.fake_holes(), 1u);
  EXPECT_EQ(adv.acks_tampered(), 1u);
  EXPECT_EQ(adv.extra_acks(), 2u);

  // The hole stays frozen while held (hole_hold_acks = 3 total).
  net::Packet a2 = make_ack(30);
  adv.on_ack(a2, 10.1);
  EXPECT_EQ(a2.ack, 20);
  net::Packet a3 = make_ack(35);
  adv.on_ack(a3, 10.2);
  EXPECT_EQ(a3.ack, 20);

  // Hold exhausted: one honest cooldown ACK lets the frontier catch up...
  net::Packet a4 = make_ack(40);
  const auto v4 = adv.on_ack(a4, 10.3);
  EXPECT_EQ(a4.ack, 40);
  EXPECT_EQ(v4.extra_copies, 0);

  // ...and the next hole opens at the caught-up frontier, not below it.
  net::Packet a5 = make_ack(45);
  adv.on_ack(a5, 10.4);
  EXPECT_EQ(a5.ack, 40);
  EXPECT_EQ(a5.sack[0].lo, 41);
  EXPECT_EQ(adv.fake_holes(), 2u);
}

TEST(Adversary, StormPreservesExistingSackBlocks) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kSignalStorm;
  m.start = 2.0;
  fault::ReceiverAdversary adv(m);
  net::Packet warm = make_ack(5);
  adv.on_ack(warm, 1.0);  // honest phase: frontier = 5
  net::Packet a = make_ack(9);
  a.sack[0] = net::SackBlock{40, 45};
  a.n_sack = 1;
  adv.on_ack(a, 3.0);  // hole opens at 5; real progress 9 rides in SACK
  ASSERT_EQ(a.n_sack, 2);
  EXPECT_EQ(a.ack, 5);
  EXPECT_EQ(a.sack[0].lo, 6);  // fabricated block first
  EXPECT_EQ(a.sack[0].hi, 9);
  EXPECT_EQ(a.sack[1].lo, 40);  // receiver's genuine block preserved
  EXPECT_EQ(a.sack[1].hi, 45);
}

TEST(Adversary, InflateShiftsEchoIntoPast) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kSrttInflate;
  m.start = 0.0;
  m.srtt_bias = 1.5;
  fault::ReceiverAdversary adv(m);
  net::Packet a = make_ack(5, /*ts_echo=*/10.0);
  adv.on_ack(a, 10.2);
  EXPECT_DOUBLE_EQ(a.ts_echo, 8.5);  // sample inflated by 1.5 s
  EXPECT_EQ(adv.acks_tampered(), 1u);

  // Never pushed to or below zero (a zero echo means "no sample").
  net::Packet b = make_ack(6, /*ts_echo=*/0.5);
  adv.on_ack(b, 10.4);
  EXPECT_GT(b.ts_echo, 0.0);

  // ts_echo <= 0 (no timestamp) is left alone.
  net::Packet c = make_ack(7, /*ts_echo=*/0.0);
  adv.on_ack(c, 10.6);
  EXPECT_DOUBLE_EQ(c.ts_echo, 0.0);
}

TEST(Adversary, DeflatePinsEchoNearNow) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kSrttDeflate;
  m.start = 0.0;
  m.deflate_to = 1e-3;
  fault::ReceiverAdversary adv(m);
  net::Packet a = make_ack(5, /*ts_echo=*/10.0);
  adv.on_ack(a, 12.0);
  EXPECT_DOUBLE_EQ(a.ts_echo, 12.0 - 1e-3);  // claims a 1 ms RTT

  // A genuinely smaller sample is not made LARGER by the lie.
  net::Packet b = make_ack(6, /*ts_echo=*/11.99995);
  adv.on_ack(b, 12.0);
  EXPECT_DOUBLE_EQ(b.ts_echo, 11.99995);
}

TEST(Adversary, MuteSuppressesEverything) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kMute;
  m.start = 5.0;
  fault::ReceiverAdversary adv(m);
  for (int i = 0; i < 10; ++i) {
    net::Packet a = make_ack(i);
    EXPECT_TRUE(adv.on_ack(a, 5.0 + i).suppress);
  }
  EXPECT_EQ(adv.acks_withheld(), 10u);
  EXPECT_EQ(adv.acks_tampered(), 0u);
}

TEST(Adversary, FlipFlopAlternatesStormAndMute) {
  fault::AdversaryModel m;
  m.kind = fault::AdversaryKind::kFlipFlop;
  m.start = 10.0;
  m.flip_period = 5.0;
  fault::ReceiverAdversary adv(m);
  net::Packet warm = make_ack(50);
  adv.on_ack(warm, 9.0);  // honest: frontier = 50

  // Phase 0 (t in [10, 15)): storm — tampered, not suppressed.
  net::Packet a = make_ack(55);
  const auto va = adv.on_ack(a, 12.0);
  EXPECT_FALSE(va.suppress);
  EXPECT_EQ(a.ack, 50);

  // Phase 1 (t in [15, 20)): mute.
  net::Packet b = make_ack(60);
  EXPECT_TRUE(adv.on_ack(b, 17.0).suppress);

  // Phase 2: storming again.
  net::Packet c = make_ack(65);
  EXPECT_FALSE(adv.on_ack(c, 21.0).suppress);
}

TEST(Adversary, PlanLastWriteWinsAndArmValidates) {
  fault::AdversaryPlan plan;
  EXPECT_TRUE(plan.empty());
  fault::AdversaryModel m1;
  m1.kind = fault::AdversaryKind::kMute;
  fault::AdversaryModel m2;
  m2.kind = fault::AdversaryKind::kSignalStorm;
  plan.corrupt(3, m1).corrupt(3, m2);
  EXPECT_EQ(plan.size(), 1u);  // last write wins, no duplicate entry

  // arm() refuses an index with no live receiver.
  std::vector<rla::RlaReceiver*> none;
  EXPECT_THROW(plan.arm(none), std::invalid_argument);
  std::vector<rla::RlaReceiver*> holes(5, nullptr);
  EXPECT_THROW(plan.arm(holes), std::invalid_argument);

  // Unarmed plans report zero totals.
  const auto t = plan.totals();
  EXPECT_EQ(t.acks_tampered + t.acks_withheld + t.extra_acks + t.fake_holes,
            0u);
}

TEST(Adversary, KindNamesAreStable) {
  EXPECT_STREQ(fault::adversary_kind_name(fault::AdversaryKind::kSignalStorm),
               "signal_storm");
  EXPECT_STREQ(fault::adversary_kind_name(fault::AdversaryKind::kSrttInflate),
               "srtt_inflate");
  EXPECT_STREQ(fault::adversary_kind_name(fault::AdversaryKind::kSrttDeflate),
               "srtt_deflate");
  EXPECT_STREQ(fault::adversary_kind_name(fault::AdversaryKind::kMute),
               "mute");
  EXPECT_STREQ(fault::adversary_kind_name(fault::AdversaryKind::kFlipFlop),
               "flip_flop");
}

// --- robust_clamped_max ----------------------------------------------------

TEST(RobustClamp, FewValuesFallBackToPlainMax) {
  std::vector<double> two{0.1, 9.0};
  EXPECT_DOUBLE_EQ(cc::robust_clamped_max(two, 4.0), 9.0);
  std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(cc::robust_clamped_max(one, 4.0), 3.0);
  std::vector<double> none;
  EXPECT_DOUBLE_EQ(cc::robust_clamped_max(none, 4.0), 0.0);
}

TEST(RobustClamp, DisabledKMadsIsPlainMax) {
  std::vector<double> vals{0.1, 0.11, 0.12, 0.1, 50.0};
  EXPECT_DOUBLE_EQ(cc::robust_clamped_max(vals, 0.0), 50.0);
}

TEST(RobustClamp, SingleLiarIsPulledToHonestSpread) {
  // Honest cohort around 0.1 s; one receiver claims 50 s.  The clamp must
  // land near the honest spread, nowhere near the lie.
  std::vector<double> vals{0.10, 0.11, 0.12, 0.09, 0.10, 50.0};
  const double clamped = cc::robust_clamped_max(vals, 4.0);
  EXPECT_LT(clamped, 0.5);
  EXPECT_GE(clamped, 0.10);  // never below the honest median
}

TEST(RobustClamp, IdenticalCohortClampsToMedian) {
  // MAD = 0: the liar is clamped (numerically) to the unanimous value.
  std::vector<double> vals{0.2, 0.2, 0.2, 0.2, 7.0};
  EXPECT_NEAR(cc::robust_clamped_max(vals, 4.0), 0.2, 1e-9);
}

TEST(RobustClamp, HonestMaxSurvives) {
  // Without a liar the clamp must not bite: max within the spread stays.
  std::vector<double> vals{0.10, 0.12, 0.11, 0.13, 0.105};
  EXPECT_DOUBLE_EQ(cc::robust_clamped_max(vals, 4.0), 0.13);
}

// --- census defense --------------------------------------------------------

cc::CensusDefenseParams fast_defense() {
  cc::CensusDefenseParams d;
  d.enabled = true;
  d.rate_factor = 8.0;
  d.probation_rate_factor = 8.0;
  d.min_signals = 4;
  d.quarantine_seconds = 5.0;
  d.probation_seconds = 5.0;
  d.max_strikes = 3;
  return d;
}

// Drives 4 honest receivers at a ~2 s signal period up to `until`.
void honest_traffic(cc::TroubledCensus& c, const std::vector<int>& honest,
                    double from, double until) {
  for (double t = from; t < until; t += 2.0)
    for (std::size_t j = 0; j < honest.size(); ++j)
      c.on_signal(honest[j], t + 0.05 * static_cast<double>(j));
}

TEST(CensusDefense, StormRateTriggersQuarantine) {
  cc::TroubledCensus c(20.0, 0.25);
  c.set_defense(fast_defense());
  std::vector<int> honest;
  for (int i = 0; i < 4; ++i) honest.push_back(c.add_receiver());
  const int liar = c.add_receiver();

  honest_traffic(c, honest, 2.0, 12.0);
  // Liar signals every 50 ms: its interval is ~40x below the ~2 s median.
  for (int k = 0; k < 40 && !c.excluded(liar); ++k)
    c.on_signal(liar, 12.0 + 0.05 * k);

  EXPECT_EQ(c.state(liar), cc::MemberState::kQuarantined);
  EXPECT_TRUE(c.excluded(liar));
  EXPECT_EQ(c.strikes(liar), 1);
  EXPECT_EQ(c.quarantines(), 1u);
  EXPECT_EQ(c.currently_quarantined(), 1);
  for (int h : honest) {
    EXPECT_EQ(c.state(h), cc::MemberState::kActive);
    EXPECT_FALSE(c.excluded(h));
  }
  // A quarantined member no longer counts as troubled.
  c.recompute(14.0);
  EXPECT_FALSE(c.troubled(liar));
}

TEST(CensusDefense, QuarantineServesIntoProbationThenActive) {
  cc::TroubledCensus c(20.0, 0.25);
  c.set_defense(fast_defense());
  std::vector<int> honest;
  for (int i = 0; i < 4; ++i) honest.push_back(c.add_receiver());
  const int liar = c.add_receiver();
  honest_traffic(c, honest, 2.0, 12.0);
  for (int k = 0; k < 40 && !c.excluded(liar); ++k)
    c.on_signal(liar, 12.0 + 0.05 * k);
  ASSERT_EQ(c.state(liar), cc::MemberState::kQuarantined);

  // Not served yet: no transition.
  EXPECT_TRUE(c.advance_states(14.0).empty());

  // Quarantine (5 s) served: the member rejoins on probation and its index
  // is reported so the sender can thaw its scoreboard.
  const auto rejoined = c.advance_states(20.0);
  ASSERT_EQ(rejoined.size(), 1u);
  EXPECT_EQ(rejoined[0], liar);
  EXPECT_EQ(c.state(liar), cc::MemberState::kProbation);
  EXPECT_FALSE(c.excluded(liar));
  // The rejoin starts a fresh census epoch: no stale storm history.
  EXPECT_LT(c.effective_interval(liar, 20.0), 0.0);

  // A clean probation window restores full membership; strikes persist.
  EXPECT_TRUE(c.advance_states(26.0).empty());
  EXPECT_EQ(c.state(liar), cc::MemberState::kActive);
  EXPECT_EQ(c.strikes(liar), 1);
}

TEST(CensusDefense, RepeatOffenderStrikesOut) {
  cc::CensusDefenseParams d = fast_defense();
  d.max_strikes = 2;
  cc::TroubledCensus c(20.0, 0.25);
  c.set_defense(d);
  std::vector<int> honest;
  for (int i = 0; i < 4; ++i) honest.push_back(c.add_receiver());
  const int liar = c.add_receiver();

  honest_traffic(c, honest, 2.0, 12.0);
  for (int k = 0; k < 40 && !c.excluded(liar); ++k)
    c.on_signal(liar, 12.0 + 0.05 * k);
  ASSERT_EQ(c.strikes(liar), 1);
  c.advance_states(20.0);  // -> probation

  // Keep the honest cohort's intervals fresh, then re-offend on probation.
  honest_traffic(c, honest, 20.0, 26.0);
  for (int k = 0; k < 40 && !c.excluded(liar); ++k)
    c.on_signal(liar, 26.0 + 0.05 * k);

  EXPECT_EQ(c.state(liar), cc::MemberState::kExcluded);
  EXPECT_EQ(c.strikes(liar), 2);
  EXPECT_EQ(c.strikeouts(), 1u);
  EXPECT_EQ(c.quarantines(), 2u);
  // Permanent: no timer ever releases kExcluded.
  EXPECT_TRUE(c.advance_states(1e9).empty());
  EXPECT_EQ(c.state(liar), cc::MemberState::kExcluded);
}

TEST(CensusDefense, HonestSkewIsNotQuarantined) {
  // Receivers with a 3x rate spread (well under rate_factor = 8) must all
  // stay active: the defense may not manufacture false positives.
  cc::TroubledCensus c(20.0, 0.25);
  c.set_defense(fast_defense());
  const int fast = c.add_receiver();
  const int mid1 = c.add_receiver();
  const int mid2 = c.add_receiver();
  const int slow = c.add_receiver();
  for (double t = 1.0; t < 60.0; t += 1.0) c.on_signal(fast, t);
  for (double t = 1.3; t < 60.0; t += 2.0) c.on_signal(mid1, t);
  for (double t = 1.6; t < 60.0; t += 2.0) c.on_signal(mid2, t);
  for (double t = 2.0; t < 60.0; t += 3.0) c.on_signal(slow, t);
  for (int i : {fast, mid1, mid2, slow})
    EXPECT_EQ(c.state(i), cc::MemberState::kActive) << "receiver " << i;
  EXPECT_EQ(c.quarantines(), 0u);
}

TEST(CensusDefense, DisabledDefenseNeverQuarantines) {
  cc::TroubledCensus c(20.0, 0.25);  // defense defaults to disabled
  std::vector<int> honest;
  for (int i = 0; i < 4; ++i) honest.push_back(c.add_receiver());
  const int liar = c.add_receiver();
  honest_traffic(c, honest, 2.0, 12.0);
  for (int k = 0; k < 200; ++k) c.on_signal(liar, 12.0 + 0.05 * k);
  EXPECT_FALSE(c.excluded(liar));
  EXPECT_EQ(c.quarantines(), 0u);
  EXPECT_TRUE(c.advance_states(1e9).empty());
  // The storming receiver drags the census minimum exactly as the paper's
  // undefended census would: it IS the troubled set's anchor.
  c.recompute(22.0);
  EXPECT_TRUE(c.troubled(liar));
}

// --- chaos draws -----------------------------------------------------------

TEST(Chaos, DrawIsDeterministicPerSeed) {
  const fault::ChaosConfig cfg;
  const auto a = fault::draw_chaos(cfg, 0xfeedULL, 27);
  const auto b = fault::draw_chaos(cfg, 0xfeedULL, 27);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.n_adversaries, b.n_adversaries);
  EXPECT_EQ(a.adversary_idx, b.adversary_idx);
  EXPECT_DOUBLE_EQ(a.ack_fault.loss_p, b.ack_fault.loss_p);
  EXPECT_DOUBLE_EQ(a.ack_fault.duplicate_p, b.ack_fault.duplicate_p);
  EXPECT_DOUBLE_EQ(a.ack_fault.max_jitter, b.ack_fault.max_jitter);
  EXPECT_DOUBLE_EQ(a.leaf_fault.loss_p, b.leaf_fault.loss_p);
  EXPECT_DOUBLE_EQ(a.flip_period, b.flip_period);
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(Chaos, DrawsStayInsideConfiguredBounds) {
  fault::ChaosConfig cfg;
  cfg.max_adversaries = 5;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const auto d = fault::draw_chaos(cfg, seed, 27);
    EXPECT_GE(d.n_adversaries, 0);
    EXPECT_LE(d.n_adversaries, 5);
    EXPECT_EQ(d.adversary_idx.size(),
              static_cast<std::size_t>(d.n_adversaries));
    for (std::size_t i = 0; i < d.adversary_idx.size(); ++i) {
      EXPECT_GE(d.adversary_idx[i], 0);
      EXPECT_LT(d.adversary_idx[i], 27);
      if (i > 0) {  // ascending and unique (distinct receivers)
        EXPECT_GT(d.adversary_idx[i], d.adversary_idx[i - 1]);
      }
    }
    EXPECT_GE(d.ack_fault.loss_p, 0.0);
    EXPECT_LE(d.ack_fault.loss_p, cfg.max_ack_loss_p);
    EXPECT_LE(d.ack_fault.duplicate_p, cfg.max_ack_dup_p);
    EXPECT_LE(d.ack_fault.max_jitter, cfg.max_ack_jitter);
    EXPECT_LE(d.leaf_fault.loss_p, cfg.max_leaf_loss_p);
    EXPECT_GE(d.flip_period, cfg.min_flip_period);
    EXPECT_LE(d.flip_period, cfg.max_flip_period);
    EXPECT_DOUBLE_EQ(d.adversary_start, cfg.adversary_start);
  }
}

TEST(Chaos, DifferentSeedsExploreTheSpace) {
  const fault::ChaosConfig cfg;
  bool any_difference = false;
  const auto first = fault::draw_chaos(cfg, 1, 27);
  for (std::uint64_t seed = 2; seed <= 16 && !any_difference; ++seed) {
    const auto d = fault::draw_chaos(cfg, seed, 27);
    any_difference = d.kind != first.kind ||
                     d.n_adversaries != first.n_adversaries ||
                     d.ack_fault.loss_p != first.ack_fault.loss_p;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Chaos, MaterializedAdversariesMatchTheDraw) {
  const fault::ChaosConfig cfg;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto d = fault::draw_chaos(cfg, seed, 27);
    const auto models = d.adversaries();
    ASSERT_EQ(models.size(), d.adversary_idx.size());
    for (std::size_t i = 0; i < models.size(); ++i) {
      EXPECT_EQ(models[i].first, d.adversary_idx[i]);
      EXPECT_EQ(models[i].second.kind, d.kind);
      EXPECT_DOUBLE_EQ(models[i].second.start, d.adversary_start);
      EXPECT_DOUBLE_EQ(models[i].second.flip_period, d.flip_period);
    }
  }
}

}  // namespace
}  // namespace rlacast
