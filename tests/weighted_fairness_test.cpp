// Tests for the §2 "ideal fairness" extension: the fairness weight w makes
// the multicast share a controllable multiple of the TCP share.
#include <gtest/gtest.h>

#include "topo/flat_tree.hpp"

namespace rlacast::rla {
namespace {

double share_ratio(double weight, std::uint64_t seed) {
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(3, topo::FlatBranch{300.0, 2});  // 3 flows per branch
  cfg.gateway = topo::GatewayType::kRed;  // pattern-independent losses
  cfg.rla.fairness_weight = weight;
  cfg.duration = 260.0;
  cfg.warmup = 60.0;
  cfg.seed = seed;
  const auto res = topo::run_flat_tree(cfg);
  double tcp_mean = 0.0;
  for (const auto& t : res.tcps) tcp_mean += t.throughput_pps;
  tcp_mean /= static_cast<double>(res.tcps.size());
  return res.rla.throughput_pps / tcp_mean;
}

TEST(WeightedFairness, WeightOneIsNeutral) {
  const double r = share_ratio(1.0, 1);
  EXPECT_GT(r, 0.4);
  EXPECT_LT(r, 2.5);
}

TEST(WeightedFairness, ShareIncreasesMonotonicallyInWeight) {
  const double half = share_ratio(0.5, 2);
  const double one = share_ratio(1.0, 2);
  const double two = share_ratio(2.0, 2);
  EXPECT_LT(half, one);
  EXPECT_LT(one, two);
}

TEST(WeightedFairness, LargeWeightDoesNotShutOutTcp) {
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(3, topo::FlatBranch{300.0, 2});
  cfg.gateway = topo::GatewayType::kRed;
  cfg.rla.fairness_weight = 4.0;
  cfg.duration = 200.0;
  cfg.warmup = 50.0;
  const auto res = topo::run_flat_tree(cfg);
  // Even an aggressive weight leaves TCP a real share (the weighted sender
  // still halves on obeyed signals).
  EXPECT_GT(res.worst_tcp().throughput_pps, 15.0);
}

TEST(WeightedFairness, SmallWeightStillMakesProgress) {
  const double r = share_ratio(0.25, 3);
  EXPECT_GT(r, 0.05);
  EXPECT_LT(r, 1.0);
}

}  // namespace
}  // namespace rlacast::rla
