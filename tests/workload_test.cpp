// Tests for the src/workload/ traffic-generation subsystem and the
// stats::FairnessMonitor telemetry it feeds:
//
//   * start-time schedules: the three StartScheduleConfig kinds, including
//     the one-uniform-draw-per-sender contract every kind must honour
//     (draw-count stability is what keeps schedules replayable);
//   * Jain-index math and the application-limited window exclusion;
//   * WebFlowSource determinism: same seed => bit-identical flow schedule
//     (size + start-time fingerprint), plus the heavy-tail size clamp;
//   * --jobs independence: a web-mix tree grid run at jobs=1 and jobs=8
//     produces identical metrics, fingerprint included (per-run seeds are
//     thread-count independent and every source draws from its own named
//     stream);
//   * record/replay: a web-mix run journals and replays bit-identical
//     through the replay::Verifier (the ISSUE-6 acceptance gate for the
//     workload layer's RNG discipline).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "net/network.hpp"
#include "replay/journal.hpp"
#include "replay/recorder.hpp"
#include "replay/verifier.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/fairness_monitor.hpp"
#include "topo/tertiary_tree.hpp"
#include "workload/workload.hpp"

namespace rlacast {
namespace {

// --- start schedules -------------------------------------------------------

TEST(StartSchedule, JitterIsUniformZeroOne) {
  workload::StartScheduleConfig cfg;
  cfg.kind = workload::StartScheduleConfig::Kind::kJitter;
  sim::Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const sim::SimTime t = workload::start_time(cfg, i, rng);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 1.0);
  }
}

TEST(StartSchedule, StaggeredOffsetsByIndex) {
  workload::StartScheduleConfig cfg;
  cfg.kind = workload::StartScheduleConfig::Kind::kStaggered;
  cfg.spacing = 0.5;
  cfg.window = 0.25;
  sim::Rng rng(42);
  for (int i = 0; i < 20; ++i) {
    const sim::SimTime t = workload::start_time(cfg, i, rng);
    EXPECT_GE(t, 0.5 * i);
    EXPECT_LT(t, 0.5 * i + 0.25);
  }
}

TEST(StartSchedule, RandomizedSpansWindow) {
  workload::StartScheduleConfig cfg;
  cfg.kind = workload::StartScheduleConfig::Kind::kRandomized;
  cfg.window = 30.0;
  sim::Rng rng(42);
  sim::SimTime lo = 1e18, hi = -1.0;
  for (int i = 0; i < 200; ++i) {
    const sim::SimTime t = workload::start_time(cfg, i, rng);
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 30.0);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT(lo, 5.0);   // 200 draws cover the window
  EXPECT_GT(hi, 25.0);
}

TEST(StartSchedule, EveryKindConsumesExactlyOneDraw) {
  // The replay contract: each sender's start costs one uniform, no matter
  // the schedule kind, so switching kinds never shifts later streams.
  using Kind = workload::StartScheduleConfig::Kind;
  for (Kind kind : {Kind::kJitter, Kind::kStaggered, Kind::kRandomized}) {
    workload::StartScheduleConfig cfg;
    cfg.kind = kind;
    sim::Rng a(7);
    sim::Rng b(7);
    (void)workload::start_time(cfg, 3, a);
    (void)b.uniform();
    for (int i = 0; i < 8; ++i)
      EXPECT_DOUBLE_EQ(a.uniform(), b.uniform())
          << "kind " << static_cast<int>(kind) << " draw " << i;
  }
}

// --- Jain index ------------------------------------------------------------

TEST(FairnessMonitor, JainIndexMath) {
  using stats::FairnessMonitor;
  EXPECT_DOUBLE_EQ(FairnessMonitor::jain_index({}), -1.0);
  EXPECT_DOUBLE_EQ(FairnessMonitor::jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(FairnessMonitor::jain_index({5.0, 5.0, 5.0}), 1.0);
  // One flow hogging everything: J = 1/n.
  EXPECT_DOUBLE_EQ(FairnessMonitor::jain_index({9.0, 0.0, 0.0}), 1.0 / 3.0);
  // Known mixed vector: (1+2+3)^2 / (3 * 14) = 36/42.
  EXPECT_NEAR(FairnessMonitor::jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0,
              1e-12);
}

TEST(FairnessMonitor, WindowSeriesAndAppLimitedExclusion) {
  sim::Simulator sim(1);
  stats::FairnessMonitorConfig cfg;
  cfg.window = 1.0;
  cfg.start = 0.0;
  cfg.stop = 5.0;
  stats::FairnessMonitor mon(sim, cfg);
  ASSERT_TRUE(mon.enabled());

  // Two steady 100 pps flows; the second claims app-limited from t = 2.5.
  double d1 = 0.0, d2 = 0.0;
  bool limited2 = false;
  for (int k = 1; k <= 50; ++k)
    sim.at(0.1 * k, [&d1, &d2] {
      d1 += 10.0;
      d2 += 10.0;
    });
  sim.at(2.5, [&limited2] { limited2 = true; });
  mon.add_probe({"f1", [&d1] { return d1; }, [] { return false; }});
  mon.add_probe({"f2", [&d2] { return d2; }, [&limited2] { return limited2; }});

  sim.run_until(6.0);
  const auto& samples = mon.samples();
  ASSERT_EQ(samples.size(), 5u);

  // Window 1 excludes everyone: probes begin limited (pre-start state), so
  // the first window never yields evidence.
  EXPECT_EQ(samples[0].flows_counted, 0);
  EXPECT_EQ(samples[0].flows_app_limited, 2);
  EXPECT_DOUBLE_EQ(samples[0].jain, -1.0);
  // Window 2 (t in [1,2]): both flows counted, equal rates, J = 1.
  EXPECT_EQ(samples[1].flows_counted, 2);
  EXPECT_DOUBLE_EQ(samples[1].jain, 1.0);
  EXPECT_NEAR(samples[1].throughput_pps[0], 100.0, 1.0);
  // Window 3 closes at t=3 with f2 limited: f2 excluded, J over f1 alone.
  EXPECT_EQ(samples[2].flows_counted, 1);
  EXPECT_EQ(samples[2].flows_app_limited, 1);
  EXPECT_DOUBLE_EQ(samples[2].throughput_pps[1], -1.0);
  EXPECT_DOUBLE_EQ(samples[2].jain, 1.0);

  EXPECT_DOUBLE_EQ(mon.min_jain(), 1.0);
  EXPECT_DOUBLE_EQ(mon.mean_jain(), 1.0);
}

TEST(FairnessMonitor, AllExcludedWindowIsSkippedNotNaN) {
  // Regression (ISSUE 8 satellite): when every flow is app-limited-excluded
  // in a window, the window must yield the defined -1 sentinel — never NaN
  // — and min/mean must skip it instead of propagating.
  sim::Simulator sim(1);
  stats::FairnessMonitorConfig cfg;
  cfg.window = 1.0;
  cfg.stop = 3.0;
  stats::FairnessMonitor mon(sim, cfg);
  double d1 = 0.0, d2 = 0.0;
  mon.add_probe({"f1", [&d1] { return d1; }, [] { return true; }});
  mon.add_probe({"f2", [&d2] { return d2; }, [] { return true; }});
  sim.at(0.5, [&] { d1 = 40.0; d2 = 10.0; });
  sim.run_until(4.0);
  ASSERT_EQ(mon.samples().size(), 3u);
  for (const auto& s : mon.samples()) {
    EXPECT_EQ(s.flows_counted, 0);
    EXPECT_EQ(s.flows_app_limited, 2);
    EXPECT_DOUBLE_EQ(s.jain, -1.0);       // defined, not NaN
    EXPECT_TRUE(std::isfinite(s.jain));
  }
  EXPECT_DOUBLE_EQ(mon.min_jain(), -1.0);   // "no evidence", finite
  EXPECT_DOUBLE_EQ(mon.mean_jain(), -1.0);
}

TEST(FairnessMonitor, NonFiniteProbeReadingIsExcludedNotPropagated) {
  // A broken delivered() reader returning NaN/inf must degrade to an
  // excluded flow, not poison the whole window's Jain into NaN.
  sim::Simulator sim(1);
  stats::FairnessMonitorConfig cfg;
  cfg.window = 1.0;
  cfg.stop = 2.0;
  stats::FairnessMonitor mon(sim, cfg);
  double good = 0.0;
  mon.add_probe({"good", [&good] { return good; }, [] { return false; }});
  mon.add_probe({"nan", [] { return std::nan(""); }, [] { return false; }});
  mon.add_probe({"inf",
                 [] { return std::numeric_limits<double>::infinity(); },
                 [] { return false; }});
  sim.at(1.5, [&good] { good = 100.0; });
  sim.run_until(3.0);
  ASSERT_EQ(mon.samples().size(), 2u);
  // Window 2 ([1,2]): the good flow counts alone; broken probes excluded.
  const auto& s = mon.samples()[1];
  EXPECT_EQ(s.flows_counted, 1);
  EXPECT_EQ(s.flows_app_limited, 2);
  EXPECT_TRUE(std::isfinite(s.jain));
  EXPECT_DOUBLE_EQ(s.jain, 1.0);
  EXPECT_DOUBLE_EQ(s.throughput_pps[1], -1.0);
  EXPECT_DOUBLE_EQ(s.throughput_pps[2], -1.0);
  EXPECT_TRUE(std::isfinite(mon.min_jain()));
  EXPECT_TRUE(std::isfinite(mon.mean_jain()));
}

TEST(FairnessMonitor, JainIndexNeverNaN) {
  using stats::FairnessMonitor;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isfinite(FairnessMonitor::jain_index({inf, 1.0})));
  EXPECT_TRUE(std::isfinite(FairnessMonitor::jain_index({std::nan(""), 1.0})));
}

TEST(FairnessMonitor, FirstWindowExcludesPreStartFlows) {
  sim::Simulator sim(1);
  stats::FairnessMonitorConfig cfg;
  cfg.window = 1.0;
  cfg.stop = 1.0;
  stats::FairnessMonitor mon(sim, cfg);
  double d = 0.0;
  mon.add_probe({"f", [&d] { return d; }, [] { return false; }});
  sim.run_until(2.0);
  ASSERT_EQ(mon.samples().size(), 1u);
  // limited_at_start = true until the first edge poll: no evidence yet,
  // even for a flow that reports unlimited at the closing edge.
  EXPECT_EQ(mon.samples()[0].flows_counted, 0);
  EXPECT_EQ(mon.samples()[0].flows_app_limited, 1);
}

// --- web source determinism ------------------------------------------------

/// Two-node network fast enough that fetches finish well inside a think
/// time; one web user fetching across it.
struct WebRig {
  sim::Simulator sim;
  net::Network net;
  workload::WebFlowSource src;

  explicit WebRig(std::uint64_t seed, workload::WebConfig cfg = {})
      : sim(seed), net(sim), src(make(net), 0, 1, 30000, 30000, 2000,
                                 "workload-web-0", cfg) {
    src.start_at(0.0);
  }

  static net::Network& make(net::Network& n) {
    const net::NodeId a = n.add_node();
    const net::NodeId b = n.add_node();
    net::LinkConfig lc;
    lc.bandwidth_bps = 10e6;
    lc.delay = sim::milliseconds(10);
    lc.buffer_pkts = 64;
    n.connect(a, b, lc);
    n.build_routes();
    return n;
  }
};

TEST(WebFlowSource, SameSeedSameScheduleFingerprint) {
  WebRig a(11), b(11);
  a.sim.run_until(60.0);
  b.sim.run_until(60.0);
  ASSERT_GT(a.src.flows_started(), 5);
  EXPECT_EQ(a.src.flows_started(), b.src.flows_started());
  EXPECT_EQ(a.src.flows_completed(), b.src.flows_completed());
  EXPECT_EQ(a.src.schedule_fingerprint(), b.src.schedule_fingerprint());
  EXPECT_EQ(a.src.delivered_total(), b.src.delivered_total());
}

TEST(WebFlowSource, DifferentSeedDifferentSchedule) {
  WebRig a(11), b(12);
  a.sim.run_until(60.0);
  b.sim.run_until(60.0);
  EXPECT_NE(a.src.schedule_fingerprint(), b.src.schedule_fingerprint());
}

TEST(WebFlowSource, SizesRespectTailClamp) {
  workload::WebConfig cfg;
  cfg.max_flow_packets = 50;  // tight clamp so the tail must hit it
  cfg.mean_think = 0.2;
  WebRig a(3, cfg);
  a.sim.run_until(120.0);
  ASSERT_GT(a.src.flows_started(), 20);
  for (const auto& s : a.src.senders()) {
    // Every fetch is finite and inside [1, clamp].
    EXPECT_GT(s->params().flow_packets, 0);
    EXPECT_LE(s->params().flow_packets, 50);
  }
}

// --- tree-level --jobs independence ---------------------------------------

exp::Metrics web_tree_metrics(const exp::RunSpec& spec) {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.gateway = spec.point.get("gw", "droptail") == "red"
                    ? topo::GatewayType::kRed
                    : topo::GatewayType::kDropTail;
  cfg.traffic.kind = workload::TrafficKind::kWeb;
  cfg.duration = 10.0;
  cfg.warmup = 3.0;
  cfg.seed = spec.seed;
  cfg.fairness.window = 2.0;
  cfg.fairness.start = cfg.warmup;
  cfg.fairness.stop = cfg.duration;
  const auto res = topo::run_tertiary_tree(cfg);
  exp::Metrics m;
  m.set("fp.hi", static_cast<double>(res.workload_fingerprint >> 32));
  m.set("fp.lo",
        static_cast<double>(res.workload_fingerprint & 0xffffffffULL));
  m.set("web.started", static_cast<double>(res.web_flows_started));
  m.set("web.completed", static_cast<double>(res.web_flows_completed));
  m.set("rla.pps", res.rla[0].throughput_pps);
  m.set("jain.min", res.min_jain);
  return m;
}

TEST(WorkloadDeterminism, JobsOneAndEightBitIdentical) {
  exp::Grid grid;
  grid.master_seed(5).replicates(2);
  grid.add_case("web-droptail", exp::Point{}.set("gw", "droptail"));
  grid.add_case("web-red", exp::Point{}.set("gw", "red"));

  const exp::RunFn run = [](const exp::RunSpec& spec) {
    return web_tree_metrics(spec);
  };

  auto collect = [&](int jobs) {
    exp::RunnerOptions ropts;
    ropts.jobs = jobs;
    exp::Runner runner(ropts);
    const exp::Results results = runner.run(grid, run);
    EXPECT_EQ(results.num_errors(), 0);
    std::map<std::string, exp::Metrics> by_run;
    for (const auto& r : results.runs())
      by_run[r.spec.name + "#" + std::to_string(r.spec.replicate)] = r.metrics;
    return by_run;
  };

  const auto seq = collect(1);
  const auto par = collect(8);
  ASSERT_EQ(seq.size(), par.size());
  for (const auto& [key, m] : seq) {
    ASSERT_TRUE(par.count(key)) << key;
    const auto& rows = m.rows();
    const auto& prows = par.at(key).rows();
    ASSERT_EQ(rows.size(), prows.size()) << key;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].first, prows[i].first) << key;
      EXPECT_EQ(rows[i].second, prows[i].second)
          << key << " metric " << rows[i].first;
    }
  }
}

// --- record/replay of a web-mix run ---------------------------------------

topo::TreeConfig web_tree_small() {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.traffic.kind = workload::TrafficKind::kWeb;
  cfg.duration = 6.0;
  cfg.warmup = 1.0;
  cfg.seed = 7;
  return cfg;
}

TEST(WorkloadReplay, WebMixRecordsAndReplaysBitIdentical) {
  replay::RecorderOptions opts;
  opts.checkpoint_every = 20000;
  replay::Recorder rec(opts);
  topo::TreeConfig cfg = web_tree_small();
  cfg.instrument = [&rec](sim::Simulator& sim) { sim.set_observer(&rec); };
  const auto recorded = topo::run_tertiary_tree(cfg);
  rec.finalize();
  const replay::Journal journal = rec.take_journal();
  ASSERT_GT(journal.records().size(), 1000u);

  replay::Verifier verifier(journal);
  topo::TreeConfig cfg2 = web_tree_small();
  cfg2.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
  };
  const auto replayed = topo::run_tertiary_tree(cfg2);
  verifier.finalize();

  EXPECT_TRUE(verifier.ok()) << verifier.divergence().render();
  EXPECT_EQ(verifier.records_matched(), journal.records().size());
  EXPECT_EQ(recorded.workload_fingerprint, replayed.workload_fingerprint);
  EXPECT_EQ(recorded.web_flows_started, replayed.web_flows_started);
}

TEST(WorkloadReplay, OnOffMixRecordsAndReplaysBitIdentical) {
  topo::TreeConfig base = web_tree_small();
  base.traffic.kind = workload::TrafficKind::kOnOff;
  base.traffic.onoff.rate_pps = 20.0;

  replay::Recorder rec{replay::RecorderOptions{}};
  topo::TreeConfig cfg = base;
  cfg.instrument = [&rec](sim::Simulator& sim) { sim.set_observer(&rec); };
  const auto recorded = topo::run_tertiary_tree(cfg);
  rec.finalize();
  const replay::Journal journal = rec.take_journal();

  replay::Verifier verifier(journal);
  topo::TreeConfig cfg2 = base;
  cfg2.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
  };
  const auto replayed = topo::run_tertiary_tree(cfg2);
  verifier.finalize();

  EXPECT_TRUE(verifier.ok()) << verifier.divergence().render();
  EXPECT_EQ(recorded.onoff_packets_sent, replayed.onoff_packets_sent);
  EXPECT_EQ(recorded.onoff_packets_received, replayed.onoff_packets_received);
}

}  // namespace
}  // namespace rlacast
