// Tests for the replay subsystem (src/replay/): journal save/load
// round-trips, record-then-replay bit-identity on clean AND faulted
// (Gilbert–Elliott + churn) tree runs, divergence detection with
// checkpoint bracketing when the replay is deliberately perturbed, and
// crash-point reproduction from a truncated journal.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "replay/journal.hpp"
#include "replay/recorder.hpp"
#include "replay/verifier.hpp"
#include "sim/simulator.hpp"
#include "topo/tertiary_tree.hpp"

namespace rlacast {
namespace {

/// Small-but-real run: the Figure-6 tree at a CI-sized duration. ~1e5
/// dispatches — enough to cross several checkpoints at the test cadence.
topo::TreeConfig small_tree() {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.duration = 6.0;
  cfg.warmup = 1.0;
  cfg.seed = 7;
  return cfg;
}

topo::TreeConfig faulted_tree() {
  topo::TreeConfig cfg = small_tree();
  // Gilbert–Elliott bursty loss on the leaf links plus membership churn —
  // the heaviest consumers of auxiliary RNG streams.
  cfg.leaf_fault.ge.p_good_to_bad = 0.01;
  cfg.leaf_fault.ge.p_bad_to_good = 0.2;
  cfg.leaf_fault.ge.loss_bad = 0.2;
  cfg.churn_mean_interval = 2.0;
  cfg.churn_rejoin_after = 1.0;
  return cfg;
}

replay::Journal record_run(topo::TreeConfig cfg,
                           std::uint64_t checkpoint_every = 20000) {
  replay::RecorderOptions opts;
  opts.checkpoint_every = checkpoint_every;
  replay::Recorder rec(opts);
  cfg.instrument = [&rec](sim::Simulator& sim) { sim.set_observer(&rec); };
  topo::run_tertiary_tree(cfg);
  rec.finalize();
  return rec.take_journal();
}

TEST(Replay, RecordThenReplayIsBitIdentical) {
  const replay::Journal journal = record_run(small_tree());
  ASSERT_GT(journal.records().size(), 1000u);
  ASSERT_GE(journal.checkpoints().size(), 2u);  // periodic + final

  replay::Verifier verifier(journal);
  topo::TreeConfig cfg = small_tree();
  cfg.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
  };
  topo::run_tertiary_tree(cfg);
  verifier.finalize();

  EXPECT_TRUE(verifier.ok()) << verifier.divergence().render();
  EXPECT_EQ(verifier.records_matched(), journal.records().size());
  EXPECT_EQ(verifier.verified_checkpoints(), journal.checkpoints().size());
}

TEST(Replay, FaultedRunWithChurnReplaysBitIdentical) {
  const replay::Journal journal = record_run(faulted_tree(), 10000);
  ASSERT_GT(journal.records().size(), 1000u);

  replay::Verifier verifier(journal);
  topo::TreeConfig cfg = faulted_tree();
  cfg.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
  };
  topo::run_tertiary_tree(cfg);
  verifier.finalize();

  EXPECT_TRUE(verifier.ok()) << verifier.divergence().render();
  EXPECT_EQ(verifier.records_matched(), journal.records().size());
}

TEST(Replay, TwoRecordingsOfSameSpecHaveNoDivergence) {
  const replay::Journal a = record_run(small_tree());
  const replay::Journal b = record_run(small_tree());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(replay::first_divergence(a, b).found);
}

TEST(Replay, PerturbedReplayIsCaughtAtTheInjectedDispatch) {
  const replay::Journal journal = record_run(small_tree(), /*every=*/5000);
  ASSERT_GE(journal.checkpoints().size(), 3u);

  // Perturb the re-execution: one extra no-op event injected early enough
  // to fire before the first checkpoint. Every dispatch from there on
  // carries a shifted sequence, so the replay must diverge AT the injected
  // event — the first-divergent record IS the fault, no search needed.
  replay::Verifier verifier(journal);
  topo::TreeConfig cfg = small_tree();
  // An off-grid timestamp no recorded event can share.
  const double inject_at = 0.0001234;
  cfg.instrument = [&verifier, inject_at](sim::Simulator& sim) {
    sim.set_observer(&verifier);
    sim.after(inject_at, [] {});
  };
  topo::run_tertiary_tree(cfg);
  verifier.finalize();

  ASSERT_TRUE(verifier.diverged());
  const replay::Divergence& d = verifier.divergence();
  EXPECT_GT(d.record_index, 0u);
  EXPECT_LT(d.record_index, journal.records().size());
  EXPECT_EQ(d.got.type, replay::RecordType::kDispatch);
  EXPECT_DOUBLE_EQ(d.got.at, inject_at);
  // Bracketing: nothing verified before the injection, and the first
  // checkpoint after the divergence bounds it on the right.
  EXPECT_EQ(d.checkpoint_before, -1);
  EXPECT_EQ(d.checkpoint_after, 0);
  EXPECT_FALSE(d.render().empty());
}

TEST(Replay, PerturbedStateIsCaughtAtTheNextCheckpoint) {
  const replay::Journal journal = record_run(small_tree(), /*every=*/5000);

  // An extra event that fires LATE still perturbs scheduler state (the
  // next_seq counter) the moment it is scheduled — the first checkpoint
  // after the perturbation must catch the state diff even though no
  // dispatch record has diverged yet.
  replay::Verifier verifier(journal);
  topo::TreeConfig cfg = small_tree();
  cfg.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
    sim.after(5.9, [] {});  // fires long after checkpoint 0
  };
  topo::run_tertiary_tree(cfg);
  verifier.finalize();

  ASSERT_TRUE(verifier.diverged());
  const replay::Divergence& d = verifier.divergence();
  EXPECT_EQ(d.got.type, replay::RecordType::kCheckpoint);
  EXPECT_EQ(d.checkpoint_after, 0);  // caught at the very first checkpoint
  EXPECT_NE(d.detail.find("scheduler"), std::string::npos) << d.detail;
  EXPECT_NE(d.detail.find("next_seq"), std::string::npos) << d.detail;
}

TEST(Replay, JournalSaveLoadRoundTrips) {
  const replay::Journal journal = record_run(small_tree());
  const std::string path = testing::TempDir() + "/replay_roundtrip.journal";
  ASSERT_TRUE(journal.save(path));

  replay::Journal loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_FALSE(loaded.truncated());
  EXPECT_TRUE(journal == loaded);
  EXPECT_EQ(loaded.checkpoints().size(), journal.checkpoints().size());
  ASSERT_FALSE(loaded.checkpoints().empty());
  EXPECT_EQ(loaded.checkpoints()[0].components.size(),
            journal.checkpoints()[0].components.size());
  std::remove(path.c_str());
}

TEST(Replay, StreamedJournalEqualsInMemoryJournal) {
  const std::string path = testing::TempDir() + "/replay_streamed.journal";
  replay::RecorderOptions opts;
  opts.checkpoint_every = 20000;
  opts.stream_path = path;
  replay::Recorder rec(opts);
  rec.set_meta("bench", "unit-test");
  topo::TreeConfig cfg = small_tree();
  cfg.instrument = [&rec](sim::Simulator& sim) { sim.set_observer(&rec); };
  topo::run_tertiary_tree(cfg);
  rec.finalize();

  replay::Journal streamed;
  ASSERT_TRUE(streamed.load(path));
  EXPECT_FALSE(streamed.truncated());
  EXPECT_TRUE(streamed == rec.journal());
  EXPECT_EQ(streamed.meta_value("bench"), "unit-test");
  std::remove(path.c_str());
}

TEST(Replay, TruncatedJournalReplaysToCrashPoint) {
  const replay::Journal journal = record_run(small_tree(), /*every=*/5000);
  const std::string full = testing::TempDir() + "/replay_full.journal";
  ASSERT_TRUE(journal.save(full));

  // Chop the file mid-body — the moral equivalent of the recorder dying on
  // a SIGSEGV between two flushes.
  std::FILE* in = std::fopen(full.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::fseek(in, 0, SEEK_END);
  const long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
  std::fclose(in);
  const std::string torn = testing::TempDir() + "/replay_torn.journal";
  std::FILE* out = std::fopen(torn.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  const std::size_t keep = bytes.size() * 3 / 5;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, out), keep);
  std::fclose(out);

  replay::Journal truncated;
  ASSERT_TRUE(truncated.load(torn));
  EXPECT_TRUE(truncated.truncated());
  ASSERT_GT(truncated.records().size(), 0u);
  ASSERT_LT(truncated.records().size(), journal.records().size());

  replay::Verifier verifier(truncated);
  topo::TreeConfig cfg = small_tree();
  cfg.instrument = [&verifier](sim::Simulator& sim) {
    sim.set_observer(&verifier);
  };
  topo::run_tertiary_tree(cfg);
  verifier.finalize();

  EXPECT_TRUE(verifier.ok()) << verifier.divergence().render();
  EXPECT_TRUE(verifier.reproduced_to_crash_point());
  std::remove(full.c_str());
  std::remove(torn.c_str());
}

TEST(Replay, SnapshotFirstDiffNamesTheField) {
  replay::Snapshot a, b;
  a.put("cwnd", 12.5);
  a.put("acks", std::uint64_t{42});
  b.put("cwnd", 12.5);
  b.put("acks", std::uint64_t{43});
  EXPECT_EQ(a.first_diff(a), "");
  const std::string diff = a.first_diff(b);
  EXPECT_NE(diff.find("acks"), std::string::npos) << diff;
  EXPECT_NE(diff.find("42"), std::string::npos) << diff;
  EXPECT_NE(diff.find("43"), std::string::npos) << diff;
}

TEST(Replay, JournalMetaAndCheckpointLookups) {
  replay::Journal j;
  j.set_meta("bench", "fig7");
  EXPECT_TRUE(j.has_meta("bench"));
  EXPECT_EQ(j.meta_value("bench"), "fig7");
  EXPECT_EQ(j.meta_value("absent"), "");

  const replay::Journal journal = record_run(small_tree(), /*every=*/5000);
  // last_checkpoint_before walks backward from a record index.
  EXPECT_EQ(journal.last_checkpoint_before(0), -1);
  EXPECT_GE(
      journal.last_checkpoint_before(journal.records().size() - 1), 0);
}

}  // namespace
}  // namespace rlacast
