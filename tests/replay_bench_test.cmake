# Record/replay regression guard (ctest script mode).
#
# Two properties in one test:
#   1. Journaling is passive: a bench run with --record-journal must emit
#      stdout byte-identical to the plain --smoke golden hash — turning the
#      "instrumentation changes nothing" promise into a CI-enforced check.
#   2. The journal replays: `bench --replay <journal>` must re-execute the
#      recorded run and verify it bit-identical (exit 0, VERIFIED line).
#
# Usage (wired up by tests/CMakeLists.txt):
#   cmake -DBENCH=<binary> -DGOLDEN=<hash file> -DWORKDIR=<scratch dir>
#         -P replay_bench_test.cmake
if(NOT DEFINED BENCH OR NOT DEFINED GOLDEN OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
          "usage: cmake -DBENCH=<bench binary> -DGOLDEN=<sha256 file> "
          "-DWORKDIR=<scratch dir> -P replay_bench_test.cmake")
endif()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${BENCH} --smoke --record-journal ${WORKDIR}
  OUTPUT_VARIABLE bench_out
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} --smoke --record-journal exited with status ${bench_rc}")
endif()

# 1. Journaling must not perturb the run: same golden hash as plain --smoke.
string(SHA256 got "${bench_out}")
file(READ ${GOLDEN} want)
string(STRIP "${want}" want)
string(REGEX MATCH "^[0-9a-f]+" want "${want}")
if(NOT got STREQUAL want)
  message(FATAL_ERROR
          "stdout of ${BENCH} --smoke --record-journal diverged from the "
          "golden hash:\n  expected ${want}\n  got      ${got}\n"
          "Recording a journal must be passive — it may not perturb the "
          "run in any observable way.")
endif()

# 2. Every recorded journal must replay bit-identical.
file(GLOB journals ${WORKDIR}/*.journal)
list(LENGTH journals n_journals)
if(n_journals EQUAL 0)
  message(FATAL_ERROR "no journals recorded in ${WORKDIR}")
endif()
list(GET journals 0 journal)
execute_process(
  COMMAND ${BENCH} --replay ${journal}
  OUTPUT_VARIABLE replay_out
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} --replay ${journal} exited with status ${replay_rc}:\n"
          "${replay_out}")
endif()
if(NOT replay_out MATCHES "VERIFIED bit-identical")
  message(FATAL_ERROR
          "${BENCH} --replay ${journal} did not report a verified replay:\n"
          "${replay_out}")
endif()

file(REMOVE_RECURSE ${WORKDIR})
