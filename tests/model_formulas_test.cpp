// Tests of the §4 closed forms: limiting cases, algebraic identities the
// paper states, and the Proposition/Theorem bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "model/drift.hpp"
#include "model/formulas.hpp"

namespace rlacast::model {
namespace {

TEST(Formulas, PaWindowMatchesKnownValues) {
  // p = 2% -> W = sqrt(2*0.98/0.02) = sqrt(98) ~ 9.9.
  EXPECT_NEAR(tcp_pa_window(0.02), std::sqrt(98.0), 1e-12);
  EXPECT_NEAR(tcp_pa_window_approx(0.02), 10.0, 1e-9);
}

TEST(Formulas, PaWindowDecreasesInP) {
  double prev = 1e9;
  for (double p = 0.001; p < 0.2; p *= 2.0) {
    const double w = tcp_pa_window(p);
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(Formulas, ApproxConvergesForSmallP) {
  EXPECT_NEAR(tcp_pa_window(1e-4) / tcp_pa_window_approx(1e-4), 1.0, 1e-4);
}

TEST(Formulas, MahdaviMatchesPaShape) {
  // bandwidth = W/rtt with W ~ C/sqrt(p): both formulas differ only by the
  // constant (1.3 vs sqrt(2) ~ 1.414).
  const double rtt = 0.2, p = 0.01;
  const double via_pa = tcp_pa_window_approx(p) / rtt;
  const double via_mahdavi = tcp_throughput_mahdavi(rtt, p);
  EXPECT_NEAR(via_mahdavi / via_pa, 1.3 / std::sqrt(2.0), 1e-9);
}

TEST(Formulas, TwoReceiverReducesToTcpWhenOneSilent) {
  // p2 -> 0: the RLA listens to one receiver with probability 1/2, so its
  // window exceeds the TCP window at the same p1 (cuts are half as likely),
  // approaching sqrt(2) * W_TCP.
  const double p1 = 0.01;
  const double w = rla_two_receiver_window(p1, 1e-12);
  EXPECT_NEAR(w / tcp_pa_window(p1), std::sqrt(2.0), 0.01);
}

TEST(Formulas, TwoReceiverEqualLossMatchesIndependentFormula) {
  const double p = 0.02;
  EXPECT_NEAR(rla_two_receiver_window(p, p),
              rla_independent_loss_window(p, 2), 1e-9);
}

TEST(Formulas, IndependentFormulaReducesToTcpAtN1) {
  for (double p : {0.001, 0.01, 0.05}) {
    EXPECT_NEAR(rla_independent_loss_window(p, 1), tcp_pa_window(p), 1e-9);
    EXPECT_NEAR(rla_common_loss_window(p, 1), tcp_pa_window(p), 1e-9);
  }
}

TEST(Formulas, CorrelationLemma) {
  // §4.2 Lemma: common losses give a LARGER window than independent losses
  // of the same per-receiver probability.
  for (int n : {2, 3, 9, 27}) {
    for (double p : {0.005, 0.01, 0.03}) {
      EXPECT_GT(rla_common_loss_window(p, n),
                rla_independent_loss_window(p, n))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Formulas, PropositionBoundsHoldForBothLossStructures) {
  for (int n : {2, 3, 9, 27}) {
    for (double p : {0.005, 0.01, 0.049}) {
      const Bounds b = proposition_window_bounds(p, n);
      const double wi = rla_independent_loss_window(p, n);
      const double wc = rla_common_loss_window(p, n);
      EXPECT_TRUE(b.contains(wi)) << "indep n=" << n << " p=" << p
                                  << " w=" << wi << " in (" << b.lo << ","
                                  << b.hi << ")";
      EXPECT_TRUE(b.contains(wc)) << "common n=" << n << " p=" << p;
    }
  }
}

TEST(Formulas, TwoReceiverUpperBoundNeedsTroubledRatio) {
  // §4.2: with x = p2/p1 >= p1/(2-1.5 p1) the two-receiver window stays
  // below sqrt(2) * sqrt(2(1-p1)/p1); slightly below the threshold it can
  // exceed it. Verify both sides of the boundary.
  const double p1 = 0.04;
  const double x_min = troubled_ratio_threshold(p1);
  const double hi = std::sqrt(2.0) * tcp_pa_window(p1);
  EXPECT_LT(rla_two_receiver_window(p1, 2.0 * x_min * p1), hi);
  EXPECT_GT(rla_two_receiver_window(p1, 0.01 * x_min * p1), hi);
}

TEST(Formulas, EtaTwentyCoversModerateCongestion) {
  // The recommended eta = 20 (ratio 0.05) exceeds the required ratio for
  // every p1 <= 5%, as §4.2 argues.
  for (double p1 = 0.001; p1 <= 0.05; p1 += 0.001)
    EXPECT_LE(troubled_ratio_threshold(p1), 0.05) << p1;
}

TEST(Formulas, EqualCongestionStaysWithinFourTimesTcp) {
  // §4.3: "if all the troubled receivers have the same degree of
  // congestion, the RLA results in a throughput no larger than four times
  // that of the competing TCP throughput for any n". At matched congestion
  // probability the window ratio is what drives the throughput ratio
  // (the RLA's larger RTT only shrinks it); verify the closed forms stay
  // far below 4 for any receiver count and moderate congestion.
  for (int n : {1, 2, 3, 9, 27, 81, 729}) {
    for (double p = 0.001; p <= 0.05; p += 0.007) {
      const double tcp = tcp_pa_window(p);
      EXPECT_LT(rla_independent_loss_window(p, n) / tcp, 4.0)
          << "indep n=" << n << " p=" << p;
      EXPECT_LT(rla_common_loss_window(p, n) / tcp, 4.0)
          << "common n=" << n << " p=" << p;
    }
  }
}

TEST(Formulas, CommonLossRatioSaturatesInN) {
  // The common-loss window ratio converges (to ~1.13x TCP) rather than
  // growing with n — the reason equal congestion cannot approach the
  // Proposition's sqrt(n) ceiling.
  const double p = 0.01;
  const double r27 = rla_common_loss_window(p, 27) / tcp_pa_window(p);
  const double r729 = rla_common_loss_window(p, 729) / tcp_pa_window(p);
  EXPECT_NEAR(r729, r27, 0.01);
  EXPECT_LT(r729, 1.2);
}

TEST(Formulas, TheoremBoundsScale) {
  const Bounds red = theorem1_red_bounds(27);
  EXPECT_NEAR(red.lo, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(red.hi, std::sqrt(81.0), 1e-12);
  const Bounds dt = theorem2_droptail_bounds(27);
  EXPECT_NEAR(dt.lo, 0.25, 1e-12);
  EXPECT_NEAR(dt.hi, 54.0, 1e-12);
  // RED bounds are tighter than drop-tail bounds (b smaller, a larger).
  EXPECT_GT(red.lo, dt.lo);
  EXPECT_LT(red.hi, dt.hi);
}

TEST(Drift, PositiveBelowPipe) {
  DriftField f(3, 10.0);
  const auto d = f.drift(2.0, 3.0);
  EXPECT_DOUBLE_EQ(d.dx, 2.0);
  EXPECT_DOUBLE_EQ(d.dy, 2.0);
  EXPECT_EQ(f.signals_at(2.0, 3.0), 0);
}

TEST(Drift, NegativeForLargeWindowsAbovePipe) {
  DriftField f(3, 10.0);
  const auto d = f.drift(20.0, 20.0);
  EXPECT_LT(d.dx, 0.0);
  EXPECT_LT(d.dy, 0.0);
}

TEST(Drift, SymmetricUnderExchange) {
  DriftField f(3, 10.0);
  const auto d1 = f.drift(4.0, 8.0);
  const auto d2 = f.drift(8.0, 4.0);
  EXPECT_DOUBLE_EQ(d1.dx, d2.dy);
  EXPECT_DOUBLE_EQ(d1.dy, d2.dx);
}

TEST(Drift, SignFlipsAtPipeBoundary) {
  // Along the diagonal, drift is +2 strictly below the pipe and already
  // negative at the boundary (where the windows are large enough for the
  // expected halving loss to dominate the +2 gain): the stable operating
  // region hugs w1 + w2 = pipe — the desired point of Figure 3.
  DriftField f(3, 10.0);
  const auto at = [&](double w) { return f.drift(w, w).dx; };
  EXPECT_DOUBLE_EQ(at(4.9), 2.0);   // below pipe: deterministic growth
  EXPECT_LT(at(5.0), 0.0);          // at the boundary: contraction
  EXPECT_LT(at(20.0), at(5.0));     // deeper overshoot, stronger pull-back
}

TEST(Drift, StaircaseAddsSignalsPerRegion) {
  DriftField f({{10.0, 1}, {20.0, 2}});
  EXPECT_EQ(f.signals_at(4.0, 4.0), 0);
  EXPECT_EQ(f.signals_at(6.0, 6.0), 1);
  EXPECT_EQ(f.signals_at(12.0, 12.0), 3);
  // More signals -> more negative drift at the same window.
  EXPECT_LT(f.drift(12.0, 12.0).dx, f.drift(6.0, 6.0).dx);
}

}  // namespace
}  // namespace rlacast::model
