// Drop-tail queue unit tests: FIFO order, capacity enforcement, statistics,
// and the drop hook used for per-flow loss attribution.
#include <gtest/gtest.h>

#include "net/drop_tail.hpp"

namespace rlacast::net {
namespace {

Packet pkt(SeqNum seq, FlowId flow = 1) {
  Packet p;
  p.seq = seq;
  p.flow = flow;
  return p;
}

TEST(DropTail, FifoOrder) {
  DropTailQueue q(10);
  for (SeqNum s = 0; s < 5; ++s) EXPECT_TRUE(q.enqueue(pkt(s), 0.0));
  for (SeqNum s = 0; s < 5; ++s) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, s);
  }
  EXPECT_FALSE(q.dequeue(0.0).has_value());
}

TEST(DropTail, DropsWhenFull) {
  DropTailQueue q(3);
  EXPECT_TRUE(q.enqueue(pkt(0), 0.0));
  EXPECT_TRUE(q.enqueue(pkt(1), 0.0));
  EXPECT_TRUE(q.enqueue(pkt(2), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(3), 0.0));
  EXPECT_EQ(q.length(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(DropTail, SpaceFreedAfterDequeue) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(pkt(0), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(1), 0.0));
  q.dequeue(0.0);
  EXPECT_TRUE(q.enqueue(pkt(2), 0.0));
}

TEST(DropTail, DropRateAccounting) {
  DropTailQueue q(2);
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);  // dropped
  q.enqueue(pkt(3), 0.0);  // dropped
  EXPECT_DOUBLE_EQ(q.stats().drop_rate(), 0.5);
}

TEST(DropTail, DropHookSeesDroppedPacket) {
  DropTailQueue q(1);
  SeqNum dropped_seq = -1;
  double drop_time = -1.0;
  q.set_drop_hook([&](const Packet& p, sim::SimTime t) {
    dropped_seq = p.seq;
    drop_time = t;
  });
  q.enqueue(pkt(7), 1.0);
  q.enqueue(pkt(8), 2.0);
  EXPECT_EQ(dropped_seq, 8);
  EXPECT_DOUBLE_EQ(drop_time, 2.0);
}

TEST(DropTail, ZeroCapacityDropsEverything) {
  DropTailQueue q(0);
  EXPECT_FALSE(q.enqueue(pkt(0), 0.0));
  EXPECT_EQ(q.stats().dropped, 1u);
}

Packet sized(SeqNum seq, std::int32_t bytes) {
  Packet p;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(DropTailByteMode, DataPacketsBehaveLikePacketMode) {
  // With uniform full-size packets, byte accounting is identical to packet
  // accounting: 2 slots of 1000 bytes admit exactly 2 data packets.
  DropTailQueue q(2, /*slot_bytes=*/1000);
  EXPECT_TRUE(q.enqueue(sized(0, 1000), 0.0));
  EXPECT_TRUE(q.enqueue(sized(1, 1000), 0.0));
  EXPECT_FALSE(q.enqueue(sized(2, 1000), 0.0));
}

TEST(DropTailByteMode, AcksCostProportionallyLess) {
  // A 2-data-packet buffer holds fifty 40-byte ACKs: the burst of
  // simultaneous multicast ACKs that motivated byte accounting fits.
  DropTailQueue q(2, /*slot_bytes=*/1000);
  int accepted = 0;
  for (SeqNum s = 0; s < 60; ++s)
    if (q.enqueue(sized(s, 40), 0.0)) ++accepted;
  EXPECT_EQ(accepted, 50);
  EXPECT_EQ(q.bytes(), 2000);
}

TEST(DropTailByteMode, MixedSizesShareTheBytePool) {
  DropTailQueue q(2, /*slot_bytes=*/1000);
  EXPECT_TRUE(q.enqueue(sized(0, 1000), 0.0));
  EXPECT_TRUE(q.enqueue(sized(1, 40), 0.0));
  EXPECT_FALSE(q.enqueue(sized(2, 1000), 0.0));  // 1040 + 1000 > 2000
  EXPECT_TRUE(q.enqueue(sized(3, 900), 0.0));
}

TEST(DropTailByteMode, BytesTrackDequeues) {
  DropTailQueue q(4, /*slot_bytes=*/1000);
  q.enqueue(sized(0, 1000), 0.0);
  q.enqueue(sized(1, 40), 0.0);
  EXPECT_EQ(q.bytes(), 1040);
  q.dequeue(0.0);
  EXPECT_EQ(q.bytes(), 40);
  q.dequeue(0.0);
  EXPECT_EQ(q.bytes(), 0);
}

}  // namespace
}  // namespace rlacast::net
