// ECN tests: RED marking semantics, TCP's response to echoed CE, and the
// RLA treating marks as loss-free congestion signals.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/red.hpp"
#include "rla/rla_receiver.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast {
namespace {

net::RedParams ecn_red() {
  net::RedParams p;
  p.capacity = 20;
  p.min_th = 5;
  p.max_th = 15;
  p.ecn = true;
  return p;
}

TEST(RedEcn, EarlyDecisionMarksInsteadOfDropping) {
  net::RedQueue q(ecn_red(), sim::Rng(3));
  net::Packet p;
  p.ect = true;
  // Hold backlog around 10 (inside the early-drop band).
  while (q.length() < 10) q.enqueue(p, 0.0);
  for (int i = 0; i < 5000; ++i) {
    q.enqueue(p, 0.0);
    while (q.length() > 10) q.dequeue(0.0);
  }
  EXPECT_GT(q.ecn_marks(), 0u);
  EXPECT_EQ(q.early_drops(), 0u);  // every early decision became a mark
}

TEST(RedEcn, NonEctPacketsStillDrop) {
  net::RedQueue q(ecn_red(), sim::Rng(3));
  net::Packet p;  // ect = false
  while (q.length() < 10) q.enqueue(p, 0.0);
  for (int i = 0; i < 5000; ++i) {
    q.enqueue(p, 0.0);
    while (q.length() > 10) q.dequeue(0.0);
  }
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_EQ(q.ecn_marks(), 0u);
}

TEST(RedEcn, MarkedPacketCarriesCeBit) {
  net::RedParams params = ecn_red();
  params.w_q = 0.5;  // fast estimator to get into the band quickly
  net::RedQueue q(params, sim::Rng(3));
  net::Packet p;
  p.ect = true;
  for (int i = 0; i < 200; ++i) {
    q.enqueue(p, 0.0);
    if (q.length() > 12) q.dequeue(0.0);
  }
  // Drain and look for CE-marked packets.
  bool saw_ce = false;
  while (auto out = q.dequeue(0.0))
    if (out->ce) saw_ce = true;
  EXPECT_TRUE(saw_ce);
}

TEST(RedEcn, ForcedDropsStillDropEvenForEct) {
  net::RedParams params = ecn_red();
  params.w_q = 0.9;
  net::RedQueue q(params, sim::Rng(3));
  net::Packet p;
  p.ect = true;
  for (int i = 0; i < 100; ++i) q.enqueue(p, 0.0);  // push avg past max_th
  EXPECT_GT(q.forced_drops() + q.overflow_drops(), 0u);
}

/// Single TCP with ECN through an ECN RED bottleneck: congestion control
/// works with (nearly) zero data loss.
TEST(TcpEcn, CongestionControlWithoutLoss) {
  sim::Simulator sim(11);
  net::Network net(sim);
  const auto s = net.add_node(), g = net.add_node(), r = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = 200 * 8000.0;
  bttl.delay = 0.02;
  bttl.queue = net::QueueKind::kRed;
  bttl.red.ecn = true;
  net.connect(s, g, bttl);
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.02;
  net.connect(g, r, fast);
  net.build_routes();

  tcp::TcpParams p;
  p.ecn = true;
  tcp::TcpReceiver rcv(net, r, 1);
  tcp::TcpSender snd(net, s, 1, r, 1, 1, p);
  snd.start_at(0.0);
  sim.at(20.0, [&] { snd.measurement().begin_measurement(sim.now()); });
  sim.run_until(120.0);

  const auto& m = snd.measurement();
  EXPECT_GT(m.throughput_pps(120.0), 150.0);  // fills the bottleneck
  EXPECT_GT(m.window_cuts(), 10u);            // cuts happened...
  EXPECT_EQ(m.timeouts(), 0u);                // ...but never via timeout
  // The bottleneck marked instead of dropping (data path):
  auto* q = static_cast<net::RedQueue*>(&net.link_between(s, g)->queue());
  EXPECT_GT(q->ecn_marks(), 10u);
  EXPECT_EQ(q->early_drops(), 0u);
}

/// RLA with ECN: marks from receivers enter the random-listening decision.
TEST(RlaEcn, MarksActAsCongestionSignals) {
  sim::Simulator sim(13);
  net::Network net(sim);
  const auto s = net.add_node(), hub = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = 200 * 8000.0;
  bttl.delay = 0.02;
  bttl.queue = net::QueueKind::kRed;
  bttl.red.ecn = true;
  net.connect(s, hub, bttl);
  std::vector<net::NodeId> leaves;
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.02;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(net.add_node());
    net.connect(hub, leaves.back(), fast);
  }
  net.build_routes();

  rla::RlaParams p;
  p.ecn = true;
  rla::RlaSender snd(net, s, 1, 1, 99, p);
  std::vector<std::unique_ptr<rla::RlaReceiver>> rcvrs;
  for (int i = 0; i < 3; ++i) {
    net.join_group(1, s, leaves[size_t(i)]);
    const int idx = snd.add_receiver(leaves[size_t(i)], 1);
    rcvrs.push_back(std::make_unique<rla::RlaReceiver>(net, leaves[size_t(i)],
                                                       1, 1, s, 1, idx));
  }
  snd.start_at(0.0);
  sim.at(20.0, [&] { snd.measurement().begin_measurement(sim.now()); });
  sim.run_until(120.0);

  const auto& m = snd.measurement();
  EXPECT_GT(m.throughput_pps(120.0), 150.0);
  EXPECT_GT(m.congestion_signals(), 20u);  // mark-driven signals
  EXPECT_GT(m.window_cuts(), 5u);
  // Shared bottleneck: all receivers signal, so all are troubled.
  EXPECT_EQ(snd.num_trouble_rcvr(), 3);
  // Virtually no retransmissions: congestion was signalled by marks.
  EXPECT_LT(snd.multicast_rexmits() + snd.unicast_rexmits(),
            m.congestion_signals() / 4 + 3);
}

}  // namespace
}  // namespace rlacast
