// Unit tests for the discrete-event scheduler: ordering, determinism,
// cancellation, and clock semantics — the invariants everything else in the
// simulator relies on.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rlacast::sim {
namespace {

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, SimultaneousEventsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  int count = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.run_one();
  s.cancel(id);  // already fired; must not corrupt accounting
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, DoubleCancelIsHarmless) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(id);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, EventAtHorizonIsDispatched) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, ReentrantSchedulingFromCallback) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.5, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, ChainOfEventsAdvancesClock) {
  Scheduler s;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) s.schedule_at(s.now() + 0.5, hop);
  };
  s.schedule_at(0.5, hop);
  s.run_all();
  EXPECT_EQ(hops, 100);
  EXPECT_DOUBLE_EQ(s.now(), 50.0);
  EXPECT_EQ(s.dispatched(), 100u);
}

TEST(Scheduler, NextTimeIsConstAndSkipsCancelled) {
  Scheduler s;
  const EventId early = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(early);
  const Scheduler& cs = s;  // next_time() must be callable on a const ref
  EXPECT_DOUBLE_EQ(cs.next_time(), 2.0);
}

TEST(Scheduler, CancellingEverythingReportsEmptyWithoutDispatch) {
  Scheduler s;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i)
    ids.push_back(s.schedule_at(1.0 + i, [] { ADD_FAILURE() << "fired"; }));
  for (const EventId id : ids) s.cancel(id);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_DOUBLE_EQ(s.next_time(), kNever);
  EXPECT_FALSE(s.run_one());
  EXPECT_EQ(s.dispatched(), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Scheduler, StaleIdCannotCancelASlotsNextTenant) {
  Scheduler s;
  bool first = false, second = false;
  const EventId a = s.schedule_at(1.0, [&] { first = true; });
  s.cancel(a);  // frees the slot
  const EventId b = s.schedule_at(2.0, [&] { second = true; });  // reuses it
  EXPECT_NE(a, b);
  s.cancel(a);  // stale generation: must not touch b
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(Scheduler, IdsStayUniqueAcrossManyGenerationsOfOneSlot) {
  Scheduler s;
  EventId prev = kInvalidEventId;
  for (int gen = 0; gen < 1000; ++gen) {
    const EventId id = s.schedule_at(1.0, [] {});
    EXPECT_NE(id, prev);
    prev = id;
    s.cancel(id);
  }
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RescheduleRetargetsInPlace) {
  Scheduler s;
  std::vector<int> order;
  const EventId id = s.schedule_at(5.0, [&] { order.push_back(1); });
  const EventId id2 = s.reschedule_at(id, 1.0);
  ASSERT_NE(id2, kInvalidEventId);
  EXPECT_NE(id2, id);
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.cancel(id);  // the pre-reschedule id is stale; must be a no-op
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.dispatched(), 2u);
}

TEST(Scheduler, RescheduleOrdersLikeCancelPlusReschedule) {
  // Retargeting onto an occupied timestamp consumes a fresh sequence number,
  // so the moved event fires after events already booked at that time.
  Scheduler s;
  std::vector<int> order;
  const EventId id = s.schedule_at(0.5, [&] { order.push_back(0); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.reschedule_at(id, 1.0);
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Scheduler, RescheduleOfDeadIdReturnsInvalid) {
  Scheduler s;
  int fires = 0;
  const EventId fired = s.schedule_at(1.0, [&] { ++fires; });
  s.run_one();
  EXPECT_EQ(s.reschedule_at(fired, 2.0), kInvalidEventId);
  const EventId cancelled = s.schedule_at(2.0, [&] { ++fires; });
  s.cancel(cancelled);
  EXPECT_EQ(s.reschedule_at(cancelled, 3.0), kInvalidEventId);
  EXPECT_EQ(s.reschedule_at(kInvalidEventId, 3.0), kInvalidEventId);
  s.run_all();
  EXPECT_EQ(fires, 1);
}

// Randomized differential test: the slab scheduler against a naive reference
// that keeps every event in a flat vector and linearly scans for the minimum
// (time, sequence) key.  Timestamps are quantized so simultaneous events are
// common and the FIFO tie-break is genuinely exercised.
TEST(Scheduler, RandomizedStressMatchesNaiveReference) {
  struct RefEvent {
    SimTime at;
    std::uint64_t seq;
    int marker;
    bool alive;
  };
  Scheduler s;
  Rng rng(0x5eed5eedULL);
  std::vector<RefEvent> ref;
  std::vector<int> real_order, ref_order;
  // Outstanding handles: (real id, index into ref). Entries may refer to
  // events that already fired — exactly the staleness cancel/reschedule
  // must tolerate.
  std::vector<std::pair<EventId, std::size_t>> handles;
  std::uint64_t ref_seq = 1;
  int next_marker = 0;

  auto ref_run_one = [&]() -> bool {
    std::size_t best = ref.size();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (!ref[i].alive) continue;
      if (best == ref.size() || ref[i].at < ref[best].at ||
          (ref[i].at == ref[best].at && ref[i].seq < ref[best].seq))
        best = i;
    }
    if (best == ref.size()) return false;
    ref_order.push_back(ref[best].marker);
    ref[best].alive = false;
    return true;
  };

  for (int op = 0; op < 20000; ++op) {
    const double r = rng.uniform();
    if (r < 0.50) {
      const SimTime at = s.now() + 0.5 * rng.uniform_int(0, 8);
      const int m = next_marker++;
      const EventId id =
          s.schedule_at(at, [&real_order, m] { real_order.push_back(m); });
      handles.emplace_back(id, ref.size());
      ref.push_back({at, ref_seq++, m, true});
    } else if (r < 0.65 && !handles.empty()) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
      s.cancel(handles[k].first);  // may be stale: no-op in both worlds
      ref[handles[k].second].alive = false;
      handles.erase(handles.begin() +
                    static_cast<std::ptrdiff_t>(k));
    } else if (r < 0.80 && !handles.empty()) {
      const auto k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(handles.size()) - 1));
      const SimTime at = s.now() + 0.5 * rng.uniform_int(0, 8);
      const EventId nid = s.reschedule_at(handles[k].first, at);
      // The slab must report dead exactly when the reference does.
      ASSERT_EQ(nid != kInvalidEventId, ref[handles[k].second].alive);
      if (nid != kInvalidEventId) {
        const int m = ref[handles[k].second].marker;
        ref[handles[k].second].alive = false;
        handles[k] = {nid, ref.size()};
        ref.push_back({at, ref_seq++, m, true});
      } else {
        handles.erase(handles.begin() +
                      static_cast<std::ptrdiff_t>(k));
      }
    } else {
      ASSERT_EQ(s.run_one(), ref_run_one());
    }
  }
  while (ref_run_one()) {
  }
  s.run_all();
  ASSERT_EQ(real_order.size(), ref_order.size());
  EXPECT_EQ(real_order, ref_order);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double t1 = -1, t2 = -1;
  sim.after(1.0, [&] {
    t1 = sim.now();
    sim.after(2.0, [&] { t2 = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 3.0);
}

TEST(Timer, ScheduleFireAndReschedule) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule(1.0);
  EXPECT_TRUE(t.armed());
  t.schedule(2.0);  // reschedule replaces the first
  sim.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule(1.0);
  t.cancel();
  sim.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.schedule(1.0);
  }
  sim.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, RearmFromCallbackMakesPeriodicTimer) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] {});
  Timer periodic(sim, [&] {
    if (++fires < 5) periodic.schedule(1.0);
  });
  periodic.schedule(1.0);
  sim.run_all();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

}  // namespace
}  // namespace rlacast::sim
