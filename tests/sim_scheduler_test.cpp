// Unit tests for the discrete-event scheduler: ordering, determinism,
// cancellation, and clock semantics — the invariants everything else in the
// simulator relies on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rlacast::sim {
namespace {

TEST(Scheduler, DispatchesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, SimultaneousEventsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler s;
  int count = 0;
  const EventId id = s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.run_one();
  s.cancel(id);  // already fired; must not corrupt accounting
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, DoubleCancelIsHarmless) {
  Scheduler s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(id);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, EventAtHorizonIsDispatched) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(2.0, [&] { fired = true; });
  s.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, ReentrantSchedulingFromCallback) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(1.0, [&] {
    order.push_back(1);
    s.schedule_at(1.5, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, ChainOfEventsAdvancesClock) {
  Scheduler s;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) s.schedule_at(s.now() + 0.5, hop);
  };
  s.schedule_at(0.5, hop);
  s.run_all();
  EXPECT_EQ(hops, 100);
  EXPECT_DOUBLE_EQ(s.now(), 50.0);
  EXPECT_EQ(s.dispatched(), 100u);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  double t1 = -1, t2 = -1;
  sim.after(1.0, [&] {
    t1 = sim.now();
    sim.after(2.0, [&] { t2 = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(t1, 1.0);
  EXPECT_DOUBLE_EQ(t2, 3.0);
}

TEST(Timer, ScheduleFireAndReschedule) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule(1.0);
  EXPECT_TRUE(t.armed());
  t.schedule(2.0);  // reschedule replaces the first
  sim.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule(1.0);
  t.cancel();
  sim.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.schedule(1.0);
  }
  sim.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, RearmFromCallbackMakesPeriodicTimer) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] {});
  Timer periodic(sim, [&] {
    if (++fires < 5) periodic.schedule(1.0);
  });
  periodic.schedule(1.0);
  sim.run_all();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

}  // namespace
}  // namespace rlacast::sim
