// Robustness of the RLA sender's membership paths: a leave mid
// congestion-signal window must not double-cut, stale ACKs from departed
// receivers are ignored, silent (crashed) receivers are shed without
// stalling the session, and a churning tertiary tree finishes with a clean
// watchdog.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "rla/rla_sender.hpp"
#include "sim/simulator.hpp"
#include "tcp/reassembly.hpp"
#include "topo/tertiary_tree.hpp"

namespace rlacast::rla {
namespace {

/// ACKing receiver with deterministic first-delivery loss (like the one in
/// rla_sender_test) plus a silence switch that models a crash: after
/// silence() it keeps receiving but never ACKs again.
class FlakyReceiver final : public net::Agent {
 public:
  FlakyReceiver(net::Network& net, net::NodeId node, net::PortId port,
                net::GroupId group, net::NodeId sender_node,
                net::PortId sender_port, int id)
      : net_(net),
        node_(node),
        port_(port),
        sender_node_(sender_node),
        sender_port_(sender_port),
        id_(id) {
    net_.attach(node_, port_, this);
    net_.subscribe(group, node_, this);
  }

  void drop_range(net::SeqNum lo, net::SeqNum hi) {
    for (net::SeqNum s = lo; s < hi; ++s) blackhole_.insert(s);
  }
  void silence() { silenced_ = true; }

  const tcp::ReassemblyBuffer& buffer() const { return buf_; }

  void on_receive(const net::Packet& p) override {
    if (silenced_) return;
    if (p.type != net::PacketType::kData) return;
    if (blackhole_.count(p.seq) && !p.is_rexmit) return;
    buf_.add(p.seq);
    net::Packet ack;
    ack.type = net::PacketType::kAck;
    ack.src = node_;
    ack.dst = sender_node_;
    ack.src_port = port_;
    ack.dst_port = sender_port_;
    ack.size_bytes = 40;
    ack.ack = buf_.cum_ack();
    ack.seq = p.seq;
    ack.ts_echo = p.ts_echo;
    ack.receiver_id = id_;
    ack.n_sack = static_cast<std::uint8_t>(
        buf_.sack_blocks(ack.sack.data(), net::kMaxSackBlocks));
    net_.inject(ack);
  }

 private:
  net::Network& net_;
  net::NodeId node_;
  net::PortId port_;
  net::NodeId sender_node_;
  net::PortId sender_port_;
  int id_;
  bool silenced_ = false;
  tcp::ReassemblyBuffer buf_;
  std::set<net::SeqNum> blackhole_;
};

struct Star {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId s, hub;
  std::vector<net::NodeId> leaves;
  std::unique_ptr<RlaSender> snd;
  std::vector<std::unique_ptr<FlakyReceiver>> rcvrs;

  explicit Star(int n, RlaParams params = {}, std::uint64_t seed = 1)
      : sim(seed) {
    params.max_cwnd = std::min(params.max_cwnd, 256.0);
    s = net.add_node();
    hub = net.add_node();
    net::LinkConfig fast;
    fast.bandwidth_bps = 1e9;
    fast.delay = 0.01;  // rtt = 40 ms
    fast.buffer_pkts = 100000;
    net.connect(s, hub, fast);
    const net::GroupId group = 1;
    for (int i = 0; i < n; ++i) {
      leaves.push_back(net.add_node());
      net.connect(hub, leaves.back(), fast);
    }
    net.build_routes();
    snd = std::make_unique<RlaSender>(net, s, 100, group, 500, params);
    for (int i = 0; i < n; ++i) {
      net.join_group(group, s, leaves[std::size_t(i)]);
      const int idx = snd->add_receiver(leaves[std::size_t(i)], 2);
      rcvrs.push_back(std::make_unique<FlakyReceiver>(
          net, leaves[std::size_t(i)], 2, group, s, 100, idx));
    }
  }
};

// Regression: receiver 0 leaves while its grouped congestion-signal window
// is still open and SACK-bearing ACKs are in flight. Those stale signals
// must not produce extra window cuts or census signals after the leave.
TEST(RlaRobustness, LeaveDuringSignalWindowDoesNotDoubleCut) {
  Star star(3);
  star.rcvrs[0]->drop_range(40, 120);  // losses spanning several RTTs
  star.snd->start_at(0.0);

  std::uint64_t cuts_at_leave = 0;
  std::uint64_t signals_at_leave = 0;
  star.sim.at(0.35, [&] {
    cuts_at_leave = star.snd->measurement().window_cuts();
    signals_at_leave = star.snd->signals_from(0);
    star.snd->remove_receiver(0);
  });
  star.sim.run_until(4.0);

  EXPECT_TRUE(star.snd->receiver_dropped(0));
  // Nothing attributable to the departed receiver after the leave: no new
  // signals counted against it and no additional cuts (the two remaining
  // receivers are loss-free).
  EXPECT_EQ(star.snd->signals_from(0), signals_at_leave);
  EXPECT_EQ(star.snd->measurement().window_cuts(), cuts_at_leave);
  // The session no longer waits for receiver 0's blackholed range.
  EXPECT_GT(star.snd->max_reach_all(), 200);
  EXPECT_EQ(star.snd->active_receivers(), 2);
}

TEST(RlaRobustness, StaleAckAfterRemoveIsIgnored) {
  Star star(2);
  star.snd->start_at(0.0);
  star.sim.run_until(1.0);
  star.snd->remove_receiver(1);
  const std::uint64_t acks_before = star.snd->acks_received();

  // A straggler ACK from the departed receiver arrives after the leave.
  net::Packet stale;
  stale.type = net::PacketType::kAck;
  stale.src = star.leaves[1];
  stale.dst = star.s;
  stale.src_port = 2;
  stale.dst_port = 100;
  stale.size_bytes = 40;
  stale.ack = star.snd->max_reach_all();
  stale.receiver_id = 1;
  star.snd->on_receive(stale);

  EXPECT_EQ(star.snd->acks_received(), acks_before);
  // A live receiver's ACK still counts.
  net::Packet live = stale;
  live.src = star.leaves[0];
  live.src_port = 2;
  live.receiver_id = 0;
  star.snd->on_receive(live);
  EXPECT_EQ(star.snd->acks_received(), acks_before + 1);
}

TEST(RlaRobustness, SilentReceiverIsShedAndSessionResumes) {
  RlaParams p;
  p.silent_drop_after = 0.5;
  Star star(3, p);
  star.snd->start_at(0.0);
  star.sim.at(1.0, [&] { star.rcvrs[2]->silence(); });
  star.sim.run_until(10.0);

  EXPECT_EQ(star.snd->silent_drops(), 1u);
  EXPECT_TRUE(star.snd->receiver_dropped(2));
  EXPECT_EQ(star.snd->active_receivers(), 2);

  // Frontier keeps moving after the shed: compare against where the crash
  // pinned it (the crashed receiver stops ACKing around seq reached at 1 s).
  const net::SeqNum pinned =
      static_cast<net::SeqNum>(star.rcvrs[2]->buffer().cum_ack());
  EXPECT_GT(star.snd->max_reach_all(), pinned + 100);
}

TEST(RlaRobustness, SilentDropDisabledByDefault) {
  Star star(2);  // silent_drop_after defaults to 0 = never shed
  star.snd->start_at(0.0);
  star.sim.at(1.0, [&] { star.rcvrs[1]->silence(); });
  star.sim.run_until(6.0);
  EXPECT_EQ(star.snd->silent_drops(), 0u);
  EXPECT_FALSE(star.snd->receiver_dropped(1));
  EXPECT_EQ(star.snd->active_receivers(), 2);
}

TEST(RlaRobustness, AllReceiversCrashedDoesNotSpin) {
  RlaParams p;
  p.silent_drop_after = 0.5;
  Star star(2, p);
  star.snd->start_at(0.0);
  star.sim.at(1.0, [&] {
    star.rcvrs[0]->silence();
    star.rcvrs[1]->silence();
  });
  // Must terminate: with every receiver shed the sender cancels its timers
  // instead of retransmitting into the void forever.
  star.sim.run_until(30.0);
  EXPECT_EQ(star.snd->silent_drops(), 2u);
  EXPECT_EQ(star.snd->active_receivers(), 0);
  EXPECT_EQ(star.sim.scheduler().pending(), 0u);
}

// Tree-level churn smoke: receivers leave and rejoin mid-run while the
// watchdog checks RLA invariants every simulated second.
TEST(RlaRobustness, ChurningTreeFinishesWithCleanWatchdog) {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.duration = 16.0;
  cfg.warmup = 4.0;
  cfg.seed = 5;
  cfg.churn_mean_interval = 2.0;
  cfg.churn_rejoin_after = 1.0;
  cfg.watchdog = true;
  const auto res = topo::run_tertiary_tree(cfg);

  EXPECT_TRUE(res.watchdog_ok) << res.watchdog_report;
  EXPECT_GT(res.churn_leaves, 0u);
  EXPECT_GT(res.rla[0].throughput_pps, 0.0);
  EXPECT_GE(res.active_receivers_final, 1);
}

}  // namespace
}  // namespace rlacast::rla
