// ReassemblyBuffer tests: cumulative ACK progression, duplicate detection,
// and RFC 2018 SACK block generation (most-recent-first ordering).
#include <gtest/gtest.h>

#include "tcp/reassembly.hpp"

namespace rlacast::tcp {
namespace {

TEST(Reassembly, InOrderAdvancesCumAck) {
  ReassemblyBuffer b;
  for (net::SeqNum s = 0; s < 5; ++s) {
    EXPECT_TRUE(b.add(s));
    EXPECT_EQ(b.cum_ack(), s + 1);
  }
}

TEST(Reassembly, GapHoldsCumAck) {
  ReassemblyBuffer b;
  b.add(0);
  b.add(2);
  b.add(3);
  EXPECT_EQ(b.cum_ack(), 1);
  b.add(1);  // fill the hole
  EXPECT_EQ(b.cum_ack(), 4);
}

TEST(Reassembly, DuplicatesDetected) {
  ReassemblyBuffer b;
  EXPECT_TRUE(b.add(0));
  EXPECT_FALSE(b.add(0));
  b.add(2);
  EXPECT_FALSE(b.add(2));
  b.add(1);
  EXPECT_FALSE(b.add(1));  // below cum now
}

TEST(Reassembly, SackBlockCoversContiguousRun) {
  ReassemblyBuffer b;
  b.add(0);
  b.add(2);
  b.add(3);
  b.add(4);
  net::SackBlock blocks[3];
  const int n = b.sack_blocks(blocks, 3);
  ASSERT_GE(n, 1);
  EXPECT_EQ(blocks[0].lo, 2);
  EXPECT_EQ(blocks[0].hi, 5);
}

TEST(Reassembly, MostRecentBlockFirst) {
  ReassemblyBuffer b;
  b.add(0);
  b.add(2);   // block [2,3)
  b.add(5);   // block [5,6)
  net::SackBlock blocks[3];
  int n = b.sack_blocks(blocks, 3);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(blocks[0].lo, 5);  // most recent first
  EXPECT_EQ(blocks[1].lo, 2);

  b.add(3);  // extends [2,3) to [2,4): becomes most recent
  n = b.sack_blocks(blocks, 3);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(blocks[0].lo, 2);
  EXPECT_EQ(blocks[0].hi, 4);
}

TEST(Reassembly, AtMostRequestedBlocks) {
  ReassemblyBuffer b;
  b.add(0);
  for (net::SeqNum s = 2; s < 20; s += 2) b.add(s);  // many isolated blocks
  net::SackBlock blocks[3];
  EXPECT_EQ(b.sack_blocks(blocks, 3), 3);
}

TEST(Reassembly, BlocksMergeAcrossFills) {
  ReassemblyBuffer b;
  b.add(0);
  b.add(2);
  b.add(4);
  b.add(3);  // merges [2,3) and [4,5) into [2,5)
  net::SackBlock blocks[3];
  const int n = b.sack_blocks(blocks, 3);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(blocks[0].lo, 2);
  EXPECT_EQ(blocks[0].hi, 5);
}

TEST(Reassembly, HighestTracksMaxReceived) {
  ReassemblyBuffer b;
  EXPECT_EQ(b.highest(), 0);
  b.add(10);
  EXPECT_EQ(b.highest(), 11);
  b.add(3);
  EXPECT_EQ(b.highest(), 11);
}

TEST(Reassembly, HasQueriesBothSides) {
  ReassemblyBuffer b;
  b.add(0);
  b.add(1);
  b.add(5);
  EXPECT_TRUE(b.has(0));
  EXPECT_TRUE(b.has(5));
  EXPECT_FALSE(b.has(2));
  EXPECT_FALSE(b.has(99));
}

TEST(Reassembly, LongOutOfOrderStream) {
  // Deliver 1000 packets in a deterministic shuffled order; the buffer must
  // end fully contiguous.
  ReassemblyBuffer b;
  for (net::SeqNum s = 0; s < 1000; s += 2) b.add(s);
  for (net::SeqNum s = 999; s >= 1; s -= 2) b.add(s);
  EXPECT_EQ(b.cum_ack(), 1000);
  EXPECT_EQ(b.ooo_count(), 0u);
}

}  // namespace
}  // namespace rlacast::tcp
