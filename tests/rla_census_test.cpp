// TroubledCensus unit tests: the §3.3 rule-6 dynamics that determine
// num_trouble_rcvr and hence pthresh.
#include <gtest/gtest.h>

#include <cmath>

#include "cc/troubled_census.hpp"
#include "sim/random.hpp"

namespace rlacast::cc {
namespace {

TEST(Census, EmptyHasNoTroubled) {
  TroubledCensus c(20.0, 0.25);
  c.add_receiver();
  c.add_receiver();
  EXPECT_EQ(c.recompute(10.0), 0);
  EXPECT_LT(c.min_interval(10.0), 0.0);
}

TEST(Census, FirstSignalMakesReceiverTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int i = c.add_receiver();
  c.add_receiver();
  c.on_signal(i, 5.0);
  EXPECT_EQ(c.recompute(5.0), 1);
  EXPECT_TRUE(c.troubled(i));
}

TEST(Census, SimilarRatesAllTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  // Both signal every ~2 s.
  for (int k = 1; k <= 10; ++k) {
    c.on_signal(a, 2.0 * k);
    c.on_signal(b, 2.0 * k + 0.5);
  }
  EXPECT_EQ(c.recompute(21.0), 2);
}

TEST(Census, RareSignalerIsNotTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int busy = c.add_receiver();
  const int quiet = c.add_receiver();
  // busy: every 1 s; quiet: every 100 s (ratio 100 > eta = 20).
  for (int k = 1; k <= 200; ++k) c.on_signal(busy, 1.0 * k);
  c.on_signal(quiet, 50.0);
  c.on_signal(quiet, 150.0);
  c.recompute(200.0);
  EXPECT_TRUE(c.troubled(busy));
  EXPECT_FALSE(c.troubled(quiet));
  EXPECT_EQ(c.num_troubled(), 1);
}

TEST(Census, BorderlineRatioUsesEta) {
  // Interval ratio 10 < eta=20  -> troubled; with eta=5 it would not be.
  TroubledCensus loose(20.0, 0.25);
  TroubledCensus strict(5.0, 0.25);
  for (auto* c : {&loose, &strict}) {
    const int fast = c->add_receiver();
    const int slow = c->add_receiver();
    for (int k = 1; k <= 100; ++k) c->on_signal(fast, 1.0 * k);
    for (int k = 1; k <= 10; ++k) c->on_signal(slow, 10.0 * k);
    c->recompute(100.0);
    EXPECT_TRUE(c->troubled(fast));
  }
  EXPECT_TRUE(loose.troubled(1));
  EXPECT_FALSE(strict.troubled(1));
}

TEST(Census, QuietReceiverAgesOut) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 20; ++k) {
    c.on_signal(a, 1.0 * k);
    c.on_signal(b, 1.0 * k + 0.3);
  }
  EXPECT_EQ(c.recompute(21.0), 2);
  // b falls silent while a keeps signalling every second.
  for (int k = 21; k <= 1000; ++k) c.on_signal(a, 1.0 * k);
  c.recompute(1000.0);
  EXPECT_TRUE(c.troubled(a));
  EXPECT_FALSE(c.troubled(b));  // silent for ~980 s vs min interval 1 s
}

TEST(Census, ExcludedReceiverNeverTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  for (int k = 1; k <= 10; ++k) c.on_signal(a, 1.0 * k);
  EXPECT_EQ(c.recompute(10.0), 1);
  c.exclude(a);
  EXPECT_EQ(c.num_troubled(), 0);
  c.on_signal(a, 11.0);  // ignored
  EXPECT_EQ(c.recompute(11.0), 0);
  EXPECT_EQ(c.signals(a), 10u);
}

TEST(Census, SignalCountsPerReceiver) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 7; ++k) c.on_signal(a, 1.0 * k);
  for (int k = 1; k <= 3; ++k) c.on_signal(b, 2.0 * k);
  EXPECT_EQ(c.signals(a), 7u);
  EXPECT_EQ(c.signals(b), 3u);
  EXPECT_EQ(c.total_signals(), 10u);
}

TEST(Census, MinIntervalTracksFastestSignaler) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 50; ++k) c.on_signal(a, 0.5 * k);
  for (int k = 1; k <= 5; ++k) c.on_signal(b, 5.0 * k);
  EXPECT_NEAR(c.min_interval(25.0), 0.5, 0.1);
}

// Property: num_troubled is monotone in eta (a looser threshold can only
// admit more receivers).
class CensusEta : public ::testing::TestWithParam<double> {};

TEST_P(CensusEta, TroubledCountGrowsWithEta) {
  const double eta = GetParam();
  TroubledCensus tight(eta, 0.25);
  TroubledCensus loose(eta * 2.0, 0.25);
  for (auto* c : {&tight, &loose}) {
    for (int r = 0; r < 5; ++r) c->add_receiver();
    // Receiver r signals with interval 2^r.
    for (int r = 0; r < 5; ++r) {
      const double interval = 1 << r;
      for (double t = interval; t <= 64.0; t += interval)
        c->on_signal(r, t);
    }
    c->recompute(64.5);
  }
  EXPECT_LE(tight.num_troubled(), loose.num_troubled());
  EXPECT_GE(tight.num_troubled(), 1);
}

INSTANTIATE_TEST_SUITE_P(Etas, CensusEta, ::testing::Values(2.0, 5.0, 10.0, 20.0));

// Fuzz: adversarial signal sequences — bursts, long silences, simultaneous
// signals, signals at identical timestamps, mid-stream exclusions — must
// never produce NaN/negative intervals, and num_trouble_rcvr >= 1 whenever
// any non-excluded receiver has ever signalled (pthresh = p/num_trouble
// divides by it).
TEST(Census, FuzzRandomSignalSequencesKeepInvariants) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng rng(seed);
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    TroubledCensus c(20.0, 0.25);
    for (int i = 0; i < n; ++i) c.add_receiver();

    double now = 0.0;
    bool any_signal_live = false;
    for (int step = 0; step < 400; ++step) {
      // Time advances by anything from 0 (same-instant signals) to a long
      // silence; bursts arrive with many signals at one instant.
      const double r = rng.uniform();
      if (r < 0.3) {
        // burst: several receivers signal at the same time
        const int k = static_cast<int>(rng.uniform_int(1, n));
        for (int j = 0; j < k; ++j) {
          const int i = static_cast<int>(rng.uniform_int(0, n - 1));
          c.on_signal(i, now);
          if (!c.excluded(i)) any_signal_live = true;
        }
      } else if (r < 0.85) {
        const int i = static_cast<int>(rng.uniform_int(0, n - 1));
        c.on_signal(i, now);
        if (!c.excluded(i)) any_signal_live = true;
      } else if (r < 0.9 && n > 1) {
        // rare mid-stream exclusion (leave / slow-drop / crash)
        const int i = static_cast<int>(rng.uniform_int(0, n - 1));
        c.exclude(i);
        any_signal_live = false;  // recompute below re-derives the truth
        for (int j = 0; j < n; ++j)
          if (!c.excluded(j) && c.signals(j) > 0) any_signal_live = true;
      }
      now += rng.chance(0.1) ? rng.uniform(50.0, 500.0)  // long silence
                             : rng.uniform(0.0, 2.0);

      const int troubled = c.recompute(now);
      ASSERT_GE(troubled, 0) << "seed " << seed << " step " << step;
      ASSERT_LE(troubled, n);
      if (any_signal_live) {
        // The paper's rule: the most congested receiver is always troubled,
        // so the pthresh denominator never hits zero while signals exist.
        ASSERT_GE(troubled, 1) << "seed " << seed << " step " << step;
      }
      const double min_iv = c.min_interval(now);
      ASSERT_FALSE(std::isnan(min_iv)) << "seed " << seed;
      if (any_signal_live) {
        ASSERT_GE(min_iv, 0.0) << "seed " << seed;
      }
      for (int i = 0; i < n; ++i) {
        const double eff = c.effective_interval(i, now);
        ASSERT_FALSE(std::isnan(eff)) << "seed " << seed << " rcvr " << i;
        if (c.excluded(i) || c.signals(i) == 0) {
          ASSERT_FALSE(c.troubled(i));
          continue;
        }
        ASSERT_GE(eff, 0.0) << "seed " << seed << " rcvr " << i;
        // Troubled receivers are exactly those within eta of the minimum.
        ASSERT_EQ(c.troubled(i), eff <= 20.0 * min_iv)
            << "seed " << seed << " rcvr " << i;
      }
    }
  }
}

}  // namespace
}  // namespace rlacast::cc
