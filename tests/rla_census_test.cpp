// TroubledCensus unit tests: the §3.3 rule-6 dynamics that determine
// num_trouble_rcvr and hence pthresh.
#include <gtest/gtest.h>

#include "rla/troubled_census.hpp"

namespace rlacast::rla {
namespace {

TEST(Census, EmptyHasNoTroubled) {
  TroubledCensus c(20.0, 0.25);
  c.add_receiver();
  c.add_receiver();
  EXPECT_EQ(c.recompute(10.0), 0);
  EXPECT_LT(c.min_interval(10.0), 0.0);
}

TEST(Census, FirstSignalMakesReceiverTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int i = c.add_receiver();
  c.add_receiver();
  c.on_signal(i, 5.0);
  EXPECT_EQ(c.recompute(5.0), 1);
  EXPECT_TRUE(c.troubled(i));
}

TEST(Census, SimilarRatesAllTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  // Both signal every ~2 s.
  for (int k = 1; k <= 10; ++k) {
    c.on_signal(a, 2.0 * k);
    c.on_signal(b, 2.0 * k + 0.5);
  }
  EXPECT_EQ(c.recompute(21.0), 2);
}

TEST(Census, RareSignalerIsNotTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int busy = c.add_receiver();
  const int quiet = c.add_receiver();
  // busy: every 1 s; quiet: every 100 s (ratio 100 > eta = 20).
  for (int k = 1; k <= 200; ++k) c.on_signal(busy, 1.0 * k);
  c.on_signal(quiet, 50.0);
  c.on_signal(quiet, 150.0);
  c.recompute(200.0);
  EXPECT_TRUE(c.troubled(busy));
  EXPECT_FALSE(c.troubled(quiet));
  EXPECT_EQ(c.num_troubled(), 1);
}

TEST(Census, BorderlineRatioUsesEta) {
  // Interval ratio 10 < eta=20  -> troubled; with eta=5 it would not be.
  TroubledCensus loose(20.0, 0.25);
  TroubledCensus strict(5.0, 0.25);
  for (auto* c : {&loose, &strict}) {
    const int fast = c->add_receiver();
    const int slow = c->add_receiver();
    for (int k = 1; k <= 100; ++k) c->on_signal(fast, 1.0 * k);
    for (int k = 1; k <= 10; ++k) c->on_signal(slow, 10.0 * k);
    c->recompute(100.0);
    EXPECT_TRUE(c->troubled(fast));
  }
  EXPECT_TRUE(loose.troubled(1));
  EXPECT_FALSE(strict.troubled(1));
}

TEST(Census, QuietReceiverAgesOut) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 20; ++k) {
    c.on_signal(a, 1.0 * k);
    c.on_signal(b, 1.0 * k + 0.3);
  }
  EXPECT_EQ(c.recompute(21.0), 2);
  // b falls silent while a keeps signalling every second.
  for (int k = 21; k <= 1000; ++k) c.on_signal(a, 1.0 * k);
  c.recompute(1000.0);
  EXPECT_TRUE(c.troubled(a));
  EXPECT_FALSE(c.troubled(b));  // silent for ~980 s vs min interval 1 s
}

TEST(Census, ExcludedReceiverNeverTroubled) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  for (int k = 1; k <= 10; ++k) c.on_signal(a, 1.0 * k);
  EXPECT_EQ(c.recompute(10.0), 1);
  c.exclude(a);
  EXPECT_EQ(c.num_troubled(), 0);
  c.on_signal(a, 11.0);  // ignored
  EXPECT_EQ(c.recompute(11.0), 0);
  EXPECT_EQ(c.signals(a), 10u);
}

TEST(Census, SignalCountsPerReceiver) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 7; ++k) c.on_signal(a, 1.0 * k);
  for (int k = 1; k <= 3; ++k) c.on_signal(b, 2.0 * k);
  EXPECT_EQ(c.signals(a), 7u);
  EXPECT_EQ(c.signals(b), 3u);
  EXPECT_EQ(c.total_signals(), 10u);
}

TEST(Census, MinIntervalTracksFastestSignaler) {
  TroubledCensus c(20.0, 0.25);
  const int a = c.add_receiver();
  const int b = c.add_receiver();
  for (int k = 1; k <= 50; ++k) c.on_signal(a, 0.5 * k);
  for (int k = 1; k <= 5; ++k) c.on_signal(b, 5.0 * k);
  EXPECT_NEAR(c.min_interval(25.0), 0.5, 0.1);
}

// Property: num_troubled is monotone in eta (a looser threshold can only
// admit more receivers).
class CensusEta : public ::testing::TestWithParam<double> {};

TEST_P(CensusEta, TroubledCountGrowsWithEta) {
  const double eta = GetParam();
  TroubledCensus tight(eta, 0.25);
  TroubledCensus loose(eta * 2.0, 0.25);
  for (auto* c : {&tight, &loose}) {
    for (int r = 0; r < 5; ++r) c->add_receiver();
    // Receiver r signals with interval 2^r.
    for (int r = 0; r < 5; ++r) {
      const double interval = 1 << r;
      for (double t = interval; t <= 64.0; t += interval)
        c->on_signal(r, t);
    }
    c->recompute(64.5);
  }
  EXPECT_LE(tight.num_troubled(), loose.num_troubled());
  EXPECT_GE(tight.num_troubled(), 1);
}

INSTANTIATE_TEST_SUITE_P(Etas, CensusEta, ::testing::Values(2.0, 5.0, 10.0, 20.0));

}  // namespace
}  // namespace rlacast::rla
