# Golden-output regression guard (ctest script mode).
#
# Runs one figure bench in --smoke mode, hashes its stdout, and compares
# against the checked-in SHA-256 in tests/golden/. The congestion-control
# core refactor promised byte-identical bench output; this script turns
# that promise from a CHANGES.md claim into a CI-enforced property — any
# change to FP arithmetic order, RNG stream consumption, or stats note
# sequences shows up as a hash mismatch.
#
# Usage (wired up by tests/CMakeLists.txt):
#   cmake -DBENCH=<binary> -DGOLDEN=<hash file> -P golden_bench_test.cmake
#
# After an INTENTIONAL behaviour change, regenerate the hashes with
# tools/regen_golden.sh and commit the diff alongside the change.
if(NOT DEFINED BENCH OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR
          "usage: cmake -DBENCH=<bench binary> -DGOLDEN=<sha256 file> "
          "-P golden_bench_test.cmake")
endif()

execute_process(
  COMMAND ${BENCH} --smoke
  OUTPUT_VARIABLE bench_out
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --smoke exited with status ${bench_rc}")
endif()

string(SHA256 got "${bench_out}")

file(READ ${GOLDEN} want)
string(STRIP "${want}" want)
string(REGEX MATCH "^[0-9a-f]+" want "${want}")

if(NOT got STREQUAL want)
  message(FATAL_ERROR
          "golden-output mismatch for ${BENCH}:\n"
          "  expected ${want}\n"
          "  got      ${got}\n"
          "Bench stdout is no longer byte-identical to the checked-in "
          "reference. If the change is intentional, run "
          "tools/regen_golden.sh and commit the updated hashes.")
endif()
