// Link and network-delivery tests: serialization timing, propagation
// pipelining, queue backpressure, and the SendPacer overhead model.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace rlacast::net {
namespace {

/// Records delivery times of packets it receives.
class SinkAgent final : public Agent {
 public:
  explicit SinkAgent(sim::Simulator& sim) : sim_(sim) {}
  void on_receive(const Packet& p) override {
    arrivals.push_back({p.seq, sim_.now()});
  }
  std::vector<std::pair<SeqNum, sim::SimTime>> arrivals;

 private:
  sim::Simulator& sim_;
};

struct Fixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  NodeId a, b;
  SinkAgent sink{sim};

  explicit Fixture(double bw_bps = 8000.0, sim::SimTime delay = 0.1,
                   std::size_t buffer = 20) {
    a = net.add_node();
    b = net.add_node();
    LinkConfig cfg;
    cfg.bandwidth_bps = bw_bps;
    cfg.delay = delay;
    cfg.buffer_pkts = buffer;
    net.connect(a, b, cfg);
    net.build_routes();
    net.attach(b, 1, &sink);
  }

  Packet data(SeqNum s, std::int32_t bytes = 1000) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.dst_port = 1;
    p.seq = s;
    p.size_bytes = bytes;
    return p;
  }
};

TEST(Link, SinglePacketLatencyIsTxPlusPropagation) {
  // 1000 bytes at 8000 bit/s = 1 s serialization, +0.1 s propagation.
  Fixture f;
  f.net.inject(f.data(0));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 1u);
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
}

TEST(Link, BackToBackPacketsSpacedByServiceTime) {
  Fixture f;
  f.net.inject(f.data(0));
  f.net.inject(f.data(1));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 2u);
  EXPECT_NEAR(f.sink.arrivals[1].second - f.sink.arrivals[0].second, 1.0,
              1e-9);
}

TEST(Link, SmallerPacketsSerializeFaster) {
  Fixture f;
  f.net.inject(f.data(0, 100));  // 100 bytes -> 0.1 s
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 0.2, 1e-9);
}

TEST(Link, OverflowDropsAreCounted) {
  Fixture f(8000.0, 0.1, /*buffer=*/2);
  // First packet goes into service; next two queue; the rest drop.
  for (SeqNum s = 0; s < 6; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  EXPECT_EQ(f.sink.arrivals.size(), 3u);
  Link* l = f.net.link_between(f.a, f.b);
  EXPECT_EQ(l->queue().stats().dropped, 3u);
  EXPECT_EQ(l->packets_delivered(), 3u);
}

TEST(Link, DeliveryPreservesFifoOrder) {
  Fixture f;
  for (SeqNum s = 0; s < 5; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 5u);
  for (SeqNum s = 0; s < 5; ++s) EXPECT_EQ(f.sink.arrivals[size_t(s)].first, s);
}

TEST(Link, PropagationIsPipelined) {
  // With a long pipe, the second packet arrives one service time after the
  // first even though both are "in flight" simultaneously.
  Fixture f(80000.0, 1.0);  // tx = 0.1 s, delay = 1 s
  f.net.inject(f.data(0));
  f.net.inject(f.data(1));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
  EXPECT_NEAR(f.sink.arrivals[1].second, 1.2, 1e-9);
}

TEST(SendPacer, ZeroOverheadInjectsImmediately) {
  Fixture f;
  SendPacer pacer(f.sim, f.net, sim::Rng(1), 0.0);
  pacer.send(f.data(0));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
}

TEST(SendPacer, OverheadDelaysWithinBoundAndKeepsOrder) {
  Fixture f(8e6, 0.0, 10000);  // deep buffer: bursty departures never drop
  SendPacer pacer(f.sim, f.net, sim::Rng(2), 0.005);
  for (SeqNum s = 0; s < 50; ++s) pacer.send(f.data(s, 100));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 50u);
  for (SeqNum s = 0; s < 50; ++s)
    EXPECT_EQ(f.sink.arrivals[size_t(s)].first, s);
}

}  // namespace
}  // namespace rlacast::net
