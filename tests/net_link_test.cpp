// Link and network-delivery tests: serialization timing, propagation
// pipelining, queue backpressure, and the SendPacer overhead model.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "trace/queue_monitor.hpp"

namespace rlacast::net {
namespace {

/// Records delivery times of packets it receives.
class SinkAgent final : public Agent {
 public:
  explicit SinkAgent(sim::Simulator& sim) : sim_(sim) {}
  void on_receive(const Packet& p) override {
    arrivals.push_back({p.seq, sim_.now()});
  }
  std::vector<std::pair<SeqNum, sim::SimTime>> arrivals;

 private:
  sim::Simulator& sim_;
};

struct Fixture {
  sim::Simulator sim{1};
  net::Network net{sim};
  NodeId a, b;
  SinkAgent sink{sim};

  explicit Fixture(double bw_bps = 8000.0, sim::SimTime delay = 0.1,
                   std::size_t buffer = 20) {
    a = net.add_node();
    b = net.add_node();
    LinkConfig cfg;
    cfg.bandwidth_bps = bw_bps;
    cfg.delay = delay;
    cfg.buffer_pkts = buffer;
    net.connect(a, b, cfg);
    net.build_routes();
    net.attach(b, 1, &sink);
  }

  Packet data(SeqNum s, std::int32_t bytes = 1000) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.dst_port = 1;
    p.seq = s;
    p.size_bytes = bytes;
    return p;
  }
};

TEST(Link, SinglePacketLatencyIsTxPlusPropagation) {
  // 1000 bytes at 8000 bit/s = 1 s serialization, +0.1 s propagation.
  Fixture f;
  f.net.inject(f.data(0));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 1u);
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
}

TEST(Link, BackToBackPacketsSpacedByServiceTime) {
  Fixture f;
  f.net.inject(f.data(0));
  f.net.inject(f.data(1));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 2u);
  EXPECT_NEAR(f.sink.arrivals[1].second - f.sink.arrivals[0].second, 1.0,
              1e-9);
}

TEST(Link, SmallerPacketsSerializeFaster) {
  Fixture f;
  f.net.inject(f.data(0, 100));  // 100 bytes -> 0.1 s
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 0.2, 1e-9);
}

TEST(Link, OverflowDropsAreCounted) {
  Fixture f(8000.0, 0.1, /*buffer=*/2);
  // First packet goes into service; next two queue; the rest drop.
  for (SeqNum s = 0; s < 6; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  EXPECT_EQ(f.sink.arrivals.size(), 3u);
  Link* l = f.net.link_between(f.a, f.b);
  EXPECT_EQ(l->queue().stats().dropped, 3u);
  EXPECT_EQ(l->packets_delivered(), 3u);
}

TEST(Link, DeliveryPreservesFifoOrder) {
  Fixture f;
  for (SeqNum s = 0; s < 5; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 5u);
  for (SeqNum s = 0; s < 5; ++s) EXPECT_EQ(f.sink.arrivals[size_t(s)].first, s);
}

TEST(Link, PropagationIsPipelined) {
  // With a long pipe, the second packet arrives one service time after the
  // first even though both are "in flight" simultaneously.
  Fixture f(80000.0, 1.0);  // tx = 0.1 s, delay = 1 s
  f.net.inject(f.data(0));
  f.net.inject(f.data(1));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
  EXPECT_NEAR(f.sink.arrivals[1].second, 1.2, 1e-9);
}

TEST(Link, SaturatedLinkDeliversAtExactServiceSpacing) {
  // Back-to-back saturation: 50 packets offered at once drain at exactly one
  // serialization time apart, with no drift from the pipeline refactor.
  Fixture f(8000.0, 0.1, /*buffer=*/100);
  for (SeqNum s = 0; s < 50; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 50u);
  for (SeqNum s = 0; s < 50; ++s) {
    EXPECT_EQ(f.sink.arrivals[size_t(s)].first, s);
    EXPECT_NEAR(f.sink.arrivals[size_t(s)].second,
                static_cast<double>(s + 1) * 1.0 + 0.1, 1e-9);
  }
  Link* l = f.net.link_between(f.a, f.b);
  EXPECT_EQ(l->packets_delivered(), 50u);
  EXPECT_EQ(l->bytes_delivered(), 50u * 1000u);
  EXPECT_EQ(l->drops(), 0u);
  EXPECT_EQ(l->in_flight(), 0u);
}

TEST(Link, FanOutBurstRidesTheInFlightRing) {
  // A fat, long hop feeding a two-way multicast fan-out: the whole burst is
  // serialized long before the first packet lands, so every packet sits in
  // the upstream link's propagation ring simultaneously.
  sim::Simulator sim{1};
  Network net{sim};
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  const NodeId c = net.add_node();
  const NodeId d = net.add_node();
  LinkConfig fat;
  fat.bandwidth_bps = 8e6;  // 1000 B -> 1 ms serialization
  fat.delay = 0.5;          // burst fully in flight before first delivery
  fat.buffer_pkts = 100;
  net.connect(a, b, fat);
  net.connect(b, c, fat);
  net.connect(b, d, fat);
  net.build_routes();
  const GroupId g = 7;
  net.join_group(g, a, c);
  net.join_group(g, a, d);
  SinkAgent sink_c{sim}, sink_d{sim};
  net.subscribe(g, c, &sink_c);
  net.subscribe(g, d, &sink_d);

  const SeqNum kBurst = 32;
  for (SeqNum s = 0; s < kBurst; ++s) {
    Packet p;
    p.src = a;
    p.group = g;
    p.seq = s;
    p.size_bytes = 1000;
    net.inject(p);
  }
  sim.run_all();

  for (SinkAgent* sink : {&sink_c, &sink_d}) {
    ASSERT_EQ(sink->arrivals.size(), static_cast<std::size_t>(kBurst));
    for (SeqNum s = 0; s < kBurst; ++s)
      EXPECT_EQ(sink->arrivals[size_t(s)].first, s);
  }
  Link* ab = net.link_between(a, b);
  // All 32 serialized within 32 ms, none delivered before 501 ms: the ring
  // must have held the entire burst at once.
  EXPECT_EQ(ab->in_flight_hiwater(), static_cast<std::size_t>(kBurst));
  for (Link* l : {ab, net.link_between(b, c), net.link_between(b, d)}) {
    EXPECT_EQ(l->packets_delivered(), static_cast<std::uint64_t>(kBurst));
    EXPECT_EQ(l->drops(), 0u);
    EXPECT_EQ(l->in_flight(), 0u);
  }
}

TEST(Link, DropCounterMatchesQueueStatsAndMonitor) {
  Fixture f(8000.0, 0.1, /*buffer=*/2);
  trace::QueueMonitor mon(f.sim, f.net.link_between(f.a, f.b)->queue(),
                          /*period=*/0.5, /*start=*/0.25, /*stop=*/4.0);
  // One in service + two queued; the other three bounce off the full buffer.
  for (SeqNum s = 0; s < 6; ++s) f.net.inject(f.data(s));
  f.sim.run_all();
  Link* l = f.net.link_between(f.a, f.b);
  EXPECT_EQ(l->drops(), 3u);
  EXPECT_EQ(l->drops(), l->queue().stats().dropped);
  EXPECT_EQ(l->packets_delivered(), l->queue().stats().dequeued);
  // The monitor watched the same queue: it must have seen the full buffer
  // while the backlog drained (2, then 1, then 0 at one-second spacing).
  EXPECT_EQ(mon.peak_backlog(), 2u);
  EXPECT_EQ(mon.samples().front().backlog, 2u);
  EXPECT_EQ(mon.samples().back().backlog, 0u);
}

TEST(SendPacer, ZeroOverheadInjectsImmediately) {
  Fixture f;
  SendPacer pacer(f.sim, f.net, sim::Rng(1), 0.0);
  pacer.send(f.data(0));
  f.sim.run_all();
  EXPECT_NEAR(f.sink.arrivals[0].second, 1.1, 1e-9);
}

TEST(SendPacer, OverheadDelaysWithinBoundAndKeepsOrder) {
  Fixture f(8e6, 0.0, 10000);  // deep buffer: bursty departures never drop
  SendPacer pacer(f.sim, f.net, sim::Rng(2), 0.005);
  for (SeqNum s = 0; s < 50; ++s) pacer.send(f.data(s, 100));
  f.sim.run_all();
  ASSERT_EQ(f.sink.arrivals.size(), 50u);
  for (SeqNum s = 0; s < 50; ++s)
    EXPECT_EQ(f.sink.arrivals[size_t(s)].first, s);
}

}  // namespace
}  // namespace rlacast::net
