// RED gateway tests: estimator behaviour, thresholds, drop-probability
// profile, idle aging, and the property the paper's analysis leans on —
// that the drop probability rises with the average queue and is shared by
// all arrivals regardless of flow.
#include <gtest/gtest.h>

#include <cmath>

#include "net/red.hpp"
#include "sim/random.hpp"

namespace rlacast::net {
namespace {

Packet pkt(SeqNum s = 0) {
  Packet p;
  p.seq = s;
  return p;
}

RedParams paper_params() {
  RedParams p;
  p.capacity = 20;
  p.min_th = 5;
  p.max_th = 15;
  p.w_q = 0.002;
  p.max_p = 0.1;
  p.mean_pkt_time = 0.005;
  return p;
}

TEST(Red, NoEarlyDropBelowMinThreshold) {
  RedQueue q(paper_params(), sim::Rng(1));
  // Keep the instantaneous queue at 0-1 so avg stays below min_th.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(pkt(), i * 0.001));
    q.dequeue(i * 0.001 + 0.0005);
  }
  EXPECT_EQ(q.early_drops(), 0u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(Red, AverageTracksBacklog) {
  RedQueue q(paper_params(), sim::Rng(1));
  for (int i = 0; i < 2000 && q.length() < 10; ++i) q.enqueue(pkt(), 0.0);
  // With a persistent backlog of ~10 the EWMA climbs toward it.
  for (int i = 0; i < 3000; ++i) {
    q.enqueue(pkt(), 0.0);
    if (q.length() >= 10) q.dequeue(0.0);
  }
  EXPECT_GT(q.avg(), 5.0);
  EXPECT_LT(q.avg(), 12.0);
}

TEST(Red, ForcedDropsAboveMaxThreshold) {
  RedParams p = paper_params();
  p.w_q = 0.5;  // fast estimator so avg follows the real queue quickly
  RedQueue q(p, sim::Rng(1));
  int accepted = 0;
  for (int i = 0; i < 100; ++i)
    if (q.enqueue(pkt(), 0.0)) ++accepted;
  EXPECT_GT(q.forced_drops(), 0u);
  // Once avg > max_th every arrival is dropped, so the backlog stalls.
  EXPECT_LT(accepted, 30);
}

TEST(Red, PhysicalOverflowAlwaysDrops) {
  RedParams p = paper_params();
  p.w_q = 1e-9;  // estimator frozen near zero: only overflow can drop
  RedQueue q(p, sim::Rng(1));
  int accepted = 0;
  for (int i = 0; i < 50; ++i)
    if (q.enqueue(pkt(), 0.0)) ++accepted;
  EXPECT_EQ(accepted, 20);
  EXPECT_EQ(q.overflow_drops(), 30u);
}

TEST(Red, EarlyDropProbabilityGrowsWithAverage) {
  // Hold the queue at a fixed backlog and measure the early-drop fraction;
  // a higher backlog must produce a higher drop rate.
  auto drop_fraction = [](std::size_t backlog) {
    RedParams p = paper_params();
    p.capacity = 1000;  // never overflow
    RedQueue q(p, sim::Rng(7));
    // Prime the queue to the target backlog.
    while (q.length() < backlog) q.enqueue(pkt(), 0.0);
    int drops = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      if (!q.enqueue(pkt(), 0.0))
        ++drops;
      else
        q.dequeue(0.0);  // hold backlog constant
      while (q.length() > backlog) q.dequeue(0.0);
    }
    return static_cast<double>(drops) / trials;
  };
  const double at7 = drop_fraction(7);
  const double at12 = drop_fraction(12);
  EXPECT_GT(at12, at7);
  EXPECT_GT(at7, 0.0);
}

TEST(Red, IdleAgingDecaysAverage) {
  RedParams p = paper_params();
  p.w_q = 0.5;
  RedQueue q(p, sim::Rng(1));
  for (int i = 0; i < 8; ++i) q.enqueue(pkt(), 0.0);
  while (q.length() > 0) q.dequeue(1.0);  // queue idle from t=1
  const double avg_before = q.avg();
  ASSERT_GT(avg_before, 1.0);
  // Arrival after a long idle period: the average must have aged away.
  q.enqueue(pkt(), 100.0);
  EXPECT_LT(q.avg(), 0.1 * avg_before);
}

TEST(Red, CountResetsBelowMinThreshold) {
  RedQueue q(paper_params(), sim::Rng(1));
  q.enqueue(pkt(), 0.0);
  q.dequeue(0.0);
  // Below min_th no early drops regardless of history.
  for (int i = 0; i < 100; ++i) {
    q.enqueue(pkt(), 0.0);
    q.dequeue(0.0);
  }
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(Red, DeterministicForFixedSeed) {
  auto run = [] {
    RedQueue q(paper_params(), sim::Rng(42));
    std::uint64_t accepted = 0;
    for (int i = 0; i < 5000; ++i) {
      if (q.enqueue(pkt(), 0.0)) ++accepted;
      if (q.length() > 8) q.dequeue(0.0);
    }
    return accepted;
  };
  EXPECT_EQ(run(), run());
}

TEST(RedByteMode, AckBurstAbsorbedWithoutOverflow) {
  // 27 simultaneous 40-byte ACKs into a RED queue sized for 20 data
  // packets: in byte mode they fill ~1 slot and none overflow — the
  // feedback-path scenario behind the case-1 reproduction fix.
  RedParams p = paper_params();
  p.slot_bytes = 1000;
  RedQueue q(p, sim::Rng(1));
  Packet ack;
  ack.size_bytes = 40;
  for (int i = 0; i < 27; ++i) EXPECT_TRUE(q.enqueue(ack, 0.0));
  EXPECT_EQ(q.overflow_drops(), 0u);
  EXPECT_LT(q.avg(), 1.0);  // averaged length measured in data-packet units
}

TEST(RedByteMode, DataPacketsStillOverflowAtCapacity) {
  RedParams p = paper_params();
  p.slot_bytes = 1000;
  p.w_q = 1e-9;  // freeze the estimator: only physical overflow drops
  RedQueue q(p, sim::Rng(1));
  Packet data;
  data.size_bytes = 1000;
  int accepted = 0;
  for (int i = 0; i < 30; ++i)
    if (q.enqueue(data, 0.0)) ++accepted;
  EXPECT_EQ(accepted, 20);
}

// Property sweep: for every backlog in [min_th, max_th), the long-run
// early-drop fraction stays within [0, ~2*max_p] — the count-based
// uniformization can at most double the marking probability locally.
class RedDropProfile : public ::testing::TestWithParam<int> {};

TEST_P(RedDropProfile, DropFractionBounded) {
  const auto backlog = static_cast<std::size_t>(GetParam());
  RedParams p = paper_params();
  p.capacity = 1000;
  RedQueue q(p, sim::Rng(3));
  while (q.length() < backlog) q.enqueue(pkt(), 0.0);
  int drops = 0;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    if (!q.enqueue(pkt(), 0.0))
      ++drops;
    else
      q.dequeue(0.0);
    while (q.length() > backlog) q.dequeue(0.0);
  }
  const double frac = static_cast<double>(drops) / trials;
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 2.5 * p.max_p);
}

INSTANTIATE_TEST_SUITE_P(Backlogs, RedDropProfile,
                         ::testing::Values(6, 8, 10, 12, 14));

}  // namespace
}  // namespace rlacast::net
